// Farthest-first ordering: the reverse distance join of §2.2.5.
//
// Reversing the queue order — and keying node pairs by their distance
// UPPER bound instead of their lower bound — makes the same incremental
// machinery deliver the farthest pairs first. A logistics planner might use
// this to find the worst depot/customer combinations without computing the
// whole join.
//
// Run with: go run ./examples/farthest
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

func main() {
	rnd := rand.New(rand.NewSource(3))
	randomPoints := func(n int) []distjoin.Point {
		pts := make([]distjoin.Point, n)
		for i := range pts {
			pts[i] = distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		}
		return pts
	}
	depots := distjoin.NewIndexFromPoints(randomPoints(2_000))
	defer depots.Close()
	customers := distjoin.NewIndexFromPoints(randomPoints(5_000))
	defer customers.Close()

	// Farthest pairs first.
	j, err := distjoin.DistanceJoin(depots, customers, distjoin.Options{Reverse: true})
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()
	fmt.Println("five farthest (depot, customer) pairs:")
	for i := 0; i < 5; i++ {
		p, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("%d. depot %4d — customer %4d: %.2f\n", i+1, p.Obj1, p.Obj2, p.Dist)
	}

	// Reverse semi-join: for each depot, its FARTHEST customer, reported
	// farthest-first (the second interpretation discussed in §2.3).
	s, err := distjoin.DistanceSemiJoin(depots, customers, distjoin.FilterInside2,
		distjoin.Options{Reverse: true})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Println("\nthree depots with the most remote worst-case customer:")
	for i := 0; i < 3; i++ {
		p, ok, err := s.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("%d. depot %4d: farthest customer %4d at %.2f\n", i+1, p.Obj1, p.Obj2, p.Dist)
	}
}
