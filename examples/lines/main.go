// Line-segment joins: the paper's named future-work case (§3.1: "dealing
// with line data is much more complex than points... a subject for future
// study").
//
// Roads and power lines are line segments. The index stores each segment's
// minimal bounding rectangle (the engine's OBR mode, Figure 3), and the
// exact segment-to-segment distance is supplied through the ExactDist
// callback — the consistency requirement (exact distance ≥ MINDIST of the
// bounding rectangles) is exactly the paper's §2.2 condition, so the
// incremental machinery works unchanged.
//
// Run with: go run ./examples/lines
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"distjoin"
	"distjoin/internal/geom"
)

// randomSegments draws n short segments with a shared seed.
func randomSegments(seed int64, n int, length float64) []geom.Segment {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]geom.Segment, n)
	for i := range out {
		x, y := rnd.Float64()*10_000, rnd.Float64()*10_000
		ang := rnd.Float64() * 2 * math.Pi
		l := length/2 + rnd.Float64()*length
		out[i] = geom.Seg(
			geom.Pt(x, y),
			geom.Pt(x+math.Cos(ang)*l, y+math.Sin(ang)*l))
	}
	return out
}

func indexSegments(segs []geom.Segment) (*distjoin.Index, error) {
	items := make([]distjoin.IndexItem, len(segs))
	for i, s := range segs {
		items[i] = distjoin.IndexItem{Rect: s.BBox(), Obj: distjoin.ObjID(i)}
	}
	return distjoin.BulkIndex(distjoin.IndexConfig{}, items)
}

func main() {
	roads := randomSegments(1, 5_000, 120)
	powerLines := randomSegments(2, 2_000, 400)

	roadIdx, err := indexSegments(roads)
	if err != nil {
		log.Fatal(err)
	}
	defer roadIdx.Close()
	lineIdx, err := indexSegments(powerLines)
	if err != nil {
		log.Fatal(err)
	}
	defer lineIdx.Close()

	opts := distjoin.Options{
		ExactDist: func(o1, o2 distjoin.ObjID) (float64, error) {
			return geom.SegmentDist(roads[o1], powerLines[o2]), nil
		},
	}

	// The five closest (road, power line) encounters.
	j, err := distjoin.DistanceJoin(roadIdx, lineIdx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("five closest (road, power line) pairs:")
	for i := 0; i < 5; i++ {
		p, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("%d. road %4d — line %4d: %.3f m\n", i+1, p.Obj1, p.Obj2, p.Dist)
	}
	j.Close()

	// Crossings: a within join at distance zero (§2.2.5's intersection
	// case expressed through the range restriction).
	j, err = distjoin.DistanceJoin(roadIdx, lineIdx, distjoin.Options{
		MaxDist:   1e-9,
		ExactDist: opts.ExactDist,
	})
	if err != nil {
		log.Fatal(err)
	}
	crossings := 0
	for {
		_, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		crossings++
	}
	j.Close()
	fmt.Printf("\nroad/power-line crossings: %d\n", crossings)

	// For each power line, its nearest road (a clearance report), worst
	// clearance last.
	s, err := distjoin.DistanceSemiJoin(lineIdx, roadIdx, distjoin.FilterInside2, distjoin.Options{
		ExactDist: func(o1, o2 distjoin.ObjID) (float64, error) {
			return geom.SegmentDist(powerLines[o1], roads[o2]), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	var worst distjoin.Pair
	n := 0
	for {
		p, ok, err := s.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		worst = p
		n++
	}
	fmt.Printf("clearance report for %d power lines; most isolated: line %d at %.1f m from road %d\n",
		n, worst.Obj1, worst.Dist, worst.Obj2)
}
