// Warehouse assignment: the paper's §1 motivating scenario for the distance
// semi-join as a clustering operator.
//
// Given stores and warehouses, the distance semi-join of stores with
// warehouses reports, for each store, its closest warehouse — computed
// fully, this partitions the stores like a discrete Voronoi diagram with
// the warehouses as sites, using a plain database primitive instead of a
// computational-geometry library.
//
// The pairs arrive in ascending distance order, so the example also shows
// the "fast first" property: the best-served stores are known immediately,
// long before the full assignment completes.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

func main() {
	rnd := rand.New(rand.NewSource(7))

	// 5,000 stores scattered across a metropolitan area.
	stores := make([]distjoin.Point, 5_000)
	for i := range stores {
		stores[i] = distjoin.Pt(rnd.Float64()*100, rnd.Float64()*100)
	}
	// Six warehouses.
	warehouses := []distjoin.Point{
		distjoin.Pt(20, 20), distjoin.Pt(80, 20), distjoin.Pt(50, 50),
		distjoin.Pt(20, 80), distjoin.Pt(80, 80), distjoin.Pt(95, 55),
	}

	storeIdx := distjoin.NewIndexFromPoints(stores)
	defer storeIdx.Close()
	whIdx := distjoin.NewIndexFromPoints(warehouses)
	defer whIdx.Close()

	s, err := distjoin.DistanceSemiJoin(storeIdx, whIdx, distjoin.FilterGlobalAll, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Consume the full semi-join: a complete store→warehouse assignment.
	assigned := make([]int, len(warehouses))
	var worst distjoin.Pair
	first := true
	for {
		p, ok, err := s.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		if first {
			fmt.Printf("best-served store:  store %4d → warehouse %d (distance %.2f)\n",
				p.Obj1, p.Obj2, p.Dist)
			first = false
		}
		assigned[p.Obj2]++
		worst = p
	}
	fmt.Printf("worst-served store: store %4d → warehouse %d (distance %.2f)\n\n",
		worst.Obj1, worst.Obj2, worst.Dist)

	fmt.Println("discrete Voronoi cell sizes (stores per warehouse):")
	total := 0
	for w, n := range assigned {
		fmt.Printf("  warehouse %d at %v: %4d stores\n", w, warehouses[w], n)
		total += n
	}
	fmt.Printf("total assigned: %d / %d\n", total, len(stores))
}
