// Quickstart: build two spatial indexes and stream the closest pairs.
//
// The incremental distance join delivers pairs in ascending order of
// distance, one at a time — the ten pairs printed here cost a tiny fraction
// of the 10,000 × 20,000 = 200-million-pair Cartesian product.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

func main() {
	// Two synthetic point sets standing in for, say, hotels and cafes.
	rnd := rand.New(rand.NewSource(42))
	randomPoints := func(n int) []distjoin.Point {
		pts := make([]distjoin.Point, n)
		for i := range pts {
			pts[i] = distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		}
		return pts
	}
	hotels := distjoin.NewIndexFromPoints(randomPoints(10_000))
	defer hotels.Close()
	cafes := distjoin.NewIndexFromPoints(randomPoints(20_000))
	defer cafes.Close()

	// Stream the ten closest (hotel, cafe) pairs.
	j, err := distjoin.DistanceJoin(hotels, cafes, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()

	fmt.Println("ten closest (hotel, cafe) pairs:")
	for i := 0; i < 10; i++ {
		p, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("%2d. hotel %5d at %v  —  cafe %5d at %v  (distance %.3f)\n",
			i+1, p.Obj1, p.Rect1.Lo, p.Obj2, p.Rect2.Lo, p.Dist)
	}
}
