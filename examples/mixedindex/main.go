// Mixed-structure join: the paper's generality claim in action (§2.2).
//
// The incremental distance join is defined over any hierarchical spatial
// decomposition, not just R-trees. Here one relation lives in an R*-tree
// and the other in a bucket PR quadtree — an unbalanced structure with
// space-partitioning (rather than data-partitioning) regions — and the
// same engine joins them, closest pairs first.
//
// Run with: go run ./examples/mixedindex
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

func main() {
	rnd := rand.New(rand.NewSource(5))

	// Sensor readings in an R*-tree.
	sensors := make([]distjoin.Point, 3_000)
	for i := range sensors {
		sensors[i] = distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
	}
	sensorIdx := distjoin.NewIndexFromPoints(sensors)
	defer sensorIdx.Close()

	// Incident reports in a quadtree.
	quad, err := distjoin.NewQuadIndex(distjoin.QuadConfig{
		Bounds:     distjoin.R(distjoin.Pt(0, 0), distjoin.Pt(1000, 1000)),
		BucketSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		p := distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		if err := quad.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			log.Fatal(err)
		}
	}

	// Join the R*-tree against the quadtree: the five closest
	// (sensor, incident) pairs.
	j, err := distjoin.DistanceJoinIndexes(
		sensorIdx.AsSpatialIndex(), quad.AsSpatialIndex(), distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()
	fmt.Println("five closest (sensor, incident) pairs across index structures:")
	for i := 0; i < 5; i++ {
		p, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("%d. sensor %4d — incident %4d: %.3f\n", i+1, p.Obj1, p.Obj2, p.Dist)
	}

	// And a semi-join in the other direction: each incident's nearest
	// sensor, worst-covered incidents summarized.
	s, err := distjoin.DistanceSemiJoinIndexes(
		quad.AsSpatialIndex(), sensorIdx.AsSpatialIndex(),
		distjoin.FilterGlobalAll, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	var last distjoin.Pair
	n := 0
	for {
		p, ok, err := s.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		last = p
		n++
	}
	fmt.Printf("\nassigned %d incidents to sensors; worst coverage: incident %d at %.2f from sensor %d\n",
		n, last.Obj1, last.Dist, last.Obj2)
}
