// Persistent indexes: build once, query forever.
//
// A downstream user rarely wants to re-bulk-load a 200k-point index on
// every process start. This example builds two file-backed R*-trees on
// first run, then reopens them instantly on subsequent runs and streams a
// join — demonstrating Flush/OpenIndexFile and that joins work identically
// over reopened indexes.
//
// Run twice to see the cache hit: go run ./examples/persistent
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
)

func buildOrOpen(path string, gen func() []distjoin.Point) (*distjoin.Index, error) {
	if _, err := os.Stat(path); err == nil {
		idx, err := distjoin.OpenIndexFile(path, nil)
		if err == nil {
			fmt.Printf("reopened %s (%d objects)\n", filepath.Base(path), idx.Len())
			return idx, nil
		}
		// Fall through and rebuild on any open failure.
		os.Remove(path)
	}
	start := time.Now()
	idx, err := distjoin.CreateIndexFile(path, distjoin.IndexConfig{})
	if err != nil {
		return nil, err
	}
	for i, p := range gen() {
		if err := idx.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			idx.Close()
			return nil, err
		}
	}
	if err := idx.Flush(); err != nil {
		idx.Close()
		return nil, err
	}
	fmt.Printf("built %s (%d objects) in %v\n", filepath.Base(path), idx.Len(), time.Since(start).Round(time.Millisecond))
	return idx, nil
}

func main() {
	dir := filepath.Join(os.TempDir(), "distjoin-example")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	water, err := buildOrOpen(filepath.Join(dir, "water.idx"),
		func() []distjoin.Point { return datagen.Water(1, 10_000) })
	if err != nil {
		log.Fatal(err)
	}
	defer water.Close()
	roads, err := buildOrOpen(filepath.Join(dir, "roads.idx"),
		func() []distjoin.Point { return datagen.Roads(2, 40_000) })
	if err != nil {
		log.Fatal(err)
	}
	defer roads.Close()

	pairs, err := distjoin.KClosestPairs(water, roads, 5, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfive closest (water, road) pairs from the persistent indexes:")
	for i, p := range pairs {
		fmt.Printf("%d. water %5d — road %5d: %.2f\n", i+1, p.Obj1, p.Obj2, p.Dist)
	}
	fmt.Printf("\nindex files live in %s — run again to reopen instead of rebuild\n", dir)
}
