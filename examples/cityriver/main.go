// Cities and rivers: the paper's running query examples (§1, §5).
//
//  1. "Find the city nearest to any river" — the first tuple of a distance
//     join of cities with river points.
//  2. "Find the city nearest to any river, such that the city has a
//     population of more than 5 million" — both query plans of §5: (a)
//     filter the incremental join's output, and (b) pre-select big cities,
//     index them, and join only those.
//  3. "Find cities within 5 miles of any river" — a distance join with a
//     maximum distance, consumed as a within-style join.
//
// Run with: go run ./examples/cityriver
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distjoin"
)

type city struct {
	name       string
	loc        distjoin.Point
	population int
}

func main() {
	rnd := rand.New(rand.NewSource(11))

	// A synthetic gazetteer: 300 cities with Zipf-ish populations.
	cities := make([]city, 300)
	for i := range cities {
		pop := int(12_000_000 / float64(1+i))
		cities[i] = city{
			name:       fmt.Sprintf("city-%03d", i),
			loc:        distjoin.Pt(rnd.Float64()*500, rnd.Float64()*500),
			population: pop,
		}
	}
	// River sample points along a meandering path.
	var rivers []distjoin.Point
	x, y := 0.0, 250.0
	for x < 500 {
		rivers = append(rivers, distjoin.Pt(x, y))
		x += 2
		y += (rnd.Float64() - 0.5) * 20
	}

	cityPts := make([]distjoin.Point, len(cities))
	for i, c := range cities {
		cityPts[i] = c.loc
	}
	cityIdx := distjoin.NewIndexFromPoints(cityPts)
	defer cityIdx.Close()
	riverIdx := distjoin.NewIndexFromPoints(rivers)
	defer riverIdx.Close()

	// Query 1: the city nearest to any river. One Next() call does it.
	j, err := distjoin.DistanceJoin(cityIdx, riverIdx, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if p, ok, err := j.Next(); err != nil {
		log.Fatal(err)
	} else if ok {
		fmt.Printf("nearest city to a river: %s (%.2f away)\n", cities[p.Obj1].name, p.Dist)
	}
	j.Close()

	// Query 2a: nearest big city, plan (1) — filter the incremental output.
	// The join stays incremental: it stops as soon as a qualifying city
	// appears, without computing the rest.
	const minPop = 5_000_000
	j, err = distjoin.DistanceJoin(cityIdx, riverIdx, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	examined := 0
	for {
		p, ok, err := j.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		examined++
		if cities[p.Obj1].population > minPop {
			fmt.Printf("plan 1 (filter output): %s, population %d, distance %.2f (examined %d pairs)\n",
				cities[p.Obj1].name, cities[p.Obj1].population, p.Dist, examined)
			break
		}
	}
	j.Close()

	// Query 2b: plan (2) — select big cities first, build an index on the
	// restriction, and join that. Better when the predicate is selective.
	var bigPts []distjoin.Point
	var bigIDs []int
	for i, c := range cities {
		if c.population > minPop {
			bigPts = append(bigPts, c.loc)
			bigIDs = append(bigIDs, i)
		}
	}
	bigIdx, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, bigPts)
	if err != nil {
		log.Fatal(err)
	}
	defer bigIdx.Close()
	j, err = distjoin.DistanceJoin(bigIdx, riverIdx, distjoin.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if p, ok, err := j.Next(); err != nil {
		log.Fatal(err)
	} else if ok {
		c := cities[bigIDs[p.Obj1]]
		fmt.Printf("plan 2 (pre-select):    %s, population %d, distance %.2f (indexed %d big cities)\n",
			c.name, c.population, p.Dist, len(bigPts))
	}
	j.Close()

	// Query 3: cities within 5 miles of any river — a within join expressed
	// as a distance join with MaxDist, de-duplicated on the city.
	const withinMiles = 5.0
	s, err := distjoin.DistanceSemiJoin(cityIdx, riverIdx, distjoin.FilterGlobalAll,
		distjoin.Options{MaxDist: withinMiles})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	count := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	fmt.Printf("cities within %.0f miles of a river: %d of %d\n", withinMiles, count, len(cities))
}
