package distjoin

import (
	"errors"

	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// Index is a spatial index over objects with rectangular (or point)
// geometry — a disk-paged R*-tree with the paper's node and buffer
// configuration by default. An Index is not safe for concurrent use, and
// must not be modified while a join over it is being consumed.
type Index struct {
	tree *rtree.Tree
}

// IndexConfig tunes index construction. The zero value reproduces the
// paper's setup for 2-D data: ~50-entry nodes and a 256 KiB buffer pool.
type IndexConfig struct {
	// Dims is the dimensionality (default 2).
	Dims int
	// PageSize is the node size in bytes (default 2048, giving fan-out 51
	// in 2-D).
	PageSize int
	// BufferFrames is the buffer-pool capacity in pages (default 128).
	BufferFrames int
	// Counters receives node I/O accounting. May be nil; it can also be
	// attached later with SetCounters.
	Counters *Stats
}

func (c IndexConfig) rtreeConfig() rtree.Config {
	dims := c.Dims
	if dims == 0 {
		dims = 2
	}
	return rtree.Config{
		Dims:         dims,
		PageSize:     c.PageSize,
		BufferFrames: c.BufferFrames,
		Counters:     c.Counters,
	}
}

// NewIndex creates an empty index.
func NewIndex(cfg IndexConfig) (*Index, error) {
	t, err := rtree.New(cfg.rtreeConfig())
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// NewIndexFromPoints bulk-loads 2-D (or higher-dimensional) points; object
// i gets ObjID(i). It panics on construction errors, making it convenient
// for examples and tests; use BulkIndex for error handling.
func NewIndexFromPoints(pts []Point) *Index {
	idx, err := BulkIndexPoints(IndexConfig{}, pts)
	if err != nil {
		panic(err)
	}
	return idx
}

// BulkIndexPoints bulk-loads points with object ids equal to their slice
// positions.
func BulkIndexPoints(cfg IndexConfig, pts []Point) (*Index, error) {
	if len(pts) > 0 && cfg.Dims == 0 {
		cfg.Dims = pts[0].Dim()
	}
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	t, err := rtree.BulkLoad(cfg.rtreeConfig(), items)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// IndexItem is one object for bulk loading: arbitrary rectangular geometry
// plus a caller-chosen id.
type IndexItem struct {
	Rect Rect
	Obj  ObjID
}

// BulkIndex bulk-loads arbitrary rectangles.
func BulkIndex(cfg IndexConfig, items []IndexItem) (*Index, error) {
	conv := make([]rtree.Item, len(items))
	for i, it := range items {
		conv[i] = rtree.Item{Rect: it.Rect, Obj: it.Obj}
	}
	t, err := rtree.BulkLoad(cfg.rtreeConfig(), conv)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// Insert adds an object with rectangular geometry.
func (idx *Index) Insert(r Rect, id ObjID) error { return idx.tree.Insert(r, id) }

// InsertPoint adds a point object.
func (idx *Index) InsertPoint(p Point, id ObjID) error { return idx.tree.InsertPoint(p, id) }

// Delete removes an object; it returns false when no matching entry exists.
func (idx *Index) Delete(r Rect, id ObjID) (bool, error) { return idx.tree.Delete(r, id) }

// Search calls fn for each object whose geometry intersects query; return
// false from fn to stop early.
func (idx *Index) Search(query Rect, fn func(Rect, ObjID) bool) error {
	return idx.tree.Search(query, func(e rtree.Entry) bool { return fn(e.Rect, e.Obj) })
}

// Scan calls fn for every indexed object.
func (idx *Index) Scan(fn func(Rect, ObjID) bool) error {
	return idx.tree.Scan(func(e rtree.Entry) bool { return fn(e.Rect, e.Obj) })
}

// Len returns the number of indexed objects.
func (idx *Index) Len() int { return idx.tree.Len() }

// Height returns the number of tree levels.
func (idx *Index) Height() int { return idx.tree.Height() }

// Bounds returns the bounding rectangle of all objects.
func (idx *Index) Bounds() (Rect, bool) { return idx.tree.Bounds() }

// SetCounters attaches (or replaces) the I/O counter sink. Experiments use
// this to reset accounting between runs without rebuilding the index.
func (idx *Index) SetCounters(c *Stats) {
	idx.tree.Pool().SetCounters(stats.NodeSink((*stats.Counters)(c)))
}

// CheckInvariants validates the structural invariants of the underlying
// R*-tree; primarily a testing and diagnostics hook.
func (idx *Index) CheckInvariants() error { return idx.tree.CheckInvariants() }

// Close releases the index's storage.
func (idx *Index) Close() error {
	if idx.tree == nil {
		return errors.New("distjoin: index already closed")
	}
	err := idx.tree.Close()
	idx.tree = nil
	return err
}

// Flush persists the index to its backing store; for a file-backed index
// (CreateIndexFile) this makes it reopenable with OpenIndexFile after the
// process exits.
func (idx *Index) Flush() error { return idx.tree.Flush() }

// CreateIndexFile creates a persistent index backed by the named file.
// Call Flush before Close to durably record changes.
func CreateIndexFile(path string, cfg IndexConfig) (*Index, error) {
	t, err := rtree.CreateFile(path, cfg.rtreeConfig())
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// OpenIndexFile reopens an index persisted with CreateIndexFile + Flush.
func OpenIndexFile(path string, counters *Stats) (*Index, error) {
	t, err := rtree.OpenFile(path, (*stats.Counters)(counters))
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// Tree exposes the underlying R*-tree for advanced integrations (the
// baseline algorithms in internal/baseline operate on it directly).
func (idx *Index) Tree() *rtree.Tree { return idx.tree }
