package distjoin_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin"
	"distjoin/internal/datagen"
)

// The sampling estimators document (internal/costmodel) that accuracy grows
// roughly with the square root of the sample size; at Sample=400 the
// internal tests pin uniform-data estimates within a factor of 2 of truth.
// These property tests re-assert that contract through the public API over
// several seeded workloads, and additionally check the skewed TIGER-like
// generators against a looser factor-3 bound (skew concentrates mass the
// uniform density model dilutes).
const (
	uniformFactor = 2.0
	skewedFactor  = 3.0
)

// workload is one seeded synthetic input pair plus its accuracy bound.
type accWorkload struct {
	name   string
	a, b   []distjoin.Point
	factor float64
}

func uniformWorkload(seed int64, n int) accWorkload {
	gen := func(s int64) []distjoin.Point {
		rnd := rand.New(rand.NewSource(s))
		pts := make([]distjoin.Point, n)
		for i := range pts {
			pts[i] = distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		}
		return pts
	}
	return accWorkload{
		name:   "uniform",
		a:      gen(seed),
		b:      gen(seed + 1),
		factor: uniformFactor,
	}
}

func tigerWorkload(seed int64, n int) accWorkload {
	return accWorkload{
		name:   "tiger",
		a:      datagen.Water(seed, n),
		b:      datagen.Roads(seed+1, 2*n),
		factor: skewedFactor,
	}
}

// allPairDistances brute-forces the sorted pair-distance list — the ground
// truth both estimators are judged against.
func allPairDistances(a, b []distjoin.Point) []float64 {
	ds := make([]float64, 0, len(a)*len(b))
	for _, p := range a {
		for _, q := range b {
			ds = append(ds, distjoin.Euclidean.Dist(p, q))
		}
	}
	sort.Float64s(ds)
	return ds
}

func withinFactor(est, truth, factor float64) bool {
	return est >= truth/factor && est <= truth*factor
}

func TestEstimatorAccuracyProperty(t *testing.T) {
	workloads := []accWorkload{
		uniformWorkload(101, 600),
		uniformWorkload(202, 600),
		uniformWorkload(303, 800),
		tigerWorkload(404, 500),
		tigerWorkload(505, 700),
	}
	cost := distjoin.CostOptions{Sample: 400, Seed: 99}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			ia, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, w.a)
			if err != nil {
				t.Fatal(err)
			}
			defer ia.Close()
			ib, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, w.b)
			if err != nil {
				t.Fatal(err)
			}
			defer ib.Close()
			ds := allPairDistances(w.a, w.b)

			// EstimatePairsWithin at the 0.1%, 1% and 10% truth quantiles:
			// each must land within the workload's documented factor.
			for _, frac := range []float64{0.001, 0.01, 0.1} {
				idx := int(frac * float64(len(ds)))
				d := ds[idx]
				truth := float64(sort.SearchFloat64s(ds, math.Nextafter(d, math.Inf(1))))
				est, err := distjoin.EstimatePairsWithin(ia, ib, d, cost)
				if err != nil {
					t.Fatal(err)
				}
				if !withinFactor(est, truth, w.factor) {
					t.Errorf("pairs within %.3g: estimate %.0f vs truth %.0f (want within %.1fx)",
						d, est, truth, w.factor)
				}
			}

			// EstimateDistanceForK across three orders of magnitude of k.
			for _, k := range []int{100, 1_000, 10_000} {
				if k > len(ds) {
					continue
				}
				truth := ds[k-1]
				est, err := distjoin.EstimateDistanceForK(ia, ib, k, cost)
				if err != nil {
					t.Fatal(err)
				}
				if !withinFactor(est, truth, w.factor) {
					t.Errorf("distance for k=%d: estimate %.4g vs truth %.4g (want within %.1fx)",
						k, est, truth, w.factor)
				}
			}
		})
	}
}

// TestProfileExplainAgreesWithStats runs a real join under a Profiler and
// checks the finished Profile against the run's own Stats counters: the
// profile's counter mirror must match the snapshot exactly, and the
// EXPLAIN actual columns must be the observed values the counters report.
func TestProfileExplainAgreesWithStats(t *testing.T) {
	w := tigerWorkload(606, 400)
	ia, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, w.a)
	if err != nil {
		t.Fatal(err)
	}
	defer ia.Close()
	ib, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, w.b)
	if err != nil {
		t.Fatal(err)
	}
	defer ib.Close()

	const maxDist = 40.0
	pf := distjoin.NewProfiler()
	opts := distjoin.Options{MaxDist: maxDist}
	pf.Attach(&opts)
	pf.AttachIndex(ia)
	pf.AttachIndex(ib)
	pf.Start()
	j, err := distjoin.DistanceJoin(ia, ib, opts)
	if err != nil {
		t.Fatal(err)
	}
	var nPairs int64
	var lastDist float64
	for {
		p, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		nPairs++
		lastDist = p.Dist
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if nPairs == 0 {
		t.Fatal("no pairs within maxDist; widen the bound")
	}
	rows, err := distjoin.BuildExplain(ia, ib, distjoin.ExplainConfig{
		K:           int(nPairs),
		KthDist:     lastDist,
		MaxDist:     maxDist,
		PairsWithin: nPairs,
	})
	if err != nil {
		t.Fatal(err)
	}
	pf.SetExplain(rows)
	prof := pf.Finish("agreement")

	snap := pf.Stats.Snapshot()
	c := prof.Counters
	if c.PairsReported != snap.PairsReported || c.PairsReported != nPairs {
		t.Errorf("pairs: profile %d, stats %d, drained %d", c.PairsReported, snap.PairsReported, nPairs)
	}
	if c.DistCalcs != snap.DistCalcs {
		t.Errorf("dist calcs: profile %d, stats %d", c.DistCalcs, snap.DistCalcs)
	}
	if c.NodeIO != snap.NodeReads+snap.NodeWrites {
		t.Errorf("node io: profile %d, stats %d+%d", c.NodeIO, snap.NodeReads, snap.NodeWrites)
	}
	if c.QueueInserts != snap.QueueInserts || c.QueuePops != snap.QueuePops {
		t.Errorf("queue ops: profile %d/%d, stats %d/%d", c.QueueInserts, c.QueuePops, snap.QueueInserts, snap.QueuePops)
	}
	if c.MaxQueueSize != snap.MaxQueueSize {
		t.Errorf("max queue: profile %d, stats %d", c.MaxQueueSize, snap.MaxQueueSize)
	}

	byMetric := map[string]distjoin.ExplainRow{}
	for _, r := range prof.Explain {
		byMetric[r.Metric] = r
	}
	pw, ok := byMetric["pairs_within_d"]
	if !ok {
		t.Fatal("no pairs_within_d row")
	}
	if pw.Actual != float64(c.PairsReported) {
		t.Errorf("pairs_within_d actual %g, counters reported %d", pw.Actual, c.PairsReported)
	}
	dk, ok := byMetric["distance_for_k"]
	if !ok {
		t.Fatal("no distance_for_k row")
	}
	if dk.Actual != lastDist {
		t.Errorf("distance_for_k actual %g, observed k-th distance %g", dk.Actual, lastDist)
	}
	for _, r := range prof.Explain {
		if r.Actual == 0 {
			continue
		}
		want := (r.Predicted - r.Actual) / r.Actual
		if math.Abs(r.RelErr-want) > 1e-12 {
			t.Errorf("%s: rel_err %g, want %g", r.Metric, r.RelErr, want)
		}
	}
	// The estimators feeding the EXPLAIN rows obey the same documented
	// bound the property test asserts.
	if !withinFactor(pw.Predicted, pw.Actual, skewedFactor) {
		t.Errorf("pairs_within_d prediction %g vs actual %g outside %.1fx", pw.Predicted, pw.Actual, skewedFactor)
	}
}
