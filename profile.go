package distjoin

import (
	"fmt"
	"math"
	"time"

	"distjoin/internal/obs"
	"distjoin/internal/profile"
	"distjoin/internal/qtrace"
)

// Query profiles — the public surface of internal/profile. A Profiler wired
// into a join's Options collects the per-join "EXPLAIN ANALYZE" document:
// wall time attributed to engine phases via span accounting, the Table 1
// work counters, inter-pair delay percentiles, time-to-kth-pair marks, and
// (optionally) cost-model predictions placed next to the observed actuals.
// cmd/benchrun assembles these profiles into schema-versioned benchmark
// trajectory files and gates CI on their hardware-independent counters.

// Profile is one join's query profile document.
type Profile = profile.Profile

// ProfileSpans is the span accumulator behind a Profile's phase
// attribution; assign one to Options.Profile (a Profiler does this for
// you). A nil *ProfileSpans disables profiling at zero cost.
type ProfileSpans = profile.Spans

// ExplainRow is one predicted-vs-actual comparison in a Profile.
type ExplainRow = profile.ExplainRow

// QueryTrace is one completed query's trace document — the unit the
// QueryTracer's flight recorder retains and the slow-query log emits;
// QuerySpan is one node of its hierarchical span tree, QueryResources its
// per-query resource accounting.
type (
	QueryTrace     = qtrace.QueryTrace
	QuerySpan      = qtrace.Span
	QueryResources = qtrace.Resources
)

// Trajectory is one benchmark-trajectory point (the BENCH_<date>.json
// schema); WorkloadProfile is one workload's entry in it.
type (
	Trajectory      = profile.Trajectory
	WorkloadProfile = profile.WorkloadProfile
)

// TrajectoryCompareOptions and TrajectoryCompareResult parameterize and
// report the regression gate between two trajectory points.
type (
	TrajectoryCompareOptions = profile.CompareOptions
	TrajectoryCompareResult  = profile.CompareResult
)

// CompareTrajectories diffs two trajectory points, gating only on
// hardware-independent work counters (node I/O, distance calculations,
// max queue size); wall-clock growth is reported as a warning.
func CompareTrajectories(old, curr *Trajectory, opts TrajectoryCompareOptions) *TrajectoryCompareResult {
	return profile.Compare(old, curr, opts)
}

// ReadTrajectory reads and schema-validates a trajectory file.
func ReadTrajectory(path string) (*Trajectory, error) { return profile.ReadFile(path) }

// Profiler collects one join run's query profile. Typical use:
//
//	pf := distjoin.NewProfiler()
//	pf.AttachIndex(a)
//	pf.AttachIndex(b)
//	opts.MaxPairs = k
//	pf.Attach(&opts)
//	j, _ := distjoin.DistanceJoin(a, b, opts)
//	... drain, calling pf.MarkKth at interesting k ...
//	prof := pf.Finish("my-workload")
//
// The zero Profiler is not usable; NewProfiler allocates the spans,
// counters and recorder it records into.
type Profiler struct {
	// Spans receives the phase attribution; Attach assigns it to
	// Options.Profile.
	Spans *ProfileSpans
	// Stats receives the work counters; Attach assigns it to
	// Options.Counters unless the caller already set one (the existing
	// counters are then snapshotted at Finish).
	Stats *Stats
	// Rec supplies the delay histograms; Attach assigns it to Options.Obs
	// unless the caller already set a recorder.
	Rec *Recorder

	start   time.Time
	ttk     []profile.TTKPoint
	explain []ExplainRow
}

// NewProfiler creates a Profiler with fresh spans, counters, and a
// trace-less recorder (histograms and gauges only), and starts its clock.
func NewProfiler() *Profiler {
	return &Profiler{
		Spans: &ProfileSpans{},
		Stats: &Stats{},
		Rec:   NewRecorder(ObsConfig{RingSize: 1}),
		start: time.Now(),
	}
}

// Attach wires the profiler into a join's options: spans always; counters
// and recorder only when the caller has not installed their own (in which
// case the caller's are used for the profile too).
func (p *Profiler) Attach(o *Options) {
	o.Profile = p.Spans
	if o.Counters == nil {
		o.Counters = p.Stats
	} else {
		p.Stats = o.Counters
	}
	if o.Obs == nil {
		o.Obs = p.Rec
	} else {
		p.Rec = o.Obs
	}
}

// AttachIndex attaches the profiler to an index's buffer pool: node I/O
// counts flow into the profiler's counters (feeding the recorder's
// pool-hit-ratio gauge on the way), and physical page I/O time into the
// spans' I/O figures — so the profile's IO stat covers index-node and
// queue-disk-tier I/O together.
func (p *Profiler) AttachIndex(idx *Index) {
	idx.SetObserver(p.Rec, p.Stats)
	idx.tree.Pool().SetIOTimer(p.Spans)
}

// Start re-marks the profile's wall-clock origin (NewProfiler already
// started it); call it after setup you do not want attributed to the run.
func (p *Profiler) Start() { p.start = time.Now() }

// Elapsed returns the wall time since the profile's origin.
func (p *Profiler) Elapsed() time.Duration { return time.Since(p.start) }

// MarkKth records that the k-th result pair arrived now, at distance dist —
// the paper's incrementality measure (time to the first few results versus
// the whole join).
func (p *Profiler) MarkKth(k int64, dist float64) {
	p.ttk = append(p.ttk, profile.TTKPoint{K: k, Seconds: p.Elapsed().Seconds(), Dist: dist})
}

// SetExplain installs predicted-vs-actual rows (see BuildExplain) into the
// finished profile.
func (p *Profiler) SetExplain(rows []ExplainRow) { p.explain = rows }

// Finish assembles the profile. The join should be drained and closed
// first, so that parallel worker shards have been merged.
func (p *Profiler) Finish(label string) *Profile {
	var prof Profile
	prof.BuildPhases(p.Spans, p.Elapsed().Seconds())
	prof.Label = label
	prof.Counters = profileCounters(p.Stats)
	snap := p.Rec.Snapshot()
	prof.Delay.InterPair = quantileStat(snap.InterPairDelay)
	prof.Delay.PopToEmit = quantileStat(snap.PopToEmit)
	prof.TimeToKth = p.ttk
	prof.Explain = p.explain
	return &prof
}

// profileCounters copies a stats snapshot into the profile's JSON mirror.
func profileCounters(c *Stats) profile.Counters {
	s := c.Snapshot()
	return profile.Counters{
		DistCalcs:      s.DistCalcs,
		NodeDistCalcs:  s.NodeDistCalcs,
		NodeReads:      s.NodeReads,
		NodeWrites:     s.NodeWrites,
		NodeIO:         s.NodeReads + s.NodeWrites,
		BufferHits:     s.BufferHits,
		QueueInserts:   s.QueueInserts,
		QueuePops:      s.QueuePops,
		MaxQueueSize:   s.MaxQueueSize,
		QueueDiskPairs: s.QueueDiskPairs,
		QueueReads:     s.QueueReads,
		QueueWrites:    s.QueueWrites,
		PairsReported:  s.PairsReported,
		Filtered:       s.Filtered,
		BatchPruned:    s.BatchPruned,
	}
}

// quantileStat converts an obs histogram summary to the profile schema.
func quantileStat(h obs.HistogramSnapshot) profile.QuantileStat {
	return profile.QuantileStat{
		Count: h.Count,
		MeanS: h.MeanS,
		P50S:  h.P50S,
		P95S:  h.P95S,
		P99S:  h.P99S,
	}
}

// ExplainConfig describes the join run whose observed actuals are compared
// against the cost model's predictions.
type ExplainConfig struct {
	// K is the run's MaxPairs bound; 0 skips the distance-for-k and
	// suggested-max-dist rows.
	K int
	// KthDist is the observed distance of the K-th (final) reported pair.
	KthDist float64
	// MaxDist is the run's distance bound; 0 or +Inf skips the
	// pairs-within row.
	MaxDist float64
	// PairsWithin is the observed number of pairs reported within MaxDist.
	PairsWithin int64
	// Safety is the SuggestMaxDist inflation factor (default 2, the
	// cost model's recommendation).
	Safety float64
	// Cost configures the sampling estimators.
	Cost CostOptions
}

// BuildExplain runs the cost-model estimators for the described run and
// returns predicted-vs-actual rows: the model's k-th-pair distance and
// suggested distance cap against the observed k-th distance, and the
// pairs-within-d cardinality estimate against the observed result count.
func BuildExplain(a, b *Index, cfg ExplainConfig) ([]ExplainRow, error) {
	if cfg.Safety <= 0 {
		cfg.Safety = 2
	}
	var rows []ExplainRow
	add := func(metric string, predicted, actual float64) {
		rows = append(rows, ExplainRow{
			Metric:    metric,
			Predicted: predicted,
			Actual:    actual,
			RelErr:    profile.RelErr(predicted, actual),
		})
	}
	if cfg.K > 0 {
		dk, err := EstimateDistanceForK(a, b, cfg.K, cfg.Cost)
		if err != nil {
			return nil, fmt.Errorf("distjoin: explain distance-for-k: %w", err)
		}
		add("distance_for_k", dk, cfg.KthDist)
		sd, err := SuggestMaxDist(a, b, cfg.K, cfg.Safety, cfg.Cost)
		if err != nil {
			return nil, fmt.Errorf("distjoin: explain suggest-max-dist: %w", err)
		}
		if !math.IsInf(sd, 1) {
			add("suggest_max_dist", sd, cfg.KthDist)
		}
	}
	if cfg.MaxDist > 0 && !math.IsInf(cfg.MaxDist, 1) {
		pw, err := EstimatePairsWithin(a, b, cfg.MaxDist, cfg.Cost)
		if err != nil {
			return nil, fmt.Errorf("distjoin: explain pairs-within: %w", err)
		}
		add("pairs_within_d", pw, float64(cfg.PairsWithin))
	}
	return rows, nil
}
