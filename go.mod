module distjoin

go 1.22
