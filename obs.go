package distjoin

import (
	"io"
	"net/http"
	"time"

	"distjoin/internal/obs"
	"distjoin/internal/qtrace"
	"distjoin/internal/stats"
)

// Observability — the public surface of internal/obs. A Recorder attached
// to Options.Obs collects a structured event trace, incremental-latency
// histograms (inter-pair delay, pop-to-emit), and live gauges (queue depth,
// result frontier, per-partition progress, buffer-pool hit ratio) from a
// running join; ServeMetrics exposes them over HTTP as Prometheus text,
// expvar JSON, and pprof. A nil *Recorder is valid everywhere and records
// nothing, at zero cost — the same convention as Stats.

// Recorder collects events and metrics from a join execution.
type Recorder = obs.Recorder

// ObsConfig configures a Recorder.
type ObsConfig = obs.Config

// ObsEvent is one structured engine event; ObsEventType identifies its
// kind.
type (
	ObsEvent     = obs.Event
	ObsEventType = obs.EventType
)

// ObsSnapshot is a point-in-time view of a Recorder's metrics.
type ObsSnapshot = obs.Snapshot

// MetricsServer is a running metrics/pprof HTTP server.
type MetricsServer = obs.MetricsServer

// Trace event types.
const (
	EvEngineStart = obs.EvEngineStart
	EvEngineStop  = obs.EvEngineStop
	EvExpand      = obs.EvExpand
	EvEmit        = obs.EvEmit
	EvDeliver     = obs.EvDeliver
	EvSpill       = obs.EvSpill
	EvMergeStall  = obs.EvMergeStall
	EvRestart     = obs.EvRestart
	EvRetry       = obs.EvRetry
)

// NewRecorder creates an observability recorder; assign it to Options.Obs
// (and attach it to indexes with Index.SetObserver to capture buffer-pool
// hit ratios).
func NewRecorder(cfg ObsConfig) *Recorder { return obs.New(cfg) }

// ServeMetrics serves /metrics (Prometheus text), /debug/vars (expvar) and
// /debug/pprof on addr in a background goroutine. The stats argument may be
// nil.
func ServeMetrics(addr string, r *Recorder, c *Stats) (*MetricsServer, error) {
	return obs.ServeMetrics(addr, r, (*stats.Counters)(c))
}

// MetricsHandler returns an http.Handler serving the Prometheus text
// exposition, for mounting in a caller-owned mux.
func MetricsHandler(r *Recorder, c *Stats) http.Handler {
	return obs.Handler(r, (*stats.Counters)(c))
}

// Per-query lifecycle tracing — the public surface of internal/qtrace. A
// QueryTracer attached to Options.Tracer assigns every Join/SemiJoin/kNN
// run a query ID and records a hierarchical span tree (plan → partition
// workers → engine phases → queue disk-tier I/O) plus per-query resource
// accounting, retained in a bounded flight recorder and optionally written
// to a slow-query JSONL log. A nil *QueryTracer is valid everywhere and
// records nothing, at zero cost — the same convention as Stats and
// Recorder.

// QueryTracer is the per-query tracing subsystem: query IDs, flight
// recorder, slow-query log.
type QueryTracer = qtrace.Tracer

// QueryTraceConfig configures a QueryTracer.
type QueryTraceConfig = qtrace.Config

// NewQueryTracer creates a query tracer; assign it to Options.Tracer.
func NewQueryTracer(cfg QueryTraceConfig) *QueryTracer { return qtrace.New(cfg) }

// ServeMetricsTraced is ServeMetrics with per-query tracing attached: the
// /metrics exposition gains per-query resource gauges, and the tracer's
// flight recorder is served as JSON at /debug/queries and
// /debug/queries/<id>.
func ServeMetricsTraced(addr string, r *Recorder, c *Stats, qt *QueryTracer) (*MetricsServer, error) {
	return obs.ServeMetricsTraced(addr, r, (*stats.Counters)(c), qt)
}

// QueriesHandler returns an http.Handler serving the tracer's flight
// recorder as JSON, for mounting at prefix in a caller-owned mux.
func QueriesHandler(prefix string, qt *QueryTracer) http.Handler {
	return obs.QueriesHandler(prefix, qt)
}

// ReadTrace parses a JSONL trace written via ObsConfig.Trace.
func ReadTrace(rd io.Reader) ([]ObsEvent, error) { return obs.ReadTrace(rd) }

// TimeToKth scans a trace for the k-th delivered pair, returning its
// elapsed time and distance; ok is false when fewer than k pairs were
// delivered.
func TimeToKth(events []ObsEvent, k int64) (t time.Duration, dist float64, ok bool) {
	return obs.TimeToKth(events, k)
}

// SetObserver attaches both accounting sinks to the index's buffer pool:
// node I/O flows into c (as with SetCounters) and, when r is non-nil, also
// feeds r's live pool-hit-ratio gauge. Either argument may be nil.
func (idx *Index) SetObserver(r *Recorder, c *Stats) {
	idx.tree.Pool().SetCounters(r.PoolTap(stats.NodeSink((*stats.Counters)(c))))
}
