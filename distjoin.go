// Package distjoin is a Go implementation of the incremental distance join
// and distance semi-join algorithms of Hjaltason & Samet, "Incremental
// Distance Join Algorithms for Spatial Databases" (SIGMOD 1998), together
// with every substrate the paper builds on: a disk-paged R*-tree, the
// three-tier hybrid memory/disk priority queue, incremental nearest
// neighbour search, and the non-incremental baseline algorithms the paper
// compares against.
//
// # Quick start
//
//	water := distjoin.NewIndexFromPoints(waterPoints)   // builds an R*-tree
//	roads := distjoin.NewIndexFromPoints(roadPoints)
//	j, _ := distjoin.DistanceJoin(water, roads, distjoin.Options{})
//	defer j.Close()
//	for {
//		p, ok, _ := j.Next()       // pairs arrive closest-first
//		if !ok { break }
//		fmt.Println(p.Obj1, p.Obj2, p.Dist)
//	}
//
// The join is incremental: each Next call performs only the work needed to
// produce the next closest pair, so asking for ten pairs of a
// billion-pair join costs a tiny fraction of computing the join. The
// distance semi-join (DistanceSemiJoin) reports, for each object of the
// first input, its nearest object in the second — a clustering operator
// that computes a discrete Voronoi assignment when consumed fully.
//
// All options the paper evaluates are exposed: distance ranges, result
// count bounds with maximum-distance estimation, traversal and tie-breaking
// policies, queue implementations, semi-join filtering strategies, and
// farthest-first ordering. See Options and SemiFilter. Beyond the paper,
// Options.Parallelism runs the join partitioned across CPU cores with an
// order-preserving merge of the partition streams (see the "Parallel
// execution" section of the README).
package distjoin

import (
	"distjoin/internal/distjoin"
	"distjoin/internal/geom"
	"distjoin/internal/inn"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// Point is a point in d-dimensional space.
type Point = geom.Point

// Rect is an axis-aligned hyper-rectangle.
type Rect = geom.Rect

// Metric is a family of consistent distance functions.
type Metric = geom.Metric

// The built-in metrics.
var (
	Euclidean  = geom.Euclidean
	Manhattan  = geom.Manhattan
	Chessboard = geom.Chessboard
)

// Lp returns the general Minkowski metric of order p (p >= 1).
func Lp(p float64) Metric { return geom.Lp(p) }

// Pt constructs a Point from coordinates.
func Pt(coords ...float64) Point { return geom.Pt(coords...) }

// R constructs a Rect from low/high corner points.
func R(lo, hi Point) Rect { return geom.R(lo, hi) }

// ObjID identifies an indexed object.
type ObjID = rtree.ObjID

// Pair is one distance-join result tuple.
type Pair = distjoin.Pair

// Options configures a distance join or semi-join; see the field
// documentation in internal/distjoin for the mapping to the paper's
// sections.
type Options = distjoin.Options

// Traversal, TieBreak, QueueKind and SemiFilter select algorithm variants.
type (
	Traversal  = distjoin.Traversal
	TieBreak   = distjoin.TieBreak
	QueueKind  = distjoin.QueueKind
	SemiFilter = distjoin.SemiFilter
)

// Re-exported variant constants.
const (
	TraverseEven         = distjoin.TraverseEven
	TraverseBasic        = distjoin.TraverseBasic
	TraverseSimultaneous = distjoin.TraverseSimultaneous

	DepthFirst   = distjoin.DepthFirst
	BreadthFirst = distjoin.BreadthFirst

	QueueMemory = distjoin.QueueMemory
	QueueHybrid = distjoin.QueueHybrid

	FilterOutside     = distjoin.FilterOutside
	FilterInside1     = distjoin.FilterInside1
	FilterInside2     = distjoin.FilterInside2
	FilterLocal       = distjoin.FilterLocal
	FilterGlobalNodes = distjoin.FilterGlobalNodes
	FilterGlobalAll   = distjoin.FilterGlobalAll

	// ParallelismAuto, assigned to Options.Parallelism, runs one partition
	// worker per available CPU.
	ParallelismAuto = distjoin.ParallelismAuto
)

// Stats holds the performance counters of Table 1 (distance calculations,
// maximum queue size, node I/O).
type Stats = stats.Counters

// Join is an incremental distance join iterator.
type Join = distjoin.Join

// SemiJoin is an incremental distance semi-join iterator.
type SemiJoin = distjoin.SemiJoin

// Neighbor is one incremental nearest-neighbour result.
type Neighbor = inn.Result

// NNOptions configures nearest-neighbour searches.
type NNOptions = inn.Options

// DistanceJoin starts an incremental distance join of two indexes: the
// pairs of the Cartesian product of a and b are delivered in ascending
// order of distance, one per Next call.
func DistanceJoin(a, b *Index, opts Options) (*Join, error) {
	return distjoin.NewJoin(a.tree, b.tree, opts)
}

// DistanceSemiJoin starts an incremental distance semi-join: for each
// object of a, its nearest object in b, delivered in ascending order of
// distance. filter selects the §4.2.1 pruning strategy; FilterGlobalAll is
// the strongest and a good default.
func DistanceSemiJoin(a, b *Index, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return distjoin.NewSemiJoin(a.tree, b.tree, filter, opts)
}

// ClusteringJoin starts the symmetric "clustering join" of reference [32]
// (the operation the paper's §1 contrasts with the semi-join): pairs arrive
// in ascending distance order and each reported pair consumes BOTH its
// objects, producing a greedy mutual pairing of min(|a|, |b|) pairs.
func ClusteringJoin(a, b *Index, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return distjoin.NewClusteringJoin(a.tree, b.tree, filter, opts)
}

// KNearestJoin starts an incremental k-nearest-neighbours join: for each
// object of a, its k nearest objects in b, delivered in ascending order of
// distance (k = 1 is the distance semi-join). For k > 1, FilterInside2 is
// the strongest sound filter and is applied automatically when a stronger
// one is requested.
func KNearestJoin(a, b *Index, k int, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return distjoin.NewKNearestJoin(a.tree, b.tree, k, filter, opts)
}

// NearestNeighbors returns an iterator over the objects of idx in ascending
// distance from query (the incremental nearest-neighbour algorithm the join
// is derived from).
func NearestNeighbors(idx *Index, query Point, opts NNOptions) (*inn.Iterator, error) {
	return inn.New(idx.tree, query, opts)
}

// KNearest returns the k objects of idx nearest to query.
func KNearest(idx *Index, query Point, k int, opts NNOptions) ([]Neighbor, error) {
	return inn.Nearest(idx.tree, query, k, opts)
}
