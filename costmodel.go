package distjoin

import "distjoin/internal/costmodel"

// CostOptions configures the sampling-based estimators; see
// internal/costmodel. The zero value uses the Euclidean metric and a
// 256-object sample per input.
type CostOptions = costmodel.Options

// EstimatePairsWithin estimates how many (a, b) object pairs lie within
// distance d — the cardinality a query optimizer needs for a within join
// (§5's cost-model direction).
func EstimatePairsWithin(a, b *Index, d float64, opts CostOptions) (float64, error) {
	return costmodel.PairsWithin(a.tree, b.tree, d, opts)
}

// EstimateDistanceForK estimates the distance of the k-th closest pair of
// the distance join of a and b.
func EstimateDistanceForK(a, b *Index, k int, opts CostOptions) (float64, error) {
	return costmodel.DistanceForK(a.tree, b.tree, k, opts)
}

// EstimateSelectivity estimates the fraction of idx's objects accepted by
// pred — the quantity that decides between filtering the incremental join's
// output and pre-selecting into a new index (the two §5 query plans).
func EstimateSelectivity(idx *Index, pred func(ObjID) bool, opts CostOptions) (float64, error) {
	return costmodel.Selectivity(idx.tree, pred, opts)
}

// SuggestMaxDist proposes a MaxDist for a join that will stop after k
// pairs, inflated by the safety factor (>= 1). Pairing this with MaxPairs
// recovers most of Figure 7's MaxDist benefit without knowing the true
// k-th distance; if the suggestion proves too small the engine's restart
// path (§2.2.4) transparently recovers.
func SuggestMaxDist(a, b *Index, k int, safety float64, opts CostOptions) (float64, error) {
	return costmodel.SuggestMaxDist(a.tree, b.tree, k, safety, opts)
}
