package distjoin

import (
	"distjoin/internal/distjoin"
	"distjoin/internal/quadtree"
)

// SpatialIndex is the hierarchical-decomposition abstraction the join
// engine traverses. The paper's algorithms run over "a large class of
// hierarchical spatial data structures" (abstract, §2.2); this interface is
// that class. Index (an R*-tree) and QuadIndex (a bucket PR quadtree)
// implement it out of the box, in any combination, and custom structures
// can too.
type SpatialIndex = distjoin.SpatialIndex

// AsSpatialIndex exposes the R*-tree index for heterogeneous joins.
func (idx *Index) AsSpatialIndex() SpatialIndex { return distjoin.WrapRTree(idx.tree) }

// QuadIndex is a spatial index over point objects backed by a bucket PR
// quadtree — an unbalanced, space-partitioning alternative to the R*-tree
// (§2.2.2). Not safe for concurrent use.
type QuadIndex struct {
	tree *quadtree.Tree
}

// QuadConfig tunes quadtree construction.
type QuadConfig struct {
	// Bounds is the world extent; inserted points must lie inside.
	// Required.
	Bounds Rect
	// BucketSize is the leaf capacity before a split (default 8).
	BucketSize int
	// MaxDepth caps subdivision (default 24).
	MaxDepth int
	// Counters receives node-visit accounting. May be nil.
	Counters *Stats
}

// NewQuadIndex creates an empty quadtree index.
func NewQuadIndex(cfg QuadConfig) (*QuadIndex, error) {
	t, err := quadtree.New(quadtree.Config{
		Bounds:     cfg.Bounds,
		BucketSize: cfg.BucketSize,
		MaxDepth:   cfg.MaxDepth,
		Counters:   cfg.Counters,
	})
	if err != nil {
		return nil, err
	}
	return &QuadIndex{tree: t}, nil
}

// InsertPoint adds a point object.
func (q *QuadIndex) InsertPoint(p Point, id ObjID) error {
	return q.tree.Insert(p, uint64(id))
}

// Delete removes a point object; it returns false when not present.
func (q *QuadIndex) Delete(p Point, id ObjID) bool { return q.tree.Delete(p, uint64(id)) }

// Search calls fn for every point inside query; return false to stop.
func (q *QuadIndex) Search(query Rect, fn func(Point, ObjID) bool) {
	q.tree.Search(query, func(pt quadtree.Point) bool { return fn(pt.P, ObjID(pt.ID)) })
}

// Len returns the number of indexed points.
func (q *QuadIndex) Len() int { return q.tree.Len() }

// Bounds returns the world extent.
func (q *QuadIndex) Bounds() Rect { return q.tree.Bounds() }

// AsSpatialIndex exposes the quadtree for joins.
func (q *QuadIndex) AsSpatialIndex() SpatialIndex { return distjoin.WrapQuadtree(q.tree) }

// DistanceJoinIndexes starts an incremental distance join over any two
// SpatialIndex implementations — e.g. an R*-tree against a quadtree.
func DistanceJoinIndexes(a, b SpatialIndex, opts Options) (*Join, error) {
	return distjoin.NewJoinIndexes(a, b, opts)
}

// DistanceSemiJoinIndexes starts an incremental distance semi-join over any
// two SpatialIndex implementations.
func DistanceSemiJoinIndexes(a, b SpatialIndex, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return distjoin.NewSemiJoinIndexes(a, b, filter, opts)
}

// KNearestJoinIndexes starts an incremental k-nearest-neighbours join over
// any two SpatialIndex implementations (k = 1 is the distance semi-join).
func KNearestJoinIndexes(a, b SpatialIndex, k int, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return distjoin.NewKNearestJoinIndexes(a, b, k, filter, opts)
}

// ClusteringJoinIndexes starts the symmetric clustering join (see
// ClusteringJoin) over any two SpatialIndex implementations.
func ClusteringJoinIndexes(a, b SpatialIndex, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return distjoin.NewClusteringJoinIndexes(a, b, filter, opts)
}
