// Benchmarks regenerating the paper's evaluation (one bench per table and
// figure, §4), plus microbenchmarks of the core operations. Each evaluation
// bench drives the same experiment code as cmd/experiments at a reduced
// scale so `go test -bench=.` completes in minutes; run
// `go run ./cmd/experiments -scale full` for paper-cardinality numbers.
package distjoin_test

import (
	"io"
	"math/rand"
	"testing"

	"distjoin"
	idistjoin "distjoin/internal/distjoin"
	"distjoin/internal/experiments"
)

// benchScale keeps per-iteration work bounded for testing.B.
var benchScale = experiments.Scale{
	Name:       "bench",
	WaterN:     2_000,
	RoadsN:     10_000,
	PairCounts: []int{1, 10, 100, 1_000},
	HybridDT1:  30,
	HybridDT2:  120,
	Seed:       1998,
}

// loadBench builds the datasets once per benchmark.
func loadBench(b *testing.B) *experiments.Datasets {
	b.Helper()
	d, err := experiments.Load(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

func runExperiment(b *testing.B, fn func(*experiments.Datasets) ([]experiments.Run, error)) {
	d := loadBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (distance join measures at increasing
// result counts).
func BenchmarkTable1(b *testing.B) { runExperiment(b, experiments.Table1) }

// BenchmarkTable1Reversed regenerates the §4.1.1 reversed-operand runs.
func BenchmarkTable1Reversed(b *testing.B) { runExperiment(b, experiments.Table1Reversed) }

// BenchmarkFig6 regenerates Figure 6 (four algorithm versions).
func BenchmarkFig6(b *testing.B) { runExperiment(b, experiments.Fig6) }

// BenchmarkFig7 regenerates Figure 7 (maximum distance / maximum pairs).
func BenchmarkFig7(b *testing.B) { runExperiment(b, experiments.Fig7) }

// BenchmarkFig8 regenerates Figure 8 (memory vs hybrid queues).
func BenchmarkFig8(b *testing.B) { runExperiment(b, experiments.Fig8) }

// BenchmarkFig8Adaptive ablates the adaptive-D_T extension alone.
func BenchmarkFig8Adaptive(b *testing.B) {
	d := loadBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := idistjoin.NewJoin(d.Water, d.Roads, idistjoin.Options{
			Queue: idistjoin.QueueHybrid, HybridInMemory: true, // DT 0 = adaptive
		})
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 1000; k++ {
			if _, ok, err := j.Next(); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
		j.Close()
	}
}

// BenchmarkFig9 regenerates Figure 9 (semi-join filtering strategies).
func BenchmarkFig9(b *testing.B) { runExperiment(b, experiments.Fig9) }

// BenchmarkFig10 regenerates Figure 10 (semi-join max distance / max pairs).
func BenchmarkFig10(b *testing.B) { runExperiment(b, experiments.Fig10) }

// BenchmarkSec414NestedLoop regenerates the §4.1.4 nested-loop comparison.
func BenchmarkSec414NestedLoop(b *testing.B) { runExperiment(b, experiments.Sec414) }

// BenchmarkSec423SemiJoinVsNN regenerates the §4.2.3 comparison.
func BenchmarkSec423SemiJoinVsNN(b *testing.B) { runExperiment(b, experiments.Sec423) }

// ---- Microbenchmarks of the public API ----

func benchPoints(seed int64, n int) []distjoin.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]distjoin.Point, n)
	for i := range pts {
		pts[i] = distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
	}
	return pts
}

// BenchmarkFirstPair measures time-to-first-result — the headline
// "fast first" claim.
func BenchmarkFirstPair(b *testing.B) {
	a := distjoin.NewIndexFromPoints(benchPoints(1, 10_000))
	defer a.Close()
	c := distjoin.NewIndexFromPoints(benchPoints(2, 10_000))
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := distjoin.DistanceJoin(a, c, distjoin.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok, err := j.Next(); err != nil || !ok {
			b.Fatal(ok, err)
		}
		j.Close()
	}
}

// BenchmarkNextPairSteadyState measures the amortized cost per result in a
// long-running join.
func BenchmarkNextPairSteadyState(b *testing.B) {
	a := distjoin.NewIndexFromPoints(benchPoints(3, 10_000))
	defer a.Close()
	c := distjoin.NewIndexFromPoints(benchPoints(4, 10_000))
	defer c.Close()
	j, err := distjoin.DistanceJoin(a, c, distjoin.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

// BenchmarkIndexBuild measures bulk-loading throughput.
func BenchmarkIndexBuild(b *testing.B) {
	pts := benchPoints(5, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, pts)
		if err != nil {
			b.Fatal(err)
		}
		idx.Close()
	}
}

// BenchmarkIndexInsert measures one-at-a-time R* insertion.
func BenchmarkIndexInsert(b *testing.B) {
	idx, err := distjoin.NewIndex(distjoin.IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	rnd := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		if err := idx.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNearest measures incremental nearest-neighbour queries.
func BenchmarkKNearest(b *testing.B) {
	idx := distjoin.NewIndexFromPoints(benchPoints(7, 50_000))
	defer idx.Close()
	rnd := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := distjoin.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		if _, err := distjoin.KNearest(idx, q, 10, distjoin.NNOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemiJoinFull measures the full semi-join with the strongest
// filter — the §4.2.3 headline configuration.
func BenchmarkSemiJoinFull(b *testing.B) {
	a := distjoin.NewIndexFromPoints(benchPoints(9, 2_000))
	defer a.Close()
	c := distjoin.NewIndexFromPoints(benchPoints(10, 10_000))
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := distjoin.DistanceSemiJoin(a, c, distjoin.FilterGlobalAll, distjoin.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := s.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		s.Close()
	}
}

// BenchmarkAblationDeferLeaves measures the §2.2.2 deferred-leaf strategy
// against the default expansion on the bench datasets.
func BenchmarkAblationDeferLeaves(b *testing.B) {
	d := loadBench(b)
	for _, defer_ := range []bool{false, true} {
		name := "Default"
		if defer_ {
			name = "DeferLeaves"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := idistjoin.NewJoin(d.Water, d.Roads, idistjoin.Options{DeferLeaves: defer_})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 1000; k++ {
					if _, ok, err := j.Next(); err != nil || !ok {
						b.Fatal(ok, err)
					}
				}
				j.Close()
			}
		})
	}
}

// BenchmarkAblationPlaneSweep measures the Figure 4 plane sweep's effect on
// the Simultaneous traversal under a finite maximum distance (where the
// paper says it helps).
func BenchmarkAblationPlaneSweep(b *testing.B) {
	d := loadBench(b)
	for _, sweep := range []bool{true, false} {
		name := "Sweep"
		if !sweep {
			name = "NoSweep"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := idistjoin.NewJoin(d.Water, d.Roads, idistjoin.Options{
					Traversal:    idistjoin.TraverseSimultaneous,
					NoPlaneSweep: !sweep,
					MaxDist:      500,
				})
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 1000; k++ {
					if _, ok, err := j.Next(); err != nil || !ok {
						b.Fatal(ok, err)
					}
				}
				j.Close()
			}
		})
	}
}

// BenchmarkKNearestJoin measures the k-NN join extension.
func BenchmarkKNearestJoin(b *testing.B) {
	a := distjoin.NewIndexFromPoints(benchPoints(11, 1_000))
	defer a.Close()
	c := distjoin.NewIndexFromPoints(benchPoints(12, 5_000))
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := distjoin.KNearestJoin(a, c, 5, distjoin.FilterInside2, distjoin.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := s.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		s.Close()
	}
}

// BenchmarkParallelJoin measures the partitioned parallel join against the
// sequential path on the Table 1 workload (Water ⋈ Roads, a large result
// prefix). Sub-benchmark P1 is the sequential baseline; the Px speedups
// are only meaningful on a machine with that many CPUs — compare with
// `go test -bench ParallelJoin -cpu 1,2,4`.
func BenchmarkParallelJoin(b *testing.B) {
	d := loadBench(b)
	const k = 20_000
	for _, par := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "P1", 2: "P2", 4: "P4"}[par], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := idistjoin.NewJoin(d.Water, d.Roads, idistjoin.Options{
					MaxPairs:    k,
					Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := j.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				if n != k {
					b.Fatalf("drained %d pairs, want %d", n, k)
				}
				j.Close()
			}
		})
	}
}

// BenchmarkDimSweep regenerates the §5 higher-dimensions sweep.
func BenchmarkDimSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DimSweep(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinObs compares the join with observability disabled (nil
// Recorder — must match the plain BenchmarkTable1-style path) and enabled
// (recorder + trace sink into io.Discard), guarding the
// near-zero-overhead-when-disabled contract.
func BenchmarkJoinObs(b *testing.B) {
	d := loadBench(b)
	const k = 10_000
	for _, enabled := range []bool{false, true} {
		name := "Disabled"
		if enabled {
			name = "Enabled"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var rec *distjoin.Recorder
				if enabled {
					rec = distjoin.NewRecorder(distjoin.ObsConfig{Trace: io.Discard, ExpandEvery: 64})
				}
				j, err := idistjoin.NewJoin(d.Water, d.Roads, idistjoin.Options{
					MaxPairs: k,
					Obs:      rec,
				})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := j.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				if n != k {
					b.Fatalf("drained %d pairs, want %d", n, k)
				}
				j.Close()
				if err := rec.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinQTrace compares the join with per-query tracing disabled
// (nil Tracer — must match the plain path) and enabled (flight recorder +
// slow-query log into io.Discard), guarding the tentpole's ≤10% overhead
// criterion on the traced path and the zero-cost contract on the disabled
// one.
func BenchmarkJoinQTrace(b *testing.B) {
	d := loadBench(b)
	const k = 10_000
	for _, enabled := range []bool{false, true} {
		name := "Disabled"
		if enabled {
			name = "Enabled"
		}
		b.Run(name, func(b *testing.B) {
			var tracer *distjoin.QueryTracer
			if enabled {
				tracer = distjoin.NewQueryTracer(distjoin.QueryTraceConfig{SlowLog: io.Discard})
			}
			for i := 0; i < b.N; i++ {
				j, err := idistjoin.NewJoin(d.Water, d.Roads, idistjoin.Options{
					MaxPairs: k,
					Tracer:   tracer,
				})
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for {
					_, ok, err := j.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					n++
				}
				if n != k {
					b.Fatalf("drained %d pairs, want %d", n, k)
				}
				j.Close()
			}
			if err := tracer.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestNilRecorderZeroAllocs is the benchmark guard's hard assertion: the
// nil-Recorder hooks the engine calls per emitted pair must allocate
// nothing (and the whole per-pair iterator path must not regress above its
// steady-state allocation budget when Obs is nil).
func TestNilRecorderZeroAllocs(t *testing.T) {
	var rec *distjoin.Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		start := rec.Now()
		rec.Emit(-1, 1.0, 3, start)
		rec.Deliver(2.0)
		rec.Expand(-1, 0.5)
		rec.Spill(-1, 4.0, 1)
		rec.MergeStall(0)
	})
	if allocs != 0 {
		t.Fatalf("nil Recorder hooks allocate %v per pair, want 0", allocs)
	}
}
