package distjoin_test

import (
	"math"
	"sort"
	"testing"

	"distjoin"
)

func TestKClosestPairs(t *testing.T) {
	a := randomPoints(21, 80)
	b := randomPoints(22, 90)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()

	var want []float64
	for _, p := range a {
		for _, q := range b {
			want = append(want, distjoin.Euclidean.Dist(p, q))
		}
	}
	sort.Float64s(want)

	for _, k := range []int{1, 5, 50} {
		pairs, err := distjoin.KClosestPairs(ia, ib, k, distjoin.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != k {
			t.Fatalf("k=%d returned %d pairs", k, len(pairs))
		}
		for i, p := range pairs {
			if math.Abs(p.Dist-want[i]) > 1e-9 {
				t.Fatalf("k=%d pair %d: %g want %g", k, i, p.Dist, want[i])
			}
		}
	}
	// k larger than the product: everything comes back.
	pairs, err := distjoin.KClosestPairs(ia, ib, len(a)*len(b)+10, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(a)*len(b) {
		t.Fatalf("oversized k returned %d", len(pairs))
	}
	// k <= 0 is a no-op.
	if pairs, err := distjoin.KClosestPairs(ia, ib, 0, distjoin.Options{}); err != nil || pairs != nil {
		t.Fatal("k=0 misbehaved")
	}
}

func TestClosestPair(t *testing.T) {
	a := randomPoints(23, 40)
	b := randomPoints(24, 40)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()
	p, ok, err := distjoin.ClosestPair(ia, ib, distjoin.Options{})
	if err != nil || !ok {
		t.Fatalf("ClosestPair: %v %v", ok, err)
	}
	best := math.Inf(1)
	for _, x := range a {
		for _, y := range b {
			if d := distjoin.Euclidean.Dist(x, y); d < best {
				best = d
			}
		}
	}
	if math.Abs(p.Dist-best) > 1e-9 {
		t.Fatalf("ClosestPair dist %g, want %g", p.Dist, best)
	}
	empty := distjoin.NewIndexFromPoints(nil)
	defer empty.Close()
	if _, ok, err := distjoin.ClosestPair(ia, empty, distjoin.Options{}); err != nil || ok {
		t.Fatal("ClosestPair on empty input misbehaved")
	}
}

func TestWithinPairs(t *testing.T) {
	a := randomPoints(25, 60)
	b := randomPoints(26, 60)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()
	const maxDist = 8.0
	want := 0
	for _, p := range a {
		for _, q := range b {
			if distjoin.Euclidean.Dist(p, q) <= maxDist {
				want++
			}
		}
	}
	got := 0
	last := -1.0
	err := distjoin.WithinPairs(ia, ib, maxDist, distjoin.Options{}, func(p distjoin.Pair) bool {
		if p.Dist > maxDist || p.Dist < last {
			t.Fatalf("bad pair: dist %g after %g", p.Dist, last)
		}
		last = p.Dist
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("WithinPairs visited %d, want %d", got, want)
	}
	// Early stop.
	calls := 0
	distjoin.WithinPairs(ia, ib, maxDist, distjoin.Options{}, func(distjoin.Pair) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop ran %d callbacks", calls)
	}
}

func TestAssignNearest(t *testing.T) {
	stores := randomPoints(27, 70)
	warehouses := randomPoints(28, 6)
	is := distjoin.NewIndexFromPoints(stores)
	defer is.Close()
	iw := distjoin.NewIndexFromPoints(warehouses)
	defer iw.Close()
	assign, err := distjoin.AssignNearest(is, iw, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != len(stores) {
		t.Fatalf("assigned %d stores", len(assign))
	}
	for id, p := range assign {
		best := math.Inf(1)
		for _, w := range warehouses {
			if d := distjoin.Euclidean.Dist(stores[id], w); d < best {
				best = d
			}
		}
		if math.Abs(p.Dist-best) > 1e-9 {
			t.Fatalf("store %d assigned at %g, nearest %g", id, p.Dist, best)
		}
	}
}

func TestAllNearestNeighbors(t *testing.T) {
	pts := randomPoints(29, 80)
	idx := distjoin.NewIndexFromPoints(pts)
	defer idx.Close()
	res, err := distjoin.AllNearestNeighbors(idx, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pts) {
		t.Fatalf("ANN returned %d, want %d", len(res), len(pts))
	}
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Dist < res[j].Dist }) {
		t.Fatal("ANN results unsorted")
	}
	for _, p := range res {
		if p.Obj1 == p.Obj2 {
			t.Fatal("self pair in ANN")
		}
		best := math.Inf(1)
		for j, q := range pts {
			if j == int(p.Obj1) {
				continue
			}
			if d := distjoin.Euclidean.Dist(pts[p.Obj1], q); d < best {
				best = d
			}
		}
		if math.Abs(p.Dist-best) > 1e-9 {
			t.Fatalf("object %d: %g, true nearest-other %g", p.Obj1, p.Dist, best)
		}
	}
}

func TestPublicKNearestJoin(t *testing.T) {
	a := randomPoints(30, 40)
	b := randomPoints(31, 50)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()
	s, err := distjoin.KNearestJoin(ia, ib, 3, distjoin.FilterInside2, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	count := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != len(a)*3 {
		t.Fatalf("3-NN join returned %d pairs, want %d", count, len(a)*3)
	}
}

func TestCostModelPublicAPI(t *testing.T) {
	a := randomPoints(32, 400)
	b := randomPoints(33, 400)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()

	est, err := distjoin.EstimatePairsWithin(ia, ib, 10, distjoin.CostOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.0
	for _, p := range a {
		for _, q := range b {
			if distjoin.Euclidean.Dist(p, q) <= 10 {
				truth++
			}
		}
	}
	if truth > 100 && (est < truth/3 || est > truth*3) {
		t.Fatalf("EstimatePairsWithin %.0f vs truth %.0f", est, truth)
	}

	sel, err := distjoin.EstimateSelectivity(ia, func(id distjoin.ObjID) bool { return id%2 == 0 }, distjoin.CostOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel-0.5) > 0.15 {
		t.Fatalf("EstimateSelectivity = %.2f", sel)
	}

	d, err := distjoin.EstimateDistanceForK(ia, ib, 100, distjoin.CostOptions{Seed: 3})
	if err != nil || d <= 0 {
		t.Fatalf("EstimateDistanceForK: %g %v", d, err)
	}
	cap_, err := distjoin.SuggestMaxDist(ia, ib, 100, 2, distjoin.CostOptions{Seed: 3})
	if err != nil || cap_ < d {
		t.Fatalf("SuggestMaxDist: %g %v", cap_, err)
	}
}

func TestPublicClusteringJoin(t *testing.T) {
	a := randomPoints(34, 30)
	b := randomPoints(35, 45)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()
	s, err := distjoin.ClusteringJoin(ia, ib, distjoin.FilterInside2, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seenA := map[distjoin.ObjID]bool{}
	seenB := map[distjoin.ObjID]bool{}
	count := 0
	last := -1.0
	for {
		p, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seenA[p.Obj1] || seenB[p.Obj2] {
			t.Fatal("object reused")
		}
		if p.Dist < last {
			t.Fatal("order violated")
		}
		last = p.Dist
		seenA[p.Obj1] = true
		seenB[p.Obj2] = true
		count++
	}
	if count != 30 {
		t.Fatalf("clustering join produced %d pairs, want 30", count)
	}
}
