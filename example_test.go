package distjoin_test

import (
	"fmt"

	"distjoin"
)

// The distance join streams pairs of two indexed sets in ascending order of
// distance — consume only as many as you need.
func ExampleDistanceJoin() {
	shops := distjoin.NewIndexFromPoints([]distjoin.Point{
		distjoin.Pt(0, 0), distjoin.Pt(10, 0), distjoin.Pt(0, 10),
	})
	defer shops.Close()
	homes := distjoin.NewIndexFromPoints([]distjoin.Point{
		distjoin.Pt(1, 0), distjoin.Pt(10, 4),
	})
	defer homes.Close()

	j, _ := distjoin.DistanceJoin(shops, homes, distjoin.Options{})
	defer j.Close()
	for i := 0; i < 3; i++ {
		p, ok, _ := j.Next()
		if !ok {
			break
		}
		fmt.Printf("shop %d — home %d: %.0f\n", p.Obj1, p.Obj2, p.Dist)
	}
	// Output:
	// shop 0 — home 0: 1
	// shop 1 — home 1: 4
	// shop 1 — home 0: 9
}

// The distance semi-join assigns each first-input object its nearest
// second-input partner, closest assignments first.
func ExampleDistanceSemiJoin() {
	stores := distjoin.NewIndexFromPoints([]distjoin.Point{
		distjoin.Pt(1, 1), distjoin.Pt(9, 9), distjoin.Pt(9, 1),
	})
	defer stores.Close()
	warehouses := distjoin.NewIndexFromPoints([]distjoin.Point{
		distjoin.Pt(0, 0), distjoin.Pt(10, 10),
	})
	defer warehouses.Close()

	s, _ := distjoin.DistanceSemiJoin(stores, warehouses, distjoin.FilterGlobalAll, distjoin.Options{})
	defer s.Close()
	for {
		p, ok, _ := s.Next()
		if !ok {
			break
		}
		fmt.Printf("store %d → warehouse %d\n", p.Obj1, p.Obj2)
	}
	// Output:
	// store 0 → warehouse 0
	// store 1 → warehouse 1
	// store 2 → warehouse 0
}

// ClosestPair finds the single nearest pair of two sets without computing
// anything else.
func ExampleClosestPair() {
	a := distjoin.NewIndexFromPoints([]distjoin.Point{distjoin.Pt(0, 0), distjoin.Pt(50, 50)})
	defer a.Close()
	b := distjoin.NewIndexFromPoints([]distjoin.Point{distjoin.Pt(3, 4), distjoin.Pt(90, 90)})
	defer b.Close()

	p, ok, _ := distjoin.ClosestPair(a, b, distjoin.Options{})
	fmt.Println(ok, p.Obj1, p.Obj2, p.Dist)
	// Output: true 0 0 5
}

// KNearest runs the incremental nearest-neighbour search the join is
// derived from.
func ExampleKNearest() {
	idx := distjoin.NewIndexFromPoints([]distjoin.Point{
		distjoin.Pt(0, 0), distjoin.Pt(2, 0), distjoin.Pt(9, 9),
	})
	defer idx.Close()
	res, _ := distjoin.KNearest(idx, distjoin.Pt(1, 0), 2, distjoin.NNOptions{})
	for _, r := range res {
		fmt.Printf("obj %d at distance %.0f\n", r.Obj, r.Dist)
	}
	// Output:
	// obj 0 at distance 1
	// obj 1 at distance 1
}

// WithinPairs enumerates all pairs within a distance, nearest first — the
// spatial join with a within predicate.
func ExampleWithinPairs() {
	a := distjoin.NewIndexFromPoints([]distjoin.Point{distjoin.Pt(0, 0), distjoin.Pt(100, 0)})
	defer a.Close()
	b := distjoin.NewIndexFromPoints([]distjoin.Point{distjoin.Pt(0, 3), distjoin.Pt(100, 7), distjoin.Pt(50, 50)})
	defer b.Close()

	distjoin.WithinPairs(a, b, 10, distjoin.Options{}, func(p distjoin.Pair) bool {
		fmt.Printf("(%d, %d) at %.0f\n", p.Obj1, p.Obj2, p.Dist)
		return true
	})
	// Output:
	// (0, 0) at 3
	// (1, 1) at 7
}

// The clustering join pairs the two inputs mutually: each reported pair
// consumes both of its objects.
func ExampleClusteringJoin() {
	a := distjoin.NewIndexFromPoints([]distjoin.Point{distjoin.Pt(0, 0), distjoin.Pt(1, 0)})
	defer a.Close()
	b := distjoin.NewIndexFromPoints([]distjoin.Point{distjoin.Pt(0, 1), distjoin.Pt(5, 5)})
	defer b.Close()

	s, _ := distjoin.ClusteringJoin(a, b, distjoin.FilterInside2, distjoin.Options{})
	defer s.Close()
	for {
		p, ok, _ := s.Next()
		if !ok {
			break
		}
		fmt.Printf("%d ↔ %d\n", p.Obj1, p.Obj2)
	}
	// Output:
	// 0 ↔ 0
	// 1 ↔ 1
}
