package distjoin

// KClosestPairs returns the k closest (a, b) object pairs in ascending
// distance order — a one-call wrapper over the incremental join with the
// §2.2.4 maximum-distance estimation enabled. Fewer than k pairs are
// returned when the Cartesian product is smaller.
func KClosestPairs(a, b *Index, k int, opts Options) ([]Pair, error) {
	if k <= 0 {
		return nil, nil
	}
	opts.MaxPairs = k
	j, err := DistanceJoin(a, b, opts)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	out := make([]Pair, 0, k)
	for len(out) < k {
		p, ok, err := j.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out, nil
}

// ClosestPair returns the single closest pair of the two inputs, and false
// when either input is empty.
func ClosestPair(a, b *Index, opts Options) (Pair, bool, error) {
	pairs, err := KClosestPairs(a, b, 1, opts)
	if err != nil || len(pairs) == 0 {
		return Pair{}, false, err
	}
	return pairs[0], true, nil
}

// WithinPairs invokes fn for every (a, b) pair within maxDist of each
// other, in ascending distance order — the spatial join with a within
// predicate (§1), computed incrementally so fn can stop the enumeration
// early by returning false. Like every wrapper in this file it honours
// Options.Parallelism; the fully-consumed operations (this one,
// AllNearestNeighbors, AssignNearest) are the ones with the most work to
// spread across cores.
func WithinPairs(a, b *Index, maxDist float64, opts Options, fn func(Pair) bool) error {
	opts.MaxDist = maxDist
	j, err := DistanceJoin(a, b, opts)
	if err != nil {
		return err
	}
	defer j.Close()
	for {
		p, ok, err := j.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if !fn(p) {
			return nil
		}
	}
}

// AllNearestNeighbors computes, for every object of idx, its nearest OTHER
// object in the same index — the classic all-nearest-neighbours operation
// the paper's introduction positions the distance join against — returned
// in ascending order of distance. The index must hold at least two objects
// for any result to exist.
func AllNearestNeighbors(idx *Index, opts Options) ([]Pair, error) {
	opts.OmitEqualIDs = true
	s, err := KNearestJoin(idx, idx, 1, FilterInside2, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	out := make([]Pair, 0, idx.Len())
	for {
		p, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, p)
	}
}

// AssignNearest computes the full distance semi-join as a map from each
// first-input object to its nearest second-input partner — the clustering
// operation of §1 (a discrete Voronoi assignment for point data).
func AssignNearest(a, b *Index, opts Options) (map[ObjID]Pair, error) {
	s, err := DistanceSemiJoin(a, b, FilterGlobalAll, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	out := make(map[ObjID]Pair, a.Len())
	for {
		p, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out[p.Obj1] = p
	}
}
