package qtrace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) identities and
// the traceparent/tracestate wire format, hand-rolled so the query service
// can join distributed traces without any OpenTelemetry dependency. A
// client's inbound traceparent becomes the ancestor of the cursor's query
// trace; every response echoes a traceparent so multi-pull sessions stitch
// into one trace at whatever collector the OTLP exporter ships to.

// TraceID is the 16-byte W3C trace identifier shared by every span of one
// distributed trace.
type TraceID [16]byte

// SpanID is the 8-byte W3C identifier of one span.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex digits; ok is false for malformed or all-zero
// input.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(strings.ToLower(s))); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// ParseSpanID parses 16 hex digits; ok is false for malformed or all-zero
// input.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(strings.ToLower(s))); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// FlagSampled is the traceparent sampled flag: upstream wants this trace
// recorded.
const FlagSampled byte = 0x01

// SpanContext is one span's W3C identity: the trace it belongs to, its own
// span id, the trace flags, and the vendor tracestate, propagated opaquely.
// The zero value is "no trace context".
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
	// State is the raw tracestate header value, carried through untouched
	// (this system adds no entries of its own).
	State string
}

// Valid reports whether the context carries usable identifiers.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Sampled reports the sampled trace flag.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// TraceParent renders the context in traceparent wire format,
// "00-<trace-id>-<span-id>-<flags>". Empty for an invalid context.
func (sc SpanContext) TraceParent() string {
	if !sc.Valid() {
		return ""
	}
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(sc.TraceID.String())
	b.WriteByte('-')
	b.WriteString(sc.SpanID.String())
	b.WriteByte('-')
	const hexdigits = "0123456789abcdef"
	b.WriteByte(hexdigits[sc.Flags>>4])
	b.WriteByte(hexdigits[sc.Flags&0x0f])
	return b.String()
}

// ParseTraceParent parses a traceparent header value. Per the W3C spec,
// version ff is invalid, versions above 00 are accepted as long as the
// 00-format prefix parses (forward compatibility), and all-zero trace or
// parent ids are rejected.
func ParseTraceParent(s string) (SpanContext, bool) {
	s = strings.TrimSpace(s)
	if len(s) < 55 {
		return SpanContext{}, false
	}
	version := s[0:2]
	if version == "ff" || !isHex(version) {
		return SpanContext{}, false
	}
	// A version-00 value is exactly 55 chars; later versions may append
	// fields after another dash.
	if len(s) > 55 {
		if version == "00" || s[55] != '-' {
			return SpanContext{}, false
		}
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	tid, ok := ParseTraceID(s[3:35])
	if !ok {
		return SpanContext{}, false
	}
	sid, ok := ParseSpanID(s[36:52])
	if !ok {
		return SpanContext{}, false
	}
	if !isHex(s[53:55]) {
		return SpanContext{}, false
	}
	var flags [1]byte
	hex.Decode(flags[:], []byte(strings.ToLower(s[53:55])))
	return SpanContext{TraceID: tid, SpanID: sid, Flags: flags[0]}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// idSeq de-duplicates the fallback id stream if crypto/rand ever fails
// (practically impossible; a nanosecond clock alone could collide under
// concurrency).
var idSeq atomic.Uint64

// NewTraceID returns a fresh random trace id.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil || t.IsZero() {
		binary.BigEndian.PutUint64(t[0:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(t[8:16], idSeq.Add(1))
	}
	return t
}

// NewSpanID returns a fresh random span id.
func NewSpanID() SpanID {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil || s.IsZero() {
		binary.BigEndian.PutUint64(s[:], uint64(time.Now().UnixNano())^idSeq.Add(1))
	}
	return s
}
