// Package qtrace is the per-query lifecycle tracing layer of the
// incremental distance join: every Join/SemiJoin/kNN run gets a query ID
// and a hierarchical span tree (plan → partition workers → engine phases →
// queue disk-tier I/O), assembled from the same nil-safe profile.Spans
// accumulators the engine, the hybrid priority queue and the pager already
// thread through their hot paths.
//
// Where internal/profile answers "where did THIS run's time go" as one flat
// phase list, qtrace answers the operational questions of a server hosting
// many concurrent resumable cursors: which query is this, which of its
// partition workers is stuck, did it die and why, and what did it cost. On
// top of the per-query traces sit:
//
//   - a flight recorder: a bounded ring of the last N completed query
//     traces, always on while a Tracer is attached, dumpable as JSON via
//     the /debug/queries handlers of internal/obs.ServeMetrics;
//   - a slow-query log: queries exceeding a wall-time or work-counter
//     threshold (node I/O, distance calculations) emit their full span
//     tree as one structured JSONL line;
//   - per-query resource accounting (pairs, distance calculations, node
//     I/O, I/O faults/retries, batch prunes, peak queue depth), exported
//     as labeled gauges on /metrics.
//
// The package follows the repository's nil-safety convention: a nil
// *Tracer begins nil *Query values, every method of Tracer, Query and
// Worker is a no-op on a nil receiver, performs no clock reads and
// allocates nothing, so the engine's hot path is untouched when tracing is
// off (pinned by a testing.AllocsPerRun test). Like internal/profile it
// depends only on the standard library, internal/profile and
// internal/stats, so it sits below internal/obs, internal/pqueue and
// internal/distjoin in the import graph.
package qtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/profile"
	"distjoin/internal/stats"
)

// SchemaVersion identifies the JSON schema of QueryTrace documents (the
// flight-recorder dumps and slow-query log lines). Bump on any incompatible
// change; the checked-in schema in testdata/querytrace.schema.json and the
// CI smoke validation track it.
const SchemaVersion = 1

// DefaultFlightSize is the flight-recorder ring size when Config.FlightSize
// is unset.
const DefaultFlightSize = 16

// Config configures a Tracer. The zero value keeps a default-sized flight
// recorder and no slow-query log.
type Config struct {
	// FlightSize bounds the flight recorder: the ring retains the last
	// FlightSize completed query traces (default DefaultFlightSize).
	FlightSize int
	// SlowLog, when non-nil, receives slow-query traces as JSONL — one
	// QueryTrace document per line. Writes are buffered; call Tracer.Close
	// to flush.
	SlowLog io.Writer
	// SlowWall logs queries whose wall time reaches the threshold.
	// With SlowLog set and every threshold zero, every query is logged.
	SlowWall time.Duration
	// SlowNodeIO logs queries whose node I/O count (reads + writes)
	// reaches the threshold.
	SlowNodeIO int64
	// SlowDistCalcs logs queries whose object distance-computation count
	// reaches the threshold.
	SlowDistCalcs int64
	// OnComplete, when non-nil, receives every completed query trace after
	// it lands in the flight recorder (and slow-query log). The OTLP span
	// exporter hooks here to ship span trees to a collector. Called
	// synchronously without the tracer's lock held; the hook must not
	// block for long.
	OnComplete func(*QueryTrace)
}

// Tracer is the process-wide query tracing subsystem: it assigns query IDs,
// owns the flight recorder and the slow-query log. Attach one to
// Options.Tracer; all methods are safe for concurrent use and all are
// no-ops on a nil receiver.
type Tracer struct {
	cfg    Config
	seq    atomic.Uint64
	active atomic.Int64

	mu      sync.Mutex
	ring    []*QueryTrace // completed traces, oldest first
	slow    *bufio.Writer
	slowErr error
	// pre maps a query id to trace context registered via PreBegin before
	// the engine's Begin call; entries are consumed by Begin (or dropped by
	// Unlink when engine construction fails).
	pre map[string]preContext
}

// preContext is a PreBegin registration: the span context the query's trace
// will carry plus the id of its remote parent span.
type preContext struct {
	sc     SpanContext
	parent SpanID
}

// New creates a Tracer.
func New(cfg Config) *Tracer {
	if cfg.FlightSize <= 0 {
		cfg.FlightSize = DefaultFlightSize
	}
	t := &Tracer{cfg: cfg}
	if cfg.SlowLog != nil {
		t.slow = bufio.NewWriterSize(cfg.SlowLog, 64*1024)
	}
	return t
}

// Begin starts tracing one query run. kind names the operation ("join",
// "semijoin", "knn", "clustering"); id overrides the tracer-assigned query
// ID when non-empty. A nil tracer returns a nil query, which disables all
// downstream tracing at zero cost.
func (t *Tracer) Begin(kind, id string) *Query {
	if t == nil {
		return nil
	}
	if id == "" {
		id = fmt.Sprintf("q%07d", t.seq.Add(1))
	} else {
		t.seq.Add(1)
	}
	t.active.Add(1)
	q := &Query{tr: t, id: id, kind: kind, start: time.Now()}
	// Adopt pre-registered trace context (PreBegin), else mint a fresh
	// root identity so every trace is exportable as a distributed span.
	t.mu.Lock()
	pc, ok := t.pre[id]
	if ok {
		delete(t.pre, id)
	}
	t.mu.Unlock()
	if ok {
		q.sc, q.parentSpan = pc.sc, pc.parent
	} else {
		q.sc = SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	}
	return q
}

// PreBegin registers W3C trace context for an upcoming query id and returns
// the span context the query's trace will carry: the parent's trace id (or
// a fresh one when parent is invalid), a fresh span id, and the parent's
// flags and tracestate. The query service calls this before constructing a
// cursor's engine so the inbound traceparent becomes the ancestor of the
// cursor's query trace; the returned context is what pull spans link to and
// what the create response echoes. The registration is consumed by the
// matching Begin; call Unlink if the engine never starts. Nil-safe: a nil
// tracer still returns a usable context (propagation works untraced).
func (t *Tracer) PreBegin(id string, parent SpanContext) SpanContext {
	sc := SpanContext{
		TraceID: parent.TraceID,
		SpanID:  NewSpanID(),
		Flags:   parent.Flags,
		State:   parent.State,
	}
	if !parent.Valid() {
		sc.TraceID = NewTraceID()
		sc.Flags = FlagSampled
		sc.State = ""
	}
	if t == nil {
		return sc
	}
	t.mu.Lock()
	if t.pre == nil {
		t.pre = make(map[string]preContext)
	}
	t.pre[id] = preContext{sc: sc, parent: parent.SpanID}
	t.mu.Unlock()
	return sc
}

// Unlink drops a PreBegin registration whose query never began (engine
// construction failed). Nil-safe.
func (t *Tracer) Unlink(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.pre, id)
	t.mu.Unlock()
}

// Active returns the number of begun-but-unfinished queries.
func (t *Tracer) Active() int64 {
	if t == nil {
		return 0
	}
	return t.active.Load()
}

// Traces returns the flight recorder's contents, newest first. The traces
// are immutable once completed; callers may hold them without copying.
func (t *Tracer) Traces() []*QueryTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*QueryTrace, len(t.ring))
	for i, tr := range t.ring {
		out[len(t.ring)-1-i] = tr
	}
	return out
}

// Trace returns the newest completed trace with the given query ID, or nil.
func (t *Tracer) Trace(id string) *QueryTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].ID == id {
			return t.ring[i]
		}
	}
	return nil
}

// Close flushes the slow-query log and returns the first write error
// encountered, if any. The flight recorder remains readable after Close;
// further completed queries are still recorded to the ring but not the log.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.slow == nil {
		return t.slowErr
	}
	if err := t.slow.Flush(); err != nil && t.slowErr == nil {
		t.slowErr = err
	}
	t.slow = nil
	return t.slowErr
}

// complete lands a finished trace in the flight recorder and, when it
// crosses a slow threshold, the slow-query log; the OnComplete hook (OTLP
// export) runs last, outside the lock.
func (t *Tracer) complete(qt *QueryTrace) {
	t.active.Add(-1)
	t.landTrace(qt)
	if t.cfg.OnComplete != nil {
		t.cfg.OnComplete(qt)
	}
}

func (t *Tracer) landTrace(qt *QueryTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) >= t.cfg.FlightSize {
		n := copy(t.ring, t.ring[len(t.ring)-t.cfg.FlightSize+1:])
		t.ring = t.ring[:n]
	}
	t.ring = append(t.ring, qt)
	if t.slow != nil && t.isSlow(qt) {
		line, err := json.Marshal(qt)
		if err == nil {
			line = append(line, '\n')
			if _, err = t.slow.Write(line); err == nil {
				// One flush per slow query: the log is low-volume by
				// definition, and a line must be readable while the
				// process is still running (and survive a crash).
				err = t.slow.Flush()
			}
		}
		if err != nil && t.slowErr == nil {
			t.slowErr = err
		}
	}
}

// isSlow applies the slow-query thresholds. With no threshold configured,
// every query counts as slow (the log becomes a full query log).
func (t *Tracer) isSlow(qt *QueryTrace) bool {
	c := t.cfg
	if c.SlowWall <= 0 && c.SlowNodeIO <= 0 && c.SlowDistCalcs <= 0 {
		return true
	}
	if c.SlowWall > 0 && qt.WallSeconds >= c.SlowWall.Seconds() {
		return true
	}
	if c.SlowNodeIO > 0 && qt.Resources.NodeIO >= c.SlowNodeIO {
		return true
	}
	if c.SlowDistCalcs > 0 && qt.Resources.DistCalcs >= c.SlowDistCalcs {
		return true
	}
	return false
}

// Query is one live (running) query trace. The join layer brackets its
// lifecycle: Begin at construction, PlanDone after validation/partitioning/
// seeding, one StartWorker per engine, MergeAdd around the parallel merge,
// and Finish when the iterator closes. All methods are nil-safe.
type Query struct {
	tr    *Tracer
	id    string
	kind  string
	start time.Time

	// sc is the query's W3C span identity (the "query" root span of its
	// trace document); parentSpan is the remote parent registered via
	// PreBegin (zero when the query is a trace root).
	sc         SpanContext
	parentSpan SpanID

	planNS  atomic.Int64
	mergeNS atomic.Int64
	merges  atomic.Int64

	wmu     sync.Mutex
	workers []*Worker

	counters *stats.Counters
	owned    bool           // counters are query-owned (no baseline subtraction)
	base     stats.Counters // snapshot of shared counters at attach time

	finished atomic.Bool
}

// ID returns the query's ID ("" for a nil query).
func (q *Query) ID() string {
	if q == nil {
		return ""
	}
	return q.id
}

// Now returns the current time, or the zero time on a nil query — callers
// bracket plan work with q.Now() so a disabled tracer skips the clock read.
func (q *Query) Now() time.Time {
	if q == nil {
		return time.Time{}
	}
	return time.Now()
}

// AttachCounters wires the query's resource accounting to the run's
// stats.Counters and returns the counters the run should use. A nil c makes
// the query own a fresh counter set; a caller-supplied c is snapshotted so
// Finish reports the query's delta even when the counters are shared across
// runs. (MaxQueueSize is a high-water mark, not additive: on shared
// counters the reported peak covers the counters' lifetime, not only this
// query.) Nil-safe: a nil query returns c unchanged.
func (q *Query) AttachCounters(c *stats.Counters) *stats.Counters {
	if q == nil {
		return c
	}
	if c == nil {
		q.counters = &stats.Counters{}
		q.owned = true
		return q.counters
	}
	q.counters = c
	q.base = c.Snapshot()
	return c
}

// PlanDone records the plan span: everything between Begin and the engines
// being ready to pop (validation, partition planning, queue construction,
// seeding).
func (q *Query) PlanDone(start time.Time) {
	if q == nil {
		return
	}
	if d := time.Since(start); d > 0 {
		q.planNS.Add(int64(d))
	}
}

// MergeAdd records one parallel order-preserving-merge bracket, including
// the time the merge blocked waiting on partition workers.
func (q *Query) MergeAdd(d time.Duration) {
	if q == nil {
		return
	}
	if d > 0 {
		q.mergeNS.Add(int64(d))
	}
	q.merges.Add(1)
}

// StartWorker registers one engine (partition id part; -1 for the
// sequential engine) and returns its span accumulator. The engine records
// its phase spans into Worker.Spans — single-writer, like the per-worker
// shards of the parallel path — and calls Done when it closes.
func (q *Query) StartWorker(part int32) *Worker {
	if q == nil {
		return nil
	}
	w := &Worker{part: part}
	q.wmu.Lock()
	q.workers = append(q.workers, w)
	q.wmu.Unlock()
	return w
}

// Worker is the per-engine slice of a query trace: one partition worker of
// the parallel path, or the single sequential engine (part -1).
type Worker struct {
	part      int32
	sp        profile.Spans
	pairs     atomic.Int64
	restarted atomic.Bool
	done      atomic.Bool
}

// Spans returns the worker's phase-span accumulator (nil for a nil worker,
// which disables profiling in the engine that receives it).
func (w *Worker) Spans() *profile.Spans {
	if w == nil {
		return nil
	}
	return &w.sp
}

// Done records the worker's final tally when its engine closes.
func (w *Worker) Done(pairs int64, restarted bool) {
	if w == nil {
		return
	}
	w.pairs.Store(pairs)
	if restarted {
		w.restarted.Store(true)
	}
	w.done.Store(true)
}

// Finish completes the query trace: the span tree is assembled from the
// plan/merge brackets and the worker span accumulators, the resource delta
// is read from the attached counters, and the trace lands in the tracer's
// flight recorder (and slow-query log, when it qualifies). err annotates a
// query that died; nil marks a clean finish. Finish is idempotent — the
// first call wins — and nil-safe. The join layer calls it on iterator
// Close, after the runner has released every engine, so the worker spans
// are quiescent.
func (q *Query) Finish(err error) *QueryTrace {
	if q == nil || !q.finished.CompareAndSwap(false, true) {
		return nil
	}
	wall := time.Since(q.start)
	qt := &QueryTrace{
		SchemaVersion: SchemaVersion,
		ID:            q.id,
		Kind:          q.kind,
		StartTime:     q.start.Format(time.RFC3339Nano),
		WallSeconds:   wall.Seconds(),
	}
	if q.sc.Valid() {
		qt.TraceID = q.sc.TraceID.String()
		qt.SpanID = q.sc.SpanID.String()
		qt.TraceFlags = int(q.sc.Flags)
		if !q.parentSpan.IsZero() {
			qt.ParentSpanID = q.parentSpan.String()
		}
	}
	if err != nil {
		qt.Error = err.Error()
	}
	q.wmu.Lock()
	workers := q.workers
	q.wmu.Unlock()
	qt.Workers = len(workers)
	qt.Root = q.buildTree(wall, workers)
	for _, w := range workers {
		if w.restarted.Load() {
			qt.Restarted = true
		}
	}
	qt.Resources = q.resources()
	qt.Coverage = q.coverage(wall, workers)
	q.tr.complete(qt)
	return qt
}

// buildTree assembles the hierarchical span tree:
//
//	query
//	├── plan                  validation, partitioning, queue build, seeding
//	├── merge                 parallel only: order-preserving stream merge
//	└── worker (per engine)
//	    ├── expand            node-pair expansion (sweep/block generation)
//	    ├── push              queue insertion, excluding nested spills
//	    ├── pop               queue removal, excluding nested fetches
//	    ├── spill             hybrid-queue disk-tier writes
//	    │   └── io_write      of which: physical page writes (pager)
//	    ├── fetch             hybrid-queue disk-tier reads
//	    │   └── io_read       of which: physical page reads (pager)
//	    └── emit              per-result residue of the engine loop
func (q *Query) buildTree(wall time.Duration, workers []*Worker) Span {
	root := Span{Name: "query", Seconds: wall.Seconds()}
	root.Children = append(root.Children, Span{
		Name:    "plan",
		Seconds: time.Duration(q.planNS.Load()).Seconds(),
		Count:   1,
	})
	if n := q.merges.Load(); n > 0 {
		root.Children = append(root.Children, Span{
			Name:    "merge",
			Seconds: time.Duration(q.mergeNS.Load()).Seconds(),
			Count:   n,
		})
	}
	for _, w := range workers {
		root.Children = append(root.Children, w.span())
	}
	return root
}

// span renders one worker's phase spans as a subtree.
func (w *Worker) span() Span {
	part := int(w.part)
	ws := Span{
		Name:    "worker",
		Part:    &part,
		Seconds: time.Duration(w.sp.TotalNS()).Seconds(),
		Count:   w.pairs.Load(),
	}
	io := w.sp.IOSnapshot()
	for p := 0; p < profile.NumPhases; p++ {
		ph := profile.Phase(p)
		n, ns := w.sp.Count(ph), w.sp.NS(ph)
		if n == 0 && ns == 0 {
			continue
		}
		child := Span{Name: ph.String(), Seconds: time.Duration(ns).Seconds(), Count: n}
		// Physical page I/O is nested inside the disk-tier phases that
		// trigger it: reads inside fetch, writes inside spill. They are
		// "of which" figures (Nested), not additive with sibling spans.
		switch ph {
		case profile.PhaseSpill:
			if io.Writes > 0 {
				child.Children = []Span{{Name: "io_write", Seconds: io.WriteSeconds, Count: io.Writes, Nested: true}}
			}
		case profile.PhaseFetch:
			if io.Reads > 0 {
				child.Children = []Span{{Name: "io_read", Seconds: io.ReadSeconds, Count: io.Reads, Nested: true}}
			}
		}
		ws.Children = append(ws.Children, child)
	}
	return ws
}

// coverage computes the fraction of query wall time the span accounting
// explains. On the sequential path the single worker's disjoint phases plus
// the plan span should cover nearly everything; on the parallel path the
// workers run concurrently with the merge, so the merge bracket (which
// includes its blocking waits) stands in for them.
func (q *Query) coverage(wall time.Duration, workers []*Worker) float64 {
	if wall <= 0 {
		return 0
	}
	covered := q.planNS.Load()
	if q.merges.Load() > 0 {
		covered += q.mergeNS.Load()
	} else if len(workers) == 1 {
		covered += workers[0].sp.TotalNS()
	}
	return float64(covered) / float64(wall.Nanoseconds())
}

// resources reads the query's resource accounting from the attached
// counters: the raw totals when the query owns them, the delta against the
// Begin-time snapshot when they are shared.
func (q *Query) resources() Resources {
	if q.counters == nil {
		return Resources{}
	}
	s := q.counters.Snapshot()
	if !q.owned {
		b := q.base
		s.PairsReported -= b.PairsReported
		s.DistCalcs -= b.DistCalcs
		s.NodeDistCalcs -= b.NodeDistCalcs
		s.NodeReads -= b.NodeReads
		s.NodeWrites -= b.NodeWrites
		s.BufferHits -= b.BufferHits
		s.QueueInserts -= b.QueueInserts
		s.QueuePops -= b.QueuePops
		s.QueueDiskPairs -= b.QueueDiskPairs
		s.IOFaults -= b.IOFaults
		s.IORetries -= b.IORetries
		s.BatchPruned -= b.BatchPruned
		s.Filtered -= b.Filtered
		// MaxQueueSize is a high-water mark, not additive: keep the final
		// value (see AttachCounters).
	}
	return Resources{
		Pairs:          s.PairsReported,
		DistCalcs:      s.DistCalcs,
		NodeDistCalcs:  s.NodeDistCalcs,
		NodeIO:         s.NodeReads + s.NodeWrites,
		BufferHits:     s.BufferHits,
		QueueInserts:   s.QueueInserts,
		QueuePops:      s.QueuePops,
		QueueDiskPairs: s.QueueDiskPairs,
		IOFaults:       s.IOFaults,
		IORetries:      s.IORetries,
		BatchPruned:    s.BatchPruned,
		Filtered:       s.Filtered,
		PeakQueueDepth: s.MaxQueueSize,
	}
}

// QueryTrace is one completed query's trace document — the unit the flight
// recorder retains, /debug/queries/<id> serves, and the slow-query log
// emits as one JSONL line. Immutable once built.
type QueryTrace struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Kind          string `json:"kind"`
	// TraceID/SpanID/ParentSpanID are the query's W3C trace identity: the
	// distributed trace it belongs to, the id of its "query" root span, and
	// the remote parent span registered before Begin (empty when the query
	// is its trace's root). TraceFlags carries the W3C flags byte (bit 0:
	// sampled). The OTLP exporter ships the span tree under this identity,
	// and the slow-query log line carries it so a log line, a flight-
	// recorder entry, and a collector trace cross-reference each other.
	TraceID      string  `json:"trace_id,omitempty"`
	SpanID       string  `json:"span_id,omitempty"`
	ParentSpanID string  `json:"parent_span_id,omitempty"`
	TraceFlags   int     `json:"trace_flags,omitempty"`
	StartTime    string  `json:"start_time"`
	WallSeconds  float64 `json:"wall_seconds"`
	// Workers is the number of engines the run used: 1 on the sequential
	// path, the partition count on the parallel path.
	Workers int `json:"workers"`
	// Error annotates a query that died (storage fault, checksum mismatch,
	// failed partition worker, ...). Empty on a clean finish.
	Error string `json:"error,omitempty"`
	// Restarted reports whether any engine used the §2.2.4 restart.
	Restarted bool `json:"restarted,omitempty"`
	// Coverage is the fraction of wall time the span tree explains.
	Coverage  float64   `json:"phase_coverage"`
	Root      Span      `json:"root"`
	Resources Resources `json:"resources"`
}

// Span is one node of the hierarchical span tree.
type Span struct {
	Name string `json:"name"`
	// Part is the engine's partition id on worker spans (-1 sequential);
	// nil elsewhere.
	Part    *int    `json:"part,omitempty"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count,omitempty"`
	// Nested marks an "of which" span (physical I/O inside spill/fetch):
	// its time is included in its parent, not additive with siblings.
	Nested   bool   `json:"nested,omitempty"`
	Children []Span `json:"children,omitempty"`
}

// Find returns the first descendant span (depth-first, including s itself)
// with the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if f := s.Children[i].Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Resources is the per-query resource accounting: the run's work counters
// scoped to this query (see Query.AttachCounters for the shared-counters
// caveat on PeakQueueDepth).
type Resources struct {
	Pairs          int64 `json:"pairs_reported"`
	DistCalcs      int64 `json:"dist_calcs"`
	NodeDistCalcs  int64 `json:"node_dist_calcs"`
	NodeIO         int64 `json:"node_io"`
	BufferHits     int64 `json:"buffer_hits"`
	QueueInserts   int64 `json:"queue_inserts"`
	QueuePops      int64 `json:"queue_pops"`
	QueueDiskPairs int64 `json:"queue_disk_pairs"`
	IOFaults       int64 `json:"io_faults"`
	IORetries      int64 `json:"io_retries"`
	BatchPruned    int64 `json:"batch_pruned"`
	Filtered       int64 `json:"filtered"`
	PeakQueueDepth int64 `json:"peak_queue_depth"`
}
