package qtrace

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"distjoin/internal/profile"
	"distjoin/internal/stats"
)

// runQuery drives one synthetic query through the full lifecycle the join
// layer uses: Begin → AttachCounters → plan bracket → workers recording
// spans → Done → Finish.
func runQuery(t *Tracer, kind, id string, workers int, err error) *QueryTrace {
	q := t.Begin(kind, id)
	c := q.AttachCounters(nil)
	planStart := q.Now()
	time.Sleep(time.Microsecond)
	q.PlanDone(planStart)
	c.ReportPair()
	c.AddDistCalc(1)
	c.AddNodeRead(1)
	for i := 0; i < workers; i++ {
		w := q.StartWorker(int32(i))
		sp := w.Spans()
		sp.Add(profile.PhaseExpand, 3*time.Millisecond)
		sp.Add(profile.PhasePop, time.Millisecond)
		sp.Add(profile.PhaseSpill, 2*time.Millisecond)
		sp.ObserveWrite(time.Millisecond)
		w.Done(int64(10+i), false)
	}
	if workers > 1 {
		q.MergeAdd(time.Millisecond)
	}
	return q.Finish(err)
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	q := tr.Begin("join", "x")
	if q != nil {
		t.Fatalf("nil tracer Begin = %v, want nil", q)
	}
	if got := q.AttachCounters(nil); got != nil {
		t.Fatalf("nil query AttachCounters(nil) = %v, want nil", got)
	}
	c := &stats.Counters{}
	if got := q.AttachCounters(c); got != c {
		t.Fatalf("nil query AttachCounters must pass counters through")
	}
	q.PlanDone(q.Now())
	q.MergeAdd(time.Second)
	w := q.StartWorker(0)
	if w != nil {
		t.Fatalf("nil query StartWorker = %v, want nil", w)
	}
	if sp := w.Spans(); sp != nil {
		t.Fatalf("nil worker Spans = %v, want nil", sp)
	}
	w.Done(1, true)
	if qt := q.Finish(nil); qt != nil {
		t.Fatalf("nil query Finish = %v, want nil", qt)
	}
	if tr.Active() != 0 || tr.Traces() != nil || tr.Trace("x") != nil || tr.Close() != nil {
		t.Fatalf("nil tracer accessors must be zero-valued no-ops")
	}
}

// TestDisabledZeroAllocs pins the Options.Obs contract on the tracing
// layer: with no tracer attached, the whole per-query bracket set performs
// zero allocations.
func TestDisabledZeroAllocs(t *testing.T) {
	var tr *Tracer
	c := &stats.Counters{}
	allocs := testing.AllocsPerRun(100, func() {
		q := tr.Begin("join", "")
		c2 := q.AttachCounters(c)
		q.PlanDone(q.Now())
		w := q.StartWorker(0)
		_ = w.Spans()
		q.MergeAdd(0)
		w.Done(1, false)
		q.Finish(nil)
		if c2 != c {
			t.Fatal("counters not passed through")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v per run, want 0", allocs)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	tr := New(Config{FlightSize: 3})
	for i := 0; i < 5; i++ {
		runQuery(tr, "join", fmt.Sprintf("id%d", i), 1, nil)
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(traces))
	}
	// Newest first, and only the last FlightSize survive.
	for i, want := range []string{"id4", "id3", "id2"} {
		if traces[i].ID != want {
			t.Fatalf("traces[%d].ID = %q, want %q", i, traces[i].ID, want)
		}
	}
	if tr.Trace("id0") != nil {
		t.Fatalf("evicted trace id0 still retrievable")
	}
	if got := tr.Trace("id3"); got == nil || got.ID != "id3" {
		t.Fatalf("Trace(id3) = %v", got)
	}
	if tr.Active() != 0 {
		t.Fatalf("Active = %d after all queries finished, want 0", tr.Active())
	}
}

func TestAssignedQueryIDs(t *testing.T) {
	tr := New(Config{})
	a := tr.Begin("join", "")
	b := tr.Begin("knn", "custom")
	if a.ID() == "" || !strings.HasPrefix(a.ID(), "q") {
		t.Fatalf("assigned ID = %q, want q-prefixed", a.ID())
	}
	if b.ID() != "custom" {
		t.Fatalf("user ID = %q, want custom", b.ID())
	}
	if tr.Active() != 2 {
		t.Fatalf("Active = %d, want 2", tr.Active())
	}
	a.Finish(nil)
	a.Finish(nil) // idempotent: second Finish must not double-complete
	b.Finish(nil)
	if tr.Active() != 0 {
		t.Fatalf("Active = %d after Finish, want 0", tr.Active())
	}
	if len(tr.Traces()) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(tr.Traces()))
	}
}

func TestTraceContents(t *testing.T) {
	tr := New(Config{})
	qt := runQuery(tr, "knn", "q-abc", 2, errors.New("boom"))
	if qt == nil {
		t.Fatal("Finish returned nil trace")
	}
	if qt.SchemaVersion != SchemaVersion || qt.ID != "q-abc" || qt.Kind != "knn" {
		t.Fatalf("header = %+v", qt)
	}
	if qt.Error != "boom" {
		t.Fatalf("Error = %q, want boom", qt.Error)
	}
	if qt.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", qt.Workers)
	}
	if qt.Root.Name != "query" || qt.Root.Seconds <= 0 {
		t.Fatalf("root span = %+v", qt.Root)
	}
	if plan := qt.Root.Find("plan"); plan == nil || plan.Seconds <= 0 {
		t.Fatalf("plan span = %+v", plan)
	}
	if mg := qt.Root.Find("merge"); mg == nil || mg.Count != 1 {
		t.Fatalf("merge span = %+v", mg)
	}
	if ex := qt.Root.Find("expand"); ex == nil || ex.Seconds < 0.003 {
		t.Fatalf("expand span = %+v", ex)
	}
	spill := qt.Root.Find("spill")
	if spill == nil || len(spill.Children) != 1 || spill.Children[0].Name != "io_write" || !spill.Children[0].Nested {
		t.Fatalf("spill span = %+v", spill)
	}
	// Query-owned counters: the delta is the raw totals.
	if qt.Resources.Pairs != 1 || qt.Resources.DistCalcs != 1 || qt.Resources.NodeIO != 1 {
		t.Fatalf("resources = %+v", qt.Resources)
	}
	if qt.Coverage < 0 || math.IsNaN(qt.Coverage) {
		t.Fatalf("coverage = %v", qt.Coverage)
	}
}

// TestSharedCountersDelta: a caller-owned counter set shared across queries
// still yields per-query resource deltas.
func TestSharedCountersDelta(t *testing.T) {
	tr := New(Config{})
	shared := &stats.Counters{}
	shared.ReportPair()
	shared.AddDistCalc(1)
	shared.AddDistCalc(1)

	q := tr.Begin("join", "with-baseline")
	c := q.AttachCounters(shared)
	if c != shared {
		t.Fatal("AttachCounters must keep caller counters")
	}
	c.ReportPair()
	c.AddDistCalc(1)
	qt := q.Finish(nil)
	if qt.Resources.Pairs != 1 || qt.Resources.DistCalcs != 1 {
		t.Fatalf("shared-counter delta = %+v, want 1 pair / 1 dist calc", qt.Resources)
	}
}

func TestSlowLogGating(t *testing.T) {
	t.Run("all-when-unthresholded", func(t *testing.T) {
		var buf bytes.Buffer
		tr := New(Config{SlowLog: &buf})
		runQuery(tr, "join", "a", 1, nil)
		runQuery(tr, "join", "b", 1, nil)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if n := countLines(&buf); n != 2 {
			t.Fatalf("unthresholded slow log has %d lines, want 2", n)
		}
	})
	t.Run("wall-threshold", func(t *testing.T) {
		var buf bytes.Buffer
		tr := New(Config{SlowLog: &buf, SlowWall: time.Hour})
		runQuery(tr, "join", "fast", 1, nil)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if n := countLines(&buf); n != 0 {
			t.Fatalf("fast query logged %d lines under 1h threshold", n)
		}
	})
	t.Run("counter-threshold", func(t *testing.T) {
		var buf bytes.Buffer
		tr := New(Config{SlowLog: &buf, SlowWall: time.Hour, SlowDistCalcs: 1})
		runQuery(tr, "join", "heavy", 1, nil) // performs 1 dist calc
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		if n := countLines(&buf); n != 1 {
			t.Fatalf("dist-calc-gated slow log has %d lines, want 1", n)
		}
		var qt QueryTrace
		if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &qt); err != nil {
			t.Fatalf("slow log line is not valid JSON: %v", err)
		}
		if qt.ID != "heavy" || qt.Root.Find("plan") == nil {
			t.Fatalf("slow log trace = %+v", qt)
		}
	})
}

func countLines(buf *bytes.Buffer) int {
	n := 0
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// TestTraceMatchesSchema validates a marshalled trace against the
// checked-in JSON schema (testdata/querytrace.schema.json) with a
// dependency-free draft-07 subset validator — the same schema the CI smoke
// step checks /debug/queries dumps against.
func TestTraceMatchesSchema(t *testing.T) {
	schema := loadSchema(t)
	tr := New(Config{})
	for _, tc := range []struct {
		kind    string
		workers int
		err     error
	}{
		{"join", 1, nil},
		{"knn", 3, nil},
		{"semijoin", 1, errors.New("injected fault")},
	} {
		qt := runQuery(tr, tc.kind, "", tc.workers, tc.err)
		raw, err := json.Marshal(qt)
		if err != nil {
			t.Fatal(err)
		}
		var doc any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		if err := validate(schema, schema, doc, "$"); err != nil {
			t.Errorf("%s trace violates schema: %v\n%s", tc.kind, err, raw)
		}
	}
}

// TestSchemaRejectsBadDocs guards the validator itself: documents missing
// required fields or carrying wrong types must fail.
func TestSchemaRejectsBadDocs(t *testing.T) {
	schema := loadSchema(t)
	qt := runQuery(New(Config{}), "join", "", 1, nil)
	good, _ := json.Marshal(qt)
	for name, mutate := range map[string]func(m map[string]any){
		"missing-id":      func(m map[string]any) { delete(m, "id") },
		"wrong-kind":      func(m map[string]any) { m["kind"] = "table-scan" },
		"string-wall":     func(m map[string]any) { m["wall_seconds"] = "fast" },
		"bad-span-name":   func(m map[string]any) { m["root"].(map[string]any)["name"] = "mystery" },
		"float-resources": func(m map[string]any) { m["resources"].(map[string]any)["node_io"] = 1.5 },
	} {
		var doc map[string]any
		if err := json.Unmarshal(good, &doc); err != nil {
			t.Fatal(err)
		}
		mutate(doc)
		if err := validate(schema, schema, doc, "$"); err == nil {
			t.Errorf("%s: schema accepted an invalid document", name)
		}
	}
}

func loadSchema(t *testing.T) map[string]any {
	t.Helper()
	raw, err := os.ReadFile("testdata/querytrace.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema is not valid JSON: %v", err)
	}
	return schema
}

// validate implements the draft-07 subset the schema uses: type, enum,
// required, properties, items, and local $ref. root is the document root
// schema (for resolving "#/definitions/..." refs).
func validate(root, schema map[string]any, doc any, path string) error {
	if ref, ok := schema["$ref"].(string); ok {
		target, err := resolveRef(root, ref)
		if err != nil {
			return err
		}
		return validate(root, target, doc, path)
	}
	if typ, ok := schema["type"].(string); ok {
		if err := checkType(typ, doc, path); err != nil {
			return err
		}
	}
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if v == doc {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: value %v not in enum %v", path, doc, enum)
		}
	}
	if obj, ok := doc.(map[string]any); ok {
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				if _, present := obj[r.(string)]; !present {
					return fmt.Errorf("%s: missing required field %q", path, r)
				}
			}
		}
		if props, ok := schema["properties"].(map[string]any); ok {
			for name, sub := range props {
				v, present := obj[name]
				if !present {
					continue
				}
				if err := validate(root, sub.(map[string]any), v, path+"."+name); err != nil {
					return err
				}
			}
		}
	}
	if arr, ok := doc.([]any); ok {
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range arr {
				if err := validate(root, items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkType(typ string, doc any, path string) error {
	ok := false
	switch typ {
	case "object":
		_, ok = doc.(map[string]any)
	case "array":
		_, ok = doc.([]any)
	case "string":
		_, ok = doc.(string)
	case "boolean":
		_, ok = doc.(bool)
	case "number":
		_, ok = doc.(float64)
	case "integer":
		f, isNum := doc.(float64)
		ok = isNum && f == math.Trunc(f)
	default:
		return fmt.Errorf("%s: unsupported schema type %q", path, typ)
	}
	if !ok {
		return fmt.Errorf("%s: value %v is not a %s", path, doc, typ)
	}
	return nil
}

func resolveRef(root map[string]any, ref string) (map[string]any, error) {
	const prefix = "#/"
	if !strings.HasPrefix(ref, prefix) {
		return nil, fmt.Errorf("unsupported $ref %q", ref)
	}
	cur := any(root)
	for _, seg := range strings.Split(strings.TrimPrefix(ref, prefix), "/") {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("$ref %q: %q is not an object", ref, seg)
		}
		cur, ok = m[seg]
		if !ok {
			return nil, fmt.Errorf("$ref %q: missing segment %q", ref, seg)
		}
	}
	m, ok := cur.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("$ref %q does not resolve to a schema", ref)
	}
	return m, nil
}
