package qtrace

import (
	"fmt"
	"sync"
	"testing"
)

// TestFlightRecorderEvictionOrder fills the ring far past capacity and
// checks the eviction policy precisely: the recorder keeps exactly the
// last FlightSize completed queries, Traces() returns them newest first,
// and Trace(id) resolves only retained ids.
func TestFlightRecorderEvictionOrder(t *testing.T) {
	const size, total = 8, 30
	tr := New(Config{FlightSize: size})

	for i := 0; i < total; i++ {
		q := tr.Begin("join", fmt.Sprintf("q%03d", i))
		q.Finish(nil)
	}

	got := tr.Traces()
	if len(got) != size {
		t.Fatalf("ring holds %d traces, want %d", len(got), size)
	}
	// Newest first: q029, q028, ... q022.
	for i, qt := range got {
		want := fmt.Sprintf("q%03d", total-1-i)
		if qt.ID != want {
			t.Fatalf("Traces()[%d] = %s, want %s", i, qt.ID, want)
		}
	}
	// Evicted ids are unresolvable; retained ids resolve.
	if tr.Trace("q000") != nil {
		t.Fatal("evicted trace q000 still resolvable")
	}
	if tr.Trace(fmt.Sprintf("q%03d", total-size-1)) != nil {
		t.Fatalf("newest evicted trace still resolvable")
	}
	if tr.Trace(fmt.Sprintf("q%03d", total-size)) == nil {
		t.Fatalf("oldest retained trace missing")
	}
	if tr.Trace(fmt.Sprintf("q%03d", total-1)) == nil {
		t.Fatal("newest trace missing")
	}
	if tr.Active() != 0 {
		t.Fatalf("active = %d after all queries finished", tr.Active())
	}
}

// TestFlightRecorderDuplicateIDs checks Trace(id) returns the NEWEST trace
// when an id repeats — the resumable-cursor service reuses a cursor id as
// the query id, so a retried query must shadow its predecessor.
func TestFlightRecorderDuplicateIDs(t *testing.T) {
	tr := New(Config{FlightSize: 4})
	q1 := tr.Begin("join", "dup")
	q1.Finish(nil)
	first := tr.Trace("dup")
	q2 := tr.Begin("semijoin", "dup")
	q2.Finish(nil)
	second := tr.Trace("dup")
	if second == first {
		t.Fatal("Trace returned the older duplicate")
	}
	if second.Kind != "semijoin" {
		t.Fatalf("newest duplicate kind = %q", second.Kind)
	}
}

// TestFlightRecorderConcurrentCompletions completes many short queries
// from racing goroutines and checks ring invariants hold throughout: the
// ring never exceeds FlightSize, never contains a nil or duplicate entry,
// and ends with exactly the configured capacity.
func TestFlightRecorderConcurrentCompletions(t *testing.T) {
	const size, workers, perWorker = 8, 16, 50
	tr := New(Config{FlightSize: size})

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				traces := tr.Traces()
				if len(traces) > size {
					t.Errorf("ring grew to %d > FlightSize %d", len(traces), size)
					return
				}
				seen := make(map[string]bool, len(traces))
				for _, qt := range traces {
					if qt == nil {
						t.Error("nil trace in ring")
						return
					}
					if seen[qt.ID] {
						t.Errorf("duplicate id %s in one snapshot", qt.ID)
						return
					}
					seen[qt.ID] = true
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				q := tr.Begin("join", fmt.Sprintf("w%02d-%03d", w, i))
				q.Finish(nil)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := len(tr.Traces()); got != size {
		t.Fatalf("final ring size %d, want %d", got, size)
	}
	if tr.Active() != 0 {
		t.Fatalf("active = %d", tr.Active())
	}
}
