package qtrace

import (
	"strings"
	"testing"
)

func TestParseTraceParent(t *testing.T) {
	const good = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceParent(good)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) failed", good)
	}
	if sc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", sc.TraceID)
	}
	if sc.SpanID.String() != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", sc.SpanID)
	}
	if !sc.Sampled() || !sc.Valid() {
		t.Errorf("flags = %02x, want sampled+valid", sc.Flags)
	}
	if rt := sc.TraceParent(); rt != good {
		t.Errorf("round trip = %q, want %q", rt, good)
	}

	// Uppercase hex parses (case-insensitive per spec), renders lowercase.
	up, ok := ParseTraceParent(strings.ToUpper(good))
	if !ok || up.TraceID != sc.TraceID || up.SpanID != sc.SpanID {
		t.Errorf("uppercase parse: ok=%v sc=%+v", ok, up)
	}

	// Future versions: extra fields tolerated after a dash, 00 must be exact.
	if _, ok := ParseTraceParent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version value with suffix rejected")
	}

	bad := []string{
		"",
		"00",
		good + "x", // version 00 with trailing junk
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff invalid
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // bad hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // short
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted", s)
		}
	}
}

func TestNewIDsAreDistinct(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 64; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() || seenT[tid] || seenS[sid] {
			t.Fatalf("id collision or zero at %d: %s %s", i, tid, sid)
		}
		seenT[tid] = true
		seenS[sid] = true
	}
}

// TestPreBeginAdoptsParentContext pins the trace-context flow the query
// service depends on: PreBegin under a client parent yields a child context
// on the client's trace, and the trace document carries the full identity.
func TestPreBeginAdoptsParentContext(t *testing.T) {
	parent, _ := ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	parent.State = "vendor=1"
	tr := New(Config{})

	sc := tr.PreBegin("c1", parent)
	if sc.TraceID != parent.TraceID {
		t.Fatalf("PreBegin trace id = %s, want parent's", sc.TraceID)
	}
	if sc.SpanID == parent.SpanID || sc.SpanID.IsZero() {
		t.Fatalf("PreBegin span id = %s, want fresh", sc.SpanID)
	}
	if sc.State != "vendor=1" || !sc.Sampled() {
		t.Fatalf("PreBegin context = %+v, want state+flags propagated", sc)
	}

	q := tr.Begin("join", "c1")
	qt := q.Finish(nil)
	if qt.TraceID != parent.TraceID.String() || qt.SpanID != sc.SpanID.String() {
		t.Errorf("trace doc identity = %s/%s, want %s/%s", qt.TraceID, qt.SpanID, parent.TraceID, sc.SpanID)
	}
	if qt.ParentSpanID != parent.SpanID.String() {
		t.Errorf("parent span = %q, want %s", qt.ParentSpanID, parent.SpanID)
	}
	if qt.TraceFlags != int(FlagSampled) {
		t.Errorf("trace flags = %d, want %d", qt.TraceFlags, FlagSampled)
	}

	// The registration was consumed: a second Begin with the same id roots
	// a fresh trace.
	qt2 := tr.Begin("join", "c1").Finish(nil)
	if qt2.TraceID == qt.TraceID || qt2.ParentSpanID != "" {
		t.Errorf("second trace = %s parent %q, want fresh root", qt2.TraceID, qt2.ParentSpanID)
	}
}

func TestPreBeginInvalidParentRootsFreshTrace(t *testing.T) {
	tr := New(Config{})
	sc := tr.PreBegin("c2", SpanContext{})
	if !sc.Valid() || !sc.Sampled() {
		t.Fatalf("PreBegin with no parent = %+v, want fresh sampled root", sc)
	}
	qt := tr.Begin("join", "c2").Finish(nil)
	if qt.TraceID != sc.TraceID.String() || qt.ParentSpanID != "" {
		t.Errorf("trace = %s parent %q, want %s with no parent", qt.TraceID, qt.ParentSpanID, sc.TraceID)
	}
}

func TestUnlinkDropsRegistration(t *testing.T) {
	tr := New(Config{})
	sc := tr.PreBegin("c3", SpanContext{})
	tr.Unlink("c3")
	qt := tr.Begin("join", "c3").Finish(nil)
	if qt.TraceID == sc.TraceID.String() {
		t.Error("unlinked context was still adopted")
	}
}

func TestOnCompleteHook(t *testing.T) {
	var tr *Tracer
	var got []*QueryTrace
	tr = New(Config{OnComplete: func(qt *QueryTrace) {
		// The hook runs outside the tracer's lock: reading the flight
		// recorder from inside it must not deadlock, and the completed
		// trace is already visible there.
		if tr.Trace(qt.ID) != qt {
			t.Errorf("trace %s not in flight recorder during hook", qt.ID)
		}
		got = append(got, qt)
	}})
	tr.Begin("join", "q-hook").Finish(nil)
	if len(got) != 1 || got[0].ID != "q-hook" {
		t.Fatalf("OnComplete saw %d trace(s), want one q-hook", len(got))
	}
}
