package qtrace

import (
	"fmt"
	"os"
	"strconv"
	"sync"
)

// RotatingFile is a size-capped io.WriteCloser for JSONL logs: when a write
// would push the active file past MaxBytes, the file rotates — path becomes
// path.1, path.1 becomes path.2, and so on up to MaxFiles-1 retained
// archives (the oldest is deleted) — and the write lands in a fresh file.
// A long-running daemon's slow-query log is therefore bounded at roughly
// MaxFiles × MaxBytes on disk regardless of uptime.
//
// Rotation happens between writes, never inside one, so each JSONL line
// stays whole in exactly one file. Writes are serialized by an internal
// mutex; the Tracer's slow-query log writes one line per Write call, which
// makes the pair safe and line-atomic together.
type RotatingFile struct {
	path     string
	maxBytes int64
	maxFiles int

	mu   sync.Mutex
	f    *os.File
	size int64
}

// Default rotation bounds when OpenRotatingFile receives zero values.
const (
	DefaultSlowLogMaxBytes = 64 << 20 // 64 MiB per file
	DefaultSlowLogMaxFiles = 3        // active file + 2 archives
)

// OpenRotatingFile opens (creating or appending to) the log at path.
// maxBytes caps one file (0: DefaultSlowLogMaxBytes); maxFiles is the total
// file count including the active one (0: DefaultSlowLogMaxFiles; 1 keeps
// no archives — rotation truncates).
func OpenRotatingFile(path string, maxBytes int64, maxFiles int) (*RotatingFile, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSlowLogMaxBytes
	}
	if maxFiles <= 0 {
		maxFiles = DefaultSlowLogMaxFiles
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &RotatingFile{path: path, maxBytes: maxBytes, maxFiles: maxFiles, f: f, size: st.Size()}, nil
}

// Write appends p, rotating first when the active file would exceed the
// byte cap. A single write larger than the cap still lands whole (in its
// own fresh file) — lines are never split across files.
func (r *RotatingFile) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return 0, os.ErrClosed
	}
	if r.size > 0 && r.size+int64(len(p)) > r.maxBytes {
		if err := r.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := r.f.Write(p)
	r.size += int64(n)
	return n, err
}

// rotate shifts the archive chain and reopens a fresh active file. Caller
// holds mu.
func (r *RotatingFile) rotate() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	r.f = nil
	// Shift path.(maxFiles-2) → path.(maxFiles-1) … path → path.1; the
	// archive past the retention bound falls off (os.Rename replaces it).
	if r.maxFiles > 1 {
		for i := r.maxFiles - 2; i >= 1; i-- {
			os.Rename(r.archive(i), r.archive(i+1))
		}
		if err := os.Rename(r.path, r.archive(1)); err != nil {
			return fmt.Errorf("qtrace: rotating %s: %w", r.path, err)
		}
	} else if err := os.Remove(r.path); err != nil {
		return fmt.Errorf("qtrace: rotating %s: %w", r.path, err)
	}
	f, err := os.OpenFile(r.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	r.f = f
	r.size = 0
	return nil
}

// archive names the i-th rotated file: path.1 is the newest archive.
func (r *RotatingFile) archive(i int) string {
	return r.path + "." + strconv.Itoa(i)
}

// Close closes the active file. Further writes fail with os.ErrClosed.
func (r *RotatingFile) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}
