package qtrace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRotatingFileRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.jsonl")
	// Cap of 100 bytes, 3 files total (active + 2 archives).
	rf, err := OpenRotatingFile(path, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	line := func(i int) []byte {
		return []byte(strings.Repeat("x", 35) + string(rune('a'+i)) + "\n") // 37 bytes
	}
	// 100/37 = 2 lines per file; 9 lines → active{i,h} + .1{g,f} + .2{e,d},
	// with the two oldest archives (a,b / c) rotated off the end.
	for i := 0; i < 9; i++ {
		if _, err := rf.Write(line(i)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{path, path + ".1", path + ".2"} {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if n := int64(len(b)); n > 100 {
			t.Errorf("%s is %d bytes, cap 100", f, n)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("path.3 exists beyond the retention bound")
	}
	// The newest line is in the active file; lines never split.
	b, _ := os.ReadFile(path)
	if !bytes.HasSuffix(b, line(8)) {
		t.Errorf("active file does not end with the newest line: %q", b)
	}
}

func TestRotatingFileOversizeLineLandsWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.jsonl")
	rf, err := OpenRotatingFile(path, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	big := []byte(strings.Repeat("y", 50) + "\n")
	if _, err := rf.Write([]byte("short\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Write(big); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if !bytes.Equal(b, big) {
		t.Errorf("active file = %q, want the oversize line whole", b)
	}
}

func TestRotatingFileAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slow.jsonl")
	rf, err := OpenRotatingFile(path, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rf.Write([]byte("one\n"))
	rf.Close()
	rf, err = OpenRotatingFile(path, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rf.Write([]byte("two\n"))
	rf.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "one\ntwo\n" {
		t.Errorf("after reopen: %q", b)
	}
	if _, err := rf.Write([]byte("late\n")); err != os.ErrClosed {
		t.Errorf("write after close = %v, want os.ErrClosed", err)
	}
}

// TestTracerSlowLogOnRotatingFile wires the two together the way distjoind
// does and checks every rotated line is intact JSON.
func TestTracerSlowLogOnRotatingFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.jsonl")
	rf, err := OpenRotatingFile(path, 2048, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{SlowLog: rf})
	for i := 0; i < 12; i++ {
		tr.Begin("join", "").Finish(nil)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range []string{path + ".2", path + ".1", path} {
		b, err := os.ReadFile(f)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var qt QueryTrace
			if err := json.Unmarshal(line, &qt); err != nil {
				t.Fatalf("%s: corrupt line %q: %v", f, line, err)
			}
			total++
		}
	}
	// Retention is bounded, not lossless: the oldest lines rotate off the
	// end. Everything retained must be intact, and the bound must hold.
	if total < 3 || total > 12 {
		t.Errorf("recovered %d intact lines across rotated files, want 3..12", total)
	}
}
