// Package buildinfo reads the binary's embedded build metadata
// (debug.ReadBuildInfo) once and exposes it three ways: a human-readable
// -version line for every cmd/ binary, a distjoin_build_info Prometheus
// gauge on /metrics, and the version string the OTLP exporter stamps on its
// resource attributes. Everything degrades to "unknown" when the binary was
// built without module or VCS metadata (e.g. go run from a tarball).
package buildinfo

import (
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"sync"
)

// Info is the subset of build metadata the system reports.
type Info struct {
	// Version is the main module's version ("(devel)" for a workspace
	// build, a semver tag for a released one).
	Version string
	// Revision is the VCS revision the binary was built from, shortened to
	// 12 characters; "-dirty" is appended when the working tree was
	// modified.
	Revision string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

var (
	once sync.Once
	info Info
)

// Read returns the process's build metadata (cached after the first call).
func Read() Info {
	once.Do(func() {
		info = Info{Version: "unknown", Revision: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		info.GoVersion = bi.GoVersion
		if v := bi.Main.Version; v != "" {
			info.Version = v
		}
		var rev string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			info.Revision = rev
		}
	})
	return info
}

// String renders the one-line -version output: "name version (revision, go)".
func String(name string) string {
	i := Read()
	return fmt.Sprintf("%s %s (%s, %s)", name, i.Version, i.Revision, i.GoVersion)
}

// WritePrometheus emits the conventional build-info gauge: constant value 1
// with the metadata as labels, so dashboards can join any series against the
// running version.
func WritePrometheus(w io.Writer) {
	i := Read()
	fmt.Fprintf(w, "# HELP distjoin_build_info Build metadata of the running binary (constant 1; version/revision/go in labels).\n")
	fmt.Fprintf(w, "# TYPE distjoin_build_info gauge\n")
	fmt.Fprintf(w, "distjoin_build_info{version=%q,revision=%q,go_version=%q} 1\n",
		escapeLabel(i.Version), escapeLabel(i.Revision), escapeLabel(i.GoVersion))
}

// escapeLabel guards the label values against metadata containing the three
// characters the exposition format escapes. %q handles quotes and
// backslashes; newlines cannot appear in build metadata but are stripped
// defensively.
func escapeLabel(s string) string {
	return strings.ReplaceAll(s, "\n", " ")
}
