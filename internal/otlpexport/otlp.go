// Package otlpexport ships completed query traces to an OpenTelemetry
// collector over OTLP/HTTP-JSON — hand-rolled against the proto3 JSON
// mapping of opentelemetry-proto (trace/v1), because the repo takes no
// external dependencies. Only the subset of the protocol the query service
// produces is modelled: resource + scope + spans with string/int/double/bool
// attributes, span status, and span links.
//
// The package has three layers: the wire types and the QueryTrace→span
// conversion (this file), the batching Exporter with bounded queue and
// retry (exporter.go), and an in-process validating Collector that backs
// both the unit tests and the cmd-style mock collector CI smoke uses
// (collector.go, mockotlp/).
package otlpexport

import (
	"strconv"
	"time"

	"distjoin/internal/buildinfo"
	"distjoin/internal/qtrace"
)

// OTLP span kinds (trace/v1 SpanKind), proto enum values.
const (
	KindInternal = 1
	KindServer   = 2
	KindClient   = 3
)

// OTLP status codes (trace/v1 Status.StatusCode).
const (
	StatusUnset = 0
	StatusOK    = 1
	StatusError = 2
)

// Span is the exporter's internal span representation: explicit identity,
// real timestamps, and typed attributes. The server's HTTP middleware
// enqueues these directly for per-pull spans; SpansFromQueryTrace flattens
// an engine QueryTrace into them.
type Span struct {
	TraceID    qtrace.TraceID
	SpanID     qtrace.SpanID
	Parent     qtrace.SpanID // zero = root of its trace
	TraceState string
	Name       string
	Kind       int // KindInternal/KindServer/KindClient
	Start, End time.Time
	Attrs      []Attr
	StatusCode int // StatusUnset/StatusOK/StatusError
	StatusMsg  string
	Links      []Link
}

// Attr is one typed span attribute. Exactly one value field is used,
// selected by which setter built it.
type Attr struct {
	Key string
	s   *string
	i   *int64
	f   *float64
	b   *bool
}

// Str/Int/Float/Bool build typed attributes.
func Str(k, v string) Attr           { return Attr{Key: k, s: &v} }
func Int(k string, v int64) Attr     { return Attr{Key: k, i: &v} }
func Float(k string, v float64) Attr { return Attr{Key: k, f: &v} }
func Bool(k string, v bool) Attr     { return Attr{Key: k, b: &v} }

// Link points a span at another span in a different trace (or a different
// branch of the same trace) — the pull↔query cross-reference.
type Link struct {
	TraceID qtrace.TraceID
	SpanID  qtrace.SpanID
}

// Wire types: the proto3 JSON mapping of opentelemetry-proto trace/v1.
// Field names are the mapping's lowerCamelCase; 64-bit integers travel as
// strings per the mapping; trace/span ids are lowercase hex (not base64 —
// the HTTP/JSON flavour of OTLP uses hex ids).

// ExportRequest is the body of POST /v1/traces.
type ExportRequest struct {
	ResourceSpans []ResourceSpans `json:"resourceSpans"`
}

// ResourceSpans groups spans under one resource (one process).
type ResourceSpans struct {
	Resource   Resource     `json:"resource"`
	ScopeSpans []ScopeSpans `json:"scopeSpans"`
}

// Resource identifies the producing process.
type Resource struct {
	Attributes []KeyValue `json:"attributes"`
}

// ScopeSpans groups spans under one instrumentation scope.
type ScopeSpans struct {
	Scope Scope      `json:"scope"`
	Spans []WireSpan `json:"spans"`
}

// Scope names the instrumentation that produced the spans.
type Scope struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// WireSpan is one OTLP span on the wire.
type WireSpan struct {
	TraceID           string     `json:"traceId"`
	SpanID            string     `json:"spanId"`
	ParentSpanID      string     `json:"parentSpanId,omitempty"`
	TraceState        string     `json:"traceState,omitempty"`
	Name              string     `json:"name"`
	Kind              int        `json:"kind"`
	StartTimeUnixNano string     `json:"startTimeUnixNano"`
	EndTimeUnixNano   string     `json:"endTimeUnixNano"`
	Attributes        []KeyValue `json:"attributes,omitempty"`
	Status            *Status    `json:"status,omitempty"`
	Links             []WireLink `json:"links,omitempty"`
}

// Status is the span's final status.
type Status struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

// WireLink is one span link on the wire.
type WireLink struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
}

// KeyValue is one attribute on the wire.
type KeyValue struct {
	Key   string   `json:"key"`
	Value AnyValue `json:"value"`
}

// AnyValue is the proto3 JSON oneof: exactly one field is set. IntValue is
// a decimal string per the 64-bit JSON mapping.
type AnyValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
}

// serviceVersion stamps the exported resource with the binary's build
// version.
func serviceVersion() string { return buildinfo.Read().Version }

// wireAttr renders a typed Attr.
func wireAttr(a Attr) KeyValue {
	kv := KeyValue{Key: a.Key}
	switch {
	case a.s != nil:
		kv.Value.StringValue = a.s
	case a.i != nil:
		v := strconv.FormatInt(*a.i, 10)
		kv.Value.IntValue = &v
	case a.f != nil:
		kv.Value.DoubleValue = a.f
	case a.b != nil:
		kv.Value.BoolValue = a.b
	default:
		empty := ""
		kv.Value.StringValue = &empty
	}
	return kv
}

// unixNano renders t in the mapping's string-encoded nanosecond form.
func unixNano(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// wireSpan renders one internal span.
func wireSpan(s Span) WireSpan {
	w := WireSpan{
		TraceID:           s.TraceID.String(),
		SpanID:            s.SpanID.String(),
		TraceState:        s.TraceState,
		Name:              s.Name,
		Kind:              s.Kind,
		StartTimeUnixNano: unixNano(s.Start),
		EndTimeUnixNano:   unixNano(s.End),
	}
	if !s.Parent.IsZero() {
		w.ParentSpanID = s.Parent.String()
	}
	for _, a := range s.Attrs {
		w.Attributes = append(w.Attributes, wireAttr(a))
	}
	if s.StatusCode != StatusUnset || s.StatusMsg != "" {
		w.Status = &Status{Code: s.StatusCode, Message: s.StatusMsg}
	}
	for _, l := range s.Links {
		w.Links = append(w.Links, WireLink{TraceID: l.TraceID.String(), SpanID: l.SpanID.String()})
	}
	return w
}

// Request assembles the export body for one batch of spans under one
// service resource.
func Request(service string, spans []Span) ExportRequest {
	wire := make([]WireSpan, 0, len(spans))
	for _, s := range spans {
		wire = append(wire, wireSpan(s))
	}
	return ExportRequest{ResourceSpans: []ResourceSpans{{
		Resource: Resource{Attributes: []KeyValue{
			wireAttr(Str("service.name", service)),
			wireAttr(Str("service.version", serviceVersion())),
		}},
		ScopeSpans: []ScopeSpans{{
			Scope: Scope{Name: "distjoin/qtrace"},
			Spans: wire,
		}},
	}}}
}

// SpansFromQueryTrace flattens one completed engine trace into OTLP spans.
// The query's root span reuses the identity qtrace assigned (so a remote
// parent registered via PreBegin stitches the query under the client's
// trace); interior phase spans get fresh span ids.
//
// The engine's span tree records durations, not timestamps, so wall-clock
// positions are synthesized: the query span covers [start, start+wall],
// non-nested children are laid out sequentially from their parent's start,
// and "of which" (nested) spans start at their parent's start. Every child
// is clamped to its parent's interval — positions inside the query are
// approximate by construction, durations are exact.
func SpansFromQueryTrace(qt *qtrace.QueryTrace) []Span {
	if qt == nil {
		return nil
	}
	traceID, ok1 := qtrace.ParseTraceID(qt.TraceID)
	spanID, ok2 := qtrace.ParseSpanID(qt.SpanID)
	if !ok1 || !ok2 || traceID.IsZero() || spanID.IsZero() {
		// Pre-trace-context documents (old slow logs) still export, on a
		// fresh trace of their own.
		traceID, spanID = qtrace.NewTraceID(), qtrace.NewSpanID()
	}
	start, err := time.Parse(time.RFC3339Nano, qt.StartTime)
	if err != nil {
		start = time.Unix(0, 0)
	}
	end := start.Add(time.Duration(qt.WallSeconds * float64(time.Second)))

	root := Span{
		TraceID: traceID,
		SpanID:  spanID,
		Name:    "query " + qt.Kind,
		Kind:    KindInternal,
		Start:   start,
		End:     end,
		Attrs: []Attr{
			Str("distjoin.query.id", qt.ID),
			Str("distjoin.query.kind", qt.Kind),
			Int("distjoin.query.workers", int64(qt.Workers)),
			Float("distjoin.query.phase_coverage", qt.Coverage),
			Int("distjoin.resources.pairs_reported", qt.Resources.Pairs),
			Int("distjoin.resources.dist_calcs", qt.Resources.DistCalcs),
			Int("distjoin.resources.node_io", qt.Resources.NodeIO),
			Int("distjoin.resources.queue_inserts", qt.Resources.QueueInserts),
			Int("distjoin.resources.io_retries", qt.Resources.IORetries),
			Int("distjoin.resources.batch_pruned", qt.Resources.BatchPruned),
			Int("distjoin.resources.peak_queue_depth", qt.Resources.PeakQueueDepth),
		},
	}
	if parent, ok := qtrace.ParseSpanID(qt.ParentSpanID); ok {
		root.Parent = parent
	}
	if qt.Restarted {
		root.Attrs = append(root.Attrs, Bool("distjoin.query.restarted", true))
	}
	if qt.Error != "" {
		root.StatusCode = StatusError
		root.StatusMsg = qt.Error
	} else {
		root.StatusCode = StatusOK
	}

	out := []Span{root}
	cursor := start
	for i := range qt.Root.Children {
		c := &qt.Root.Children[i]
		if c.Nested {
			out = layoutSpan(out, c, traceID, spanID, start, end)
			continue
		}
		out = layoutSpan(out, c, traceID, spanID, cursor, end)
		cursor = clampTime(cursor.Add(secondsDur(c.Seconds)), start, end)
	}
	return out
}

// layoutSpan appends s (and its descendants) to out. s occupies
// [pStart, pStart+seconds] clamped to the parent window ending at pEnd;
// s's own non-nested children are laid out sequentially from s's start,
// nested ("of which") children overlap s from its start.
func layoutSpan(out []Span, s *qtrace.Span, traceID qtrace.TraceID, parent qtrace.SpanID, pStart, pEnd time.Time) []Span {
	start, end := spanWindow(s, pStart, pEnd)
	sp := Span{
		TraceID: traceID,
		SpanID:  qtrace.NewSpanID(),
		Parent:  parent,
		Name:    s.Name,
		Kind:    KindInternal,
		Start:   start,
		End:     end,
	}
	if s.Part != nil {
		sp.Attrs = append(sp.Attrs, Int("distjoin.partition", int64(*s.Part)))
	}
	if s.Count > 0 {
		sp.Attrs = append(sp.Attrs, Int("distjoin.count", s.Count))
	}
	if s.Nested {
		sp.Attrs = append(sp.Attrs, Bool("distjoin.nested", true))
	}
	out = append(out, sp)
	cursor := start
	for i := range s.Children {
		c := &s.Children[i]
		if c.Nested {
			out = layoutSpan(out, c, traceID, sp.SpanID, start, end)
			continue
		}
		out = layoutSpan(out, c, traceID, sp.SpanID, cursor, end)
		cursor = clampTime(cursor.Add(secondsDur(c.Seconds)), start, end)
	}
	return out
}

// spanWindow synthesizes [start, end] for a duration-only span inside its
// parent's window.
func spanWindow(s *qtrace.Span, pStart, pEnd time.Time) (time.Time, time.Time) {
	end := clampTime(pStart.Add(secondsDur(s.Seconds)), pStart, pEnd)
	return pStart, end
}

func secondsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

func clampTime(t, lo, hi time.Time) time.Time {
	if t.Before(lo) {
		return lo
	}
	if t.After(hi) {
		return hi
	}
	return t
}
