// Command mockotlp is a tiny validating OTLP/HTTP-JSON trace collector for
// local debugging and the CI otlp-smoke job. It speaks just enough of the
// protocol to receive distjoind's span export, rejects anything outside the
// documented subset (testdata/otlpspan.schema.json), and serves back what
// it received:
//
//	mockotlp -addr :4318
//	distjoind -demo 10000 -otlp http://localhost:4318/v1/traces &
//	curl -s localhost:4318/v1/traces | jq 'keys'   # trace ids received
//	curl -s localhost:4318/stats
//
// -fail-first n rejects the first n export POSTs with 503, for exercising
// the exporter's retry/backoff ladder end to end.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"distjoin/internal/buildinfo"
	"distjoin/internal/otlpexport"
)

func main() {
	addr := flag.String("addr", ":4318", "listen address")
	failFirst := flag.Int("fail-first", 0, "reject the first n export POSTs with 503")
	version := flag.Bool("version", false, "print version and build metadata, then exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("mockotlp"))
		return
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mockotlp:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mockotlp: collecting on %s\n", ln.Addr())
	srv := &http.Server{
		Handler:           &otlpexport.Collector{FailFirst: *failFirst},
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "mockotlp:", err)
		os.Exit(1)
	}
}
