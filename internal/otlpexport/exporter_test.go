package otlpexport

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distjoin/internal/pager"
	"distjoin/internal/qtrace"
)

// fastRetry is an aggressive policy that never sleeps, for tests.
func fastRetry(attempts int) pager.RetryPolicy {
	return pager.RetryPolicy{MaxAttempts: attempts, Backoff: time.Nanosecond, Sleep: func(time.Duration) {}}
}

func TestExporterEndToEnd(t *testing.T) {
	col := &Collector{}
	srv := httptest.NewServer(col)
	defer srv.Close()

	exp := New(Config{Endpoint: srv.URL + "/v1/traces", Service: "distjoind-test", Retry: fastRetry(1)})
	// Wire the exporter the way distjoind does: as the tracer's completion
	// hook. Every finished query lands at the collector.
	tr := qtrace.New(qtrace.Config{OnComplete: exp.OnComplete})
	parent, _ := qtrace.ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	qt := tracedQuery(tr, "e2e-1", parent, nil)
	tracedQuery(tr, "e2e-2", qtrace.SpanContext{}, nil)

	if err := exp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := exp.StatsSnapshot()
	if stats.DroppedQueue != 0 || stats.DroppedExport != 0 {
		t.Fatalf("drops on a healthy collector: %+v", stats)
	}
	if stats.ExportedSpans != stats.EnqueuedSpans || stats.ExportedSpans == 0 {
		t.Fatalf("exported %d of %d enqueued spans", stats.ExportedSpans, stats.EnqueuedSpans)
	}
	// The client's trace id arrived intact.
	byTrace := col.Traces()
	if _, ok := byTrace[qt.TraceID]; !ok {
		t.Fatalf("collector has traces %v, want %s among them", col.TraceIDs(), qt.TraceID)
	}
	if cs := col.Stats(); cs.Rejected != 0 || len(cs.Services) != 1 || cs.Services[0] != "distjoind-test" {
		t.Fatalf("collector stats: %+v", cs)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExporterRetriesTransientFailures(t *testing.T) {
	col := &Collector{FailFirst: 2} // two 503s, then accept
	srv := httptest.NewServer(col)
	defer srv.Close()

	exp := New(Config{Endpoint: srv.URL + "/v1/traces", Retry: fastRetry(4)})
	exp.EnqueueSpans(SpansFromQueryTrace(tracedQuery(qtrace.New(qtrace.Config{}), "retry-q", qtrace.SpanContext{}, nil)))
	if err := exp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := exp.StatsSnapshot()
	if stats.Retries < 2 {
		t.Errorf("retries = %d, want >= 2 (two injected 503s)", stats.Retries)
	}
	if stats.DroppedExport != 0 || stats.ExportedSpans == 0 {
		t.Errorf("spans lost through the retry ladder: %+v", stats)
	}
	if col.Stats().Spans == 0 {
		t.Error("collector received nothing")
	}
	exp.Close()
}

func TestExporterDropsAfterExhaustedRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	exp := New(Config{Endpoint: srv.URL + "/v1/traces", Retry: fastRetry(3)})
	exp.EnqueueSpans(SpansFromQueryTrace(tracedQuery(qtrace.New(qtrace.Config{}), "doomed", qtrace.SpanContext{}, nil)))
	if err := exp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := exp.StatsSnapshot()
	if stats.DroppedExport != stats.EnqueuedSpans || stats.DroppedExport == 0 {
		t.Errorf("want the whole batch dropped and counted: %+v", stats)
	}
	if stats.ExportedSpans != 0 {
		t.Errorf("exported through a dead collector: %+v", stats)
	}
	exp.Close()
}

func TestExporterPermanentFailureSkipsRetry(t *testing.T) {
	posts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts++
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()

	exp := New(Config{Endpoint: srv.URL + "/v1/traces", Retry: fastRetry(5)})
	exp.EnqueueSpans(SpansFromQueryTrace(tracedQuery(qtrace.New(qtrace.Config{}), "rejected", qtrace.SpanContext{}, nil)))
	exp.Flush(5 * time.Second)
	exp.Close()
	if posts != 1 {
		t.Errorf("4xx retried %d times, want a single attempt", posts)
	}
	if stats := exp.StatsSnapshot(); stats.Retries != 0 || stats.DroppedExport == 0 {
		t.Errorf("stats after permanent failure: %+v", stats)
	}
}

func TestExporterNeverBlocksWhenClosed(t *testing.T) {
	srv := httptest.NewServer(&Collector{})
	defer srv.Close()
	exp := New(Config{Endpoint: srv.URL + "/v1/traces"})
	exp.Close()
	done := make(chan struct{})
	go func() {
		exp.EnqueueSpans([]Span{{TraceID: qtrace.NewTraceID(), SpanID: qtrace.NewSpanID(), Name: "late"}})
		exp.OnComplete(&qtrace.QueryTrace{ID: "late", Kind: "join"})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue blocked on a closed exporter")
	}
	if stats := exp.StatsSnapshot(); stats.DroppedQueue == 0 {
		t.Errorf("post-close enqueues not counted as drops: %+v", stats)
	}
	// Double Close and nil receivers are no-ops.
	exp.Close()
	var nilExp *Exporter
	nilExp.OnComplete(nil)
	nilExp.EnqueueSpans(nil)
	if err := nilExp.Flush(time.Second); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	nilExp.Close()
}

func TestExporterWritePrometheus(t *testing.T) {
	srv := httptest.NewServer(&Collector{})
	defer srv.Close()
	exp := New(Config{Endpoint: srv.URL + "/v1/traces"})
	exp.EnqueueSpans(SpansFromQueryTrace(tracedQuery(qtrace.New(qtrace.Config{}), "m", qtrace.SpanContext{}, nil)))
	exp.Flush(5 * time.Second)
	defer exp.Close()

	var b strings.Builder
	exp.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"distjoin_otlp_exported_spans_total",
		"distjoin_otlp_dropped_queue_spans_total 0",
		"distjoin_otlp_dropped_export_spans_total 0",
		"distjoin_otlp_batches_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	var nb strings.Builder
	(*Exporter)(nil).WritePrometheus(&nb)
	if nb.Len() != 0 {
		t.Errorf("nil exporter wrote %q", nb.String())
	}
}
