package otlpexport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Collector is an in-process OTLP/HTTP-JSON trace collector for tests and
// the CI smoke: it accepts POST /v1/traces, validates every span against
// the subset of the protocol the exporter emits (the same constraints as
// testdata/otlpspan.schema.json), and retains what it received for
// assertions.
//
//	POST /v1/traces  ingest an ExportRequest; 400 on malformed spans
//	GET  /v1/traces  dump received spans grouped by trace id, as JSON
//	GET  /stats      ingestion counters, as JSON
//
// FailFirst, set before serving, makes the first n POSTs return 503 — the
// hook smoke tests use to prove the exporter's retry ladder.
type Collector struct {
	// FailFirst rejects this many leading POSTs with 503.
	FailFirst int

	mu       sync.Mutex
	posts    int
	rejected int
	spans    []WireSpan
	services []string
}

// CollectorStats is the /stats document.
type CollectorStats struct {
	Posts    int      `json:"posts"`
	Rejected int      `json:"rejected_posts"`
	Spans    int      `json:"spans"`
	Services []string `json:"services"`
}

// ServeHTTP implements the three routes.
func (c *Collector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/traces" && r.Method == http.MethodPost:
		c.ingest(w, r)
	case r.URL.Path == "/v1/traces" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Traces())
	case r.URL.Path == "/stats":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Stats())
	default:
		http.NotFound(w, r)
	}
}

func (c *Collector) ingest(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.posts++
	if c.posts <= c.FailFirst {
		c.rejected++
		c.mu.Unlock()
		http.Error(w, "injected failure", http.StatusServiceUnavailable)
		return
	}
	c.mu.Unlock()

	var req ExportRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // the schema subset is closed: unknown fields are a contract break
	if err := dec.Decode(&req); err != nil {
		c.reject(w, fmt.Errorf("decoding body: %w", err))
		return
	}
	var batch []WireSpan
	var services []string
	for _, rs := range req.ResourceSpans {
		svc := resourceService(rs)
		if svc == "" {
			c.reject(w, fmt.Errorf("resource has no service.name attribute"))
			return
		}
		services = append(services, svc)
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				if err := ValidateWireSpan(sp); err != nil {
					c.reject(w, fmt.Errorf("span %q: %w", sp.Name, err))
					return
				}
				batch = append(batch, sp)
			}
		}
	}
	c.mu.Lock()
	c.spans = append(c.spans, batch...)
	for _, svc := range services {
		if !contains(c.services, svc) {
			c.services = append(c.services, svc)
		}
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, "{}") // empty ExportTraceServiceResponse: full success
}

func (c *Collector) reject(w http.ResponseWriter, err error) {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// Stats returns the ingestion counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CollectorStats{
		Posts:    c.posts,
		Rejected: c.rejected,
		Spans:    len(c.spans),
		Services: append([]string(nil), c.services...),
	}
}

// Spans returns every accepted span, in arrival order.
func (c *Collector) Spans() []WireSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]WireSpan(nil), c.spans...)
}

// Traces groups the accepted spans by trace id, sorted by id for stable
// output.
func (c *Collector) Traces() map[string][]WireSpan {
	out := map[string][]WireSpan{}
	for _, sp := range c.Spans() {
		out[sp.TraceID] = append(out[sp.TraceID], sp)
	}
	return out
}

// TraceIDs lists the distinct trace ids received, sorted.
func (c *Collector) TraceIDs() []string {
	byID := c.Traces()
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ValidateWireSpan enforces the exporter's wire contract on one span: hex
// id widths, required fields, parseable timestamps in order, known enum
// values, and well-formed attributes. The checked-in
// testdata/otlpspan.schema.json states the same constraints declaratively.
func ValidateWireSpan(sp WireSpan) error {
	if !isHexN(sp.TraceID, 32) {
		return fmt.Errorf("traceId %q is not 32 hex chars", sp.TraceID)
	}
	if !isHexN(sp.SpanID, 16) {
		return fmt.Errorf("spanId %q is not 16 hex chars", sp.SpanID)
	}
	if sp.ParentSpanID != "" && !isHexN(sp.ParentSpanID, 16) {
		return fmt.Errorf("parentSpanId %q is not 16 hex chars", sp.ParentSpanID)
	}
	if sp.Name == "" {
		return fmt.Errorf("span has no name")
	}
	if sp.Kind < KindInternal || sp.Kind > KindClient {
		return fmt.Errorf("kind %d outside the emitted range", sp.Kind)
	}
	start, err := strconv.ParseInt(sp.StartTimeUnixNano, 10, 64)
	if err != nil {
		return fmt.Errorf("startTimeUnixNano %q: %v", sp.StartTimeUnixNano, err)
	}
	end, err := strconv.ParseInt(sp.EndTimeUnixNano, 10, 64)
	if err != nil {
		return fmt.Errorf("endTimeUnixNano %q: %v", sp.EndTimeUnixNano, err)
	}
	if end < start {
		return fmt.Errorf("span ends (%d) before it starts (%d)", end, start)
	}
	if sp.Status != nil && (sp.Status.Code < StatusUnset || sp.Status.Code > StatusError) {
		return fmt.Errorf("status code %d unknown", sp.Status.Code)
	}
	for _, kv := range sp.Attributes {
		if kv.Key == "" {
			return fmt.Errorf("attribute with empty key")
		}
		set := 0
		for _, present := range []bool{
			kv.Value.StringValue != nil, kv.Value.IntValue != nil,
			kv.Value.DoubleValue != nil, kv.Value.BoolValue != nil,
		} {
			if present {
				set++
			}
		}
		if set != 1 {
			return fmt.Errorf("attribute %q sets %d value fields, want exactly 1", kv.Key, set)
		}
		if kv.Value.IntValue != nil {
			if _, err := strconv.ParseInt(*kv.Value.IntValue, 10, 64); err != nil {
				return fmt.Errorf("attribute %q intValue %q: %v", kv.Key, *kv.Value.IntValue, err)
			}
		}
	}
	for _, l := range sp.Links {
		if !isHexN(l.TraceID, 32) || !isHexN(l.SpanID, 16) {
			return fmt.Errorf("link %s/%s has malformed ids", l.TraceID, l.SpanID)
		}
	}
	return nil
}

func resourceService(rs ResourceSpans) string {
	for _, kv := range rs.Resource.Attributes {
		if kv.Key == "service.name" && kv.Value.StringValue != nil {
			return *kv.Value.StringValue
		}
	}
	return ""
}

func isHexN(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
