package otlpexport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/pager"
	"distjoin/internal/qtrace"
)

// Config configures New. Only Endpoint is required.
type Config struct {
	// Endpoint is the collector's traces URL, e.g.
	// "http://localhost:4318/v1/traces".
	Endpoint string
	// Service is the resource's service.name. Default "distjoind".
	Service string
	// QueueSize bounds the number of span groups (one completed query or
	// one pull span each) buffered between producers and the export
	// goroutine. When the queue is full, Enqueue drops and counts — trace
	// export must never apply backpressure to the query path. Default 256.
	QueueSize int
	// BatchSize caps how many buffered groups one POST carries. Default 32.
	BatchSize int
	// FlushInterval bounds how long a buffered span waits for its batch to
	// fill. Default 3s.
	FlushInterval time.Duration
	// Retry bounds re-attempts of a failed POST. Retryable failures are
	// transport errors and HTTP 429/5xx; anything else drops the batch
	// immediately. The zero value uses 4 attempts with 250ms exponential
	// backoff capped at 2s.
	Retry pager.RetryPolicy
	// Client is the HTTP client to POST with; nil uses a client with a 10s
	// timeout.
	Client *http.Client
	// Logger, when non-nil, receives a warn line per dropped batch and per
	// retry ladder exhaustion.
	Logger *slog.Logger
}

// Exporter converts span groups to OTLP/HTTP-JSON and ships them to a
// collector from a single background goroutine, batching and retrying with
// bounded buffering. A nil *Exporter is valid and inert everywhere, so the
// server wires it unconditionally and disabled deployments pay nothing.
type Exporter struct {
	cfg    Config
	client *http.Client
	log    *slog.Logger

	mu     sync.Mutex // guards closed + send into ch
	closed bool
	ch     chan []Span

	flushReq chan chan struct{}
	done     chan struct{} // closed when the export goroutine exits

	// Drop/throughput accounting, exposed on /metrics.
	enqueuedSpans atomic.Int64
	exportedSpans atomic.Int64
	batches       atomic.Int64
	retries       atomic.Int64
	droppedQueue  atomic.Int64 // spans dropped because the queue was full
	droppedExport atomic.Int64 // spans dropped after a failed export
}

// New starts an exporter. Callers own its lifetime: Close (or Flush at
// shutdown) before process exit, or buffered spans are lost.
func New(cfg Config) *Exporter {
	if cfg.Service == "" {
		cfg.Service = "distjoind"
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 3 * time.Second
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = pager.RetryPolicy{
			MaxAttempts: 4,
			Backoff:     250 * time.Millisecond,
			Multiplier:  2,
			MaxBackoff:  2 * time.Second,
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	e := &Exporter{
		cfg:      cfg,
		client:   client,
		log:      cfg.Logger,
		ch:       make(chan []Span, cfg.QueueSize),
		flushReq: make(chan chan struct{}),
		done:     make(chan struct{}),
	}
	onRetry := cfg.Retry.OnRetry
	e.cfg.Retry.OnRetry = func(op string, attempt int, err error) {
		e.retries.Add(1)
		if onRetry != nil {
			onRetry(op, attempt, err)
		}
	}
	go e.run()
	return e
}

// OnComplete adapts the exporter to qtrace.Config.OnComplete: every
// completed query trace is flattened and enqueued. Nil-safe.
func (e *Exporter) OnComplete(qt *qtrace.QueryTrace) {
	if e == nil || qt == nil {
		return
	}
	e.EnqueueSpans(SpansFromQueryTrace(qt))
}

// EnqueueSpans buffers one span group for export. Never blocks: when the
// queue is full or the exporter is closed, the group is dropped and
// counted. Nil-safe.
func (e *Exporter) EnqueueSpans(spans []Span) {
	if e == nil || len(spans) == 0 {
		return
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.droppedQueue.Add(int64(len(spans)))
		return
	}
	select {
	case e.ch <- spans:
		e.enqueuedSpans.Add(int64(len(spans)))
	default:
		e.droppedQueue.Add(int64(len(spans)))
	}
	e.mu.Unlock()
}

// Flush drains everything buffered so far and exports it, returning when
// the queue is empty or after timeout. The SIGTERM drain path calls this
// after the server's cursors have finished so the final queries' spans
// reach the collector. Nil-safe.
func (e *Exporter) Flush(timeout time.Duration) error {
	if e == nil {
		return nil
	}
	ack := make(chan struct{})
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case e.flushReq <- ack:
	case <-e.done:
		return nil
	case <-timer.C:
		return fmt.Errorf("otlpexport: flush request timed out after %v", timeout)
	}
	select {
	case <-ack:
		return nil
	case <-timer.C:
		return fmt.Errorf("otlpexport: flush timed out after %v", timeout)
	}
}

// Close flushes buffered spans and stops the export goroutine. Idempotent;
// nil-safe.
func (e *Exporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.ch)
	e.mu.Unlock()
	<-e.done
	return nil
}

// run is the export goroutine: batch up, flush on size, interval, request,
// or shutdown.
func (e *Exporter) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.cfg.FlushInterval)
	defer ticker.Stop()
	var batch []Span
	groups := 0
	flush := func() {
		if len(batch) > 0 {
			e.export(batch)
			batch, groups = nil, 0
		}
	}
	for {
		select {
		case spans, ok := <-e.ch:
			if !ok {
				flush()
				return
			}
			batch = append(batch, spans...)
			if groups++; groups >= e.cfg.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		case ack := <-e.flushReq:
			// Drain whatever is already buffered, then export it all.
		drain:
			for {
				select {
				case spans, ok := <-e.ch:
					if !ok {
						break drain
					}
					batch = append(batch, spans...)
				default:
					break drain
				}
			}
			flush()
			close(ack)
		}
	}
}

// export POSTs one batch, retrying transport errors and HTTP 429/5xx under
// the configured policy. A batch that still fails is dropped and counted —
// the exporter never grows without bound on a dead collector.
func (e *Exporter) export(spans []Span) {
	body, err := json.Marshal(Request(e.cfg.Service, spans))
	if err != nil { // unreachable with these types; belt and braces
		e.droppedExport.Add(int64(len(spans)))
		return
	}
	err = e.cfg.Retry.Do("otlp export", func() error { return e.post(body) })
	if err != nil {
		e.droppedExport.Add(int64(len(spans)))
		if e.log != nil {
			e.log.Warn("otlp export failed, batch dropped",
				"spans", len(spans), "endpoint", e.cfg.Endpoint, "error", err)
		}
		return
	}
	e.exportedSpans.Add(int64(len(spans)))
	e.batches.Add(1)
}

// post performs one POST attempt, classifying retryable outcomes as
// pager.ErrTransient for the retry policy.
func (e *Exporter) post(body []byte) error {
	resp, err := e.client.Post(e.cfg.Endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", pager.ErrTransient, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return fmt.Errorf("%w: collector returned %s", pager.ErrTransient, resp.Status)
	default:
		return fmt.Errorf("otlpexport: collector returned %s", resp.Status)
	}
}

// Stats is a point-in-time summary of the exporter's counters.
type Stats struct {
	EnqueuedSpans int64 `json:"enqueued_spans"`
	ExportedSpans int64 `json:"exported_spans"`
	Batches       int64 `json:"batches"`
	Retries       int64 `json:"retries"`
	DroppedQueue  int64 `json:"dropped_queue"`
	DroppedExport int64 `json:"dropped_export"`
}

// StatsSnapshot returns the current counters. Nil-safe (zero stats).
func (e *Exporter) StatsSnapshot() Stats {
	if e == nil {
		return Stats{}
	}
	return Stats{
		EnqueuedSpans: e.enqueuedSpans.Load(),
		ExportedSpans: e.exportedSpans.Load(),
		Batches:       e.batches.Load(),
		Retries:       e.retries.Load(),
		DroppedQueue:  e.droppedQueue.Load(),
		DroppedExport: e.droppedExport.Load(),
	}
}

// WritePrometheus joins the /metrics exposition (the extras hook of
// obs.WriteMetricsTraced): throughput and — the alert that matters — the
// two drop counters. Nil-safe (writes nothing).
func (e *Exporter) WritePrometheus(w io.Writer) {
	if e == nil {
		return
	}
	s := e.StatsSnapshot()
	writeCounter(w, "distjoin_otlp_enqueued_spans_total", "Spans handed to the OTLP exporter.", s.EnqueuedSpans)
	writeCounter(w, "distjoin_otlp_exported_spans_total", "Spans delivered to the OTLP collector.", s.ExportedSpans)
	writeCounter(w, "distjoin_otlp_batches_total", "Export batches delivered to the OTLP collector.", s.Batches)
	writeCounter(w, "distjoin_otlp_retries_total", "Export POST attempts retried after a transient failure (429/5xx/transport).", s.Retries)
	writeCounter(w, "distjoin_otlp_dropped_queue_spans_total", "Spans dropped because the exporter queue was full or closed.", s.DroppedQueue)
	writeCounter(w, "distjoin_otlp_dropped_export_spans_total", "Spans dropped after export failed through all retries.", s.DroppedExport)
}

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}
