package otlpexport

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"distjoin/internal/profile"
	"distjoin/internal/qtrace"
)

// tracedQuery drives one synthetic query with a remote parent through the
// lifecycle the server uses: PreBegin under the client's context, then the
// engine bracket set.
func tracedQuery(tr *qtrace.Tracer, id string, parent qtrace.SpanContext, qerr error) *qtrace.QueryTrace {
	tr.PreBegin(id, parent)
	q := tr.Begin("join", id)
	c := q.AttachCounters(nil)
	planStart := q.Now()
	q.PlanDone(planStart)
	c.ReportPair()
	c.AddDistCalc(3)
	w := q.StartWorker(-1)
	sp := w.Spans()
	sp.Add(profile.PhaseExpand, 3*time.Millisecond)
	sp.Add(profile.PhaseSpill, 2*time.Millisecond)
	sp.ObserveWrite(time.Millisecond)
	w.Done(10, false)
	return q.Finish(qerr)
}

func TestSpansFromQueryTrace(t *testing.T) {
	parent, _ := qtrace.ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := qtrace.New(qtrace.Config{})
	qt := tracedQuery(tr, "q1", parent, nil)

	spans := SpansFromQueryTrace(qt)
	if len(spans) < 3 {
		t.Fatalf("got %d spans, want the query root plus phase spans:\n%+v", len(spans), spans)
	}
	root := spans[0]
	if root.TraceID.String() != qt.TraceID || root.SpanID.String() != qt.SpanID {
		t.Errorf("root identity %s/%s, want the QueryTrace's %s/%s", root.TraceID, root.SpanID, qt.TraceID, qt.SpanID)
	}
	if root.Parent.String() != parent.SpanID.String() {
		t.Errorf("root parent %s, want the client span %s", root.Parent, parent.SpanID)
	}
	if root.StatusCode != StatusOK {
		t.Errorf("clean query status %d, want OK", root.StatusCode)
	}
	byID := map[qtrace.SpanID]Span{}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Errorf("span %q on trace %s, want all on %s", s.Name, s.TraceID, root.TraceID)
		}
		byID[s.SpanID] = s
	}
	for _, s := range spans[1:] {
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %q parent %s is not in the export", s.Name, s.Parent)
			continue
		}
		if s.Start.Before(p.Start) || s.End.After(p.End) {
			t.Errorf("span %q [%v,%v] escapes parent %q [%v,%v]", s.Name, s.Start, s.End, p.Name, p.Start, p.End)
		}
		if s.End.Before(s.Start) {
			t.Errorf("span %q ends before it starts", s.Name)
		}
	}

	// An errored query exports an error status.
	qtErr := tracedQuery(tr, "q2", qtrace.SpanContext{}, fmt.Errorf("disk on fire"))
	if s := SpansFromQueryTrace(qtErr)[0]; s.StatusCode != StatusError || s.StatusMsg != "disk on fire" {
		t.Errorf("errored query status = %d %q", s.StatusCode, s.StatusMsg)
	}

	// Pre-trace-context documents (no ids) still export on a fresh trace.
	legacy := &qtrace.QueryTrace{ID: "old", Kind: "join", StartTime: time.Now().Format(time.RFC3339Nano), WallSeconds: 0.5}
	if s := SpansFromQueryTrace(legacy); len(s) != 1 || s[0].TraceID.IsZero() || s[0].SpanID.IsZero() {
		t.Errorf("legacy trace export = %+v, want one span with fresh identity", s)
	}
	if SpansFromQueryTrace(nil) != nil {
		t.Error("nil QueryTrace must export nothing")
	}
}

// TestRequestWireShape pins the proto3 JSON mapping details a real
// collector depends on: camelCase keys, hex ids, string-encoded integers.
func TestRequestWireShape(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	qt := tracedQuery(tr, "q3", qtrace.SpanContext{}, nil)
	raw, err := json.Marshal(Request("distjoind-test", SpansFromQueryTrace(qt)))
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, want := range []string{
		`"resourceSpans":[`, `"scopeSpans":[`, `"spans":[`,
		`"key":"service.name","value":{"stringValue":"distjoind-test"}`,
		`"traceId":"` + qt.TraceID + `"`,
		`"startTimeUnixNano":"`,
		`"key":"distjoin.query.id","value":{"stringValue":"q3"}`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("wire JSON missing %s:\n%s", want, s)
		}
	}
	// Integer attributes are string-encoded per the 64-bit JSON mapping.
	if !regexp.MustCompile(`"key":"distjoin\.resources\.dist_calcs","value":\{"intValue":"3"\}`).MatchString(s) {
		t.Errorf("intValue not string-encoded:\n%s", s)
	}
	if strings.Contains(s, `"snake_case"`) || strings.Contains(s, `"trace_id"`) {
		t.Errorf("snake_case key leaked into the wire format:\n%s", s)
	}
}

// TestWireSpanMatchesSchema validates exporter output against the
// checked-in schema subset with a dependency-free validator, then checks
// the collector's Go-side validation agrees with the schema on both good
// and mutated documents.
func TestWireSpanMatchesSchema(t *testing.T) {
	schema := loadSchema(t)
	parent, _ := qtrace.ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	tr := qtrace.New(qtrace.Config{})
	qt := tracedQuery(tr, "q4", parent, fmt.Errorf("boom"))
	for _, sp := range SpansFromQueryTrace(qt) {
		wire := wireSpan(sp)
		raw, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var doc any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		if err := validate(schema, schema, doc, "$"); err != nil {
			t.Errorf("span %q violates schema: %v\n%s", sp.Name, err, raw)
		}
		if err := ValidateWireSpan(wire); err != nil {
			t.Errorf("collector rejects exporter span %q: %v", sp.Name, err)
		}
	}
}

func TestValidateWireSpanRejections(t *testing.T) {
	good := wireSpan(Span{
		TraceID: qtrace.NewTraceID(), SpanID: qtrace.NewSpanID(),
		Name: "ok", Kind: KindServer,
		Start: time.Unix(1, 0), End: time.Unix(2, 0),
		Attrs: []Attr{Int("n", 1)},
	})
	if err := ValidateWireSpan(good); err != nil {
		t.Fatalf("good span rejected: %v", err)
	}
	schema := loadSchema(t)
	for name, mutate := range map[string]func(*WireSpan){
		"short-trace-id": func(s *WireSpan) { s.TraceID = "abc" },
		"uppercase-hex":  func(s *WireSpan) { s.SpanID = strings.ToUpper(s.SpanID) },
		"no-name":        func(s *WireSpan) { s.Name = "" },
		"bad-kind":       func(s *WireSpan) { s.Kind = 9 },
		"bad-start":      func(s *WireSpan) { s.StartTimeUnixNano = "soon" },
		"ends-before":    func(s *WireSpan) { s.EndTimeUnixNano = "0" },
		"two-value-attr": func(s *WireSpan) { s.Attributes[0].Value.StringValue = new(string) },
		"non-int-int":    func(s *WireSpan) { v := "1.5"; s.Attributes[0].Value.IntValue = &v },
		"malformed-link": func(s *WireSpan) { s.Links = []WireLink{{TraceID: "zz", SpanID: "zz"}} },
	} {
		bad := good
		bad.Attributes = append([]KeyValue(nil), good.Attributes...)
		mutate(&bad)
		if err := ValidateWireSpan(bad); err == nil {
			t.Errorf("%s: collector accepted an invalid span", name)
		}
		raw, _ := json.Marshal(bad)
		var doc any
		json.Unmarshal(raw, &doc)
		if err := validate(schema, schema, doc, "$"); err == nil && name != "ends-before" && name != "two-value-attr" {
			// The schema can't express cross-field rules (time ordering,
			// oneof cardinality); everything else it must also reject.
			t.Errorf("%s: schema accepted an invalid span", name)
		}
	}
}

func loadSchema(t *testing.T) map[string]any {
	t.Helper()
	raw, err := os.ReadFile("testdata/otlpspan.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema is not valid JSON: %v", err)
	}
	return schema
}

// validate implements the draft-07 subset the schema uses — type, enum,
// required, properties, items, pattern, and local $ref — mirroring the
// validator the qtrace schema tests use, plus pattern support for the hex
// id constraints.
func validate(root, schema map[string]any, doc any, path string) error {
	if ref, ok := schema["$ref"].(string); ok {
		name := strings.TrimPrefix(ref, "#/definitions/")
		defs, _ := root["definitions"].(map[string]any)
		target, ok := defs[name].(map[string]any)
		if !ok {
			return fmt.Errorf("%s: unresolvable $ref %q", path, ref)
		}
		return validate(root, target, doc, path)
	}
	if typ, ok := schema["type"].(string); ok {
		if err := checkType(typ, doc, path); err != nil {
			return err
		}
	}
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if jsonEqual(v, doc) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: value %v not in enum %v", path, doc, enum)
		}
	}
	if ml, ok := schema["minLength"].(float64); ok {
		if s, isStr := doc.(string); isStr && len(s) < int(ml) {
			return fmt.Errorf("%s: %q shorter than minLength %d", path, s, int(ml))
		}
	}
	if pat, ok := schema["pattern"].(string); ok {
		s, isStr := doc.(string)
		if !isStr {
			return fmt.Errorf("%s: pattern on non-string %v", path, doc)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return fmt.Errorf("%s: bad pattern %q: %v", path, pat, err)
		}
		if !re.MatchString(s) {
			return fmt.Errorf("%s: %q does not match %q", path, s, pat)
		}
	}
	if obj, ok := doc.(map[string]any); ok {
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				if _, present := obj[r.(string)]; !present {
					return fmt.Errorf("%s: missing required field %q", path, r)
				}
			}
		}
		if props, ok := schema["properties"].(map[string]any); ok {
			for name, sub := range props {
				v, present := obj[name]
				if !present {
					continue
				}
				if err := validate(root, sub.(map[string]any), v, path+"."+name); err != nil {
					return err
				}
			}
		}
	}
	if arr, ok := doc.([]any); ok {
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range arr {
				if err := validate(root, items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkType(typ string, doc any, path string) error {
	ok := false
	switch typ {
	case "object":
		_, ok = doc.(map[string]any)
	case "array":
		_, ok = doc.([]any)
	case "string":
		_, ok = doc.(string)
	case "number":
		_, ok = doc.(float64)
	case "boolean":
		_, ok = doc.(bool)
	case "integer":
		f, isNum := doc.(float64)
		ok = isNum && f == float64(int64(f))
	}
	if !ok {
		return fmt.Errorf("%s: %v is not a %s", path, doc, typ)
	}
	return nil
}

// jsonEqual compares enum candidates loosely: JSON numbers decode to
// float64 while schema enums may hold ints.
func jsonEqual(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		return af == bf
	}
	return a == b
}
