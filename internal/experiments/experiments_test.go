package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// tiny is a minimal scale that keeps the full experiment matrix fast enough
// for unit tests while still exercising every code path.
var tiny = Scale{
	Name:       "tiny",
	WaterN:     400,
	RoadsN:     1_500,
	PairCounts: []int{1, 10, 100},
	HybridDT1:  100,
	HybridDT2:  400,
	Seed:       7,
}

func loadTiny(t *testing.T) *Datasets {
	t.Helper()
	d, err := Load(tiny)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestScaleByName(t *testing.T) {
	if s, err := ScaleByName("small"); err != nil || s.Name != "small" {
		t.Fatalf("small: %v %v", s, err)
	}
	if s, err := ScaleByName(""); err != nil || s.Name != "small" {
		t.Fatalf("default: %v %v", s, err)
	}
	if s, err := ScaleByName("full"); err != nil || s.WaterN != 37495 {
		t.Fatalf("full: %v %v", s, err)
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestLoadBuildsValidTrees(t *testing.T) {
	d := loadTiny(t)
	if d.Water.Len() != tiny.WaterN || d.Roads.Len() != tiny.RoadsN {
		t.Fatalf("sizes: %d, %d", d.Water.Len(), d.Roads.Len())
	}
	if err := d.Water.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := d.Roads.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Shape(t *testing.T) {
	d := loadTiny(t)
	runs, err := Table1(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(tiny.PairCounts) {
		t.Fatalf("%d rows", len(runs))
	}
	for i, r := range runs {
		if r.Reported != tiny.PairCounts[i] {
			t.Fatalf("row %d reported %d, want %d", i, r.Reported, tiny.PairCounts[i])
		}
		if r.DistCalcs == 0 || r.MaxQueue == 0 || r.NodeIO == 0 {
			t.Fatalf("row %d has zero measures: %+v", i, r)
		}
	}
	// Monotonicity: more pairs never costs fewer distance calcs or I/Os.
	for i := 1; i < len(runs); i++ {
		if runs[i].DistCalcs < runs[i-1].DistCalcs || runs[i].NodeIO < runs[i-1].NodeIO {
			t.Fatalf("measures not monotone: %+v then %+v", runs[i-1], runs[i])
		}
		if runs[i].LastDist < runs[i-1].LastDist {
			t.Fatalf("k-th distance decreased: %+v then %+v", runs[i-1], runs[i])
		}
	}
}

func TestFig6AllVariantsAgreeOnDistances(t *testing.T) {
	d := loadTiny(t)
	runs, err := Fig6(d)
	if err != nil {
		t.Fatal(err)
	}
	series := SeriesByLabel(runs)
	if len(series) != 4 {
		t.Fatalf("%d variants", len(series))
	}
	// All variants compute the same k-th distance for every k.
	ref := series["Even/DepthFirst"]
	for name, s := range series {
		if len(s) != len(ref) {
			t.Fatalf("%s has %d rows", name, len(s))
		}
		for i := range s {
			if s[i].LastDist != ref[i].LastDist {
				t.Fatalf("%s row %d: dist %g, reference %g", name, i, s[i].LastDist, ref[i].LastDist)
			}
		}
	}
}

func TestFig7MaxVariantsAgree(t *testing.T) {
	d := loadTiny(t)
	runs, err := Fig7(d)
	if err != nil {
		t.Fatal(err)
	}
	series := SeriesByLabel(runs)
	ref := series["Regular"]
	if len(ref) != len(tiny.PairCounts) {
		t.Fatalf("regular has %d rows", len(ref))
	}
	// MaxDist/MaxPair runs must report the same distances as Regular for
	// the prefixes they cover.
	refDist := map[int]float64{}
	for _, r := range ref {
		refDist[r.Reported] = r.LastDist
	}
	for name, s := range series {
		if name == "Regular" {
			continue
		}
		for _, r := range s {
			if want, ok := refDist[r.Reported]; ok && r.LastDist != want {
				t.Fatalf("%s at %d pairs: dist %g, want %g", name, r.Reported, r.LastDist, want)
			}
		}
	}
	// The pruned variants must enqueue no more than Regular at equal pair
	// counts (that is their whole point).
	for _, s := range [][]Run{series["MaxDist 100"], series["MaxPair 100"]} {
		for _, r := range s {
			for _, rr := range ref {
				if rr.Reported == r.Reported && r.MaxQueue > rr.MaxQueue {
					t.Fatalf("%s queue %d exceeds regular %d at %d pairs",
						r.Label, r.MaxQueue, rr.MaxQueue, r.Reported)
				}
			}
		}
	}
}

func TestFig8QueueVariantsAgree(t *testing.T) {
	d := loadTiny(t)
	runs, err := Fig8(d)
	if err != nil {
		t.Fatal(err)
	}
	series := SeriesByLabel(runs)
	if len(series) != 4 {
		t.Fatalf("%d variants", len(series))
	}
	ref := series["Memory"]
	for name, s := range series {
		for i := range s {
			if s[i].LastDist != ref[i].LastDist {
				t.Fatalf("%s row %d distance differs from memory queue", name, i)
			}
		}
	}
}

func TestFig9FiltersAgreeAndReportAll(t *testing.T) {
	d := loadTiny(t)
	runs, err := Fig9(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Pairs == 0 && r.Reported != tiny.WaterN {
			t.Fatalf("%s full run reported %d, want %d", r.Label, r.Reported, tiny.WaterN)
		}
	}
	series := SeriesByLabel(runs)
	// Stronger filters never enqueue more than weaker ones at the full run.
	fullQueue := func(label string) int64 {
		for _, r := range series[label+" (all)"] {
			return r.MaxQueue
		}
		return -1
	}
	if q1, q2 := fullQueue("Inside1"), fullQueue("GlobalAll"); q1 > 0 && q2 > q1 {
		t.Fatalf("GlobalAll queue %d exceeds Inside1 %d", q2, q1)
	}
}

func TestFig10SemiMaxVariants(t *testing.T) {
	d := loadTiny(t)
	runs, err := Fig10(d)
	if err != nil {
		t.Fatal(err)
	}
	series := SeriesByLabel(runs)
	if _, ok := series["MaxDist All"]; !ok {
		t.Fatal("missing MaxDist All")
	}
	if _, ok := series["MaxPair All"]; !ok {
		t.Fatal("missing MaxPair All")
	}
	// MaxDist All and MaxPair All must still report every outer object.
	for _, label := range []string{"MaxDist All", "MaxPair All"} {
		for _, r := range series[label] {
			if r.Reported != tiny.WaterN {
				t.Fatalf("%s reported %d, want %d", label, r.Reported, tiny.WaterN)
			}
		}
	}
}

func TestSec414NestedLoopDominated(t *testing.T) {
	d := loadTiny(t)
	runs, err := Sec414(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d rows", len(runs))
	}
	nl, inc := runs[0], runs[1]
	if nl.DistCalcs != int64(tiny.WaterN)*int64(tiny.RoadsN) {
		t.Fatalf("nested loop computed %d distances", nl.DistCalcs)
	}
	if inc.DistCalcs >= nl.DistCalcs {
		t.Fatalf("incremental did not save distance calcs: %d vs %d", inc.DistCalcs, nl.DistCalcs)
	}
}

func TestSec423BothOrders(t *testing.T) {
	d := loadTiny(t)
	runs, err := Sec423(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d rows", len(runs))
	}
	// Incremental and NN-based produce the same cardinalities per order.
	if runs[0].Reported != runs[1].Reported {
		t.Fatalf("W⋉R cardinality: %d vs %d", runs[0].Reported, runs[1].Reported)
	}
	if runs[2].Reported != runs[3].Reported {
		t.Fatalf("R⋉W cardinality: %d vs %d", runs[2].Reported, runs[3].Reported)
	}
	if runs[0].Reported != tiny.WaterN || runs[2].Reported != tiny.RoadsN {
		t.Fatalf("cardinalities: %d, %d", runs[0].Reported, runs[2].Reported)
	}
}

func TestTable1Reversed(t *testing.T) {
	d := loadTiny(t)
	runs, err := Table1Reversed(d)
	if err != nil {
		t.Fatal(err)
	}
	series := SeriesByLabel(runs)
	if len(series["Even(R⋈W)"]) != len(tiny.PairCounts) || len(series["Basic(R⋈W)"]) == 0 {
		t.Fatal("missing rows")
	}
	// Both orders and both traversals agree on the k-th distances (the
	// distance join is symmetric). Basic is capped at 1,000 pairs.
	for i := range series["Basic(R⋈W)"] {
		if series["Even(R⋈W)"][i].LastDist != series["Basic(R⋈W)"][i].LastDist {
			t.Fatal("reversed variants disagree on distances")
		}
	}
}

func TestFaultsShape(t *testing.T) {
	d := loadTiny(t)
	runs, err := Faults(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("%d rows, want 4 transient + 4 unrecoverable", len(runs))
	}
	anyRetry := false
	for i, r := range runs[:4] {
		if r.Err != "" {
			t.Fatalf("transient row %d surfaced %q", i, r.Err)
		}
		if r.Reported != runs[0].Reported || r.LastDist != runs[0].LastDist {
			t.Fatalf("transient row %d diverged from clean run: %+v vs %+v", i, r, runs[0])
		}
		anyRetry = anyRetry || r.Retries > 0
	}
	if !anyRetry {
		t.Fatal("no transient leg recorded a retry — faults never reached the queue store")
	}
	for _, r := range runs[4:] {
		if r.Err == "" {
			t.Fatalf("unrecoverable row %q completed cleanly", r.Label)
		}
		if r.Reported >= r.Pairs {
			t.Fatalf("unrecoverable row %q reported all %d pairs", r.Label, r.Reported)
		}
	}
}

func TestPrintRuns(t *testing.T) {
	var buf bytes.Buffer
	PrintRuns(&buf, "demo", []Run{
		{Label: "x", Pairs: 10, Reported: 10, Time: 1500 * time.Microsecond, DistCalcs: 5, MaxQueue: 7, NodeIO: 3, LastDist: 1.5},
		{Label: "y", Pairs: 0, Reported: 2},
	})
	out := buf.String()
	for _, want := range []string{"demo", "x", "1.50ms", "all", "dist.calc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second: "2.00s",
	}
	cases[3*time.Millisecond] = "3.00ms"
	cases[250*time.Microsecond] = "250µs"
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Fatalf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestDimSweep(t *testing.T) {
	runs, err := DimSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("%d dims", len(runs))
	}
	for _, r := range runs {
		if r.Reported == 0 || r.DistCalcs == 0 {
			t.Fatalf("dim run empty: %+v", r)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	runs := []Run{{Label: "x", Pairs: 5, Reported: 5, Time: 2 * time.Second, DistCalcs: 7, MaxQueue: 9, NodeIO: 11, LastDist: 3.5}}
	if err := WriteJSON(&buf, "table1", runs); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("%d rows", len(decoded))
	}
	row := decoded[0]
	if row["experiment"] != "table1" || row["variant"] != "x" {
		t.Fatalf("row: %v", row)
	}
	if row["seconds"].(float64) != 2.0 || row["dist_calcs"].(float64) != 7 {
		t.Fatalf("numbers wrong: %v", row)
	}
}

func TestLoadWithLatencyCharges(t *testing.T) {
	// The latency store must slow builds/queries without changing results
	// or counts. Keep it tiny so the test stays fast.
	tinyLat := tiny
	tinyLat.WaterN, tinyLat.RoadsN = 150, 400
	fast, err := LoadWithLatency(tinyLat, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := LoadWithLatency(tinyLat, 200*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	rf, err := fast.runJoin("fast", 50, tinyLat.hybridOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.runJoin("slow", 50, tinyLat.hybridOpts(), false)
	if err != nil {
		t.Fatal(err)
	}
	if rf.LastDist != rs.LastDist || rf.DistCalcs != rs.DistCalcs {
		t.Fatalf("latency changed results: %+v vs %+v", rf, rs)
	}
	if rs.NodeIO > 0 && rs.Time <= rf.Time {
		t.Logf("latency run not measurably slower (nodeIO=%d); acceptable on fast machines", rs.NodeIO)
	}
}
