package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"distjoin/internal/profile"
)

func TestWriteTTKJSONSharesProfileSchema(t *testing.T) {
	runs := []Run{
		{Label: "time-to-1", Reported: 1, Time: 2 * time.Millisecond, LastDist: 0.5},
		{Label: "time-to-10", Reported: 10, Time: 5 * time.Millisecond, LastDist: 1.25},
	}
	var buf bytes.Buffer
	if err := WriteTTKJSON(&buf, runs); err != nil {
		t.Fatal(err)
	}
	var doc TTKDocument
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decoding own output: %v\n%s", err, buf.String())
	}
	if doc.SchemaVersion != profile.SchemaVersion {
		t.Errorf("schema version %d, want %d", doc.SchemaVersion, profile.SchemaVersion)
	}
	if doc.Label != "trace" {
		t.Errorf("label %q", doc.Label)
	}
	if len(doc.TimeToKth) != 2 {
		t.Fatalf("%d points, want 2", len(doc.TimeToKth))
	}
	want := []profile.TTKPoint{
		{K: 1, Seconds: 0.002, Dist: 0.5},
		{K: 10, Seconds: 0.005, Dist: 1.25},
	}
	for i, p := range doc.TimeToKth {
		if p != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, p, want[i])
		}
	}
}

// TestTraceTTKFeedsProfileSchema runs the real trace experiment at tiny
// scale and checks its points convert cleanly.
func TestTraceTTKFeedsProfileSchema(t *testing.T) {
	d := loadTiny(t)
	runs, err := TraceTTK(d)
	if err != nil {
		t.Fatal(err)
	}
	pts := TTKPoints(runs)
	if len(pts) == 0 {
		t.Fatal("no time-to-kth points")
	}
	prevK := int64(0)
	for _, p := range pts {
		if p.K <= prevK {
			t.Errorf("ks not increasing: %d after %d", p.K, prevK)
		}
		prevK = p.K
		if p.Seconds <= 0 {
			t.Errorf("k=%d: non-positive seconds %g", p.K, p.Seconds)
		}
	}
}
