package experiments

import (
	"errors"
	"fmt"
	"time"

	"distjoin/internal/distjoin"
	"distjoin/internal/faultstore"
	"distjoin/internal/pager"
	"distjoin/internal/pqueue"
)

// Faults probes the failure model layered on top of the paper's algorithms
// (DESIGN.md "Failure model & recovery"): the Table-1 workload with the
// hybrid queue forced onto a deterministic fault-injecting page store.
//
// The first sweep raises the transient-fault probability with a bounded
// retry policy (Options.RetryIO, 4 attempts): every leg must produce exactly
// the clean leg's result, and the retries column is the price paid. The
// second sweep injects unrecoverable faults — a permanent write failure, a
// permanent read failure, a corrupted page (caught by the per-page
// checksum) and a store crash — and records how many correctly-ordered
// pairs the join delivered before surfacing the error.
func Faults(d *Datasets) ([]Run, error) {
	pairs := maxInt(d.Scale.PairCounts)
	// A deliberately tight D_T: initially everything at distance >= 2·D_T
	// spills, so the disk tier (and with it the fault schedule) engages
	// almost immediately.
	baseOpts := func() distjoin.Options {
		return distjoin.Options{
			Queue:         distjoin.QueueHybrid,
			HybridDT:      d.Scale.HybridDT1 / 10,
			QueuePageSize: 512,
		}
	}
	var created []*faultstore.Store
	mkStore := func(cfg faultstore.Config) func(int) (pager.Store, error) {
		return func(pageSize int) (pager.Store, error) {
			mem, err := pager.NewMemStore(pageSize)
			if err != nil {
				return nil, err
			}
			fs := faultstore.New(mem, cfg)
			created = append(created, fs)
			return fs, nil
		}
	}

	var out []Run

	// Transient sweep: retried faults must be invisible in the result.
	var clean Run
	var cleanStats faultstore.Stats
	for i, p := range []float64{0, 0.002, 0.01, 0.05} {
		created = created[:0]
		opts := baseOpts()
		opts.QueueStore = mkStore(faultstore.Config{
			Seed:               int64(1000 + i),
			TransientReadProb:  p,
			TransientWriteProb: p,
		})
		if p > 0 {
			// 6 attempts: at p=0.05 a six-fault streak is ~1.6e-8 per op,
			// negligible even over the full scale's disk traffic.
			opts.RetryIO = pager.RetryPolicy{MaxAttempts: 6, Sleep: func(time.Duration) {}}
		}
		r, err := d.runFaultJoin(fmt.Sprintf("transient p=%.3f", p), pairs, opts)
		if err != nil {
			return nil, err
		}
		if r.Err != "" {
			return nil, fmt.Errorf("faults: transient leg p=%g did not recover: %s", p, r.Err)
		}
		if i == 0 {
			clean = r
			for _, fs := range created {
				s := fs.Stats()
				cleanStats.Ops += s.Ops
				cleanStats.Reads += s.Reads
				cleanStats.Writes += s.Writes
			}
		} else if r.Reported != clean.Reported || r.LastDist != clean.LastDist {
			return nil, fmt.Errorf("faults: retried leg p=%g diverged: %d pairs/last %g vs clean %d/%g",
				p, r.Reported, r.LastDist, clean.Reported, clean.LastDist)
		}
		out = append(out, r)
	}

	// Unrecoverable faults: the join must stop with the error after an
	// ordered prefix, never emit garbage. Retries are enabled to show they
	// (correctly) do not mask permanent failures.
	// Fault positions come from the clean leg's measured disk-op profile
	// (the fault legs replay the identical op sequence up to the fault), so
	// they land after the join has delivered an ordered prefix — deep into
	// the drain phase, not during the insert-heavy descent — at every
	// experiment scale.
	failWrite := int(3 * cleanStats.Writes / 4)
	failRead := int(3 * cleanStats.Reads / 4)
	corruptRead := int(7 * cleanStats.Reads / 8)
	crashOp := int(9 * cleanStats.Ops / 10)
	for _, leg := range []struct {
		label string
		cfg   faultstore.Config
	}{
		{fmt.Sprintf("write fails at write %d", failWrite), faultstore.Config{FailWriteAt: failWrite}},
		{fmt.Sprintf("read fails at read %d", failRead), faultstore.Config{FailReadAt: failRead}},
		{fmt.Sprintf("page corrupted at read %d", corruptRead), faultstore.Config{Seed: 77, CorruptReadAt: corruptRead}},
		{fmt.Sprintf("store crashes after %d ops", crashOp), faultstore.Config{CrashAfterOps: crashOp}},
	} {
		opts := baseOpts()
		opts.QueueStore = mkStore(leg.cfg)
		opts.RetryIO = pager.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}}
		r, err := d.runFaultJoin(leg.label, pairs, opts)
		if err != nil {
			return nil, err
		}
		if r.Err == "" {
			return nil, fmt.Errorf("faults: %q completed without surfacing an error", leg.label)
		}
		out = append(out, r)
	}
	return out, nil
}

// runFaultJoin is runJoin with the error surfaced as a table column instead
// of aborting the experiment: a join stopped by an injected fault is the
// measurement, not a failure of the harness.
func (d *Datasets) runFaultJoin(label string, pairs int, opts distjoin.Options) (Run, error) {
	c, err := d.reset()
	if err != nil {
		return Run{}, err
	}
	opts.Counters = c
	opts.Obs = d.Obs
	start := time.Now()
	j, err := distjoin.NewJoin(d.Water, d.Roads, opts)
	if err != nil {
		return Run{}, err
	}
	defer j.Close()
	r := Run{Label: label, Pairs: pairs}
	for r.Reported < pairs {
		p, ok, err := j.Next()
		if err != nil {
			r.Err = faultClass(err)
			break
		}
		if !ok {
			break
		}
		r.Reported++
		r.LastDist = p.Dist
	}
	r.Time = time.Since(start)
	r.DistCalcs = c.DistCalcs
	r.MaxQueue = c.MaxQueueSize
	r.NodeIO = c.NodeIO()
	r.Retries = c.IORetries
	return r, nil
}

// faultClass maps a surfaced join error to a short table cell.
func faultClass(err error) string {
	switch {
	case errors.Is(err, pqueue.ErrPageChecksum):
		return "page checksum"
	case errors.Is(err, pager.ErrClosed):
		return "store crashed"
	case errors.Is(err, faultstore.ErrInjected):
		return "injected I/O error"
	}
	return err.Error()
}
