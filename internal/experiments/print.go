package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// PrintRuns renders runs as an aligned table mirroring the paper's Table 1
// columns: pairs requested, wall time, object distance calculations,
// maximum queue size, node I/O.
func PrintRuns(w io.Writer, title string, runs []Run) {
	fmt.Fprintf(w, "== %s ==\n", title)
	// The fault-injection columns only appear when some run used them, so
	// the paper-reproduction tables keep their exact Table-1 shape.
	faults := false
	for _, r := range runs {
		if r.Retries != 0 || r.Err != "" {
			faults = true
			break
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "variant\tpairs\treported\ttime\tdist.calc\tqueue max\tnode I/O\tlast dist"
	if faults {
		header += "\tretries\terror"
	}
	fmt.Fprintln(tw, header)
	for _, r := range runs {
		pairs := fmt.Sprintf("%d", r.Pairs)
		if r.Pairs <= 0 {
			pairs = "all"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%d\t%d\t%.2f",
			r.Label, pairs, r.Reported, FormatDuration(r.Time), r.DistCalcs, r.MaxQueue, r.NodeIO, r.LastDist)
		if faults {
			errCell := r.Err
			if errCell == "" {
				errCell = "-"
			}
			fmt.Fprintf(tw, "\t%d\t%s", r.Retries, errCell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatDuration renders a duration with a granularity suited to its
// magnitude, so microsecond and multi-second runs both read well.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// WriteJSON renders runs as a JSON document for plotting tools: one object
// per run with the experiment id attached.
func WriteJSON(w io.Writer, id string, runs []Run) error {
	type row struct {
		Experiment string  `json:"experiment"`
		Variant    string  `json:"variant"`
		Pairs      int     `json:"pairs_requested"`
		Reported   int     `json:"pairs_reported"`
		Seconds    float64 `json:"seconds"`
		DistCalcs  int64   `json:"dist_calcs"`
		QueueMax   int64   `json:"queue_max"`
		NodeIO     int64   `json:"node_io"`
		LastDist   float64 `json:"last_dist"`
		Retries    int64   `json:"io_retries,omitempty"`
		Err        string  `json:"error,omitempty"`
	}
	rows := make([]row, len(runs))
	for i, r := range runs {
		rows[i] = row{
			Experiment: id,
			Variant:    r.Label,
			Pairs:      r.Pairs,
			Reported:   r.Reported,
			Seconds:    r.Time.Seconds(),
			DistCalcs:  r.DistCalcs,
			QueueMax:   r.MaxQueue,
			NodeIO:     r.NodeIO,
			LastDist:   r.LastDist,
			Retries:    r.Retries,
			Err:        r.Err,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// SeriesByLabel groups runs into per-variant series ordered by pair count —
// the shape of the paper's figures (one curve per variant).
func SeriesByLabel(runs []Run) map[string][]Run {
	out := map[string][]Run{}
	for _, r := range runs {
		out[r.Label] = append(out[r.Label], r)
	}
	for _, s := range out {
		sort.Slice(s, func(i, j int) bool { return s[i].Pairs < s[j].Pairs })
	}
	return out
}

// Summary formats a one-line time comparison between two runs (used for the
// §4.1.4 and §4.2.3 narratives).
func Summary(a, b Run) string {
	s := fmt.Sprintf("%s: %s vs %s: %s", a.Label, FormatDuration(a.Time), b.Label, FormatDuration(b.Time))
	if b.Time > 0 {
		s += fmt.Sprintf(" (ratio %.2fx)", float64(a.Time)/float64(b.Time))
	}
	return s
}
