package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"distjoin/internal/obs"
	"distjoin/internal/profile"
)

// TraceTTK runs the Table-1 workload once with event tracing enabled and
// derives the time-to-k-th-pair table from the trace — the paper's
// incrementality claim made measurable: each row reports how long after
// engine start the k-th result pair was delivered, its distance (the result
// frontier at that moment), and the live queue depth. See TraceTTKTo to
// also keep the raw trace.
func TraceTTK(d *Datasets) ([]Run, error) { return TraceTTKTo(d, nil) }

// TraceTTKTo is TraceTTK with the raw JSONL trace additionally copied to
// extra (pass nil to discard it).
func TraceTTKTo(d *Datasets, extra io.Writer) ([]Run, error) {
	var buf bytes.Buffer
	var sink io.Writer = &buf
	if extra != nil {
		sink = io.MultiWriter(&buf, extra)
	}
	// Expansion events are sampled: the workload expands thousands of node
	// pairs and the table only needs deliveries.
	rec := obs.New(obs.Config{Trace: sink, ExpandEvery: 64})
	prev := d.Obs
	d.Obs = rec
	defer func() { d.Obs = prev }()

	target := maxInt(d.Scale.PairCounts)
	opts := d.Scale.hybridOpts()
	run, err := d.runJoin("trace", target, opts, false)
	if err != nil {
		return nil, err
	}
	if err := rec.Close(); err != nil {
		return nil, err
	}
	events, err := obs.ReadTrace(&buf)
	if err != nil {
		return nil, fmt.Errorf("experiments: parsing own trace: %w", err)
	}

	want := make(map[int64]int, len(d.Scale.PairCounts))
	for _, k := range d.Scale.PairCounts {
		want[int64(k)] = 0
	}
	out := make([]Run, 0, len(d.Scale.PairCounts))
	for _, ev := range events {
		if ev.Type != obs.EvDeliver {
			continue
		}
		if _, ok := want[ev.Seq]; !ok {
			continue
		}
		out = append(out, Run{
			Label:    fmt.Sprintf("time-to-%d", ev.Seq),
			Pairs:    int(ev.Seq),
			Reported: int(ev.Seq),
			Time:     ev.T,
			MaxQueue: ev.N, // live queue depth at delivery, not the high-water mark
			LastDist: ev.Dist,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: trace of %d-pair run contains no requested delivery (reported %d)",
			target, run.Reported)
	}
	return out, nil
}

// TTKDocument is the JSON shape of the trace experiment: the time-to-kth
// points in the query-profile schema (profile.TTKPoint), so experiment
// output can be spliced into the same trajectory files cmd/benchrun
// records.
type TTKDocument struct {
	SchemaVersion int                `json:"schema_version"`
	Label         string             `json:"label"`
	TimeToKth     []profile.TTKPoint `json:"time_to_kth"`
}

// TTKPoints converts trace-experiment rows to profile-schema points.
func TTKPoints(runs []Run) []profile.TTKPoint {
	pts := make([]profile.TTKPoint, len(runs))
	for i, r := range runs {
		pts[i] = profile.TTKPoint{
			K:       int64(r.Reported),
			Seconds: r.Time.Seconds(),
			Dist:    r.LastDist,
		}
	}
	return pts
}

// WriteTTKJSON emits the trace experiment's time-to-kth table as a
// profile-schema JSON document.
func WriteTTKJSON(w io.Writer, runs []Run) error {
	doc := TTKDocument{
		SchemaVersion: profile.SchemaVersion,
		Label:         "trace",
		TimeToKth:     TTKPoints(runs),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
