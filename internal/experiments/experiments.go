// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic TIGER-like datasets of
// internal/datagen. Each experiment function returns structured rows so the
// cmd/experiments harness can print them and EXPERIMENTS.md can record
// paper-vs-measured comparisons; bench_test.go wraps the same functions in
// testing.B benchmarks.
//
// All experiments join Water (outer) with Roads (inner) except where noted,
// exactly as in §4. Between runs the buffer pools are dropped so node I/O
// counts are cold-cache comparable.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"distjoin/internal/baseline"
	"distjoin/internal/datagen"
	"distjoin/internal/distjoin"
	"distjoin/internal/geom"
	"distjoin/internal/obs"
	"distjoin/internal/pager"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// Scale sizes an experiment run. Full reproduces the paper's cardinalities;
// Small keeps CI fast while preserving the dataset shape.
type Scale struct {
	Name   string
	WaterN int
	RoadsN int
	// PairCounts is the x-axis of Table 1 and Figures 6–10.
	PairCounts []int
	// HybridDT1 and HybridDT2 are the two D_T values of Figure 8 (the
	// paper chose the distances of pairs №7,663 and №34,906; these are
	// the corresponding orders of magnitude in our world units).
	HybridDT1, HybridDT2 float64
	// Seed makes data generation deterministic.
	Seed int64
}

// Small is the default scale: ~1/10 of the paper's cardinalities.
var Small = Scale{
	Name:       "small",
	WaterN:     4_000,
	RoadsN:     20_000,
	PairCounts: []int{1, 10, 100, 1_000, 10_000},
	HybridDT1:  30,
	HybridDT2:  120,
	Seed:       1998,
}

// Full matches the paper's dataset sizes and pair counts.
var Full = Scale{
	Name:       "full",
	WaterN:     datagen.PaperWaterSize,
	RoadsN:     datagen.PaperRoadsSize,
	PairCounts: []int{1, 10, 100, 1_000, 10_000, 100_000},
	HybridDT1:  10,
	HybridDT2:  40,
	Seed:       1998,
}

// ScaleByName returns the named scale.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small", "":
		return Small, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want small or full)", name)
}

// Datasets bundles the two indexed relations and a shared counter sink.
type Datasets struct {
	Scale    Scale
	Water    *rtree.Tree
	Roads    *rtree.Tree
	Counters *stats.Counters
	// Obs, when non-nil, is threaded into every run (engine events, latency
	// histograms, buffer-pool gauges) — set it to watch experiments live via
	// obs.ServeMetrics, or let TraceTTK attach its own recorder.
	Obs *obs.Recorder
}

// treeConfig is the paper's §3.1 node/buffer configuration (see DESIGN.md
// for the byte-size mapping).
func treeConfig(c *stats.Counters) rtree.Config {
	return rtree.Config{Dims: 2, PageSize: 2048, BufferFrames: 128, Counters: c}
}

// Load generates the datasets and bulk-loads both trees.
func Load(s Scale) (*Datasets, error) { return LoadWithLatency(s, 0) }

// LoadWithLatency builds the datasets over a simulated disk that charges
// perIO of wall-clock time on every physical node read and write. The
// default substrate counts I/O but performs it at memory speed, which
// flattens the paper's wall-clock curves (its 1998 testbed was
// I/O-dominated); a non-zero latency restores that cost model. I/O counts
// are unaffected.
func LoadWithLatency(s Scale, perIO time.Duration) (*Datasets, error) {
	c := &stats.Counters{}
	mkStore := func() (pager.Store, error) {
		mem, err := pager.NewMemStore(treeConfig(nil).PageSize)
		if err != nil {
			return nil, err
		}
		if perIO > 0 {
			return pager.NewLatencyStore(mem, perIO, perIO), nil
		}
		return mem, nil
	}
	buildTree := func(pts []geom.Point) (*rtree.Tree, error) {
		cfg := treeConfig(c)
		store, err := mkStore()
		if err != nil {
			return nil, err
		}
		cfg.Store = store
		return datagen.BuildTree(cfg, pts)
	}
	water, err := buildTree(datagen.Water(s.Seed, s.WaterN))
	if err != nil {
		return nil, fmt.Errorf("experiments: building Water: %w", err)
	}
	roads, err := buildTree(datagen.Roads(s.Seed+1, s.RoadsN))
	if err != nil {
		water.Close()
		return nil, fmt.Errorf("experiments: building Roads: %w", err)
	}
	return &Datasets{Scale: s, Water: water, Roads: roads, Counters: c}, nil
}

// Close releases both trees.
func (d *Datasets) Close() {
	d.Water.Close()
	d.Roads.Close()
}

// reset drops buffer caches and attaches a fresh counter set for one run.
func (d *Datasets) reset() (*stats.Counters, error) {
	if err := d.Water.DropCache(); err != nil {
		return nil, err
	}
	if err := d.Roads.DropCache(); err != nil {
		return nil, err
	}
	c := &stats.Counters{}
	d.Counters = c
	d.Water.Pool().SetCounters(d.Obs.PoolTap(stats.NodeSink(c)))
	d.Roads.Pool().SetCounters(d.Obs.PoolTap(stats.NodeSink(c)))
	return c, nil
}

// Run captures one experiment leg: the measures of Table 1 plus wall time.
type Run struct {
	Label     string
	Pairs     int // result pairs requested
	Reported  int // result pairs actually produced
	Time      time.Duration
	DistCalcs int64
	MaxQueue  int64
	NodeIO    int64
	LastDist  float64 // distance of the last reported pair
	Retries   int64   // transient queue-I/O retries (fault experiments)
	Err       string  // surfaced error class, "" when the run completed
}

// runJoin executes an incremental distance join up to `pairs` results.
func (d *Datasets) runJoin(label string, pairs int, opts distjoin.Options, reversedInputs bool) (Run, error) {
	c, err := d.reset()
	if err != nil {
		return Run{}, err
	}
	opts.Counters = c
	opts.Obs = d.Obs
	t1, t2 := d.Water, d.Roads
	if reversedInputs {
		t1, t2 = d.Roads, d.Water
	}
	start := time.Now()
	j, err := distjoin.NewJoin(t1, t2, opts)
	if err != nil {
		return Run{}, err
	}
	defer j.Close()
	r := Run{Label: label, Pairs: pairs}
	for r.Reported < pairs {
		p, ok, err := j.Next()
		if err != nil {
			return Run{}, err
		}
		if !ok {
			break
		}
		r.Reported++
		r.LastDist = p.Dist
	}
	r.Time = time.Since(start)
	r.DistCalcs = c.DistCalcs
	r.MaxQueue = c.MaxQueueSize
	r.NodeIO = c.NodeIO()
	return r, nil
}

// runSemi executes an incremental distance semi-join up to `pairs` results
// (all when pairs <= 0).
func (d *Datasets) runSemi(label string, pairs int, filter distjoin.SemiFilter, opts distjoin.Options, reversedInputs bool) (Run, error) {
	c, err := d.reset()
	if err != nil {
		return Run{}, err
	}
	opts.Counters = c
	opts.Obs = d.Obs
	t1, t2 := d.Water, d.Roads
	if reversedInputs {
		t1, t2 = d.Roads, d.Water
	}
	start := time.Now()
	s, err := distjoin.NewSemiJoin(t1, t2, filter, opts)
	if err != nil {
		return Run{}, err
	}
	defer s.Close()
	r := Run{Label: label, Pairs: pairs}
	for pairs <= 0 || r.Reported < pairs {
		p, ok, err := s.Next()
		if err != nil {
			return Run{}, err
		}
		if !ok {
			break
		}
		r.Reported++
		r.LastDist = p.Dist
	}
	r.Time = time.Since(start)
	r.DistCalcs = c.DistCalcs
	r.MaxQueue = c.MaxQueueSize
	r.NodeIO = c.NodeIO()
	return r, nil
}

// hybridOpts is the paper's default configuration for the distance join
// experiments: hybrid queue, even traversal, depth-first ties.
func (s Scale) hybridOpts() distjoin.Options {
	return distjoin.Options{
		Queue:          distjoin.QueueHybrid,
		HybridDT:       s.HybridDT2,
		HybridInMemory: true,
	}
}

// Table1 reproduces Table 1: the measures of the DepthFirst/Even/one-node
// variant for increasing result counts.
func Table1(d *Datasets) ([]Run, error) {
	out := make([]Run, 0, len(d.Scale.PairCounts))
	for _, n := range d.Scale.PairCounts {
		r, err := d.runJoin("Even/DepthFirst", n, d.Scale.hybridOpts(), false)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Table1Reversed reproduces the §4.1.1 observation that joining Roads with
// Water behaves like Water with Roads for Even traversal but degrades for
// Basic. The paper could not complete the Basic variant for the largest
// result count ("too many pairs were generated for the priority queue to
// fit on disk"); this harness reproduces the blow-up's onset but caps the
// Basic sweep at 1,000 pairs so the run stays within laptop memory — the
// queue-size column already tells the story.
func Table1Reversed(d *Datasets) ([]Run, error) {
	var out []Run
	for _, variant := range []struct {
		label    string
		maxPairs int
		opts     distjoin.Options
	}{
		{"Even(R⋈W)", 0, d.Scale.hybridOpts()},
		{"Basic(R⋈W)", 1_000, func() distjoin.Options {
			o := d.Scale.hybridOpts()
			o.Traversal = distjoin.TraverseBasic
			return o
		}()},
	} {
		for _, n := range d.Scale.PairCounts {
			if variant.maxPairs > 0 && n > variant.maxPairs {
				continue
			}
			r, err := d.runJoin(variant.label, n, variant.opts, true)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// ParallelSpeedup measures the partitioned parallel join (beyond the
// paper; see internal/distjoin/parallel.go) against the sequential path on
// the Table 1 workload, at 1, 2, 4 and GOMAXPROCS workers. Every leg must
// report the same pair count and final distance as the sequential run —
// the order-preservation invariant — or the experiment fails. Speedups are
// only meaningful when the machine actually has that many CPUs.
func ParallelSpeedup(d *Datasets) ([]Run, error) {
	pairs := maxInt(d.Scale.PairCounts) * 10
	degrees := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		degrees = append(degrees, n)
	}
	var out []Run
	for _, p := range degrees {
		opts := distjoin.Options{MaxPairs: pairs, Parallelism: p}
		r, err := d.runJoin(fmt.Sprintf("P=%d", p), pairs, opts, false)
		if err != nil {
			return nil, err
		}
		if len(out) > 0 && (r.Reported != out[0].Reported || r.LastDist != out[0].LastDist) {
			return nil, fmt.Errorf("parallel run %s diverged: reported %d/last %g vs sequential %d/%g",
				r.Label, r.Reported, r.LastDist, out[0].Reported, out[0].LastDist)
		}
		out = append(out, r)
	}
	return out, nil
}

// Fig6 reproduces Figure 6: execution time of the four algorithm versions.
func Fig6(d *Datasets) ([]Run, error) {
	variants := []struct {
		label     string
		traversal distjoin.Traversal
		tie       distjoin.TieBreak
	}{
		{"Even/DepthFirst", distjoin.TraverseEven, distjoin.DepthFirst},
		{"Even/BreadthFirst", distjoin.TraverseEven, distjoin.BreadthFirst},
		{"Basic/DepthFirst", distjoin.TraverseBasic, distjoin.DepthFirst},
		{"Simultaneous/DepthFirst", distjoin.TraverseSimultaneous, distjoin.DepthFirst},
	}
	var out []Run
	for _, v := range variants {
		for _, n := range d.Scale.PairCounts {
			opts := d.Scale.hybridOpts()
			opts.Traversal = v.traversal
			opts.TieBreak = v.tie
			r, err := d.runJoin(v.label, n, opts, false)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig7 reproduces Figure 7: the effect of a known maximum distance
// ("MaxDist k" = distance of the k-th closest pair) and of a maximum pair
// count ("MaxPair k", which estimates the maximum distance per §2.2.4),
// against the regular algorithm.
func Fig7(d *Datasets) ([]Run, error) {
	counts := d.Scale.PairCounts
	var out []Run
	// Regular.
	for _, n := range counts {
		r, err := d.runJoin("Regular", n, d.Scale.hybridOpts(), false)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	// Determine the distances of the reference pairs by running once to
	// the largest count.
	kRefs := refCounts(counts)
	distOf := map[int]float64{}
	probe, err := d.runJoinCollect(maxInt(kRefs), kRefs)
	if err != nil {
		return nil, err
	}
	for k, dist := range probe {
		distOf[k] = dist
	}
	// MaxDist variants: set the true k-th distance as the maximum and
	// compute up to k pairs.
	for _, k := range kRefs {
		label := fmt.Sprintf("MaxDist %d", k)
		for _, n := range counts {
			if n > k {
				continue
			}
			opts := d.Scale.hybridOpts()
			opts.MaxDist = distOf[k]
			r, err := d.runJoin(label, n, opts, false)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	// MaxPair variants: bound the number of pairs, activating estimation.
	for _, k := range kRefs[:len(kRefs)-1] {
		label := fmt.Sprintf("MaxPair %d", k)
		for _, n := range counts {
			if n > k {
				continue
			}
			opts := d.Scale.hybridOpts()
			opts.MaxPairs = k
			r, err := d.runJoin(label, n, opts, false)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// refCounts picks the reference counts for MaxDist/MaxPair sweeps: the
// largest three pair counts of the scale.
func refCounts(counts []int) []int {
	if len(counts) <= 3 {
		return counts
	}
	return counts[len(counts)-3:]
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// runJoinCollect runs a plain join up to `limit` pairs and returns the
// distances at the requested ranks.
func (d *Datasets) runJoinCollect(limit int, ranks []int) (map[int]float64, error) {
	want := map[int]bool{}
	for _, r := range ranks {
		want[r] = true
	}
	c, err := d.reset()
	if err != nil {
		return nil, err
	}
	opts := d.Scale.hybridOpts()
	opts.Counters = c
	j, err := distjoin.NewJoin(d.Water, d.Roads, opts)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	out := map[int]float64{}
	for i := 1; i <= limit; i++ {
		p, ok, err := j.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if want[i] {
			out[i] = p.Dist
		}
	}
	return out, nil
}

// Fig8 reproduces Figure 8: the memory-only queue against the hybrid queue
// with two D_T values, plus (an ablation beyond the paper) the adaptive-D_T
// mode.
func Fig8(d *Datasets) ([]Run, error) {
	variants := []struct {
		label string
		opts  distjoin.Options
	}{
		{"Memory", distjoin.Options{Queue: distjoin.QueueMemory}},
		{"Hybrid1", distjoin.Options{Queue: distjoin.QueueHybrid, HybridDT: d.Scale.HybridDT1, HybridInMemory: true}},
		{"Hybrid2", distjoin.Options{Queue: distjoin.QueueHybrid, HybridDT: d.Scale.HybridDT2, HybridInMemory: true}},
		{"HybridAdaptive", distjoin.Options{Queue: distjoin.QueueHybrid, HybridInMemory: true}},
	}
	var out []Run
	for _, v := range variants {
		for _, n := range d.Scale.PairCounts {
			r, err := d.runJoin(v.label, n, v.opts, false)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig9 reproduces Figure 9: semi-join filtering strategies. The "Outside"
// row is restricted exactly as in the paper: without inside filtering, a
// request approaching the full result degenerates into computing an
// unbounded prefix of the distance join, and "the priority queue became too
// large ... beyond 10,000 pairs", so Outside runs only the counts below
// outsideCap.
func Fig9(d *Datasets) ([]Run, error) {
	filters := []distjoin.SemiFilter{
		distjoin.FilterOutside,
		distjoin.FilterInside1,
		distjoin.FilterInside2,
		distjoin.FilterLocal,
		distjoin.FilterGlobalNodes,
		distjoin.FilterGlobalAll,
	}
	const outsideCap = 10_000
	var out []Run
	counts := append(append([]int{}, d.Scale.PairCounts...), 0) // 0 = all
	for _, f := range filters {
		for _, n := range counts {
			// A request at or beyond the result cardinality runs Outside to
			// exhaustion — the unbounded case.
			if f == distjoin.FilterOutside && (n == 0 || n > outsideCap || n >= d.Water.Len()) {
				continue
			}
			// For the other filters, a count beyond the result cardinality
			// duplicates the (all) leg; skip it.
			if f != distjoin.FilterOutside && n > 0 && n >= d.Water.Len() {
				continue
			}
			r, err := d.runSemi(f.String(), n, f, d.Scale.hybridOpts(), false)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				r.Label += " (all)"
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig10 reproduces Figure 10: the effect of maximum distance and maximum
// pairs on the semi-join ("Local" variant, as in §4.2.2).
func Fig10(d *Datasets) ([]Run, error) {
	var out []Run
	counts := make([]int, 0, len(d.Scale.PairCounts))
	for _, n := range d.Scale.PairCounts {
		if n < d.Water.Len() {
			counts = append(counts, n)
		}
	}
	for _, n := range counts {
		r, err := d.runSemi("Regular", n, distjoin.FilterLocal, d.Scale.hybridOpts(), false)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	// Full-result run gives both the total count and the maximum semi-join
	// distance ("MaxDist All").
	full, err := d.runSemi("Regular (all)", 0, distjoin.FilterLocal, d.Scale.hybridOpts(), false)
	if err != nil {
		return nil, err
	}
	out = append(out, full)

	kRefs := refCounts(counts)
	// Probe the k-th semi-join distances.
	distOf, err := d.runSemiCollect(maxInt(kRefs), kRefs)
	if err != nil {
		return nil, err
	}
	for _, k := range kRefs {
		label := fmt.Sprintf("MaxDist %d", k)
		for _, n := range counts {
			if n > k {
				continue
			}
			opts := d.Scale.hybridOpts()
			opts.MaxDist = distOf[k]
			r, err := d.runSemi(label, n, distjoin.FilterLocal, opts, false)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	// MaxDist All: the largest distance in the full semi-join result.
	{
		opts := d.Scale.hybridOpts()
		opts.MaxDist = full.LastDist
		r, err := d.runSemi("MaxDist All", 0, distjoin.FilterLocal, opts, false)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	for _, k := range kRefs {
		label := fmt.Sprintf("MaxPair %d", k)
		for _, n := range counts {
			if n > k {
				continue
			}
			opts := d.Scale.hybridOpts()
			opts.MaxPairs = k
			r, err := d.runSemi(label, n, distjoin.FilterLocal, opts, false)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	// MaxPair All: upper bound set to the number of outer objects.
	{
		opts := d.Scale.hybridOpts()
		opts.MaxPairs = d.Water.Len()
		r, err := d.runSemi("MaxPair All", 0, distjoin.FilterLocal, opts, false)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (d *Datasets) runSemiCollect(limit int, ranks []int) (map[int]float64, error) {
	want := map[int]bool{}
	for _, r := range ranks {
		want[r] = true
	}
	c, err := d.reset()
	if err != nil {
		return nil, err
	}
	opts := d.Scale.hybridOpts()
	opts.Counters = c
	s, err := distjoin.NewSemiJoin(d.Water, d.Roads, distjoin.FilterLocal, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	out := map[int]float64{}
	for i := 1; i <= limit; i++ {
		p, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if want[i] {
			out[i] = p.Dist
		}
	}
	return out, nil
}

// Sec414 reproduces §4.1.4: the nested-loop alternative. It reports the
// nested-loop scan (all pairwise distances, nothing stored) against the
// incremental join producing the scale's largest pair count.
func Sec414(d *Datasets) ([]Run, error) {
	c, err := d.reset()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	n, err := baseline.NestedLoopScanOnly(d.Water, d.Roads, baseline.Options{Counters: c})
	if err != nil {
		return nil, err
	}
	nl := Run{
		Label:     "NestedLoop (scan only)",
		Pairs:     int(math.Min(float64(n), math.MaxInt32)),
		Reported:  0,
		Time:      time.Since(start),
		DistCalcs: c.DistCalcs,
		NodeIO:    c.NodeIO(),
	}
	inc, err := d.runJoin("Incremental", maxInt(d.Scale.PairCounts), d.Scale.hybridOpts(), false)
	if err != nil {
		return nil, err
	}
	return []Run{nl, inc}, nil
}

// Sec423 reproduces §4.2.3: the full distance semi-join computed
// incrementally (GlobalAll) versus the non-incremental
// nearest-neighbour-per-object implementation, in both join orders.
func Sec423(d *Datasets) ([]Run, error) {
	var out []Run
	for _, rev := range []bool{false, true} {
		suffix := " (W⋉R)"
		if rev {
			suffix = " (R⋉W)"
		}
		inc, err := d.runSemi("GlobalAll"+suffix, 0, distjoin.FilterGlobalAll, d.Scale.hybridOpts(), rev)
		if err != nil {
			return nil, err
		}
		out = append(out, inc)

		c, err := d.reset()
		if err != nil {
			return nil, err
		}
		t1, t2 := d.Water, d.Roads
		if rev {
			t1, t2 = d.Roads, d.Water
		}
		start := time.Now()
		pairs, err := baseline.NNSemiJoin(t1, t2, baseline.Options{Counters: c})
		if err != nil {
			return nil, err
		}
		out = append(out, Run{
			Label:     "NN-per-object" + suffix,
			Pairs:     len(pairs),
			Reported:  len(pairs),
			Time:      time.Since(start),
			DistCalcs: c.DistCalcs,
			MaxQueue:  c.MaxQueueSize,
			NodeIO:    c.NodeIO(),
		})
	}
	return out, nil
}

// DimSweep runs the distance join across dimensionalities — the "higher
// dimensions" direction the paper's conclusion lists for further work (§5).
// Each leg joins two clustered point sets of the scale's Water cardinality
// in the unit hyper-cube and retrieves the scale's second-largest pair
// count.
func DimSweep(s Scale) ([]Run, error) {
	pairTarget := s.PairCounts[len(s.PairCounts)-1]
	if len(s.PairCounts) > 1 {
		pairTarget = s.PairCounts[len(s.PairCounts)-2]
	}
	n := s.WaterN
	var out []Run
	for _, dims := range []int{2, 3, 4, 6} {
		c := &stats.Counters{}
		cfg := rtree.Config{Dims: dims, PageSize: 4096, BufferFrames: 128, Counters: c}
		t1, err := datagen.BuildTree(cfg, datagen.ClusteredD(s.Seed+int64(dims), n, dims, 20, 0.03))
		if err != nil {
			return nil, err
		}
		t2, err := datagen.BuildTree(cfg, datagen.ClusteredD(s.Seed+int64(dims)+100, n, dims, 20, 0.03))
		if err != nil {
			t1.Close()
			return nil, err
		}
		start := time.Now()
		j, err := distjoin.NewJoin(t1, t2, distjoin.Options{Counters: c})
		if err != nil {
			t1.Close()
			t2.Close()
			return nil, err
		}
		r := Run{Label: fmt.Sprintf("%d-D", dims), Pairs: pairTarget}
		for r.Reported < pairTarget {
			p, ok, err := j.Next()
			if err != nil {
				j.Close()
				t1.Close()
				t2.Close()
				return nil, err
			}
			if !ok {
				break
			}
			r.Reported++
			r.LastDist = p.Dist
		}
		r.Time = time.Since(start)
		r.DistCalcs = c.DistCalcs
		r.MaxQueue = c.MaxQueueSize
		r.NodeIO = c.NodeIO()
		out = append(out, r)
		j.Close()
		t1.Close()
		t2.Close()
	}
	return out, nil
}

// Kernels is the batched-kernel ablation (beyond the paper): the same
// workload is run with the columnar distance kernels of
// internal/geom/kernel (the default) and with Options.NoBatchKernels
// restoring the scalar one-pair-at-a-time expansion. Both the Table-1
// configuration (Even traversal — batched expandSide) and a
// Simultaneous-traversal run with a result bound (estimation tightens
// D_max, engaging the batched plane sweep of expandBoth) are measured.
// The two paths must agree on every hardware-independent work counter —
// the run fails otherwise — so any wall-time difference is attributable
// to the kernels alone. The raw kernel microbenchmark lives in
// `go test -bench Kernel ./internal/geom/kernel`.
func Kernels(d *Datasets) ([]Run, error) {
	pairs := maxInt(d.Scale.PairCounts)
	sweep := d.Scale.hybridOpts()
	sweep.Traversal = distjoin.TraverseSimultaneous
	sweep.MaxPairs = pairs
	legs := []struct {
		label string
		opts  distjoin.Options
	}{
		{"even/batched", d.Scale.hybridOpts()},
		{"even/scalar", func() distjoin.Options { o := d.Scale.hybridOpts(); o.NoBatchKernels = true; return o }()},
		{"sweep/batched", sweep},
		{"sweep/scalar", func() distjoin.Options { o := sweep; o.NoBatchKernels = true; return o }()},
	}
	var out []Run
	for _, leg := range legs {
		r, err := d.runJoin(leg.label, pairs, leg.opts, false)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	// Pin the counter-parity contract pairwise: scalar leg i+1 must match
	// batched leg i on every work counter and on the result stream's tail.
	for i := 0; i < len(out); i += 2 {
		b, s := out[i], out[i+1]
		if b.Reported != s.Reported || b.DistCalcs != s.DistCalcs ||
			b.MaxQueue != s.MaxQueue || b.NodeIO != s.NodeIO || b.LastDist != s.LastDist {
			return nil, fmt.Errorf("kernels: %s and %s diverged: reported %d/%d distCalcs %d/%d maxQueue %d/%d nodeIO %d/%d last %g/%g",
				b.Label, s.Label, b.Reported, s.Reported, b.DistCalcs, s.DistCalcs,
				b.MaxQueue, s.MaxQueue, b.NodeIO, s.NodeIO, b.LastDist, s.LastDist)
		}
	}
	return out, nil
}
