// Package pqueue provides the priority queues used by the incremental
// distance join: a pure in-memory queue (a pairing heap), and the paper's
// three-tier hybrid memory/disk queue (§3.2), which keeps pairs with small
// distances in a pairing heap, pairs with middling distances in an
// unorganized in-memory list, and spills distant pairs to linked page lists
// on disk, bucketed by distance range [k·D_T, (k+1)·D_T).
package pqueue

import (
	"distjoin/internal/pairheap"
	"distjoin/internal/stats"
)

// Queue is the interface the join algorithm consumes. Implementations are
// not safe for concurrent use.
type Queue[T any] interface {
	// Insert adds an element.
	Insert(v T) error
	// Pop removes and returns the minimum element; ok is false when empty.
	Pop() (v T, ok bool, err error)
	// Peek returns the minimum element without removing it.
	Peek() (v T, ok bool, err error)
	// Len returns the total number of elements across all tiers.
	Len() int
	// Close releases any disk resources.
	Close() error
}

// MemQueue is a purely in-memory queue backed by a pairing heap — the
// baseline of the paper's Figure 8 experiment.
type MemQueue[T any] struct {
	heap     *pairheap.Heap[T]
	counters *stats.Counters
}

// NewMemQueue creates an in-memory queue ordered by less. counters may be
// nil.
func NewMemQueue[T any](less func(a, b T) bool, counters *stats.Counters) *MemQueue[T] {
	return &MemQueue[T]{heap: pairheap.New(less), counters: counters}
}

// Insert implements Queue.
func (q *MemQueue[T]) Insert(v T) error {
	q.heap.Insert(v)
	q.counters.QueueInsert(int64(q.heap.Len()))
	return nil
}

// Pop implements Queue.
func (q *MemQueue[T]) Pop() (T, bool, error) {
	var zero T
	if q.heap.Empty() {
		return zero, false, nil
	}
	q.counters.QueuePop()
	return q.heap.PopMin(), true, nil
}

// Peek implements Queue.
func (q *MemQueue[T]) Peek() (T, bool, error) {
	var zero T
	if q.heap.Empty() {
		return zero, false, nil
	}
	return q.heap.Min().Value, true, nil
}

// Len implements Queue.
func (q *MemQueue[T]) Len() int { return q.heap.Len() }

// Close implements Queue.
func (q *MemQueue[T]) Close() error { return nil }
