package pqueue

import (
	"errors"
	"testing"
	"time"

	"distjoin/internal/faultstore"
	"distjoin/internal/pager"
)

// spillElems inserts n elements far enough beyond D2 to land on the disk
// tier (DT=1, distances in [10, 10+n)).
func spillElems(t *testing.T, q *HybridQueue[elem], n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := q.Insert(elem{dist: 10 + float64(i%7), id: uint64(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if q.Len() != n {
		t.Fatalf("Len=%d want %d", q.Len(), n)
	}
}

func newFaultHybrid(t *testing.T, cfg faultstore.Config) (*HybridQueue[elem], *faultstore.Store) {
	t.Helper()
	mem, err := pager.NewMemStore(128)
	if err != nil {
		t.Fatal(err)
	}
	fs := faultstore.New(mem, cfg)
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		DT: 1, PageSize: 128, Store: fs, Frames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q, fs
}

// TestHybridDetectsCorruption: a page corrupted below the queue must
// surface as ErrPageChecksum, never decode into garbage elements.
func TestHybridDetectsCorruption(t *testing.T) {
	q, fs := newFaultHybrid(t, faultstore.Config{Seed: 3, CorruptReadProb: 1})
	fs.SetArmed(false)
	spillElems(t, q, 200) // many pages across several buckets
	fs.SetArmed(true)

	var firstErr error
	for i := 0; i < 220; i++ {
		if _, ok, err := q.Pop(); err != nil {
			firstErr = err
			break
		} else if !ok {
			break
		}
	}
	if !errors.Is(firstErr, ErrPageChecksum) {
		t.Fatalf("want ErrPageChecksum, got %v", firstErr)
	}
	if fs.Stats().CorruptedReads == 0 {
		t.Fatal("no corruption was actually injected")
	}
}

// TestHybridPoisonedAfterError: after the first storage error every
// Insert/Pop/Peek must return the same error rather than serving a
// possibly-truncated stream.
func TestHybridPoisonedAfterError(t *testing.T) {
	q, fs := newFaultHybrid(t, faultstore.Config{Seed: 5, FailReadAt: 2})
	fs.SetArmed(false)
	spillElems(t, q, 200)
	fs.SetArmed(true)

	var firstErr error
	for i := 0; i < 220; i++ {
		if _, ok, err := q.Pop(); err != nil {
			firstErr = err
			break
		} else if !ok {
			break
		}
	}
	if firstErr == nil {
		t.Fatal("FailReadAt never triggered")
	}
	if _, _, err := q.Pop(); !errors.Is(err, firstErr) {
		t.Fatalf("Pop after failure: %v, want latched %v", err, firstErr)
	}
	if _, _, err := q.Peek(); !errors.Is(err, firstErr) {
		t.Fatalf("Peek after failure: %v, want latched %v", err, firstErr)
	}
	if err := q.Insert(elem{dist: 1}); !errors.Is(err, firstErr) {
		t.Fatalf("Insert after failure: %v, want latched %v", err, firstErr)
	}
}

// TestHybridSurvivesTransientWithRetryStore: wrapping the flaky store in
// a RetryStore under the queue makes a lossy-but-transient disk tier
// fully recoverable.
func TestHybridSurvivesTransientWithRetryStore(t *testing.T) {
	mem, err := pager.NewMemStore(128)
	if err != nil {
		t.Fatal(err)
	}
	fs := faultstore.New(mem, faultstore.Config{Seed: 11, TransientReadProb: 0.3, TransientWriteProb: 0.3})
	var retries int
	rs := pager.NewRetryStore(fs, pager.RetryPolicy{
		MaxAttempts: 10,
		Sleep:       func(time.Duration) {},
		OnRetry:     func(string, int, error) { retries++ },
	})
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		DT: 1, PageSize: 128, Store: rs, Frames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	spillElems(t, q, 200)

	var got int
	last := -1.0
	for {
		e, ok, err := q.Pop()
		if err != nil {
			t.Fatalf("pop under retried transient faults: %v", err)
		}
		if !ok {
			break
		}
		if e.dist < last {
			t.Fatalf("order violated: %g after %g", e.dist, last)
		}
		last = e.dist
		got++
	}
	if got != 200 {
		t.Fatalf("drained %d/200 elements", got)
	}
	if fs.Stats().TransientErrors > 0 && retries == 0 {
		t.Fatal("faults occurred but no retry was recorded")
	}
}
