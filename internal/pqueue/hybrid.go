package pqueue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"

	"distjoin/internal/obs"
	"distjoin/internal/pager"
	"distjoin/internal/pairheap"
	"distjoin/internal/profile"
	"distjoin/internal/stats"
)

// Codec serializes queue elements for the disk tier. Elements must have a
// fixed encoded size (join pairs do: two rectangles, two references and a
// few flags).
type Codec[T any] interface {
	// Size returns the fixed encoded size in bytes.
	Size() int
	// Encode writes v into dst, which is Size() bytes long.
	Encode(dst []byte, v T)
	// Decode reads an element from src, which is Size() bytes long.
	Decode(src []byte) T
}

// HybridConfig configures a HybridQueue.
type HybridConfig struct {
	// DT is the fixed distance increment of the paper's scheme: the heap
	// holds distances < D1, the list [D1, D2), disk buckets
	// [k·DT, (k+1)·DT) beyond. Initially D1 = DT and D2 = 2·DT.
	// Required unless Adaptive is set.
	DT float64
	// Adaptive, when set, derives DT from the distance distribution of the
	// first AdaptiveSample insertions instead of requiring a tuned
	// constant — the dynamic-partitioning direction the paper lists as
	// future work (§5). Until DT is determined, all elements stay in the
	// heap.
	Adaptive bool
	// AdaptiveSample is the number of insertions observed before fixing
	// DT. Defaults to 4096.
	AdaptiveSample int
	// PageSize is the page size of the disk tier (default 4096).
	PageSize int
	// Dir is where the backing scratch file is created when Store is nil.
	// Empty means the default temp directory. Set Store to use an
	// in-memory "disk" (useful in tests and for deterministic benches).
	Dir string
	// Store overrides the disk-tier page store.
	Store pager.Store
	// Frames is the buffer-pool capacity for the disk tier (default 16).
	Frames int
	// Counters receives queue and spill accounting. May be nil.
	Counters *stats.Counters
	// Obs receives spill events for the observability layer; Part tags them
	// with the owning engine's partition id (-1 when sequential). May be
	// nil.
	Obs  *obs.Recorder
	Part int32
	// Spans receives span accounting for query profiles: disk-tier spills
	// and bucket fetches are clocked as their own phases, and the buffer
	// pool's physical I/O time is attributed via pager.IOTimer. May be nil
	// (no clock reads at all).
	Spans *profile.Spans
}

// HybridQueue is the paper's three-tier queue. The ordering is determined by
// less; key extracts the distance used for tier placement. less must be
// consistent with key: key(a) < key(b) implies less(a, b).
type HybridQueue[T any] struct {
	less  func(a, b T) bool
	key   func(T) float64
	codec Codec[T]
	cfg   HybridConfig

	heap *pairheap.Heap[T]
	list []T
	d1   float64
	d2   float64

	buckets  map[int]*bucket // disk tier, by distance bucket index
	diskLen  int
	pool     *pager.Pool
	perPage  int
	counters *stats.Counters
	spans    *profile.Spans

	// adaptive-mode sampling
	sampled []float64

	// failed poisons the queue after the first storage error: once the
	// disk tier has failed mid-operation the in-memory bookkeeping can no
	// longer be trusted, so every later Insert/Pop/Peek returns the same
	// error instead of silently serving a truncated or misordered stream.
	failed error
}

// bucket is one linked page list of the disk tier.
type bucket struct {
	head  pager.PageID
	count int // total elements in the bucket
}

// Disk-tier page layout: next page (4) + count (2) + pad (2) + CRC-32C (4)
// + reserved (4), then count fixed-size encoded elements. The checksum
// covers the whole page except its own field, so torn or bit-rotted pages
// surface as ErrPageChecksum instead of decoding into garbage pairs.
const (
	bucketHeaderSize = 16
	pageCRCOffset    = 8
)

// ErrPageChecksum reports a disk-tier page whose stored CRC-32C does not
// match its contents.
var ErrPageChecksum = errors.New("pqueue: disk page checksum mismatch")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// pageCRC computes the checksum of a page, skipping the CRC field itself.
func pageCRC(data []byte) uint32 {
	c := crc32.Checksum(data[:pageCRCOffset], crcTable)
	return crc32.Update(c, crcTable, data[pageCRCOffset+4:])
}

// sealPage stamps the page's checksum; call after every mutation, before
// the frame is unpinned.
func sealPage(data []byte) {
	binary.LittleEndian.PutUint32(data[pageCRCOffset:], pageCRC(data))
}

// verifyPage checks a page read from the disk tier against its stored
// checksum.
func verifyPage(id pager.PageID, data []byte) error {
	stored := binary.LittleEndian.Uint32(data[pageCRCOffset:])
	if got := pageCRC(data); got != stored {
		return fmt.Errorf("%w: page %d (stored %08x, computed %08x)", ErrPageChecksum, id, stored, got)
	}
	return nil
}

// NewHybridQueue creates a hybrid queue. See HybridConfig for knobs.
func NewHybridQueue[T any](less func(a, b T) bool, key func(T) float64, codec Codec[T], cfg HybridConfig) (*HybridQueue[T], error) {
	if cfg.DT <= 0 && !cfg.Adaptive {
		return nil, errors.New("pqueue: DT must be positive (or Adaptive set)")
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.Frames == 0 {
		cfg.Frames = 16
	}
	if cfg.AdaptiveSample == 0 {
		cfg.AdaptiveSample = 4096
	}
	if codec.Size() > cfg.PageSize-bucketHeaderSize {
		return nil, fmt.Errorf("pqueue: element size %d exceeds page payload %d",
			codec.Size(), cfg.PageSize-bucketHeaderSize)
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = pager.NewFileStore(cfg.Dir, cfg.PageSize)
		if err != nil {
			return nil, err
		}
	}
	pool, err := pager.NewPool(store, cfg.Frames, stats.QueueSink(cfg.Counters))
	if err != nil {
		return nil, err
	}
	if cfg.Spans != nil {
		pool.SetIOTimer(cfg.Spans)
	}
	q := &HybridQueue[T]{
		less:     less,
		key:      key,
		codec:    codec,
		cfg:      cfg,
		heap:     pairheap.New(less),
		buckets:  make(map[int]*bucket),
		pool:     pool,
		perPage:  (cfg.PageSize - bucketHeaderSize) / codec.Size(),
		counters: cfg.Counters,
		spans:    cfg.Spans,
	}
	if !cfg.Adaptive {
		q.d1 = cfg.DT
		q.d2 = 2 * cfg.DT
	} else {
		q.d1 = math.Inf(1)
		q.d2 = math.Inf(1)
	}
	return q, nil
}

// DT returns the distance increment in effect (0 while an adaptive queue is
// still sampling).
func (q *HybridQueue[T]) DT() float64 { return q.cfg.DT }

// Len implements Queue.
func (q *HybridQueue[T]) Len() int { return q.heap.Len() + len(q.list) + q.diskLen }

// Insert implements Queue.
func (q *HybridQueue[T]) Insert(v T) error {
	if q.failed != nil {
		return q.failed
	}
	defer q.counters.QueueInsert(int64(q.Len() + 1))
	d := q.key(v)
	if q.cfg.Adaptive && q.cfg.DT == 0 {
		q.sampled = append(q.sampled, d)
		q.heap.Insert(v)
		if len(q.sampled) >= q.cfg.AdaptiveSample {
			return q.fail(q.fixAdaptiveDT())
		}
		return nil
	}
	return q.fail(q.place(v, d))
}

// fail latches the first storage error, poisoning the queue.
func (q *HybridQueue[T]) fail(err error) error {
	if err != nil && q.failed == nil {
		q.failed = err
	}
	return err
}

// place routes an element to the tier covering its distance.
func (q *HybridQueue[T]) place(v T, d float64) error {
	switch {
	case d < q.d1:
		q.heap.Insert(v)
	case d < q.d2:
		q.list = append(q.list, v)
	default:
		return q.spill(v, d)
	}
	return nil
}

// fixAdaptiveDT chooses DT so that roughly a quarter of the sampled
// distances fall below D1, then re-tiers the sampled elements (which all
// accumulated in the heap while sampling) into their proper tiers, since
// correctness requires the heap to hold exactly the elements below D1.
func (q *HybridQueue[T]) fixAdaptiveDT() error {
	s := append([]float64(nil), q.sampled...)
	sort.Float64s(s)
	dt := s[len(s)/4]
	if dt <= 0 {
		// Degenerate distribution (everything at distance 0): fall back to
		// the first positive sample, or keep the queue memory-only.
		for _, v := range s {
			if v > 0 {
				dt = v
				break
			}
		}
		if dt <= 0 {
			dt = 1
		}
	}
	q.cfg.DT = dt
	q.d1 = dt
	q.d2 = 2 * dt
	q.sampled = nil
	// Re-tier everything accumulated during sampling.
	pending := make([]T, 0, q.heap.Len())
	for !q.heap.Empty() {
		pending = append(pending, q.heap.PopMin())
	}
	for _, v := range pending {
		if err := q.place(v, q.key(v)); err != nil {
			return err
		}
	}
	return nil
}

// spill clocks the disk-tier append as PhaseSpill when profiling is on.
func (q *HybridQueue[T]) spill(v T, d float64) error {
	if q.spans == nil {
		return q.doSpill(v, d)
	}
	start := time.Now()
	err := q.doSpill(v, d)
	q.spans.Add(profile.PhaseSpill, time.Since(start))
	return err
}

// doSpill appends v to the disk bucket covering distance d.
func (q *HybridQueue[T]) doSpill(v T, d float64) error {
	idx := int(d / q.cfg.DT)
	b := q.buckets[idx]
	if b == nil {
		b = &bucket{}
		q.buckets[idx] = b
	}
	size := q.codec.Size()
	// Append into the head page if it has room; otherwise chain a new page.
	if b.head != pager.InvalidPage {
		f, err := q.pool.Get(b.head)
		if err != nil {
			return err
		}
		if err := verifyPage(b.head, f.Data()); err != nil {
			q.pool.Unpin(f)
			return err
		}
		n := int(binary.LittleEndian.Uint16(f.Data()[4:]))
		if n < q.perPage {
			q.codec.Encode(f.Data()[bucketHeaderSize+n*size:], v)
			binary.LittleEndian.PutUint16(f.Data()[4:], uint16(n+1))
			sealPage(f.Data())
			f.MarkDirty()
			q.pool.Unpin(f)
			b.count++
			q.noteSpill(d)
			return nil
		}
		q.pool.Unpin(f)
	}
	f, err := q.pool.Allocate()
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(f.Data()[0:], uint32(b.head))
	binary.LittleEndian.PutUint16(f.Data()[4:], 1)
	q.codec.Encode(f.Data()[bucketHeaderSize:], v)
	sealPage(f.Data())
	f.MarkDirty()
	b.head = f.ID()
	q.pool.Unpin(f)
	b.count++
	q.noteSpill(d)
	return nil
}

// noteSpill records one pair landing on the disk tier with both accounting
// sinks.
func (q *HybridQueue[T]) noteSpill(d float64) {
	q.diskLen++
	q.counters.AddQueueDiskPair(1)
	q.cfg.Obs.Spill(q.cfg.Part, d, q.diskLen)
}

// loadBucket reads and frees every page of bucket idx, appending the
// elements to the in-memory list. Bookkeeping is advanced page by page so
// that a failure mid-chain leaves Len() consistent with what was actually
// recovered (the caller then poisons the queue anyway).
func (q *HybridQueue[T]) loadBucket(idx int) error {
	b := q.buckets[idx]
	if b == nil {
		return nil
	}
	size := q.codec.Size()
	for b.head != pager.InvalidPage {
		page := b.head
		f, err := q.pool.Get(page)
		if err != nil {
			return err
		}
		if err := verifyPage(page, f.Data()); err != nil {
			q.pool.Unpin(f)
			return err
		}
		next := pager.PageID(binary.LittleEndian.Uint32(f.Data()[0:]))
		n := int(binary.LittleEndian.Uint16(f.Data()[4:]))
		for i := 0; i < n; i++ {
			q.list = append(q.list, q.codec.Decode(f.Data()[bucketHeaderSize+i*size:]))
		}
		q.pool.Unpin(f)
		b.head = next
		b.count -= n
		q.diskLen -= n
		if err := q.pool.Drop(page); err != nil {
			return err
		}
	}
	delete(q.buckets, idx)
	return nil
}

// refill clocks tier advancement as PhaseFetch when profiling is on and
// there is anything to advance (an empty queue's no-op refill is not a
// fetch).
func (q *HybridQueue[T]) refill() error {
	if q.spans == nil || (len(q.list) == 0 && q.diskLen == 0) {
		return q.doRefill()
	}
	start := time.Now()
	err := q.doRefill()
	q.spans.Add(profile.PhaseFetch, time.Since(start))
	return err
}

// doRefill advances the tier boundaries when the heap drains: the list is
// poured into the heap, D1 := D2, D2 += DT, and the next disk bucket is
// loaded into the list (paper §3.2). Empty bucket ranges are skipped in one
// jump rather than one DT step at a time.
func (q *HybridQueue[T]) doRefill() error {
	for q.heap.Empty() && (len(q.list) > 0 || q.diskLen > 0) {
		for _, v := range q.list {
			q.heap.Insert(v)
		}
		q.list = q.list[:0]
		q.d1 = q.d2
		if q.diskLen == 0 {
			q.d2 = q.d1 + q.cfg.DT
			continue
		}
		// Find the lowest populated bucket at or beyond the new D1.
		minIdx := -1
		for idx := range q.buckets {
			if minIdx == -1 || idx < minIdx {
				minIdx = idx
			}
		}
		// Jump boundaries so the chosen bucket maps to [D1, D2).
		if lo := float64(minIdx) * q.cfg.DT; lo > q.d1 {
			q.d1 = lo
		}
		q.d2 = float64(minIdx+1) * q.cfg.DT
		if err := q.loadBucket(minIdx); err != nil {
			return err
		}
	}
	return nil
}

// Pop implements Queue.
func (q *HybridQueue[T]) Pop() (T, bool, error) {
	var zero T
	if q.failed != nil {
		return zero, false, q.failed
	}
	if q.heap.Empty() {
		if err := q.fail(q.refill()); err != nil {
			return zero, false, err
		}
		if q.heap.Empty() {
			return zero, false, nil
		}
	}
	q.counters.QueuePop()
	return q.heap.PopMin(), true, nil
}

// Peek implements Queue.
func (q *HybridQueue[T]) Peek() (T, bool, error) {
	var zero T
	if q.failed != nil {
		return zero, false, q.failed
	}
	if q.heap.Empty() {
		if err := q.fail(q.refill()); err != nil {
			return zero, false, err
		}
		if q.heap.Empty() {
			return zero, false, nil
		}
	}
	return q.heap.Min().Value, true, nil
}

// PinnedFrames reports how many of the disk tier's buffer-pool frames are
// still pinned. Outside an in-flight operation it must be 0 — every fetch
// and spill unpins on success, failure and cancellation alike — which the
// cancellation sweep asserts after abandoning runs mid-join.
func (q *HybridQueue[T]) PinnedFrames() int { return q.pool.PinnedFrames() }

// Close implements Queue.
func (q *HybridQueue[T]) Close() error { return q.pool.Store().Close() }
