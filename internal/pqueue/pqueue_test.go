package pqueue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"distjoin/internal/pager"
	"distjoin/internal/stats"
)

// elem is a minimal fixed-size element for queue tests.
type elem struct {
	dist float64
	id   uint64
}

func elemLess(a, b elem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

func elemKey(e elem) float64 { return e.dist }

// elemCodec serializes elem in 16 bytes.
type elemCodec struct{}

func (elemCodec) Size() int { return 16 }

func (elemCodec) Encode(dst []byte, v elem) {
	bits := math.Float64bits(v.dist)
	for i := 0; i < 8; i++ {
		dst[i] = byte(bits >> (8 * i))
		dst[8+i] = byte(v.id >> (8 * i))
	}
}

func (elemCodec) Decode(src []byte) elem {
	var bits, id uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(src[i]) << (8 * i)
		id |= uint64(src[8+i]) << (8 * i)
	}
	return elem{dist: math.Float64frombits(bits), id: id}
}

func newHybrid(t *testing.T, dt float64, c *stats.Counters) *HybridQueue[elem] {
	t.Helper()
	store, err := pager.NewMemStore(256)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		DT: dt, PageSize: 256, Store: store, Counters: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func drain[T any](t *testing.T, q Queue[T]) []T {
	t.Helper()
	var out []T
	for {
		v, ok, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestMemQueueOrder(t *testing.T) {
	q := NewMemQueue[elem](elemLess, nil)
	for _, d := range []float64{5, 1, 3, 2, 4} {
		q.Insert(elem{dist: d})
	}
	got := drain[elem](t, q)
	for i, e := range got {
		if e.dist != float64(i+1) {
			t.Fatalf("pop %d = %g", i, e.dist)
		}
	}
}

func TestMemQueuePeek(t *testing.T) {
	q := NewMemQueue[elem](elemLess, nil)
	if _, ok, _ := q.Peek(); ok {
		t.Fatal("peek on empty queue returned element")
	}
	q.Insert(elem{dist: 2})
	q.Insert(elem{dist: 1})
	v, ok, _ := q.Peek()
	if !ok || v.dist != 1 {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("Peek consumed an element")
	}
}

func TestHybridAllTiersOrder(t *testing.T) {
	c := &stats.Counters{}
	q := newHybrid(t, 10, c) // heap < 10, list [10, 20), disk >= 20
	dists := []float64{5, 15, 25, 35, 2, 95, 12, 55, 8, 42, 19, 20, 0.5, 77}
	for i, d := range dists {
		if err := q.Insert(elem{dist: d, id: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != len(dists) {
		t.Fatalf("Len = %d", q.Len())
	}
	if c.QueueDiskPairs == 0 {
		t.Fatal("nothing spilled to disk")
	}
	got := drain[elem](t, Queue[elem](q))
	want := append([]float64(nil), dists...)
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].dist != want[i] {
			t.Fatalf("pop %d = %g, want %g", i, got[i].dist, want[i])
		}
	}
}

func TestHybridManyElements(t *testing.T) {
	q := newHybrid(t, 1, nil) // tiny DT forces many buckets
	rnd := rand.New(rand.NewSource(9))
	n := 5000
	var want []float64
	for i := 0; i < n; i++ {
		d := rnd.Float64() * 100
		want = append(want, d)
		if err := q.Insert(elem{dist: d, id: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(want)
	got := drain[elem](t, Queue[elem](q))
	for i := range got {
		if got[i].dist != want[i] {
			t.Fatalf("pop %d = %g, want %g", i, got[i].dist, want[i])
		}
	}
}

func TestHybridInterleavedInsertPop(t *testing.T) {
	// The join inserts children with distance >= the popped pair's
	// distance; model that pattern and assert popped order never goes
	// backwards.
	q := newHybrid(t, 5, nil)
	rnd := rand.New(rand.NewSource(17))
	q.Insert(elem{dist: 0})
	last := -1.0
	popped := 0
	for popped < 2000 {
		v, ok, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		popped++
		if v.dist < last {
			t.Fatalf("order violated: %g after %g", v.dist, last)
		}
		last = v.dist
		// Spawn a few children with larger distances.
		if popped < 500 {
			for k := 0; k < 4; k++ {
				q.Insert(elem{dist: v.dist + rnd.Float64()*40, id: uint64(popped*10 + k)})
			}
		}
	}
	if popped < 500 {
		t.Fatalf("popped only %d", popped)
	}
}

func TestHybridPeek(t *testing.T) {
	q := newHybrid(t, 1, nil)
	// Everything on disk: peek must trigger refill.
	for _, d := range []float64{50, 30, 70} {
		q.Insert(elem{dist: d})
	}
	v, ok, err := q.Peek()
	if err != nil || !ok || v.dist != 30 {
		t.Fatalf("Peek = %v %v %v", v, ok, err)
	}
	if q.Len() != 3 {
		t.Fatalf("Len after peek = %d", q.Len())
	}
}

func TestHybridEmpty(t *testing.T) {
	q := newHybrid(t, 1, nil)
	if _, ok, err := q.Pop(); ok || err != nil {
		t.Fatal("empty queue popped something")
	}
	q.Insert(elem{dist: 100}) // straight to disk
	if v, ok, _ := q.Pop(); !ok || v.dist != 100 {
		t.Fatalf("Pop = %v %v", v, ok)
	}
	if _, ok, _ := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
	// Queue remains usable after draining.
	q.Insert(elem{dist: 1})
	if v, ok, _ := q.Pop(); !ok || v.dist != 1 {
		t.Fatalf("Pop after drain = %v %v", v, ok)
	}
}

func TestHybridConfigValidation(t *testing.T) {
	if _, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{}); err == nil {
		t.Fatal("DT=0 non-adaptive accepted")
	}
	if _, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{DT: 1, PageSize: 16}); err == nil {
		t.Fatal("element bigger than page accepted")
	}
}

func TestHybridAdaptive(t *testing.T) {
	store, _ := pager.NewMemStore(256)
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		Adaptive: true, AdaptiveSample: 100, PageSize: 256, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	rnd := rand.New(rand.NewSource(3))
	var want []float64
	for i := 0; i < 1000; i++ {
		d := rnd.Float64() * 100
		want = append(want, d)
		if err := q.Insert(elem{dist: d, id: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if q.cfg.DT == 0 {
		t.Fatal("adaptive DT not fixed after sample")
	}
	sort.Float64s(want)
	got := drain[elem](t, Queue[elem](q))
	for i := range got {
		if got[i].dist != want[i] {
			t.Fatalf("pop %d = %g, want %g", i, got[i].dist, want[i])
		}
	}
}

func TestHybridCountsMaxQueueSize(t *testing.T) {
	c := &stats.Counters{}
	q := newHybrid(t, 10, c)
	for i := 0; i < 50; i++ {
		q.Insert(elem{dist: float64(i)})
	}
	for i := 0; i < 20; i++ {
		q.Pop()
	}
	if c.MaxQueueSize != 50 {
		t.Fatalf("MaxQueueSize = %d, want 50", c.MaxQueueSize)
	}
	if c.QueueInserts != 50 || c.QueuePops != 20 {
		t.Fatalf("inserts=%d pops=%d", c.QueueInserts, c.QueuePops)
	}
}

// Property: hybrid and memory queues pop identical sequences for any input,
// under any DT.
func TestPropHybridMatchesMem(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		dt := 0.5 + rnd.Float64()*30
		store, _ := pager.NewMemStore(512)
		hq, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
			DT: dt, PageSize: 512, Store: store,
		})
		if err != nil {
			return false
		}
		defer hq.Close()
		mq := NewMemQueue[elem](elemLess, nil)
		n := 50 + rnd.Intn(500)
		for i := 0; i < n; i++ {
			e := elem{dist: rnd.Float64() * 100, id: uint64(i)}
			hq.Insert(e)
			mq.Insert(e)
			// Occasionally interleave pops.
			if rnd.Intn(4) == 0 {
				hv, hok, herr := hq.Pop()
				mv, mok, _ := mq.Pop()
				if herr != nil || hok != mok || hv != mv {
					return false
				}
			}
		}
		for {
			hv, hok, herr := hq.Pop()
			mv, mok, _ := mq.Pop()
			if herr != nil || hok != mok {
				return false
			}
			if !hok {
				return true
			}
			if hv != mv {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHybridDiskPagesFreedAfterLoad(t *testing.T) {
	store, _ := pager.NewMemStore(256)
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		DT: 1, PageSize: 256, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 1000; i++ {
		q.Insert(elem{dist: 10 + float64(i%50), id: uint64(i)})
	}
	for {
		if _, ok, err := q.Pop(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	if store.NumAllocated() != 0 {
		t.Fatalf("%d disk pages leaked after drain", store.NumAllocated())
	}
}

func TestHybridFileBackedDefault(t *testing.T) {
	// Without an explicit Store, the hybrid queue creates a scratch file —
	// exercise the real file-backed path end to end.
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		DT: 5, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	rnd := rand.New(rand.NewSource(31))
	var want []float64
	for i := 0; i < 2000; i++ {
		d := rnd.Float64() * 200
		want = append(want, d)
		if err := q.Insert(elem{dist: d, id: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(want)
	got := drain[elem](t, Queue[elem](q))
	if len(got) != len(want) {
		t.Fatalf("drained %d", len(got))
	}
	for i := range got {
		if got[i].dist != want[i] {
			t.Fatalf("pop %d = %g, want %g", i, got[i].dist, want[i])
		}
	}
}

func TestHybridCountsQueueIOSeparately(t *testing.T) {
	c := &stats.Counters{}
	store, _ := pager.NewMemStore(256)
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		DT: 1, PageSize: 256, Store: store, Counters: c, Frames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 3000; i++ {
		q.Insert(elem{dist: 10 + float64(i%100), id: uint64(i)})
	}
	for {
		if _, ok, err := q.Pop(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	// Spilled pages must be accounted as queue I/O, never node I/O.
	if c.QueueReads == 0 || c.QueueWrites == 0 {
		t.Fatalf("queue I/O not counted: %+v", c)
	}
	if c.NodeReads != 0 || c.NodeWrites != 0 {
		t.Fatalf("queue I/O leaked into node counters: %+v", c)
	}
}

func TestHybridAdaptiveDegenerateDistances(t *testing.T) {
	// All-zero sampled distances must not wedge the adaptive DT choice.
	store, _ := pager.NewMemStore(256)
	q, err := NewHybridQueue[elem](elemLess, elemKey, elemCodec{}, HybridConfig{
		Adaptive: true, AdaptiveSample: 16, PageSize: 256, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 64; i++ {
		if err := q.Insert(elem{dist: 0, id: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// A later burst of positive distances still orders correctly.
	for i := 0; i < 64; i++ {
		q.Insert(elem{dist: float64(64 - i), id: uint64(100 + i)})
	}
	last := -1.0
	n := 0
	for {
		v, ok, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if v.dist < last {
			t.Fatalf("order violated: %g after %g", v.dist, last)
		}
		last = v.dist
		n++
	}
	if n != 128 {
		t.Fatalf("drained %d", n)
	}
}
