package costmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/distjoin"
	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

func buildTree(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func uniformPts(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
	}
	return pts
}

func TestPairsWithinAccuracy(t *testing.T) {
	a, b := uniformPts(1, 800), uniformPts(2, 900)
	ta, tb := buildTree(t, a), buildTree(t, b)
	for _, d := range []float64{25, 60, 150} {
		est, err := PairsWithin(ta, tb, d, Options{Sample: 400, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		truth := 0.0
		for _, p := range a {
			for _, q := range b {
				if geom.Euclidean.Dist(p, q) <= d {
					truth++
				}
			}
		}
		if truth == 0 {
			continue
		}
		ratio := est / truth
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("d=%g: estimate %.0f vs truth %.0f (ratio %.2f)", d, est, truth, ratio)
		}
	}
}

func TestPairsWithinEdgeCases(t *testing.T) {
	empty := buildTree(t, nil)
	full := buildTree(t, uniformPts(3, 50))
	if est, err := PairsWithin(empty, full, 10, Options{}); err != nil || est != 0 {
		t.Fatalf("empty input: %g %v", est, err)
	}
	if _, err := PairsWithin(full, full, -1, Options{}); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestDistanceForKConservative(t *testing.T) {
	a, b := uniformPts(4, 600), uniformPts(5, 600)
	ta, tb := buildTree(t, a), buildTree(t, b)
	// True k-th distances by brute force.
	ds := make([]float64, 0, len(a)*len(b))
	for _, p := range a {
		for _, q := range b {
			ds = append(ds, geom.Euclidean.Dist(p, q))
		}
	}
	sort.Float64s(ds)
	for _, k := range []int{100, 1000, 10000} {
		est, err := DistanceForK(ta, tb, k, Options{Sample: 400, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		truth := ds[k-1]
		// Sampling floors small quantiles, so the estimate should not be
		// wildly below the truth and not more than ~5x above for uniform
		// data.
		if est < truth/3 || est > truth*5 {
			t.Fatalf("k=%d: estimate %.2f vs truth %.2f", k, est, truth)
		}
	}
}

func TestDistanceForKValidation(t *testing.T) {
	tr := buildTree(t, uniformPts(6, 10))
	if _, err := DistanceForK(tr, tr, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	empty := buildTree(t, nil)
	if _, err := DistanceForK(empty, tr, 1, Options{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSelectivity(t *testing.T) {
	tr := buildTree(t, uniformPts(7, 1000))
	est, err := Selectivity(tr, func(id rtree.ObjID) bool { return id%4 == 0 }, Options{Sample: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-0.25) > 0.1 {
		t.Fatalf("selectivity estimate %.3f, want ≈0.25", est)
	}
	empty := buildTree(t, nil)
	if est, err := Selectivity(empty, func(rtree.ObjID) bool { return true }, Options{}); err != nil || est != 0 {
		t.Fatalf("empty selectivity: %g %v", est, err)
	}
}

// TestSuggestMaxDistDrivesJoin is the end-to-end use: a suggested cap keeps
// the join correct while collapsing its queue (Figure 7's effect, obtained
// without knowing the true k-th distance).
func TestSuggestMaxDistDrivesJoin(t *testing.T) {
	a, b := uniformPts(8, 1000), uniformPts(9, 1000)
	ta, tb := buildTree(t, a), buildTree(t, b)
	const k = 500
	cap_, err := SuggestMaxDist(ta, tb, k, 2, Options{Sample: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(cap_, 1) {
		t.Fatal("no cap suggested for well-behaved data")
	}

	run := func(maxDist float64) (dists []float64, queue int) {
		j, err := distjoin.NewJoin(ta, tb, distjoin.Options{MaxDist: maxDist})
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		for len(dists) < k {
			p, ok, err := j.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			dists = append(dists, p.Dist)
			if q := j.QueueLen(); q > queue {
				queue = q
			}
		}
		return dists, queue
	}
	capped, cappedQueue := run(cap_)
	uncapped, uncappedQueue := run(0) // 0 = unlimited
	if len(capped) != k || len(uncapped) != k {
		t.Fatalf("runs returned %d and %d pairs", len(capped), len(uncapped))
	}
	for i := range capped {
		if capped[i] != uncapped[i] {
			t.Fatalf("capped join changed result at %d: %g vs %g", i, capped[i], uncapped[i])
		}
	}
	if cappedQueue >= uncappedQueue {
		t.Fatalf("cap did not shrink the queue: %d vs %d", cappedQueue, uncappedQueue)
	}
}

func TestSuggestMaxDistValidation(t *testing.T) {
	tr := buildTree(t, uniformPts(10, 20))
	if _, err := SuggestMaxDist(tr, tr, 5, 0.5, Options{}); err == nil {
		t.Fatal("safety < 1 accepted")
	}
	// Coincident data: suggestion degenerates to +Inf rather than 0.
	same := make([]geom.Point, 30)
	for i := range same {
		same[i] = geom.Pt(5, 5)
	}
	ts := buildTree(t, same)
	d, err := SuggestMaxDist(ts, ts, 3, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("degenerate suggestion %g, want +Inf", d)
	}
}
