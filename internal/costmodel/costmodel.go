// Package costmodel provides sampling-based cardinality and distance
// estimates for distance joins — the direction the paper's conclusion (§5)
// identifies as necessary "to enable a query optimizer to choose between
// these options": estimating how many pairs fall within a distance, the
// distance of the K-th closest pair (a principled way to seed the
// MaxDist optimization of §2.2.3 when the true value is unknown), and the
// selectivity of a predicate for choosing between the two §5 query plans.
//
// All estimators draw a deterministic sample of objects from each index
// (reservoir sampling over a leaf scan), so estimates are reproducible for
// a given seed, and cost O(sample²) distance computations.
package costmodel

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// Options configures the estimators.
type Options struct {
	// Metric is the distance metric; geom.Euclidean when nil.
	Metric geom.Metric
	// Sample is the number of objects drawn from each input (default 256).
	// Estimation cost grows with Sample²; accuracy roughly with √Sample.
	Sample int
	// Seed makes the sample deterministic.
	Seed int64
}

func (o *Options) normalize() {
	if o.Metric == nil {
		o.Metric = geom.Euclidean
	}
	if o.Sample == 0 {
		o.Sample = 256
	}
}

// sampleRects draws up to k leaf rectangles uniformly from the tree via
// reservoir sampling over a full scan.
func sampleRects(t *rtree.Tree, k int, rnd *rand.Rand) ([]geom.Rect, error) {
	out := make([]geom.Rect, 0, k)
	seen := 0
	err := t.Scan(func(e rtree.Entry) bool {
		seen++
		if len(out) < k {
			out = append(out, e.Rect)
			return true
		}
		if j := rnd.Intn(seen); j < k {
			out[j] = e.Rect
		}
		return true
	})
	return out, err
}

// crossDistances returns the sorted distances of the sampled cross product.
func crossDistances(a, b []geom.Rect, m geom.Metric) []float64 {
	out := make([]float64, 0, len(a)*len(b))
	for _, p := range a {
		for _, q := range b {
			out = append(out, m.MinDist(p, q))
		}
	}
	sort.Float64s(out)
	return out
}

// PairsWithin estimates the number of (t1, t2) object pairs within distance
// d of each other.
func PairsWithin(t1, t2 *rtree.Tree, d float64, opts Options) (float64, error) {
	opts.normalize()
	if t1.Len() == 0 || t2.Len() == 0 {
		return 0, nil
	}
	if d < 0 {
		return 0, errors.New("costmodel: negative distance")
	}
	rnd := rand.New(rand.NewSource(opts.Seed))
	sa, err := sampleRects(t1, opts.Sample, rnd)
	if err != nil {
		return 0, err
	}
	sb, err := sampleRects(t2, opts.Sample, rnd)
	if err != nil {
		return 0, err
	}
	ds := crossDistances(sa, sb, opts.Metric)
	within := sort.SearchFloat64s(ds, math.Nextafter(d, math.Inf(1)))
	frac := float64(within) / float64(len(ds))
	return frac * float64(t1.Len()) * float64(t2.Len()), nil
}

// DistanceForK estimates the distance of the k-th closest pair of the
// distance join of t1 and t2 — the value a query plan would pass as MaxDist
// when it knows the query will stop after k pairs. The estimate is the
// empirical k/(n1·n2) quantile of the sampled cross distances; because a
// sample's extreme tail is unreliable, the low quantiles are floored at the
// smallest sampled distance, making small-k estimates conservative (too
// large) rather than fatally small.
func DistanceForK(t1, t2 *rtree.Tree, k int, opts Options) (float64, error) {
	opts.normalize()
	if k <= 0 {
		return 0, errors.New("costmodel: k must be positive")
	}
	total := float64(t1.Len()) * float64(t2.Len())
	if total == 0 {
		return 0, errors.New("costmodel: empty input")
	}
	rnd := rand.New(rand.NewSource(opts.Seed))
	sa, err := sampleRects(t1, opts.Sample, rnd)
	if err != nil {
		return 0, err
	}
	sb, err := sampleRects(t2, opts.Sample, rnd)
	if err != nil {
		return 0, err
	}
	ds := crossDistances(sa, sb, opts.Metric)
	q := float64(k) / total
	idx := int(math.Ceil(q * float64(len(ds))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(ds) {
		idx = len(ds)
	}
	return ds[idx-1], nil
}

// Selectivity estimates the fraction of t1's objects accepted by pred by
// sampling — the quantity the §5 plan choice turns on (filter the join's
// output when selectivity is high; pre-select and re-index when low).
func Selectivity(t *rtree.Tree, pred func(rtree.ObjID) bool, opts Options) (float64, error) {
	opts.normalize()
	if t.Len() == 0 {
		return 0, nil
	}
	rnd := rand.New(rand.NewSource(opts.Seed))
	type sampled struct{ id rtree.ObjID }
	out := make([]sampled, 0, opts.Sample)
	seen := 0
	err := t.Scan(func(e rtree.Entry) bool {
		seen++
		if len(out) < opts.Sample {
			out = append(out, sampled{id: e.Obj})
			return true
		}
		if j := rnd.Intn(seen); j < opts.Sample {
			out[j] = sampled{id: e.Obj}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	hit := 0
	for _, s := range out {
		if pred(s.id) {
			hit++
		}
	}
	return float64(hit) / float64(len(out)), nil
}

// SuggestMaxDist returns a MaxDist to use for a join expected to stop after
// k pairs: the DistanceForK estimate inflated by the safety factor (>= 1;
// 2 is a reasonable default). A cap that turns out too small costs a
// restart; a generous cap still prunes the overwhelming share of the queue
// (Figure 7 shows all three maxima performing almost identically).
func SuggestMaxDist(t1, t2 *rtree.Tree, k int, safety float64, opts Options) (float64, error) {
	if safety < 1 {
		return 0, errors.New("costmodel: safety factor must be >= 1")
	}
	d, err := DistanceForK(t1, t2, k, opts)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		// Degenerate sample (coincident rectangles): no useful cap.
		return math.Inf(1), nil
	}
	return d * safety, nil
}
