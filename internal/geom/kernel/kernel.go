// Package kernel provides batched distance kernels over a columnar
// (struct-of-arrays) rectangle layout. The join engine's expansion phase
// computes the distance from one query region to every entry of a node; the
// scalar path pays an interface call plus a per-dimension closure per entry
// (geom.lpMetric.aggregate). The kernels here compute the whole batch in
// closure-free loops over contiguous per-dimension columns, specialized for
// the L1, L2 and L∞ metrics (with the 2D case unrolled), so the compiler
// can keep the accumulators in registers and eliminate bounds checks.
//
// The L2 kernels are "deferred": they produce squared distances, postponing
// the single math.Sqrt to survivors of the caller's prune (Finish). The
// PreGreater/PreLessEq helpers decide comparisons of the finished distance
// against a bound directly in the squared domain when the margin is wide,
// falling back to the exact sqrt comparison inside a generous gray zone —
// so every prune decision is bitwise identical to the scalar path's.
//
// Per-dimension delta expressions and accumulation order are copied from
// geom.lpMetric exactly (same branch shapes, same dimension order), so for
// the canonical metrics the batch results are bitwise equal to the scalar
// Metric calls on amd64, where the gc compiler does not fuse floating-point
// operations across statements. Architectures that fuse (arm64 FMA) may
// differ by at most 1 ulp in the L2 squared sums; the engine only requires
// self-consistency, and the fuzz harness pins the cross-check tolerance.
package kernel

import (
	"math"

	"distjoin/internal/geom"
)

// RectCols is a struct-of-arrays batch of rectangles: lo[d][i] and hi[d][i]
// hold coordinate d of rectangle i, contiguous per dimension so the kernels
// stream each column once. The row-form rectangles are retained (slice
// headers only — geometry is not copied) for the generic-metric fallback
// and for callers that need the original geometry of row i.
type RectCols struct {
	lo, hi [][]float64
	rects  []geom.Rect
	n      int
	dims   int
}

// Reset empties the batch and sets its dimensionality, retaining all
// backing storage from previous use.
func (c *RectCols) Reset(dims int) {
	c.ensureDims(dims)
	for d := 0; d < dims; d++ {
		c.lo[d] = c.lo[d][:0]
		c.hi[d] = c.hi[d][:0]
	}
	c.rects = c.rects[:0]
	c.n = 0
	c.dims = dims
}

// ensureDims grows the per-dimension column headers to dims entries.
func (c *RectCols) ensureDims(dims int) {
	for len(c.lo) < dims {
		c.lo = append(c.lo, nil)
		c.hi = append(c.hi, nil)
	}
}

// Grow pre-allocates column capacity for n rectangles of the given
// dimensionality, so steady-state Append calls never allocate.
func (c *RectCols) Grow(dims, n int) {
	c.ensureDims(dims)
	for d := 0; d < dims; d++ {
		if cap(c.lo[d]) < n {
			c.lo[d] = append(make([]float64, 0, n), c.lo[d]...)
		}
		if cap(c.hi[d]) < n {
			c.hi[d] = append(make([]float64, 0, n), c.hi[d]...)
		}
	}
	if cap(c.rects) < n {
		c.rects = append(make([]geom.Rect, 0, n), c.rects...)
	}
}

// Append adds one rectangle to the batch. r must have the dimensionality
// the batch was Reset with.
func (c *RectCols) Append(r geom.Rect) {
	for d := 0; d < c.dims; d++ {
		c.lo[d] = append(c.lo[d], r.Lo[d])
		c.hi[d] = append(c.hi[d], r.Hi[d])
	}
	c.rects = append(c.rects, r)
	c.n++
}

// Len returns the number of rectangles in the batch.
func (c *RectCols) Len() int { return c.n }

// Dims returns the dimensionality the batch was Reset with.
func (c *RectCols) Dims() int { return c.dims }

// Rect returns the row form of rectangle i.
func (c *RectCols) Rect(i int) geom.Rect { return c.rects[i] }

// Window points c at rows [i, j) of src without copying any coordinate
// data: the column headers are re-sliced in place, so a long-lived window
// scratch reuses its own outer slices and allocates nothing in steady
// state. c must not be src.
func (c *RectCols) Window(src *RectCols, i, j int) {
	c.ensureDims(src.dims)
	c.lo = c.lo[:0]
	c.hi = c.hi[:0]
	for d := 0; d < src.dims; d++ {
		c.lo = append(c.lo, src.lo[d][i:j])
		c.hi = append(c.hi, src.hi[d][i:j])
	}
	c.rects = src.rects[i:j]
	c.n = j - i
	c.dims = src.dims
}

// PointCols is a struct-of-arrays batch of points: col[d][i] holds
// coordinate d of point i.
type PointCols struct {
	col  [][]float64
	pts  []geom.Point
	n    int
	dims int
}

// Reset empties the batch and sets its dimensionality.
func (c *PointCols) Reset(dims int) {
	for len(c.col) < dims {
		c.col = append(c.col, nil)
	}
	for d := 0; d < dims; d++ {
		c.col[d] = c.col[d][:0]
	}
	c.pts = c.pts[:0]
	c.n = 0
	c.dims = dims
}

// Append adds one point to the batch.
func (c *PointCols) Append(p geom.Point) {
	for d := 0; d < c.dims; d++ {
		c.col[d] = append(c.col[d], p[d])
	}
	c.pts = append(c.pts, p)
	c.n++
}

// Len returns the number of points in the batch.
func (c *PointCols) Len() int { return c.n }

// Point returns the row form of point i.
func (c *PointCols) Point(i int) geom.Point { return c.pts[i] }

// kind selects a specialized kernel family.
type kind uint8

const (
	kindGeneric kind = iota
	kindL1
	kindL2
	kindLInf
)

// Batch dispatches batched distance computations for one metric. The zero
// Batch is not usable; construct with For.
type Batch struct {
	m    geom.Metric
	kind kind
}

// For returns the batch kernels for m. The canonical geom metrics
// (Euclidean, Manhattan, Chessboard — as returned by the package variables,
// Lp, or MetricByName) get specialized closure-free kernels; any other
// Metric implementation falls back to per-row scalar calls, which keeps the
// caller's code path uniform at the scalar path's cost.
func For(m geom.Metric) Batch {
	b := Batch{m: m, kind: kindGeneric}
	switch m {
	case geom.Manhattan:
		b.kind = kindL1
	case geom.Euclidean:
		b.kind = kindL2
	case geom.Chessboard:
		b.kind = kindLInf
	}
	return b
}

// Metric returns the metric the kernels compute.
func (b Batch) Metric() geom.Metric { return b.m }

// Deferred reports whether the kernels produce pre-distances (squared, for
// L2) that require Finish before use as true distances. Comparisons against
// bounds can stay in the pre domain via PreGreater/PreLessEq.
func (b Batch) Deferred() bool { return b.kind == kindL2 }

// Finish converts one kernel output to the metric's true distance: the
// deferred L2 kernel's squared distances take their single Sqrt here; all
// other kernels already produce finished distances.
func (b Batch) Finish(pre float64) float64 {
	if b.kind == kindL2 {
		return math.Sqrt(pre)
	}
	return pre
}

// PreGreater reports Finish(pre) > bound, deciding in the pre domain when
// the margin allows. The decision is exactly the scalar comparison's: wide
// margins are decided by monotonicity of sqrt (the factor-4 guard bands
// absorb the rounding of bound*bound and of the sqrt itself), and anything
// inside the gray zone — or any non-finite corner — falls back to the
// exact math.Sqrt comparison.
func (b Batch) PreGreater(pre, bound float64) bool {
	if b.kind != kindL2 {
		return pre > bound
	}
	if !(pre >= 0) {
		return false // NaN pre: sqrt(NaN) > bound is false for every bound
	}
	if math.IsInf(bound, 1) || bound != bound {
		return false // nothing exceeds +Inf; comparisons with NaN are false
	}
	if bound < 0 {
		return true // sqrt(pre) >= 0 > bound
	}
	s := bound * bound
	if s == 0 || math.IsInf(s, 1) {
		return math.Sqrt(pre) > bound // bound² under- or overflowed
	}
	if pre > 4*s {
		return true
	}
	if pre < 0.25*s {
		return false
	}
	return math.Sqrt(pre) > bound
}

// PreLessEq reports Finish(pre) <= bound, the complement decision of
// PreGreater with the same exactness guarantee.
func (b Batch) PreLessEq(pre, bound float64) bool {
	if b.kind != kindL2 {
		return pre <= bound
	}
	if !(pre >= 0) {
		return false // NaN pre
	}
	if math.IsInf(bound, 1) {
		return true // sqrt(pre) is finite or +Inf, both <= +Inf
	}
	if bound != bound || bound < 0 {
		return false
	}
	s := bound * bound
	if s == 0 || math.IsInf(s, 1) {
		return math.Sqrt(pre) <= bound
	}
	if pre > 4*s {
		return false
	}
	if pre < 0.25*s {
		return true
	}
	return math.Sqrt(pre) <= bound
}

// MinDistBatch computes the minimum distance (pre-distance for deferred
// kernels) from query to every rectangle of c, into out[:c.Len()].
func (b Batch) MinDistBatch(query geom.Rect, c *RectCols, out []float64) {
	n := c.n
	out = out[:n]
	switch b.kind {
	case kindGeneric:
		rects := c.rects[:n]
		for i := range out {
			out[i] = b.m.MinDist(query, rects[i])
		}
		return
	case kindLInf:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			qlo, qhi := query.Lo[d], query.Hi[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				delta := minDelta(qlo, qhi, lo[i], hi[i])
				if delta > out[i] {
					out[i] = delta
				}
			}
		}
		return
	case kindL1:
		if c.dims == 2 {
			b.minDist2D(query, c, out, false)
			return
		}
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			qlo, qhi := query.Lo[d], query.Hi[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				out[i] += minDelta(qlo, qhi, lo[i], hi[i])
			}
		}
		return
	default: // kindL2, squared
		if c.dims == 2 {
			b.minDist2D(query, c, out, true)
			return
		}
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			qlo, qhi := query.Lo[d], query.Hi[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				delta := minDelta(qlo, qhi, lo[i], hi[i])
				out[i] += delta * delta
			}
		}
	}
}

// minDist2D is the unrolled two-dimensional L1/L2 MinDist kernel: one pass,
// both axes per element, accumulators in registers.
func (b Batch) minDist2D(query geom.Rect, c *RectCols, out []float64, squared bool) {
	n := c.n
	qlo0, qhi0 := query.Lo[0], query.Hi[0]
	qlo1, qhi1 := query.Lo[1], query.Hi[1]
	lo0, hi0 := c.lo[0][:n], c.hi[0][:n]
	lo1, hi1 := c.lo[1][:n], c.hi[1][:n]
	out = out[:n]
	if squared {
		for i := range out {
			d0 := minDelta(qlo0, qhi0, lo0[i], hi0[i])
			d1 := minDelta(qlo1, qhi1, lo1[i], hi1[i])
			out[i] = d0*d0 + d1*d1
		}
		return
	}
	for i := range out {
		d0 := minDelta(qlo0, qhi0, lo0[i], hi0[i])
		d1 := minDelta(qlo1, qhi1, lo1[i], hi1[i])
		out[i] = d0 + d1
	}
}

// minDelta is the per-dimension MinDist gap between intervals [alo, ahi]
// and [blo, bhi] — the exact branch shape of geom.lpMetric.MinDist, which
// is symmetric in its operands bit for bit.
func minDelta(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// MaxDistBatch computes the maximum distance (pre-distance for deferred
// kernels) from query to every rectangle of c, into out[:c.Len()].
func (b Batch) MaxDistBatch(query geom.Rect, c *RectCols, out []float64) {
	n := c.n
	out = out[:n]
	switch b.kind {
	case kindGeneric:
		rects := c.rects[:n]
		for i := range out {
			out[i] = b.m.MaxDist(query, rects[i])
		}
		return
	case kindLInf:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			qlo, qhi := query.Lo[d], query.Hi[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				delta := maxDelta(qlo, qhi, lo[i], hi[i])
				if delta > out[i] {
					out[i] = delta
				}
			}
		}
		return
	case kindL1:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			qlo, qhi := query.Lo[d], query.Hi[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				out[i] += maxDelta(qlo, qhi, lo[i], hi[i])
			}
		}
		return
	default: // kindL2, squared
		if c.dims == 2 {
			qlo0, qhi0 := query.Lo[0], query.Hi[0]
			qlo1, qhi1 := query.Lo[1], query.Hi[1]
			lo0, hi0 := c.lo[0][:n], c.hi[0][:n]
			lo1, hi1 := c.lo[1][:n], c.hi[1][:n]
			for i := range out {
				d0 := maxDelta(qlo0, qhi0, lo0[i], hi0[i])
				d1 := maxDelta(qlo1, qhi1, lo1[i], hi1[i])
				out[i] = d0*d0 + d1*d1
			}
			return
		}
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			qlo, qhi := query.Lo[d], query.Hi[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				delta := maxDelta(qlo, qhi, lo[i], hi[i])
				out[i] += delta * delta
			}
		}
	}
}

// maxDelta is the per-dimension MaxDist span — the exact expression of
// geom.lpMetric.MaxDist (math.Max of the two absolute corner gaps), which
// is symmetric in its operands.
func maxDelta(alo, ahi, blo, bhi float64) float64 {
	return math.Max(math.Abs(ahi-blo), math.Abs(bhi-alo))
}

// MinDistPRBatch computes the minimum point-to-rectangle distance
// (pre-distance for deferred kernels) from p to every rectangle of c, into
// out[:c.Len()].
func (b Batch) MinDistPRBatch(p geom.Point, c *RectCols, out []float64) {
	n := c.n
	out = out[:n]
	switch b.kind {
	case kindGeneric:
		rects := c.rects[:n]
		for i := range out {
			out[i] = b.m.MinDistPR(p, rects[i])
		}
		return
	case kindLInf:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			q := p[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				delta := prDelta(q, lo[i], hi[i])
				if delta > out[i] {
					out[i] = delta
				}
			}
		}
		return
	case kindL1:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			q := p[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				out[i] += prDelta(q, lo[i], hi[i])
			}
		}
		return
	default: // kindL2, squared
		if c.dims == 2 {
			q0, q1 := p[0], p[1]
			lo0, hi0 := c.lo[0][:n], c.hi[0][:n]
			lo1, hi1 := c.lo[1][:n], c.hi[1][:n]
			for i := range out {
				d0 := prDelta(q0, lo0[i], hi0[i])
				d1 := prDelta(q1, lo1[i], hi1[i])
				out[i] = d0*d0 + d1*d1
			}
			return
		}
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			q := p[d]
			lo, hi := c.lo[d][:n], c.hi[d][:n]
			for i := range out {
				delta := prDelta(q, lo[i], hi[i])
				out[i] += delta * delta
			}
		}
	}
}

// prDelta is the per-dimension point-to-interval gap — the exact branch
// shape of geom.lpMetric.MinDistPR.
func prDelta(p, lo, hi float64) float64 {
	switch {
	case p < lo:
		return lo - p
	case p > hi:
		return p - hi
	default:
		return 0
	}
}

// DistBatch computes the point-to-point distance (pre-distance for deferred
// kernels) from p to every point of c, into out[:c.Len()].
func (b Batch) DistBatch(p geom.Point, c *PointCols, out []float64) {
	n := c.n
	out = out[:n]
	switch b.kind {
	case kindGeneric:
		pts := c.pts[:n]
		for i := range out {
			out[i] = b.m.Dist(p, pts[i])
		}
		return
	case kindLInf:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			q := p[d]
			col := c.col[d][:n]
			for i := range out {
				delta := math.Abs(q - col[i])
				if delta > out[i] {
					out[i] = delta
				}
			}
		}
		return
	case kindL1:
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			q := p[d]
			col := c.col[d][:n]
			for i := range out {
				out[i] += math.Abs(q - col[i])
			}
		}
		return
	default: // kindL2, squared
		if c.dims == 2 {
			q0, q1 := p[0], p[1]
			col0, col1 := c.col[0][:n], c.col[1][:n]
			for i := range out {
				d0 := math.Abs(q0 - col0[i])
				d1 := math.Abs(q1 - col1[i])
				out[i] = d0*d0 + d1*d1
			}
			return
		}
		for i := range out {
			out[i] = 0
		}
		for d := 0; d < c.dims; d++ {
			q := p[d]
			col := c.col[d][:n]
			for i := range out {
				delta := math.Abs(q - col[i])
				out[i] += delta * delta
			}
		}
	}
}
