package kernel

import (
	"math"
	"testing"

	"distjoin/internal/geom"
)

// FuzzKernelVsScalar feeds random rectangle batches through every metric's
// batch kernels and cross-checks each row against the scalar Metric calls:
// bitwise equality for the L1/L∞/generic kernels (whose accumulation order
// is the scalar's exactly), and ulp-bounded equality for the deferred L2
// kernel, whose squared sums may be contracted into fused multiply-adds on
// architectures where the compiler fuses (the engine's prune decisions
// remain exact on every architecture because PreGreater/PreLessEq compare
// the kernel's own pre-values).
func FuzzKernelVsScalar(f *testing.F) {
	f.Add(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)
	f.Add(-10.0, 10.0, -10.0, 10.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1e-300, 1e300, -1e300, 1e-9, 2.5, 2.5, -2.5, 7.0)
	f.Add(0.1, 0.2, 0.30000000000000004, 0.3, -0.0, 0.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a0, a1, a2, a3, b0, b1, b2, b3 float64) {
		for _, v := range []float64{a0, a1, a2, a3, b0, b1, b2, b3} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite coordinates")
			}
		}
		q := rectFrom(a0, a1, a2, a3)
		var rc RectCols
		var pc PointCols
		rc.Reset(2)
		pc.Reset(2)
		// A small batch mixing the fuzzed rectangle with perturbations of
		// it, so separated, touching and overlapping rows coexist.
		base := rectFrom(b0, b1, b2, b3)
		rc.Append(base)
		rc.Append(rectFrom(b0+1, b1, b2, b3))
		rc.Append(rectFrom(b0, b1-1, b2+0.5, b3))
		rc.Append(q)
		pc.Append(geom.Point{b0, b2})
		pc.Append(geom.Point{b1, b3})
		pc.Append(geom.Point{a0, a2})
		out := make([]float64, rc.Len())

		for _, m := range []geom.Metric{geom.Euclidean, geom.Manhattan, geom.Chessboard, geom.Lp(3)} {
			k := For(m)
			exact := m != geom.Euclidean

			k.MinDistBatch(q, &rc, out)
			for i := 0; i < rc.Len(); i++ {
				requireRow(t, m.Name()+"/mindist", i, k.Finish(out[i]), m.MinDist(q, rc.Rect(i)), exact)
			}
			k.MaxDistBatch(q, &rc, out)
			for i := 0; i < rc.Len(); i++ {
				requireRow(t, m.Name()+"/maxdist", i, k.Finish(out[i]), m.MaxDist(q, rc.Rect(i)), exact)
			}
			p := geom.Point{a0, a2}
			k.MinDistPRBatch(p, &rc, out)
			for i := 0; i < rc.Len(); i++ {
				requireRow(t, m.Name()+"/mindistpr", i, k.Finish(out[i]), m.MinDistPR(p, rc.Rect(i)), exact)
			}
			k.DistBatch(p, &pc, out[:pc.Len()])
			for i := 0; i < pc.Len(); i++ {
				requireRow(t, m.Name()+"/dist", i, k.Finish(out[i]), m.Dist(p, pc.Point(i)), exact)
			}

			// The deferred comparisons must agree with the finished ones for
			// the batch's own pre-values whatever the architecture computed.
			k.MinDistBatch(q, &rc, out)
			for i := 0; i < rc.Len(); i++ {
				d := k.Finish(out[i])
				for _, bound := range []float64{d, math.Nextafter(d, 0), math.Nextafter(d, math.Inf(1)), 0, math.Inf(1)} {
					if got, want := k.PreGreater(out[i], bound), d > bound; got != want {
						t.Fatalf("%s: PreGreater(%v, %v) = %v, want %v", m.Name(), out[i], bound, got, want)
					}
					if got, want := k.PreLessEq(out[i], bound), d <= bound; got != want {
						t.Fatalf("%s: PreLessEq(%v, %v) = %v, want %v", m.Name(), out[i], bound, got, want)
					}
				}
			}
		}
	})
}

// rectFrom builds a valid 2D rectangle from four fuzzed coordinates by
// sorting each axis pair.
func rectFrom(x0, x1, y0, y1 float64) geom.Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return geom.Rect{Lo: geom.Point{x0, y0}, Hi: geom.Point{x1, y1}}
}

// requireRow asserts one batch row against its scalar value.
func requireRow(t *testing.T, label string, i int, got, want float64, exact bool) {
	t.Helper()
	if got == want || (math.IsNaN(got) && math.IsNaN(want)) {
		return
	}
	if !exact && ulpDiff(got, want) <= 2 {
		return
	}
	t.Fatalf("%s row %d: batch %v != scalar %v", label, i, got, want)
}
