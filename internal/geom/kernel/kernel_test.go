package kernel

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"distjoin/internal/geom"
)

// testMetrics covers every kernel family: the three specialized canonical
// metrics plus a generic-fallback Lp.
var testMetrics = []geom.Metric{geom.Euclidean, geom.Manhattan, geom.Chessboard, geom.Lp(3)}

// randRect builds a random rectangle of the given dimensionality.
func randRect(rng *rand.Rand, dims int) geom.Rect {
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64()*2000 - 1000
		b := a + rng.Float64()*50
		lo[d], hi[d] = a, b
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// randPoint builds a random point.
func randPoint(rng *rand.Rand, dims int) geom.Point {
	p := make(geom.Point, dims)
	for d := 0; d < dims; d++ {
		p[d] = rng.Float64()*2000 - 1000
	}
	return p
}

// ulpDiff returns the distance in representable float64 steps between a
// and b (0 when bitwise equal).
func ulpDiff(a, b float64) int64 {
	if a == b {
		return 0
	}
	ai, bi := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	if ai < 0 {
		ai = math.MinInt64 - ai
	}
	if bi < 0 {
		bi = math.MinInt64 - bi
	}
	d := ai - bi
	if d < 0 {
		d = -d
	}
	return d
}

// wantExact reports whether the batch kernels must match the scalar metric
// bit for bit for this metric on this architecture. L1/L∞ accumulate with
// the scalar's exact operation order everywhere; the L2 squared sums can be
// contracted into FMAs on fusing architectures, so only amd64 (whose gc
// backend does not fuse across statements) pins bitwise equality.
func wantExact(m geom.Metric) bool {
	if m == geom.Euclidean {
		return runtime.GOARCH == "amd64"
	}
	return true
}

// checkBatch compares one kernel output against per-row scalar calls.
func checkBatch(t *testing.T, m geom.Metric, label string, got []float64, scalar func(i int) float64) {
	t.Helper()
	b := For(m)
	for i := range got {
		want := scalar(i)
		have := b.Finish(got[i])
		if wantExact(m) {
			if !(have == want || (math.IsNaN(have) && math.IsNaN(want))) {
				t.Fatalf("%s/%s row %d: batch %v (pre %v) != scalar %v", m.Name(), label, i, have, got[i], want)
			}
		} else if ulpDiff(have, want) > 2 {
			t.Fatalf("%s/%s row %d: batch %v vs scalar %v differ by >2 ulp", m.Name(), label, i, have, want)
		}
	}
}

// TestBatchVsScalar pins every batch kernel against the scalar Metric calls
// row for row, across metrics and dimensionalities (2 exercises the
// unrolled fast paths).
func TestBatchVsScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range []int{2, 3, 5} {
		for _, m := range testMetrics {
			b := For(m)
			var rc RectCols
			var pc PointCols
			rc.Reset(dims)
			pc.Reset(dims)
			const n = 257
			for i := 0; i < n; i++ {
				rc.Append(randRect(rng, dims))
				pc.Append(randPoint(rng, dims))
			}
			q := randRect(rng, dims)
			p := randPoint(rng, dims)
			out := make([]float64, n)

			b.MinDistBatch(q, &rc, out)
			checkBatch(t, m, "mindist", out, func(i int) float64 { return m.MinDist(q, rc.Rect(i)) })
			b.MaxDistBatch(q, &rc, out)
			checkBatch(t, m, "maxdist", out, func(i int) float64 { return m.MaxDist(q, rc.Rect(i)) })
			b.MinDistPRBatch(p, &rc, out)
			checkBatch(t, m, "mindistpr", out, func(i int) float64 { return m.MinDistPR(p, rc.Rect(i)) })
			b.DistBatch(p, &pc, out)
			checkBatch(t, m, "dist", out, func(i int) float64 { return m.Dist(p, pc.Point(i)) })
		}
	}
}

// TestBatchTouchingRects pins the intersecting / touching / separated
// boundary cases where the per-dimension delta branches flip.
func TestBatchTouchingRects(t *testing.T) {
	mk := func(lo0, hi0, lo1, hi1 float64) geom.Rect {
		return geom.Rect{Lo: geom.Point{lo0, lo1}, Hi: geom.Point{hi0, hi1}}
	}
	q := mk(0, 10, 0, 10)
	cases := []geom.Rect{
		mk(2, 8, 2, 8),     // contained
		mk(10, 20, 0, 10),  // touching edge
		mk(11, 20, 0, 10),  // separated on axis 0
		mk(-5, -1, -5, -1), // separated on both
		mk(5, 15, 5, 15),   // overlapping
	}
	for _, m := range testMetrics {
		b := For(m)
		var rc RectCols
		rc.Reset(2)
		for _, r := range cases {
			rc.Append(r)
		}
		out := make([]float64, len(cases))
		b.MinDistBatch(q, &rc, out)
		for i, r := range cases {
			if got, want := b.Finish(out[i]), m.MinDist(q, r); got != want {
				t.Errorf("%s: MinDist(%v, %v) batch %v != scalar %v", m.Name(), q, r, got, want)
			}
		}
	}
}

// TestPreComparisons pins PreGreater/PreLessEq against the exact finished
// comparison across magnitudes, gray-zone boundaries and non-finite
// corners.
func TestPreComparisons(t *testing.T) {
	b := For(geom.Euclidean)
	rng := rand.New(rand.NewSource(7))
	check := func(pre, bound float64) {
		t.Helper()
		d := math.Sqrt(pre)
		if got, want := b.PreGreater(pre, bound), d > bound; got != want {
			t.Fatalf("PreGreater(%v, %v) = %v, want %v (finished %v)", pre, bound, got, want, d)
		}
		if got, want := b.PreLessEq(pre, bound), d <= bound; got != want {
			t.Fatalf("PreLessEq(%v, %v) = %v, want %v (finished %v)", pre, bound, got, want, d)
		}
	}
	specials := []float64{0, math.Copysign(0, -1), 1, math.Inf(1), math.NaN(),
		-1, math.MaxFloat64, math.SmallestNonzeroFloat64, 1e-200, 1e200, 5e-163}
	for _, pre := range specials {
		for _, bound := range specials {
			if pre < 0 {
				continue // kernels never produce negative pre-distances
			}
			check(pre, bound)
		}
	}
	for i := 0; i < 200000; i++ {
		d := math.Exp(rng.Float64()*40 - 20) // magnitudes 1e-9 .. 1e+8
		pre := d * d
		// Bounds at, just below, just above and far from the boundary.
		for _, bound := range []float64{
			d,
			math.Nextafter(d, 0),
			math.Nextafter(d, math.Inf(1)),
			d * (0.4 + rng.Float64()*1.2),
			d * rng.Float64() * 10,
		} {
			check(pre, bound)
		}
	}
	// Non-L2 kernels compare pre-distances directly.
	l1 := For(geom.Manhattan)
	if l1.PreGreater(3, 2) != true || l1.PreLessEq(3, 2) != false {
		t.Fatal("non-deferred PreGreater/PreLessEq must be plain comparisons")
	}
}

// TestFinishDeferred pins the deferral contract: only L2 defers.
func TestFinishDeferred(t *testing.T) {
	if !For(geom.Euclidean).Deferred() {
		t.Fatal("L2 kernels must defer the sqrt")
	}
	for _, m := range []geom.Metric{geom.Manhattan, geom.Chessboard, geom.Lp(3)} {
		if For(m).Deferred() {
			t.Fatalf("%s kernels must not defer", m.Name())
		}
		if got := For(m).Finish(7.5); got != 7.5 {
			t.Fatalf("%s Finish(7.5) = %v, want identity", m.Name(), got)
		}
	}
	if got := For(geom.Euclidean).Finish(9); got != 3 {
		t.Fatalf("L2 Finish(9) = %v, want 3", got)
	}
}

// TestWindow pins the no-copy window view.
func TestWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rc, win RectCols
	rc.Reset(2)
	for i := 0; i < 20; i++ {
		rc.Append(randRect(rng, 2))
	}
	win.Window(&rc, 5, 17)
	if win.Len() != 12 || win.Dims() != 2 {
		t.Fatalf("window len=%d dims=%d, want 12, 2", win.Len(), win.Dims())
	}
	q := randRect(rng, 2)
	full := make([]float64, rc.Len())
	part := make([]float64, win.Len())
	b := For(geom.Euclidean)
	b.MinDistBatch(q, &rc, full)
	b.MinDistBatch(q, &win, part)
	for i := range part {
		if part[i] != full[5+i] {
			t.Fatalf("window row %d: %v != full row %d: %v", i, part[i], 5+i, full[5+i])
		}
		if !win.Rect(i).Equal(rc.Rect(5 + i)) {
			t.Fatalf("window rect %d mismatches source", i)
		}
	}
}

// TestSteadyStateAllocs pins the zero-allocation contract of the reuse
// cycle: once grown, Reset+Append+kernel+Window allocates nothing.
func TestSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 64
	rects := make([]geom.Rect, n)
	for i := range rects {
		rects[i] = randRect(rng, 2)
	}
	q := randRect(rng, 2)
	var rc, win RectCols
	rc.Grow(2, n)
	out := make([]float64, n)
	b := For(geom.Euclidean)
	cycle := func() {
		rc.Reset(2)
		for _, r := range rects {
			rc.Append(r)
		}
		b.MinDistBatch(q, &rc, out)
		win.Window(&rc, n/4, 3*n/4)
		b.MinDistBatch(q, &win, out[:win.Len()])
	}
	cycle() // warm the window's outer headers
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("steady-state batch cycle allocates %v per run, want 0", avg)
	}
}

// benchCols builds a deterministic 2D batch of size n for throughput
// benchmarks.
func benchCols(n int) (geom.Rect, *RectCols) {
	rng := rand.New(rand.NewSource(1998))
	var rc RectCols
	rc.Reset(2)
	for i := 0; i < n; i++ {
		rc.Append(randRect(rng, 2))
	}
	return randRect(rng, 2), &rc
}

// BenchmarkKernelMinDist measures batched distance throughput; compare
// against BenchmarkScalarMinDist for the speedup factor (the acceptance
// bar is >= 3x on the L2 kernel).
func BenchmarkKernelMinDist(b *testing.B) {
	for _, m := range []geom.Metric{geom.Euclidean, geom.Manhattan, geom.Chessboard} {
		b.Run(m.Name(), func(b *testing.B) {
			const n = 64
			q, rc := benchCols(n)
			k := For(m)
			out := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.MinDistBatch(q, rc, out)
			}
			b.SetBytes(0)
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mdist/s")
		})
	}
}

// BenchmarkScalarMinDist is the interface-call baseline the kernels are
// measured against.
func BenchmarkScalarMinDist(b *testing.B) {
	for _, m := range []geom.Metric{geom.Euclidean, geom.Manhattan, geom.Chessboard} {
		b.Run(m.Name(), func(b *testing.B) {
			const n = 64
			q, rc := benchCols(n)
			out := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					out[j] = m.MinDist(q, rc.Rect(j))
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mdist/s")
		})
	}
}

// BenchmarkKernelMinDistPR measures the point-to-rectangle kernel.
func BenchmarkKernelMinDistPR(b *testing.B) {
	const n = 64
	q, rc := benchCols(n)
	p := q.Lo
	k := For(geom.Euclidean)
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MinDistPRBatch(p, rc, out)
	}
}
