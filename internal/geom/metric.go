package geom

import (
	"fmt"
	"math"
)

// Metric bundles the family of consistent distance functions the incremental
// distance join needs (paper §2.2): distances between objects (points),
// between an object and an index node region (rectangle), and between two
// node regions, plus the d_max upper-bound functions of §2.2.3/§2.2.4.
//
// Consistency (no pair may have a smaller distance than a pair that generates
// it) holds for all three provided metrics because each is induced by a point
// metric satisfying the triangle inequality.
type Metric interface {
	// Name identifies the metric ("euclidean", "manhattan", "chessboard").
	Name() string

	// Dist returns the distance between two points (d_obj-obj).
	Dist(p, q Point) float64

	// MinDistPR returns the minimum distance from point p to rectangle r;
	// zero when p lies inside r (d_obj-node).
	MinDistPR(p Point, r Rect) float64

	// MinDist returns the minimum distance between any point of a and any
	// point of b; zero when they intersect (d_node-node, and d_obr-* when
	// leaves store bounding rectangles).
	MinDist(a, b Rect) float64

	// MaxDist returns the maximum distance between any point of a and any
	// point of b. It is the sound d_max bound for node/node pairs: every
	// object pair generated from the pair has distance at most MaxDist.
	MaxDist(a, b Rect) float64

	// MaxDistPR returns the maximum distance from point p to any point of r.
	MaxDistPR(p Point, r Rect) float64

	// MinMaxDistPR returns the MINMAXDIST bound of Roussopoulos et al.
	// between a point and a rectangle that minimally bounds an object: the
	// object is guaranteed to contain a point within this distance of p.
	// It requires r to be a minimal bounding rectangle.
	MinMaxDistPR(p Point, r Rect) float64

	// MinMaxDist returns the generalized MINMAXDIST bound between two
	// rectangles each minimally bounding one object (paper §2.2.3): the two
	// objects are guaranteed to be within this distance of each other.
	MinMaxDist(a, b Rect) float64
}

// lpMetric implements Metric for the L1 (Manhattan), L2 (Euclidean) and L∞
// (Chessboard) point metrics. All rectangle distance functions decompose per
// dimension and aggregate, which is valid for any Lp norm.
type lpMetric struct {
	name string
	p    float64 // 1, 2 or +Inf
	// invP caches 1/p for the general-p aggregation, hoisting the division
	// out of the per-call path; ip is p when p is a small integer, enabling
	// the repeated-multiply power instead of math.Pow per dimension. Both
	// are zero for the canonical p ∈ {1, 2, ∞} metrics, which never reach
	// the general branch.
	invP float64
	ip   int
}

var (
	// Euclidean is the L2 metric, the metric used in the paper's experiments.
	Euclidean Metric = lpMetric{name: "euclidean", p: 2}
	// Manhattan is the L1 (city-block) metric.
	Manhattan Metric = lpMetric{name: "manhattan", p: 1}
	// Chessboard is the L∞ (Chebyshev) metric.
	Chessboard Metric = lpMetric{name: "chessboard", p: math.Inf(1)}
)

// Lp returns the general Minkowski metric of order p (p >= 1). Lp(1),
// Lp(2) and Lp(math.Inf(1)) coincide with Manhattan, Euclidean and
// Chessboard. It panics for p < 1, where the triangle inequality — and with
// it the consistency property the join algorithms rely on — fails.
func Lp(p float64) Metric {
	if p < 1 {
		panic(fmt.Sprintf("geom: Lp(%g) is not a metric (p must be >= 1)", p))
	}
	switch {
	case p == 1:
		return Manhattan
	case p == 2:
		return Euclidean
	case math.IsInf(p, 1):
		return Chessboard
	}
	m := lpMetric{name: fmt.Sprintf("l%g", p), p: p, invP: 1 / p}
	if p == math.Trunc(p) && p <= 64 {
		m.ip = int(p)
	}
	return m
}

// MetricByName returns the metric with the given Name, or nil if unknown.
func MetricByName(name string) Metric {
	switch name {
	case "euclidean", "l2":
		return Euclidean
	case "manhattan", "l1":
		return Manhattan
	case "chessboard", "chebyshev", "linf":
		return Chessboard
	}
	return nil
}

func (m lpMetric) Name() string { return m.name }

// aggregate folds per-dimension non-negative deltas into an Lp distance.
func (m lpMetric) aggregate(deltas func(i int) float64, dim int) float64 {
	switch {
	case math.IsInf(m.p, 1):
		max := 0.0
		for i := 0; i < dim; i++ {
			if d := deltas(i); d > max {
				max = d
			}
		}
		return max
	case m.p == 1:
		sum := 0.0
		for i := 0; i < dim; i++ {
			sum += deltas(i)
		}
		return sum
	case m.p == 2:
		sum := 0.0
		for i := 0; i < dim; i++ {
			d := deltas(i)
			sum += d * d
		}
		return math.Sqrt(sum)
	default:
		sum := 0.0
		if m.ip > 0 {
			// Integer p: repeated multiply replaces math.Pow per dimension.
			// ipow mirrors math.Pow's binary-exponentiation multiply order,
			// so the sums (and hence the distances) are unchanged bit for
			// bit within the normal floating-point range.
			for i := 0; i < dim; i++ {
				sum += ipow(deltas(i), m.ip)
			}
		} else {
			for i := 0; i < dim; i++ {
				sum += math.Pow(deltas(i), m.p)
			}
		}
		inv := m.invP
		if inv == 0 {
			// A hand-built lpMetric literal (not constructed via Lp) has no
			// cached reciprocal.
			inv = 1 / m.p
		}
		return math.Pow(sum, inv)
	}
}

// ipow computes x**n for n >= 1 by binary exponentiation, multiplying in
// the same order math.Pow does for integer exponents: for inputs whose
// intermediate powers stay within the normal range the result is bitwise
// identical to math.Pow(x, float64(n)).
func ipow(x float64, n int) float64 {
	x1, xi := 1.0, x
	for i := n; i != 0; i >>= 1 {
		if i&1 == 1 {
			x1 *= xi
		}
		if i > 1 {
			xi *= xi
		}
	}
	return x1
}

func (m lpMetric) Dist(p, q Point) float64 {
	checkDim(len(p), len(q))
	return m.aggregate(func(i int) float64 { return math.Abs(p[i] - q[i]) }, len(p))
}

func (m lpMetric) MinDistPR(p Point, r Rect) float64 {
	checkDim(len(p), len(r.Lo))
	return m.aggregate(func(i int) float64 {
		switch {
		case p[i] < r.Lo[i]:
			return r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			return p[i] - r.Hi[i]
		default:
			return 0
		}
	}, len(p))
}

func (m lpMetric) MinDist(a, b Rect) float64 {
	checkDim(len(a.Lo), len(b.Lo))
	return m.aggregate(func(i int) float64 {
		switch {
		case a.Hi[i] < b.Lo[i]:
			return b.Lo[i] - a.Hi[i]
		case b.Hi[i] < a.Lo[i]:
			return a.Lo[i] - b.Hi[i]
		default:
			return 0
		}
	}, len(a.Lo))
}

func (m lpMetric) MaxDist(a, b Rect) float64 {
	checkDim(len(a.Lo), len(b.Lo))
	return m.aggregate(func(i int) float64 {
		return math.Max(math.Abs(a.Hi[i]-b.Lo[i]), math.Abs(b.Hi[i]-a.Lo[i]))
	}, len(a.Lo))
}

func (m lpMetric) MaxDistPR(p Point, r Rect) float64 {
	checkDim(len(p), len(r.Lo))
	return m.aggregate(func(i int) float64 {
		return math.Max(math.Abs(p[i]-r.Lo[i]), math.Abs(p[i]-r.Hi[i]))
	}, len(p))
}
