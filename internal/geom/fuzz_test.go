package geom

import (
	"math"
	"testing"
)

// FuzzDistanceKernels feeds arbitrary 2-D coordinates through every
// distance kernel the join bounds rely on and checks the metric-space
// invariants that make the incremental algorithms correct:
//
//	0 <= MinDist(a,b) = MinDist(b,a)
//	MinDist(a,b) <= MinDistPR(p,b)  <= Dist(p,q) for p in a, q in b
//	Dist(p,q)   <= MaxDistPR(p,b)   <= MaxDist(a,b)
//	MinDist(a,b) <= MinMaxDist(a,b) <= MaxDist(a,b)
//
// A violated bound would not crash the engine — it would silently emit
// pairs out of distance order, which is exactly what the differential
// harness cannot distinguish from a subtly wrong oracle. Fuzzing the
// kernels directly is the cheap line of defense.
func FuzzDistanceKernels(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0)
	f.Add(-5.0, 3.0, 5.0, 4.0, -1.0, -1.0, 1.0, 1.0) // overlapping
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)    // degenerate points
	f.Add(1e300, -1e300, 1e-300, 0.25, -7.0, 7.0, 0.5, -0.5)
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2, x3, y3, x4, y4 float64) {
		for _, v := range []float64{x1, y1, x2, y2, x3, y3, x4, y4} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite input")
			}
		}
		// Build valid rects by sorting the coordinates per dimension.
		a := R(Pt(math.Min(x1, x2), math.Min(y1, y2)), Pt(math.Max(x1, x2), math.Max(y1, y2)))
		b := R(Pt(math.Min(x3, x4), math.Min(y3, y4)), Pt(math.Max(x3, x4), math.Max(y3, y4)))
		// Sample points inside each rect: the corners the fuzzer chose.
		p := Pt(x1, y1)
		q := Pt(x3, y3)

		for _, m := range []Metric{Euclidean, Manhattan, Chessboard, Lp(3)} {
			min := m.MinDist(a, b)
			max := m.MaxDist(a, b)
			d := m.Dist(p, q)
			minPR := m.MinDistPR(p, b)
			maxPR := m.MaxDistPR(p, b)
			mm := m.MinMaxDist(a, b)
			tol := 1e-9 * (1 + math.Abs(max))

			if min < 0 || d < 0 || minPR < 0 {
				t.Fatalf("%s: negative distance: min=%g d=%g minPR=%g", m.Name(), min, d, minPR)
			}
			if got := m.MinDist(b, a); math.Abs(got-min) > tol {
				t.Fatalf("%s: MinDist asymmetric: %g vs %g", m.Name(), min, got)
			}
			if got := m.Dist(q, p); math.Abs(got-d) > tol {
				t.Fatalf("%s: Dist asymmetric: %g vs %g", m.Name(), d, got)
			}
			if got := m.MaxDist(b, a); math.Abs(got-max) > tol {
				t.Fatalf("%s: MaxDist asymmetric: %g vs %g", m.Name(), max, got)
			}
			if min > minPR+tol {
				t.Fatalf("%s: MinDist %g > MinDistPR %g (a=%v b=%v p=%v)", m.Name(), min, minPR, a, b, p)
			}
			if minPR > d+tol {
				t.Fatalf("%s: MinDistPR %g > Dist %g (p=%v q=%v b=%v)", m.Name(), minPR, d, p, q, b)
			}
			if d > maxPR+tol {
				t.Fatalf("%s: Dist %g > MaxDistPR %g (p=%v q=%v b=%v)", m.Name(), d, maxPR, p, q, b)
			}
			if maxPR > max+tol {
				t.Fatalf("%s: MaxDistPR %g > MaxDist %g (p=%v a=%v b=%v)", m.Name(), maxPR, max, p, a, b)
			}
			if mm < min-tol || mm > max+tol {
				t.Fatalf("%s: MinMaxDist %g outside [MinDist %g, MaxDist %g]", m.Name(), mm, min, max)
			}
			if a.Intersects(b) && min > tol {
				t.Fatalf("%s: intersecting rects have MinDist %g", m.Name(), min)
			}
		}
	})
}
