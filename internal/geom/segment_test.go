package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Length() != 5 {
		t.Fatalf("Length = %g", s.Length())
	}
	if !s.At(0).Equal(Pt(0, 0)) || !s.At(1).Equal(Pt(3, 4)) {
		t.Fatal("At endpoints wrong")
	}
	if !s.BBox().Equal(R(Pt(0, 0), Pt(3, 4))) {
		t.Fatalf("BBox = %v", s.BBox())
	}
	// Reversed endpoints still produce a valid bbox.
	rev := Seg(Pt(3, 4), Pt(0, 0))
	if !rev.BBox().Equal(R(Pt(0, 0), Pt(3, 4))) {
		t.Fatalf("reversed BBox = %v", rev.BBox())
	}
}

func TestDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},  // above the middle
		{Pt(-4, 3), 5}, // before A: 3-4-5
		{Pt(13, 4), 5}, // past B
		{Pt(7, 0), 0},  // on the segment
		{Pt(0, 0), 0},  // endpoint
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); !almostEqual(got, c.want) {
			t.Errorf("DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	// Degenerate segment behaves as a point.
	pt := Seg(Pt(2, 2), Pt(2, 2))
	if got := pt.DistToPoint(Pt(5, 6)); !almostEqual(got, 5) {
		t.Errorf("degenerate DistToPoint = %g", got)
	}
}

func TestSegmentDistKnownCases(t *testing.T) {
	cases := []struct {
		s1, s2 Segment
		want   float64
	}{
		// Crossing segments.
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), 0},
		// Touching at an endpoint.
		{Seg(Pt(0, 0), Pt(5, 5)), Seg(Pt(5, 5), Pt(9, 2)), 0},
		// Parallel horizontal, vertical gap 3.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(2, 3), Pt(8, 3)), 3},
		// Parallel but offset along the axis: nearest endpoints (10,0)-(12,0).
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(12, 0), Pt(20, 0)), 2},
		// Collinear overlapping.
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(15, 0)), 0},
		// Skew in 3-D: unit segments along x and y at z distance 4.
		{Seg(Pt(0, 0, 0), Pt(1, 0, 0)), Seg(Pt(0, 0, 4), Pt(0, 1, 4)), 4},
		// Both degenerate.
		{Seg(Pt(1, 1), Pt(1, 1)), Seg(Pt(4, 5), Pt(4, 5)), 5},
		// One degenerate.
		{Seg(Pt(0, 3), Pt(0, 3)), Seg(Pt(-5, 0), Pt(5, 0)), 3},
	}
	for i, c := range cases {
		if got := SegmentDist(c.s1, c.s2); !almostEqual(got, c.want) {
			t.Errorf("case %d: SegmentDist = %g, want %g", i, got, c.want)
		}
		if got := SegmentDist(c.s2, c.s1); !almostEqual(got, c.want) {
			t.Errorf("case %d: SegmentDist not symmetric", i)
		}
	}
}

// Property: SegmentDist matches a dense parametric sampling lower bound and
// never exceeds any sampled pair distance.
func TestPropSegmentDistMatchesSampling(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		dim := 2 + rnd.Intn(2)
		randSeg := func() Segment {
			a := make(Point, dim)
			b := make(Point, dim)
			for i := 0; i < dim; i++ {
				a[i] = rnd.Float64()*20 - 10
				b[i] = rnd.Float64()*20 - 10
			}
			return Segment{A: a, B: b}
		}
		s1, s2 := randSeg(), randSeg()
		got := SegmentDist(s1, s2)
		const steps = 60
		sampled := math.Inf(1)
		for i := 0; i <= steps; i++ {
			p := s1.At(float64(i) / steps)
			for j := 0; j <= steps; j++ {
				q := s2.At(float64(j) / steps)
				if d := Euclidean.Dist(p, q); d < sampled {
					sampled = d
				}
			}
		}
		// The true minimum is <= any sample; the sample grid is within
		// (len1+len2)/steps of the true minimum.
		slack := (s1.Length() + s2.Length()) / steps
		return got <= sampled+1e-9 && sampled <= got+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the MINDIST of the bounding boxes lower-bounds the segment
// distance — the consistency the OBR join mode relies on.
func TestPropSegmentBBoxConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		randSeg := func() Segment {
			return Seg(
				Pt(rnd.Float64()*100, rnd.Float64()*100),
				Pt(rnd.Float64()*100, rnd.Float64()*100))
		}
		s1, s2 := randSeg(), randSeg()
		return Euclidean.MinDist(s1.BBox(), s2.BBox()) <= SegmentDist(s1, s2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
