package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genPoint draws a point with coordinates in [-100, 100].
func genPoint(r *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for i := range p {
		p[i] = r.Float64()*200 - 100
	}
	return p
}

// genRect draws a valid rectangle in [-100, 100]^dim.
func genRect(r *rand.Rand, dim int) Rect {
	a, b := genPoint(r, dim), genPoint(r, dim)
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := 0; i < dim; i++ {
		lo[i] = math.Min(a[i], b[i])
		hi[i] = math.Max(a[i], b[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// genPointIn draws a point uniformly inside r.
func genPointIn(rnd *rand.Rand, r Rect) Point {
	p := make(Point, r.Dim())
	for i := range p {
		p[i] = r.Lo[i] + rnd.Float64()*(r.Hi[i]-r.Lo[i])
	}
	return p
}

var allMetrics = []Metric{Euclidean, Manhattan, Chessboard}

var quickCfg = &quick.Config{MaxCount: 300}

// Triangle inequality for the point metrics.
func TestPropTriangleInequality(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(4)
			p, q, s := genPoint(r, dim), genPoint(r, dim), genPoint(r, dim)
			return m.Dist(p, q) <= m.Dist(p, s)+m.Dist(s, q)+1e-9
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// MinDist lower-bounds and MaxDist upper-bounds the distance between any two
// contained points — the consistency property of paper §2.2 that guarantees
// correctness of the incremental algorithm.
func TestPropMinMaxDistBracketing(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(4)
			a, b := genRect(r, dim), genRect(r, dim)
			for k := 0; k < 10; k++ {
				p, q := genPointIn(r, a), genPointIn(r, b)
				d := m.Dist(p, q)
				if d < m.MinDist(a, b)-1e-9 || d > m.MaxDist(a, b)+1e-9 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// MinDistPR agrees with MinDist on a degenerate rect, and MaxDistPR with
// MaxDist.
func TestPropPointRectAgreesWithRectRect(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(4)
			p := genPoint(r, dim)
			b := genRect(r, dim)
			return almostEqual(m.MinDistPR(p, b), m.MinDist(p.Rect(), b)) &&
				almostEqual(m.MaxDistPR(p, b), m.MaxDist(p.Rect(), b))
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// MinDist is monotone under union: growing a rectangle can only decrease its
// minimum distance to anything — the property that makes parent/child queue
// ordering consistent.
func TestPropMinDistMonotoneUnderUnion(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(4)
			child, sibling, other := genRect(r, dim), genRect(r, dim), genRect(r, dim)
			parent := child.Union(sibling)
			return m.MinDist(parent, other) <= m.MinDist(child, other)+1e-9
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// MINMAXDIST soundness: for an object (point set) touching every face of its
// minimal bounding rect, some object point lies within MinMaxDistPR of the
// query point.
func TestPropMinMaxDistPRSound(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(3)
			b := genRect(r, dim)
			// Build an object touching all faces: one random point per face.
			var obj []Point
			for _, face := range b.Faces() {
				obj = append(obj, genPointIn(r, face))
			}
			p := genPoint(r, dim)
			bound := m.MinMaxDistPR(p, b)
			best := math.Inf(1)
			for _, o := range obj {
				if d := m.Dist(p, o); d < best {
					best = d
				}
			}
			return best <= bound+1e-9
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// Rect-rect MINMAXDIST soundness: for two objects each touching all faces of
// their minimal bounding rects, the closest pair of object points is within
// MinMaxDist.
func TestPropMinMaxDistRectSound(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(3)
			ra, rb := genRect(r, dim), genRect(r, dim)
			var oa, ob []Point
			for _, face := range ra.Faces() {
				oa = append(oa, genPointIn(r, face))
			}
			for _, face := range rb.Faces() {
				ob = append(ob, genPointIn(r, face))
			}
			bound := m.MinMaxDist(ra, rb)
			best := math.Inf(1)
			for _, p := range oa {
				for _, q := range ob {
					if d := m.Dist(p, q); d < best {
						best = d
					}
				}
			}
			return best <= bound+1e-9
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// MinDist(a, b) == 0 exactly when a and b intersect.
func TestPropMinDistZeroIffIntersect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		a, b := genRect(r, dim), genRect(r, dim)
		zero := Euclidean.MinDist(a, b) == 0
		return zero == a.Intersects(b)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Union contains both operands; intersection (when non-empty) is contained
// in both.
func TestPropUnionIntersectionContainment(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		a, b := genRect(r, dim), genRect(r, dim)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if x, ok := a.Intersection(b); ok {
			return a.Contains(x) && b.Contains(x)
		}
		return !a.Intersects(b)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Ordering MinDist <= MinMaxDist <= MaxDist holds for all rect pairs.
func TestPropDistanceBoundsOrdered(t *testing.T) {
	for _, m := range allMetrics {
		m := m
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 1 + r.Intn(3)
			a, b := genRect(r, dim), genRect(r, dim)
			mn, mm, mx := m.MinDist(a, b), m.MinMaxDist(a, b), m.MaxDist(a, b)
			return mn <= mm+1e-9 && mm <= mx+1e-9
		}
		if err := quick.Check(f, quickCfg); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// BoundingRect of a point set contains every point and is minimal: each
// face touches at least one point.
func TestPropBoundingRectMinimal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		n := 1 + r.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = genPoint(r, dim)
		}
		bb := BoundingRect(pts)
		for _, p := range pts {
			if !bb.ContainsPoint(p) {
				return false
			}
		}
		for i := 0; i < dim; i++ {
			loTouched, hiTouched := false, false
			for _, p := range pts {
				if p[i] == bb.Lo[i] {
					loTouched = true
				}
				if p[i] == bb.Hi[i] {
					hiTouched = true
				}
			}
			if !loTouched || !hiTouched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Lp distances are monotone non-increasing in p for fixed points.
func TestPropLpMonotoneInOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		p, q := genPoint(r, dim), genPoint(r, dim)
		d1 := Manhattan.Dist(p, q)
		d2 := Euclidean.Dist(p, q)
		d3 := Lp(3).Dist(p, q)
		dInf := Chessboard.Dist(p, q)
		return d1 >= d2-1e-9 && d2 >= d3-1e-9 && d3 >= dInf-1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
