package geom

import (
	"math"
	"testing"
)

func TestPtAndDim(t *testing.T) {
	p := Pt(1, 2, 3)
	if p.Dim() != 3 {
		t.Fatalf("Dim() = %d, want 3", p.Dim())
	}
	if p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Fatalf("coordinates wrong: %v", p)
	}
}

func TestPointClone(t *testing.T) {
	p := Pt(1, 2)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
	if !p.Equal(Pt(1, 2)) {
		t.Fatal("original mutated")
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(1, 2), Pt(1, 2), true},
		{Pt(1, 2), Pt(2, 1), false},
		{Pt(1, 2), Pt(1, 2, 3), false},
		{Pt(), Pt(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPointRect(t *testing.T) {
	p := Pt(3, 4)
	r := p.Rect()
	if !r.IsPoint() || !r.Lo.Equal(p) || !r.Hi.Equal(p) {
		t.Fatalf("Rect() = %v, want degenerate at %v", r, p)
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(1, 2.5).String(); s != "(1, 2.5)" {
		t.Fatalf("String() = %q", s)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(1, math.Inf(1)).IsFinite() {
		t.Error("infinite point reported finite")
	}
	if Pt(math.NaN()).IsFinite() {
		t.Error("NaN point reported finite")
	}
}

func TestCheckDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Euclidean.Dist(Pt(1, 2), Pt(1, 2, 3))
}
