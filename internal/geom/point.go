// Package geom provides d-dimensional points, hyper-rectangles and the
// distance functions required by the incremental distance join algorithms of
// Hjaltason & Samet (SIGMOD 1998): MINDIST, MAXDIST and MINMAXDIST under the
// Euclidean, Manhattan and Chessboard metrics.
//
// All functions accept arbitrary dimensionality; operands of mismatched
// dimension panic, since that is always a programming error.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in d-dimensional space. The slice length is the
// dimensionality. Points are treated as immutable values; functions in this
// package never modify their arguments.
type Point []float64

// Pt is a convenience constructor for a Point.
func Pt(coords ...float64) Point { return Point(coords) }

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Rect returns the degenerate rectangle containing exactly p.
func (p Point) Rect() Rect { return Rect{Lo: p, Hi: p} }

// String renders p as "(x, y, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", c)
	}
	b.WriteByte(')')
	return b.String()
}

// IsFinite reports whether all coordinates are finite numbers.
func (p Point) IsFinite() bool {
	for _, c := range p {
		if math.IsInf(c, 0) || math.IsNaN(c) {
			return false
		}
	}
	return true
}

func checkDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("geom: dimension mismatch: %d vs %d", a, b))
	}
}
