package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned hyper-rectangle given by its low and high corners.
// A Rect is valid when Lo and Hi have the same dimensionality and
// Lo[i] <= Hi[i] in every dimension. A point is represented as the degenerate
// rectangle with Lo == Hi.
type Rect struct {
	Lo, Hi Point
}

// R constructs a rectangle from low/high corner coordinates. It panics if
// the corners disagree in dimension or are inverted, since rectangles are
// almost always built from literals or trusted data.
func R(lo, hi Point) Rect {
	checkDim(len(lo), len(hi))
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: inverted rectangle in dim %d: [%g, %g]", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// Dim returns the dimensionality of r.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()} }

// Valid reports whether r has matching dimensions and Lo <= Hi everywhere.
func (r Rect) Valid() bool {
	if len(r.Lo) != len(r.Hi) || len(r.Lo) == 0 {
		return false
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] || math.IsNaN(r.Lo[i]) || math.IsNaN(r.Hi[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether r and s are identical.
func (r Rect) Equal(s Rect) bool { return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi) }

// IsPoint reports whether r is degenerate in every dimension.
func (r Rect) IsPoint() bool {
	for i := range r.Lo {
		if r.Lo[i] != r.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Area returns the d-dimensional volume of r (area in 2-D).
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of r (the "margin" minimized by
// the R*-tree split algorithm; half the perimeter in 2-D).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > s.Hi[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// UnionInPlace grows r to contain s, reusing r's backing arrays.
func (r *Rect) UnionInPlace(s Rect) {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > r.Hi[i] {
			r.Hi[i] = s.Hi[i]
		}
	}
}

// Intersection returns the overlap of r and s and whether it is non-empty.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range r.Lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
		if lo[i] > hi[i] {
			return Rect{}, false
		}
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// OverlapArea returns the volume of the intersection of r and s, or 0 when
// they are disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if lo > hi {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Enlargement returns the increase in volume needed for r to contain s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Faces returns the 2d faces of r, each as a rectangle degenerate in one
// dimension. Face 2i fixes dimension i at Lo[i]; face 2i+1 fixes it at Hi[i].
func (r Rect) Faces() []Rect {
	d := r.Dim()
	faces := make([]Rect, 0, 2*d)
	for i := 0; i < d; i++ {
		lo := r.Lo.Clone()
		hi := r.Hi.Clone()
		hi[i] = r.Lo[i]
		faces = append(faces, Rect{Lo: lo, Hi: hi})
		lo2 := r.Lo.Clone()
		hi2 := r.Hi.Clone()
		lo2[i] = r.Hi[i]
		faces = append(faces, Rect{Lo: lo2, Hi: hi2})
	}
	return faces
}

// String renders r as "[lo; hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s; %s]", r.Lo.String(), r.Hi.String())
}

// BoundingRect returns the minimum bounding rectangle of the given points.
// It panics when pts is empty.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := Rect{Lo: pts[0].Clone(), Hi: pts[0].Clone()}
	for _, p := range pts[1:] {
		r.UnionInPlace(p.Rect())
	}
	return r
}

// UnionAll returns the minimum bounding rectangle of the given rectangles.
// It panics when rects is empty.
func UnionAll(rects []Rect) Rect {
	if len(rects) == 0 {
		panic("geom: UnionAll of empty rectangle set")
	}
	r := rects[0].Clone()
	for _, s := range rects[1:] {
		r.UnionInPlace(s)
	}
	return r
}
