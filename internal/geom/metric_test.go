package geom

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMetricByName(t *testing.T) {
	cases := map[string]Metric{
		"euclidean": Euclidean, "l2": Euclidean,
		"manhattan": Manhattan, "l1": Manhattan,
		"chessboard": Chessboard, "chebyshev": Chessboard, "linf": Chessboard,
	}
	for name, want := range cases {
		if got := MetricByName(name); got != want {
			t.Errorf("MetricByName(%q) = %v", name, got)
		}
	}
	if MetricByName("bogus") != nil {
		t.Error("unknown metric should return nil")
	}
}

func TestDist(t *testing.T) {
	p, q := Pt(0, 0), Pt(3, 4)
	if d := Euclidean.Dist(p, q); !almostEqual(d, 5) {
		t.Errorf("euclidean = %g, want 5", d)
	}
	if d := Manhattan.Dist(p, q); !almostEqual(d, 7) {
		t.Errorf("manhattan = %g, want 7", d)
	}
	if d := Chessboard.Dist(p, q); !almostEqual(d, 4) {
		t.Errorf("chessboard = %g, want 4", d)
	}
}

func TestDistZeroAndSymmetry(t *testing.T) {
	for _, m := range []Metric{Euclidean, Manhattan, Chessboard} {
		p, q := Pt(1.5, -2, 7), Pt(-3, 0.25, 9)
		if d := m.Dist(p, p); d != 0 {
			t.Errorf("%s: Dist(p,p) = %g", m.Name(), d)
		}
		if m.Dist(p, q) != m.Dist(q, p) {
			t.Errorf("%s: Dist not symmetric", m.Name())
		}
	}
}

func TestMinDistPR(t *testing.T) {
	r := R(Pt(0, 0), Pt(2, 2))
	cases := []struct {
		p    Point
		want float64 // euclidean
	}{
		{Pt(1, 1), 0},   // inside
		{Pt(2, 2), 0},   // on corner
		{Pt(3, 1), 1},   // right of
		{Pt(1, -2), 2},  // below
		{Pt(5, 6), 5},   // diagonal 3-4-5
		{Pt(-3, -4), 5}, // other diagonal
	}
	for _, c := range cases {
		if got := Euclidean.MinDistPR(c.p, r); !almostEqual(got, c.want) {
			t.Errorf("MinDistPR(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Manhattan.MinDistPR(Pt(5, 6), r); !almostEqual(got, 7) {
		t.Errorf("manhattan MinDistPR = %g, want 7", got)
	}
	if got := Chessboard.MinDistPR(Pt(5, 6), r); !almostEqual(got, 4) {
		t.Errorf("chessboard MinDistPR = %g, want 4", got)
	}
}

func TestMinDistRects(t *testing.T) {
	a := R(Pt(0, 0), Pt(2, 2))
	cases := []struct {
		b    Rect
		want float64
	}{
		{R(Pt(1, 1), Pt(3, 3)), 0}, // overlap
		{R(Pt(2, 2), Pt(3, 3)), 0}, // touch
		{R(Pt(4, 0), Pt(5, 2)), 2}, // gap in x only
		{R(Pt(5, 6), Pt(7, 8)), 5}, // diagonal 3-4-5
		{R(Pt(-4, -5), Pt(-3, -4)), 5},
	}
	for _, c := range cases {
		got := Euclidean.MinDist(a, c.b)
		if !almostEqual(got, c.want) {
			t.Errorf("MinDist(%v) = %g, want %g", c.b, got, c.want)
		}
		if got2 := Euclidean.MinDist(c.b, a); !almostEqual(got, got2) {
			t.Errorf("MinDist not symmetric for %v", c.b)
		}
	}
}

func TestMaxDist(t *testing.T) {
	a := R(Pt(0, 0), Pt(1, 1))
	b := R(Pt(2, 2), Pt(3, 3))
	// farthest corners: (0,0) and (3,3)
	if got := Euclidean.MaxDist(a, b); !almostEqual(got, 3*math.Sqrt2) {
		t.Errorf("MaxDist = %g, want %g", got, 3*math.Sqrt2)
	}
	if got := Manhattan.MaxDist(a, b); !almostEqual(got, 6) {
		t.Errorf("manhattan MaxDist = %g, want 6", got)
	}
	// identical unit squares: farthest corners are opposite, dist sqrt(2)
	if got := Euclidean.MaxDist(a, a); !almostEqual(got, math.Sqrt2) {
		t.Errorf("MaxDist(a,a) = %g, want sqrt2", got)
	}
}

func TestMaxDistPR(t *testing.T) {
	r := R(Pt(0, 0), Pt(2, 2))
	if got := Euclidean.MaxDistPR(Pt(0, 0), r); !almostEqual(got, 2*math.Sqrt2) {
		t.Errorf("MaxDistPR corner = %g", got)
	}
	if got := Euclidean.MaxDistPR(Pt(1, 1), r); !almostEqual(got, math.Sqrt2) {
		t.Errorf("MaxDistPR center = %g", got)
	}
	if got := Euclidean.MaxDistPR(Pt(-1, 1), r); !almostEqual(got, math.Sqrt(9+1)) {
		t.Errorf("MaxDistPR outside = %g", got)
	}
}

func TestMinMaxDistPRKnownValues(t *testing.T) {
	// Unit square, query point left of it at the same height as the center.
	r := R(Pt(1, 0), Pt(2, 1))
	p := Pt(0, 0.5)
	// Candidate fixing x at near face (x=1), y at far corner (y=0 or 1,
	// both 0.5 away): sqrt(1 + 0.25). Candidate fixing y near (0.5 to
	// either), x far (x=2): sqrt(4 + 0.25). Min is the first.
	want := math.Sqrt(1.25)
	if got := Euclidean.MinMaxDistPR(p, r); !almostEqual(got, want) {
		t.Errorf("MinMaxDistPR = %g, want %g", got, want)
	}
}

func TestMinMaxDistPRPointRect(t *testing.T) {
	// Degenerate rect: MINMAXDIST equals plain distance.
	p, q := Pt(1, 2), Pt(4, 6)
	for _, m := range []Metric{Euclidean, Manhattan, Chessboard} {
		if got, want := m.MinMaxDistPR(p, q.Rect()), m.Dist(p, q); !almostEqual(got, want) {
			t.Errorf("%s: MinMaxDistPR degenerate = %g, want %g", m.Name(), got, want)
		}
	}
}

func TestMinMaxDistRectDegenerate(t *testing.T) {
	// Both rects degenerate: equals point distance.
	a, b := Pt(0, 0).Rect(), Pt(3, 4).Rect()
	if got := Euclidean.MinMaxDist(a, b); !almostEqual(got, 5) {
		t.Errorf("MinMaxDist degenerate = %g, want 5", got)
	}
	// One degenerate: equals MinMaxDistPR.
	r := R(Pt(1, 0), Pt(2, 1))
	p := Pt(0, 0.5)
	if got, want := Euclidean.MinMaxDist(p.Rect(), r), Euclidean.MinMaxDistPR(p, r); !almostEqual(got, want) {
		t.Errorf("MinMaxDist point/rect = %g, want %g", got, want)
	}
}

func TestMinMaxDistOrdering(t *testing.T) {
	a := R(Pt(0, 0), Pt(1, 2))
	b := R(Pt(3, 1), Pt(5, 4))
	mn := Euclidean.MinDist(a, b)
	mm := Euclidean.MinMaxDist(a, b)
	mx := Euclidean.MaxDist(a, b)
	if !(mn <= mm && mm <= mx) {
		t.Errorf("ordering violated: min %g, minmax %g, max %g", mn, mm, mx)
	}
}

func TestLpGeneral(t *testing.T) {
	if Lp(1) != Manhattan || Lp(2) != Euclidean || Lp(math.Inf(1)) != Chessboard {
		t.Fatal("special orders do not coincide with named metrics")
	}
	m := Lp(3)
	if m.Name() != "l3" {
		t.Fatalf("Name = %q", m.Name())
	}
	// |3|^3 + |4|^3 = 27 + 64 = 91; 91^(1/3)
	want := math.Cbrt(91)
	if d := m.Dist(Pt(0, 0), Pt(3, 4)); !almostEqual(d, want) {
		t.Fatalf("L3 dist = %g, want %g", d, want)
	}
	// Bracketing still holds for the general order.
	a := R(Pt(0, 0), Pt(1, 1))
	b := R(Pt(3, 2), Pt(5, 4))
	if !(m.MinDist(a, b) <= m.MinMaxDist(a, b) && m.MinMaxDist(a, b) <= m.MaxDist(a, b)) {
		t.Fatal("L3 bound ordering violated")
	}
}

func TestLpPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lp(0.5) did not panic")
		}
	}()
	Lp(0.5)
}
