package geom

import (
	"math"
	"testing"
)

func TestRConstructor(t *testing.T) {
	r := R(Pt(0, 0), Pt(2, 3))
	if r.Area() != 6 {
		t.Fatalf("Area = %g, want 6", r.Area())
	}
	if r.Margin() != 5 {
		t.Fatalf("Margin = %g, want 5", r.Margin())
	}
}

func TestRPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inverted rect")
		}
	}()
	R(Pt(1, 0), Pt(0, 1))
}

func TestRectValid(t *testing.T) {
	if !R(Pt(0), Pt(1)).Valid() {
		t.Error("valid rect reported invalid")
	}
	if (Rect{Lo: Pt(1), Hi: Pt(0)}).Valid() {
		t.Error("inverted rect reported valid")
	}
	if (Rect{Lo: Pt(0, 0), Hi: Pt(1)}).Valid() {
		t.Error("mismatched dims reported valid")
	}
	if (Rect{Lo: Pt(math.NaN()), Hi: Pt(1)}).Valid() {
		t.Error("NaN rect reported valid")
	}
	if (Rect{}).Valid() {
		t.Error("zero rect reported valid")
	}
}

func TestRectCenter(t *testing.T) {
	c := R(Pt(0, 2), Pt(4, 6)).Center()
	if !c.Equal(Pt(2, 4)) {
		t.Fatalf("Center = %v, want (2, 4)", c)
	}
}

func TestRectContains(t *testing.T) {
	outer := R(Pt(0, 0), Pt(10, 10))
	if !outer.Contains(R(Pt(1, 1), Pt(9, 9))) {
		t.Error("should contain inner rect")
	}
	if !outer.Contains(outer) {
		t.Error("should contain itself")
	}
	if outer.Contains(R(Pt(5, 5), Pt(11, 9))) {
		t.Error("should not contain overflowing rect")
	}
	if !outer.ContainsPoint(Pt(10, 10)) {
		t.Error("boundary point should be contained")
	}
	if outer.ContainsPoint(Pt(10.1, 5)) {
		t.Error("outside point should not be contained")
	}
}

func TestRectIntersects(t *testing.T) {
	a := R(Pt(0, 0), Pt(2, 2))
	cases := []struct {
		b    Rect
		want bool
	}{
		{R(Pt(1, 1), Pt(3, 3)), true},
		{R(Pt(2, 2), Pt(3, 3)), true}, // touching corner counts
		{R(Pt(3, 0), Pt(4, 2)), false},
		{R(Pt(0, 3), Pt(2, 4)), false},
		{a, true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v, %v", a, c.b)
		}
	}
}

func TestRectUnionIntersection(t *testing.T) {
	a := R(Pt(0, 0), Pt(2, 2))
	b := R(Pt(1, 1), Pt(3, 4))
	u := a.Union(b)
	if !u.Equal(R(Pt(0, 0), Pt(3, 4))) {
		t.Fatalf("Union = %v", u)
	}
	x, ok := a.Intersection(b)
	if !ok || !x.Equal(R(Pt(1, 1), Pt(2, 2))) {
		t.Fatalf("Intersection = %v, %v", x, ok)
	}
	if _, ok := a.Intersection(R(Pt(5, 5), Pt(6, 6))); ok {
		t.Fatal("disjoint rects reported intersecting")
	}
}

func TestRectUnionInPlace(t *testing.T) {
	a := R(Pt(0, 0), Pt(1, 1)).Clone()
	a.UnionInPlace(R(Pt(-1, 2), Pt(0.5, 3)))
	if !a.Equal(R(Pt(-1, 0), Pt(1, 3))) {
		t.Fatalf("UnionInPlace = %v", a)
	}
}

func TestRectOverlapArea(t *testing.T) {
	a := R(Pt(0, 0), Pt(2, 2))
	if got := a.OverlapArea(R(Pt(1, 1), Pt(3, 3))); got != 1 {
		t.Errorf("OverlapArea = %g, want 1", got)
	}
	if got := a.OverlapArea(R(Pt(3, 3), Pt(4, 4))); got != 0 {
		t.Errorf("disjoint OverlapArea = %g, want 0", got)
	}
	if got := a.OverlapArea(R(Pt(2, 0), Pt(3, 2))); got != 0 {
		t.Errorf("touching OverlapArea = %g, want 0", got)
	}
}

func TestRectEnlargement(t *testing.T) {
	a := R(Pt(0, 0), Pt(2, 2))
	if got := a.Enlargement(R(Pt(1, 1), Pt(1.5, 1.5))); got != 0 {
		t.Errorf("contained Enlargement = %g, want 0", got)
	}
	if got := a.Enlargement(R(Pt(0, 0), Pt(4, 2))); got != 4 {
		t.Errorf("Enlargement = %g, want 4", got)
	}
}

func TestRectFaces(t *testing.T) {
	r := R(Pt(0, 0), Pt(2, 3))
	faces := r.Faces()
	if len(faces) != 4 {
		t.Fatalf("len(Faces) = %d, want 4", len(faces))
	}
	want := []Rect{
		R(Pt(0, 0), Pt(0, 3)), // x = 0
		R(Pt(2, 0), Pt(2, 3)), // x = 2
		R(Pt(0, 0), Pt(2, 0)), // y = 0
		R(Pt(0, 3), Pt(2, 3)), // y = 3
	}
	for i, f := range faces {
		if !f.Equal(want[i]) {
			t.Errorf("face %d = %v, want %v", i, f, want[i])
		}
		if !r.Contains(f) {
			t.Errorf("face %d not contained in rect", i)
		}
	}
}

func TestBoundingRect(t *testing.T) {
	r := BoundingRect([]Point{Pt(1, 5), Pt(-2, 3), Pt(0, 7)})
	if !r.Equal(R(Pt(-2, 3), Pt(1, 7))) {
		t.Fatalf("BoundingRect = %v", r)
	}
}

func TestUnionAll(t *testing.T) {
	r := UnionAll([]Rect{R(Pt(0, 0), Pt(1, 1)), R(Pt(2, -1), Pt(3, 0.5))})
	if !r.Equal(R(Pt(0, -1), Pt(3, 1))) {
		t.Fatalf("UnionAll = %v", r)
	}
}

func TestBoundingRectEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoundingRect(nil)
}
