package geom

import "math"

// MinMaxDistPR implements the MINMAXDIST metric of Roussopoulos et al.
// between a point and a minimal bounding rectangle (paper §2.2.3): because a
// minimally-bounded object touches every face of its bounding rectangle, for
// every face f of r the object has a point within max_{q∈f} d(p,q) of p, so
//
//	MINMAXDIST(p, r) = min over faces f of r of max_{q∈f} d(p, q)
//
// is an upper bound on the distance from p to the object bounded by r. The
// minimum is always attained on one of the d "near" faces, which allows the
// O(d²) closed form below: candidate k fixes dimension k at its nearer
// boundary and all other dimensions at their farther boundary.
func (m lpMetric) MinMaxDistPR(p Point, r Rect) float64 {
	checkDim(len(p), len(r.Lo))
	d := len(p)
	near := make([]float64, d) // |p_k - nearer face coordinate|
	far := make([]float64, d)  // |p_k - farther face coordinate|
	for i := 0; i < d; i++ {
		mid := (r.Lo[i] + r.Hi[i]) / 2
		if p[i] <= mid {
			near[i] = math.Abs(p[i] - r.Lo[i])
			far[i] = math.Abs(p[i] - r.Hi[i])
		} else {
			near[i] = math.Abs(p[i] - r.Hi[i])
			far[i] = math.Abs(p[i] - r.Lo[i])
		}
	}
	best := math.Inf(1)
	for k := 0; k < d; k++ {
		cand := m.aggregate(func(i int) float64 {
			if i == k {
				return near[i]
			}
			return far[i]
		}, d)
		if cand < best {
			best = cand
		}
	}
	return best
}

// MinMaxDist generalizes MINMAXDIST to two rectangles a and b, each minimally
// bounding one object (paper §2.2.3). Each object touches every face of its
// rectangle, so for any face f of a and any face g of b the two objects have
// points p∈f and q∈g; in the worst case those points are the farthest-apart
// points of the two faces, hence
//
//	MINMAXDIST(a, b) = min over faces f of a, g of b of MaxDist(f, g)
//
// is a sound upper bound on the distance between the two objects. For
// degenerate (point) rectangles this reduces to MinMaxDistPR and ultimately
// to Dist.
func (m lpMetric) MinMaxDist(a, b Rect) float64 {
	checkDim(len(a.Lo), len(b.Lo))
	best := math.Inf(1)
	for _, f := range a.Faces() {
		for _, g := range b.Faces() {
			if d := m.MaxDist(f, g); d < best {
				best = d
			}
		}
	}
	return best
}
