package geom

import "math"

// Segment is a line segment between two d-dimensional endpoints. The paper
// evaluates on points and names line data as future study (§3.1, §5);
// segments are the simplest extended object type, exercised through the
// engine's bounding-rectangle mode with an exact-distance callback.
type Segment struct {
	A, B Point
}

// Seg constructs a segment, panicking on dimension mismatch.
func Seg(a, b Point) Segment {
	checkDim(len(a), len(b))
	return Segment{A: a, B: b}
}

// Dim returns the segment's dimensionality.
func (s Segment) Dim() int { return len(s.A) }

// BBox returns the segment's minimal bounding rectangle.
func (s Segment) BBox() Rect {
	lo := make(Point, len(s.A))
	hi := make(Point, len(s.A))
	for i := range s.A {
		lo[i] = math.Min(s.A[i], s.B[i])
		hi[i] = math.Max(s.A[i], s.B[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// At returns the point A + t·(B−A).
func (s Segment) At(t float64) Point {
	p := make(Point, len(s.A))
	for i := range s.A {
		p[i] = s.A[i] + t*(s.B[i]-s.A[i])
	}
	return p
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return Euclidean.Dist(s.A, s.B) }

// DistToPoint returns the Euclidean distance from p to the nearest point of
// the segment.
func (s Segment) DistToPoint(p Point) float64 {
	checkDim(len(p), len(s.A))
	// Project p onto the segment's supporting line and clamp.
	var dd, dp float64
	for i := range s.A {
		d := s.B[i] - s.A[i]
		dd += d * d
		dp += d * (p[i] - s.A[i])
	}
	t := 0.0
	if dd > 0 {
		t = dp / dd
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	return Euclidean.Dist(p, s.At(t))
}

// SegmentDist returns the Euclidean distance between the closest points of
// two segments, in any dimension, using the standard clamped quadratic
// minimization over the two segment parameters (Eberly's robust
// formulation). Intersecting or touching segments yield 0.
func SegmentDist(s1, s2 Segment) float64 {
	checkDim(len(s1.A), len(s2.A))
	dim := len(s1.A)
	// Direction vectors and the offset between origins.
	d1 := make([]float64, dim)
	d2 := make([]float64, dim)
	r := make([]float64, dim)
	for i := 0; i < dim; i++ {
		d1[i] = s1.B[i] - s1.A[i]
		d2[i] = s2.B[i] - s2.A[i]
		r[i] = s1.A[i] - s2.A[i]
	}
	dot := func(a, b []float64) float64 {
		sum := 0.0
		for i := range a {
			sum += a[i] * b[i]
		}
		return sum
	}
	a := dot(d1, d1) // squared length of s1
	e := dot(d2, d2) // squared length of s2
	f := dot(d2, r)

	var t, u float64 // parameters on s1 and s2
	switch {
	case a == 0 && e == 0:
		// Both degenerate to points.
		t, u = 0, 0
	case a == 0:
		// s1 is a point: clamp projection onto s2.
		t = 0
		u = clamp01(f / e)
	default:
		c := dot(d1, r)
		if e == 0 {
			// s2 is a point: clamp projection onto s1.
			u = 0
			t = clamp01(-c / a)
		} else {
			b := dot(d1, d2)
			denom := a*e - b*b
			if denom > 0 {
				t = clamp01((b*f - c*e) / denom)
			} else {
				t = 0 // parallel: pick an endpoint of s1
			}
			u = (b*t + f) / e
			// Clamp u, then recompute the optimal t for the clamped u.
			if u < 0 {
				u = 0
				t = clamp01(-c / a)
			} else if u > 1 {
				u = 1
				t = clamp01((b - c) / a)
			}
		}
	}
	return Euclidean.Dist(s1.At(t), s2.At(u))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
