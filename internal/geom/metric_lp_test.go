package geom

import (
	"math"
	"math/rand"
	"testing"
)

// oldGeneralAggregate is the pre-optimization general-p fold: math.Pow per
// dimension and a fresh 1/p reciprocal per call. The optimized path
// (repeated multiply for integer p, hoisted reciprocal) must agree with it
// bit for bit on normal-range inputs.
func oldGeneralAggregate(p float64, deltas []float64) float64 {
	sum := 0.0
	for _, d := range deltas {
		sum += math.Pow(d, p)
	}
	return math.Pow(sum, 1/p)
}

// TestGeneralLpAgreesWithOldPath is the property test for the general-p
// optimization: random delta vectors through every distance function of
// integer and fractional Lp metrics match the old aggregation exactly.
func TestGeneralLpAgreesWithOldPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	for _, p := range []float64{3, 4, 5, 7, 11, 2.5, 3.75} {
		m := Lp(p)
		for trial := 0; trial < 5000; trial++ {
			dims := 1 + rng.Intn(6)
			a := make(Point, dims)
			b := make(Point, dims)
			for d := 0; d < dims; d++ {
				// Magnitudes spanning 1e-20..1e+20: p <= 11 keeps the
				// per-dimension powers within the normal float range.
				scale := math.Exp(rng.Float64()*92 - 46)
				a[d] = (rng.Float64()*2 - 1) * scale
				b[d] = (rng.Float64()*2 - 1) * scale
			}
			deltas := make([]float64, dims)
			for d := 0; d < dims; d++ {
				deltas[d] = math.Abs(a[d] - b[d])
			}
			got := m.Dist(a, b)
			want := oldGeneralAggregate(p, deltas)
			if got != want {
				t.Fatalf("Lp(%g).Dist(%v, %v) = %v, old path %v", p, a, b, got, want)
			}
		}
	}
}

// TestGeneralLpRectDistances pins the rectangle functions of an integer-p
// metric against the old aggregation via their per-dimension deltas.
func TestGeneralLpRectDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := Lp(3)
	for trial := 0; trial < 2000; trial++ {
		mk := func() Rect {
			lo := Point{rng.Float64()*200 - 100, rng.Float64()*200 - 100}
			return Rect{Lo: lo, Hi: Point{lo[0] + rng.Float64()*20, lo[1] + rng.Float64()*20}}
		}
		a, b := mk(), mk()
		minDeltas := make([]float64, 2)
		maxDeltas := make([]float64, 2)
		for d := 0; d < 2; d++ {
			switch {
			case a.Hi[d] < b.Lo[d]:
				minDeltas[d] = b.Lo[d] - a.Hi[d]
			case b.Hi[d] < a.Lo[d]:
				minDeltas[d] = a.Lo[d] - b.Hi[d]
			}
			maxDeltas[d] = math.Max(math.Abs(a.Hi[d]-b.Lo[d]), math.Abs(b.Hi[d]-a.Lo[d]))
		}
		if got, want := m.MinDist(a, b), oldGeneralAggregate(3, minDeltas); got != want {
			t.Fatalf("Lp(3).MinDist = %v, old path %v", got, want)
		}
		if got, want := m.MaxDist(a, b), oldGeneralAggregate(3, maxDeltas); got != want {
			t.Fatalf("Lp(3).MaxDist = %v, old path %v", got, want)
		}
	}
}

// TestIpowMatchesPow pins ipow against math.Pow across exponents and
// normal-range magnitudes, including the 0, -0, Inf and NaN corners.
func TestIpowMatchesPow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 31, 64} {
		for trial := 0; trial < 2000; trial++ {
			x := math.Exp(rng.Float64()*8 - 4) // keeps x**64 in range
			if got, want := ipow(x, n), math.Pow(x, float64(n)); got != want {
				t.Fatalf("ipow(%v, %d) = %v, math.Pow %v", x, n, got, want)
			}
		}
		for _, x := range []float64{0, math.Copysign(0, -1), 1, math.Inf(1), math.NaN()} {
			got, want := ipow(x, n), math.Pow(x, float64(n))
			if !(got == want || (math.IsNaN(got) && math.IsNaN(want)) ||
				(got == 0 && want == 0 && math.Signbit(got) == math.Signbit(want))) {
				t.Fatalf("ipow(%v, %d) = %v, math.Pow %v", x, n, got, want)
			}
		}
	}
}

// BenchmarkGeneralLpDist measures the integer-p fast path (compare with
// the non-integer p, which still pays math.Pow per dimension).
func BenchmarkGeneralLpDist(b *testing.B) {
	a := Point{1.5, -2.25, 3.125, 0.5}
	q := Point{-0.5, 1.75, 2.0, -4.5}
	for _, p := range []float64{3, 2.5} {
		m := Lp(p)
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.Dist(a, q)
			}
		})
	}
}
