package distjoin

import "distjoin/internal/geom"

// minDist returns the lower bound on the distance between any object pair
// generated from (a, b) — the queue key of forward joins. For pairs of leaf
// entries in direct-object mode this is the exact object distance.
func (e *engine) minDist(a, b item) float64 {
	d := e.opts.Metric.MinDist(a.rect, b.rect)
	e.countDistCalc(a, b)
	return d
}

// countDistCalc records one distance calculation for the pair in the
// paper's accounting: an object distance when both operands are object
// geometry (exact or bounding rectangle), a node distance otherwise. The
// batched expansion computes distances in kernels and accounts them here,
// at the same per-pair points the scalar path counts.
func (e *engine) countDistCalc(a, b item) {
	if a.kind != kindNode && b.kind != kindNode {
		e.opts.Counters.AddDistCalc(1)
	} else {
		e.opts.Counters.AddNodeDistCalc(1)
	}
}

// maxDist returns the d_max upper bound of §2.2.3/§2.2.4 for a pair:
//
//   - node/node: the plain maximum distance between the two regions, which
//     bounds every generated object pair;
//   - node with an object or OBR: every object under the node is within
//     max-distance of some face of the (minimally bounding) object
//     rectangle, so the bound is the smallest such face distance;
//   - two objects/OBRs: the rectangle MINMAXDIST generalization, which for
//     exact geometry degenerates to the object distance itself.
func (e *engine) maxDist(a, b item) float64 {
	m := e.opts.Metric
	switch {
	case a.isNode() && b.isNode():
		return m.MaxDist(a.rect, b.rect)
	case a.isNode():
		return minOverFacesMaxDist(m, a.rect, b.rect)
	case b.isNode():
		return minOverFacesMaxDist(m, b.rect, a.rect)
	default:
		return m.MinMaxDist(a.rect, b.rect)
	}
}

// minOverFacesMaxDist returns min over faces g of the minimal bounding
// rectangle obr of MaxDist(region, g): since the bounded object touches
// every face of obr, every point of region is within this distance of the
// object, making it an upper bound on d(o1, o2) for every object o1 inside
// region. For degenerate (point) obr this is simply MaxDist(region, point).
func minOverFacesMaxDist(m geom.Metric, region, obr geom.Rect) float64 {
	if obr.IsPoint() {
		return m.MaxDist(region, obr)
	}
	best := -1.0
	for _, g := range obr.Faces() {
		if d := m.MaxDist(region, g); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// minObjects returns the guaranteed minimum number of objects under an
// item: 1 for objects/OBRs, the minimum-fan-out bound for non-root nodes
// (§2.2.4), and a conservative 1 for the root (which is exempt from the
// minimum-fill invariant).
func (e *engine) minObjects(it item, side int) int {
	if !it.isNode() {
		return 1
	}
	t, root := e.t1, e.root1
	if side == 2 {
		t, root = e.t2, e.root2
	}
	if it.ref == root {
		return 1
	}
	if n := t.MinObjectsUnder(int(it.level)); n > 1 {
		return n
	}
	return 1
}
