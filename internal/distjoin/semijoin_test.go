package distjoin

import (
	"math"
	"sort"
	"testing"

	"distjoin/internal/geom"
)

// bruteSemiJoin computes, for each point of a, its nearest point in b,
// sorted ascending by distance.
func bruteSemiJoin(a, b []geom.Point, m geom.Metric) []bruteResult {
	out := make([]bruteResult, 0, len(a))
	for i, p := range a {
		best, bestJ := math.Inf(1), -1
		for j, q := range b {
			if d := m.Dist(p, q); d < best {
				best, bestJ = d, j
			}
		}
		out = append(out, bruteResult{i: i, j: bestJ, d: best})
	}
	sort.Slice(out, func(x, y int) bool { return out[x].d < out[y].d })
	return out
}

func drainSemi(t *testing.T, s *SemiJoin, limit int) []Pair {
	t.Helper()
	var out []Pair
	for limit <= 0 || len(out) < limit {
		p, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

var allFilters = []SemiFilter{
	FilterOutside, FilterInside1, FilterInside2,
	FilterLocal, FilterGlobalNodes, FilterGlobalAll,
}

func TestSemiJoinAllFiltersMatchBruteForce(t *testing.T) {
	a := clusteredPoints(31, 120)
	b := clusteredPoints(32, 150)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteSemiJoin(a, b, geom.Euclidean)

	for _, f := range allFilters {
		t.Run(f.String(), func(t *testing.T) {
			s, err := NewSemiJoin(ta, tb, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			got := drainSemi(t, s, 0)
			if len(got) != len(a) {
				t.Fatalf("semi-join reported %d pairs, want %d", len(got), len(a))
			}
			// Distances match the sorted nearest-neighbour distances.
			for i, p := range got {
				if math.Abs(p.Dist-want[i].d) > 1e-9 {
					t.Fatalf("pair %d: dist %g, want %g", i, p.Dist, want[i].d)
				}
			}
			// Each first object appears exactly once, paired with a true
			// nearest neighbour.
			seen := map[uint64]bool{}
			for _, p := range got {
				if seen[uint64(p.Obj1)] {
					t.Fatalf("object %d reported twice", p.Obj1)
				}
				seen[uint64(p.Obj1)] = true
				best := math.Inf(1)
				for _, q := range b {
					if d := geom.Euclidean.Dist(a[p.Obj1], q); d < best {
						best = d
					}
				}
				if math.Abs(p.Dist-best) > 1e-9 {
					t.Fatalf("object %d paired at %g, true nearest %g", p.Obj1, p.Dist, best)
				}
			}
		})
	}
}

func TestSemiJoinAsymmetric(t *testing.T) {
	// Semi-join is not symmetric: swapping operands yields a different
	// result cardinality (one pair per first-input object).
	a := clusteredPoints(33, 40)
	b := clusteredPoints(34, 90)
	ta, tb := buildTree(t, a), buildTree(t, b)
	s1, err := NewSemiJoin(ta, tb, FilterGlobalAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := NewSemiJoin(tb, ta, FilterGlobalAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(drainSemi(t, s1, 0)); got != 40 {
		t.Fatalf("A⋉B produced %d pairs", got)
	}
	if got := len(drainSemi(t, s2, 0)); got != 90 {
		t.Fatalf("B⋉A produced %d pairs", got)
	}
}

func TestSemiJoinMaxPairs(t *testing.T) {
	a := clusteredPoints(35, 200)
	b := clusteredPoints(36, 200)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteSemiJoin(a, b, geom.Euclidean)
	for _, k := range []int{1, 10, 50} {
		for _, f := range []SemiFilter{FilterInside2, FilterLocal, FilterGlobalAll} {
			s, err := NewSemiJoin(ta, tb, f, Options{MaxPairs: k})
			if err != nil {
				t.Fatal(err)
			}
			got := drainSemi(t, s, 0)
			if len(got) != k {
				t.Fatalf("filter %v MaxPairs=%d returned %d", f, k, len(got))
			}
			for i, p := range got {
				if math.Abs(p.Dist-want[i].d) > 1e-9 {
					t.Fatalf("filter %v pair %d: %g want %g", f, i, p.Dist, want[i].d)
				}
			}
			s.Close()
		}
	}
}

func TestSemiJoinDistanceRange(t *testing.T) {
	a := clusteredPoints(37, 100)
	b := clusteredPoints(38, 100)
	ta, tb := buildTree(t, a), buildTree(t, b)
	const dmax = 30.0
	s, err := NewSemiJoin(ta, tb, FilterGlobalAll, Options{MaxDist: dmax})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	// Expect exactly the objects whose nearest neighbour is within dmax.
	want := 0
	for _, r := range bruteSemiJoin(a, b, geom.Euclidean) {
		if r.d <= dmax {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("range semi-join: %d pairs, want %d", len(got), want)
	}
	for _, p := range got {
		if p.Dist > dmax {
			t.Fatalf("pair beyond dmax: %g", p.Dist)
		}
	}
}

func TestSemiJoinClusteringProperty(t *testing.T) {
	// The paper's store/warehouse clustering semantics: the full semi-join
	// assigns every store to its closest warehouse — a discrete Voronoi
	// partition.
	stores := clusteredPoints(39, 150)
	warehouses := []geom.Point{
		geom.Pt(100, 150), geom.Pt(500, 150), geom.Pt(100, 650), geom.Pt(500, 650),
	}
	ts, tw := buildTree(t, stores), buildTree(t, warehouses)
	s, err := NewSemiJoin(ts, tw, FilterGlobalAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, p := range drainSemi(t, s, 0) {
		store := stores[p.Obj1]
		assigned := warehouses[p.Obj2]
		for _, w := range warehouses {
			if geom.Euclidean.Dist(store, w) < geom.Euclidean.Dist(store, assigned)-1e-9 {
				t.Fatalf("store %d assigned to non-nearest warehouse", p.Obj1)
			}
		}
	}
}

func TestSemiJoinReverse(t *testing.T) {
	// Reverse semi-join reports, for each first object, its FARTHEST
	// partner, farthest pairs first (the second interpretation in §2.3).
	a := clusteredPoints(41, 30)
	b := clusteredPoints(42, 40)
	ta, tb := buildTree(t, a), buildTree(t, b)
	s, err := NewSemiJoin(ta, tb, FilterInside2, Options{Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	if len(got) != len(a) {
		t.Fatalf("reverse semi-join: %d pairs, want %d", len(got), len(a))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist > got[i-1].Dist+1e-9 {
			t.Fatalf("descending order violated at %d", i)
		}
	}
	for _, p := range got {
		worst := 0.0
		for _, q := range b {
			if d := geom.Euclidean.Dist(a[p.Obj1], q); d > worst {
				worst = d
			}
		}
		if math.Abs(p.Dist-worst) > 1e-9 {
			t.Fatalf("object %d: got %g, farthest is %g", p.Obj1, p.Dist, worst)
		}
	}
}

func TestSemiJoinEmpty(t *testing.T) {
	empty := buildTree(t, nil)
	full := buildTree(t, clusteredPoints(43, 10))
	s, err := NewSemiJoin(empty, full, FilterGlobalAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok, _ := s.Next(); ok {
		t.Fatal("semi-join of empty outer produced a pair")
	}
}

func TestSemiJoinInvalidFilter(t *testing.T) {
	ta := buildTree(t, clusteredPoints(44, 5))
	tb := buildTree(t, clusteredPoints(45, 5))
	if _, err := NewSemiJoin(ta, tb, SemiFilter(99), Options{}); err == nil {
		t.Fatal("invalid filter accepted")
	}
}

func TestSemiJoinHybridQueue(t *testing.T) {
	a := clusteredPoints(46, 100)
	b := clusteredPoints(47, 120)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteSemiJoin(a, b, geom.Euclidean)
	s, err := NewSemiJoin(ta, tb, FilterLocal, Options{
		Queue: QueueHybrid, HybridDT: 20, HybridInMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	if len(got) != len(a) {
		t.Fatalf("%d pairs, want %d", len(got), len(a))
	}
	for i, p := range got {
		if math.Abs(p.Dist-want[i].d) > 1e-9 {
			t.Fatalf("pair %d: %g want %g", i, p.Dist, want[i].d)
		}
	}
}

func TestBitset(t *testing.T) {
	var b bitset
	if b.Has(0) || b.Has(1000) {
		t.Fatal("empty bitset claims membership")
	}
	b.Add(0)
	b.Add(63)
	b.Add(64)
	b.Add(12345)
	for _, id := range []uint64{0, 63, 64, 12345} {
		if !b.Has(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if b.Has(1) || b.Has(65) || b.Has(12344) {
		t.Fatal("false membership")
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Add(63) // duplicate add
	if b.Len() != 4 {
		t.Fatalf("Len after dup = %d", b.Len())
	}
}

// TestSemiJoinEstimationRestart pins the §2.2.4 restart path: with the
// Outside filter, already-reported objects inflate the estimation set M,
// over-tightening D_max; the engine must transparently restart and still
// deliver exactly MaxPairs correct results. (Regression test for a bug
// found by TestPropSemiJoinAllFilters.)
func TestSemiJoinEstimationRestart(t *testing.T) {
	var seed int64 = -4090533858772004629 // wraps on *3, matching the original failure
	a := clusteredPoints(seed*3+1, 64)
	b := clusteredPoints(seed*3+2, 75)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteSemiJoin(a, b, geom.Euclidean)
	for _, f := range allFilters {
		for _, k := range []int{1, 10, 47, 64} {
			s, err := NewSemiJoin(ta, tb, f, Options{MaxPairs: k})
			if err != nil {
				t.Fatal(err)
			}
			got := drainSemi(t, s, 0)
			s.Close()
			if len(got) != k {
				t.Fatalf("filter %v MaxPairs=%d delivered %d", f, k, len(got))
			}
			for i, p := range got {
				if math.Abs(p.Dist-want[i].d) > 1e-9 {
					t.Fatalf("filter %v pair %d: %g want %g", f, i, p.Dist, want[i].d)
				}
			}
		}
	}
}
