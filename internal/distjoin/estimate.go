package distjoin

import (
	"distjoin/internal/pairheap"
)

// mKey identifies a pair in the estimation set M.
type mKey struct {
	k1, k2 itemKind
	r1, r2 uint64
}

// firstKey identifies the first item of a pair (semi-join M entries are
// unique on it).
type firstKey struct {
	node bool
	ref  uint64
}

// mEntry is an element of the estimation set M (§2.2.4): a pair currently
// on the main queue, the upper bound d_max on the distance of the object
// pairs it generates, and a lower bound on how many it generates.
type mEntry struct {
	key   mKey
	first firstKey
	dmax  float64
	count int
}

// estimator implements the maximum-distance estimation of §2.2.4 and its
// semi-join variant (§2.3). It maintains the set M of eligible pairs in a
// max-priority queue Q_M keyed on d_max, plus hash indexes for positional
// deletion, exactly as the paper describes. Whenever the guaranteed number
// of generatable result pairs in M exceeds the number still needed, pairs
// with the largest d_max are evicted and the effective maximum distance is
// tightened to the last evicted d_max.
type estimator struct {
	remaining int // result pairs still needed
	total     int // sum of counts in M
	heap      *pairheap.Heap[*mEntry]
	byPair    map[mKey]*pairheap.Node[*mEntry]     // join mode
	byFirst   map[firstKey]*pairheap.Node[*mEntry] // semi mode
	semi      bool
	processed map[uint64]bool // semi: first-tree node pages already expanded
}

func newEstimator(k int, semi bool) *estimator {
	est := &estimator{
		remaining: k,
		heap:      pairheap.New(func(a, b *mEntry) bool { return a.dmax > b.dmax }),
		semi:      semi,
	}
	if semi {
		est.byFirst = make(map[firstKey]*pairheap.Node[*mEntry])
		est.processed = make(map[uint64]bool)
	} else {
		est.byPair = make(map[mKey]*pairheap.Node[*mEntry])
	}
	return est
}

func pairKeyOf(p qpair) mKey {
	return mKey{k1: p.i1.kind, r1: p.i1.ref, k2: p.i2.kind, r2: p.i2.ref}
}

func firstKeyOf(i item) firstKey {
	return firstKey{node: i.isNode(), ref: i.ref}
}

// observe considers an enqueued pair for M and returns the tightened
// maximum distance (or the current one unchanged). dmaxCur is the effective
// maximum in force; dmax and count describe the pair per §2.2.4.
func (est *estimator) observe(p qpair, dmax, dmin, dmaxCur float64, count int) float64 {
	// Eligibility: every object pair generated from p is certain to lie in
	// [dmin, dmaxCur].
	if p.key < dmin || dmax > dmaxCur {
		return dmaxCur
	}
	ent := &mEntry{key: pairKeyOf(p), first: firstKeyOf(p.i1), dmax: dmax, count: count}
	if est.semi {
		// First items must be unique in M; a node may enter only if it was
		// never expanded (its entries would otherwise be double counted).
		if ent.first.node && est.processed[ent.first.ref] {
			return dmaxCur
		}
		if old, ok := est.byFirst[ent.first]; ok {
			if dmax >= old.Value.dmax {
				return dmaxCur
			}
			est.total -= old.Value.count
			est.heap.Delete(old)
			delete(est.byFirst, ent.first)
		}
		est.byFirst[ent.first] = est.heap.Insert(ent)
	} else {
		if _, ok := est.byPair[ent.key]; ok {
			return dmaxCur // already tracked (duplicate enqueue cannot happen, but be safe)
		}
		est.byPair[ent.key] = est.heap.Insert(ent)
	}
	est.total += count

	// Shrink M while it guarantees more pairs than are still needed,
	// tightening the maximum distance to the last evicted d_max — the
	// paper's exact procedure. Evicting may drop the sum below K, but the
	// guarantee survives: the remaining pairs plus the last evicted pair
	// (whose own results all lie within the new bound, since the bound IS
	// its d_max) still cover K.
	for est.total > est.remaining && !est.heap.Empty() {
		top := est.heap.Min() // max d_max (heap is inverted)
		est.evict(top.Value)
		dmaxCur = top.Value.dmax
	}
	return dmaxCur
}

func (est *estimator) evict(ent *mEntry) {
	if est.semi {
		node := est.byFirst[ent.first]
		est.heap.Delete(node)
		delete(est.byFirst, ent.first)
	} else {
		node := est.byPair[ent.key]
		est.heap.Delete(node)
		delete(est.byPair, ent.key)
	}
	est.total -= ent.count
}

// onPop removes a pair retrieved from the main queue from M (§2.2.4: "when
// a pair is retrieved from the priority queue, we must also remove the pair
// from M if it is present").
func (est *estimator) onPop(p qpair) {
	if est.semi {
		fk := firstKeyOf(p.i1)
		if node, ok := est.byFirst[fk]; ok && node.Value.key == pairKeyOf(p) {
			est.evict(node.Value)
		}
		if p.i1.isNode() {
			est.processed[p.i1.ref] = true
		}
		return
	}
	if node, ok := est.byPair[pairKeyOf(p)]; ok {
		est.evict(node.Value)
	}
}

// onReport accounts for a delivered result pair: one fewer is needed, and
// in semi-join mode any M pair sharing the reported first object is removed
// (§2.3).
func (est *estimator) onReport(p qpair) {
	est.remaining--
	if est.semi {
		fk := firstKeyOf(p.i1)
		if node, ok := est.byFirst[fk]; ok {
			est.evict(node.Value)
		}
	}
}

// revEstimator implements the §2.2.5 counterpart of the maximum-distance
// estimation for reverse (farthest-first) joins: given an upper bound K on
// the number of pairs requested, it maintains the set M of pairs whose
// guaranteed result counts raise a lower bound on the distance of the K-th
// farthest pair. Pairs with the SMALLEST minimum distance are evicted when
// M over-covers K, tightening the bound to the last evicted minimum; any
// pair whose distance upper bound falls below the bound can never be among
// the K farthest and is pruned.
type revEstimator struct {
	remaining int
	total     int
	heap      *pairheap.Heap[*mEntry] // min-heap on the pair's MINIMUM distance
	byPair    map[mKey]*pairheap.Node[*mEntry]
}

func newRevEstimator(k int) *revEstimator {
	return &revEstimator{
		remaining: k,
		heap:      pairheap.New(func(a, b *mEntry) bool { return a.dmax < b.dmax }),
		byPair:    make(map[mKey]*pairheap.Node[*mEntry]),
	}
}

// observe considers an enqueued pair; ent.dmax is reused to carry the
// pair's MINIMUM distance (the quantity this direction orders on). It
// returns the possibly-raised lower bound dminCur.
func (est *revEstimator) observe(p qpair, dmin, dmax, dminCur, dmaxRange float64, count int) float64 {
	// Eligibility: every generated pair is certain to lie in the query
	// range and at or above the current bound is not required — only that
	// the count is guaranteed, i.e. all generated pairs respect the range
	// maximum.
	if dmax > dmaxRange || dmin < dminCur {
		// Pairs already below the bound cannot raise it (their guaranteed
		// results may fall under the K-th farthest).
		return dminCur
	}
	ent := &mEntry{key: pairKeyOf(p), dmax: dmin, count: count}
	if _, ok := est.byPair[ent.key]; ok {
		return dminCur
	}
	est.byPair[ent.key] = est.heap.Insert(ent)
	est.total += count
	for est.total > est.remaining && !est.heap.Empty() {
		low := est.heap.Min() // smallest guaranteed minimum distance
		est.evictRev(low.Value)
		dminCur = low.Value.dmax
	}
	return dminCur
}

func (est *revEstimator) evictRev(ent *mEntry) {
	node := est.byPair[ent.key]
	est.heap.Delete(node)
	delete(est.byPair, ent.key)
	est.total -= ent.count
}

// onPop removes a retrieved pair from M.
func (est *revEstimator) onPop(p qpair) {
	if node, ok := est.byPair[pairKeyOf(p)]; ok {
		est.evictRev(node.Value)
	}
}

// onReport accounts for a delivered pair.
func (est *revEstimator) onReport() { est.remaining-- }
