package distjoin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/quadtree"
)

// buildQuadtree indexes points in a bucket PR quadtree over the test world.
func buildQuadtree(t *testing.T, pts []geom.Point) *quadtree.Tree {
	t.Helper()
	tr, err := quadtree.New(quadtree.Config{
		Bounds:     geom.R(geom.Pt(-200, -200), geom.Pt(1400, 1400)),
		BucketSize: 6,
		MaxDepth:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestJoinQuadtreeQuadtree runs the incremental join over two quadtrees —
// the paper's §2.2 generality claim for unbalanced decompositions.
func TestJoinQuadtreeQuadtree(t *testing.T) {
	a := clusteredPoints(71, 150)
	b := clusteredPoints(72, 180)
	qa, qb := buildQuadtree(t, a), buildQuadtree(t, b)
	j, err := NewJoinIndexes(WrapQuadtree(qa), WrapQuadtree(qb), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 1500)
	want := bruteJoin(a, b, geom.Euclidean)
	assertDistancesMatch(t, got, want)
	for _, p := range got {
		if d := geom.Euclidean.Dist(a[p.Obj1], b[p.Obj2]); math.Abs(d-p.Dist) > 1e-9 {
			t.Fatalf("pair (%d,%d): reported %g, actual %g", p.Obj1, p.Obj2, p.Dist, d)
		}
	}
}

// TestJoinMixedRTreeQuadtree joins an R-tree against a quadtree, exercising
// completely different node levels and region semantics on the two sides.
func TestJoinMixedRTreeQuadtree(t *testing.T) {
	a := clusteredPoints(73, 120)
	b := clusteredPoints(74, 160)
	ta := buildTree(t, a) // R-tree
	qb := buildQuadtree(t, b)
	for _, variants := range []struct {
		name string
		opts Options
	}{
		{"Even", Options{}},
		{"Basic", Options{Traversal: TraverseBasic}},
		{"Simultaneous", Options{Traversal: TraverseSimultaneous}},
		{"BreadthFirst", Options{TieBreak: BreadthFirst}},
	} {
		t.Run(variants.name, func(t *testing.T) {
			j, err := NewJoinIndexes(WrapRTree(ta), WrapQuadtree(qb), variants.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			got := drainJoin(t, j, 800)
			assertDistancesMatch(t, got, bruteJoin(a, b, geom.Euclidean))
		})
	}
}

// TestSemiJoinOverQuadtrees checks the semi-join with every filter on
// quadtree inputs, including the MaxPairs estimation (whose minimum-fill
// counting degenerates to 1 per node on quadtrees and leans on the restart
// path).
func TestSemiJoinOverQuadtrees(t *testing.T) {
	a := clusteredPoints(75, 90)
	b := clusteredPoints(76, 110)
	qa, qb := buildQuadtree(t, a), buildQuadtree(t, b)
	want := bruteSemiJoin(a, b, geom.Euclidean)
	for _, f := range allFilters {
		s, err := NewSemiJoinIndexes(WrapQuadtree(qa), WrapQuadtree(qb), f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != len(a) {
			t.Fatalf("filter %v: %d pairs, want %d", f, len(got), len(a))
		}
		for i, p := range got {
			if math.Abs(p.Dist-want[i].d) > 1e-9 {
				t.Fatalf("filter %v pair %d: %g want %g", f, i, p.Dist, want[i].d)
			}
		}
	}
	// MaxPairs over quadtrees.
	for _, k := range []int{1, 7, 40} {
		s, err := NewSemiJoinIndexes(WrapQuadtree(qa), WrapQuadtree(qb), FilterInside2, Options{MaxPairs: k})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != k {
			t.Fatalf("MaxPairs=%d delivered %d", k, len(got))
		}
		for i, p := range got {
			if math.Abs(p.Dist-want[i].d) > 1e-9 {
				t.Fatalf("MaxPairs=%d pair %d wrong", k, i)
			}
		}
	}
}

// TestJoinQuadtreeMaxPairsAndRange covers estimation and range pruning on
// quadtree region semantics (node regions are not minimal bounding boxes).
func TestJoinQuadtreeMaxPairsAndRange(t *testing.T) {
	a := clusteredPoints(77, 100)
	b := clusteredPoints(78, 100)
	qa, qb := buildQuadtree(t, a), buildQuadtree(t, b)
	want := bruteJoin(a, b, geom.Euclidean)

	j, err := NewJoinIndexes(WrapQuadtree(qa), WrapQuadtree(qb), Options{MaxPairs: 200})
	if err != nil {
		t.Fatal(err)
	}
	got := drainJoin(t, j, 0)
	j.Close()
	if len(got) != 200 {
		t.Fatalf("MaxPairs join: %d pairs", len(got))
	}
	assertDistancesMatch(t, got, want)

	const dmin, dmax = 30.0, 90.0
	j, err = NewJoinIndexes(WrapQuadtree(qa), WrapQuadtree(qb), Options{MinDist: dmin, MaxDist: dmax})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got = drainJoin(t, j, 0)
	var inRange []bruteResult
	for _, r := range want {
		if r.d >= dmin && r.d <= dmax {
			inRange = append(inRange, r)
		}
	}
	if len(got) != len(inRange) {
		t.Fatalf("range join over quadtrees: %d pairs, want %d", len(got), len(inRange))
	}
	assertDistancesMatch(t, got, inRange)
}

// TestJoinQuadtreeReverse checks farthest-first ordering over quadtrees
// (node keys use region-based upper bounds).
func TestJoinQuadtreeReverse(t *testing.T) {
	a := clusteredPoints(79, 40)
	b := clusteredPoints(80, 50)
	qa, qb := buildQuadtree(t, a), buildQuadtree(t, b)
	j, err := NewJoinIndexes(WrapQuadtree(qa), WrapQuadtree(qb), Options{Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 300)
	brute := bruteJoin(a, b, geom.Euclidean)
	for i, p := range got {
		want := brute[len(brute)-1-i].d
		if math.Abs(p.Dist-want) > 1e-9 {
			t.Fatalf("reverse pair %d: %g, want %g", i, p.Dist, want)
		}
	}
}

func TestWrapNil(t *testing.T) {
	if WrapQuadtree(nil) != nil {
		t.Fatal("WrapQuadtree(nil) not nil")
	}
	if _, err := NewJoinIndexes(nil, nil, Options{}); err == nil {
		t.Fatal("nil indexes accepted")
	}
}

// TestPropRTreeQuadtreeAgree cross-validates the two index structures: for
// random data and random variants, joins over R-trees and joins over
// quadtrees must produce identical distance sequences.
func TestPropRTreeQuadtreeAgree(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		na, nb := 20+rnd.Intn(80), 20+rnd.Intn(80)
		a := clusteredPoints(seed*5+1, na)
		b := clusteredPoints(seed*5+2, nb)
		taR := buildTree(t, a)
		tbR := buildTree(t, b)
		taQ, tbQ := buildQuadtree(t, a), buildQuadtree(t, b)

		opts := Options{
			Traversal: Traversal(rnd.Intn(3)),
			TieBreak:  TieBreak(rnd.Intn(2)),
		}
		limit := 1 + rnd.Intn(na*nb)
		run := func(ix1, ix2 SpatialIndex) []float64 {
			j, err := NewJoinIndexes(ix1, ix2, opts)
			if err != nil {
				return nil
			}
			defer j.Close()
			var out []float64
			for len(out) < limit {
				p, ok, err := j.Next()
				if err != nil || !ok {
					break
				}
				out = append(out, p.Dist)
			}
			return out
		}
		dr := run(WrapRTree(taR), WrapRTree(tbR))
		dq := run(WrapQuadtree(taQ), WrapQuadtree(tbQ))
		dm := run(WrapRTree(taR), WrapQuadtree(tbQ))
		if len(dr) != len(dq) || len(dr) != len(dm) {
			return false
		}
		for i := range dr {
			if math.Abs(dr[i]-dq[i]) > 1e-9 || math.Abs(dr[i]-dm[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
