package distjoin

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the terminal error of a run whose Options.Context was
// canceled or reached its deadline. It is the system-level dual of the
// paper's stop-anytime property: the pairs delivered before cancellation
// are a correct ordered prefix of the full result, the iterator latches
// ErrCanceled as its sticky terminal error, and every engine resource
// (priority queues, scratch files, partition workers, pager frames) is
// released as if the run had completed.
//
// The surfaced error wraps both ErrCanceled and the context's cause, so
// errors.Is works against ErrCanceled, context.Canceled and
// context.DeadlineExceeded alike.
var ErrCanceled = errors.New("distjoin: query canceled")

// cancelCheckEvery bounds the cancel latency within one Next call: the
// engine loop re-checks the context after this many queue pops, so a Next
// that filters through a long run of pruned pairs still observes
// cancellation within a bounded amount of work. Between Next calls the
// check at the top of step applies, so cancel-then-Next is deterministic.
const cancelCheckEvery = 64

// canceledErr builds the sticky terminal error for a canceled context,
// preserving the cancellation cause.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// wrapCanceled annotates an error that surfaced while the context was
// already canceled: storage errors provoked by the cancellation (e.g. an
// interrupted retry backoff) are reported as cancellations, keeping the
// error taxonomy sharp — ErrCanceled means "you asked to stop",
// ErrQueueStore means "the storage backend is broken".
func wrapCanceled(ctx context.Context, err error) error {
	if err == nil || ctx == nil || ctx.Err() == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}
