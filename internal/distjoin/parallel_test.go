package distjoin

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// drainAll pulls every pair from a Join.
func drainAll(t testing.TB, j *Join) []Pair {
	t.Helper()
	var out []Pair
	for {
		p, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// drainAllSemi pulls every pair from a SemiJoin.
func drainAllSemi(t testing.TB, s *SemiJoin) []Pair {
	t.Helper()
	var out []Pair
	for {
		p, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// comparePairs asserts two result streams are identical, field for field.
func comparePairs(t *testing.T, seq, par []Pair, label string) bool {
	t.Helper()
	if len(seq) != len(par) {
		t.Errorf("%s: sequential reported %d pairs, parallel %d", label, len(seq), len(par))
		return false
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("%s: pair %d differs:\n  sequential %+v\n  parallel   %+v", label, i, seq[i], par[i])
			return false
		}
	}
	return true
}

// TestPropParallelJoinMatchesSequential is the tentpole equivalence
// property: across random datasets, partition counts, metrics, queue
// kinds, orderings and MaxPairs values, the parallel join's output must be
// identical — order and all fields — to the sequential iterator's.
func TestPropParallelJoinMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		na, nb := 30+rnd.Intn(170), 30+rnd.Intn(170)
		a := clusteredPoints(seed*3+1, na)
		b := clusteredPoints(seed*3+2, nb)
		ta, tb := buildTree(t, a), buildTree(t, b)

		opts := Options{
			Traversal: Traversal(rnd.Intn(3)),
			TieBreak:  TieBreak(rnd.Intn(2)),
		}
		if rnd.Intn(2) == 0 {
			opts.Metric = geom.Manhattan
		}
		switch rnd.Intn(4) {
		case 0:
			opts.MaxPairs = 1
		case 1:
			opts.MaxPairs = 1 + rnd.Intn(50)
		case 2:
			opts.MaxPairs = na * nb / 2
		}
		if rnd.Intn(3) == 0 {
			opts.MaxDist = 50 + rnd.Float64()*300
		}
		if rnd.Intn(4) == 0 {
			opts.MinDist = rnd.Float64() * 40
			if opts.MaxDist != 0 && opts.MaxDist < opts.MinDist {
				opts.MaxDist = opts.MinDist + 100
			}
		}
		if rnd.Intn(3) == 0 {
			opts.Queue = QueueHybrid
			opts.HybridInMemory = true
		}
		if opts.Queue == QueueMemory && rnd.Intn(4) == 0 {
			opts.Reverse = true
		}

		seqOpts := opts
		seqOpts.Parallelism = 1
		js, err := NewJoin(ta, tb, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		seq := drainAll(t, js)
		js.Close()

		parOpts := opts
		parOpts.Parallelism = 2 + rnd.Intn(7)
		jp, err := NewJoin(ta, tb, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		par := drainAll(t, jp)
		jp.Close()

		return comparePairs(t, seq, par, "join")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropParallelSemiJoinMatchesSequential is the same equivalence for
// the distance semi-join and the k-nearest-neighbours join, across the
// filtering ladder.
func TestPropParallelSemiJoinMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		na, nb := 30+rnd.Intn(120), 30+rnd.Intn(120)
		a := clusteredPoints(seed*7+1, na)
		b := clusteredPoints(seed*7+2, nb)
		ta, tb := buildTree(t, a), buildTree(t, b)

		filter := SemiFilter(rnd.Intn(6))
		k := 1 + rnd.Intn(2)
		opts := Options{
			Traversal: Traversal(rnd.Intn(3)),
		}
		if rnd.Intn(2) == 0 {
			opts.Metric = geom.Manhattan
		}
		if rnd.Intn(3) == 0 {
			opts.MaxPairs = 1 + rnd.Intn(na)
		}
		if rnd.Intn(4) == 0 {
			opts.MaxDist = 100 + rnd.Float64()*400
		}

		seqOpts := opts
		ss, err := NewKNearestJoin(ta, tb, k, filter, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		seq := drainAllSemi(t, ss)
		ss.Close()

		parOpts := opts
		parOpts.Parallelism = 2 + rnd.Intn(7)
		sp, err := NewKNearestJoin(ta, tb, k, filter, parOpts)
		if err != nil {
			t.Fatal(err)
		}
		par := drainAllSemi(t, sp)
		sp.Close()

		return comparePairs(t, seq, par, "semi-join")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestParallelQuadtreeMatchesSequential checks the parallel path over
// non-R-tree indexes (quadtree on both sides, and mixed).
func TestParallelQuadtreeMatchesSequential(t *testing.T) {
	a := clusteredPoints(401, 150)
	b := clusteredPoints(402, 150)
	taR, tbR := buildTree(t, a), buildTree(t, b)
	taQ, tbQ := buildQuadtree(t, a), buildQuadtree(t, b)

	cases := []struct {
		name   string
		i1, i2 SpatialIndex
	}{
		{"quad-quad", WrapQuadtree(taQ), WrapQuadtree(tbQ)},
		{"rtree-quad", WrapRTree(taR), WrapQuadtree(tbQ)},
		{"quad-rtree", WrapQuadtree(taQ), WrapRTree(tbR)},
	}
	for _, tc := range cases {
		js, err := NewJoinIndexes(tc.i1, tc.i2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq := drainAll(t, js)
		js.Close()

		jp, err := NewJoinIndexes(tc.i1, tc.i2, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		par := drainAll(t, jp)
		jp.Close()
		comparePairs(t, seq, par, tc.name)
	}
}

// TestParallelFallbacks exercises the configurations that must silently
// fall back to the sequential engine: OBR mode, the symmetric clustering
// join, tiny inputs, and empty inputs.
func TestParallelFallbacks(t *testing.T) {
	a := clusteredPoints(501, 80)
	b := clusteredPoints(502, 80)
	ta, tb := buildTree(t, a), buildTree(t, b)

	t.Run("obr", func(t *testing.T) {
		fetch1 := func(id rtree.ObjID) (geom.Rect, error) { return a[id].Rect(), nil }
		fetch2 := func(id rtree.ObjID) (geom.Rect, error) { return b[id].Rect(), nil }
		js, err := NewJoin(ta, tb, Options{Fetch1: fetch1, Fetch2: fetch2})
		if err != nil {
			t.Fatal(err)
		}
		seq := drainAll(t, js)
		js.Close()
		jp, err := NewJoin(ta, tb, Options{Fetch1: fetch1, Fetch2: fetch2, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		par := drainAll(t, jp)
		jp.Close()
		comparePairs(t, seq, par, "obr")
	})

	t.Run("clustering", func(t *testing.T) {
		ss, err := NewClusteringJoin(ta, tb, FilterInside2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq := drainAllSemi(t, ss)
		ss.Close()
		sp, err := NewClusteringJoin(ta, tb, FilterInside2, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		par := drainAllSemi(t, sp)
		sp.Close()
		comparePairs(t, seq, par, "clustering")
	})

	t.Run("tiny", func(t *testing.T) {
		tt := buildTree(t, clusteredPoints(503, 2))
		jp, err := NewJoin(tt, tt, Options{Parallelism: 8, OmitEqualIDs: true})
		if err != nil {
			t.Fatal(err)
		}
		got := drainAll(t, jp)
		jp.Close()
		if len(got) != 2 {
			t.Fatalf("tiny self join reported %d pairs, want 2", len(got))
		}
	})

	t.Run("empty", func(t *testing.T) {
		te := buildTree(t, nil)
		jp, err := NewJoin(te, tb, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := drainAll(t, jp); len(got) != 0 {
			t.Fatalf("empty join reported %d pairs", len(got))
		}
		jp.Close()
	})
}

// TestParallelEarlyClose closes a parallel join mid-stream; the workers
// must shut down cleanly (verified by -race and the goroutine leak this
// would otherwise produce under repeated runs).
func TestParallelEarlyClose(t *testing.T) {
	a := clusteredPoints(601, 400)
	b := clusteredPoints(602, 400)
	ta, tb := buildTree(t, a), buildTree(t, b)
	for i := 0; i < 10; i++ {
		j, err := NewJoin(ta, tb, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < 3; n++ {
			if _, ok, err := j.Next(); err != nil || !ok {
				t.Fatalf("next %d: ok=%v err=%v", n, ok, err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		// Close is idempotent, and Next after Close reports exhaustion.
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := j.Next(); ok {
			t.Fatal("Next returned a pair after Close")
		}
	}
}

// TestParallelCounters checks that per-worker counter shards merge into
// the caller's Counters: a fully drained parallel join must account every
// reported pair and some distance work.
func TestParallelCounters(t *testing.T) {
	a := clusteredPoints(701, 120)
	b := clusteredPoints(702, 120)
	ta, tb := buildTree(t, a), buildTree(t, b)
	var c stats.Counters
	j, err := NewJoin(ta, tb, Options{Parallelism: 4, Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, j)
	j.Close()
	if len(got) != 120*120 {
		t.Fatalf("reported %d pairs, want %d", len(got), 120*120)
	}
	s := c.Snapshot()
	if s.PairsReported != int64(len(got)) {
		t.Errorf("PairsReported = %d, want %d", s.PairsReported, len(got))
	}
	if s.DistCalcs == 0 || s.QueueInserts == 0 || s.MaxQueueSize == 0 {
		t.Errorf("counters not merged from workers: %+v", s)
	}
	if j.Reported() != len(got) {
		t.Errorf("Reported() = %d, want %d", j.Reported(), len(got))
	}
}

// TestParallelRaceStress drives several parallel joins concurrently over
// the same trees — partition workers of all of them hammer the same two
// buffer pools — to give the race detector something to chew on.
func TestParallelRaceStress(t *testing.T) {
	a := clusteredPoints(801, 200)
	b := clusteredPoints(802, 200)
	ta, tb := buildTree(t, a), buildTree(t, b)

	var want []Pair
	{
		j, err := NewJoin(ta, tb, Options{MaxPairs: 500})
		if err != nil {
			t.Fatal(err)
		}
		want = drainAll(t, j)
		j.Close()
	}

	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			j, err := NewJoin(ta, tb, Options{Parallelism: 3 + g, MaxPairs: 500})
			if err != nil {
				done <- err
				return
			}
			defer j.Close()
			var n int
			for {
				p, ok, err := j.Next()
				if err != nil {
					done <- err
					return
				}
				if !ok {
					break
				}
				if !reflect.DeepEqual(p, want[n]) {
					t.Errorf("goroutine %d: pair %d differs", g, n)
					done <- nil
					return
				}
				n++
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
