package distjoin

import (
	"errors"
	"strings"
	"testing"
	"time"

	"distjoin/internal/faultstore"
	"distjoin/internal/pager"
	"distjoin/internal/profile"
	"distjoin/internal/qtrace"
	"distjoin/internal/stats"
)

// drainTraced runs a full join with a query tracer (and spans + counters)
// attached, returning the completed trace from the flight recorder.
func drainTraced(t *testing.T, tr *qtrace.Tracer, opts Options) (*qtrace.QueryTrace, *profile.Spans, *stats.Counters) {
	t.Helper()
	ta := buildTree(t, clusteredPoints(11, 300))
	tb := buildTree(t, clusteredPoints(23, 300))
	sp := &profile.Spans{}
	c := &stats.Counters{}
	opts.Tracer = tr
	opts.Profile = sp
	opts.Counters = c
	j, err := NewJoin(ta, tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	traces := tr.Traces()
	if len(traces) == 0 {
		t.Fatal("no trace landed in the flight recorder")
	}
	return traces[0], sp, c
}

// TestQueryTraceSequential pins the tentpole acceptance criterion on the
// sequential path: the span tree's phase spans cover ≥95% of query wall
// time, the span counts agree with the work counters, and the caller's
// Profile/Counters see the same numbers as an untraced run (the engine
// records into the query's accumulator and merges back on close).
func TestQueryTraceSequential(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	qt, sp, c := drainTraced(t, tr, Options{MaxPairs: 500})
	s := c.Snapshot()

	if qt.Kind != "join" || !strings.HasPrefix(qt.ID, "q") {
		t.Fatalf("trace header = kind %q id %q", qt.Kind, qt.ID)
	}
	if qt.Error != "" || qt.Workers != 1 {
		t.Fatalf("trace = error %q workers %d, want clean single-worker", qt.Error, qt.Workers)
	}
	if qt.Coverage < 0.95 {
		t.Errorf("phase coverage %.3f, want >= 0.95", qt.Coverage)
	}
	if qt.Coverage > 1.001 {
		t.Errorf("phase coverage %.3f exceeds 1", qt.Coverage)
	}

	// Span tree shape and agreement with the counters.
	worker := qt.Root.Find("worker")
	if worker == nil {
		t.Fatal("no worker span in the trace")
	}
	if worker.Part == nil || *worker.Part != -1 {
		t.Errorf("sequential worker part = %v, want -1", worker.Part)
	}
	if pop := qt.Root.Find("pop"); pop == nil || pop.Count != s.QueuePops {
		t.Errorf("pop span = %+v, counter pops %d", pop, s.QueuePops)
	}
	if push := qt.Root.Find("push"); push == nil || push.Count != s.QueueInserts {
		t.Errorf("push span = %+v, counter inserts %d", push, s.QueueInserts)
	}
	if qt.Root.Find("plan") == nil {
		t.Error("no plan span in the trace")
	}

	// Resource accounting matches the counters the run recorded.
	if qt.Resources.Pairs != s.PairsReported || qt.Resources.DistCalcs != s.DistCalcs {
		t.Errorf("resources = %+v, counters = %+v", qt.Resources, s)
	}
	if qt.Resources.PeakQueueDepth != s.MaxQueueSize {
		t.Errorf("peak queue depth %d, counter %d", qt.Resources.PeakQueueDepth, s.MaxQueueSize)
	}

	// The caller's Spans received the merged-back engine accounting.
	if sp.Count(profile.PhasePop) != s.QueuePops {
		t.Errorf("caller spans pops %d, counter pops %d — merge-back broken", sp.Count(profile.PhasePop), s.QueuePops)
	}
}

// TestQueryTraceParallel: the parallel path produces one worker span per
// partition plus a merge span, and coverage stays ≥95% (the merge bracket
// includes the blocking waits that dominate the coordinator's wall time).
func TestQueryTraceParallel(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	qt, sp, c := drainTraced(t, tr, Options{Parallelism: 2})
	s := c.Snapshot()

	if qt.Workers < 2 {
		t.Fatalf("workers = %d, want >= 2", qt.Workers)
	}
	if mg := qt.Root.Find("merge"); mg == nil || mg.Count == 0 {
		t.Fatalf("merge span = %+v", mg)
	}
	if qt.Coverage < 0.95 {
		t.Errorf("phase coverage %.3f, want >= 0.95", qt.Coverage)
	}
	parts := map[int]bool{}
	for _, child := range qt.Root.Children {
		if child.Name == "worker" && child.Part != nil {
			parts[*child.Part] = true
		}
	}
	if len(parts) != qt.Workers {
		t.Errorf("%d distinct worker parts, want %d", len(parts), qt.Workers)
	}
	// Merge-back preserves the caller's profile numbers across all shards.
	if sp.Count(profile.PhasePop) != s.QueuePops {
		t.Errorf("caller spans pops %d, counter pops %d", sp.Count(profile.PhasePop), s.QueuePops)
	}
}

// TestQueryTraceHybridIO: the disk-tier spans carry the nested physical
// I/O children.
func TestQueryTraceHybridIO(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	qt, _, c := drainTraced(t, tr, Options{
		Queue:          QueueHybrid,
		HybridDT:       5,
		HybridInMemory: true,
	})
	if c.Snapshot().QueueDiskPairs == 0 {
		t.Fatal("workload did not exercise the disk tier")
	}
	spill := qt.Root.Find("spill")
	if spill == nil || spill.Find("io_write") == nil {
		t.Errorf("spill span lacks nested io_write: %+v", spill)
	}
	fetch := qt.Root.Find("fetch")
	if fetch == nil || fetch.Find("io_read") == nil {
		t.Errorf("fetch span lacks nested io_read: %+v", fetch)
	}
	if qt.Resources.QueueDiskPairs == 0 {
		t.Error("trace resources missed the disk-tier pairs")
	}
}

// TestQueryTraceQueryID: a caller-supplied ID wins over the assigned one,
// and the trace is retrievable by it.
func TestQueryTraceQueryID(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	qt, _, _ := drainTraced(t, tr, Options{QueryID: "user-42", MaxPairs: 10})
	if qt.ID != "user-42" {
		t.Fatalf("trace ID = %q, want user-42", qt.ID)
	}
	if got := tr.Trace("user-42"); got != qt {
		t.Fatalf("Trace(user-42) = %v, want the completed trace", got)
	}
}

// TestQueryTraceConstructorError: a join that fails validation still
// produces no dangling active query (the trace only begins after
// validation), and a constructor failure after Begin (queue store refusing
// to open) lands an error-annotated trace.
func TestQueryTraceConstructorError(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	ta := buildTree(t, clusteredPoints(5, 50))
	tb := buildTree(t, clusteredPoints(7, 50))

	// Validation failure: before Begin, nothing recorded.
	if _, err := NewJoin(ta, tb, Options{Tracer: tr, MinDist: -1}); err == nil {
		t.Fatal("invalid options accepted")
	}
	if tr.Active() != 0 || len(tr.Traces()) != 0 {
		t.Fatalf("validation failure leaked a query: active %d, traces %d", tr.Active(), len(tr.Traces()))
	}

	// Constructor failure after Begin: the plan dies, the trace lands.
	boom := errors.New("store refused")
	_, err := NewJoin(ta, tb, Options{
		Tracer:     tr,
		Queue:      QueueHybrid,
		QueueStore: func(pageSize int) (pager.Store, error) { return nil, boom },
	})
	if err == nil {
		t.Fatal("failing store factory accepted")
	}
	if tr.Active() != 0 {
		t.Fatalf("constructor failure left %d active queries", tr.Active())
	}
	traces := tr.Traces()
	if len(traces) != 1 || !strings.Contains(traces[0].Error, "store refused") {
		t.Fatalf("constructor-failure trace = %+v", traces)
	}
}

// TestQueryTraceFaultAnnotated is the fault-injection satellite: a query
// that dies mid-join on a permanent faultstore error must still land a
// complete, error-annotated trace in the flight recorder — with the span
// tree and the resource accounting (including the observed I/O faults) of
// the work done before the failure.
func TestQueryTraceFaultAnnotated(t *testing.T) {
	tr := qtrace.New(qtrace.Config{})
	ta := buildTree(t, clusteredPoints(71, 120))
	tb := buildTree(t, clusteredPoints(72, 140))
	c := &stats.Counters{}
	j, err := NewJoin(ta, tb, Options{
		Tracer:        tr,
		Counters:      c,
		Queue:         QueueHybrid,
		HybridDT:      4,
		QueuePageSize: 256,
		// RetryIO attaches the fault-accounting callbacks; the injected
		// error is permanent, so it is counted but never retried.
		RetryIO: pager.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
		QueueStore: func(pageSize int) (pager.Store, error) {
			mem, err := pager.NewMemStore(pageSize)
			if err != nil {
				return nil, err
			}
			return faultstore.New(mem, faultstore.Config{FailWriteAt: 10}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var joinErr error
	for {
		_, ok, err := j.Next()
		if err != nil {
			joinErr = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(joinErr, faultstore.ErrInjected) {
		t.Fatalf("join error = %v, want the injected fault", joinErr)
	}
	j.Close()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("flight recorder has %d traces, want 1", len(traces))
	}
	qt := traces[0]
	if qt.Error == "" || !strings.Contains(qt.Error, "injected") {
		t.Fatalf("trace error = %q, want the injected fault", qt.Error)
	}
	if qt.Root.Name != "query" || qt.Root.Find("worker") == nil || qt.Root.Find("plan") == nil {
		t.Fatalf("errored trace is incomplete: %+v", qt.Root)
	}
	if qt.Resources.IOFaults == 0 {
		t.Error("errored trace recorded no I/O faults")
	}
	if qt.Resources.QueueInserts == 0 {
		t.Error("errored trace recorded no pre-failure work")
	}
	if tr.Active() != 0 {
		t.Fatalf("errored query still active: %d", tr.Active())
	}
}

// TestQueryTraceDisabledZeroAlloc pins the Options contract end to end: a
// join without a tracer takes the exact untraced constructor path (no
// query, no worker registration, engine spans untouched).
func TestQueryTraceDisabledUntouched(t *testing.T) {
	ta := buildTree(t, clusteredPoints(5, 100))
	tb := buildTree(t, clusteredPoints(7, 100))
	j, err := NewJoin(ta, tb, Options{MaxPairs: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for {
		_, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	// With no tracer, iterState must carry no query and Close must not
	// fabricate traces out of thin air.
	if j.s.q != nil {
		t.Fatal("untraced join carries a query")
	}
}

// TestQueryTraceKinds: each public constructor stamps its kind.
func TestQueryTraceKinds(t *testing.T) {
	ta := buildTree(t, clusteredPoints(5, 60))
	tb := buildTree(t, clusteredPoints(7, 60))
	cases := []struct {
		kind string
		run  func(tr *qtrace.Tracer) error
	}{
		{"join", func(tr *qtrace.Tracer) error {
			j, err := NewJoin(ta, tb, Options{Tracer: tr, MaxPairs: 5})
			if err != nil {
				return err
			}
			return j.Close()
		}},
		{"semijoin", func(tr *qtrace.Tracer) error {
			s, err := NewSemiJoin(ta, tb, FilterInside2, Options{Tracer: tr, MaxPairs: 5})
			if err != nil {
				return err
			}
			return s.Close()
		}},
		{"knn", func(tr *qtrace.Tracer) error {
			s, err := NewKNearestJoin(ta, tb, 3, FilterInside2, Options{Tracer: tr, MaxPairs: 5})
			if err != nil {
				return err
			}
			return s.Close()
		}},
		{"clustering", func(tr *qtrace.Tracer) error {
			s, err := NewClusteringJoin(ta, tb, FilterInside2, Options{Tracer: tr, MaxPairs: 5})
			if err != nil {
				return err
			}
			return s.Close()
		}},
	}
	for _, tc := range cases {
		tr := qtrace.New(qtrace.Config{})
		if err := tc.run(tr); err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		traces := tr.Traces()
		if len(traces) != 1 || traces[0].Kind != tc.kind {
			t.Errorf("kind %s: traces = %+v", tc.kind, traces)
		}
	}
}
