// Package distjoin implements the paper's primary contribution: incremental
// algorithms for the distance join and distance semi-join of two R-tree
// indexed spatial relations (Hjaltason & Samet, SIGMOD 1998, §2).
//
// The central structure is a priority queue of pairs, each pair combining an
// item (index node, leaf bounding rectangle, or exact object) from each
// input, keyed by the distance between the items. Popping the minimum pair
// either reports an object pair — guaranteed to be the next closest by the
// consistency of the distance functions — or expands a node into child
// pairs. All of the paper's evaluated variants are implemented: traversal
// policies (Basic / Even / Simultaneous with plane sweep), tie-breaking
// (depth-first / breadth-first), distance ranges with MINMAXDIST pruning,
// maximum-distance estimation from a result-count bound, the semi-join
// filtering ladder (Outside … GlobalAll), and reverse (farthest-first)
// ordering.
package distjoin

import (
	"encoding/binary"
	"math"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// itemKind distinguishes the three kinds of queue-pair items.
type itemKind uint8

const (
	// kindNode is an index node, referenced by page id.
	kindNode itemKind = iota
	// kindOBR is a leaf entry holding an object bounding rectangle; the
	// exact geometry must be fetched before the pair can be reported
	// (Figure 3, lines 7–13).
	kindOBR
	// kindObj is exact object geometry (leaf entries when objects are
	// stored directly, or fetched geometry re-enqueued from an OBR pair).
	kindObj
)

// item is one half of a queue pair.
type item struct {
	kind  itemKind
	level int8 // node level; -1 for OBR/object items
	ref   uint64
	rect  geom.Rect
}

func (it item) isNode() bool { return it.kind == kindNode }

// qpair is a priority-queue element: a pair of items and its ordering key
// (the minimum distance between the items for forward joins; an upper
// distance bound for reverse joins).
type qpair struct {
	key    float64
	i1, i2 item
}

// rank orders pair kinds at equal distance: pairs of leaf entries before
// pairs involving nodes (§2.2.2).
func (p qpair) rank() int {
	r := 0
	if p.i1.isNode() {
		r++
	}
	if p.i2.isNode() {
		r++
	}
	return r
}

func (p qpair) levelSum() int { return int(p.i1.level) + int(p.i2.level) }

// pairLess builds the queue ordering: ascending key (descending for
// reverse), then leaf-entry pairs before node pairs, then — for equal
// distances among node pairs — deeper nodes first (depth-first tie-breaking)
// or shallower nodes first (breadth-first), and finally references for
// determinism.
func pairLess(depthFirst, reverse bool) func(a, b qpair) bool {
	return func(a, b qpair) bool {
		if a.key != b.key {
			if reverse {
				return a.key > b.key
			}
			return a.key < b.key
		}
		if ra, rb := a.rank(), b.rank(); ra != rb {
			return ra < rb
		}
		if la, lb := a.levelSum(), b.levelSum(); la != lb {
			if depthFirst {
				return la < lb // deeper (smaller level) first
			}
			return la > lb // shallower first
		}
		if a.i1.ref != b.i1.ref {
			return a.i1.ref < b.i1.ref
		}
		return a.i2.ref < b.i2.ref
	}
}

// pairCodec serializes qpairs for the disk tier of the hybrid queue.
type pairCodec struct{ dims int }

// Size implements pqueue.Codec.
func (c pairCodec) Size() int { return 8 + 4 + 4 + 8 + 8 + c.dims*4*8 }

// Encode implements pqueue.Codec.
func (c pairCodec) Encode(dst []byte, p qpair) {
	binary.LittleEndian.PutUint64(dst[0:], math.Float64bits(p.key))
	dst[8] = byte(p.i1.kind)
	dst[9] = byte(p.i1.level)
	dst[10] = byte(p.i2.kind)
	dst[11] = byte(p.i2.level)
	binary.LittleEndian.PutUint32(dst[12:], 0)
	binary.LittleEndian.PutUint64(dst[16:], p.i1.ref)
	binary.LittleEndian.PutUint64(dst[24:], p.i2.ref)
	off := 32
	for _, r := range []geom.Rect{p.i1.rect, p.i2.rect} {
		for i := 0; i < c.dims; i++ {
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(r.Lo[i]))
			off += 8
		}
		for i := 0; i < c.dims; i++ {
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(r.Hi[i]))
			off += 8
		}
	}
}

// Decode implements pqueue.Codec.
func (c pairCodec) Decode(src []byte) qpair {
	var p qpair
	p.key = math.Float64frombits(binary.LittleEndian.Uint64(src[0:]))
	p.i1.kind = itemKind(src[8])
	p.i1.level = int8(src[9])
	p.i2.kind = itemKind(src[10])
	p.i2.level = int8(src[11])
	p.i1.ref = binary.LittleEndian.Uint64(src[16:])
	p.i2.ref = binary.LittleEndian.Uint64(src[24:])
	off := 32
	for _, r := range []*geom.Rect{&p.i1.rect, &p.i2.rect} {
		lo := make(geom.Point, c.dims)
		hi := make(geom.Point, c.dims)
		for i := 0; i < c.dims; i++ {
			lo[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
			off += 8
		}
		for i := 0; i < c.dims; i++ {
			hi[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
			off += 8
		}
		*r = geom.Rect{Lo: lo, Hi: hi}
	}
	return p
}

// Pair is one result tuple of a distance join: the two object ids, their
// geometry, and their distance. Results are delivered in ascending (or, for
// reverse joins, descending) order of Dist.
type Pair struct {
	Obj1, Obj2   rtree.ObjID
	Rect1, Rect2 geom.Rect
	Dist         float64
}
