package distjoin

import (
	"cmp"
	"context"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/obs"
	"distjoin/internal/profile"
	"distjoin/internal/qtrace"
	"distjoin/internal/stats"
)

// This file implements the parallel execution path of the distance join and
// distance semi-join. The paper's algorithms (Figures 3 and 5) are
// inherently sequential — one priority queue, one executor — but their
// queue-of-pairs design composes naturally with partition-based parallelism
// (Tsitsigkos & Mamoulis, "Parallel In-Memory Evaluation of Spatial Joins"):
// the top of the two trees is split into disjoint slices of the pair space,
// one independent incremental engine runs per slice, and because every
// engine emits ITS OWN results in distance order, a k-way merge of the
// per-partition streams reproduces the global distance order.
//
// Partitioning. Each object lives in exactly one leaf, so the subtrees
// rooted at the children of an index root cover the input disjointly.
// Pairing root children of the first input with the whole second input
// (or, when the first root's fan-out is too small, with the root children
// of the second input) therefore tiles the Cartesian product exactly once.
// Shallow trees need no special grid: when a root is a leaf its "children"
// are the objects themselves, and the same construction applies. Seed pairs
// are dealt round-robin, ordered by minimum distance, so every worker owns
// some near and some far slices of the pair space.
//
// Order-preserving merge. Worker w produces a non-decreasing (by the join
// order; non-increasing for Reverse) stream of result pairs into a bounded
// channel. The merge keeps one head per live stream in a small heap and
// only releases the overall minimum — a pair is delivered exactly when its
// distance is at or inside every live partition's current frontier, so the
// merged stream is ordered precisely like the sequential iterator's.
// Distance ties are broken by (Obj1, Obj2), which matches the sequential
// engine's queue tie-breaking for object pairs; only when two results have
// EXACTLY equal distance can the interleaving differ (the sequential engine
// may emit an equal-distance pair generated later by a node expansion after
// one popped earlier).
//
// The bounded channels double as the speculation limit: a partition whose
// frontier is far away computes at most parallelBuffer results ahead of
// what the merge has released, so a MaxPairs-bounded query does not drag
// every partition to completion.

// parallelBuffer is the per-worker result channel capacity: how far a
// partition may compute ahead of the merge frontier.
const parallelBuffer = 64

// effectiveParallelism resolves Options.Parallelism to a worker count.
func (o *Options) effectiveParallelism() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	default:
		return o.Parallelism
	}
}

// parallelizable reports whether the configuration can run on the parallel
// path. OBR mode is excluded because resolveOBR's report-immediately
// shortcut gives equal-distance results a queue-position-dependent order
// that a distance-keyed merge cannot reproduce (and Fetch/ExactDist
// callbacks would need to be concurrency-safe); the symmetric clustering
// join is excluded because a reported pair consumes objects on BOTH sides,
// coupling every partition to every other.
func parallelizable(opts *Options, semi *semiState) bool {
	if opts.effectiveParallelism() < 2 {
		return false
	}
	if opts.Fetch1 != nil || opts.Fetch2 != nil || opts.ExactDist != nil {
		return false
	}
	if semi != nil && semi.symmetric {
		return false
	}
	return true
}

// planPartitions builds up to `groups` disjoint seed sets covering the
// top-level pair space. For the semi-join only the first input may be
// partitioned (each first object must see the whole second input, which it
// does when its partner item is the second root). For the plain join the
// first root's children are paired with the whole second root when that
// already yields enough partitions, and with the second root's children
// otherwise. Returns nil when the trees are too small to split.
func planPartitions(t1, t2 SpatialIndex, opts *Options, semi bool, groups int) ([][][2]item, error) {
	top := func(t SpatialIndex) (item, []item, error) {
		root, err := t.Root()
		if err != nil {
			return item{}, nil, err
		}
		ri := item{kind: kindNode, level: int8(root.Level), ref: root.Ref, rect: root.Rect}
		n, err := t.Node(root.Ref)
		if err != nil {
			return item{}, nil, err
		}
		return ri, appendNodeItems(nil, n, kindObj), nil
	}
	_, c1, err := top(t1)
	if err != nil {
		return nil, err
	}
	root2, err := t2.Root()
	if err != nil {
		return nil, err
	}
	r2 := item{kind: kindNode, level: int8(root2.Level), ref: root2.Ref, rect: root2.Rect}

	var seeds [][2]item
	if semi || len(c1) >= 2*groups {
		seeds = make([][2]item, 0, len(c1))
		for _, a := range c1 {
			seeds = append(seeds, [2]item{a, r2})
		}
	} else {
		_, c2, err := top(t2)
		if err != nil {
			return nil, err
		}
		seeds = make([][2]item, 0, len(c1)*len(c2))
		for _, a := range c1 {
			for _, b := range c2 {
				seeds = append(seeds, [2]item{a, b})
			}
		}
	}
	if len(seeds) < 2 {
		return nil, nil
	}
	if groups > len(seeds) {
		groups = len(seeds)
	}

	// Deal seeds round-robin in ascending minimum-distance order so each
	// worker owns a mix of near and far slices of the pair space.
	ks := make([]seedKey, len(seeds))
	for i, sp := range seeds {
		ks[i] = seedKey{seed: sp, key: opts.Metric.MinDist(sp[0].rect, sp[1].rect)}
	}
	slices.SortFunc(ks, func(a, b seedKey) int {
		if a.key != b.key {
			return cmp.Compare(a.key, b.key)
		}
		if a.seed[0].ref != b.seed[0].ref {
			return cmp.Compare(a.seed[0].ref, b.seed[0].ref)
		}
		return cmp.Compare(a.seed[1].ref, b.seed[1].ref)
	})
	parts := make([][][2]item, groups)
	for i, k := range ks {
		g := i % groups
		parts[g] = append(parts[g], k.seed)
	}
	return parts, nil
}

// seedKey orders partition seeds by (minimum distance, refs) — a
// deterministic order independent of tree layout accidents.
type seedKey struct {
	seed [2]item
	key  float64
}

// parResult is one element of a worker's output stream.
type parResult struct {
	pair Pair
	err  error
}

// parWorker runs one partition engine on its own goroutine.
type parWorker struct {
	eng     *engine
	out     chan parResult
	shard   *stats.Counters // per-worker counter shard; nil when disabled
	spShard *profile.Spans  // per-worker span shard; nil when disabled
}

// parHead is one stream head tracked by the merge heap.
type parHead struct {
	pair Pair
	src  int
}

// parallelJoin is the runner behind Join/SemiJoin when Options.Parallelism
// selects the parallel path.
type parallelJoin struct {
	workers  []*parWorker
	reverse  bool
	maxPairs int
	maxDist  float64
	user     *stats.Counters // caller's counters, merge target for shards
	obs      *obs.Recorder   // observability; nil when disabled
	sp       *profile.Spans  // caller's spans, merge target + PhaseMerge sink
	q        *qtrace.Query   // per-query trace; nil when tracing is off

	// ctx and ctxDone are the run's cancellation signal (nil channel for
	// a nil or background context — the merge then performs no checks).
	// Each partition engine checks the same context independently, so the
	// first observer — merge or worker — wins and the rest drain through
	// the PR-3 longest-correct-prefix machinery.
	ctx     context.Context
	ctxDone <-chan struct{}

	done     chan struct{} // closed to cancel workers
	stop     sync.Once
	wg       sync.WaitGroup
	heads    []parHead // merge heap of stream heads
	started  bool
	finished bool
	failErr  error // first worker error; sticky, returned by every later next
	nOut     int   // pairs delivered to the caller

	anyRestart atomic.Bool
	closeMu    sync.Mutex
	closeErr   error
}

// newParallelJoin builds the partition engines and starts the workers. The
// caller has already validated opts and established that both inputs are
// non-empty and the configuration is parallelizable. Returns (nil, nil)
// when the trees have too little top-level fan-out to split — the caller
// falls back to the sequential engine.
func newParallelJoin(t1, t2 SpatialIndex, opts Options, semiProto *semiState) (*parallelJoin, error) {
	parts, err := planPartitions(t1, t2, &opts, semiProto != nil, opts.effectiveParallelism())
	if err != nil {
		return nil, err
	}
	if len(parts) < 2 {
		return nil, nil
	}
	r := &parallelJoin{
		reverse:  opts.Reverse,
		maxPairs: opts.MaxPairs,
		maxDist:  opts.MaxDist,
		user:     opts.Counters,
		obs:      opts.Obs,
		sp:       opts.Profile,
		q:        opts.query,
		done:     make(chan struct{}),
	}
	if opts.Context != nil {
		r.ctx = opts.Context
		r.ctxDone = opts.Context.Done()
	}
	r.obs.SetPartitions(len(parts))
	for pi, seeds := range parts {
		w := &parWorker{out: make(chan parResult, parallelBuffer)}
		wopts := opts
		if opts.Counters != nil {
			w.shard = &stats.Counters{}
			wopts.Counters = w.shard
		}
		// The engine's delta-subtraction span accounting requires a
		// single-writer Spans, so each worker records into its own shard.
		if opts.Profile != nil {
			w.spShard = &profile.Spans{}
			wopts.Profile = w.spShard
		}
		var wsemi *semiState
		if semiProto != nil {
			wsemi = &semiState{filter: semiProto.filter, k: semiProto.k, symmetric: semiProto.symmetric}
		}
		eng, err := newEngineSeeded(t1, t2, wopts, wsemi, seeds, int32(pi))
		if err != nil {
			for _, prev := range r.workers {
				prev.eng.close()
			}
			return nil, err
		}
		w.eng = eng
		r.workers = append(r.workers, w)
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go r.run(w)
	}
	return r, nil
}

// run drives one partition engine to exhaustion (or cancellation), then
// releases its resources and folds its counter shard into the caller's.
func (r *parallelJoin) run(w *parWorker) {
	defer r.wg.Done()
	defer func() {
		if w.eng.restarted {
			r.anyRestart.Store(true)
		}
		if err := w.eng.close(); err != nil {
			r.setCloseErr(err)
		}
		if w.shard != nil {
			r.user.Merge(w.shard)
		}
		if w.spShard != nil {
			r.sp.Merge(w.spShard)
		}
	}()
	defer close(w.out)
	for {
		p, ok, err := w.eng.next()
		if err != nil {
			select {
			case w.out <- parResult{err: err}:
			case <-r.done:
			}
			return
		}
		if !ok {
			return
		}
		select {
		case w.out <- parResult{pair: p}:
		case <-r.done:
			return
		}
	}
}

func (r *parallelJoin) setCloseErr(err error) {
	r.closeMu.Lock()
	defer r.closeMu.Unlock()
	if r.closeErr == nil {
		r.closeErr = err
	}
}

// headLess orders stream heads exactly like the sequential engine orders
// reportable object pairs: by distance (inverted for Reverse), then by the
// two object references.
func (r *parallelJoin) headLess(a, b parHead) bool {
	if a.pair.Dist != b.pair.Dist {
		if r.reverse {
			return a.pair.Dist > b.pair.Dist
		}
		return a.pair.Dist < b.pair.Dist
	}
	if a.pair.Obj1 != b.pair.Obj1 {
		return a.pair.Obj1 < b.pair.Obj1
	}
	return a.pair.Obj2 < b.pair.Obj2
}

// pushHead inserts a stream head into the merge heap.
func (r *parallelJoin) pushHead(h parHead) {
	r.heads = append(r.heads, h)
	i := len(r.heads) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !r.headLess(r.heads[i], r.heads[parent]) {
			break
		}
		r.heads[i], r.heads[parent] = r.heads[parent], r.heads[i]
		i = parent
	}
}

// popHead removes and returns the minimum stream head.
func (r *parallelJoin) popHead() parHead {
	top := r.heads[0]
	last := len(r.heads) - 1
	r.heads[0] = r.heads[last]
	r.heads = r.heads[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < len(r.heads) && r.headLess(r.heads[l], r.heads[smallest]) {
			smallest = l
		}
		if rt < len(r.heads) && r.headLess(r.heads[rt], r.heads[smallest]) {
			smallest = rt
		}
		if smallest == i {
			return top
		}
		r.heads[i], r.heads[smallest] = r.heads[smallest], r.heads[i]
		i = smallest
	}
}

// pull blocks for the next result of worker src and pushes it onto the
// heap; a closed stream simply drops out of the merge. When a recorder is
// attached, a pull that would block records a merge stall against the
// awaited partition — the progress-skew signal of partitioned joins.
func (r *parallelJoin) pull(src int) error {
	var res parResult
	var ok bool
	if r.obs == nil {
		res, ok = <-r.workers[src].out
	} else {
		select {
		case res, ok = <-r.workers[src].out:
		default:
			r.obs.MergeStall(int32(src))
			res, ok = <-r.workers[src].out
		}
	}
	if !ok {
		return nil
	}
	if res.err != nil {
		return res.err
	}
	r.pushHead(parHead{pair: res.pair, src: src})
	return nil
}

// next wraps the merge in the PhaseMerge bracket when profiling is on. The
// bracket includes the time the merge blocks waiting for partition workers
// to produce — the coordination overhead of the parallel path — recorded
// directly on the caller's Spans (a simple Add, safe alongside the workers'
// concurrent shard merges).
func (r *parallelJoin) next() (Pair, bool, error) {
	if r.sp == nil && r.q == nil {
		return r.merge()
	}
	start := time.Now()
	p, ok, err := r.merge()
	d := time.Since(start)
	r.sp.Add(profile.PhaseMerge, d)
	r.q.MergeAdd(d)
	return p, ok, err
}

// merge implements the order-preserving merge. A worker error cancels the
// sibling partitions, is latched, and is returned from this and every
// later call — an errored merge never reports a clean exhaustion.
func (r *parallelJoin) merge() (Pair, bool, error) {
	if r.failErr != nil {
		return Pair{}, false, r.failErr
	}
	if r.finished {
		return Pair{}, false, nil
	}
	// Cancellation check, per merge call: fail cancels the sibling
	// workers (close(done) unblocks any worker parked on a full out
	// channel) and waits for them to release their engines, so a canceled
	// parallel join leaves no goroutines and no queue resources behind.
	if r.ctxDone != nil {
		select {
		case <-r.ctxDone:
			return Pair{}, false, r.fail(canceledErr(r.ctx))
		default:
		}
	}
	if !r.started {
		r.started = true
		for i := range r.workers {
			if err := r.pull(i); err != nil {
				return Pair{}, false, r.fail(err)
			}
		}
	}
	if r.maxPairs > 0 && r.nOut >= r.maxPairs {
		r.finish()
		return Pair{}, false, nil
	}
	if len(r.heads) == 0 {
		r.finish()
		return Pair{}, false, nil
	}
	h := r.popHead()
	if err := r.pull(h.src); err != nil {
		// h.pair is the minimum over every stream (each is nondecreasing),
		// so it is still safe to deliver: the caller gets the longest
		// correct prefix, and the latched error on the next call.
		r.fail(err)
		r.nOut++
		r.obs.Deliver(h.pair.Dist)
		return h.pair, true, nil
	}
	r.nOut++
	r.obs.Deliver(h.pair.Dist)
	if r.maxPairs > 0 && r.nOut >= r.maxPairs {
		r.finish()
	}
	return h.pair, true, nil
}

// finish cancels outstanding work and waits for the workers to release
// their engines (queues, scratch files, counter shards).
func (r *parallelJoin) finish() {
	r.finished = true
	r.stop.Do(func() { close(r.done) })
	r.wg.Wait()
}

// fail is finish for the error path: cancel the siblings, wait for them
// to exit, and latch the error.
func (r *parallelJoin) fail(err error) error {
	if r.failErr == nil {
		r.failErr = err
	}
	r.finish()
	return err
}

// close implements runner.
func (r *parallelJoin) close() error {
	r.finish()
	r.closeMu.Lock()
	defer r.closeMu.Unlock()
	return r.closeErr
}

// reportedCount implements runner: the number of pairs delivered by the
// merge (the per-engine counts include speculative buffered results).
func (r *parallelJoin) reportedCount() int { return r.nOut }

// queueLen implements runner. The partition queues belong to running
// goroutines and cannot be inspected safely, so the parallel diagnostic is
// the number of produced-but-undelivered results: merge heads plus pairs
// buffered in the worker channels.
func (r *parallelJoin) queueLen() int {
	n := len(r.heads)
	for _, w := range r.workers {
		n += len(w.out)
	}
	return n
}

// effectiveMaxDist implements runner. Each partition tightens its own
// bound concurrently; the configured maximum is the only stable global
// value.
func (r *parallelJoin) effectiveMaxDist() float64 { return r.maxDist }

// didRestart implements runner: whether any partition used the §2.2.4
// restart.
func (r *parallelJoin) didRestart() bool { return r.anyRestart.Load() }
