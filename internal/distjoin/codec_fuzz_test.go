package distjoin

import (
	"bytes"
	"testing"
)

// FuzzPairCodec round-trips arbitrary bytes through the disk-tier pair
// codec: Decode must never panic on a full-size buffer, and
// Encode(Decode(x)) must be a fixed point (bit-for-bit, so NaN payloads
// and infinities survive a spill to disk unchanged). The padding word is
// the only bytes Encode is allowed to normalize.
func FuzzPairCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 160))
	f.Add([]byte{1, 2, 3, 0x7F, 0xF0, 0, 0, 0, 0, 0, 0, 1}) // Inf-ish key bits
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, dims := range []int{1, 2, 3, 5} {
			c := pairCodec{dims: dims}
			buf := make([]byte, c.Size())
			copy(buf, data) // pad/trim: the codec contract is exactly Size() bytes
			p := c.Decode(buf)
			enc := make([]byte, c.Size())
			c.Encode(enc, p)
			p2 := c.Decode(enc)
			enc2 := make([]byte, c.Size())
			c.Encode(enc2, p2)
			if !bytes.Equal(enc, enc2) {
				t.Fatalf("dims=%d: encode/decode is not a fixed point:\n  first  %x\n  second %x", dims, enc, enc2)
			}
			// Everything outside the padding word must round-trip from the
			// original bytes too.
			if !bytes.Equal(buf[:12], enc[:12]) || !bytes.Equal(buf[16:], enc[16:]) {
				t.Fatalf("dims=%d: lossy round trip:\n  in  %x\n  out %x", dims, buf, enc)
			}
		}
	})
}
