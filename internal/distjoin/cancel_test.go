package distjoin

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"distjoin/internal/faultstore"
	"distjoin/internal/pager"
	"distjoin/internal/pqueue"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// ---------------------------------------------------------------------------
// Cancellation sweep: the stop-anytime dual of the fault harness. A canceled
// run must deliver exactly the ordered prefix it was allowed to produce,
// then latch a sticky ErrCanceled — never a wrong pair, never a hang, never
// a leaked goroutine or pinned pager frame.
// ---------------------------------------------------------------------------

// cancelIter is the common surface of Join and SemiJoin the sweep needs.
type cancelIter interface {
	Next() (Pair, bool, error)
	Close() error
	Err() error
}

// runnerOf exposes the execution strategy behind an iterator for white-box
// assertions (hybrid-queue pin counts on the sequential path).
func runnerOf(it cancelIter) runner {
	switch v := it.(type) {
	case *Join:
		return v.s.r
	case *SemiJoin:
		return v.s.r
	}
	return nil
}

// assertNoPinnedFrames checks that a sequential hybrid engine holds no
// buffer-pool pins while quiescent — a cancellation that struck mid-pop or
// mid-retry must not abandon a pinned frame.
func assertNoPinnedFrames(t *testing.T, it cancelIter) {
	t.Helper()
	e, ok := runnerOf(it).(*engine)
	if !ok {
		return
	}
	if hq, ok := e.q.(*pqueue.HybridQueue[qpair]); ok {
		if n := hq.PinnedFrames(); n != 0 {
			t.Fatalf("%d pager frames still pinned after cancellation", n)
		}
	}
}

// drainReference runs one configuration to completion with no context and
// returns the full delivered stream as the oracle for canceled prefixes.
func drainReference(t *testing.T, mk func(opts Options) (cancelIter, error), opts Options) []Pair {
	t.Helper()
	it, err := mk(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var ref []Pair
	for {
		p, ok, err := it.Next()
		if err != nil {
			t.Fatalf("reference run failed after %d pairs: %v", len(ref), err)
		}
		if !ok {
			return ref
		}
		ref = append(ref, p)
	}
}

// checkCanceledPrefix asserts got is a correct ordered prefix of ref:
// distances match positionally (so tie reorderings between runs cannot
// produce spurious failures) and every delivered pair exists in ref at its
// reported distance, with no duplicates.
func checkCanceledPrefix(t *testing.T, got, ref []Pair) {
	t.Helper()
	if len(got) > len(ref) {
		t.Fatalf("canceled run delivered %d pairs, reference has %d", len(got), len(ref))
	}
	byPair := make(map[[2]rtree.ObjID]float64, len(ref))
	for _, p := range ref {
		byPair[[2]rtree.ObjID{p.Obj1, p.Obj2}] = p.Dist
	}
	seen := make(map[[2]rtree.ObjID]bool, len(got))
	for i, p := range got {
		if math.Abs(p.Dist-ref[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: dist %g, reference %g — not the ordered prefix", i, p.Dist, ref[i].Dist)
		}
		key := [2]rtree.ObjID{p.Obj1, p.Obj2}
		d, ok := byPair[key]
		if !ok {
			t.Fatalf("pair %d: (%d,%d) not in the reference result", i, p.Obj1, p.Obj2)
		}
		if math.Abs(p.Dist-d) > 1e-9 {
			t.Fatalf("pair %d: (%d,%d) at %g, true distance %g", i, p.Obj1, p.Obj2, p.Dist, d)
		}
		if seen[key] {
			t.Fatalf("pair %d: (%d,%d) delivered twice", i, p.Obj1, p.Obj2)
		}
		seen[key] = true
	}
}

// TestCancellationSweep is the acceptance sweep: cancel at evenly spread
// points of the stream across {join, semijoin, knn} × {memory, hybrid} ×
// {sequential, parallel}, 100+ cancellation points total. At every point the
// delivered pairs must be the exact ordered prefix, the very next Next must
// surface ErrCanceled (bounded cancel latency: the check sits at the top of
// every step), the error must be sticky, the cancellation must be counted
// once, and nothing may leak.
func TestCancellationSweep(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	a := clusteredPoints(901, 55)
	b := clusteredPoints(902, 65)
	ta, tb := buildTree(t, a), buildTree(t, b)

	kinds := []struct {
		name string
		mk   func(opts Options) (cancelIter, error)
	}{
		{"join", func(opts Options) (cancelIter, error) {
			opts.MaxPairs = 400
			return NewJoin(ta, tb, opts)
		}},
		{"semijoin", func(opts Options) (cancelIter, error) {
			return NewSemiJoin(ta, tb, FilterGlobalAll, opts)
		}},
		{"knn", func(opts Options) (cancelIter, error) {
			return NewKNearestJoin(ta, tb, 3, FilterGlobalAll, opts)
		}},
	}
	queues := []queueConfig{
		{"mem", func(o *Options) { o.Queue = QueueMemory }},
		{"hybrid", func(o *Options) {
			o.Queue = QueueHybrid
			o.HybridDT = 20
			o.HybridInMemory = true
		}},
	}

	const pointsPerConfig = 10
	totalPoints := 0
	for _, kd := range kinds {
		for _, qc := range queues {
			for _, par := range []int{1, 3} {
				p := "seq"
				if par > 1 {
					p = "par"
				}
				kd, qc, par := kd, qc, par
				t.Run(fmt.Sprintf("%s/%s/%s", kd.name, qc.name, p), func(t *testing.T) {
					base := Options{Parallelism: par}
					qc.apply(&base)
					ref := drainReference(t, kd.mk, base)
					if len(ref) < pointsPerConfig {
						t.Fatalf("reference run too small: %d pairs", len(ref))
					}
					for i := 0; i < pointsPerConfig; i++ {
						cut := i * len(ref) / pointsPerConfig
						totalPoints++
						ctx, cancel := context.WithCancel(context.Background())
						opts := base
						opts.Context = ctx
						opts.Counters = &stats.Counters{}
						it, err := kd.mk(opts)
						if err != nil {
							cancel()
							t.Fatal(err)
						}
						var got []Pair
						for len(got) < cut {
							p, ok, err := it.Next()
							if err != nil || !ok {
								cancel()
								t.Fatalf("cut %d: run ended early at %d pairs (ok=%v err=%v)", cut, len(got), ok, err)
							}
							got = append(got, p)
						}
						cancel()
						// Bounded cancel latency: the very next Next after the
						// cancel must surface the error — no extra pairs.
						_, ok, err := it.Next()
						if ok || err == nil {
							t.Fatalf("cut %d: Next after cancel returned ok=%v err=%v", cut, ok, err)
						}
						if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
							t.Fatalf("cut %d: error %v does not wrap ErrCanceled and context.Canceled", cut, err)
						}
						// Sticky terminal state: repeated Next and Err agree.
						if _, _, again := it.Next(); !errors.Is(again, err) {
							t.Fatalf("cut %d: error not latched: %v then %v", cut, err, again)
						}
						if le := it.Err(); !errors.Is(le, ErrCanceled) {
							t.Fatalf("cut %d: Err() = %v, want ErrCanceled", cut, le)
						}
						checkCanceledPrefix(t, got, ref)
						assertNoPinnedFrames(t, it)
						if err := it.Close(); err != nil {
							t.Fatalf("cut %d: close after cancel: %v", cut, err)
						}
						if n := opts.Counters.Snapshot().Cancellations; n != 1 {
							t.Fatalf("cut %d: Cancellations = %d, want 1", cut, n)
						}
					}
				})
			}
		}
	}
	if totalPoints < 100 {
		t.Fatalf("sweep exercised %d cancellation points, acceptance requires 100+", totalPoints)
	}
	waitForGoroutines(t, goroutinesBefore)
}

// TestDeadlineCancellation checks the deadline flavour: a context that times
// out mid-run surfaces an error wrapping both ErrCanceled and
// context.DeadlineExceeded, and context.Cause's verdict rides along.
func TestDeadlineCancellation(t *testing.T) {
	a := clusteredPoints(903, 80)
	b := clusteredPoints(904, 90)
	ta, tb := buildTree(t, a), buildTree(t, b)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	j, err := NewJoin(ta, tb, Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var n int
	for {
		_, ok, err := j.Next()
		if err != nil {
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error %v does not wrap ErrCanceled and DeadlineExceeded", err)
			}
			return
		}
		if !ok {
			t.Skip("join exhausted before the 1ms deadline fired")
		}
		n++
		// Park until the deadline has certainly lapsed; the next step's
		// cancel check must then fire.
		if n == 1 {
			<-ctx.Done()
		}
	}
}

// TestCancelCausePropagates checks that a custom cancellation cause set via
// context.WithCancelCause is preserved on the surfaced error chain.
func TestCancelCausePropagates(t *testing.T) {
	a := clusteredPoints(905, 40)
	b := clusteredPoints(906, 40)
	ta, tb := buildTree(t, a), buildTree(t, b)

	reason := errors.New("operator killed the query")
	ctx, cancel := context.WithCancelCause(context.Background())
	j, err := NewJoin(ta, tb, Options{Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, err := j.Next(); err != nil {
		t.Fatal(err)
	}
	cancel(reason)
	if _, _, err := j.Next(); !errors.Is(err, reason) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not carry the cancellation cause", err)
	}
}

// TestCancelInterruptsRetryBackoff wires a huge retry backoff against a
// permanently failing hybrid-queue store and cancels mid-ladder: the engine
// context must cut the backoff sleep short (pager.ErrRetryInterrupted under
// the hood) and surface ErrCanceled promptly instead of sleeping out the
// ladder — and no pager frame may stay pinned behind it.
func TestCancelInterruptsRetryBackoff(t *testing.T) {
	a := clusteredPoints(907, 60)
	b := clusteredPoints(908, 70)
	ta, tb := buildTree(t, a), buildTree(t, b)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{
		Context:       ctx,
		Queue:         QueueHybrid,
		HybridDT:      4,
		QueuePageSize: 256,
		// A ladder that would sleep for minutes if uninterrupted.
		RetryIO: pager.RetryPolicy{MaxAttempts: 1000, Backoff: 10 * time.Second},
		QueueStore: func(pageSize int) (pager.Store, error) {
			mem, err := pager.NewMemStore(pageSize)
			if err != nil {
				return nil, err
			}
			return faultstore.New(mem, faultstore.Config{
				Seed:               909,
				TransientWriteProb: 1, // every write fails: the retry ladder engages at once
			}), nil
		},
	}
	j, err := NewJoin(ta, tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Cancel while the engine is (almost certainly) in its first backoff.
	time.AfterFunc(50*time.Millisecond, func() { cancel() })
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		for {
			_, ok, err := j.Next()
			if err != nil || !ok {
				done <- err
				return
			}
		}
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("interrupted retry surfaced %v, want ErrCanceled", err)
		}
		if !errors.Is(err, pager.ErrRetryInterrupted) && !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v names neither the interrupted ladder nor the canceled context", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("cancellation took %v to cut the backoff ladder", d)
		}
		assertNoPinnedFrames(t, j)
	case <-time.After(testTimeout):
		t.Fatalf("canceled retry ladder still sleeping after %v", testTimeout)
	}
}

// TestCanceledParallelJoinLeaksNothing cancels a parallel hybrid join
// mid-stream and asserts the merge surfaces ErrCanceled, every partition
// worker exits, and Close is clean — the longest-correct-prefix drain of a
// failed parallel run, driven by cancellation instead of a fault.
func TestCanceledParallelJoinLeaksNothing(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	a := clusteredPoints(910, 120)
	b := clusteredPoints(911, 140)
	ta, tb := buildTree(t, a), buildTree(t, b)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j, err := NewJoin(ta, tb, Options{
		Context:        ctx,
		Parallelism:    4,
		Queue:          QueueHybrid,
		HybridDT:       8,
		HybridInMemory: true,
		QueuePageSize:  512,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("pair %d: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	if _, ok, err := j.Next(); ok || !errors.Is(err, ErrCanceled) {
		t.Fatalf("Next after cancel: ok=%v err=%v", ok, err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close after cancel: %v", err)
	}
	waitForGoroutines(t, goroutinesBefore)
}

// TestBackgroundContextZeroCost pins the zero-overhead claim structurally: a
// nil Options.Context and an explicit context.Background() both leave the
// engine's cancellation channel nil, so the hot loop's only cost is one nil
// test.
func TestBackgroundContextZeroCost(t *testing.T) {
	a := clusteredPoints(912, 30)
	b := clusteredPoints(913, 30)
	ta, tb := buildTree(t, a), buildTree(t, b)

	for _, tc := range []struct {
		name string
		ctx  context.Context
	}{
		{"nil", nil},
		{"background", context.Background()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			j, err := NewJoin(ta, tb, Options{Context: tc.ctx})
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			e, ok := runnerOf(j).(*engine)
			if !ok {
				t.Fatal("sequential join did not use the sequential engine")
			}
			if e.ctxDone != nil {
				t.Fatal("background context produced a non-nil cancellation channel — hot path would pay for it")
			}
			if _, ok, err := j.Next(); err != nil || !ok {
				t.Fatalf("Next: ok=%v err=%v", ok, err)
			}
		})
	}
}
