package distjoin

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

func TestJoinWithWindows(t *testing.T) {
	a := clusteredPoints(51, 200)
	b := clusteredPoints(52, 200)
	ta, tb := buildTree(t, a), buildTree(t, b)
	w1 := geom.R(geom.Pt(100, 100), geom.Pt(600, 600))
	w2 := geom.R(geom.Pt(0, 0), geom.Pt(500, 900))
	j, err := NewJoin(ta, tb, Options{Window1: &w1, Window2: &w2})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)

	// Brute force over the restricted sets.
	var want []bruteResult
	for i, p := range a {
		if !w1.ContainsPoint(p) {
			continue
		}
		for k, q := range b {
			if !w2.ContainsPoint(q) {
				continue
			}
			want = append(want, bruteResult{i: i, j: k, d: geom.Euclidean.Dist(p, q)})
		}
	}
	sort.Slice(want, func(x, y int) bool { return want[x].d < want[y].d })
	if len(got) != len(want) {
		t.Fatalf("windowed join: %d pairs, want %d", len(got), len(want))
	}
	assertDistancesMatch(t, got, want)
	for _, p := range got {
		if !w1.ContainsPoint(a[p.Obj1]) || !w2.ContainsPoint(b[p.Obj2]) {
			t.Fatalf("pair (%d, %d) escapes its window", p.Obj1, p.Obj2)
		}
	}
}

func TestJoinWithSelectPredicates(t *testing.T) {
	a := clusteredPoints(53, 150)
	b := clusteredPoints(54, 150)
	ta, tb := buildTree(t, a), buildTree(t, b)
	sel1 := func(id rtree.ObjID) bool { return id%3 == 0 }
	sel2 := func(id rtree.ObjID) bool { return id%2 == 1 }
	j, err := NewJoin(ta, tb, Options{Select1: sel1, Select2: sel2})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	var want []bruteResult
	for i, p := range a {
		if i%3 != 0 {
			continue
		}
		for k, q := range b {
			if k%2 != 1 {
				continue
			}
			want = append(want, bruteResult{i: i, j: k, d: geom.Euclidean.Dist(p, q)})
		}
	}
	sort.Slice(want, func(x, y int) bool { return want[x].d < want[y].d })
	if len(got) != len(want) {
		t.Fatalf("selective join: %d pairs, want %d", len(got), len(want))
	}
	assertDistancesMatch(t, got, want)
	for _, p := range got {
		if p.Obj1%3 != 0 || p.Obj2%2 != 1 {
			t.Fatalf("pair (%d, %d) violates predicates", p.Obj1, p.Obj2)
		}
	}
}

func TestSemiJoinWithWindowAndSelect(t *testing.T) {
	a := clusteredPoints(55, 150)
	b := clusteredPoints(56, 200)
	ta, tb := buildTree(t, a), buildTree(t, b)
	w2 := geom.R(geom.Pt(0, 0), geom.Pt(600, 600))
	sel1 := func(id rtree.ObjID) bool { return id%2 == 0 }
	s, err := NewSemiJoin(ta, tb, FilterGlobalAll, Options{Select1: sel1, Window2: &w2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	// Brute force: even-id objects of a, nearest among b ∩ window.
	var want []float64
	for i, p := range a {
		if i%2 != 0 {
			continue
		}
		best := math.Inf(1)
		for _, q := range b {
			if !w2.ContainsPoint(q) {
				continue
			}
			if d := geom.Euclidean.Dist(p, q); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			want = append(want, best)
		}
	}
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("restricted semi-join: %d pairs, want %d", len(got), len(want))
	}
	for i, p := range got {
		if math.Abs(p.Dist-want[i]) > 1e-9 {
			t.Fatalf("pair %d: %g want %g", i, p.Dist, want[i])
		}
	}
}

// TestIntersectionOrdering exercises the §2.2.5 secondary-ordering mode on
// rectangle objects: only intersecting pairs, ordered by distance of the
// intersection from an anchor point.
func TestIntersectionOrdering(t *testing.T) {
	rnd := rand.New(rand.NewSource(57))
	mkRects := func(n int, seed int64) []geom.Rect {
		r := rand.New(rand.NewSource(seed))
		out := make([]geom.Rect, n)
		for i := range out {
			x, y := r.Float64()*500, r.Float64()*500
			out[i] = geom.R(geom.Pt(x, y), geom.Pt(x+5+r.Float64()*30, y+5+r.Float64()*30))
		}
		return out
	}
	ra, rb := mkRects(120, 58), mkRects(120, 59)
	mkTree := func(rects []geom.Rect) *rtree.Tree {
		items := make([]rtree.Item, len(rects))
		for i, r := range rects {
			items[i] = rtree.Item{Rect: r, Obj: rtree.ObjID(i)}
		}
		tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	ta, tb := mkTree(ra), mkTree(rb)
	anchor := geom.Pt(rnd.Float64()*500, rnd.Float64()*500)

	j, err := NewJoin(ta, tb, Options{OrderIntersectionsFrom: anchor})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)

	// Brute force: intersecting pairs keyed by anchor distance of the
	// intersection.
	var want []float64
	for _, p := range ra {
		for _, q := range rb {
			if x, ok := p.Intersection(q); ok {
				want = append(want, geom.Euclidean.MinDistPR(anchor, x))
			}
		}
	}
	sort.Float64s(want)
	if len(got) != len(want) {
		t.Fatalf("intersection join: %d pairs, want %d", len(got), len(want))
	}
	for i, p := range got {
		if math.Abs(p.Dist-want[i]) > 1e-9 {
			t.Fatalf("pair %d: key %g, want %g", i, p.Dist, want[i])
		}
		// The reported pair must genuinely intersect.
		if !ra[p.Obj1].Intersects(rb[p.Obj2]) {
			t.Fatalf("pair (%d, %d) does not intersect", p.Obj1, p.Obj2)
		}
	}
}

func TestIntersectionOrderingValidation(t *testing.T) {
	ta := buildTree(t, clusteredPoints(60, 10))
	tb := buildTree(t, clusteredPoints(61, 10))
	anchor := geom.Pt(0, 0)
	bad := []Options{
		{OrderIntersectionsFrom: anchor, Reverse: true},
		{OrderIntersectionsFrom: anchor, MaxPairs: 5},
		{OrderIntersectionsFrom: anchor, MaxDist: 10},
		{OrderIntersectionsFrom: geom.Pt(1, 2, 3)},
	}
	for i, o := range bad {
		if _, err := NewJoin(ta, tb, o); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewSemiJoin(ta, tb, FilterInside2, Options{OrderIntersectionsFrom: anchor}); err == nil {
		t.Error("semi-join with intersection ordering accepted")
	}
}

func TestWindowValidation(t *testing.T) {
	ta := buildTree(t, clusteredPoints(62, 10))
	tb := buildTree(t, clusteredPoints(63, 10))
	bad := geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}
	if _, err := NewJoin(ta, tb, Options{Window1: &bad}); err == nil {
		t.Error("invalid window accepted")
	}
	wrongDim := geom.R(geom.Pt(0), geom.Pt(1))
	if _, err := NewJoin(ta, tb, Options{Window2: &wrongDim}); err == nil {
		t.Error("wrong-dimension window accepted")
	}
}

func TestWindowExcludesEverything(t *testing.T) {
	ta := buildTree(t, clusteredPoints(64, 50))
	tb := buildTree(t, clusteredPoints(65, 50))
	w := geom.R(geom.Pt(-100, -100), geom.Pt(-50, -50))
	j, err := NewJoin(ta, tb, Options{Window1: &w})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, ok, _ := j.Next(); ok {
		t.Fatal("empty window produced a pair")
	}
}

// TestJoinRestartWithSelection forces the §2.2.4 restart on a PLAIN join:
// attribute selection makes the minimum-fan-out counting overcount, the
// estimation over-tightens, and the engine must transparently restart and
// still deliver exactly MaxPairs correct results.
func TestJoinRestartWithSelection(t *testing.T) {
	a := clusteredPoints(81, 150)
	b := clusteredPoints(82, 150)
	ta, tb := buildTree(t, a), buildTree(t, b)
	// Keep 1 in 25 objects: subtree counts overstate qualifying pairs 625x.
	sel := func(id rtree.ObjID) bool { return id%25 == 0 }
	var want []bruteResult
	for i, p := range a {
		if i%25 != 0 {
			continue
		}
		for k, q := range b {
			if k%25 != 0 {
				continue
			}
			want = append(want, bruteResult{i: i, j: k, d: geom.Euclidean.Dist(p, q)})
		}
	}
	sort.Slice(want, func(x, y int) bool { return want[x].d < want[y].d })

	restartSeen := false
	for _, k := range []int{1, 5, 20, len(want)} {
		j, err := NewJoin(ta, tb, Options{Select1: sel, Select2: sel, MaxPairs: k})
		if err != nil {
			t.Fatal(err)
		}
		got := drainJoin(t, j, 0)
		if j.Restarted() {
			restartSeen = true
		}
		j.Close()
		if len(got) != k {
			t.Fatalf("MaxPairs=%d delivered %d", k, len(got))
		}
		for i, p := range got {
			if math.Abs(p.Dist-want[i].d) > 1e-9 {
				t.Fatalf("MaxPairs=%d pair %d: %g want %g", k, i, p.Dist, want[i].d)
			}
		}
	}
	// At least one of the runs should have exercised the restart; if the
	// estimator happens to stay sound on this data the test still validates
	// correctness, so only log.
	if !restartSeen {
		t.Log("restart path not triggered on this data (results still verified)")
	}
}
