package distjoin

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"distjoin/internal/faultstore"
	"distjoin/internal/geom"
	"distjoin/internal/pager"
	"distjoin/internal/pqueue"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// ---------------------------------------------------------------------------
// Differential correctness harness: the engine versus a brute-force oracle,
// under randomized workloads × queue configurations × fault schedules. The
// invariant is absolute: the delivered stream is always a correct ordered
// prefix of the oracle result — matching it completely when no error
// surfaces, and ending in a sticky, surfaced error otherwise. Never wrong,
// never silently truncated, never hung.
// ---------------------------------------------------------------------------

// harnessCase is one engine run: drain everything, note the terminal error.
type harnessResult struct {
	pairs []Pair
	err   error
}

// testTimeout bounds one engine run; a case that exceeds it is a hang.
const testTimeout = 30 * time.Second

// quickRetry is a retry policy that never sleeps.
func quickRetry(attempts int) pager.RetryPolicy {
	return pager.RetryPolicy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
}

// buildFaultTree bulk-loads pts over a fault-injecting store (disarmed
// during the build so the fixture itself is sound, armed afterwards). A
// tiny buffer pool forces physical reads during the join, so the fault
// schedule actually fires.
func buildFaultTree(t *testing.T, pts []geom.Point, cfg faultstore.Config, retry bool) (*rtree.Tree, *faultstore.Store) {
	t.Helper()
	mem, err := pager.NewMemStore(512)
	if err != nil {
		t.Fatal(err)
	}
	fs := faultstore.New(mem, cfg)
	fs.SetArmed(false)
	var store pager.Store = fs
	if retry {
		store = pager.NewRetryStore(fs, quickRetry(8))
	}
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 4, Store: store}, items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr, fs
}

// faultSchedule describes where faults land for one case family.
type faultSchedule struct {
	name string
	// queueFaults configures the hybrid queue's disk-tier store (zero
	// Config means a clean store). Only hybrid queue configs exercise it.
	queueFaults faultstore.Config
	// treeFaults configures the second tree's store; treeRetry wraps that
	// store in a RetryStore.
	treeFaults *faultstore.Config
	treeRetry  bool
	// retry is the engine's Options.RetryIO for the queue store.
	retry pager.RetryPolicy
	// mustComplete asserts the run finishes with no error at all (clean
	// schedules and fully-retried transient schedules).
	mustComplete bool
}

func harnessSchedules() []faultSchedule {
	return []faultSchedule{
		{name: "clean", mustComplete: true},
		{
			name:         "transient-retried",
			queueFaults:  faultstore.Config{TransientReadProb: 0.08, TransientWriteProb: 0.08},
			retry:        quickRetry(12),
			mustComplete: true,
		},
		{
			name:        "transient-unretried",
			queueFaults: faultstore.Config{TransientReadProb: 0.35, TransientWriteProb: 0.35},
		},
		{
			name:        "permanent-at-n",
			queueFaults: faultstore.Config{FailWriteAt: 7, FailReadAt: 5},
			retry:       quickRetry(4),
		},
		{
			name:        "corrupt-at-n",
			queueFaults: faultstore.Config{CorruptReadAt: 3},
		},
		{
			name:        "crash-after-ops",
			queueFaults: faultstore.Config{CrashAfterOps: 40},
			retry:       quickRetry(4),
		},
		{
			name:       "tree-crash",
			treeFaults: &faultstore.Config{CrashAfterOps: 300},
		},
		{
			name:         "tree-transient-retried",
			treeFaults:   &faultstore.Config{TransientReadProb: 0.1},
			treeRetry:    true,
			mustComplete: true,
		},
	}
}

// queueConfig is one priority-queue configuration under test.
type queueConfig struct {
	name  string
	apply func(o *Options)
}

func harnessQueues() []queueConfig {
	return []queueConfig{
		{"mem", func(o *Options) { o.Queue = QueueMemory }},
		{"hybrid", func(o *Options) {
			o.Queue = QueueHybrid
			o.HybridDT = 60
		}},
		{"spill", func(o *Options) { // tiny DT + small pages: disk-tier heavy
			o.Queue = QueueHybrid
			o.HybridDT = 4
			o.QueuePageSize = 256
		}},
	}
}

// checkOracle asserts the delivered stream is a correct ordered prefix of
// the oracle (which is already MaxDist-filtered and distance-sorted).
func checkOracle(t *testing.T, got []Pair, oracle []bruteResult, res harnessResult, wantN int, mustComplete bool) {
	t.Helper()
	if len(got) > wantN {
		t.Fatalf("delivered %d pairs, result has only %d", len(got), wantN)
	}
	byPair := make(map[[2]rtree.ObjID]float64, len(oracle))
	for _, r := range oracle {
		byPair[[2]rtree.ObjID{rtree.ObjID(r.i), rtree.ObjID(r.j)}] = r.d
	}
	seen := make(map[[2]rtree.ObjID]bool, len(got))
	last := math.Inf(-1)
	for i, p := range got {
		if math.Abs(p.Dist-oracle[i].d) > 1e-9 {
			t.Fatalf("pair %d: dist %g, oracle %g — stream is not the oracle prefix", i, p.Dist, oracle[i].d)
		}
		if p.Dist < last-1e-12 {
			t.Fatalf("pair %d: distance %g after %g — order violated", i, p.Dist, last)
		}
		last = p.Dist
		key := [2]rtree.ObjID{p.Obj1, p.Obj2}
		d, ok := byPair[key]
		if !ok {
			t.Fatalf("pair %d: (%d,%d) not in oracle result", i, p.Obj1, p.Obj2)
		}
		if math.Abs(p.Dist-d) > 1e-9 {
			t.Fatalf("pair %d: (%d,%d) reported at %g, true distance %g", i, p.Obj1, p.Obj2, p.Dist, d)
		}
		if seen[key] {
			t.Fatalf("pair %d: (%d,%d) delivered twice", i, p.Obj1, p.Obj2)
		}
		seen[key] = true
	}
	if res.err == nil && len(got) != wantN {
		t.Fatalf("clean run delivered %d pairs, want %d — silent truncation", len(got), wantN)
	}
	if mustComplete && res.err != nil {
		t.Fatalf("schedule must complete but failed after %d pairs: %v", len(got), res.err)
	}
}

// runCase drives one join to exhaustion or error under a deadline.
func runCase(t *testing.T, mk func() (*Join, error)) harnessResult {
	t.Helper()
	out := make(chan harnessResult, 1)
	go func() {
		var res harnessResult
		j, err := mk()
		if err != nil {
			res.err = err
			out <- res
			return
		}
		for {
			p, ok, err := j.Next()
			if err != nil {
				res.err = err
				// Terminal-state contract: the error is sticky and Err
				// agrees with it.
				if _, _, again := j.Next(); !errors.Is(again, err) {
					res.err = errors.Join(err, errors.New("harness: error not latched on repeated Next"))
				}
				if le := j.Err(); !errors.Is(le, err) {
					res.err = errors.Join(err, errors.New("harness: Err() disagrees with Next error"))
				}
				break
			}
			if !ok {
				break
			}
			res.pairs = append(res.pairs, p)
		}
		j.Close()
		out <- res
	}()
	select {
	case res := <-out:
		return res
	case <-time.After(testTimeout):
		t.Fatalf("join hung for %v", testTimeout)
		return harnessResult{}
	}
}

// TestDifferentialFaultHarness is the acceptance harness: 240 randomized
// cases of workload seed × queue config × fault schedule × parallelism.
func TestDifferentialFaultHarness(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	schedules := harnessSchedules()
	queues := harnessQueues()
	seeds := []int64{1, 2, 3, 4, 5}
	cases := 0
	for _, seed := range seeds {
		a := clusteredPoints(seed*100+1, 55)
		b := clusteredPoints(seed*100+2, 65)
		fullOracle := bruteJoin(a, b, geom.Euclidean)

		// Derive the workload's result bounds deterministically from the
		// seed: every other seed caps MaxPairs (exercising the §2.2.4
		// estimation and restart), every third seed caps MaxDist.
		maxPairs, maxDist := 0, 0.0
		if seed%2 == 0 {
			maxPairs = int(seed*137) % len(fullOracle)
		}
		oracle := fullOracle
		if seed%3 == 0 {
			cut := len(fullOracle) / 3
			// Halfway between two distinct distances, so inclusive versus
			// exclusive boundary handling cannot matter.
			for cut+1 < len(fullOracle) && fullOracle[cut+1].d == fullOracle[cut].d {
				cut++
			}
			if cut+1 < len(fullOracle) {
				maxDist = (fullOracle[cut].d + fullOracle[cut+1].d) / 2
				oracle = fullOracle[:cut+1]
			}
		}
		wantN := len(oracle)
		if maxPairs > 0 && maxPairs < wantN {
			wantN = maxPairs
		}

		for _, qc := range queues {
			for _, fs := range schedules {
				for _, par := range []int{1, 3} {
					p := "seq"
					if par > 1 {
						p = "par"
					}
					name := fmt.Sprintf("seed%d/%s/%s/%s", seed, qc.name, fs.name, p)
					fs, qc, par, seed := fs, qc, par, seed
					t.Run(name, func(t *testing.T) {
						cases++
						ta := buildTree(t, a)
						var tb *rtree.Tree
						if fs.treeFaults != nil {
							cfg := *fs.treeFaults
							cfg.Seed = seed * 31
							var armed *faultstore.Store
							tb, armed = buildFaultTree(t, b, cfg, fs.treeRetry)
							armed.SetArmed(true)
						} else {
							tb = buildTree(t, b)
						}

						counters := &stats.Counters{}
						opts := Options{
							MaxPairs:    maxPairs,
							MaxDist:     maxDist,
							Parallelism: par,
							Counters:    counters,
							RetryIO:     fs.retry,
						}
						qc.apply(&opts)
						if opts.Queue == QueueHybrid {
							qcfg := fs.queueFaults
							qcfg.Seed = seed * 17
							opts.QueueStore = func(pageSize int) (pager.Store, error) {
								mem, err := pager.NewMemStore(pageSize)
								if err != nil {
									return nil, err
								}
								return faultstore.New(mem, qcfg), nil
							}
						}

						res := runCase(t, func() (*Join, error) { return NewJoin(ta, tb, opts) })
						checkOracle(t, res.pairs, oracle, res, wantN, fs.mustComplete)
						if res.err != nil && !errors.Is(res.err, faultstore.ErrInjected) &&
							!errors.Is(res.err, pqueue.ErrPageChecksum) {
							t.Fatalf("surfaced error does not trace back to the injected fault: %v", res.err)
						}
						if fs.name == "transient-retried" && opts.Queue == QueueHybrid {
							snap := counters.Snapshot()
							if snap.IOFaults > 0 && snap.IORetries == 0 {
								t.Fatalf("IOFaults=%d but IORetries=0: retries not accounted", snap.IOFaults)
							}
						}
					})
				}
			}
		}
	}
	if cases < 200 {
		t.Fatalf("harness ran %d cases, acceptance requires 200+", cases)
	}
	waitForGoroutines(t, goroutinesBefore)
}

// waitForGoroutines asserts the goroutine count returns to (near) the
// baseline — failed parallel merges must not leak partition workers.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParallelPartitionFailureCancelsSiblings is the dedicated acceptance
// check: with Parallelism > 1 and one partition's queue store failing
// permanently, the merge must surface the error within the timeout — no
// deadlock — and every worker goroutine must exit.
func TestParallelPartitionFailureCancelsSiblings(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	a := clusteredPoints(71, 120)
	b := clusteredPoints(72, 140)
	ta, tb := buildTree(t, a), buildTree(t, b)

	calls := 0
	opts := Options{
		Parallelism:   4,
		Queue:         QueueHybrid,
		HybridDT:      4,
		QueuePageSize: 256,
		QueueStore: func(pageSize int) (pager.Store, error) {
			calls++
			mem, err := pager.NewMemStore(pageSize)
			if err != nil {
				return nil, err
			}
			cfg := faultstore.Config{Seed: int64(calls)}
			if calls == 2 { // second partition's store dies mid-join
				cfg.FailWriteAt = 10
			}
			return faultstore.New(mem, cfg), nil
		},
	}
	res := runCase(t, func() (*Join, error) { return NewJoin(ta, tb, opts) })
	if res.err == nil {
		t.Fatal("permanently failing partition completed cleanly")
	}
	if !errors.Is(res.err, faultstore.ErrInjected) {
		t.Fatalf("error is not the injected fault: %v", res.err)
	}
	oracle := bruteJoin(a, b, geom.Euclidean)
	checkOracle(t, res.pairs, oracle, res, len(oracle), false)
	waitForGoroutines(t, goroutinesBefore)
}
