package distjoin

import (
	"context"
	"errors"
	"fmt"
	"math"

	"distjoin/internal/geom"
	"distjoin/internal/obs"
	"distjoin/internal/pager"
	"distjoin/internal/profile"
	"distjoin/internal/qtrace"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// Traversal selects how node/node pairs are expanded (§2.2.2, §4.1.1).
type Traversal int

const (
	// TraverseEven processes the node at the shallower level of a
	// node/node pair, keeping the descent into both trees balanced — the
	// variant the paper found best overall.
	TraverseEven Traversal = iota
	// TraverseBasic always processes item 1 of a node/node pair (the basic
	// algorithm of Figure 3).
	TraverseBasic
	// TraverseSimultaneous processes both nodes of a node/node pair at
	// once, pairing up their entries with an optional plane sweep
	// (Figure 4).
	TraverseSimultaneous
)

func (t Traversal) String() string {
	switch t {
	case TraverseEven:
		return "Even"
	case TraverseBasic:
		return "Basic"
	case TraverseSimultaneous:
		return "Simultaneous"
	}
	return fmt.Sprintf("Traversal(%d)", int(t))
}

// TieBreak selects the ordering of equal-distance pairs (§2.2.2).
type TieBreak int

const (
	// DepthFirst gives pairs with deeper nodes priority, driving the
	// traversal toward leaves — the variant the paper found best.
	DepthFirst TieBreak = iota
	// BreadthFirst gives pairs with shallower nodes priority.
	BreadthFirst
)

func (t TieBreak) String() string {
	if t == BreadthFirst {
		return "BreadthFirst"
	}
	return "DepthFirst"
}

// QueueKind selects the priority-queue implementation (§3.2, Figure 8).
type QueueKind int

const (
	// QueueMemory keeps the whole queue in a pairing heap.
	QueueMemory QueueKind = iota
	// QueueHybrid uses the paper's three-tier memory/disk queue.
	QueueHybrid
)

func (q QueueKind) String() string {
	if q == QueueHybrid {
		return "Hybrid"
	}
	return "Memory"
}

// Options configures a distance join or distance semi-join.
type Options struct {
	// Context cancels the run: once it is canceled (or its deadline
	// expires), Next returns an error wrapping ErrCanceled — sticky, like
	// every iterator error — after delivering a correct ordered prefix of
	// the result. The engine re-checks the context at the top of every
	// Next call and every cancelCheckEvery queue pops inside it, parallel
	// partition workers are canceled and drained, and retry backoff
	// sleeps (Options.RetryIO) are cut short, so observed cancel latency
	// is bounded by a constant amount of engine work.
	//
	// A nil Context behaves as context.Background(): never canceled, and
	// provably free — the engine then skips every check (no channel
	// reads, no branches beyond one nil test), leaving the hot path
	// byte-identical to a build without cancellation.
	Context context.Context
	// Metric is the distance metric; geom.Euclidean when nil (the paper's
	// choice).
	Metric geom.Metric
	// MinDist and MaxDist restrict reported pairs to a distance range
	// (§2.2.3). Defaults: 0 and +Inf. Node pairs that cannot produce a
	// pair inside the range are pruned with the MINMAXDIST machinery.
	MinDist float64
	MaxDist float64
	// MaxPairs, when positive, bounds the number of result pairs
	// (STOP AFTER) and activates the maximum-distance estimation of
	// §2.2.4, which tightens the effective maximum distance as pairs are
	// enqueued.
	MaxPairs int
	// Traversal is the node/node expansion policy; default TraverseEven.
	Traversal Traversal
	// TieBreak orders equal-distance pairs; default DepthFirst.
	TieBreak TieBreak
	// Reverse reports pairs farthest-first (§2.2.5). Requires the memory
	// queue (the hybrid tiers assume ascending pops). Combined with
	// MaxPairs, the plain join applies §2.2.5's minimum-distance
	// estimation — the reverse counterpart of §2.2.4; the reverse
	// semi-join does not support MaxPairs.
	Reverse bool
	// Queue selects the queue implementation; default QueueMemory.
	Queue QueueKind
	// HybridDT is the distance increment D_T of the hybrid queue; when 0
	// the queue chooses it adaptively from the first insertions.
	HybridDT float64
	// HybridDir is where the hybrid queue's scratch file lives (empty:
	// system temp). HybridInMemory replaces the scratch file with an
	// in-memory store, which keeps the tier mechanics (and spill
	// accounting) while making tests hermetic.
	HybridDir      string
	PlaneSweep     bool // enable plane sweep for TraverseSimultaneous (default true via newEngine)
	NoPlaneSweep   bool // disable plane sweep explicitly
	HybridInMemory bool
	// NoBatchKernels disables the batched columnar distance kernels of
	// internal/geom/kernel and restores the one-pair-at-a-time scalar
	// expansion. The two paths produce identical results and identical
	// work counters — this switch exists for ablation experiments
	// (cmd/experiments -exp kernels) and differential debugging; leave it
	// off otherwise.
	NoBatchKernels bool
	// Window1 and Window2 restrict each input to objects lying inside a
	// rectangle — the spatial selection criterion of §2.2.5, folded into
	// the join so that index subtrees outside the window are pruned
	// wholesale.
	Window1, Window2 *geom.Rect
	// Select1 and Select2 filter objects by id (an attribute predicate,
	// e.g. "population > 5 million" from §5). Only leaf entries are
	// tested; nodes cannot be pruned by an opaque predicate.
	//
	// Restricting the SECOND input (Window2, Select2, or MinDist > 0)
	// invalidates the d_max guarantees behind the Local/GlobalNodes/
	// GlobalAll semi-join filters, so those are transparently degraded to
	// Inside2 in that case.
	Select1, Select2 func(rtree.ObjID) bool
	// DeferLeaves delays expanding a leaf of a node/node pair until the
	// other side has also reached a leaf, then processes both leaves
	// simultaneously — the strategy §2.2.2 recommends for structures
	// whose leaves lack bounding rectangles, where it reduces repeated
	// object accesses. Applies to Even and Basic traversal (Simultaneous
	// already processes both sides).
	DeferLeaves bool
	// OmitEqualIDs drops pairs whose two object ids are equal — the
	// natural setting for self joins, turning the k-nearest-neighbours
	// join of a dataset with itself into the classic all-nearest-
	// neighbours computation (§1). Like other second-input restrictions
	// it degrades the d_max-based semi-join filters to Inside2.
	OmitEqualIDs bool
	// OrderIntersectionsFrom switches the join to the §2.2.5 secondary-
	// ordering mode: only INTERSECTING pairs are reported, ordered by the
	// distance of their intersection region from this point (the paper's
	// "intersections of roads and rivers in order of distance from a given
	// house"). Incompatible with Reverse, MaxPairs, distance ranges and
	// the semi-join.
	OrderIntersectionsFrom geom.Point
	// Fetch1 and Fetch2 switch the engine to bounding-rectangle mode
	// (Figure 3's OBR path): leaf entries are treated as minimal bounding
	// rectangles and exact geometry is fetched through these callbacks
	// when an OBR/OBR pair reaches the queue head.
	Fetch1, Fetch2 func(rtree.ObjID) (geom.Rect, error)
	// ExactDist also switches the engine to bounding-rectangle mode and
	// supplies the true object distance for a candidate pair — the hook
	// for extended object types such as line segments (the paper's §3.1
	// "future study"). It must be consistent with the index: the returned
	// distance may never be smaller than the MINDIST of the two objects'
	// bounding rectangles. When both ExactDist and Fetch callbacks are
	// set, the fetched geometry is reported in the result pairs while
	// ExactDist provides the distance.
	ExactDist func(o1, o2 rtree.ObjID) (float64, error)
	// Counters receives the Table 1 measures. May be nil.
	Counters *stats.Counters
	// Obs receives live observability events and metrics: the event trace
	// (engine start/stop, expansions, emissions, hybrid-queue spills, merge
	// stalls), the inter-pair delay and pop-to-emit latency histograms, and
	// the sampled gauges behind the /metrics endpoint (see internal/obs).
	// Like Counters, a nil recorder disables all instrumentation — the
	// engine's per-pair path then performs no clock reads and no
	// allocations. May be nil.
	Obs *obs.Recorder
	// Profile receives span accounting for per-join query profiles: wall
	// time attributed to the engine phases (expand, queue push/pop,
	// disk-tier spill/fetch, merge, emit) plus the disk tier's physical I/O
	// time. A nil Spans disables all profiling — no clock reads, no
	// allocations on the per-pair path. On the parallel path each worker
	// records into its own shard, merged into this Spans as workers finish
	// (like Counters), so per-phase times are CPU time summed across
	// workers and may exceed wall time.
	Profile *profile.Spans
	// Parallelism selects the parallel execution path: the top of the two
	// trees is partitioned into disjoint slices of the pair space, one
	// incremental engine runs per partition on its own goroutine, and the
	// per-partition result streams are merged back into a single
	// distance-ordered stream (see internal/distjoin/parallel.go).
	//
	// 0 and 1 select the sequential path (the default). Values above 1 run
	// that many workers. ParallelismAuto (any negative value) uses
	// runtime.GOMAXPROCS(0).
	//
	// Configurations the parallel path cannot run soundly — OBR mode
	// (Fetch1/Fetch2/ExactDist) and the symmetric clustering join — fall
	// back to the sequential path transparently. Select1/Select2 predicates
	// and custom Metrics are called from multiple goroutines when
	// Parallelism is enabled and must be safe for concurrent use (the
	// built-in metrics are).
	Parallelism int
	// QueueStore supplies the hybrid queue's disk-tier page store. It is a
	// factory, not a store: each engine owns and closes its own store, and
	// the parallel path runs one engine per partition (a §2.2.4 restart
	// also rebuilds the queue, calling the factory again). When set it
	// overrides HybridInMemory and HybridDir. Useful for injecting
	// instrumented or fault-injecting stores.
	QueueStore func(pageSize int) (pager.Store, error)
	// RetryIO retries transient disk-tier I/O failures (errors wrapping
	// pager.ErrTransient) with bounded exponential backoff. The zero value
	// disables retrying. Retries are counted in Counters.IORetries /
	// Counters.IOFaults and traced as retry events on Obs.
	RetryIO pager.RetryPolicy
	// QueuePageSize is the page size in bytes of the hybrid queue's disk
	// tier (default 4096). Larger pages batch more spilled pairs per I/O;
	// smaller pages waste less memory on many near-empty partitions.
	QueuePageSize int
	// Tracer attaches per-query lifecycle tracing (see internal/qtrace):
	// each Join/SemiJoin/kNN run gets a query ID and a hierarchical span
	// tree (plan → partition workers → engine phases → queue disk-tier
	// I/O), landed in the tracer's flight recorder — and slow-query log,
	// when it qualifies — on iterator Close. Like Obs and Profile, a nil
	// tracer disables all per-query tracing at zero cost (no clock reads,
	// no allocations on the per-pair path). Tracing composes with Profile:
	// the engines record into per-query span accumulators, merged back
	// into Options.Profile as they close.
	Tracer *qtrace.Tracer
	// QueryID overrides the Tracer-assigned query ID ("q0000042") for this
	// run. Ignored when Tracer is nil.
	QueryID string

	// query is the live per-query trace, begun by newRunner when Tracer is
	// set and finished by the iterator's Close.
	query *qtrace.Query
}

// ParallelismAuto selects one worker per available CPU
// (runtime.GOMAXPROCS) when assigned to Options.Parallelism.
const ParallelismAuto = -1

// defaultQueuePageSize is the hybrid queue's disk-tier page size when
// Options.QueuePageSize is unset.
const defaultQueuePageSize = 4096

// queuePageSize returns the effective hybrid-queue page size.
func (o *Options) queuePageSize() int {
	if o.QueuePageSize > 0 {
		return o.QueuePageSize
	}
	return defaultQueuePageSize
}

// SemiFilter is the semi-join filtering ladder of §4.2.1, ordered by
// increasing aggressiveness; each level includes all previous filtering.
type SemiFilter int

const (
	// FilterOutside filters already-reported first objects only at report
	// time, outside the core algorithm.
	FilterOutside SemiFilter = iota
	// FilterInside1 additionally discards dequeued pairs whose first item
	// is an already-reported object.
	FilterInside1
	// FilterInside2 additionally discards such pairs before they are
	// enqueued while processing nodes.
	FilterInside2
	// FilterLocal additionally prunes, within each processed node of the
	// second input, generated pairs whose distance exceeds the smallest
	// d_max among the node's entries.
	FilterLocal
	// FilterGlobalNodes additionally maintains the smallest d_max seen
	// globally for every first-input node and prunes against it.
	FilterGlobalNodes
	// FilterGlobalAll additionally maintains the smallest d_max for every
	// first-input object.
	FilterGlobalAll
)

func (f SemiFilter) String() string {
	switch f {
	case FilterOutside:
		return "Outside"
	case FilterInside1:
		return "Inside1"
	case FilterInside2:
		return "Inside2"
	case FilterLocal:
		return "Local"
	case FilterGlobalNodes:
		return "GlobalNodes"
	case FilterGlobalAll:
		return "GlobalAll"
	}
	return fmt.Sprintf("SemiFilter(%d)", int(f))
}

// validate normalizes and checks options against the two indexes.
func (o *Options) validate(t1, t2 SpatialIndex, semi bool) error {
	if t1 == nil || t2 == nil {
		return errors.New("distjoin: both indexes are required")
	}
	if t1.Dims() != t2.Dims() {
		return fmt.Errorf("distjoin: dimension mismatch: %d vs %d", t1.Dims(), t2.Dims())
	}
	if o.Metric == nil {
		o.Metric = geom.Euclidean
	}
	if o.MaxDist == 0 {
		o.MaxDist = math.Inf(1)
	}
	if o.MinDist < 0 || o.MaxDist < o.MinDist {
		return fmt.Errorf("distjoin: invalid distance range [%g, %g]", o.MinDist, o.MaxDist)
	}
	if o.MaxPairs < 0 {
		return errors.New("distjoin: MaxPairs must be non-negative")
	}
	if o.QueuePageSize < 0 {
		return errors.New("distjoin: QueuePageSize must be non-negative")
	}
	if (o.Fetch1 == nil) != (o.Fetch2 == nil) {
		return errors.New("distjoin: Fetch1 and Fetch2 must be set together")
	}
	if o.ExactDist != nil && o.Reverse {
		return errors.New("distjoin: ExactDist does not support reverse ordering")
	}
	if o.Reverse {
		if o.Queue == QueueHybrid {
			return errors.New("distjoin: reverse joins require the memory queue")
		}
		if o.MaxPairs > 0 && semi {
			return errors.New("distjoin: reverse semi-joins do not support MaxPairs estimation")
		}
	}
	if o.PlaneSweep && o.NoPlaneSweep {
		return errors.New("distjoin: PlaneSweep and NoPlaneSweep are mutually exclusive")
	}
	for i, w := range []*geom.Rect{o.Window1, o.Window2} {
		if w == nil {
			continue
		}
		if !w.Valid() || w.Dim() != t1.Dims() {
			return fmt.Errorf("distjoin: Window%d is invalid or has wrong dimension", i+1)
		}
	}
	if len(o.OrderIntersectionsFrom) > 0 {
		if o.OrderIntersectionsFrom.Dim() != t1.Dims() {
			return errors.New("distjoin: OrderIntersectionsFrom dimension mismatch")
		}
		if o.Reverse || o.MaxPairs > 0 || o.MinDist > 0 || !math.IsInf(o.MaxDist, 1) {
			return errors.New("distjoin: OrderIntersectionsFrom is incompatible with Reverse, MaxPairs and distance ranges")
		}
		if semi {
			return errors.New("distjoin: OrderIntersectionsFrom is incompatible with the semi-join")
		}
		if o.Fetch1 != nil || o.ExactDist != nil {
			return errors.New("distjoin: OrderIntersectionsFrom requires objects stored in the leaves")
		}
	}
	return nil
}
