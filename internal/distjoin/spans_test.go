package distjoin

import (
	"testing"
	"time"

	"distjoin/internal/profile"
	"distjoin/internal/stats"
)

// drainWithSpans runs a full join with span profiling attached and returns
// the spans, counters and observed wall time.
func drainWithSpans(t *testing.T, opts Options) (*profile.Spans, *stats.Counters, time.Duration) {
	t.Helper()
	ta := buildTree(t, clusteredPoints(11, 300))
	tb := buildTree(t, clusteredPoints(23, 300))
	sp := &profile.Spans{}
	c := &stats.Counters{}
	opts.Profile = sp
	opts.Counters = c
	start := time.Now()
	j, err := NewJoin(ta, tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for {
		_, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	return sp, c, time.Since(start)
}

func TestSpansSequentialAccounting(t *testing.T) {
	sp, c, wall := drainWithSpans(t, Options{MaxPairs: 500})
	s := c.Snapshot()

	// Every queue operation the counters saw must have a matching span.
	if got := sp.Count(profile.PhasePop); got != s.QueuePops {
		t.Errorf("pop spans %d, counter pops %d", got, s.QueuePops)
	}
	if got := sp.Count(profile.PhasePush); got != s.QueueInserts {
		t.Errorf("push spans %d, counter inserts %d", got, s.QueueInserts)
	}
	if sp.Count(profile.PhaseExpand) == 0 {
		t.Error("no expand spans recorded")
	}
	if sp.Count(profile.PhaseEmit) == 0 {
		t.Error("no emit spans recorded")
	}
	if sp.Count(profile.PhaseMerge) != 0 {
		t.Error("merge spans on the sequential path")
	}

	// Phases are disjoint within one engine, so their sum cannot exceed the
	// observed wall time (setup/teardown slack keeps it strictly below).
	if tot := time.Duration(sp.TotalNS()); tot > wall {
		t.Errorf("phase total %v exceeds wall %v", tot, wall)
	}
}

func TestSpansHybridSpillFetch(t *testing.T) {
	// A tiny DT forces the disk tier into play, so spill and fetch phases
	// must both show up, along with physical queue I/O.
	sp, c, _ := drainWithSpans(t, Options{
		Queue:          QueueHybrid,
		HybridDT:       5,
		HybridInMemory: true,
	})
	s := c.Snapshot()
	if s.QueueDiskPairs == 0 {
		t.Fatal("workload did not exercise the disk tier")
	}
	if sp.Count(profile.PhaseSpill) == 0 {
		t.Error("no spill spans despite disk-tier pairs")
	}
	if sp.Count(profile.PhaseFetch) == 0 {
		t.Error("no fetch spans despite disk-tier pairs")
	}
	io := sp.IOSnapshot()
	if io.Reads == 0 || io.Writes == 0 {
		t.Errorf("no physical queue I/O timed: %+v", io)
	}
	if io.Reads != s.QueueReads || io.Writes != s.QueueWrites {
		t.Errorf("timed I/O (%d r, %d w) disagrees with counters (%d r, %d w)",
			io.Reads, io.Writes, s.QueueReads, s.QueueWrites)
	}
}

func TestSpansParallelMerged(t *testing.T) {
	sp, c, _ := drainWithSpans(t, Options{Parallelism: 2})
	s := c.Snapshot()
	if sp.Count(profile.PhaseMerge) == 0 {
		t.Error("no merge spans on the parallel path")
	}
	// Worker shards merge into the caller's Spans on close, so the queue-op
	// spans must match the merged counters exactly.
	if got := sp.Count(profile.PhasePop); got != s.QueuePops {
		t.Errorf("pop spans %d, counter pops %d", got, s.QueuePops)
	}
	if got := sp.Count(profile.PhasePush); got != s.QueueInserts {
		t.Errorf("push spans %d, counter inserts %d", got, s.QueueInserts)
	}
}

// TestSpansNilUntouched pins that a join without a Profile leaves the
// engine on the uninstrumented path end to end (the zero-alloc guarantee
// for the hook methods themselves is pinned in internal/profile).
func TestSpansNilUntouched(t *testing.T) {
	ta := buildTree(t, clusteredPoints(5, 100))
	tb := buildTree(t, clusteredPoints(7, 100))
	j, err := NewJoin(ta, tb, Options{MaxPairs: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for {
		_, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	var sp *profile.Spans
	if sp.TotalNS() != 0 {
		t.Fatal("nil spans accumulated time")
	}
}
