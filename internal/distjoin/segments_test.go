package distjoin

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// randomSegments draws short random segments in the unit-kilometre world.
func randomSegments(seed int64, n int) []geom.Segment {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]geom.Segment, n)
	for i := range out {
		x, y := rnd.Float64()*900, rnd.Float64()*900
		ang := rnd.Float64() * 2 * math.Pi
		l := 5 + rnd.Float64()*60
		out[i] = geom.Seg(
			geom.Pt(x, y),
			geom.Pt(x+math.Cos(ang)*l, y+math.Sin(ang)*l))
	}
	return out
}

func segTree(t *testing.T, segs []geom.Segment) *rtree.Tree {
	t.Helper()
	items := make([]rtree.Item, len(segs))
	for i, s := range segs {
		items[i] = rtree.Item{Rect: s.BBox(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestSegmentJoin runs the distance join over LINE SEGMENT objects — the
// paper's named future-work case (§3.1): bounding rectangles in the index,
// exact segment-to-segment distance through the ExactDist callback.
func TestSegmentJoin(t *testing.T) {
	sa := randomSegments(1, 80)
	sb := randomSegments(2, 90)
	ta, tb := segTree(t, sa), segTree(t, sb)
	j, err := NewJoin(ta, tb, Options{
		ExactDist: func(o1, o2 rtree.ObjID) (float64, error) {
			return geom.SegmentDist(sa[o1], sb[o2]), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 500)

	var want []float64
	for _, p := range sa {
		for _, q := range sb {
			want = append(want, geom.SegmentDist(p, q))
		}
	}
	sort.Float64s(want)
	if len(got) != 500 {
		t.Fatalf("drained %d", len(got))
	}
	for i, p := range got {
		if math.Abs(p.Dist-want[i]) > 1e-9 {
			t.Fatalf("segment pair %d: %g want %g", i, p.Dist, want[i])
		}
	}
}

// TestSegmentSemiJoin: for each segment of A, its nearest segment of B.
func TestSegmentSemiJoin(t *testing.T) {
	sa := randomSegments(3, 60)
	sb := randomSegments(4, 70)
	ta, tb := segTree(t, sa), segTree(t, sb)
	s, err := NewSemiJoin(ta, tb, FilterInside2, Options{
		ExactDist: func(o1, o2 rtree.ObjID) (float64, error) {
			return geom.SegmentDist(sa[o1], sb[o2]), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	if len(got) != len(sa) {
		t.Fatalf("segment semi-join: %d pairs, want %d", len(got), len(sa))
	}
	var want []float64
	for _, p := range sa {
		best := math.Inf(1)
		for _, q := range sb {
			if d := geom.SegmentDist(p, q); d < best {
				best = d
			}
		}
		want = append(want, best)
	}
	sort.Float64s(want)
	for i, p := range got {
		if math.Abs(p.Dist-want[i]) > 1e-9 {
			t.Fatalf("pair %d: %g want %g", i, p.Dist, want[i])
		}
	}
}

// TestSegmentJoinWithRange: intersecting-road detection as a MaxDist 0 join
// over segments (§2.2.5's "pairs required to intersect").
func TestSegmentJoinIntersections(t *testing.T) {
	sa := randomSegments(5, 120)
	sb := randomSegments(6, 120)
	ta, tb := segTree(t, sa), segTree(t, sb)
	// MaxDist epsilon: exact 0 pairs only (floating point makes exactly-0
	// robust here since SegmentDist returns 0 for true intersections).
	j, err := NewJoin(ta, tb, Options{
		MaxDist: 1e-12,
		ExactDist: func(o1, o2 rtree.ObjID) (float64, error) {
			return geom.SegmentDist(sa[o1], sb[o2]), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	want := 0
	for _, p := range sa {
		for _, q := range sb {
			if geom.SegmentDist(p, q) <= 1e-12 {
				want++
			}
		}
	}
	if len(got) != want {
		t.Fatalf("intersection count %d, want %d", len(got), want)
	}
}

func TestExactDistValidation(t *testing.T) {
	ta := buildTree(t, clusteredPoints(83, 5))
	tb := buildTree(t, clusteredPoints(84, 5))
	ed := func(rtree.ObjID, rtree.ObjID) (float64, error) { return 0, nil }
	if _, err := NewJoin(ta, tb, Options{ExactDist: ed, Reverse: true}); err == nil {
		t.Fatal("ExactDist + Reverse accepted")
	}
	if _, err := NewJoin(ta, tb, Options{ExactDist: ed, OrderIntersectionsFrom: geom.Pt(0, 0)}); err == nil {
		t.Fatal("ExactDist + intersection ordering accepted")
	}
}
