package distjoin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// TestPropJoinPrefixCorrect draws random datasets, random option
// combinations and a random prefix length, and checks the incremental join
// against brute force. This is the central correctness property of the
// paper: for ANY configuration, the k-th reported pair is the k-th closest.
func TestPropJoinPrefixCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		na, nb := 20+rnd.Intn(120), 20+rnd.Intn(120)
		a, b := clusteredPoints(seed*2+1, na), clusteredPoints(seed*2+2, nb)

		items := func(pts []geom.Point) []rtree.Item {
			out := make([]rtree.Item, len(pts))
			for i, p := range pts {
				out[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
			}
			return out
		}
		cfg := rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}
		var ta, tb *rtree.Tree
		var err error
		// Randomly mix bulk-loaded and insert-built trees.
		if rnd.Intn(2) == 0 {
			ta, err = rtree.BulkLoad(cfg, items(a))
		} else {
			ta, err = rtree.New(cfg)
			if err == nil {
				for i, p := range a {
					if err = ta.InsertPoint(p, rtree.ObjID(i)); err != nil {
						break
					}
				}
			}
		}
		if err != nil {
			return false
		}
		defer ta.Close()
		tb, err = rtree.BulkLoad(cfg, items(b))
		if err != nil {
			return false
		}
		defer tb.Close()

		opts := Options{
			Traversal: Traversal(rnd.Intn(3)),
			TieBreak:  TieBreak(rnd.Intn(2)),
		}
		if rnd.Intn(3) == 0 {
			opts.Queue = QueueHybrid
			opts.HybridInMemory = true
			opts.HybridDT = 10 + rnd.Float64()*100
		}
		if rnd.Intn(3) == 0 {
			opts.MaxPairs = 1 + rnd.Intn(200)
		}

		j, err := NewJoin(ta, tb, opts)
		if err != nil {
			return false
		}
		defer j.Close()

		want := bruteJoin(a, b, geom.Euclidean)
		limit := 1 + rnd.Intn(500)
		if opts.MaxPairs > 0 && opts.MaxPairs < limit {
			limit = opts.MaxPairs
		}
		count := 0
		for count < limit {
			p, ok, err := j.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			if math.Abs(p.Dist-want[count].d) > 1e-9 {
				return false
			}
			count++
		}
		wantCount := limit
		if len(want) < wantCount {
			wantCount = len(want)
		}
		return count == wantCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropSemiJoinAllFilters checks that every filtering strategy produces
// exactly the brute-force semi-join on random inputs, including with a
// random MaxPairs bound.
func TestPropSemiJoinAllFilters(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		na, nb := 10+rnd.Intn(80), 10+rnd.Intn(80)
		a, b := clusteredPoints(seed*3+1, na), clusteredPoints(seed*3+2, nb)
		items := func(pts []geom.Point) []rtree.Item {
			out := make([]rtree.Item, len(pts))
			for i, p := range pts {
				out[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
			}
			return out
		}
		cfg := rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}
		ta, err := rtree.BulkLoad(cfg, items(a))
		if err != nil {
			return false
		}
		defer ta.Close()
		tb, err := rtree.BulkLoad(cfg, items(b))
		if err != nil {
			return false
		}
		defer tb.Close()

		filter := allFilters[rnd.Intn(len(allFilters))]
		opts := Options{}
		if rnd.Intn(3) == 0 {
			opts.MaxPairs = 1 + rnd.Intn(na)
		}
		s, err := NewSemiJoin(ta, tb, filter, opts)
		if err != nil {
			return false
		}
		defer s.Close()

		want := bruteSemiJoin(a, b, geom.Euclidean)
		limit := len(want)
		if opts.MaxPairs > 0 && opts.MaxPairs < limit {
			limit = opts.MaxPairs
		}
		count := 0
		seen := map[uint64]bool{}
		for {
			p, ok, err := s.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			if seen[uint64(p.Obj1)] {
				return false // duplicate first object
			}
			seen[uint64(p.Obj1)] = true
			if math.Abs(p.Dist-want[count].d) > 1e-9 {
				return false
			}
			count++
		}
		return count == limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropPairCodecRoundTrip exercises the hybrid-queue codec over random
// pairs and dimensionalities.
func TestPropPairCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		dims := 1 + rnd.Intn(5)
		c := pairCodec{dims: dims}
		mkRect := func() geom.Rect {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for i := range lo {
				lo[i] = rnd.NormFloat64() * 100
				hi[i] = lo[i] + rnd.Float64()*50
			}
			return geom.Rect{Lo: lo, Hi: hi}
		}
		p := qpair{
			key: rnd.Float64() * 1000,
			i1:  item{kind: itemKind(rnd.Intn(3)), level: int8(rnd.Intn(10) - 1), ref: rnd.Uint64(), rect: mkRect()},
			i2:  item{kind: itemKind(rnd.Intn(3)), level: int8(rnd.Intn(10) - 1), ref: rnd.Uint64(), rect: mkRect()},
		}
		buf := make([]byte, c.Size())
		c.Encode(buf, p)
		got := c.Decode(buf)
		return got.key == p.key &&
			got.i1.kind == p.i1.kind && got.i1.level == p.i1.level && got.i1.ref == p.i1.ref &&
			got.i1.rect.Equal(p.i1.rect) &&
			got.i2.kind == p.i2.kind && got.i2.level == p.i2.level && got.i2.ref == p.i2.ref &&
			got.i2.rect.Equal(p.i2.rect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropDmaxConsistency: the engine's d_max bound must never be below the
// exact distance of any object pair drawn from the two items' regions —
// verified here for node/node and node/point combinations.
func TestPropDmaxConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		mkRect := func() geom.Rect {
			x, y := rnd.Float64()*100, rnd.Float64()*100
			return geom.R(geom.Pt(x, y), geom.Pt(x+rnd.Float64()*30, y+rnd.Float64()*30))
		}
		e := &engine{opts: Options{Metric: geom.Euclidean}}
		a := item{kind: kindNode, rect: mkRect()}
		bPt := geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
		b := item{kind: kindObj, rect: bPt.Rect()}
		bound := e.maxDist(a, b)
		// Every point inside a's region must be within bound of the point b.
		for k := 0; k < 20; k++ {
			p := geom.Pt(
				a.rect.Lo[0]+rnd.Float64()*(a.rect.Hi[0]-a.rect.Lo[0]),
				a.rect.Lo[1]+rnd.Float64()*(a.rect.Hi[1]-a.rect.Lo[1]))
			if geom.Euclidean.Dist(p, bPt) > bound+1e-9 {
				return false
			}
		}
		// node/node: MaxDist bounds all cross pairs.
		c := item{kind: kindNode, rect: mkRect()}
		nb := e.maxDist(a, c)
		for k := 0; k < 20; k++ {
			p := geom.Pt(
				a.rect.Lo[0]+rnd.Float64()*(a.rect.Hi[0]-a.rect.Lo[0]),
				a.rect.Lo[1]+rnd.Float64()*(a.rect.Hi[1]-a.rect.Lo[1]))
			q := geom.Pt(
				c.rect.Lo[0]+rnd.Float64()*(c.rect.Hi[0]-c.rect.Lo[0]),
				c.rect.Lo[1]+rnd.Float64()*(c.rect.Hi[1]-c.rect.Lo[1]))
			if geom.Euclidean.Dist(p, q) > nb+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
