package distjoin

// bitset is the growable bit-string representation the paper chose for the
// reported-object set S_A of the distance semi-join (§3.2): constant-time
// membership tests and insertions at a fixed, modest space cost.
type bitset struct {
	words []uint64
	n     int // number of set bits
}

// Has reports whether id is in the set.
func (b *bitset) Has(id uint64) bool {
	w := id >> 6
	if w >= uint64(len(b.words)) {
		return false
	}
	return b.words[w]&(1<<(id&63)) != 0
}

// Add inserts id, growing the backing array as needed.
func (b *bitset) Add(id uint64) {
	w := id >> 6
	for uint64(len(b.words)) <= w {
		b.words = append(b.words, 0)
	}
	if b.words[w]&(1<<(id&63)) == 0 {
		b.words[w] |= 1 << (id & 63)
		b.n++
	}
}

// Len returns the number of elements.
func (b *bitset) Len() int { return b.n }
