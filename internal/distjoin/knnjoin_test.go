package distjoin

import (
	"math"
	"sort"
	"testing"

	"distjoin/internal/geom"
)

// bruteKNNJoin computes, for each point of a, its k nearest partners in b,
// all flattened and sorted ascending by distance.
func bruteKNNJoin(a, b []geom.Point, k int, m geom.Metric) []float64 {
	var out []float64
	for _, p := range a {
		ds := make([]float64, len(b))
		for j, q := range b {
			ds[j] = m.Dist(p, q)
		}
		sort.Float64s(ds)
		n := k
		if n > len(ds) {
			n = len(ds)
		}
		out = append(out, ds[:n]...)
	}
	sort.Float64s(out)
	return out
}

func TestKNearestJoinMatchesBruteForce(t *testing.T) {
	a := clusteredPoints(101, 60)
	b := clusteredPoints(102, 90)
	ta, tb := buildTree(t, a), buildTree(t, b)
	for _, k := range []int{1, 2, 3, 7} {
		for _, f := range []SemiFilter{FilterOutside, FilterInside1, FilterInside2} {
			s, err := NewKNearestJoin(ta, tb, k, f, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := drainSemi(t, s, 0)
			s.Close()
			want := bruteKNNJoin(a, b, k, geom.Euclidean)
			if len(got) != len(want) {
				t.Fatalf("k=%d filter=%v: %d pairs, want %d", k, f, len(got), len(want))
			}
			for i, p := range got {
				if math.Abs(p.Dist-want[i]) > 1e-9 {
					t.Fatalf("k=%d filter=%v pair %d: %g want %g", k, f, i, p.Dist, want[i])
				}
			}
			// Each first object appears exactly k times.
			counts := map[uint64]int{}
			for _, p := range got {
				counts[uint64(p.Obj1)]++
			}
			for id, c := range counts {
				if c != k {
					t.Fatalf("k=%d: object %d reported %d times", k, id, c)
				}
			}
		}
	}
}

// TestKNearestJoinPartnersDistinct checks each first object's k partners
// are k distinct second objects (its true k nearest).
func TestKNearestJoinPartnersDistinct(t *testing.T) {
	a := clusteredPoints(103, 40)
	b := clusteredPoints(104, 60)
	ta, tb := buildTree(t, a), buildTree(t, b)
	const k = 4
	s, err := NewKNearestJoin(ta, tb, k, FilterInside2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	partners := map[uint64]map[uint64]bool{}
	for _, p := range drainSemi(t, s, 0) {
		if partners[uint64(p.Obj1)] == nil {
			partners[uint64(p.Obj1)] = map[uint64]bool{}
		}
		if partners[uint64(p.Obj1)][uint64(p.Obj2)] {
			t.Fatalf("object %d paired with %d twice", p.Obj1, p.Obj2)
		}
		partners[uint64(p.Obj1)][uint64(p.Obj2)] = true
	}
	for i, p := range a {
		// The partner set must be exactly the k nearest in b.
		type dj struct {
			d float64
			j int
		}
		ds := make([]dj, len(b))
		for j, q := range b {
			ds[j] = dj{d: geom.Euclidean.Dist(p, q), j: j}
		}
		sort.Slice(ds, func(x, y int) bool { return ds[x].d < ds[y].d })
		for _, want := range ds[:k] {
			if !partners[uint64(i)][uint64(want.j)] {
				// Ties make the exact set ambiguous; accept a partner at
				// the same distance.
				found := false
				for j := range partners[uint64(i)] {
					if math.Abs(geom.Euclidean.Dist(p, b[j])-want.d) < 1e-9 {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("object %d missing k-NN partner %d", i, want.j)
				}
			}
		}
	}
}

// TestKNearestJoinClampsAggressiveFilters verifies k > 1 degrades
// Local/Global filters to a sound level and still returns correct results.
func TestKNearestJoinClampsAggressiveFilters(t *testing.T) {
	a := clusteredPoints(105, 50)
	b := clusteredPoints(106, 70)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteKNNJoin(a, b, 3, geom.Euclidean)
	for _, f := range []SemiFilter{FilterLocal, FilterGlobalNodes, FilterGlobalAll} {
		s, err := NewKNearestJoin(ta, tb, 3, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != len(want) {
			t.Fatalf("filter %v: %d pairs, want %d", f, len(got), len(want))
		}
		for i, p := range got {
			if math.Abs(p.Dist-want[i]) > 1e-9 {
				t.Fatalf("filter %v pair %d wrong", f, i)
			}
		}
	}
}

func TestKNearestJoinKLargerThanInner(t *testing.T) {
	a := clusteredPoints(107, 20)
	b := clusteredPoints(108, 5)
	ta, tb := buildTree(t, a), buildTree(t, b)
	s, err := NewKNearestJoin(ta, tb, 10, FilterInside2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	// Only 5 partners exist per object.
	if len(got) != 20*5 {
		t.Fatalf("got %d pairs, want %d", len(got), 20*5)
	}
}

func TestKNearestJoinValidation(t *testing.T) {
	ta := buildTree(t, clusteredPoints(109, 5))
	tb := buildTree(t, clusteredPoints(110, 5))
	if _, err := NewKNearestJoin(ta, tb, 0, FilterInside2, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKNearestJoinWithMaxPairs(t *testing.T) {
	a := clusteredPoints(111, 80)
	b := clusteredPoints(112, 80)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteKNNJoin(a, b, 2, geom.Euclidean)
	for _, mp := range []int{1, 15, 60} {
		s, err := NewKNearestJoin(ta, tb, 2, FilterInside2, Options{MaxPairs: mp})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != mp {
			t.Fatalf("MaxPairs=%d delivered %d", mp, len(got))
		}
		for i, p := range got {
			if math.Abs(p.Dist-want[i]) > 1e-9 {
				t.Fatalf("MaxPairs=%d pair %d: %g want %g", mp, i, p.Dist, want[i])
			}
		}
	}
}

// TestAllNearestNeighbors runs the classic ANN computation: the 1-nearest
// join of a dataset with itself, excluding the identity pairs.
func TestAllNearestNeighbors(t *testing.T) {
	pts := clusteredPoints(113, 100)
	tr := buildTree(t, pts)
	for _, f := range []SemiFilter{FilterInside2, FilterGlobalAll} {
		s, err := NewKNearestJoin(tr, tr, 1, f, Options{OmitEqualIDs: true})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != len(pts) {
			t.Fatalf("filter %v: ANN returned %d pairs, want %d", f, len(got), len(pts))
		}
		for _, p := range got {
			if p.Obj1 == p.Obj2 {
				t.Fatalf("identity pair reported: %d", p.Obj1)
			}
			best := math.Inf(1)
			for j, q := range pts {
				if j == int(p.Obj1) {
					continue
				}
				if d := geom.Euclidean.Dist(pts[p.Obj1], q); d < best {
					best = d
				}
			}
			if math.Abs(p.Dist-best) > 1e-9 {
				t.Fatalf("object %d: ANN %g, true %g", p.Obj1, p.Dist, best)
			}
		}
	}
}

// TestJoinOmitEqualIDs checks the plain join drops only the diagonal.
func TestJoinOmitEqualIDs(t *testing.T) {
	pts := clusteredPoints(114, 30)
	tr := buildTree(t, pts)
	j, err := NewJoin(tr, tr, Options{OmitEqualIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	if len(got) != 30*30-30 {
		t.Fatalf("self join without diagonal: %d pairs, want %d", len(got), 30*29)
	}
	for _, p := range got {
		if p.Obj1 == p.Obj2 {
			t.Fatal("diagonal pair present")
		}
	}
}
