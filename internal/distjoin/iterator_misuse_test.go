package distjoin

import (
	"errors"
	"runtime"
	"testing"

	"distjoin/internal/faultstore"
	"distjoin/internal/pager"
)

// Iterator-misuse coverage: Next after exhaustion, Next after Close,
// double Close, Close mid-parallel-join, and error stickiness — the
// terminal-state machine of the public API.

func smallJoin(t *testing.T, opts Options) *Join {
	t.Helper()
	ta := buildTree(t, clusteredPoints(41, 30))
	tb := buildTree(t, clusteredPoints(42, 35))
	j, err := NewJoin(ta, tb, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNextAfterExhaustion(t *testing.T) {
	j := smallJoin(t, Options{})
	defer j.Close()
	n := 0
	for {
		_, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 30*35 {
		t.Fatalf("drained %d pairs, want %d", n, 30*35)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := j.Next(); ok || err != nil {
			t.Fatalf("Next after exhaustion: ok=%v err=%v, want quiet false", ok, err)
		}
	}
	if j.Err() != nil {
		t.Fatalf("Err after clean exhaustion: %v", j.Err())
	}
}

func TestNextAfterClose(t *testing.T) {
	for _, par := range []int{1, 3} {
		j := smallJoin(t, Options{Parallelism: par})
		if _, _, err := j.Next(); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := j.Next(); ok || !errors.Is(err, ErrIteratorClosed) {
			t.Fatalf("parallelism %d: Next after Close: ok=%v err=%v, want ErrIteratorClosed", par, ok, err)
		}
	}
}

func TestDoubleClose(t *testing.T) {
	for _, par := range []int{1, 3} {
		j := smallJoin(t, Options{Parallelism: par})
		if err := j.Close(); err != nil {
			t.Fatalf("parallelism %d: first Close: %v", par, err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("parallelism %d: second Close: %v", par, err)
		}
	}
}

func TestSemiJoinMisuse(t *testing.T) {
	ta := buildTree(t, clusteredPoints(43, 25))
	tb := buildTree(t, clusteredPoints(44, 25))
	s, err := NewSemiJoin(ta, tb, FilterGlobalAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if _, ok, err := s.Next(); ok || err != nil {
		t.Fatalf("Next after exhaustion: ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, _, err := s.Next(); !errors.Is(err, ErrIteratorClosed) {
		t.Fatalf("Next after Close: %v", err)
	}
	if s.Err() != nil {
		t.Fatalf("Err after clean close: %v", s.Err())
	}
}

// TestCloseMidParallelJoin closes a running parallel join after a few
// pairs and checks every partition worker exits (no goroutine leak).
func TestCloseMidParallelJoin(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ta := buildTree(t, clusteredPoints(51, 150))
		tb := buildTree(t, clusteredPoints(52, 170))
		j, err := NewJoin(ta, tb, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			if _, ok, err := j.Next(); err != nil || !ok {
				t.Fatalf("pair %d: ok=%v err=%v", k, ok, err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitForGoroutines(t, baseline)
}

// TestErrorIsSticky drives a join into a storage error and checks the
// public iterator latches it: repeated Next returns the same error and
// Err() agrees.
func TestErrorIsSticky(t *testing.T) {
	ta := buildTree(t, clusteredPoints(61, 60))
	tb := buildTree(t, clusteredPoints(62, 70))
	j, err := NewJoin(ta, tb, Options{
		Queue:         QueueHybrid,
		HybridDT:      4,
		QueuePageSize: 256,
		QueueStore: func(pageSize int) (pager.Store, error) {
			mem, err := pager.NewMemStore(pageSize)
			if err != nil {
				return nil, err
			}
			return faultstore.New(mem, faultstore.Config{Seed: 8, FailReadAt: 2}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var firstErr error
	for {
		_, ok, err := j.Next()
		if err != nil {
			firstErr = err
			break
		}
		if !ok {
			break
		}
	}
	if firstErr == nil {
		t.Skip("fault schedule never fired (queue stayed in memory)")
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := j.Next(); ok || !errors.Is(err, firstErr) {
			t.Fatalf("Next %d after error: ok=%v err=%v, want latched %v", i, ok, err, firstErr)
		}
	}
	if !errors.Is(j.Err(), firstErr) {
		t.Fatalf("Err() = %v, want %v", j.Err(), firstErr)
	}
	if !errors.Is(firstErr, faultstore.ErrInjected) {
		t.Fatalf("error lost its cause chain: %v", firstErr)
	}
}
