package distjoin

import (
	"math"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

func mkItem(kind itemKind, level int8, ref uint64) item {
	return item{kind: kind, level: level, ref: ref, rect: geom.Pt(0, 0).Rect()}
}

func TestPairLessOrdering(t *testing.T) {
	objPair := qpair{key: 5, i1: mkItem(kindObj, -1, 1), i2: mkItem(kindObj, -1, 2)}
	deepNodes := qpair{key: 5, i1: mkItem(kindNode, 0, 3), i2: mkItem(kindNode, 0, 4)}
	shallowNodes := qpair{key: 5, i1: mkItem(kindNode, 2, 5), i2: mkItem(kindNode, 2, 6)}
	farObj := qpair{key: 9, i1: mkItem(kindObj, -1, 7), i2: mkItem(kindObj, -1, 8)}

	df := pairLess(true, false)
	// Distance dominates everything.
	if !df(objPair, farObj) || df(farObj, deepNodes) {
		t.Fatal("distance ordering broken")
	}
	// At equal distance, object pairs outrank node pairs.
	if !df(objPair, deepNodes) || !df(objPair, shallowNodes) {
		t.Fatal("object pairs must come first at equal distance")
	}
	// Depth-first: deeper node pairs first.
	if !df(deepNodes, shallowNodes) {
		t.Fatal("depth-first must prefer deeper nodes")
	}
	// Breadth-first: shallower node pairs first, objects still first.
	bf := pairLess(false, false)
	if !bf(shallowNodes, deepNodes) || !bf(objPair, shallowNodes) {
		t.Fatal("breadth-first ordering broken")
	}
	// Reverse: larger keys first.
	rev := pairLess(true, true)
	if !rev(farObj, objPair) {
		t.Fatal("reverse ordering broken")
	}
	// Determinism tie-break on refs.
	twin := qpair{key: 5, i1: mkItem(kindObj, -1, 1), i2: mkItem(kindObj, -1, 9)}
	if df(objPair, twin) == df(twin, objPair) {
		t.Fatal("ref tie-break not antisymmetric")
	}
}

func TestEstimatorJoinMode(t *testing.T) {
	est := newEstimator(10, false)
	mk := func(r1, r2 uint64, key float64) qpair {
		return qpair{key: key, i1: mkItem(kindNode, 1, r1), i2: mkItem(kindNode, 1, r2)}
	}
	inf := math.Inf(1)
	// A pair guaranteeing 4 results within dmax 100.
	cur := est.observe(mk(1, 2, 5), 100, 0, inf, 4)
	if !math.IsInf(cur, 1) {
		t.Fatalf("4 < 10 results must not tighten; got %g", cur)
	}
	// Another guaranteeing 8: total 12 > 10 → evict the larger dmax (100),
	// tightening to 100.
	cur = est.observe(mk(3, 4, 6), 60, 0, cur, 8)
	if cur != 100 {
		t.Fatalf("expected tightening to 100, got %g", cur)
	}
	if est.total != 8 {
		t.Fatalf("total = %d, want 8", est.total)
	}
	// Ineligible pair (dmax beyond current bound) is ignored.
	cur2 := est.observe(mk(5, 6, 7), 150, 0, cur, 4)
	if cur2 != cur || est.total != 8 {
		t.Fatal("ineligible pair entered M")
	}
	// Popping the tracked pair removes it.
	est.onPop(mk(3, 4, 6))
	if est.total != 0 {
		t.Fatalf("total after pop = %d", est.total)
	}
}

func TestEstimatorSemiModeUniqueFirst(t *testing.T) {
	est := newEstimator(5, true)
	inf := math.Inf(1)
	mk := func(r1 uint64, key, dmax float64) (qpair, float64) {
		p := qpair{key: key, i1: mkItem(kindNode, 1, r1), i2: mkItem(kindNode, 1, 99)}
		return p, dmax
	}
	p1, d1 := mk(1, 5, 100)
	cur := est.observe(p1, d1, 0, inf, 3)
	// Same first item with larger dmax: ignored.
	p2, d2 := mk(1, 5, 200)
	cur = est.observe(p2, d2, 0, cur, 3)
	if est.total != 3 {
		t.Fatalf("duplicate first item admitted: total %d", est.total)
	}
	// Same first item with smaller dmax: replaces.
	p3, d3 := mk(1, 5, 50)
	cur = est.observe(p3, d3, 0, cur, 3)
	if est.total != 3 {
		t.Fatalf("replacement changed total: %d", est.total)
	}
	if n := est.byFirst[firstKeyOf(p3.i1)]; n == nil || n.Value.dmax != 50 {
		t.Fatal("replacement did not take effect")
	}
	// A processed node may not enter M.
	est.processed[7] = true
	p4, d4 := mk(7, 5, 80)
	cur = est.observe(p4, d4, 0, cur, 3)
	if est.total != 3 {
		t.Fatal("processed node entered M")
	}
	_ = cur
}

func TestEngineAdmitWindowAndSelect(t *testing.T) {
	w := geom.R(geom.Pt(0, 0), geom.Pt(10, 10))
	e := &engine{opts: Options{
		Metric:  geom.Euclidean,
		Window1: &w,
		Select1: func(id rtree.ObjID) bool { return id%2 == 0 },
	}}
	inWindow := item{kind: kindObj, rect: geom.Pt(5, 5).Rect(), ref: 2}
	outWindow := item{kind: kindObj, rect: geom.Pt(20, 5).Rect(), ref: 2}
	oddID := item{kind: kindObj, rect: geom.Pt(5, 5).Rect(), ref: 3}
	nodeTouching := item{kind: kindNode, rect: geom.R(geom.Pt(8, 8), geom.Pt(30, 30))}
	nodeOutside := item{kind: kindNode, rect: geom.R(geom.Pt(20, 20), geom.Pt(30, 30))}

	if !e.admit(inWindow, 1) {
		t.Fatal("in-window even object rejected")
	}
	if e.admit(outWindow, 1) {
		t.Fatal("out-of-window object admitted")
	}
	if e.admit(oddID, 1) {
		t.Fatal("odd-id object admitted")
	}
	if !e.admit(nodeTouching, 1) {
		t.Fatal("window-intersecting node rejected")
	}
	if e.admit(nodeOutside, 1) {
		t.Fatal("window-disjoint node admitted")
	}
	// Side 2 has no restrictions here.
	if !e.admit(outWindow, 2) || !e.admit(oddID, 2) {
		t.Fatal("side-2 items wrongly restricted")
	}
}

func TestMinOverFacesMaxDistTightness(t *testing.T) {
	m := geom.Euclidean
	region := geom.R(geom.Pt(0, 0), geom.Pt(10, 10))
	// Point obr: fast path equals MaxDist to the point.
	pt := geom.Pt(20, 5).Rect()
	if got, want := minOverFacesMaxDist(m, region, pt), m.MaxDist(region, pt); got != want {
		t.Fatalf("point obr: %g != %g", got, want)
	}
	// Extended obr: face bound is no larger than the full MaxDist and no
	// smaller than MinDist.
	obr := geom.R(geom.Pt(20, 0), geom.Pt(30, 10))
	got := minOverFacesMaxDist(m, region, obr)
	if got > m.MaxDist(region, obr) || got < m.MinDist(region, obr) {
		t.Fatalf("face bound %g outside [%g, %g]", got, m.MinDist(region, obr), m.MaxDist(region, obr))
	}
}
