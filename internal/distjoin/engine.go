package distjoin

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"slices"
	"time"

	"distjoin/internal/geom"
	"distjoin/internal/geom/kernel"
	"distjoin/internal/obs"
	"distjoin/internal/pager"
	"distjoin/internal/pqueue"
	"distjoin/internal/profile"
	"distjoin/internal/qtrace"
	"distjoin/internal/rtree"
	"distjoin/internal/spatial"
)

// semiState holds the bookkeeping shared by the distance semi-join (§2.3,
// §4.2.1) and its two generalizations: the k-nearest-neighbours join (up to
// k partners per first-input object — the paper's §1 "all nearest
// neighbors" when run as a self join) and the symmetric "clustering join"
// of [32], where a reported pair consumes BOTH of its objects.
type semiState struct {
	filter    SemiFilter
	k         int            // partners per first object (>= 1)
	symmetric bool           // clustering join: consume BOTH objects of a reported pair
	seen      bitset         // S_A: first objects fully reported (bit-string, §3.2)
	seen2     bitset         // clustering join: consumed second-input objects
	counts    map[uint64]int // per-object partner counts when k > 1
	// bestNode[page] is the smallest d_max observed for pairs whose first
	// item is that node (FilterGlobalNodes and up).
	bestNode map[uint64]float64
	// bestObj[id] is the smallest d_max observed for pairs whose first
	// item is that object (FilterGlobalAll).
	bestObj map[uint64]float64
}

// done reports whether the first object needs no further partners.
func (s *semiState) done(ref uint64) bool { return s.seen.Has(ref) }

// record notes one reported partner for the first object and returns
// whether the object is now complete.
func (s *semiState) record(ref uint64) bool {
	if s.k <= 1 {
		s.seen.Add(ref)
		return true
	}
	s.counts[ref]++
	if s.counts[ref] >= s.k {
		s.seen.Add(ref)
		delete(s.counts, ref)
		return true
	}
	return false
}

// engine is the shared core of the incremental distance join and distance
// semi-join iterators.
type engine struct {
	t1, t2       SpatialIndex
	root1, root2 uint64 // root refs, exempt from min-fill counting
	opts         Options
	q            pqueue.Queue[qpair]
	dmin         float64 // effective minimum distance (raised by the reverse estimator)
	dmaxCur      float64 // effective maximum distance, tightened by the estimator
	est          *estimator
	revEst       *revEstimator
	semi         *semiState
	sweep        bool

	// seedPairs, when non-nil, replaces the root/root seed with an explicit
	// set of item pairs: the parallel path runs one engine per partition,
	// each seeded with a disjoint slice of the top-level pair space.
	seedPairs [][2]item
	// scratch1 and scratch2 are reused across node expansions so that
	// childItems does not allocate a fresh slice per expanded node. Both
	// are pre-sized from the trees' max fan-out at construction.
	scratch1, scratch2 []item

	// kern dispatches the batched distance kernels for the run's metric;
	// cols is the columnar scratch appendNodeItems-produced children are
	// mirrored into, colsWin the no-copy window view the plane sweep uses
	// for per-run kernel calls, and dbuf the kernel output buffer. All are
	// reused across expansions: the batched distance layer allocates
	// nothing in steady state. scalarExpand (Options.NoBatchKernels)
	// forces the one-at-a-time legacy expansion; the differential tests
	// pin the two paths against each other pair for pair.
	kern         kernel.Batch
	cols         kernel.RectCols
	colsWin      kernel.RectCols
	dbuf         []float64
	scalarExpand bool

	// obs receives observability events; nil disables them (next then
	// bypasses the timing wrapper entirely). part is this engine's
	// partition id on the parallel path, -1 for a sequential engine.
	obs  *obs.Recorder
	part int32

	// sp receives span accounting for query profiles; nil disables all
	// profiling clock reads. Phases are kept disjoint by delta subtraction:
	// each outer bracket (pop, insert, expand, next) subtracts the time its
	// nested phases recorded during the bracket. That subtraction reads the
	// Spans twice around the bracketed call, which is only sound when this
	// engine is the sole writer — so every engine gets its own Spans, and
	// the parallel path merges worker shards like stats shards.
	sp *profile.Spans

	// qw is this engine's slice of the per-query trace (nil when tracing
	// is off). When set, sp points at the worker's own span accumulator —
	// satisfying the single-writer constraint above — and close merges it
	// back into userSP, the caller's Options.Profile, so the Profiler's
	// numbers are unchanged by tracing.
	qw     *qtrace.Worker
	userSP *profile.Spans

	// ctx and ctxDone carry the run's cancellation signal. ctxDone is
	// ctx.Done() captured once at construction: nil for a nil or
	// background context, in which case every cancellation check reduces
	// to one nil comparison — the hot path stays identical to a build
	// without cancellation (pinned by the gated bench counters and the
	// zero-alloc test). popsToCheck counts down queue pops until the next
	// in-loop check, bounding cancel latency within one long Next call.
	ctx         context.Context
	ctxDone     <-chan struct{}
	popsToCheck int

	reported  int
	skip      int  // results to silently re-skip after a restart
	restarted bool // the §2.2.4 restart has been used
	done      bool
	closed    bool
}

// newEngine validates options, builds the queue, and seeds it with the
// root/root pair.
func newEngine(t1, t2 SpatialIndex, opts Options, semi *semiState) (*engine, error) {
	return newEngineSeeded(t1, t2, opts, semi, nil, -1)
}

// newEngineSeeded is newEngine with an explicit seed set: instead of the
// root/root pair, the queue starts from the given item pairs. The parallel
// path uses this to hand each partition worker a disjoint slice of the
// top-level pair space (identified to the observability layer by part); nil
// seeds mean the ordinary root/root start, with part -1.
func newEngineSeeded(t1, t2 SpatialIndex, opts Options, semi *semiState, seeds [][2]item, part int32) (*engine, error) {
	if err := opts.validate(t1, t2, semi != nil); err != nil {
		return nil, err
	}
	e := &engine{
		t1:           t1,
		t2:           t2,
		opts:         opts,
		dmin:         opts.MinDist,
		dmaxCur:      opts.MaxDist,
		semi:         semi,
		sweep:        !opts.NoPlaneSweep,
		seedPairs:    seeds,
		obs:          opts.Obs,
		part:         part,
		sp:           opts.Profile,
		kern:         kernel.For(opts.Metric),
		scalarExpand: opts.NoBatchKernels,
	}
	// Capture the cancellation signal before the queue is built: the retry
	// policy wired into the hybrid queue's store selects on the same
	// channel, so a canceled query also interrupts backoff sleeps.
	// context.Background().Done() is nil, so an explicit background
	// context costs exactly as much as no context at all.
	if opts.Context != nil {
		e.ctx = opts.Context
		e.ctxDone = opts.Context.Done()
	}
	// Per-query tracing: record spans into the query's per-worker
	// accumulator instead of the caller's Spans (single-writer — the
	// delta-subtraction brackets read sp around nested calls), merging
	// back on close. Must happen before makeQueue so the hybrid queue and
	// its pager I/O timer observe the same accumulator.
	if q := opts.query; q != nil {
		e.qw = q.StartWorker(part)
		e.userSP = opts.Profile
		e.sp = e.qw.Spans()
	}
	// Pre-size the expansion scratch (row items, columnar mirror, kernel
	// outputs) from the trees' max fan-out so first expansions do not grow
	// buffers mid-join. scratch1 serves either tree; scratch2 only holds
	// second-tree entries on the simultaneous path.
	f1, f2 := indexFanout(t1), indexFanout(t2)
	fmax := f1
	if f2 > fmax {
		fmax = f2
	}
	e.scratch1 = make([]item, 0, fmax)
	e.scratch2 = make([]item, 0, f2)
	e.cols.Grow(t1.Dims(), fmax)
	e.dbuf = make([]float64, fmax)
	if opts.MaxPairs > 0 {
		if opts.Reverse {
			e.revEst = newRevEstimator(opts.MaxPairs)
		} else {
			e.est = newEstimator(opts.MaxPairs, semi != nil)
		}
	}
	// The Local/Global semi-join filters prune against d_max bounds that
	// promise "some partner exists within this distance" — a promise that
	// breaks when second-input objects can be disqualified (window or
	// attribute selection) or when a minimum distance excludes near
	// partners. Degrade to the strongest still-sound filter.
	if semi != nil && semi.filter > FilterInside2 &&
		(opts.Window2 != nil || opts.Select2 != nil || opts.MinDist > 0 ||
			opts.OmitEqualIDs || semi.k > 1 || semi.symmetric) {
		semi.filter = FilterInside2
	}
	if semi != nil && semi.k > 1 {
		semi.counts = make(map[uint64]int)
	}
	if semi != nil && semi.filter >= FilterGlobalNodes {
		semi.bestNode = make(map[uint64]float64)
	}
	if semi != nil && semi.filter >= FilterGlobalAll {
		semi.bestObj = make(map[uint64]float64)
	}

	if err := e.makeQueue(); err != nil {
		return nil, err
	}
	if t1.NumObjects() == 0 || t2.NumObjects() == 0 {
		e.done = true
		e.obs.EngineStart(e.part)
		return e, nil
	}
	if err := e.seed(); err != nil {
		return nil, err
	}
	e.obs.EngineStart(e.part)
	return e, nil
}

// makeQueue (re)creates the priority queue per the configured kind.
func (e *engine) makeQueue() error {
	less := pairLess(e.opts.TieBreak == DepthFirst, e.opts.Reverse)
	switch e.opts.Queue {
	case QueueMemory:
		e.q = pqueue.NewMemQueue(less, e.opts.Counters)
	case QueueHybrid:
		cfg := pqueue.HybridConfig{
			DT:       e.opts.HybridDT,
			Adaptive: e.opts.HybridDT == 0,
			Dir:      e.opts.HybridDir,
			Counters: e.opts.Counters,
			Obs:      e.obs,
			Part:     e.part,
			Spans:    e.sp,
		}
		cfg.PageSize = e.opts.queuePageSize()
		store, err := e.queueStore(cfg.PageSize)
		if err != nil {
			return err
		}
		cfg.Store = store
		hq, err := pqueue.NewHybridQueue(less, func(p qpair) float64 { return p.key }, pairCodec{dims: e.t1.Dims()}, cfg)
		if err != nil {
			return err
		}
		e.q = hq
	default:
		return fmt.Errorf("distjoin: unknown queue kind %d", e.opts.Queue)
	}
	return nil
}

// queueStore builds the disk-tier store for one (re)creation of the
// hybrid queue, honouring the QueueStore factory, HybridInMemory and
// RetryIO. A nil result lets NewHybridQueue create its own file store
// (only possible with retrying off — the retry layer needs a store to
// wrap).
func (e *engine) queueStore(pageSize int) (pager.Store, error) {
	var store pager.Store
	switch {
	case e.opts.QueueStore != nil:
		s, err := e.opts.QueueStore(pageSize)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrQueueStore, err)
		}
		store = s
	case e.opts.HybridInMemory:
		s, err := pager.NewMemStore(pageSize)
		if err != nil {
			return nil, err
		}
		store = s
	case e.opts.RetryIO.Enabled():
		s, err := pager.NewFileStore(e.opts.HybridDir, pageSize)
		if err != nil {
			return nil, err
		}
		store = s
	default:
		return nil, nil
	}
	if e.opts.RetryIO.Enabled() {
		store = pager.NewRetryStore(store, e.retryPolicy())
	}
	return store, nil
}

// retryPolicy extends the user's RetryIO callbacks with the engine's own
// accounting: faults and retries land in the run's counters and the
// observability trace, tagged with this engine's partition. The run's
// cancellation signal is wired into the policy's Done channel (unless the
// caller supplied their own), so a canceled query abandons the backoff
// ladder instead of sleeping through it.
func (e *engine) retryPolicy() pager.RetryPolicy {
	pol := e.opts.RetryIO
	if pol.Done == nil {
		pol.Done = e.ctxDone
	}
	userFault, userRetry := pol.OnFault, pol.OnRetry
	counters, rec, part := e.opts.Counters, e.obs, e.part
	pol.OnFault = func(op string, err error) {
		counters.AddIOFault(1)
		if userFault != nil {
			userFault(op, err)
		}
	}
	pol.OnRetry = func(op string, attempt int, err error) {
		counters.AddIORetry(1)
		rec.IORetry(part, attempt)
		if userRetry != nil {
			userRetry(op, attempt, err)
		}
	}
	return pol
}

// seed enqueues the initial pairs: the root/root pair by default, or the
// explicit partition seeds when seedPairs is set. Either way the root refs
// are recorded first — they stay exempt from min-fill counting.
func (e *engine) seed() error {
	r1, err := e.rootItem(e.t1)
	if err != nil {
		return err
	}
	r2, err := e.rootItem(e.t2)
	if err != nil {
		return err
	}
	e.root1, e.root2 = r1.ref, r2.ref
	if e.seedPairs == nil {
		return e.enqueue(r1, r2)
	}
	for _, sp := range e.seedPairs {
		if err := e.enqueue(sp[0], sp[1]); err != nil {
			return err
		}
	}
	return nil
}

// restart re-runs the query without the maximum-distance estimation — the
// recovery the paper prescribes when an over-tightened D_max leaves fewer
// than K results findable (§2.2.4). For the semi-join the reported-object
// set S survives, so completed objects are not re-reported; for the plain
// join the deterministic pair order lets the engine silently skip the
// already-delivered prefix.
func (e *engine) restart() error {
	e.restarted = true
	e.obs.Restart(e.part)
	e.est = nil
	e.revEst = nil
	e.dmaxCur = e.opts.MaxDist
	e.dmin = e.opts.MinDist
	if e.semi == nil {
		e.skip = e.reported
	}
	if err := e.q.Close(); err != nil {
		return err
	}
	if err := e.makeQueue(); err != nil {
		return err
	}
	return e.seed()
}

// indexFanout returns a tree's max fan-out via the optional spatial.Fanout
// extension, falling back to a conservative default for structures that do
// not report one (the scratch then grows once on the first large node).
func indexFanout(t SpatialIndex) int {
	if f, ok := t.(spatial.Fanout); ok {
		if n := f.MaxFanout(); n > 0 {
			return n
		}
	}
	return 32
}

// rootItem builds the queue item for an index's root node.
func (e *engine) rootItem(t SpatialIndex) (item, error) {
	root, err := t.Root()
	if err != nil {
		return item{}, err
	}
	return item{
		kind:  kindNode,
		level: int8(root.Level),
		ref:   root.Ref,
		rect:  root.Rect,
	}, nil
}

// leafEntryKind is the item kind leaf entries carry: exact geometry when
// objects are stored directly, bounding rectangles when a fetch or
// exact-distance callback defers to external object geometry.
func (e *engine) leafEntryKind() itemKind {
	if e.opts.Fetch1 != nil || e.opts.ExactDist != nil {
		return kindOBR
	}
	return kindObj
}

// admitVerdict is admitPair's decision for a candidate pair.
type admitVerdict uint8

const (
	// admitDrop: the pair was filtered before any distance work.
	admitDrop admitVerdict = iota
	// admitIntersection: the pair belongs to the §2.2.5 secondary-ordering
	// mode and must go through enqueueIntersection.
	admitIntersection
	// admitProceed: the pair proceeds to distance keying.
	admitProceed
)

// admitPair applies every pre-distance check of the enqueue path: the
// §2.2.5 selection criteria, equal-id omission, the intersection-ordering
// dispatch, and the semi-join Inside2 filters. Shared by the scalar and
// batched expansions so their filtering (and Filter accounting) is
// identical.
func (e *engine) admitPair(i1, i2 item) admitVerdict {
	// Spatial and attribute selection criteria (§2.2.5): discard items
	// outside their window or rejected by their predicate before any
	// distance work.
	if !e.admit(i1, 1) || !e.admit(i2, 2) {
		e.opts.Counters.Filter(1)
		return admitDrop
	}
	if e.opts.OmitEqualIDs && !i1.isNode() && !i2.isNode() && i1.ref == i2.ref {
		e.opts.Counters.Filter(1)
		return admitDrop
	}
	if len(e.opts.OrderIntersectionsFrom) > 0 {
		return admitIntersection
	}
	// Semi-join Inside2 filtering: drop pairs whose first object has been
	// reported before they ever reach the queue.
	if e.semi != nil && e.semi.filter >= FilterInside2 && !i1.isNode() && e.semi.done(i1.ref) {
		e.opts.Counters.Filter(1)
		return admitDrop
	}
	if e.semi != nil && e.semi.symmetric && e.semi.filter >= FilterInside2 &&
		!i2.isNode() && e.semi.seen2.Has(i2.ref) {
		e.opts.Counters.Filter(1)
		return admitDrop
	}
	return admitProceed
}

// enqueue computes the pair's key and bounds, applies range, estimation and
// semi-join pruning, and inserts it into the queue.
func (e *engine) enqueue(i1, i2 item) error {
	switch e.admitPair(i1, i2) {
	case admitDrop:
		return nil
	case admitIntersection:
		return e.enqueueIntersection(i1, i2)
	}
	d := e.minDist(i1, i2)
	if d > e.dmaxCur {
		e.opts.Counters.Filter(1)
		return nil
	}
	return e.enqueueKeyed(i1, i2, d)
}

// enqueuePre is enqueue for a pair whose minimum distance was already
// computed by a batch kernel, as the pre-distance pre (squared, for the
// deferred L2 kernel). The distance-calculation counter is bumped exactly
// where the scalar path would have computed it — after the admit checks,
// before the range filter — and the range filter compares in the pre
// domain, deferring the pair's single Sqrt to survivors.
func (e *engine) enqueuePre(i1, i2 item, pre float64) error {
	switch e.admitPair(i1, i2) {
	case admitDrop:
		return nil
	case admitIntersection:
		return e.enqueueIntersection(i1, i2)
	}
	e.countDistCalc(i1, i2)
	if e.kern.PreGreater(pre, e.dmaxCur) {
		e.opts.Counters.Filter(1)
		return nil
	}
	return e.enqueueKeyed(i1, i2, e.kern.Finish(pre))
}

// enqueueKeyed finishes enqueueing a pair whose minimum distance d has
// passed the range filter: d_max bounds, estimation, semi-join global
// pruning, and the queue insert.
func (e *engine) enqueueKeyed(i1, i2 item, d float64) error {
	needMax := e.dmin > 0 || e.est != nil || e.revEst != nil || e.opts.Reverse ||
		(e.semi != nil && e.semi.filter >= FilterGlobalNodes)
	var dmax float64
	if needMax {
		dmax = e.maxDist(i1, i2)
		if dmax < e.dmin {
			e.opts.Counters.Filter(1)
			return nil
		}
	}
	if e.semi != nil && !e.semiGlobalAdmit(i1, d, dmax) {
		e.opts.Counters.Filter(1)
		return nil
	}
	p := qpair{key: d, i1: i1, i2: i2}
	if e.opts.Reverse && (i1.isNode() || i2.isNode() || i1.kind == kindOBR || i2.kind == kindOBR) {
		// Farthest-first ordering keys node and OBR pairs by their upper
		// bound (§2.2.5). Exact object pairs keep their true distance.
		p.key = dmax
	}
	if e.revEst != nil {
		// Reverse estimation (§2.2.5): raise the minimum-distance bound
		// from the pairs seen so far, then prune anything that cannot be
		// among the K farthest.
		count := e.minObjects(i1, 1) * e.minObjects(i2, 2)
		e.dmin = e.revEst.observe(p, d, dmax, e.dmin, e.opts.MaxDist, count)
		if dmax < e.dmin {
			e.revEst.onPop(p) // keep M consistent with the queue
			e.opts.Counters.Filter(1)
			return nil
		}
	}
	if e.est != nil {
		// An already-reported semi-join object can produce no further
		// results; letting it into M would overcount and overtighten D_max
		// (forcing more restarts), so keep it out. Nodes can still hide
		// reported objects in their subtrees — that residual overcount is
		// what the restart path recovers from.
		estimable := true
		if e.est.semi && !i1.isNode() && e.semi.seen.Has(i1.ref) {
			estimable = false
		}
		if estimable {
			count := e.minObjects(i1, 1)
			if !e.est.semi {
				count *= e.minObjects(i2, 2)
			}
			e.dmaxCur = e.est.observe(p, dmax, e.dmin, e.dmaxCur, count)
		}
	}
	return e.insert(p)
}

// admit applies the per-input selection criteria of §2.2.5: a window test
// (pruning whole subtrees whose region misses the window) and an attribute
// predicate on object ids.
func (e *engine) admit(it item, side int) bool {
	w, sel := e.opts.Window1, e.opts.Select1
	if side == 2 {
		w, sel = e.opts.Window2, e.opts.Select2
	}
	if w != nil {
		if it.isNode() {
			if !it.rect.Intersects(*w) {
				return false
			}
		} else if !w.Contains(it.rect) {
			return false
		}
	}
	if sel != nil && !it.isNode() && !sel(rtree.ObjID(it.ref)) {
		return false
	}
	return true
}

// enqueueIntersection keys a pair for the §2.2.5 secondary-ordering mode:
// pairs that cannot intersect are discarded, and the rest are ordered by
// the distance of their (potential) intersection region from the anchor
// point. Shrinking to child regions shrinks the intersection, which can
// only increase that distance, so the ordering is consistent.
func (e *engine) enqueueIntersection(i1, i2 item) error {
	x, ok := i1.rect.Intersection(i2.rect)
	if i1.kind != kindObj || i2.kind != kindObj {
		e.opts.Counters.AddNodeDistCalc(1)
	} else {
		e.opts.Counters.AddDistCalc(1)
	}
	if !ok {
		e.opts.Counters.Filter(1)
		return nil
	}
	key := e.opts.Metric.MinDistPR(e.opts.OrderIntersectionsFrom, x)
	return e.insert(qpair{key: key, i1: i1, i2: i2})
}

// semiGlobalAdmit applies the GlobalNodes/GlobalAll pruning (§4.2.1): a
// pair is useless if some earlier pair with the same first item guarantees
// a closer partner for every object it covers. It also updates the global
// d_max tables.
func (e *engine) semiGlobalAdmit(i1 item, d, dmax float64) bool {
	s := e.semi
	if i1.isNode() {
		if s.bestNode == nil {
			return true
		}
		best, ok := s.bestNode[i1.ref]
		if !ok || dmax < best {
			s.bestNode[i1.ref] = dmax
			best = dmax
		}
		return d <= best
	}
	if s.bestObj == nil {
		return true
	}
	best, ok := s.bestObj[i1.ref]
	if !ok || dmax < best {
		s.bestObj[i1.ref] = dmax
		best = dmax
	}
	return d <= best
}

// next drives the algorithm until the next reportable object pair. With a
// recorder attached it brackets the work with the pop-to-emit timing and
// records the emission; with a Spans attached the bracket's residue — the
// time not claimed by a nested expand/push/pop/spill/fetch span — is
// attributed to PhaseEmit. With neither, the direct path takes no clock
// reads at all.
func (e *engine) next() (Pair, bool, error) {
	if e.obs == nil && e.sp == nil {
		return e.step()
	}
	inner0 := e.sp.InnerNS()
	start := time.Now()
	p, ok, err := e.step()
	if e.sp != nil {
		d := time.Since(start) - time.Duration(e.sp.InnerNS()-inner0)
		e.sp.Add(profile.PhaseEmit, d)
	}
	if e.obs != nil && ok {
		e.obs.Emit(e.part, p.Dist, e.q.Len(), start)
	}
	return p, ok, err
}

// pop dequeues through the PhasePop bracket: the bracket's elapsed time
// minus whatever the queue's disk-tier fetch recorded during it. Only
// successful pops record a span, keeping the span count equal to the
// QueuePops counter; an exhausted queue's final empty pop falls into the
// PhaseEmit residue instead.
func (e *engine) pop() (qpair, bool, error) {
	if e.sp == nil {
		return e.q.Pop()
	}
	fetch0 := e.sp.NS(profile.PhaseFetch)
	start := time.Now()
	p, ok, err := e.q.Pop()
	if ok {
		d := time.Since(start) - time.Duration(e.sp.NS(profile.PhaseFetch)-fetch0)
		e.sp.Add(profile.PhasePop, d)
	}
	return p, ok, err
}

// insert enqueues through the PhasePush bracket: the bracket's elapsed time
// minus whatever the queue's disk-tier spill recorded during it.
func (e *engine) insert(p qpair) error {
	if e.sp == nil {
		return e.q.Insert(p)
	}
	spill0 := e.sp.NS(profile.PhaseSpill)
	start := time.Now()
	err := e.q.Insert(p)
	d := time.Since(start) - time.Duration(e.sp.NS(profile.PhaseSpill)-spill0)
	e.sp.Add(profile.PhasePush, d)
	return err
}

// step is the uninstrumented engine loop behind next.
func (e *engine) step() (Pair, bool, error) {
	if e.done {
		return Pair{}, false, nil
	}
	if e.opts.MaxPairs > 0 && e.reported >= e.opts.MaxPairs {
		e.done = true
		return Pair{}, false, nil
	}
	// Cancellation check, per Next call: a context canceled between Next
	// calls is observed by the very next one, so the delivered prefix is
	// exactly the pairs consumed before cancellation. With a nil or
	// background context (ctxDone == nil) this is a single nil test.
	if e.ctxDone != nil {
		select {
		case <-e.ctxDone:
			return Pair{}, false, canceledErr(e.ctx)
		default:
		}
		e.popsToCheck = cancelCheckEvery
	}
	for {
		p, ok, err := e.pop()
		if err != nil {
			return Pair{}, false, e.surface(err)
		}
		if !ok {
			// The estimation of §2.2.4 may have over-tightened the maximum
			// distance (e.g. when already-reported semi-join objects inflate
			// the counts in M); the paper's remedy is to restart the query.
			if (e.est != nil || e.revEst != nil) && !e.restarted && e.opts.MaxPairs > 0 && e.reported < e.opts.MaxPairs {
				if err := e.restart(); err != nil {
					return Pair{}, false, e.surface(err)
				}
				continue
			}
			e.done = true
			return Pair{}, false, nil
		}
		// In-loop cancellation check at a bounded cadence: a Next call
		// that grinds through a long run of filtered pairs still observes
		// cancellation within cancelCheckEvery pops.
		if e.ctxDone != nil {
			if e.popsToCheck--; e.popsToCheck <= 0 {
				select {
				case <-e.ctxDone:
					return Pair{}, false, canceledErr(e.ctx)
				default:
				}
				e.popsToCheck = cancelCheckEvery
			}
		}
		if e.est != nil {
			e.est.onPop(p)
		}
		if e.revEst != nil {
			e.revEst.onPop(p)
			// The bound may have risen after this pair was enqueued; a
			// pair whose upper bound (its queue key, for non-object pairs)
			// falls below it is dead. Exact object pairs carry their true
			// distance, handled by the report-time range check.
			if (p.i1.isNode() || p.i2.isNode()) && p.key < e.dmin {
				e.opts.Counters.Filter(1)
				continue
			}
		}
		// The effective maximum may have tightened after this pair was
		// enqueued (forward joins key node pairs by their minimum
		// distance, so the comparison is sound).
		if !e.opts.Reverse && p.key > e.dmaxCur {
			e.opts.Counters.Filter(1)
			continue
		}
		// Semi-join Inside1 filtering at dequeue time.
		if e.semi != nil && e.semi.filter >= FilterInside1 &&
			!p.i1.isNode() && e.semi.done(p.i1.ref) {
			e.opts.Counters.Filter(1)
			continue
		}
		if e.semi != nil && e.semi.symmetric && e.semi.filter >= FilterInside1 &&
			!p.i2.isNode() && e.semi.seen2.Has(p.i2.ref) {
			e.opts.Counters.Filter(1)
			continue
		}

		switch {
		case p.i1.kind == kindObj && p.i2.kind == kindObj:
			if pair, report := e.report(p); report {
				return pair, true, nil
			}
		case p.i1.kind == kindOBR && p.i2.kind == kindOBR:
			reportable, exact, err := e.resolveOBR(&p)
			if err != nil {
				return Pair{}, false, e.surface(err)
			}
			if !exact {
				continue // pruned by the distance range
			}
			if reportable {
				if pair, report := e.report(p); report {
					return pair, true, nil
				}
			}
		default:
			if err := e.expand(p); err != nil {
				return Pair{}, false, e.surface(err)
			}
		}
	}
}

// surface maps an engine-loop error before it is returned: an error that
// arrives while the run's context is already canceled — e.g. a retry
// ladder abandoned mid-backoff — is folded into ErrCanceled, so callers
// see one coherent cancellation instead of a storage failure provoked by
// their own cancel.
func (e *engine) surface(err error) error { return wrapCanceled(e.ctx, err) }

// report delivers an exact object pair, applying the range check and the
// semi-join duplicate filter. The boolean is false when the pair must be
// silently skipped.
func (e *engine) report(p qpair) (Pair, bool) {
	if p.key < e.dmin || p.key > e.dmaxCur {
		e.opts.Counters.Filter(1)
		return Pair{}, false
	}
	if e.semi != nil {
		if e.semi.done(p.i1.ref) || (e.semi.symmetric && e.semi.seen2.Has(p.i2.ref)) {
			e.opts.Counters.Filter(1)
			return Pair{}, false
		}
		if e.semi.record(p.i1.ref) && e.semi.bestObj != nil {
			delete(e.semi.bestObj, p.i1.ref)
		}
		if e.semi.symmetric {
			e.semi.seen2.Add(p.i2.ref)
		}
	}
	// After a restart, the already-delivered prefix of a plain join is
	// re-derived in identical order; swallow it silently.
	if e.skip > 0 {
		e.skip--
		return Pair{}, false
	}
	if e.est != nil {
		e.est.onReport(p)
	}
	if e.revEst != nil {
		e.revEst.onReport()
	}
	e.reported++
	e.opts.Counters.ReportPair()
	if e.opts.MaxPairs > 0 && e.reported >= e.opts.MaxPairs {
		e.done = true
	}
	return Pair{
		Obj1:  rtree.ObjID(p.i1.ref),
		Obj2:  rtree.ObjID(p.i2.ref),
		Rect1: p.i1.rect,
		Rect2: p.i2.rect,
		Dist:  p.key,
	}, true
}

// resolveOBR handles a dequeued OBR/OBR pair (Figure 3 lines 7–13): fetch
// the exact geometry, compute the true distance, and either report the pair
// immediately (when it still beats the queue head) or re-enqueue it as an
// exact pair. Returns reportable=false, exact=false when the pair fails the
// distance range.
func (e *engine) resolveOBR(p *qpair) (reportable, exact bool, err error) {
	r1, r2 := p.i1.rect, p.i2.rect
	if e.opts.Fetch1 != nil {
		r1, err = e.opts.Fetch1(rtree.ObjID(p.i1.ref))
		if err != nil {
			return false, false, fmt.Errorf("distjoin: fetching object %d from input 1: %w", p.i1.ref, err)
		}
		r2, err = e.opts.Fetch2(rtree.ObjID(p.i2.ref))
		if err != nil {
			return false, false, fmt.Errorf("distjoin: fetching object %d from input 2: %w", p.i2.ref, err)
		}
	}
	p.i1 = item{kind: kindObj, level: -1, ref: p.i1.ref, rect: r1}
	p.i2 = item{kind: kindObj, level: -1, ref: p.i2.ref, rect: r2}
	var d float64
	if e.opts.ExactDist != nil {
		d, err = e.opts.ExactDist(rtree.ObjID(p.i1.ref), rtree.ObjID(p.i2.ref))
		if err != nil {
			return false, false, fmt.Errorf("distjoin: exact distance of (%d, %d): %w", p.i1.ref, p.i2.ref, err)
		}
		e.opts.Counters.AddDistCalc(1)
	} else {
		d = e.minDist(p.i1, p.i2)
	}
	if d < e.dmin || d > e.dmaxCur {
		e.opts.Counters.Filter(1)
		return false, false, nil
	}
	p.key = d
	front, ok, err := e.q.Peek()
	if err != nil {
		return false, false, err
	}
	better := !ok
	if ok {
		if e.opts.Reverse {
			better = d >= front.key
		} else {
			better = d <= front.key
		}
	}
	if better {
		return true, true, nil
	}
	if err := e.insert(*p); err != nil {
		return false, false, err
	}
	return false, true, nil
}

// expand processes a pair with at least one node, clocking the work as
// PhaseExpand when profiling is on: the bracket's elapsed time minus the
// queue-write time (push + spill) its enqueues recorded during it.
func (e *engine) expand(p qpair) error {
	if e.sp == nil {
		return e.expandPair(p)
	}
	qw0 := e.sp.QueueWriteNS()
	start := time.Now()
	err := e.expandPair(p)
	d := time.Since(start) - time.Duration(e.sp.QueueWriteNS()-qw0)
	e.sp.Add(profile.PhaseExpand, d)
	return err
}

// expandPair dispatches the expansion according to the traversal policy.
func (e *engine) expandPair(p qpair) error {
	e.obs.Expand(e.part, p.key)
	switch {
	case p.i1.isNode() && p.i2.isNode():
		if e.opts.DeferLeaves {
			// §2.2.2: when leaves lack bounding rectangles it pays to hold
			// a leaf back until the other side reaches a leaf too, then
			// process both at once.
			leaf1, err := e.isLeaf(e.t1, p.i1)
			if err != nil {
				return err
			}
			leaf2, err := e.isLeaf(e.t2, p.i2)
			if err != nil {
				return err
			}
			switch {
			case leaf1 && leaf2:
				return e.expandBoth(p)
			case leaf1:
				return e.expandSide(p, 2)
			case leaf2:
				return e.expandSide(p, 1)
			}
		}
		switch e.opts.Traversal {
		case TraverseSimultaneous:
			return e.expandBoth(p)
		case TraverseBasic:
			return e.expandSide(p, 1)
		default: // TraverseEven: process the shallower node; ties go to item 1.
			if int(p.i2.level) > int(p.i1.level) {
				return e.expandSide(p, 2)
			}
			return e.expandSide(p, 1)
		}
	case p.i1.isNode():
		return e.expandSide(p, 1)
	default:
		return e.expandSide(p, 2)
	}
}

// isLeaf reports whether a node item is a leaf. Level 0 is necessarily a
// leaf in both supported structures; higher levels require a probe (an
// unbalanced structure may hold leaves anywhere).
func (e *engine) isLeaf(t SpatialIndex, it item) (bool, error) {
	if it.level == 0 {
		return true, nil
	}
	n, err := t.Node(it.ref)
	if err != nil {
		return false, err
	}
	return n.Leaf, nil
}

// expandSide replaces the node on the given side with its entries,
// enqueueing one new pair per entry (ProcessNode1/ProcessNode2 of Figure 3,
// with the Figure 5 range checks applied inside enqueue).
func (e *engine) expandSide(p qpair, side int) error {
	var t SpatialIndex
	var nodeItem, other item
	if side == 1 {
		t, nodeItem, other = e.t1, p.i1, p.i2
	} else {
		t, nodeItem, other = e.t2, p.i2, p.i1
	}
	n, err := t.Node(nodeItem.ref)
	if err != nil {
		return err
	}
	e.scratch1 = appendNodeItems(e.scratch1[:0], n, e.leafEntryKind())
	children := e.scratch1

	// Semi-join Local pruning (§4.2.1): when expanding a second-input
	// node, any generated pair farther than the smallest d_max among the
	// entries cannot supply the nearest partner for any first-input
	// object.
	var localBound float64 = math.Inf(1)
	if side == 2 && e.semi != nil && e.semi.filter >= FilterLocal && len(children) > 0 {
		for _, c := range children {
			if dm := e.maxDist(other, c); dm < localBound {
				localBound = dm
			}
		}
	}

	if !e.scalarExpand && len(children) > 0 {
		// Batched path: one kernel call computes the distance from the
		// opposite item to every child; the localBound prune and the range
		// filter inside enqueuePre then compare the precomputed values
		// (in the pre domain, so L2 pays its Sqrt only for survivors).
		pres := e.batchMinDist(other.rect, children)
		for i, c := range children {
			if side == 2 && localBound < math.Inf(1) {
				if e.kern.PreGreater(pres[i], localBound) {
					e.opts.Counters.Filter(1)
					continue
				}
			}
			var err error
			if side == 1 {
				err = e.enqueuePre(c, other, pres[i])
			} else {
				err = e.enqueuePre(other, c, pres[i])
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	for _, c := range children {
		if side == 2 && localBound < math.Inf(1) {
			if e.opts.Metric.MinDist(other.rect, c.rect) > localBound {
				e.opts.Counters.Filter(1)
				continue
			}
		}
		var err error
		if side == 1 {
			err = e.enqueue(c, other)
		} else {
			err = e.enqueue(other, c)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fillCols mirrors items into the engine's columnar scratch and sizes the
// kernel output buffer; both are reused across expansions, so the fill
// allocates nothing in steady state.
func (e *engine) fillCols(items []item) {
	dims := 0
	if len(items) > 0 {
		dims = len(items[0].rect.Lo)
	}
	e.cols.Reset(dims)
	for _, it := range items {
		e.cols.Append(it.rect)
	}
	if cap(e.dbuf) < len(items) {
		e.dbuf = make([]float64, len(items))
	}
}

// batchMinDist computes the minimum (pre-)distance from query to every
// item in one kernel call over the columnar scratch. The computation
// itself is unaccounted: callers bump the distance counters per pair, at
// the same points the scalar path counts.
func (e *engine) batchMinDist(query geom.Rect, items []item) []float64 {
	e.fillCols(items)
	out := e.dbuf[:len(items)]
	e.kern.MinDistBatch(query, &e.cols, out)
	return out
}

// appendNodeItems converts a node's entries into queue items, appending to
// buf. Callers pass a per-engine scratch buffer so steady-state expansions
// allocate nothing; the partitioner passes nil to build fresh slices.
func appendNodeItems(buf []item, n *IndexNode, leafKind itemKind) []item {
	if n.Leaf {
		for _, o := range n.Objects {
			buf = append(buf, item{kind: leafKind, level: -1, ref: o.ID, rect: o.Rect})
		}
		return buf
	}
	for _, c := range n.Children {
		buf = append(buf, item{kind: kindNode, level: int8(c.Level), ref: c.Ref, rect: c.Rect})
	}
	return buf
}

// expandBoth processes both nodes of a node/node pair simultaneously
// (§2.2.2, "Simultaneous"), pairing up the entries of the two nodes. When a
// finite maximum distance is in force, entries outside the range of the
// opposite node are filtered first and a plane sweep along axis 0 limits
// the candidate pairs (Figure 4, with the sweep extended by D_max).
func (e *engine) expandBoth(p qpair) error {
	n1, err := e.t1.Node(p.i1.ref)
	if err != nil {
		return err
	}
	n2, err := e.t2.Node(p.i2.ref)
	if err != nil {
		return err
	}
	kind := e.leafEntryKind()
	e.scratch1 = appendNodeItems(e.scratch1[:0], n1, kind)
	e.scratch2 = appendNodeItems(e.scratch2[:0], n2, kind)
	c1, c2 := e.scratch1, e.scratch2

	if e.sweep && !math.IsInf(e.dmaxCur, 1) {
		// Restrict the search space: keep only entries within D_max of the
		// space spanned by the opposite node.
		c1 = e.withinOf(c1, p.i2.rect)
		c2 = e.withinOf(c2, p.i1.rect)
		// Plane sweep along axis 0 over entries sorted by low edge.
		// slices.SortFunc avoids sort.Slice's reflection and per-call
		// closure allocations on this hot path.
		byLowEdge := func(a, b item) int { return cmp.Compare(a.rect.Lo[0], b.rect.Lo[0]) }
		slices.SortFunc(c1, byLowEdge)
		slices.SortFunc(c2, byLowEdge)
		if !e.scalarExpand {
			return e.sweepBatch(c1, c2)
		}
		start := 0
		var pruned int64
		for _, a := range c1 {
			// Advance past entries that end before the sweep window.
			for start < len(c2) && c2[start].rect.Hi[0] < a.rect.Lo[0]-e.dmaxCur {
				start++
			}
			evaluated := 0
			for k := start; k < len(c2); k++ {
				b := c2[k]
				if b.rect.Lo[0] > a.rect.Hi[0]+e.dmaxCur {
					break // beyond the sweep window along the axis
				}
				evaluated++
				if err := e.enqueue(a, b); err != nil {
					return err
				}
			}
			pruned += int64(len(c2) - evaluated)
		}
		e.tallyBatchPruned(pruned)
		return nil
	}
	if !e.scalarExpand && len(c1) > 0 && len(c2) > 0 {
		// Full cross product, batched: mirror the second node's entries into
		// the columnar scratch once, then one kernel call per first-side
		// entry covers its whole row of the pair block.
		e.fillCols(c2)
		for _, a := range c1 {
			out := e.dbuf[:len(c2)]
			e.kern.MinDistBatch(a.rect, &e.cols, out)
			for i, b := range c2 {
				if err := e.enqueuePre(a, b, out[i]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, a := range c1 {
		for _, b := range c2 {
			if err := e.enqueue(a, b); err != nil {
				return err
			}
		}
	}
	return nil
}

// sweepBatch is the batched form of the Figure 4 plane sweep: the candidate
// run of each first-side entry is evaluated by a single kernel call over a
// no-copy window of the columnar mirror of c2. The run is delimited against
// the current D_max, and the live bound — which estimation can only
// tighten, never relax, during a join — is re-checked per pair before
// enqueueing, so the pairs actually admitted are exactly the scalar sweep's
// (a tightened bound truncates the precomputed run the same way it breaks
// the scalar inner loop). Pairs the sweep window skips cost no distance
// computation and no queue work; they are tallied as BatchPruned, matching
// the scalar sweep's tally.
func (e *engine) sweepBatch(c1, c2 []item) error {
	if len(c1) == 0 || len(c2) == 0 {
		return nil
	}
	e.fillCols(c2)
	start := 0
	var pruned int64
	for _, a := range c1 {
		// Advance past entries that end before the sweep window.
		for start < len(c2) && c2[start].rect.Hi[0] < a.rect.Lo[0]-e.dmaxCur {
			start++
		}
		end := start
		for end < len(c2) && c2[end].rect.Lo[0] <= a.rect.Hi[0]+e.dmaxCur {
			end++
		}
		evaluated := 0
		if end > start {
			e.colsWin.Window(&e.cols, start, end)
			out := e.dbuf[:end-start]
			e.kern.MinDistBatch(a.rect, &e.colsWin, out)
			for k := start; k < end; k++ {
				b := c2[k]
				if b.rect.Lo[0] > a.rect.Hi[0]+e.dmaxCur {
					break // D_max tightened mid-run; the rest is out of window
				}
				evaluated++
				if err := e.enqueuePre(a, b, out[k-start]); err != nil {
					return err
				}
			}
		}
		pruned += int64(len(c2) - evaluated)
	}
	e.tallyBatchPruned(pruned)
	return nil
}

// tallyBatchPruned records pairs the plane sweep (or block prune) skipped
// without any distance computation — cost that simply never happened, kept
// out of both the distance-calculation and Filtered accounting.
func (e *engine) tallyBatchPruned(n int64) {
	if n <= 0 {
		return
	}
	e.opts.Counters.AddBatchPruned(n)
	e.obs.BatchPrune(n)
}

// withinOf filters items to those within the effective maximum distance of
// the region spanned by the opposite node. The batched form computes every
// candidate's distance in one kernel call and compares in the pre domain.
func (e *engine) withinOf(items []item, opposite geom.Rect) []item {
	if !e.scalarExpand && len(items) > 0 {
		pres := e.batchMinDist(opposite, items)
		out := items[:0]
		for i, it := range items {
			if e.kern.PreLessEq(pres[i], e.dmaxCur) {
				out = append(out, it)
			} else {
				e.opts.Counters.Filter(1)
			}
		}
		return out
	}
	out := items[:0]
	for _, it := range items {
		if e.opts.Metric.MinDist(it.rect, opposite) <= e.dmaxCur {
			out = append(out, it)
		} else {
			e.opts.Counters.Filter(1)
		}
	}
	return out
}

// close releases queue resources.
func (e *engine) close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	e.obs.EngineStop(e.part, int64(e.reported))
	if e.qw != nil {
		e.qw.Done(int64(e.reported), e.restarted)
		e.userSP.Merge(e.sp)
	}
	return e.q.Close()
}
