package distjoin

import (
	"distjoin/internal/quadtree"
	"distjoin/internal/rtree"
	"distjoin/internal/spatial"
)

// SpatialIndex is the hierarchical-index abstraction the engine traverses;
// see the spatial package for the contract and the provided adapters.
type SpatialIndex = spatial.Index

// NodeRef, ObjectRef and IndexNode re-export the traversal types.
type (
	NodeRef   = spatial.NodeRef
	ObjectRef = spatial.ObjectRef
	IndexNode = spatial.IndexNode
)

// WrapRTree exposes an R*-tree as a SpatialIndex.
func WrapRTree(t *rtree.Tree) SpatialIndex { return spatial.WrapRTree(t) }

// WrapQuadtree exposes a bucket PR quadtree as a SpatialIndex.
func WrapQuadtree(t *quadtree.Tree) SpatialIndex { return spatial.WrapQuadtree(t) }
