package distjoin

import (
	"math"
	"runtime"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// The differential suite pins the batched (columnar-kernel) expansion
// against the legacy scalar expansion pair for pair: the same trees and
// options are drained through two engines, one with scalarExpand set, and
// the result streams and full counter snapshots must agree. On amd64 the
// agreement is exact (the kernels replicate the scalar delta expressions
// and accumulation order bit for bit); architectures whose compilers fuse
// floating-point operations may differ by an ulp in L2 sums, so there the
// Euclidean cases compare distances with a small ulp tolerance and skip
// strict counter equality (a 1-ulp distance can land on the other side of
// a prune threshold).

type diffCase struct {
	name  string
	opts  Options
	semi  func() *semiState
	self  bool // self join: both sides read the same tree
	limit int  // max pairs to drain; 0 = full drain
}

func diffCases() []diffCase {
	sel := func(id rtree.ObjID) bool { return id%3 != 0 }
	win := geom.R(geom.Pt(0, 0), geom.Pt(700, 800))
	return []diffCase{
		{name: "even-default", opts: Options{}},
		{name: "basic", opts: Options{Traversal: TraverseBasic}},
		{name: "simultaneous-maxdist", opts: Options{Traversal: TraverseSimultaneous, MaxDist: 120}},
		{name: "simultaneous-nosweep", opts: Options{Traversal: TraverseSimultaneous, MaxDist: 120, NoPlaneSweep: true}},
		{name: "even-maxpairs", opts: Options{MaxPairs: 400}, limit: 400},
		{name: "simultaneous-maxpairs", opts: Options{Traversal: TraverseSimultaneous, MaxPairs: 400}, limit: 400},
		{name: "reverse-maxpairs", opts: Options{Reverse: true, MaxPairs: 300}, limit: 300},
		{name: "reverse-range", opts: Options{Reverse: true, MinDist: 40, MaxDist: 200, Traversal: TraverseSimultaneous}},
		{name: "range", opts: Options{MinDist: 50, MaxDist: 200, Traversal: TraverseSimultaneous}},
		{name: "manhattan-sweep", opts: Options{Metric: geom.Manhattan, Traversal: TraverseSimultaneous, MaxDist: 150}},
		{name: "chessboard-sweep", opts: Options{Metric: geom.Chessboard, Traversal: TraverseSimultaneous, MaxDist: 100}},
		{name: "lp3-generic-sweep", opts: Options{Metric: geom.Lp(3), Traversal: TraverseSimultaneous, MaxDist: 120}},
		{name: "defer-leaves", opts: Options{DeferLeaves: true, Traversal: TraverseSimultaneous, MaxDist: 120}},
		{name: "omit-equal-self", opts: Options{OmitEqualIDs: true, Traversal: TraverseSimultaneous, MaxDist: 80}, self: true},
		{name: "window-select", opts: Options{Traversal: TraverseSimultaneous, MaxDist: 150, Window1: &win, Select2: sel}},
		{name: "intersection-order", opts: Options{Traversal: TraverseSimultaneous, OrderIntersectionsFrom: geom.Pt(300, 400)}, limit: 500},
		{name: "hybrid-queue-sweep", opts: Options{Traversal: TraverseSimultaneous, MaxDist: 120, Queue: QueueHybrid, HybridInMemory: true, HybridDT: 40}},
		{
			name: "semi-local",
			opts: Options{Traversal: TraverseSimultaneous, MaxDist: 200},
			semi: func() *semiState { return &semiState{filter: FilterLocal, k: 1} },
		},
		{
			name: "semi-global",
			opts: Options{},
			semi: func() *semiState { return &semiState{filter: FilterGlobalAll, k: 1} },
		},
		{
			name:  "semi-maxpairs",
			opts:  Options{MaxPairs: 60},
			semi:  func() *semiState { return &semiState{filter: FilterInside2, k: 1} },
			limit: 60,
		},
	}
}

// drainEngineVariant runs one engine over the trees with scalarExpand as
// given and returns the delivered pairs and the final counter snapshot.
func drainEngineVariant(t *testing.T, t1, t2 SpatialIndex, tc diffCase, scalar bool) ([]Pair, stats.Counters) {
	t.Helper()
	opts := tc.opts
	opts.Counters = &stats.Counters{}
	var semi *semiState
	if tc.semi != nil {
		semi = tc.semi()
	}
	e, err := newEngine(t1, t2, opts, semi)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()
	e.scalarExpand = scalar
	var out []Pair
	for tc.limit <= 0 || len(out) < tc.limit {
		p, ok, err := e.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out, opts.Counters.Snapshot()
}

func TestBatchedExpansionMatchesScalar(t *testing.T) {
	pts1 := clusteredPoints(41, 130)
	pts2 := clusteredPoints(42, 110)
	tr1 := buildTree(t, pts1)
	tr2 := buildTree(t, pts2)

	for _, tc := range diffCases() {
		t.Run(tc.name, func(t *testing.T) {
			i1, i2 := WrapRTree(tr1), WrapRTree(tr2)
			if tc.self {
				i2 = i1
			}
			batch, cb := drainEngineVariant(t, i1, i2, tc, false)
			scalar, cs := drainEngineVariant(t, i1, i2, tc, true)

			m := tc.opts.Metric
			strict := runtime.GOARCH == "amd64" || (m != nil && m != geom.Euclidean)

			if len(batch) != len(scalar) {
				t.Fatalf("batch delivered %d pairs, scalar %d", len(batch), len(scalar))
			}
			for i := range batch {
				b, s := batch[i], scalar[i]
				if b.Obj1 != s.Obj1 || b.Obj2 != s.Obj2 {
					t.Fatalf("pair %d: batch (%d,%d), scalar (%d,%d)", i, b.Obj1, b.Obj2, s.Obj1, s.Obj2)
				}
				if strict {
					if b.Dist != s.Dist {
						t.Fatalf("pair %d: batch dist %v, scalar %v", i, b.Dist, s.Dist)
					}
				} else if diff := math.Abs(b.Dist - s.Dist); diff > 4e-16*math.Max(b.Dist, 1) {
					t.Fatalf("pair %d: batch dist %v, scalar %v (diff %g)", i, b.Dist, s.Dist, diff)
				}
			}
			if strict && cb != cs {
				t.Fatalf("counter snapshots diverge:\nbatch:  %+v\nscalar: %+v", cb, cs)
			}
		})
	}
}

// TestBatchScratchPreSized pins the constructor's sizing contract: the row
// scratch, columnar mirror and kernel output buffer all start with at least
// the trees' max fan-out of capacity, so first expansions do not grow
// buffers mid-join.
func TestBatchScratchPreSized(t *testing.T) {
	tr := buildTree(t, clusteredPoints(7, 300))
	e, err := newEngine(WrapRTree(tr), WrapRTree(tr), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()
	want := tr.MaxEntries()
	if want <= 0 {
		t.Fatalf("tree reports max entries %d", want)
	}
	if cap(e.scratch1) < want || cap(e.scratch2) < want {
		t.Fatalf("scratch caps %d/%d, want >= %d", cap(e.scratch1), cap(e.scratch2), want)
	}
	if len(e.dbuf) < want {
		t.Fatalf("dbuf len %d, want >= %d", len(e.dbuf), want)
	}
	// The columnar mirror must hold a full node's worth of rectangles
	// without growing: filling it fan-out times allocates nothing.
	r := geom.R(geom.Pt(0, 0), geom.Pt(1, 1))
	avg := testing.AllocsPerRun(10, func() {
		e.cols.Reset(2)
		for i := 0; i < want; i++ {
			e.cols.Append(r)
		}
	})
	if avg != 0 {
		t.Fatalf("columnar fill allocates %.1f times for %d rects, want 0", avg, want)
	}
}

// TestBatchedExpansionZeroAllocs pins the steady-state allocation contract
// of the batched distance layer: once the engine is constructed, mirroring
// a node's entries into the columnar scratch, running a kernel over them,
// and taking a sweep window allocates nothing.
func TestBatchedExpansionZeroAllocs(t *testing.T) {
	tr := buildTree(t, clusteredPoints(9, 400))
	e, err := newEngine(WrapRTree(tr), WrapRTree(tr), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.close()

	root, err := e.t1.Root()
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.t1.Node(root.Ref)
	if err != nil {
		t.Fatal(err)
	}
	items := appendNodeItems(nil, n, kindNode)
	if len(items) < 2 {
		t.Fatalf("root has %d entries, need >= 2", len(items))
	}
	q := geom.R(geom.Pt(100, 100), geom.Pt(300, 300))

	// Warm the window scratch's outer slices once.
	_ = e.batchMinDist(q, items)
	e.colsWin.Window(&e.cols, 0, len(items))

	avg := testing.AllocsPerRun(200, func() {
		out := e.batchMinDist(q, items)
		e.colsWin.Window(&e.cols, 1, len(items))
		e.kern.MinDistBatch(q, &e.colsWin, out[:len(items)-1])
	})
	if avg != 0 {
		t.Fatalf("batched expansion allocates %.1f times per run, want 0", avg)
	}
}
