package distjoin

import (
	"math"
	"testing"

	"distjoin/internal/geom"
)

// bruteClusteringJoin runs the greedy mutual pairing: repeatedly take the
// globally closest pair among unconsumed objects and consume both.
func bruteClusteringJoin(a, b []geom.Point, m geom.Metric) []bruteResult {
	type cand struct {
		i, j int
		d    float64
	}
	var all []cand
	for i, p := range a {
		for j, q := range b {
			all = append(all, cand{i: i, j: j, d: m.Dist(p, q)})
		}
	}
	// Stable greedy: sort ascending, sweep, consume.
	for x := 1; x < len(all); x++ {
		for y := x; y > 0 && all[y].d < all[y-1].d; y-- {
			all[y], all[y-1] = all[y-1], all[y]
		}
	}
	usedA := map[int]bool{}
	usedB := map[int]bool{}
	var out []bruteResult
	for _, c := range all {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i] = true
		usedB[c.j] = true
		out = append(out, bruteResult{i: c.i, j: c.j, d: c.d})
	}
	return out
}

func TestClusteringJoinMatchesGreedy(t *testing.T) {
	a := clusteredPoints(121, 60)
	b := clusteredPoints(122, 80)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteClusteringJoin(a, b, geom.Euclidean)

	for _, f := range allFilters {
		s, err := NewClusteringJoin(ta, tb, f, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != len(want) {
			t.Fatalf("filter %v: %d pairs, want %d (= min cardinality %d)",
				f, len(got), len(want), len(a))
		}
		seenA := map[uint64]bool{}
		seenB := map[uint64]bool{}
		for i, p := range got {
			if math.Abs(p.Dist-want[i].d) > 1e-9 {
				t.Fatalf("filter %v pair %d: %g want %g", f, i, p.Dist, want[i].d)
			}
			if seenA[uint64(p.Obj1)] || seenB[uint64(p.Obj2)] {
				t.Fatalf("filter %v: object reused in pair %d", f, i)
			}
			seenA[uint64(p.Obj1)] = true
			seenB[uint64(p.Obj2)] = true
		}
	}
}

func TestClusteringJoinCardinality(t *testing.T) {
	// The clustering join pairs up min(|A|, |B|) objects.
	a := clusteredPoints(123, 25)
	b := clusteredPoints(124, 90)
	ta, tb := buildTree(t, a), buildTree(t, b)
	s, err := NewClusteringJoin(ta, tb, FilterInside2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := len(drainSemi(t, s, 0)); got != 25 {
		t.Fatalf("clustering join produced %d pairs, want 25", got)
	}
	// Reversed operands: still min cardinality.
	s2, err := NewClusteringJoin(tb, ta, FilterInside2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(drainSemi(t, s2, 0)); got != 25 {
		t.Fatalf("reversed clustering join produced %d pairs, want 25", got)
	}
}

func TestClusteringJoinSymmetryOfDistances(t *testing.T) {
	// Unlike the semi-join, the clustering join's DISTANCE MULTISET is
	// operand-order independent (the operation is symmetric, §1).
	a := clusteredPoints(125, 40)
	b := clusteredPoints(126, 40)
	ta, tb := buildTree(t, a), buildTree(t, b)
	s1, err := NewClusteringJoin(ta, tb, FilterInside2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1 := []float64{}
	for _, p := range drainSemi(t, s1, 0) {
		d1 = append(d1, p.Dist)
	}
	s1.Close()
	s2, err := NewClusteringJoin(tb, ta, FilterInside2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d2 := []float64{}
	for _, p := range drainSemi(t, s2, 0) {
		d2 = append(d2, p.Dist)
	}
	s2.Close()
	if len(d1) != len(d2) {
		t.Fatalf("cardinalities differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-9 {
			t.Fatalf("distance sequence differs at %d: %g vs %g", i, d1[i], d2[i])
		}
	}
}

func TestClusteringJoinWithMaxPairs(t *testing.T) {
	a := clusteredPoints(127, 50)
	b := clusteredPoints(128, 50)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteClusteringJoin(a, b, geom.Euclidean)
	for _, k := range []int{1, 7, 30} {
		s, err := NewClusteringJoin(ta, tb, FilterInside2, Options{MaxPairs: k})
		if err != nil {
			t.Fatal(err)
		}
		got := drainSemi(t, s, 0)
		s.Close()
		if len(got) != k {
			t.Fatalf("MaxPairs=%d delivered %d", k, len(got))
		}
		for i, p := range got {
			if math.Abs(p.Dist-want[i].d) > 1e-9 {
				t.Fatalf("MaxPairs=%d pair %d wrong", k, i)
			}
		}
	}
}
