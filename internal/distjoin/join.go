package distjoin

import (
	"errors"

	"distjoin/internal/qtrace"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// runner is the execution strategy behind the public iterators: the
// sequential incremental engine, or the partitioned parallel merge when
// Options.Parallelism selects it and the configuration is sound for it.
type runner interface {
	next() (Pair, bool, error)
	close() error
	reportedCount() int
	queueLen() int
	effectiveMaxDist() float64
	didRestart() bool
}

// runner implementation on the sequential engine.
func (e *engine) reportedCount() int        { return e.reported }
func (e *engine) queueLen() int             { return e.q.Len() }
func (e *engine) effectiveMaxDist() float64 { return e.dmaxCur }
func (e *engine) didRestart() bool          { return e.restarted }

// queryKind names the operation for the query trace.
func queryKind(semi *semiState) string {
	switch {
	case semi == nil:
		return "join"
	case semi.symmetric:
		return "clustering"
	case semi.k > 1:
		return "knn"
	}
	return "semijoin"
}

// newRunner validates the options and picks the execution strategy. The
// parallel path is chosen when the effective parallelism exceeds one, the
// configuration is parallelizable (see parallelizable), both inputs are
// non-empty, and the trees have enough top-level fan-out to partition;
// every other case falls back to the sequential engine, transparently.
//
// When Options.Tracer is set, newRunner also begins the per-query trace:
// everything up to the engines being ready to pop (validation, partition
// planning, queue construction, seeding) is the trace's plan span, and a
// constructor failure finishes the trace immediately, error-annotated. On
// success the returned query is finished by the iterator's Close.
func newRunner(t1, t2 SpatialIndex, opts Options, semi *semiState) (runner, *qtrace.Query, *stats.Counters, error) {
	if err := opts.validate(t1, t2, semi != nil); err != nil {
		return nil, nil, nil, err
	}
	q := opts.Tracer.Begin(queryKind(semi), opts.QueryID)
	opts.query = q
	opts.Counters = q.AttachCounters(opts.Counters)
	planStart := q.Now()
	r, err := buildRunner(t1, t2, opts, semi)
	if err != nil {
		q.PlanDone(planStart)
		q.Finish(err)
		return nil, nil, nil, err
	}
	q.PlanDone(planStart)
	return r, q, opts.Counters, nil
}

// buildRunner constructs the execution strategy on validated options.
func buildRunner(t1, t2 SpatialIndex, opts Options, semi *semiState) (runner, error) {
	if parallelizable(&opts, semi) && t1.NumObjects() > 0 && t2.NumObjects() > 0 {
		r, err := newParallelJoin(t1, t2, opts, semi)
		if err != nil {
			return nil, err
		}
		if r != nil {
			return r, nil
		}
	}
	return newEngine(t1, t2, opts, semi)
}

// ErrIteratorClosed is returned by Next after Close.
var ErrIteratorClosed = errors.New("distjoin: iterator is closed")

// ErrQueueStore wraps every failure of the Options.QueueStore factory, so
// callers can tell a broken storage backend from invalid join options.
var ErrQueueStore = errors.New("distjoin: QueueStore factory")

// iterState is the terminal-state machine shared by Join and SemiJoin: it
// latches the first error a runner surfaces (every later Next returns the
// same error, and Err exposes it), makes Close idempotent, and rejects
// Next after Close. A failed stream is therefore always a clean prefix of
// the correct result followed by a sticky error — never a silently
// truncated success.
type iterState struct {
	r      runner
	q      *qtrace.Query   // nil unless Options.Tracer was set
	c      *stats.Counters // effective run counters; may be nil
	err    error
	closed bool
}

func (s *iterState) next() (Pair, bool, error) {
	if s.closed {
		return Pair{}, false, ErrIteratorClosed
	}
	if s.err != nil {
		return Pair{}, false, s.err
	}
	p, ok, err := s.r.next()
	if err != nil {
		s.err = err
		// Count the query as canceled exactly once, at the moment the
		// cancellation latches as the terminal error (Stats.Cancellations,
		// surfaced as distjoin_queries_canceled_total on /metrics).
		if errors.Is(err, ErrCanceled) {
			s.c.AddCancellation(1)
		}
		return Pair{}, false, err
	}
	return p, ok, nil
}

func (s *iterState) close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.r.close()
	if err != nil && s.err == nil {
		s.err = err
	}
	// The runner has released every engine, so the per-worker span
	// accumulators are quiescent: complete the query trace with the
	// latched terminal error (nil on a clean close).
	s.q.Finish(s.err)
	return err
}

// abort closes the iterator with cause latched as its terminal error, so
// the query trace lands error-annotated even when no Next call surfaced
// the failure (e.g. a panic that unwound past the iterator's caller). An
// error already latched by Next wins; a nil cause makes abort a plain
// close.
func (s *iterState) abort(cause error) error {
	if s.err == nil && cause != nil {
		s.err = cause
	}
	return s.close()
}

// lastErr returns the latched terminal error, if any. Close by itself is
// not an error state: only a failure surfaced by Next or by Close's own
// resource release is reported.
func (s *iterState) lastErr() error { return s.err }

// Join is an incremental distance join iterator: it reports the pairs of
// the Cartesian product of the two indexed inputs in ascending order of
// distance (descending when Options.Reverse is set), one pair per Next
// call, computing only as much of the join as the caller consumes.
type Join struct {
	s iterState
}

// NewJoin creates an incremental distance join of two R-trees. The trees
// must have equal dimensionality and must not be modified while the join is
// in progress.
func NewJoin(t1, t2 *rtree.Tree, opts Options) (*Join, error) {
	return NewJoinIndexes(wrapTree(t1), wrapTree(t2), opts)
}

// NewJoinIndexes creates an incremental distance join over any two
// hierarchical spatial indexes implementing SpatialIndex — the paper's
// generality claim (§2.2): the same algorithm drives R-trees, quadtrees and
// other hierarchical decompositions, in any combination.
func NewJoinIndexes(t1, t2 SpatialIndex, opts Options) (*Join, error) {
	r, q, c, err := newRunner(t1, t2, opts, nil)
	if err != nil {
		return nil, err
	}
	return &Join{s: iterState{r: r, q: q, c: c}}, nil
}

// wrapTree adapts an R-tree, preserving nil for validation.
func wrapTree(t *rtree.Tree) SpatialIndex {
	if t == nil {
		return nil
	}
	return WrapRTree(t)
}

// Next returns the next closest pair. ok is false when the join is
// exhausted (or the MaxPairs bound is reached). Once Next returns an
// error the iterator is in a terminal state: the pairs already delivered
// are a correct prefix of the result, every further Next returns the same
// error, and Err reports it. After Close, Next returns ErrIteratorClosed.
func (j *Join) Next() (p Pair, ok bool, err error) { return j.s.next() }

// Err returns the terminal error of the iterator, if any: the first error
// Next surfaced (storage failure, checksum mismatch, failed partition
// worker, ...). It stays nil on a clean exhaustion and after a clean
// Close.
func (j *Join) Err() error { return j.s.lastErr() }

// Reported returns the number of pairs delivered so far.
func (j *Join) Reported() int { return j.s.r.reportedCount() }

// QueueLen returns the current priority-queue size (diagnostic). On the
// parallel path it is the number of merged-but-undelivered result pairs
// rather than a priority-queue size (the partition queues belong to
// running workers).
func (j *Join) QueueLen() int { return j.s.r.queueLen() }

// EffectiveMaxDist returns the maximum distance currently in force: the
// configured maximum, possibly tightened by the §2.2.4 estimation. On the
// parallel path each partition tightens its own bound, so this reports the
// configured maximum.
func (j *Join) EffectiveMaxDist() float64 { return j.s.r.effectiveMaxDist() }

// Restarted reports whether the engine used the §2.2.4 restart (the
// estimation had over-tightened the maximum distance); on the parallel
// path, whether any partition did. Diagnostic.
func (j *Join) Restarted() bool { return j.s.r.didRestart() }

// Close releases queue resources (the hybrid queue's scratch file) and, on
// the parallel path, cancels the partition workers and waits for them to
// exit. Close is idempotent; after it, Next returns ErrIteratorClosed.
func (j *Join) Close() error { return j.s.close() }

// Abort closes the iterator like Close but latches cause as its terminal
// error when no Next call has surfaced one, annotating the query trace.
// For callers (e.g. a server) that tear an iterator down after a failure
// the engine itself never observed, such as a recovered panic.
func (j *Join) Abort(cause error) error { return j.s.abort(cause) }

// SemiJoin is an incremental distance semi-join iterator (§2.3): for each
// first-input object, its nearest second-input object, reported in
// ascending order of distance.
type SemiJoin struct {
	s iterState
}

// NewSemiJoin creates an incremental distance semi-join of two R-trees
// using the given filtering strategy (§4.2.1).
func NewSemiJoin(t1, t2 *rtree.Tree, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return NewSemiJoinIndexes(wrapTree(t1), wrapTree(t2), filter, opts)
}

// NewSemiJoinIndexes creates an incremental distance semi-join over any two
// SpatialIndex implementations.
func NewSemiJoinIndexes(t1, t2 SpatialIndex, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return NewKNearestJoinIndexes(t1, t2, 1, filter, opts)
}

// NewKNearestJoin creates an incremental k-nearest-neighbours join of two
// R-trees: for each first-input object, its k nearest second-input objects,
// reported in ascending order of distance (the "all nearest neighbors"
// variation of §1, generalized to k). k = 1 is the distance semi-join.
func NewKNearestJoin(t1, t2 *rtree.Tree, k int, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return NewKNearestJoinIndexes(wrapTree(t1), wrapTree(t2), k, filter, opts)
}

// NewClusteringJoin creates the symmetric "clustering join" of [32] that
// the paper's introduction contrasts with the distance semi-join (§1):
// pairs are reported in ascending distance order, and once (o1, o2) is
// reported NEITHER object appears in any later pair — a greedy mutual
// pairing of the two inputs. The result has min(|A|, |B|) pairs. The
// d_max-based filters assume only the first side is consumed, so the filter
// is capped at Inside2 internally.
func NewClusteringJoin(t1, t2 *rtree.Tree, filter SemiFilter, opts Options) (*SemiJoin, error) {
	return NewClusteringJoinIndexes(wrapTree(t1), wrapTree(t2), filter, opts)
}

// NewClusteringJoinIndexes is NewClusteringJoin over arbitrary SpatialIndex
// implementations.
func NewClusteringJoinIndexes(t1, t2 SpatialIndex, filter SemiFilter, opts Options) (*SemiJoin, error) {
	if filter < FilterOutside || filter > FilterGlobalAll {
		return nil, errInvalidFilter(filter)
	}
	r, q, c, err := newRunner(t1, t2, opts, &semiState{filter: filter, k: 1, symmetric: true})
	if err != nil {
		return nil, err
	}
	return &SemiJoin{s: iterState{r: r, q: q, c: c}}, nil
}

// NewKNearestJoinIndexes is NewKNearestJoin over arbitrary SpatialIndex
// implementations. For k > 1 the d_max-based filters (Local and up) are
// degraded to Inside2, since their bounds only promise one partner.
func NewKNearestJoinIndexes(t1, t2 SpatialIndex, k int, filter SemiFilter, opts Options) (*SemiJoin, error) {
	if filter < FilterOutside || filter > FilterGlobalAll {
		return nil, errInvalidFilter(filter)
	}
	if k < 1 {
		return nil, errors.New("distjoin: k must be at least 1")
	}
	r, q, c, err := newRunner(t1, t2, opts, &semiState{filter: filter, k: k})
	if err != nil {
		return nil, err
	}
	return &SemiJoin{s: iterState{r: r, q: q, c: c}}, nil
}

// Next returns the next semi-join pair. ok is false when every first-input
// object has been reported (or MaxPairs was reached, or no partner exists
// within the distance range). Error semantics match Join.Next: the first
// error is terminal and sticky, and Next after Close returns
// ErrIteratorClosed.
func (s *SemiJoin) Next() (p Pair, ok bool, err error) { return s.s.next() }

// Err returns the terminal error of the iterator, if any; see Join.Err.
func (s *SemiJoin) Err() error { return s.s.lastErr() }

// Reported returns the number of pairs delivered so far.
func (s *SemiJoin) Reported() int { return s.s.r.reportedCount() }

// QueueLen returns the current priority-queue size (diagnostic); see
// Join.QueueLen for the parallel-path meaning.
func (s *SemiJoin) QueueLen() int { return s.s.r.queueLen() }

// Restarted reports whether the engine used the §2.2.4 restart (any
// partition, on the parallel path). Diagnostic.
func (s *SemiJoin) Restarted() bool { return s.s.r.didRestart() }

// Close releases queue resources. Idempotent; see Join.Close.
func (s *SemiJoin) Close() error { return s.s.close() }

// Abort closes the iterator like Close but latches cause as its terminal
// error when no Next call has surfaced one, annotating the query trace.
func (s *SemiJoin) Abort(cause error) error { return s.s.abort(cause) }

func errInvalidFilter(f SemiFilter) error {
	return &filterError{f: f}
}

type filterError struct{ f SemiFilter }

func (e *filterError) Error() string {
	return "distjoin: invalid semi-join filter " + e.f.String()
}
