package distjoin

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// buildTree bulk-loads points into a small-node tree.
func buildTree(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func clusteredPoints(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		// A few clusters plus uniform noise, mimicking skewed spatial data.
		if rnd.Intn(4) == 0 {
			pts[i] = geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		} else {
			cx := float64(100 + 200*rnd.Intn(4))
			cy := float64(150 + 250*rnd.Intn(3))
			pts[i] = geom.Pt(cx+rnd.NormFloat64()*30, cy+rnd.NormFloat64()*30)
		}
	}
	return pts
}

// bruteJoin returns all pairs sorted ascending by Euclidean distance.
type bruteResult struct {
	i, j int
	d    float64
}

func bruteJoin(a, b []geom.Point, m geom.Metric) []bruteResult {
	out := make([]bruteResult, 0, len(a)*len(b))
	for i, p := range a {
		for j, q := range b {
			out = append(out, bruteResult{i: i, j: j, d: m.Dist(p, q)})
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x].d < out[y].d })
	return out
}

// drainJoin pulls up to limit pairs.
func drainJoin(t *testing.T, j *Join, limit int) []Pair {
	t.Helper()
	var out []Pair
	for limit <= 0 || len(out) < limit {
		p, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// assertDistancesMatch verifies the result distance sequence equals the
// brute-force prefix (pairs at equal distance may come in any order).
func assertDistancesMatch(t *testing.T, got []Pair, want []bruteResult) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("got %d pairs, brute force has %d", len(got), len(want))
	}
	for i, p := range got {
		if math.Abs(p.Dist-want[i].d) > 1e-9 {
			t.Fatalf("pair %d: dist %g, want %g", i, p.Dist, want[i].d)
		}
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	a := clusteredPoints(1, 150)
	b := clusteredPoints(2, 180)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteJoin(a, b, geom.Euclidean)

	variants := []struct {
		name string
		opts Options
	}{
		{"Even/DepthFirst", Options{}},
		{"Even/BreadthFirst", Options{TieBreak: BreadthFirst}},
		{"Basic/DepthFirst", Options{Traversal: TraverseBasic}},
		{"Simultaneous/DepthFirst", Options{Traversal: TraverseSimultaneous}},
		{"Simultaneous/NoSweep", Options{Traversal: TraverseSimultaneous, NoPlaneSweep: true}},
		{"Hybrid", Options{Queue: QueueHybrid, HybridDT: 25, HybridInMemory: true}},
		{"HybridAdaptive", Options{Queue: QueueHybrid, HybridInMemory: true}},
		{"HybridSmallPages", Options{Queue: QueueHybrid, HybridDT: 25, HybridInMemory: true, QueuePageSize: 512}},
		{"Parallel", Options{Parallelism: 4}},
		{"ParallelHybrid", Options{Parallelism: 3, Queue: QueueHybrid, HybridDT: 25, HybridInMemory: true, QueuePageSize: 1024}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			j, err := NewJoin(ta, tb, v.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			got := drainJoin(t, j, 2000)
			if len(got) != 2000 {
				t.Fatalf("drained %d pairs", len(got))
			}
			assertDistancesMatch(t, got, want)
			// Verify the pairs themselves, not just distances: each
			// reported pair's true distance must equal the reported one.
			for _, p := range got {
				if d := geom.Euclidean.Dist(a[p.Obj1], b[p.Obj2]); math.Abs(d-p.Dist) > 1e-9 {
					t.Fatalf("pair (%d,%d): reported %g, actual %g", p.Obj1, p.Obj2, p.Dist, d)
				}
			}
		})
	}
}

func TestJoinFullResult(t *testing.T) {
	a := clusteredPoints(3, 40)
	b := clusteredPoints(4, 50)
	ta, tb := buildTree(t, a), buildTree(t, b)
	j, err := NewJoin(ta, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	if len(got) != 40*50 {
		t.Fatalf("full join produced %d pairs, want %d", len(got), 40*50)
	}
	want := bruteJoin(a, b, geom.Euclidean)
	assertDistancesMatch(t, got, want)
	// Every pair of the Cartesian product appears exactly once.
	seen := map[[2]rtree.ObjID]bool{}
	for _, p := range got {
		k := [2]rtree.ObjID{p.Obj1, p.Obj2}
		if seen[k] {
			t.Fatalf("pair %v reported twice", k)
		}
		seen[k] = true
	}
}

func TestJoinOtherMetrics(t *testing.T) {
	a := clusteredPoints(5, 60)
	b := clusteredPoints(6, 70)
	ta, tb := buildTree(t, a), buildTree(t, b)
	for _, m := range []geom.Metric{geom.Manhattan, geom.Chessboard} {
		t.Run(m.Name(), func(t *testing.T) {
			j, err := NewJoin(ta, tb, Options{Metric: m})
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			got := drainJoin(t, j, 500)
			assertDistancesMatch(t, got, bruteJoin(a, b, m))
		})
	}
}

func TestJoinDistanceRange(t *testing.T) {
	a := clusteredPoints(7, 100)
	b := clusteredPoints(8, 100)
	ta, tb := buildTree(t, a), buildTree(t, b)
	const dmin, dmax = 50.0, 120.0
	j, err := NewJoin(ta, tb, Options{MinDist: dmin, MaxDist: dmax})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	var want []bruteResult
	for _, r := range bruteJoin(a, b, geom.Euclidean) {
		if r.d >= dmin && r.d <= dmax {
			want = append(want, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("range join returned %d pairs, want %d", len(got), len(want))
	}
	assertDistancesMatch(t, got, want)
	for _, p := range got {
		if p.Dist < dmin || p.Dist > dmax {
			t.Fatalf("pair outside range: %g", p.Dist)
		}
	}
}

func TestJoinMaxPairs(t *testing.T) {
	a := clusteredPoints(9, 200)
	b := clusteredPoints(10, 220)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteJoin(a, b, geom.Euclidean)
	for _, k := range []int{1, 10, 100, 1000} {
		j, err := NewJoin(ta, tb, Options{MaxPairs: k})
		if err != nil {
			t.Fatal(err)
		}
		got := drainJoin(t, j, 0)
		if len(got) != k {
			t.Fatalf("MaxPairs=%d returned %d pairs", k, len(got))
		}
		assertDistancesMatch(t, got, want)
		if !math.IsInf(j.EffectiveMaxDist(), 1) && j.EffectiveMaxDist() < got[len(got)-1].Dist {
			t.Fatalf("estimation overtightened: bound %g < kth dist %g",
				j.EffectiveMaxDist(), got[len(got)-1].Dist)
		}
		j.Close()
	}
}

func TestJoinMaxPairsTightensBound(t *testing.T) {
	a := clusteredPoints(11, 300)
	b := clusteredPoints(12, 300)
	ta, tb := buildTree(t, a), buildTree(t, b)
	j, err := NewJoin(ta, tb, Options{MaxPairs: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	drainJoin(t, j, 0)
	if math.IsInf(j.EffectiveMaxDist(), 1) {
		t.Fatal("estimation never tightened the maximum distance")
	}
}

func TestJoinReverse(t *testing.T) {
	a := clusteredPoints(13, 60)
	b := clusteredPoints(14, 70)
	ta, tb := buildTree(t, a), buildTree(t, b)
	j, err := NewJoin(ta, tb, Options{Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 500)
	brute := bruteJoin(a, b, geom.Euclidean)
	// Farthest first: compare against the descending prefix.
	for i, p := range got {
		want := brute[len(brute)-1-i].d
		if math.Abs(p.Dist-want) > 1e-9 {
			t.Fatalf("reverse pair %d: dist %g, want %g", i, p.Dist, want)
		}
	}
}

func TestJoinReverseFull(t *testing.T) {
	a := clusteredPoints(15, 25)
	b := clusteredPoints(16, 30)
	ta, tb := buildTree(t, a), buildTree(t, b)
	j, err := NewJoin(ta, tb, Options{Reverse: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	if len(got) != 25*30 {
		t.Fatalf("reverse full join produced %d pairs", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist > got[i-1].Dist+1e-9 {
			t.Fatalf("reverse order violated at %d: %g then %g", i, got[i-1].Dist, got[i].Dist)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	empty := buildTree(t, nil)
	full := buildTree(t, clusteredPoints(17, 20))
	for _, pair := range [][2]*rtree.Tree{{empty, full}, {full, empty}, {empty, empty}} {
		j, err := NewJoin(pair[0], pair[1], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := j.Next(); ok {
			t.Fatal("join of empty input produced a pair")
		}
		j.Close()
	}
}

func TestJoinSingleObjects(t *testing.T) {
	ta := buildTree(t, []geom.Point{geom.Pt(0, 0)})
	tb := buildTree(t, []geom.Point{geom.Pt(3, 4)})
	j, err := NewJoin(ta, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	p, ok, err := j.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if math.Abs(p.Dist-5) > 1e-9 {
		t.Fatalf("Dist = %g, want 5", p.Dist)
	}
	if _, ok, _ := j.Next(); ok {
		t.Fatal("more than one pair from singletons")
	}
}

func TestJoinDuplicatePoints(t *testing.T) {
	// Many coincident points: distances tie at 0; every pair must still be
	// reported exactly once.
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Pt(5, 5)
	}
	ta, tb := buildTree(t, pts), buildTree(t, pts)
	j, err := NewJoin(ta, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	if len(got) != 400 {
		t.Fatalf("got %d pairs, want 400", len(got))
	}
	for _, p := range got {
		if p.Dist != 0 {
			t.Fatalf("expected zero distance, got %g", p.Dist)
		}
	}
}

func TestJoinSelfJoin(t *testing.T) {
	pts := clusteredPoints(19, 80)
	tr := buildTree(t, pts)
	j, err := NewJoin(tr, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 100)
	// The first 80 pairs of a self join are the (i, i) pairs at distance 0.
	zero := 0
	for _, p := range got {
		if p.Dist == 0 {
			zero++
		}
	}
	if zero < 80 {
		t.Fatalf("self join found %d zero-distance pairs, want >= 80", zero)
	}
}

func TestJoinOBRMode(t *testing.T) {
	// Extended objects: leaves store bounding rectangles; exact geometry
	// (smaller rects nested inside) comes from fetch callbacks.
	rnd := rand.New(rand.NewSource(23))
	type obj struct{ obr, exact geom.Rect }
	mkObjs := func(n int) []obj {
		out := make([]obj, n)
		for i := range out {
			x, y := rnd.Float64()*800, rnd.Float64()*800
			w, h := 4+rnd.Float64()*10, 4+rnd.Float64()*10
			exact := geom.R(geom.Pt(x+1, y+1), geom.Pt(x+w-1, y+h-1))
			out[i] = obj{obr: geom.R(geom.Pt(x, y), geom.Pt(x+w, y+h)), exact: exact}
		}
		return out
	}
	// Note the OBR must minimally bound the object for MINMAXDIST pruning;
	// here it does not (1-unit slack), so run without MinDist to stay in
	// territory where only plain MINDIST consistency is required.
	oa, ob := mkObjs(60), mkObjs(70)
	mkTree := func(objs []obj) *rtree.Tree {
		items := make([]rtree.Item, len(objs))
		for i, o := range objs {
			items[i] = rtree.Item{Rect: o.obr, Obj: rtree.ObjID(i)}
		}
		tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	ta, tb := mkTree(oa), mkTree(ob)
	fetches := 0
	j, err := NewJoin(ta, tb, Options{
		Fetch1: func(id rtree.ObjID) (geom.Rect, error) { fetches++; return oa[id].exact, nil },
		Fetch2: func(id rtree.ObjID) (geom.Rect, error) { fetches++; return ob[id].exact, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 300)
	if fetches == 0 {
		t.Fatal("OBR mode never fetched exact geometry")
	}
	// Brute force on exact geometry.
	var want []float64
	for _, a := range oa {
		for _, b := range ob {
			want = append(want, geom.Euclidean.MinDist(a.exact, b.exact))
		}
	}
	sort.Float64s(want)
	for i, p := range got {
		if math.Abs(p.Dist-want[i]) > 1e-9 {
			t.Fatalf("OBR pair %d: dist %g, want %g", i, p.Dist, want[i])
		}
	}
}

func TestJoinOptionValidation(t *testing.T) {
	ta := buildTree(t, clusteredPoints(25, 10))
	tb := buildTree(t, clusteredPoints(26, 10))
	cases := []Options{
		{MinDist: -1},
		{MinDist: 10, MaxDist: 5},
		{MaxPairs: -1},
		{Reverse: true, Queue: QueueHybrid},
		{Fetch1: func(rtree.ObjID) (geom.Rect, error) { return geom.Rect{}, nil }},
		{PlaneSweep: true, NoPlaneSweep: true},
		{QueuePageSize: -1},
	}
	for i, o := range cases {
		if _, err := NewJoin(ta, tb, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := NewJoin(nil, tb, Options{}); err == nil {
		t.Error("nil tree accepted")
	}
	t3d, _ := rtree.New(rtree.Config{Dims: 3})
	defer t3d.Close()
	if _, err := NewJoin(ta, t3d, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestJoinStopAfterMaxPairsThenDone(t *testing.T) {
	ta := buildTree(t, clusteredPoints(27, 50))
	tb := buildTree(t, clusteredPoints(28, 50))
	j, err := NewJoin(ta, tb, Options{MaxPairs: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := drainJoin(t, j, 0)
	if len(got) != 7 {
		t.Fatalf("got %d", len(got))
	}
	// Next keeps returning done.
	if _, ok, _ := j.Next(); ok {
		t.Fatal("iterator resurrected after MaxPairs")
	}
	if j.Reported() != 7 {
		t.Fatalf("Reported = %d", j.Reported())
	}
}

// TestAccountingSemantics pins the paper's counting rules: object distance
// calculations (Table 1's "Dist. Calc.") count only leaf-entry pairs; node
// distance computations are tracked separately; queue inserts and the
// high-water mark are recorded by the queue.
func TestAccountingSemantics(t *testing.T) {
	a := clusteredPoints(91, 100)
	b := clusteredPoints(92, 100)
	ta, tb := buildTree(t, a), buildTree(t, b)
	c := &stats.Counters{}
	j, err := NewJoin(ta, tb, Options{Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 50; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("Next %d: %v %v", i, ok, err)
		}
	}
	if c.DistCalcs == 0 {
		t.Fatal("no object distance calcs counted")
	}
	if c.NodeDistCalcs == 0 {
		t.Fatal("no node distance calcs counted")
	}
	if c.QueueInserts == 0 || c.MaxQueueSize == 0 || c.QueuePops == 0 {
		t.Fatalf("queue accounting missing: %+v", c)
	}
	if c.PairsReported != 50 {
		t.Fatalf("PairsReported = %d", c.PairsReported)
	}
	// Queue inserts can never exceed total distance computations: every
	// enqueued pair had its key computed exactly once.
	if c.QueueInserts > c.DistCalcs+c.NodeDistCalcs {
		t.Fatalf("inserts %d exceed distance computations %d",
			c.QueueInserts, c.DistCalcs+c.NodeDistCalcs)
	}
}

// TestCountersNilSafe runs a join with no counters attached end to end.
func TestCountersNilSafe(t *testing.T) {
	ta := buildTree(t, clusteredPoints(93, 50))
	tb := buildTree(t, clusteredPoints(94, 50))
	j, err := NewJoin(ta, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 20; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
}

// TestJoinDeferLeaves checks the §2.2.2 deferred-leaf strategy produces the
// standard result on both traversal policies.
func TestJoinDeferLeaves(t *testing.T) {
	a := clusteredPoints(95, 120)
	b := clusteredPoints(96, 140)
	ta, tb := buildTree(t, a), buildTree(t, b)
	want := bruteJoin(a, b, geom.Euclidean)
	for _, opts := range []Options{
		{DeferLeaves: true},
		{DeferLeaves: true, Traversal: TraverseBasic},
		{DeferLeaves: true, TieBreak: BreadthFirst},
	} {
		j, err := NewJoin(ta, tb, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := drainJoin(t, j, 1000)
		j.Close()
		assertDistancesMatch(t, got, want)
	}
	// And a semi-join with deferral.
	s, err := NewSemiJoin(ta, tb, FilterInside2, Options{DeferLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := drainSemi(t, s, 0)
	wantSemi := bruteSemiJoin(a, b, geom.Euclidean)
	if len(got) != len(wantSemi) {
		t.Fatalf("deferred semi-join: %d pairs, want %d", len(got), len(wantSemi))
	}
	for i, p := range got {
		if math.Abs(p.Dist-wantSemi[i].d) > 1e-9 {
			t.Fatalf("pair %d: %g want %g", i, p.Dist, wantSemi[i].d)
		}
	}
}

// TestJoinReverseWithMaxPairs exercises the §2.2.5 minimum-distance
// estimation: a reverse join bounded to K pairs must deliver exactly the K
// farthest, with the estimation raising the minimum-distance bound.
func TestJoinReverseWithMaxPairs(t *testing.T) {
	a := clusteredPoints(131, 150)
	b := clusteredPoints(132, 170)
	ta, tb := buildTree(t, a), buildTree(t, b)
	brute := bruteJoin(a, b, geom.Euclidean)
	for _, k := range []int{1, 10, 200, 2000} {
		j, err := NewJoin(ta, tb, Options{Reverse: true, MaxPairs: k})
		if err != nil {
			t.Fatal(err)
		}
		got := drainJoin(t, j, 0)
		j.Close()
		if len(got) != k {
			t.Fatalf("k=%d delivered %d", k, len(got))
		}
		for i, p := range got {
			want := brute[len(brute)-1-i].d
			if math.Abs(p.Dist-want) > 1e-9 {
				t.Fatalf("k=%d pair %d: %g want %g", k, i, p.Dist, want)
			}
		}
	}
	// The estimation must actually raise the bound (prune something) for a
	// modest K on this data.
	c := &stats.Counters{}
	jBounded, err := NewJoin(ta, tb, Options{Reverse: true, MaxPairs: 50, Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	drainJoin(t, jBounded, 0)
	boundedQueue := c.MaxQueueSize
	jBounded.Close()
	c2 := &stats.Counters{}
	jFree, err := NewJoin(ta, tb, Options{Reverse: true, Counters: c2})
	if err != nil {
		t.Fatal(err)
	}
	drainJoin(t, jFree, 50)
	jFree.Close()
	if boundedQueue >= c2.MaxQueueSize {
		t.Fatalf("reverse estimation did not shrink the queue: %d vs %d", boundedQueue, c2.MaxQueueSize)
	}
}

// TestSemiJoinReverseMaxPairsStillRejected pins the unsupported combination.
func TestSemiJoinReverseMaxPairsStillRejected(t *testing.T) {
	ta := buildTree(t, clusteredPoints(133, 10))
	tb := buildTree(t, clusteredPoints(134, 10))
	if _, err := NewSemiJoin(ta, tb, FilterInside2, Options{Reverse: true, MaxPairs: 3}); err == nil {
		t.Fatal("reverse semi-join with MaxPairs accepted")
	}
}
