package datagen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distjoin/internal/geom"
)

// WritePoints writes points as CSV lines "x,y[,z...]".
func WritePoints(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		for i, c := range p {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoints parses CSV lines of coordinates. Blank lines and lines
// starting with '#' are skipped. All points must share a dimensionality.
func ReadPoints(r io.Reader) ([]geom.Point, error) {
	var pts []geom.Point
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	dims := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dims == 0 {
			dims = len(fields)
		} else if len(fields) != dims {
			return nil, fmt.Errorf("datagen: line %d has %d fields, want %d", lineNo, len(fields), dims)
		}
		p := make(geom.Point, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("datagen: line %d field %d: %w", lineNo, i+1, err)
			}
			p[i] = v
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("datagen: line %d: non-finite coordinate", lineNo)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}
