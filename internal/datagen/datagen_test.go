package datagen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range map[string]func(int64, int) []geom.Point{
		"uniform": Uniform,
		"water":   Water,
		"roads":   Roads,
	} {
		t.Run(name, func(t *testing.T) {
			a := gen(42, 500)
			b := gen(42, 500)
			if len(a) != 500 {
				t.Fatalf("generated %d points", len(a))
			}
			for i := range a {
				if !a[i].Equal(b[i]) {
					t.Fatalf("point %d differs across runs with same seed", i)
				}
			}
			c := gen(43, 500)
			same := 0
			for i := range a {
				if a[i].Equal(c[i]) {
					same++
				}
			}
			if same == 500 {
				t.Fatal("different seeds produced identical data")
			}
		})
	}
}

func TestGeneratorsInsideWorld(t *testing.T) {
	for name, pts := range map[string][]geom.Point{
		"uniform":   Uniform(1, 2000),
		"water":     Water(2, 2000),
		"roads":     Roads(3, 2000),
		"clustered": Clustered(4, 2000, 8, 2000, 0.1),
	} {
		for i, p := range pts {
			if !World.ContainsPoint(p) {
				t.Fatalf("%s point %d outside world: %v", name, i, p)
			}
		}
	}
}

// Skew check: clustered generators concentrate mass far more than uniform.
func TestGeneratorsAreSkewed(t *testing.T) {
	occupied := func(pts []geom.Point) int {
		const grid = 20
		cells := map[int]bool{}
		for _, p := range pts {
			cx := int(p[0] / (100_000 / grid))
			cy := int(p[1] / (100_000 / grid))
			if cx >= grid {
				cx = grid - 1
			}
			if cy >= grid {
				cy = grid - 1
			}
			cells[cx*grid+cy] = true
		}
		return len(cells)
	}
	uni := occupied(Uniform(7, 3000))
	wat := occupied(Water(7, 3000))
	roa := occupied(Roads(7, 3000))
	if wat >= uni || roa >= uni {
		t.Fatalf("expected clustered data to occupy fewer cells: uniform=%d water=%d roads=%d", uni, wat, roa)
	}
}

func TestBuildTreeAndInsertTree(t *testing.T) {
	pts := Water(5, 3000)
	cfg := rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 64}
	bulk, err := BuildTree(cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	ins, err := InsertTree(cfg, pts[:500])
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	if bulk.Len() != 3000 || ins.Len() != 500 {
		t.Fatalf("tree sizes: %d, %d", bulk.Len(), ins.Len())
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ins.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreeDimsMismatch(t *testing.T) {
	if _, err := BuildTree(rtree.Config{Dims: 3}, []geom.Point{geom.Pt(1, 2)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Water(9, 200)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("read %d points, wrote %d", len(got), len(pts))
	}
	for i := range pts {
		if !got[i].Equal(pts[i]) {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestReadPointsSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n1,2\n\n3,4\n"
	pts, err := ReadPoints(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[0].Equal(geom.Pt(1, 2)) || !pts[1].Equal(geom.Pt(3, 4)) {
		t.Fatalf("parsed %v", pts)
	}
}

func TestReadPointsErrors(t *testing.T) {
	cases := []string{
		"1,2\n3\n",        // inconsistent dims
		"1,abc\n",         // bad float
		"1," + nan + "\n", // non-finite
	}
	for _, in := range cases {
		if _, err := ReadPoints(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

var nan = func() string {
	return "NaN"
}()

func TestPaperCardinalityConstants(t *testing.T) {
	if PaperWaterSize != 37495 || PaperRoadsSize != 200482 {
		t.Fatal("paper cardinalities drifted")
	}
	_ = math.Pi // keep math import if constants change
}
