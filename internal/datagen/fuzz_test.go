package datagen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPoints checks the CSV reader never panics and that everything it
// accepts round-trips through WritePoints.
func FuzzReadPoints(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("# comment\n\n5.5,-2e3\n")
	f.Add("1\n2\n3\n")
	f.Add("NaN,1\n")
	f.Add("a,b\n")
	f.Add(strings.Repeat("1,2\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		pts, err := ReadPoints(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePoints(&buf, pts); err != nil {
			t.Fatalf("WritePoints failed on accepted input: %v", err)
		}
		again, err := ReadPoints(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(again) != len(pts) {
			t.Fatalf("round trip changed count: %d -> %d", len(pts), len(again))
		}
		for i := range pts {
			if !again[i].Equal(pts[i]) {
				t.Fatalf("round trip changed point %d: %v -> %v", i, pts[i], again[i])
			}
		}
	})
}
