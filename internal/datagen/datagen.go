// Package datagen generates the synthetic spatial datasets the experiment
// harness joins, substituting for the TIGER/Line centroids the paper used
// (§3.1): Water (37,495 water-feature centroids) and Roads (200,482
// road-feature centroids) of the Washington, DC area.
//
// The substitution (documented in DESIGN.md §3) preserves the properties
// the algorithms are sensitive to: cardinality, heavy clustering along
// linear features (roads) and around blobs (water bodies), and a shared
// world extent so the two relations overlap the way real geographic layers
// do. All generators are deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"distjoin/internal/geom"
	"distjoin/internal/rtree"
)

// World is the coordinate extent of all generated datasets, mirroring a
// projected metropolitan-area extent.
var World = geom.R(geom.Pt(0, 0), geom.Pt(100_000, 100_000))

// PaperWaterSize and PaperRoadsSize are the cardinalities of the paper's
// datasets.
const (
	PaperWaterSize = 37_495
	PaperRoadsSize = 200_482
)

// Uniform generates n points distributed uniformly over the world.
func Uniform(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			World.Lo[0]+rnd.Float64()*(World.Hi[0]-World.Lo[0]),
			World.Lo[1]+rnd.Float64()*(World.Hi[1]-World.Lo[1]),
		)
	}
	return pts
}

// Clustered generates n points in k Gaussian blobs plus a uniform
// background fraction — the generic skewed workload.
func Clustered(seed int64, n, k int, spread, background float64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Pt(
			World.Lo[0]+rnd.Float64()*(World.Hi[0]-World.Lo[0]),
			World.Lo[1]+rnd.Float64()*(World.Hi[1]-World.Lo[1]),
		)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		if rnd.Float64() < background {
			pts[i] = geom.Pt(
				World.Lo[0]+rnd.Float64()*(World.Hi[0]-World.Lo[0]),
				World.Lo[1]+rnd.Float64()*(World.Hi[1]-World.Lo[1]),
			)
			continue
		}
		c := centers[rnd.Intn(k)]
		pts[i] = clampToWorld(geom.Pt(
			c[0]+rnd.NormFloat64()*spread,
			c[1]+rnd.NormFloat64()*spread,
		))
	}
	return pts
}

// Water generates n water-feature-like centroids: a mixture of compact
// blobs (lakes, ponds) and points strung along a few meandering polylines
// (rivers, streams).
func Water(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	rivers := polylines(rnd, 6, 12)
	pts := make([]geom.Point, n)
	for i := range pts {
		switch {
		case rnd.Float64() < 0.55:
			// River/stream centroids hug a polyline with small lateral
			// noise.
			pts[i] = jitterAlong(rnd, rivers[rnd.Intn(len(rivers))], 600)
		case rnd.Float64() < 0.85:
			// Lakes/ponds: local blobs seeded along the rivers.
			base := jitterAlong(rnd, rivers[rnd.Intn(len(rivers))], 3_000)
			pts[i] = clampToWorld(geom.Pt(
				base[0]+rnd.NormFloat64()*900,
				base[1]+rnd.NormFloat64()*900,
			))
		default:
			pts[i] = geom.Pt(rnd.Float64()*100_000, rnd.Float64()*100_000)
		}
	}
	return pts
}

// Roads generates n road-feature-like centroids: dense urban grids around a
// handful of town centers plus arterial polylines connecting them.
func Roads(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	const towns = 9
	centers := make([]geom.Point, towns)
	for i := range centers {
		centers[i] = geom.Pt(
			10_000+rnd.Float64()*80_000,
			10_000+rnd.Float64()*80_000,
		)
	}
	arteries := make([][]geom.Point, 0, towns)
	for i := 1; i < towns; i++ {
		arteries = append(arteries, []geom.Point{centers[i-1], centers[i]})
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		switch {
		case rnd.Float64() < 0.6:
			// Urban grid: dense cluster around a town center, heavier for
			// earlier (larger) towns.
			c := centers[int(math.Floor(math.Pow(rnd.Float64(), 1.7)*towns))]
			pts[i] = clampToWorld(geom.Pt(
				c[0]+rnd.NormFloat64()*4_000,
				c[1]+rnd.NormFloat64()*4_000,
			))
		case rnd.Float64() < 0.9:
			pts[i] = jitterAlong(rnd, arteries[rnd.Intn(len(arteries))], 800)
		default:
			pts[i] = geom.Pt(rnd.Float64()*100_000, rnd.Float64()*100_000)
		}
	}
	return pts
}

// polylines draws k random polylines of the given segment count across the
// world.
func polylines(rnd *rand.Rand, k, segments int) [][]geom.Point {
	out := make([][]geom.Point, k)
	for i := range out {
		line := make([]geom.Point, segments+1)
		x := rnd.Float64() * 100_000
		y := rnd.Float64() * 100_000
		line[0] = geom.Pt(x, y)
		heading := rnd.Float64() * 2 * math.Pi
		for s := 1; s <= segments; s++ {
			heading += (rnd.Float64() - 0.5) * 1.2 // meander
			step := 5_000 + rnd.Float64()*8_000
			x += math.Cos(heading) * step
			y += math.Sin(heading) * step
			line[s] = clampToWorld(geom.Pt(x, y))
		}
		out[i] = line
	}
	return out
}

// jitterAlong picks a random point on a random segment of the polyline and
// offsets it laterally by Gaussian noise.
func jitterAlong(rnd *rand.Rand, line []geom.Point, noise float64) geom.Point {
	s := rnd.Intn(len(line) - 1)
	a, b := line[s], line[s+1]
	t := rnd.Float64()
	return clampToWorld(geom.Pt(
		a[0]+t*(b[0]-a[0])+rnd.NormFloat64()*noise,
		a[1]+t*(b[1]-a[1])+rnd.NormFloat64()*noise,
	))
}

func clampToWorld(p geom.Point) geom.Point {
	for i := range p {
		if p[i] < World.Lo[i] {
			p[i] = World.Lo[i]
		}
		if p[i] > World.Hi[i] {
			p[i] = World.Hi[i]
		}
	}
	return p
}

// BuildTree bulk-loads points into an R*-tree with the paper's node/buffer
// configuration (overridable via cfg; zero-valued fields get defaults).
func BuildTree(cfg rtree.Config, pts []geom.Point) (*rtree.Tree, error) {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		if p.Dim() != cfg.Dims {
			return nil, fmt.Errorf("datagen: point %d has dimension %d, want %d", i, p.Dim(), cfg.Dims)
		}
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	return rtree.BulkLoad(cfg, items)
}

// InsertTree builds the tree by repeated insertion instead of bulk loading
// (slower; exercises the R* insertion machinery at scale).
func InsertTree(cfg rtree.Config, pts []geom.Point) (*rtree.Tree, error) {
	if cfg.Dims == 0 {
		cfg.Dims = 2
	}
	t, err := rtree.New(cfg)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		if err := t.InsertPoint(p, rtree.ObjID(i)); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// UniformD generates n points distributed uniformly over the unit
// hyper-cube in the given dimensionality — the workload for the
// higher-dimension sweep the paper's conclusion lists as future work (§5).
func UniformD(seed int64, n, dims int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rnd.Float64()
		}
		pts[i] = p
	}
	return pts
}

// ClusteredD generates n points in k Gaussian blobs inside the unit
// hyper-cube in the given dimensionality.
func ClusteredD(seed int64, n, dims, k int, spread float64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, k)
	for i := range centers {
		c := make(geom.Point, dims)
		for d := range c {
			c[d] = rnd.Float64()
		}
		centers[i] = c
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rnd.Intn(k)]
		p := make(geom.Point, dims)
		for d := range p {
			v := c[d] + rnd.NormFloat64()*spread
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			p[d] = v
		}
		pts[i] = p
	}
	return pts
}
