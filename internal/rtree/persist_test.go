package rtree

import (
	"os"
	"path/filepath"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/pager"
)

func namedStore(t *testing.T, path string, pageSize int) *pager.FileStore {
	t.Helper()
	s, err := pager.OpenNamedFileStore(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.pages")
	pts := randomPoints(201, 3000)

	// Session 1: build, flush, close.
	store := namedStore(t, path, 512)
	tr, err := New(Config{Dims: 2, PageSize: 512, BufferFrames: 16, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	wantHeight, wantLen := tr.Height(), tr.Len()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: reopen and verify everything survived.
	store2 := namedStore(t, path, 512)
	tr2, err := Open(store2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != wantLen || tr2.Height() != wantHeight || tr2.Dims() != 2 {
		t.Fatalf("reopened tree: len=%d height=%d dims=%d", tr2.Len(), tr2.Height(), tr2.Dims())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	query := geom.R(geom.Pt(100, 100), geom.Pt(500, 500))
	want := map[ObjID]bool{}
	for i, p := range pts {
		if query.ContainsPoint(p) {
			want[ObjID(i)] = true
		}
	}
	got := map[ObjID]bool{}
	tr2.Search(query, func(e Entry) bool { got[e.Obj] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("reopened search: %d results, want %d", len(got), len(want))
	}

	// The reopened tree accepts further mutation and another round trip.
	extra := randomPoints(202, 200)
	for i, p := range extra {
		if err := tr2.InsertPoint(p, ObjID(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := tr2.Delete(pts[0].Rect(), 0); err != nil || !ok {
		t.Fatalf("delete after reopen: %v %v", ok, err)
	}
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}
	tr2.Close()

	store3 := namedStore(t, path, 512)
	tr3, err := Open(store3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr3.Close()
	if tr3.Len() != wantLen+200-1 {
		t.Fatalf("third session len = %d, want %d", tr3.Len(), wantLen+200-1)
	}
	if err := tr3.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistBulkLoaded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bulk.pages")
	pts := randomPoints(203, 5000)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{Rect: p.Rect(), Obj: ObjID(i)}
	}
	store := namedStore(t, path, 512)
	tr, err := BulkLoad(Config{Dims: 2, PageSize: 512, BufferFrames: 16, Store: store}, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr.Close()

	tr2, err := Open(namedStore(t, path, 512), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != 5000 {
		t.Fatalf("reopened bulk tree len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	// Empty store: no meta page at all.
	empty := namedStore(t, filepath.Join(dir, "empty.pages"), 512)
	if _, err := Open(empty, nil); err == nil {
		t.Fatal("empty store opened")
	}
	empty.Close()
	// Garbage bytes where the meta page should be.
	path := filepath.Join(dir, "garbage.pages")
	if err := os.WriteFile(path, make([]byte, 1024), 0o644); err != nil {
		t.Fatal(err)
	}
	g := namedStore(t, path, 512)
	defer g.Close()
	if _, err := Open(g, nil); err == nil {
		t.Fatal("garbage store opened")
	}
}

func TestOpenWrongPageSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.pages")
	store := namedStore(t, path, 512)
	tr, err := New(Config{Dims: 2, PageSize: 512, BufferFrames: 16, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	tr.InsertPoint(geom.Pt(1, 1), 1)
	tr.Flush()
	tr.Close()
	// Reopening with a mismatched page size must fail cleanly (the file
	// length happens to be a multiple of 256 too).
	wrong := namedStore(t, path, 256)
	defer wrong.Close()
	if _, err := Open(wrong, nil); err == nil {
		t.Fatal("wrong page size accepted")
	}
}

func TestNewOnDirtyStoreFails(t *testing.T) {
	// New must refuse a store that already has pages (it would corrupt a
	// persisted tree); Open is the right call there.
	path := filepath.Join(t.TempDir(), "tree.pages")
	store := namedStore(t, path, 512)
	tr, _ := New(Config{Dims: 2, PageSize: 512, BufferFrames: 16, Store: store})
	tr.Flush()
	tr.Close()
	reopened := namedStore(t, path, 512)
	defer reopened.Close()
	if _, err := New(Config{Dims: 2, PageSize: 512, BufferFrames: 16, Store: reopened}); err == nil {
		t.Fatal("New on non-fresh store succeeded")
	}
}

func TestCreateFileOpenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cf.pages")
	tr, err := CreateFile(path, Config{Dims: 2, PageSize: 512, BufferFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(301, 400)
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.RootPage() == pager.InvalidPage {
		t.Fatal("invalid root page")
	}
	if b, ok := tr.Bounds(); !ok || !b.ContainsPoint(pts[0]) {
		t.Fatalf("Bounds = %v %v", b, ok)
	}
	if err := tr.DropCache(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	tr.Close()

	tr2, err := OpenFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != 400 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// OpenFile on garbage and on a missing path fail cleanly.
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Fatal("missing file opened")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	os.WriteFile(bad, []byte("nonsense header bytes"), 0o644)
	if _, err := OpenFile(bad, nil); err == nil {
		t.Fatal("garbage file opened")
	}
}

func TestNodeLeafAccessor(t *testing.T) {
	if !(&Node{Level: 0}).Leaf() || (&Node{Level: 2}).Leaf() {
		t.Fatal("Leaf() wrong")
	}
}

func TestBoundsEmptyRootNonEmptyTree(t *testing.T) {
	tr := mustNew(t, smallConfig())
	if _, ok := tr.Bounds(); ok {
		t.Fatal("empty tree reported bounds")
	}
	tr.InsertPoint(geom.Pt(3, 4), 1)
	b, ok := tr.Bounds()
	if !ok || !b.Equal(geom.Pt(3, 4).Rect()) {
		t.Fatalf("Bounds = %v %v", b, ok)
	}
}
