package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
)

// TestPropRandomOpsAgainstModel drives random interleaved inserts, deletes
// and searches against a map-based model, checking structural invariants
// along the way — the classic model-based test for ordered index
// structures.
func TestPropRandomOpsAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tr, err := New(Config{Dims: 2, PageSize: 256, BufferFrames: 8})
		if err != nil {
			return false
		}
		defer tr.Close()

		type obj struct {
			r geom.Rect
		}
		model := map[ObjID]obj{}
		nextID := ObjID(0)
		ops := 300 + rnd.Intn(500)
		for op := 0; op < ops; op++ {
			switch rnd.Intn(10) {
			case 0, 1, 2, 3, 4, 5: // insert
				x, y := rnd.Float64()*100, rnd.Float64()*100
				w, h := rnd.Float64()*10, rnd.Float64()*10
				r := geom.R(geom.Pt(x, y), geom.Pt(x+w, y+h))
				id := nextID
				nextID++
				if err := tr.Insert(r, id); err != nil {
					return false
				}
				model[id] = obj{r: r}
			case 6, 7: // delete a random live object
				for id, o := range model {
					ok, err := tr.Delete(o.r, id)
					if err != nil || !ok {
						return false
					}
					delete(model, id)
					break
				}
			case 8: // delete a missing object
				if ok, err := tr.Delete(geom.Pt(500, 500).Rect(), 999999); err != nil || ok {
					return false
				}
			case 9: // search and compare against the model
				x, y := rnd.Float64()*100, rnd.Float64()*100
				q := geom.R(geom.Pt(x, y), geom.Pt(x+rnd.Float64()*30, y+rnd.Float64()*30))
				want := map[ObjID]bool{}
				for id, o := range model {
					if o.r.Intersects(q) {
						want[id] = true
					}
				}
				got := map[ObjID]bool{}
				if err := tr.Search(q, func(e Entry) bool { got[e.Obj] = true; return true }); err != nil {
					return false
				}
				if len(got) != len(want) {
					return false
				}
				for id := range want {
					if !got[id] {
						return false
					}
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestInsertDeleteChurn repeatedly fills and empties the tree, verifying
// that pages are recycled rather than leaked.
func TestInsertDeleteChurn(t *testing.T) {
	tr := mustNew(t, smallConfig())
	pts := randomPoints(55, 400)
	var peakPages int
	for round := 0; round < 5; round++ {
		for i, p := range pts {
			if err := tr.InsertPoint(p, ObjID(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d after fill: %v", round, err)
		}
		pages := tr.Pool().Store().NumAllocated()
		if round == 0 {
			peakPages = pages
		} else if pages > peakPages*2 {
			t.Fatalf("page usage grows without bound: %d -> %d", peakPages, pages)
		}
		for i, p := range pts {
			if ok, err := tr.Delete(p.Rect(), ObjID(i)); err != nil || !ok {
				t.Fatalf("round %d delete %d: %v %v", round, i, ok, err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: %d objects left", round, tr.Len())
		}
	}
}
