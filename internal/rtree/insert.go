package rtree

import (
	"fmt"
	"sort"

	"distjoin/internal/geom"
)

// Insert adds an object with the given bounding rectangle to the tree.
func (t *Tree) Insert(r geom.Rect, id ObjID) error {
	if err := t.checkRect(r); err != nil {
		return err
	}
	e := Entry{Rect: r.Clone(), Obj: id}
	if err := t.insertEntry(e, 0, make(map[int]bool)); err != nil {
		return err
	}
	t.size++
	return nil
}

// InsertPoint adds a point object (a degenerate rectangle).
func (t *Tree) InsertPoint(p geom.Point, id ObjID) error {
	return t.Insert(p.Rect(), id)
}

// pathStep records one hop of the root-to-target descent.
type pathStep struct {
	node     *Node
	childIdx int // index in node.Entries taken to descend
}

// insertEntry places e at the given level (0 for objects), handling overflow
// with R* forced reinsertion and splits. reinsertDone tracks which levels
// already reinserted during this logical insertion, so each level reinserts
// at most once (the R* OverflowTreatment rule).
func (t *Tree) insertEntry(e Entry, level int, reinsertDone map[int]bool) error {
	// Descend from the root to the target level, remembering the path.
	var path []pathStep
	n, err := t.ReadNode(t.root)
	if err != nil {
		return err
	}
	for n.Level > level {
		i := t.chooseSubtree(n, e.Rect)
		path = append(path, pathStep{node: n, childIdx: i})
		n, err = t.ReadNode(n.Entries[i].Child)
		if err != nil {
			return err
		}
	}
	if n.Level != level {
		return fmt.Errorf("rtree: no node at level %d (tree height %d)", level, t.height)
	}
	n.Entries = append(n.Entries, e)

	// Resolve overflows bottom-up.
	cur := n
	for {
		if len(cur.Entries) <= t.maxEntries {
			if err := t.writeNode(cur); err != nil {
				return err
			}
			return t.adjustPath(path, cur)
		}
		if cur.Page != t.root && !reinsertDone[cur.Level] {
			reinsertDone[cur.Level] = true
			return t.forcedReinsert(cur, path, reinsertDone)
		}
		// Split. left reuses cur's page; right gets a new one.
		left, right, err := t.split(cur)
		if err != nil {
			return err
		}
		if cur.Page == t.root {
			newRoot := &Node{
				Level: cur.Level + 1,
				Entries: []Entry{
					{Rect: left.MBR(), Child: left.Page},
					{Rect: right.MBR(), Child: right.Page},
				},
			}
			if err := t.allocNode(newRoot); err != nil {
				return err
			}
			t.root = newRoot.Page
			t.height++
			return nil
		}
		parent := path[len(path)-1].node
		idx := path[len(path)-1].childIdx
		parent.Entries[idx] = Entry{Rect: left.MBR(), Child: left.Page}
		parent.Entries = append(parent.Entries, Entry{Rect: right.MBR(), Child: right.Page})
		path = path[:len(path)-1]
		cur = parent
	}
}

// adjustPath recomputes bounding rectangles along the descent path after the
// subtree rooted at child changed, writing each updated ancestor.
func (t *Tree) adjustPath(path []pathStep, child *Node) error {
	mbr := geom.Rect{}
	if len(child.Entries) > 0 {
		mbr = child.MBR()
	}
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		if len(child.Entries) > 0 {
			step.node.Entries[step.childIdx].Rect = mbr
		}
		if err := t.writeNode(step.node); err != nil {
			return err
		}
		child = step.node
		mbr = child.MBR()
	}
	return nil
}

// chooseSubtree implements the R* descent criterion: when the children are
// leaves, pick the entry whose rectangle needs the least overlap enlargement
// (ties: least area enlargement, then least area); otherwise pick least area
// enlargement (ties: least area).
func (t *Tree) chooseSubtree(n *Node, r geom.Rect) int {
	if n.Level == 1 { // children are leaf nodes
		best := 0
		bestOverlap := t.overlapEnlargement(n.Entries, 0, r)
		bestEnl := n.Entries[0].Rect.Enlargement(r)
		bestArea := n.Entries[0].Rect.Area()
		for i := 1; i < len(n.Entries); i++ {
			ov := t.overlapEnlargement(n.Entries, i, r)
			enl := n.Entries[i].Rect.Enlargement(r)
			area := n.Entries[i].Rect.Area()
			if ov < bestOverlap ||
				(ov == bestOverlap && enl < bestEnl) ||
				(ov == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
			}
		}
		return best
	}
	best := 0
	bestEnl := n.Entries[0].Rect.Enlargement(r)
	bestArea := n.Entries[0].Rect.Area()
	for i := 1; i < len(n.Entries); i++ {
		enl := n.Entries[i].Rect.Enlargement(r)
		area := n.Entries[i].Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// overlapEnlargement computes how much the overlap between entry i and its
// siblings grows when entry i is enlarged to include r.
func (t *Tree) overlapEnlargement(entries []Entry, i int, r geom.Rect) float64 {
	grown := entries[i].Rect.Union(r)
	var before, after float64
	for j := range entries {
		if j == i {
			continue
		}
		before += entries[i].Rect.OverlapArea(entries[j].Rect)
		after += grown.OverlapArea(entries[j].Rect)
	}
	return after - before
}

// forcedReinsert removes the ReinsertFraction of entries farthest from the
// node's MBR center, restores tree consistency, and re-inserts them
// (closest first — the R* "close reinsert").
func (t *Tree) forcedReinsert(n *Node, path []pathStep, reinsertDone map[int]bool) error {
	center := n.MBR().Center()
	type ranked struct {
		e Entry
		d float64
	}
	rankedEntries := make([]ranked, len(n.Entries))
	for i, e := range n.Entries {
		rankedEntries[i] = ranked{e: e, d: geom.Euclidean.Dist(center, e.Rect.Center())}
	}
	sort.Slice(rankedEntries, func(i, j int) bool { return rankedEntries[i].d < rankedEntries[j].d })
	p := int(t.cfg.ReinsertFraction * float64(len(n.Entries)))
	if p < 1 {
		p = 1
	}
	keep := rankedEntries[:len(rankedEntries)-p]
	removed := rankedEntries[len(rankedEntries)-p:]

	n.Entries = n.Entries[:0]
	for _, r := range keep {
		n.Entries = append(n.Entries, r.e)
	}
	if err := t.writeNode(n); err != nil {
		return err
	}
	// Bring ancestors up to date before re-entering insertion from the root.
	if err := t.adjustPath(path, n); err != nil {
		return err
	}
	// Close reinsert: nearest-to-center first.
	for _, r := range removed {
		if err := t.insertEntry(r.e, n.Level, reinsertDone); err != nil {
			return err
		}
	}
	return nil
}

// split performs the R* topological split of an overflowing node. The left
// group reuses n's page; the right group is written to a fresh page.
func (t *Tree) split(n *Node) (left, right *Node, err error) {
	leftEntries, rightEntries := t.chooseSplit(n.Entries)
	left = &Node{Page: n.Page, Level: n.Level, Entries: leftEntries}
	right = &Node{Level: n.Level, Entries: rightEntries}
	if err := t.writeNode(left); err != nil {
		return nil, nil, err
	}
	if err := t.allocNode(right); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// chooseSplit partitions M+1 entries into two groups following the R* split
// algorithm: choose the split axis minimizing the sum of margins over all
// candidate distributions, then the distribution on that axis with minimum
// overlap (ties: minimum total area).
func (t *Tree) chooseSplit(entries []Entry) ([]Entry, []Entry) {
	m := t.minEntries
	M := len(entries) - 1 // entries holds M+1 items
	dims := t.cfg.Dims

	bestAxis, bestAxisMargin := -1, 0.0
	for axis := 0; axis < dims; axis++ {
		marginSum := 0.0
		for _, byUpper := range []bool{false, true} {
			sorted := sortedByAxis(entries, axis, byUpper)
			for k := m; k <= M+1-m; k++ {
				marginSum += groupMBR(sorted[:k]).Margin() + groupMBR(sorted[k:]).Margin()
			}
		}
		if bestAxis == -1 || marginSum < bestAxisMargin {
			bestAxis, bestAxisMargin = axis, marginSum
		}
	}

	var bestLeft, bestRight []Entry
	bestOverlap, bestArea := 0.0, 0.0
	first := true
	for _, byUpper := range []bool{false, true} {
		sorted := sortedByAxis(entries, bestAxis, byUpper)
		for k := m; k <= M+1-m; k++ {
			lr, rr := groupMBR(sorted[:k]), groupMBR(sorted[k:])
			overlap := lr.OverlapArea(rr)
			area := lr.Area() + rr.Area()
			if first || overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				first = false
				bestOverlap, bestArea = overlap, area
				bestLeft = append([]Entry(nil), sorted[:k]...)
				bestRight = append([]Entry(nil), sorted[k:]...)
			}
		}
	}
	return bestLeft, bestRight
}

// sortedByAxis returns a copy of entries sorted by the lower (or upper)
// rectangle boundary along the given axis, with the other boundary as a
// tiebreaker for determinism.
func sortedByAxis(entries []Entry, axis int, byUpper bool) []Entry {
	s := append([]Entry(nil), entries...)
	sort.SliceStable(s, func(i, j int) bool {
		if byUpper {
			if s[i].Rect.Hi[axis] != s[j].Rect.Hi[axis] {
				return s[i].Rect.Hi[axis] < s[j].Rect.Hi[axis]
			}
			return s[i].Rect.Lo[axis] < s[j].Rect.Lo[axis]
		}
		if s[i].Rect.Lo[axis] != s[j].Rect.Lo[axis] {
			return s[i].Rect.Lo[axis] < s[j].Rect.Lo[axis]
		}
		return s[i].Rect.Hi[axis] < s[j].Rect.Hi[axis]
	})
	return s
}

// groupMBR returns the bounding rectangle of a group of entries.
func groupMBR(entries []Entry) geom.Rect {
	r := entries[0].Rect.Clone()
	for _, e := range entries[1:] {
		r.UnionInPlace(e.Rect)
	}
	return r
}

// entryForChild builds the parent entry describing child.
func entryForChild(child *Node) Entry {
	return Entry{Rect: child.MBR(), Child: child.Page}
}
