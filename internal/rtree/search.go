package rtree

import (
	"distjoin/internal/geom"
	"distjoin/internal/pager"
)

// Search invokes fn for every leaf entry whose rectangle intersects query.
// Traversal stops early when fn returns false.
func (t *Tree) Search(query geom.Rect, fn func(Entry) bool) error {
	if err := t.checkRect(query); err != nil {
		return err
	}
	_, err := t.searchPage(t.root, query, fn)
	return err
}

func (t *Tree) searchPage(page pager.PageID, query geom.Rect, fn func(Entry) bool) (bool, error) {
	n, err := t.ReadNode(page)
	if err != nil {
		return false, err
	}
	for _, e := range n.Entries {
		if !e.Rect.Intersects(query) {
			continue
		}
		if n.Level == 0 {
			if !fn(e) {
				return false, nil
			}
			continue
		}
		cont, err := t.searchPage(e.Child, query, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Scan invokes fn for every leaf entry in the tree, in storage order.
// Traversal stops early when fn returns false.
func (t *Tree) Scan(fn func(Entry) bool) error {
	_, err := t.scanPage(t.root, fn)
	return err
}

func (t *Tree) scanPage(page pager.PageID, fn func(Entry) bool) (bool, error) {
	n, err := t.ReadNode(page)
	if err != nil {
		return false, err
	}
	for _, e := range n.Entries {
		if n.Level == 0 {
			if !fn(e) {
				return false, nil
			}
			continue
		}
		cont, err := t.scanPage(e.Child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// CountNodes returns the number of nodes on each level, leaf level first.
// It is a diagnostic helper and reads every node.
func (t *Tree) CountNodes() ([]int, error) {
	counts := make([]int, t.height)
	if err := t.countPage(t.root, counts); err != nil {
		return nil, err
	}
	return counts, nil
}

func (t *Tree) countPage(page pager.PageID, counts []int) error {
	n, err := t.ReadNode(page)
	if err != nil {
		return err
	}
	counts[n.Level]++
	if n.Level == 0 {
		return nil
	}
	for _, e := range n.Entries {
		if err := t.countPage(e.Child, counts); err != nil {
			return err
		}
	}
	return nil
}
