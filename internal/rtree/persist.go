package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"distjoin/internal/pager"
	"distjoin/internal/stats"
)

// Trees created by New/BulkLoad over a named file store can be persisted
// with Flush and reopened with Open. The first page of the store is
// reserved as a metadata page holding the tree geometry and root pointer;
// Flush writes it (plus all dirty node pages) so a subsequent Open
// reconstructs the tree. Freed pages are leaked across sessions (the free
// list is in-memory only), which is harmless for read-mostly index files.

// metaMagic identifies an R-tree metadata page.
const metaMagic = 0x52545245 // "RTRE"

const metaVersion = 1

// metaPageID is the reserved metadata page. It is allocated first by New,
// so it is always page 1.
const metaPageID pager.PageID = 1

// errNoMeta is returned by Open when the store has no valid metadata page.
var errNoMeta = errors.New("rtree: store has no valid R-tree metadata page")

// encodeMeta writes the tree's metadata into a page image.
func (t *Tree) encodeMeta(buf []byte) {
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint32(buf[4:], metaVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(t.cfg.Dims))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.cfg.PageSize))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.root))
	binary.LittleEndian.PutUint32(buf[20:], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[24:], uint64(t.size))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(t.cfg.MinFill))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(t.cfg.ReinsertFraction))
}

// Flush persists the tree: the metadata page is rewritten and every dirty
// node page is written back to the store. For a file-backed store this
// makes the tree reopenable with Open after the process exits.
func (t *Tree) Flush() error {
	f, err := t.pool.Get(metaPageID)
	if err != nil {
		return fmt.Errorf("rtree: reading meta page: %w", err)
	}
	t.encodeMeta(f.Data())
	f.MarkDirty()
	t.pool.Unpin(f)
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	if fs, ok := t.pool.Store().(*pager.FileStore); ok {
		return fs.Sync()
	}
	return nil
}

// Open reconstructs a tree persisted with Flush from its store. The
// counters may be nil. The store's page size must match the one the tree
// was built with (it is validated against the metadata).
func Open(store pager.Store, counters *stats.Counters) (*Tree, error) {
	buf := make([]byte, store.PageSize())
	if err := store.ReadPage(metaPageID, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", errNoMeta, err)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return nil, errNoMeta
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != metaVersion {
		return nil, fmt.Errorf("rtree: unsupported metadata version %d", v)
	}
	cfg := Config{
		Dims:             int(binary.LittleEndian.Uint32(buf[8:])),
		PageSize:         int(binary.LittleEndian.Uint32(buf[12:])),
		MinFill:          math.Float64frombits(binary.LittleEndian.Uint64(buf[32:])),
		ReinsertFraction: math.Float64frombits(binary.LittleEndian.Uint64(buf[40:])),
		Counters:         counters,
	}.withDefaults()
	if cfg.PageSize != store.PageSize() {
		return nil, fmt.Errorf("rtree: store page size %d, tree built with %d",
			store.PageSize(), cfg.PageSize)
	}
	maxE := maxEntriesFor(cfg.PageSize, cfg.Dims)
	minE := int(cfg.MinFill * float64(maxE))
	if minE < 2 {
		minE = 2
	}
	pool, err := pager.NewPool(store, cfg.BufferFrames, stats.NodeSink(counters))
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:        cfg,
		pool:       pool,
		root:       pager.PageID(binary.LittleEndian.Uint32(buf[16:])),
		height:     int(binary.LittleEndian.Uint32(buf[20:])),
		size:       int(binary.LittleEndian.Uint64(buf[24:])),
		maxEntries: maxE,
		minEntries: minE,
	}
	if t.root == pager.InvalidPage || t.height < 1 {
		return nil, errors.New("rtree: corrupt metadata (invalid root or height)")
	}
	// Sanity-probe the root so obviously corrupt files fail at Open rather
	// than at first query.
	if _, err := t.ReadNode(t.root); err != nil {
		return nil, fmt.Errorf("rtree: reading root: %w", err)
	}
	return t, nil
}

// OpenFile opens a tree persisted to the named file, discovering the page
// size from the metadata header. counters may be nil.
func OpenFile(path string, counters *stats.Counters) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	header := make([]byte, 16)
	if _, err := io.ReadFull(f, header); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %v", errNoMeta, err)
	}
	f.Close()
	if binary.LittleEndian.Uint32(header[0:]) != metaMagic {
		return nil, errNoMeta
	}
	pageSize := int(binary.LittleEndian.Uint32(header[12:]))
	if pageSize <= 0 || pageSize > 1<<20 {
		return nil, fmt.Errorf("rtree: implausible page size %d in %s", pageSize, path)
	}
	store, err := pager.OpenNamedFileStore(path, pageSize)
	if err != nil {
		return nil, err
	}
	t, err := Open(store, counters)
	if err != nil {
		store.Close()
		return nil, err
	}
	return t, nil
}

// CreateFile creates a new persistent tree backed by the named file, which
// must not already hold one.
func CreateFile(path string, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	store, err := pager.OpenNamedFileStore(path, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	cfg.Store = store
	t, err := New(cfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	return t, nil
}
