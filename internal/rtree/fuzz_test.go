package rtree

import (
	"encoding/binary"
	"testing"

	"distjoin/internal/geom"
)

// FuzzDecodeNode checks the node deserializer rejects or safely decodes
// arbitrary page images — the tree must never panic on corrupt pages.
func FuzzDecodeNode(f *testing.F) {
	// Seed with a valid page.
	valid := make([]byte, 512)
	n := &Node{Page: 1, Level: 0, Entries: []Entry{
		{Rect: geom.R(geom.Pt(1, 2), geom.Pt(3, 4)), Obj: 7},
	}}
	encodeNode(n, 2, valid)
	f.Add(valid)
	corrupt := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(corrupt[2:], 9999)
	f.Add(corrupt)
	f.Add(make([]byte, 512))
	f.Fuzz(func(t *testing.T, page []byte) {
		if len(page) < nodeHeaderSize {
			return
		}
		decoded, err := decodeNode(1, 2, page)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking when it fits.
		if len(decoded.Entries) <= maxEntriesFor(len(page), 2) {
			buf := make([]byte, len(page))
			encodeNode(decoded, 2, buf)
		}
	})
}
