package rtree

import (
	"distjoin/internal/geom"
	"distjoin/internal/pager"
)

// Delete removes the object with the given bounding rectangle and id.
// It returns false when no matching entry exists.
func (t *Tree) Delete(r geom.Rect, id ObjID) (bool, error) {
	if err := t.checkRect(r); err != nil {
		return false, err
	}
	path, leafIdx, found, err := t.findLeaf(t.root, nil, r, id)
	if err != nil || !found {
		return false, err
	}
	leaf := path[len(path)-1].node
	leaf.Entries = append(leaf.Entries[:leafIdx], leaf.Entries[leafIdx+1:]...)
	t.size--

	// Condense: remove underflowing nodes bottom-up, collecting orphaned
	// entries (with the level they belong at) for reinsertion.
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i].node
		parent := path[i-1].node
		idx := path[i].parentIdx
		if len(cur.Entries) < t.minEntries {
			for _, e := range cur.Entries {
				orphans = append(orphans, orphan{e: e, level: cur.Level})
			}
			parent.Entries = append(parent.Entries[:idx], parent.Entries[idx+1:]...)
			if err := t.freeNode(cur.Page); err != nil {
				return false, err
			}
			// Fix sibling parentIdx references on the remaining path: only
			// the ancestor chain matters, and its indices are unaffected
			// unless idx < path[i-1..] — the chain stores the index taken
			// while descending, which is in parent, so adjust if needed.
			continue
		}
		if err := t.writeNode(cur); err != nil {
			return false, err
		}
		parent.Entries[idx].Rect = cur.MBR()
	}
	root := path[0].node
	if err := t.writeNode(root); err != nil {
		return false, err
	}

	// Reinsert orphaned entries at their original levels.
	for _, o := range orphans {
		if err := t.insertEntry(o.e, o.level, make(map[int]bool)); err != nil {
			return false, err
		}
	}

	// Shrink the root while it is a non-leaf with a single child.
	for {
		root, err := t.ReadNode(t.root)
		if err != nil {
			return false, err
		}
		if root.Level == 0 || len(root.Entries) != 1 {
			break
		}
		child := root.Entries[0].Child
		if err := t.freeNode(t.root); err != nil {
			return false, err
		}
		t.root = child
		t.height--
	}
	return true, nil
}

// deletePath is one step of the root-to-leaf path used by Delete.
type deletePath struct {
	node      *Node
	parentIdx int // index of this node within its parent (unused for root)
}

// findLeaf locates the leaf containing (r, id) by depth-first search over
// entries whose rectangles contain r. It returns the path from the root to
// the leaf and the index of the matching entry.
func (t *Tree) findLeaf(page pager.PageID, path []deletePath, r geom.Rect, id ObjID) ([]deletePath, int, bool, error) {
	n, err := t.ReadNode(page)
	if err != nil {
		return nil, 0, false, err
	}
	self := deletePath{node: n}
	if len(path) > 0 {
		self.parentIdx = -1 // filled by caller below
	}
	path = append(path, self)
	if n.Level == 0 {
		for i, e := range n.Entries {
			if e.Obj == id && e.Rect.Equal(r) {
				return path, i, true, nil
			}
		}
		return path, 0, false, nil
	}
	for i, e := range n.Entries {
		if !e.Rect.Contains(r) {
			continue
		}
		sub, idx, found, err := t.findLeaf(e.Child, path, r, id)
		if err != nil {
			return nil, 0, false, err
		}
		if found {
			sub[len(path)].parentIdx = i
			return sub, idx, true, nil
		}
	}
	return path[:len(path)-1], 0, false, nil
}
