package rtree

import (
	"math"
	"sort"

	"distjoin/internal/geom"
)

// Item is one object for bulk loading.
type Item struct {
	Rect geom.Rect
	Obj  ObjID
}

// BulkLoadFill is the node fill factor used by BulkLoad. Packing nodes
// completely full makes the first insertion into every node split it, so STR
// implementations conventionally leave headroom.
const BulkLoadFill = 0.9

// BulkLoad builds a tree from items using Sort-Tile-Recursive (STR) packing
// (Leutenegger, López & Edgington). STR produces well-clustered leaves in a
// single pass, which is how the experiment harness builds its large trees;
// insertion-built and bulk-loaded trees are both exercised in tests.
func BulkLoad(cfg Config, items []Item) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	for _, it := range items {
		if err := t.checkRect(it.Rect); err != nil {
			return nil, err
		}
	}

	capacity := int(BulkLoadFill * float64(t.maxEntries))
	if capacity < 2 {
		capacity = 2
	}

	// Build the leaf level.
	work := append([]Item(nil), items...)
	tiles := strTile(work, capacity, t.cfg.Dims, 0)
	level := 0
	var nodes []*Node
	for _, tile := range tiles {
		n := &Node{Level: 0, Entries: make([]Entry, len(tile))}
		for i, it := range tile {
			n.Entries[i] = Entry{Rect: it.Rect.Clone(), Obj: it.Obj}
		}
		if err := t.allocNode(n); err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}

	// Pack upper levels until a single node remains.
	for len(nodes) > 1 {
		level++
		parentItems := make([]Item, len(nodes))
		byPage := make(map[ObjID]*Node, len(nodes))
		for i, n := range nodes {
			parentItems[i] = Item{Rect: n.MBR(), Obj: ObjID(n.Page)}
			byPage[ObjID(n.Page)] = n
		}
		tiles := strTile(parentItems, capacity, t.cfg.Dims, 0)
		var parents []*Node
		for _, tile := range tiles {
			p := &Node{Level: level, Entries: make([]Entry, len(tile))}
			for i, it := range tile {
				p.Entries[i] = entryForChild(byPage[it.Obj])
			}
			if err := t.allocNode(p); err != nil {
				return nil, err
			}
			parents = append(parents, p)
		}
		nodes = parents
	}

	// Replace the empty root created by New with the built root.
	if err := t.freeNode(t.root); err != nil {
		return nil, err
	}
	t.root = nodes[0].Page
	t.height = level + 1
	t.size = len(items)
	return t, nil
}

// strTile recursively partitions items into groups of at most capacity,
// sorting by rectangle center along successive dimensions (the STR tiling).
func strTile(items []Item, capacity, dims, axis int) [][]Item {
	if len(items) <= capacity {
		return [][]Item{items}
	}
	sort.SliceStable(items, func(i, j int) bool {
		return rectCenterAt(items[i].Rect, axis) < rectCenterAt(items[j].Rect, axis)
	})
	nPages := int(math.Ceil(float64(len(items)) / float64(capacity)))
	if axis == dims-1 {
		// Final axis: cut into runs of `capacity`. The last run may come out
		// shorter than the tree's minimum fill, which would invalidate the
		// minimum-fan-out bound the K-pair estimation of §2.2.4 relies on,
		// so a short tail is balanced against its predecessor.
		out := make([][]Item, 0, nPages)
		for start := 0; start < len(items); start += capacity {
			end := start + capacity
			if end > len(items) {
				end = len(items)
			}
			out = append(out, items[start:end])
		}
		if n := len(out); n >= 2 {
			tail := len(out[n-1])
			if tail < capacity/2 {
				merged := append(append([]Item(nil), out[n-2]...), out[n-1]...)
				half := len(merged) / 2
				out[n-2], out[n-1] = merged[:half], merged[half:]
			}
		}
		return out
	}
	// Slabs along this axis, each tiled recursively along the next.
	remainingDims := dims - axis
	slabCount := int(math.Ceil(math.Pow(float64(nPages), 1/float64(remainingDims))))
	slabSize := int(math.Ceil(float64(len(items)) / float64(slabCount)))
	var out [][]Item
	for start := 0; start < len(items); start += slabSize {
		end := start + slabSize
		if end > len(items) {
			end = len(items)
		}
		out = append(out, strTile(items[start:end], capacity, dims, axis+1)...)
	}
	return out
}

func rectCenterAt(r geom.Rect, axis int) float64 {
	return (r.Lo[axis] + r.Hi[axis]) / 2
}
