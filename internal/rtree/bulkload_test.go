package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/pager"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadSmall(t *testing.T) {
	pts := randomPoints(17, 5)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{Rect: p.Rect(), Obj: ObjID(i)}
	}
	tr, err := BulkLoad(smallConfig(), items)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Len() != 5 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadLarge(t *testing.T) {
	pts := randomPoints(23, 10000)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{Rect: p.Rect(), Obj: ObjID(i)}
	}
	tr, err := BulkLoad(smallConfig(), items)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Bulk-loaded and insert-built trees must answer queries identically.
	query := geom.R(geom.Pt(100, 100), geom.Pt(350, 420))
	want := 0
	for _, p := range pts {
		if query.ContainsPoint(p) {
			want++
		}
	}
	got := 0
	tr.Search(query, func(Entry) bool { got++; return true })
	if got != want {
		t.Fatalf("search on bulk-loaded tree: %d, want %d", got, want)
	}
}

func TestBulkLoadRejectsBadRect(t *testing.T) {
	items := []Item{{Rect: geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}, Obj: 1}}
	if _, err := BulkLoad(smallConfig(), items); err == nil {
		t.Fatal("invalid rect accepted")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	pts := randomPoints(31, 3000)
	items := make([]Item, len(pts))
	for i, p := range pts {
		items[i] = Item{Rect: p.Rect(), Obj: ObjID(i)}
	}
	tr, err := BulkLoad(smallConfig(), items)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Inserts and deletes must keep working on a bulk-loaded tree.
	extra := randomPoints(32, 200)
	for i, p := range extra {
		if err := tr.InsertPoint(p, ObjID(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if ok, err := tr.Delete(pts[i].Rect(), ObjID(i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if tr.Len() != 3000+200-100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: for random point sets and random queries, bulk-loaded and
// insertion-built trees return exactly the brute-force result set.
func TestPropSearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 100 + rnd.Intn(400)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
		}
		items := make([]Item, n)
		for i, p := range pts {
			items[i] = Item{Rect: p.Rect(), Obj: ObjID(i)}
		}
		bulk, err := BulkLoad(smallConfig(), items)
		if err != nil {
			return false
		}
		defer bulk.Close()
		ins, err := New(smallConfig())
		if err != nil {
			return false
		}
		defer ins.Close()
		for i, p := range pts {
			if err := ins.InsertPoint(p, ObjID(i)); err != nil {
				return false
			}
		}
		if bulk.CheckInvariants() != nil || ins.CheckInvariants() != nil {
			return false
		}
		for q := 0; q < 5; q++ {
			x1, y1 := rnd.Float64()*100, rnd.Float64()*100
			x2, y2 := x1+rnd.Float64()*40, y1+rnd.Float64()*40
			query := geom.R(geom.Pt(x1, y1), geom.Pt(x2, y2))
			want := map[ObjID]bool{}
			for i, p := range pts {
				if query.ContainsPoint(p) {
					want[ObjID(i)] = true
				}
			}
			for _, tr := range []*Tree{bulk, ins} {
				got := map[ObjID]bool{}
				tr.Search(query, func(e Entry) bool { got[e.Obj] = true; return true })
				if len(got) != len(want) {
					return false
				}
				for id := range want {
					if !got[id] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for _, level := range []int{0, 1, 3} {
		n := &Node{Page: 42, Level: level}
		for i := 0; i < 20; i++ {
			e := Entry{Rect: geom.R(
				geom.Pt(rnd.Float64(), rnd.Float64()),
				geom.Pt(1+rnd.Float64(), 1+rnd.Float64()))}
			if level == 0 {
				e.Obj = ObjID(rnd.Uint64())
			} else {
				e.Child = 1 + pager.PageID(rnd.Intn(1000))
			}
			n.Entries = append(n.Entries, e)
		}
		buf := make([]byte, 2048)
		encodeNode(n, 2, buf)
		got, err := decodeNode(42, 2, buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Level != n.Level || len(got.Entries) != len(n.Entries) {
			t.Fatalf("level/count mismatch: %v vs %v", got, n)
		}
		for i := range n.Entries {
			if !got.Entries[i].Rect.Equal(n.Entries[i].Rect) ||
				got.Entries[i].Obj != n.Entries[i].Obj ||
				got.Entries[i].Child != n.Entries[i].Child {
				t.Fatalf("entry %d mismatch: %+v vs %+v", i, got.Entries[i], n.Entries[i])
			}
		}
	}
}

func TestNodeEncodeOverflowPanics(t *testing.T) {
	n := &Node{Level: 0}
	for i := 0; i < 100; i++ {
		n.Entries = append(n.Entries, Entry{Rect: geom.Pt(0, 0).Rect()})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	encodeNode(n, 2, make([]byte, 256))
}

func TestDecodeCorruptNode(t *testing.T) {
	buf := make([]byte, 256)
	buf[0] = flagLeaf
	buf[1] = 3 // level 3 but leaf flag set
	if _, err := decodeNode(1, 2, buf); err == nil {
		t.Fatal("inconsistent leaf flag accepted")
	}
	buf2 := make([]byte, 256)
	buf2[2] = 0xff // count 255 exceeds capacity
	buf2[3] = 0
	if _, err := decodeNode(1, 2, buf2); err == nil {
		t.Fatal("oversized count accepted")
	}
}
