package rtree

import (
	"fmt"

	"distjoin/internal/pager"
)

// CheckInvariants verifies the structural invariants of the tree and returns
// a descriptive error on the first violation. It is exported for use by
// tests and by the experiment harness as a sanity gate:
//
//   - every node's entry rectangle equals the MBR of the referenced child,
//   - all leaves are at level 0 and levels decrease by one per hop,
//   - every non-root node holds between MinEntries and MaxEntries entries,
//   - the recorded height and object count match the structure.
func (t *Tree) CheckInvariants() error {
	objs, err := t.checkNode(t.root, t.height-1, true)
	if err != nil {
		return err
	}
	if objs != t.size {
		return fmt.Errorf("rtree: size %d but %d objects reachable", t.size, objs)
	}
	return nil
}

func (t *Tree) checkNode(page pager.PageID, wantLevel int, isRoot bool) (int, error) {
	n, err := t.ReadNode(page)
	if err != nil {
		return 0, err
	}
	if n.Level != wantLevel {
		return 0, fmt.Errorf("rtree: page %d at level %d, want %d", page, n.Level, wantLevel)
	}
	if len(n.Entries) > t.maxEntries {
		return 0, fmt.Errorf("rtree: page %d overflows: %d > %d", page, len(n.Entries), t.maxEntries)
	}
	if !isRoot && len(n.Entries) < t.minEntries {
		return 0, fmt.Errorf("rtree: page %d underflows: %d < %d", page, len(n.Entries), t.minEntries)
	}
	if isRoot && n.Level > 0 && len(n.Entries) < 2 {
		return 0, fmt.Errorf("rtree: non-leaf root has %d entries", len(n.Entries))
	}
	for i, e := range n.Entries {
		if !e.Rect.Valid() {
			return 0, fmt.Errorf("rtree: page %d entry %d has invalid rect %v", page, i, e.Rect)
		}
	}
	if n.Level == 0 {
		return len(n.Entries), nil
	}
	total := 0
	for i, e := range n.Entries {
		child, err := t.ReadNode(e.Child)
		if err != nil {
			return 0, err
		}
		if len(child.Entries) == 0 {
			return 0, fmt.Errorf("rtree: page %d entry %d references empty child %d", page, i, e.Child)
		}
		if got := child.MBR(); !got.Equal(e.Rect) {
			return 0, fmt.Errorf("rtree: page %d entry %d rect %v != child MBR %v", page, i, e.Rect, got)
		}
		objs, err := t.checkNode(e.Child, wantLevel-1, false)
		if err != nil {
			return 0, err
		}
		total += objs
	}
	return total, nil
}
