package rtree

import (
	"errors"
	"fmt"

	"distjoin/internal/geom"
	"distjoin/internal/pager"
	"distjoin/internal/stats"
)

// Config describes an R*-tree. The zero value is not valid; fill in Dims and
// call New.
type Config struct {
	// Dims is the dimensionality of indexed rectangles. Required.
	Dims int
	// PageSize is the node size in bytes. The default of 2048 yields a
	// fan-out of 51 in 2-D with 8-byte coordinates — matching the paper's
	// fan-out of 50 (it used 1 KiB nodes with 4-byte coordinates).
	PageSize int
	// BufferFrames is the buffer-pool capacity in pages. The default of
	// 128 frames × 2 KiB pages reproduces the paper's 256 KiB of buffer
	// memory.
	BufferFrames int
	// MinFill is the minimum node fill as a fraction of the maximum
	// fan-out; the paper (§2.2.4) and the R*-tree paper use 0.4.
	MinFill float64
	// ReinsertFraction is the share of entries removed on forced
	// reinsertion; the R*-tree paper recommends 0.3.
	ReinsertFraction float64
	// Counters receives I/O accounting. May be nil.
	Counters *stats.Counters
	// Store supplies a custom page store; a MemStore is created when nil.
	Store pager.Store
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 2048
	}
	if c.BufferFrames == 0 {
		c.BufferFrames = 128
	}
	if c.MinFill == 0 {
		c.MinFill = 0.4
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.3
	}
	return c
}

// Tree is a disk-paged R*-tree. Mutation (Insert, Delete, bulk loading) is
// single-goroutine, but a fully built tree supports concurrent readers:
// ReadNode and the search/join traversals built on it go through the buffer
// pool, which serializes frame management internally — this is what lets the
// parallel partitioned distance join share one tree among its workers.
type Tree struct {
	cfg        Config
	pool       *pager.Pool
	root       pager.PageID
	height     int // number of levels; 1 = root is a leaf
	size       int // number of objects
	maxEntries int
	minEntries int
}

// New creates an empty R*-tree.
func New(cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if cfg.Dims <= 0 {
		return nil, errors.New("rtree: Dims must be positive")
	}
	if cfg.MinFill <= 0 || cfg.MinFill > 0.5 {
		return nil, fmt.Errorf("rtree: MinFill %g out of range (0, 0.5]", cfg.MinFill)
	}
	if cfg.ReinsertFraction < 0 || cfg.ReinsertFraction >= 1 {
		return nil, fmt.Errorf("rtree: ReinsertFraction %g out of range [0, 1)", cfg.ReinsertFraction)
	}
	maxE := maxEntriesFor(cfg.PageSize, cfg.Dims)
	if maxE < 4 {
		return nil, fmt.Errorf("rtree: page size %d too small for %d dims (fan-out %d < 4)",
			cfg.PageSize, cfg.Dims, maxE)
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = pager.NewMemStore(cfg.PageSize)
		if err != nil {
			return nil, err
		}
	}
	pool, err := pager.NewPool(store, cfg.BufferFrames, stats.NodeSink(cfg.Counters))
	if err != nil {
		return nil, err
	}
	minE := int(cfg.MinFill * float64(maxE))
	if minE < 2 {
		minE = 2
	}
	t := &Tree{
		cfg:        cfg,
		pool:       pool,
		height:     1,
		maxEntries: maxE,
		minEntries: minE,
	}
	// Reserve the metadata page (always page 1) so the tree can be
	// persisted with Flush and reopened with Open.
	meta, err := pool.Allocate()
	if err != nil {
		return nil, err
	}
	if meta.ID() != metaPageID {
		pool.Unpin(meta)
		return nil, fmt.Errorf("rtree: store is not fresh (first page is %d)", meta.ID())
	}
	rootNode := &Node{Level: 0}
	if err := t.allocNode(rootNode); err != nil {
		pool.Unpin(meta)
		return nil, err
	}
	t.root = rootNode.Page
	t.encodeMeta(meta.Data())
	meta.MarkDirty()
	pool.Unpin(meta)
	return t, nil
}

// Dims returns the dimensionality of the tree.
func (t *Tree) Dims() int { return t.cfg.Dims }

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the node capacity (fan-out).
func (t *Tree) MaxEntries() int { return t.maxEntries }

// MinEntries returns the minimum entries per non-root node.
func (t *Tree) MinEntries() int { return t.minEntries }

// RootPage returns the page id of the root node.
func (t *Tree) RootPage() pager.PageID { return t.root }

// Pool exposes the buffer pool, letting experiments attach counters.
func (t *Tree) Pool() *pager.Pool { return t.pool }

// MinObjectsUnder returns the guaranteed minimum number of objects in the
// subtree of a node at the given level, derived from the minimum fan-out and
// height as in §2.2.4 of the paper. The root is exempt from the minimum-fill
// invariant, so callers should only apply this to non-root nodes; for a
// conservative bound we still return at least 1.
func (t *Tree) MinObjectsUnder(level int) int {
	n := 1
	for l := 0; l <= level; l++ {
		n *= t.minEntries
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ReadNode fetches and decodes the node stored on the given page. The join
// and nearest-neighbour algorithms traverse the tree through this method, so
// every traversal is charged through the buffer pool.
func (t *Tree) ReadNode(id pager.PageID) (*Node, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(f)
	return decodeNode(id, t.cfg.Dims, f.Data())
}

// writeNode encodes the node back to its page.
func (t *Tree) writeNode(n *Node) error {
	f, err := t.pool.Get(n.Page)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(f)
	encodeNode(n, t.cfg.Dims, f.Data())
	f.MarkDirty()
	return nil
}

// allocNode assigns a fresh page to n and writes it.
func (t *Tree) allocNode(n *Node) error {
	f, err := t.pool.Allocate()
	if err != nil {
		return err
	}
	defer t.pool.Unpin(f)
	n.Page = f.ID()
	encodeNode(n, t.cfg.Dims, f.Data())
	f.MarkDirty()
	return nil
}

// freeNode releases the node's page.
func (t *Tree) freeNode(id pager.PageID) error { return t.pool.Drop(id) }

// Bounds returns the MBR of all indexed objects, or false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	root, err := t.ReadNode(t.root)
	if err != nil || len(root.Entries) == 0 {
		return geom.Rect{}, false
	}
	return root.MBR(), true
}

// DropCache flushes and empties the buffer pool so the next traversal runs
// against a cold buffer; the experiment harness calls this between runs.
func (t *Tree) DropCache() error { return t.pool.Reset() }

// Close releases the underlying store.
func (t *Tree) Close() error {
	return t.pool.Store().Close()
}

// checkRect validates a rectangle argument.
func (t *Tree) checkRect(r geom.Rect) error {
	if !r.Valid() {
		return fmt.Errorf("rtree: invalid rectangle %v", r)
	}
	if r.Dim() != t.cfg.Dims {
		return fmt.Errorf("rtree: rectangle dimension %d, tree dimension %d", r.Dim(), t.cfg.Dims)
	}
	return nil
}
