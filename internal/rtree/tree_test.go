package rtree

import (
	"math/rand"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/stats"
)

// smallConfig builds trees with tiny nodes so splits happen early.
func smallConfig() Config {
	return Config{Dims: 2, PageSize: 256, BufferFrames: 16}
}

func mustNew(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func randomPoints(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Dims: 2, MinFill: 0.9}); err == nil {
		t.Error("MinFill > 0.5 accepted")
	}
	if _, err := New(Config{Dims: 2, ReinsertFraction: 1.5}); err == nil {
		t.Error("ReinsertFraction >= 1 accepted")
	}
	if _, err := New(Config{Dims: 50, PageSize: 256}); err == nil {
		t.Error("page too small for dims accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := mustNew(t, smallConfig())
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("empty tree has bounds")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := false
	tr.Search(geom.R(geom.Pt(0, 0), geom.Pt(1, 1)), func(Entry) bool { found = true; return true })
	if found {
		t.Fatal("search on empty tree returned entries")
	}
}

func TestInsertAndSearchFew(t *testing.T) {
	tr := mustNew(t, smallConfig())
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(5, 5), geom.Pt(9, 1)}
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []ObjID
	tr.Search(geom.R(geom.Pt(0, 0), geom.Pt(6, 6)), func(e Entry) bool {
		got = append(got, e.Obj)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("found %v, want objs 0 and 1", got)
	}
}

func TestInsertRejectsBadRect(t *testing.T) {
	tr := mustNew(t, smallConfig())
	if err := tr.Insert(geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(0, 0)}, 1); err == nil {
		t.Error("inverted rect accepted")
	}
	if err := tr.Insert(geom.Pt(1, 2, 3).Rect(), 1); err == nil {
		t.Error("wrong dims accepted")
	}
}

func TestInsertManyInvariants(t *testing.T) {
	tr := mustNew(t, smallConfig())
	pts := randomPoints(42, 2000)
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 2 {
		t.Fatalf("expected multi-level tree, height = %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchFindsExactlyMatching(t *testing.T) {
	tr := mustNew(t, smallConfig())
	pts := randomPoints(7, 1500)
	for i, p := range pts {
		tr.InsertPoint(p, ObjID(i))
	}
	query := geom.R(geom.Pt(200, 300), geom.Pt(450, 700))
	want := map[ObjID]bool{}
	for i, p := range pts {
		if query.ContainsPoint(p) {
			want[ObjID(i)] = true
		}
	}
	got := map[ObjID]bool{}
	tr.Search(query, func(e Entry) bool { got[e.Obj] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing obj %d", id)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := mustNew(t, smallConfig())
	for i, p := range randomPoints(3, 500) {
		tr.InsertPoint(p, ObjID(i))
	}
	calls := 0
	tr.Search(geom.R(geom.Pt(0, 0), geom.Pt(1000, 1000)), func(Entry) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("callback ran %d times, want 5", calls)
	}
}

func TestScanVisitsAll(t *testing.T) {
	tr := mustNew(t, smallConfig())
	for i, p := range randomPoints(11, 800) {
		tr.InsertPoint(p, ObjID(i))
	}
	seen := map[ObjID]bool{}
	tr.Scan(func(e Entry) bool { seen[e.Obj] = true; return true })
	if len(seen) != 800 {
		t.Fatalf("Scan saw %d objects, want 800", len(seen))
	}
}

func TestRectObjects(t *testing.T) {
	tr := mustNew(t, smallConfig())
	rnd := rand.New(rand.NewSource(13))
	type obj struct {
		r  geom.Rect
		id ObjID
	}
	var objs []obj
	for i := 0; i < 600; i++ {
		x, y := rnd.Float64()*1000, rnd.Float64()*1000
		w, h := rnd.Float64()*20, rnd.Float64()*20
		r := geom.R(geom.Pt(x, y), geom.Pt(x+w, y+h))
		objs = append(objs, obj{r: r, id: ObjID(i)})
		if err := tr.Insert(r, ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	query := geom.R(geom.Pt(100, 100), geom.Pt(400, 400))
	want := map[ObjID]bool{}
	for _, o := range objs {
		if o.r.Intersects(query) {
			want[o.id] = true
		}
	}
	got := map[ObjID]bool{}
	tr.Search(query, func(e Entry) bool { got[e.Obj] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestDelete(t *testing.T) {
	tr := mustNew(t, smallConfig())
	pts := randomPoints(99, 1000)
	for i, p := range pts {
		tr.InsertPoint(p, ObjID(i))
	}
	// Delete half, checking invariants periodically.
	for i := 0; i < 500; i++ {
		ok, err := tr.Delete(pts[i].Rect(), ObjID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("object %d not found for deletion", i)
		}
		if i%100 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted objects are gone; remaining ones findable.
	seen := map[ObjID]bool{}
	tr.Scan(func(e Entry) bool { seen[e.Obj] = true; return true })
	for i := 0; i < 500; i++ {
		if seen[ObjID(i)] {
			t.Fatalf("deleted object %d still present", i)
		}
	}
	for i := 500; i < 1000; i++ {
		if !seen[ObjID(i)] {
			t.Fatalf("object %d missing", i)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := mustNew(t, smallConfig())
	tr.InsertPoint(geom.Pt(1, 1), 1)
	ok, err := tr.Delete(geom.Pt(2, 2).Rect(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deleted a missing object")
	}
	// Same rect, different id.
	ok, _ = tr.Delete(geom.Pt(1, 1).Rect(), 99)
	if ok {
		t.Fatal("deleted object with wrong id")
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := mustNew(t, smallConfig())
	pts := randomPoints(5, 300)
	for i, p := range pts {
		tr.InsertPoint(p, ObjID(i))
	}
	for i, p := range pts {
		if ok, err := tr.Delete(p.Rect(), ObjID(i)); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree must remain usable.
	for i, p := range pts[:50] {
		if err := tr.InsertPoint(p, ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIOCounted(t *testing.T) {
	c := &stats.Counters{}
	cfg := smallConfig()
	cfg.BufferFrames = 4 // tiny buffer to force evictions
	cfg.Counters = c
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i, p := range randomPoints(1, 1000) {
		tr.InsertPoint(p, ObjID(i))
	}
	if c.NodeIO() == 0 {
		t.Fatal("no node I/O counted with 4-frame buffer")
	}
}

func TestMinObjectsUnder(t *testing.T) {
	tr := mustNew(t, smallConfig())
	m := tr.MinEntries()
	if got := tr.MinObjectsUnder(0); got != m {
		t.Fatalf("MinObjectsUnder(0) = %d, want %d", got, m)
	}
	if got := tr.MinObjectsUnder(1); got != m*m {
		t.Fatalf("MinObjectsUnder(1) = %d, want %d", got, m*m)
	}
}

func TestCountNodes(t *testing.T) {
	tr := mustNew(t, smallConfig())
	for i, p := range randomPoints(2, 500) {
		tr.InsertPoint(p, ObjID(i))
	}
	counts, err := tr.CountNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != tr.Height() {
		t.Fatalf("levels %d != height %d", len(counts), tr.Height())
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("root level has %d nodes", counts[len(counts)-1])
	}
	if counts[0] < 2 {
		t.Fatalf("leaf level has %d nodes for 500 points", counts[0])
	}
}

func TestHigherDimensions(t *testing.T) {
	tr := mustNew(t, Config{Dims: 4, PageSize: 1024, BufferFrames: 16})
	rnd := rand.New(rand.NewSource(21))
	n := 500
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64(), rnd.Float64(), rnd.Float64(), rnd.Float64())
		if err := tr.InsertPoint(pts[i], ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	lo := geom.Pt(0.2, 0.2, 0.2, 0.2)
	hi := geom.Pt(0.8, 0.8, 0.8, 0.8)
	query := geom.R(lo, hi)
	want := 0
	for _, p := range pts {
		if query.ContainsPoint(p) {
			want++
		}
	}
	got := 0
	tr.Search(query, func(Entry) bool { got++; return true })
	if got != want {
		t.Fatalf("4-D search found %d, want %d", got, want)
	}
}

func TestPaperDefaults(t *testing.T) {
	tr := mustNew(t, Config{Dims: 2})
	// 2048-byte pages, 2-D float64 entries: fan-out 51 ≈ the paper's 50.
	if tr.MaxEntries() < 45 || tr.MaxEntries() > 55 {
		t.Fatalf("default fan-out = %d, want ≈50", tr.MaxEntries())
	}
	if tr.MinEntries() != int(0.4*float64(tr.MaxEntries())) {
		t.Fatalf("min entries = %d", tr.MinEntries())
	}
}
