// Package rtree implements a disk-paged R*-tree (Beckmann, Kriegel,
// Schneider & Seeger, 1990), the spatial index the paper's experiments are
// built on (§2.1, §3.1): ChooseSubtree with overlap minimization, the R*
// topological split, forced reinsertion, deletion with subtree condensing,
// STR bulk loading, and window search. Nodes live on fixed-size pages behind
// an LRU buffer pool so that node I/O can be counted exactly as in Table 1
// of the paper.
//
// Leaf entries reference objects by an opaque 64-bit ObjID, and carry the
// object's bounding rectangle. When the indexed objects are points the
// rectangle is degenerate, which matches the paper's experimental setup of
// storing point objects directly in the leaves.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"distjoin/internal/geom"
	"distjoin/internal/pager"
)

// ObjID identifies an indexed object (e.g. a tuple ID).
type ObjID uint64

// Entry is one (key, pointer) slot of an R-tree node: a bounding rectangle
// plus either a child page (internal nodes) or an object id (leaf nodes).
type Entry struct {
	Rect  geom.Rect
	Child pager.PageID // valid in internal nodes
	Obj   ObjID        // valid in leaf nodes
}

// Node is the decoded form of an R-tree node page. Level 0 is the leaf
// level.
type Node struct {
	Page    pager.PageID
	Level   int
	Entries []Entry
}

// Leaf reports whether the node is at the leaf level.
func (n *Node) Leaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of the node's entries. It
// panics on an empty node; only a fresh root may be empty, and callers
// special-case that.
func (n *Node) MBR() geom.Rect {
	r := n.Entries[0].Rect.Clone()
	for _, e := range n.Entries[1:] {
		r.UnionInPlace(e.Rect)
	}
	return r
}

// Page layout:
//
//	offset 0  uint8  flags (bit 0: leaf)
//	offset 1  uint8  level
//	offset 2  uint16 entry count
//	offset 4  uint32 reserved
//	offset 8  entries: dims×2 float64 (lo coords, hi coords), uint64 ref
const nodeHeaderSize = 8

const flagLeaf = 1

// entrySize returns the on-page size of one entry for the given
// dimensionality.
func entrySize(dims int) int { return dims*2*8 + 8 }

// maxEntriesFor returns the node capacity (fan-out) for a page size and
// dimensionality.
func maxEntriesFor(pageSize, dims int) int {
	return (pageSize - nodeHeaderSize) / entrySize(dims)
}

// encodeNode serializes n into buf (a full page). It panics if the node
// exceeds the page capacity, which indicates a bug in overflow handling.
func encodeNode(n *Node, dims int, buf []byte) {
	if len(n.Entries) > maxEntriesFor(len(buf), dims) {
		panic(fmt.Sprintf("rtree: encoding node %d with %d entries, capacity %d",
			n.Page, len(n.Entries), maxEntriesFor(len(buf), dims)))
	}
	var flags byte
	if n.Level == 0 {
		flags |= flagLeaf
	}
	buf[0] = flags
	buf[1] = byte(n.Level)
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.Entries)))
	binary.LittleEndian.PutUint32(buf[4:], 0)
	off := nodeHeaderSize
	for _, e := range n.Entries {
		for i := 0; i < dims; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Lo[i]))
			off += 8
		}
		for i := 0; i < dims; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Hi[i]))
			off += 8
		}
		var ref uint64
		if n.Level == 0 {
			ref = uint64(e.Obj)
		} else {
			ref = uint64(e.Child)
		}
		binary.LittleEndian.PutUint64(buf[off:], ref)
		off += 8
	}
}

// decodeNode deserializes a node from a page image.
func decodeNode(page pager.PageID, dims int, buf []byte) (*Node, error) {
	leaf := buf[0]&flagLeaf != 0
	level := int(buf[1])
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if leaf != (level == 0) {
		return nil, fmt.Errorf("rtree: page %d: leaf flag %v inconsistent with level %d", page, leaf, level)
	}
	if max := maxEntriesFor(len(buf), dims); count > max {
		return nil, fmt.Errorf("rtree: page %d: count %d exceeds capacity %d", page, count, max)
	}
	n := &Node{Page: page, Level: level, Entries: make([]Entry, count)}
	off := nodeHeaderSize
	for k := 0; k < count; k++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for i := 0; i < dims; i++ {
			lo[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for i := 0; i < dims; i++ {
			hi[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		ref := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		e := Entry{Rect: geom.Rect{Lo: lo, Hi: hi}}
		if level == 0 {
			e.Obj = ObjID(ref)
		} else {
			e.Child = pager.PageID(ref)
		}
		n.Entries[k] = e
	}
	return n, nil
}
