package pairheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intHeap() *Heap[int] { return New[int](func(a, b int) bool { return a < b }) }

func TestEmptyHeap(t *testing.T) {
	h := intHeap()
	if !h.Empty() || h.Len() != 0 || h.Min() != nil {
		t.Fatal("fresh heap not empty")
	}
}

func TestPopMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	intHeap().PopMin()
}

func TestInsertPopSorted(t *testing.T) {
	h := intHeap()
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		h.Insert(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d", h.Len())
	}
	for want := 0; want < len(in); want++ {
		if got := h.PopMin(); got != want {
			t.Fatalf("PopMin = %d, want %d", got, want)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestDuplicates(t *testing.T) {
	h := intHeap()
	for i := 0; i < 10; i++ {
		h.Insert(7)
	}
	for i := 0; i < 10; i++ {
		if h.PopMin() != 7 {
			t.Fatal("wrong duplicate value")
		}
	}
}

func TestMinIsSmallest(t *testing.T) {
	h := intHeap()
	h.Insert(5)
	h.Insert(2)
	h.Insert(8)
	if h.Min().Value != 2 {
		t.Fatalf("Min = %d, want 2", h.Min().Value)
	}
}

func TestDeleteArbitrary(t *testing.T) {
	h := intHeap()
	var nodes []*Node[int]
	for i := 0; i < 10; i++ {
		nodes = append(nodes, h.Insert(i))
	}
	h.Delete(nodes[4])
	h.Delete(nodes[0]) // the root
	h.Delete(nodes[9])
	want := []int{1, 2, 3, 5, 6, 7, 8}
	if h.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(want))
	}
	for _, w := range want {
		if got := h.PopMin(); got != w {
			t.Fatalf("PopMin = %d, want %d", got, w)
		}
	}
}

func TestDecreaseKey(t *testing.T) {
	type item struct{ key int }
	h := New[*item](func(a, b *item) bool { return a.key < b.key })
	n10 := h.Insert(&item{10})
	h.Insert(&item{5})
	h.Insert(&item{7})
	n10.Value.key = 1
	h.DecreaseKey(n10)
	if got := h.PopMin().key; got != 1 {
		t.Fatalf("PopMin after decrease = %d, want 1", got)
	}
	if got := h.PopMin().key; got != 5 {
		t.Fatalf("second PopMin = %d, want 5", got)
	}
}

func TestDecreaseKeyOnRoot(t *testing.T) {
	type item struct{ key int }
	h := New[*item](func(a, b *item) bool { return a.key < b.key })
	n := h.Insert(&item{3})
	h.Insert(&item{5})
	n.Value.key = 1
	h.DecreaseKey(n) // no-op path
	if got := h.PopMin().key; got != 1 {
		t.Fatalf("PopMin = %d", got)
	}
}

func TestMeld(t *testing.T) {
	a, b := intHeap(), intHeap()
	for i := 0; i < 5; i++ {
		a.Insert(2 * i)   // 0 2 4 6 8
		b.Insert(2*i + 1) // 1 3 5 7 9
	}
	a.Meld(b)
	if a.Len() != 10 || b.Len() != 0 {
		t.Fatalf("lens after meld: %d, %d", a.Len(), b.Len())
	}
	for want := 0; want < 10; want++ {
		if got := a.PopMin(); got != want {
			t.Fatalf("PopMin = %d, want %d", got, want)
		}
	}
	// Melding nil and empty heaps is a no-op.
	a.Meld(nil)
	a.Meld(intHeap())
	if a.Len() != 0 {
		t.Fatal("meld of empty changed len")
	}
}

func TestClear(t *testing.T) {
	h := intHeap()
	h.Insert(1)
	h.Insert(2)
	h.Clear()
	if !h.Empty() {
		t.Fatal("Clear left elements")
	}
	h.Insert(3)
	if h.PopMin() != 3 {
		t.Fatal("heap unusable after Clear")
	}
}

// Property: popping everything yields ascending order, interleaved with
// random deletes, decreases and re-inserts.
func TestPropHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		type item struct{ key int }
		h := New[*item](func(a, b *item) bool { return a.key < b.key })
		live := make(map[*Node[*item]]bool)
		n := 50 + rnd.Intn(200)
		for i := 0; i < n; i++ {
			node := h.Insert(&item{rnd.Intn(1000)})
			live[node] = true
			switch rnd.Intn(5) {
			case 0: // delete a random live node
				for v := range live {
					h.Delete(v)
					delete(live, v)
					break
				}
			case 1: // decrease a random live node
				for v := range live {
					v.Value.key -= rnd.Intn(100)
					h.DecreaseKey(v)
					break
				}
			}
		}
		var got []int
		for !h.Empty() {
			got = append(got, h.PopMin().key)
		}
		if len(got) != len(live) {
			return false
		}
		var want []int
		for v := range live {
			want = append(want, v.Value.key)
		}
		sort.Ints(want)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertPop(b *testing.B) {
	h := intHeap()
	rnd := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(rnd.Int())
		if h.Len() > 1000 {
			h.PopMin()
		}
	}
}
