// Package pairheap implements a pairing heap (Fredman, Sedgewick, Sleator &
// Tarjan), the priority-queue structure the paper chose for the memory tier
// of its hybrid queue (§3.2, reference [13]). It supports O(1) amortized
// insert and meld, O(log n) amortized delete-min, and arbitrary deletion and
// key decrease through node handles — the last two are needed by the
// maximum-distance estimation structure Q_M of §2.2.4, which must delete
// pairs by identity.
package pairheap

// Heap is a pairing heap ordered by the provided less function. The zero
// Heap is not usable; create one with New. Not safe for concurrent use.
type Heap[T any] struct {
	less func(a, b T) bool
	root *Node[T]
	size int
}

// Node is a handle to an element in the heap, usable with Delete and
// DecreaseKey. A Node belongs to exactly one heap.
type Node[T any] struct {
	// Value is the element payload. The portion of the value that affects
	// ordering must not be mutated except through DecreaseKey.
	Value T

	child, next, prev *Node[T] // prev is left sibling, or parent for first child
}

// New creates an empty heap ordered by less (a min-heap when less is "<").
func New[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// Len returns the number of elements.
func (h *Heap[T]) Len() int { return h.size }

// Empty reports whether the heap has no elements.
func (h *Heap[T]) Empty() bool { return h.size == 0 }

// Min returns the node with the smallest value without removing it, or nil
// when the heap is empty.
func (h *Heap[T]) Min() *Node[T] { return h.root }

// Insert adds value to the heap and returns its handle.
func (h *Heap[T]) Insert(value T) *Node[T] {
	n := &Node[T]{Value: value}
	h.root = h.meld(h.root, n)
	h.size++
	return n
}

// PopMin removes and returns the smallest value. It panics on an empty heap.
func (h *Heap[T]) PopMin() T {
	if h.root == nil {
		panic("pairheap: PopMin on empty heap")
	}
	n := h.root
	h.root = h.mergePairs(n.child)
	if h.root != nil {
		h.root.prev = nil
	}
	h.size--
	n.child, n.next, n.prev = nil, nil, nil
	return n.Value
}

// Delete removes an arbitrary node from the heap. The node must belong to
// this heap and must not have been removed already.
func (h *Heap[T]) Delete(n *Node[T]) {
	if n == h.root {
		h.PopMin()
		return
	}
	h.cut(n)
	sub := h.mergePairs(n.child)
	if sub != nil {
		sub.prev = nil
		h.root = h.meld(h.root, sub)
	}
	h.size--
	n.child, n.next, n.prev = nil, nil, nil
}

// DecreaseKey restores heap order after n.Value was decreased (made to
// compare less than, or equal to, its previous value). Increasing a key
// through this method is invalid.
func (h *Heap[T]) DecreaseKey(n *Node[T]) {
	if n == h.root {
		return
	}
	h.cut(n)
	n.prev, n.next = nil, nil
	h.root = h.meld(h.root, n)
}

// Meld moves all elements of other into h, leaving other empty. Both heaps
// must use compatible orderings.
func (h *Heap[T]) Meld(other *Heap[T]) {
	if other == nil || other.root == nil {
		return
	}
	h.root = h.meld(h.root, other.root)
	h.size += other.size
	other.root = nil
	other.size = 0
}

// Clear removes all elements.
func (h *Heap[T]) Clear() {
	h.root = nil
	h.size = 0
}

// cut detaches n (a non-root node) from its parent's child list.
func (h *Heap[T]) cut(n *Node[T]) {
	if n.prev.child == n { // n is the first child; prev is the parent
		n.prev.child = n.next
	} else {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
}

// meld links two heap roots, returning the smaller as the new root.
func (h *Heap[T]) meld(a, b *Node[T]) *Node[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if h.less(b.Value, a.Value) {
		a, b = b, a
	}
	// b becomes the first child of a.
	b.prev = a
	b.next = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	a.next, a.prev = nil, nil
	return a
}

// mergePairs performs the two-pass pairing of a sibling list, the heart of
// delete-min.
func (h *Heap[T]) mergePairs(first *Node[T]) *Node[T] {
	if first == nil {
		return nil
	}
	// Pass 1: meld adjacent pairs left to right.
	var pairs []*Node[T]
	for n := first; n != nil; {
		a := n
		b := n.next
		var rest *Node[T]
		if b != nil {
			rest = b.next
		}
		a.next, a.prev = nil, nil
		if b != nil {
			b.next, b.prev = nil, nil
		}
		pairs = append(pairs, h.meld(a, b))
		n = rest
	}
	// Pass 2: meld right to left.
	result := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		result = h.meld(result, pairs[i])
	}
	return result
}
