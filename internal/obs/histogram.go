package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2 latency buckets. Bucket i holds
// durations whose nanosecond count has bit-length i, i.e. the half-open
// range [2^(i-1), 2^i) ns (bucket 0 holds exactly 0 ns). 64 buckets cover
// every representable duration.
const histBuckets = 64

// Histogram is a fixed-size log2-bucketed latency histogram updated with
// atomic operations only, so many engines may observe into one histogram
// without locking. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations (clock steps) count as 0.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the midpoint
// of the bucket containing the q-th observation. The estimate is therefore
// accurate to within a factor of ~1.5 — plenty for latency reporting.
//
// Degenerate inputs are safe: an empty histogram reports 0 for every
// quantile (never a bucket midpoint or NaN), as do NaN and non-positive q;
// q above 1 is clamped to the maximum observation's bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1)
			return time.Duration(lo + lo/2)
		}
	}
	return h.Mean()
}

// bucketUpper returns the exclusive upper bound of bucket i in seconds.
func bucketUpper(i int) float64 {
	return float64(int64(1)<<uint(i)) / float64(time.Second)
}

// HistogramSnapshot is a point-in-time summary of a Histogram, shaped for
// JSON (expvar) consumption.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	MeanS float64 `json:"mean_seconds"`
	P50S  float64 `json:"p50_seconds"`
	P90S  float64 `json:"p90_seconds"`
	P95S  float64 `json:"p95_seconds"`
	P99S  float64 `json:"p99_seconds"`
}

// snapshot summarizes the histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		MeanS: h.Mean().Seconds(),
		P50S:  h.Quantile(0.50).Seconds(),
		P90S:  h.Quantile(0.90).Seconds(),
		P95S:  h.Quantile(0.95).Seconds(),
		P99S:  h.Quantile(0.99).Seconds(),
	}
}

// Quantiles returns the standard latency summary (p50/p95/p99, count, mean)
// in seconds — the shape both the /metrics quantile gauges and the query
// profiles consume.
func (h *Histogram) Quantiles() HistogramSnapshot { return h.snapshot() }
