package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/stats"
)

// WriteMetrics writes the recorder's current state (and, when c is non-nil,
// the run's stats.Counters) in Prometheus text exposition format.
func WriteMetrics(w io.Writer, r *Recorder, c *stats.Counters) {
	s := r.Snapshot()
	writeCounter(w, "distjoin_pairs_delivered_total", "Result pairs delivered to the caller, in distance order.", s.Delivered)
	writeCounter(w, "distjoin_pairs_emitted_total", "Result pairs emitted by engines (per-partition, pre-merge on the parallel path).", s.Emitted)
	writeCounter(w, "distjoin_expansions_total", "Node-pair expansions across all engines.", s.Expansions)
	writeCounter(w, "distjoin_batch_prune_total", "Candidate pairs skipped by the plane-sweep/block prune before any distance computation.", s.BatchPruned)
	writeCounter(w, "distjoin_queue_spilled_pairs_total", "Pairs spilled to the hybrid priority queue's disk tier.", s.SpilledPairs)
	writeCounter(w, "distjoin_merge_stalls_total", "Times the parallel merge blocked waiting on a partition stream.", s.MergeStalls)
	writeCounter(w, "distjoin_restarts_total", "Engine restarts after an over-tight estimated maximum distance.", s.Restarts)
	writeCounter(w, "distjoin_io_retries_total", "Retries of transient queue-store I/O failures (Options.RetryIO).", s.IORetries)
	writeCounter(w, "distjoin_engines_started_total", "Engines (sequential or partition workers) started.", s.EnginesStarted)
	writeCounter(w, "distjoin_engines_stopped_total", "Engines stopped.", s.EnginesStopped)
	writeGauge(w, "distjoin_queue_depth", "Last sampled priority-queue length.", float64(s.QueueDepth))
	writeGauge(w, "distjoin_frontier_distance", "Distance of the most recently delivered pair (the result frontier).", s.Frontier)
	writeGauge(w, "distjoin_pool_hit_ratio", "Buffer-pool hit ratio since the recorder started.", s.PoolHitRatio)
	if pp := s.PartitionPairs; len(pp) > 0 {
		fmt.Fprintf(w, "# HELP distjoin_partition_pairs_emitted Pairs emitted by each parallel partition worker.\n")
		fmt.Fprintf(w, "# TYPE distjoin_partition_pairs_emitted gauge\n")
		for i, n := range pp {
			fmt.Fprintf(w, "distjoin_partition_pairs_emitted{part=%q} %d\n", strconv.Itoa(i), n)
		}
	}
	writeHistogram(w, "distjoin_inter_pair_delay_seconds", "Delay between consecutive delivered pairs (enumeration delay).", &r.interPair)
	writeHistogram(w, "distjoin_pop_to_emit_seconds", "Latency from queue pop to result emission within one engine.", &r.popToEmit)
	writeQuantiles(w, "distjoin_inter_pair_delay_quantiles_seconds", "Quantile estimates of the inter-pair delay (log2-bucket midpoints).", &r.interPair)
	writeQuantiles(w, "distjoin_pop_to_emit_quantiles_seconds", "Quantile estimates of the pop-to-emit latency (log2-bucket midpoints).", &r.popToEmit)
	if c != nil {
		cs := c.Snapshot()
		writeCounter(w, "distjoin_stats_pairs_reported_total", "Pairs reported (stats.Counters).", cs.PairsReported)
		writeCounter(w, "distjoin_stats_dist_calcs_total", "Distance computations (stats.Counters).", cs.DistCalcs)
		writeCounter(w, "distjoin_stats_queue_inserts_total", "Priority-queue inserts (stats.Counters).", cs.QueueInserts)
		writeCounter(w, "distjoin_stats_node_reads_total", "Index node reads (stats.Counters).", cs.NodeReads)
		writeCounter(w, "distjoin_stats_buffer_hits_total", "Index node buffer hits (stats.Counters).", cs.BufferHits)
		writeGauge(w, "distjoin_stats_max_queue_size", "High-water priority-queue size (stats.Counters).", float64(cs.MaxQueueSize))
	}
}

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// writeHistogram emits cumulative le-labelled buckets. Only populated
// buckets (plus +Inf) are written — with log2 buckets, 64 lines of zeros
// help nobody.
func writeHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bucketUpper(i), 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// writeQuantiles emits summary-style p50/p95/p99 estimates from a log2
// histogram as a quantile-labelled gauge family. Prometheus forbids a
// histogram and a summary under one metric name, so the quantiles live in
// their own family next to the raw buckets.
func writeQuantiles(w io.Writer, name, help string, h *Histogram) {
	q := h.Quantiles()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, q.P50S)
	fmt.Fprintf(w, "%s{quantile=\"0.95\"} %g\n", name, q.P95S)
	fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, q.P99S)
}

// Handler returns an http.Handler serving WriteMetrics output.
func Handler(r *Recorder, c *stats.Counters) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, r, c)
	})
}

// expvar can only publish a name once per process, so the published vars
// read through an atomic pointer to whatever recorder ServeMetrics saw
// last.
var (
	expvarOnce   sync.Once
	expvarActive atomic.Pointer[Recorder]
)

func publishExpvar(r *Recorder) {
	expvarActive.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("distjoin.obs", expvar.Func(func() any {
			return expvarActive.Load().Snapshot()
		}))
	})
}

// MetricsServer is a running metrics/pprof HTTP server.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// ServeMetrics binds addr and serves, in a background goroutine:
//
//	/metrics      Prometheus text exposition (recorder + stats.Counters)
//	/debug/vars   expvar JSON, including a "distjoin.obs" snapshot
//	/debug/pprof  the standard pprof handlers
//
// The default http mux is untouched; callers own the returned server's
// lifetime.
func ServeMetrics(addr string, r *Recorder, c *stats.Counters) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r, c))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
