package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/buildinfo"
	"distjoin/internal/qtrace"
	"distjoin/internal/stats"
)

// WriteMetrics writes the recorder's current state (and, when c is non-nil,
// the run's stats.Counters) in Prometheus text exposition format. It is
// WriteMetricsTraced without per-query gauges.
func WriteMetrics(w io.Writer, r *Recorder, c *stats.Counters) {
	WriteMetricsTraced(w, r, c, nil)
}

// WriteMetricsTraced is WriteMetrics plus, when qt is non-nil, the query
// tracer's per-query resource gauges: one labeled sample per flight-recorder
// trace, newest first, and the live count of running queries. Each extra, if
// any, is invoked in order after the built-in families — the hook other
// subsystems (RED middleware, OTLP exporter, build info beyond the default)
// use to join the same exposition without obs importing them.
func WriteMetricsTraced(w io.Writer, r *Recorder, c *stats.Counters, qt *qtrace.Tracer, extras ...func(io.Writer)) {
	buildinfo.WritePrometheus(w)
	if r != nil {
		writeRecorderMetrics(w, r)
	}
	if c != nil {
		cs := c.Snapshot()
		writeCounter(w, "distjoin_stats_pairs_reported_total", "Pairs reported (stats.Counters).", cs.PairsReported)
		writeCounter(w, "distjoin_stats_dist_calcs_total", "Distance computations (stats.Counters).", cs.DistCalcs)
		writeCounter(w, "distjoin_stats_queue_inserts_total", "Priority-queue inserts (stats.Counters).", cs.QueueInserts)
		writeCounter(w, "distjoin_stats_node_reads_total", "Index node reads (stats.Counters).", cs.NodeReads)
		writeCounter(w, "distjoin_stats_buffer_hits_total", "Index node buffer hits (stats.Counters).", cs.BufferHits)
		writeCounter(w, "distjoin_queries_canceled_total", "Queries that surfaced ErrCanceled (context canceled or deadline exceeded).", cs.Cancellations)
		writeGauge(w, "distjoin_stats_max_queue_size", "High-water priority-queue size (stats.Counters).", float64(cs.MaxQueueSize))
	}
	if qt != nil {
		writeQueryMetrics(w, qt)
	}
	for _, extra := range extras {
		if extra != nil {
			extra(w)
		}
	}
}

func writeRecorderMetrics(w io.Writer, r *Recorder) {
	s := r.Snapshot()
	writeCounter(w, "distjoin_pairs_delivered_total", "Result pairs delivered to the caller, in distance order.", s.Delivered)
	writeCounter(w, "distjoin_pairs_emitted_total", "Result pairs emitted by engines (per-partition, pre-merge on the parallel path).", s.Emitted)
	writeCounter(w, "distjoin_expansions_total", "Node-pair expansions across all engines.", s.Expansions)
	writeCounter(w, "distjoin_batch_prune_total", "Candidate pairs skipped by the plane-sweep/block prune before any distance computation.", s.BatchPruned)
	writeCounter(w, "distjoin_queue_spilled_pairs_total", "Pairs spilled to the hybrid priority queue's disk tier.", s.SpilledPairs)
	writeCounter(w, "distjoin_merge_stalls_total", "Times the parallel merge blocked waiting on a partition stream.", s.MergeStalls)
	writeCounter(w, "distjoin_restarts_total", "Engine restarts after an over-tight estimated maximum distance.", s.Restarts)
	writeCounter(w, "distjoin_io_retries_total", "Retries of transient queue-store I/O failures (Options.RetryIO).", s.IORetries)
	writeCounter(w, "distjoin_engines_started_total", "Engines (sequential or partition workers) started.", s.EnginesStarted)
	writeCounter(w, "distjoin_engines_stopped_total", "Engines stopped.", s.EnginesStopped)
	writeGauge(w, "distjoin_queue_depth", "Last sampled priority-queue length.", float64(s.QueueDepth))
	writeGauge(w, "distjoin_frontier_distance", "Distance of the most recently delivered pair (the result frontier).", s.Frontier)
	writeGauge(w, "distjoin_pool_hit_ratio", "Buffer-pool hit ratio since the recorder started.", s.PoolHitRatio)
	if pp := s.PartitionPairs; len(pp) > 0 {
		fmt.Fprintf(w, "# HELP distjoin_partition_pairs_emitted Pairs emitted by each parallel partition worker.\n")
		fmt.Fprintf(w, "# TYPE distjoin_partition_pairs_emitted gauge\n")
		for i, n := range pp {
			fmt.Fprintf(w, "distjoin_partition_pairs_emitted{part=%q} %d\n", strconv.Itoa(i), n)
		}
	}
	writeHistogram(w, "distjoin_inter_pair_delay_seconds", "Delay between consecutive delivered pairs (enumeration delay).", &r.interPair)
	writeHistogram(w, "distjoin_pop_to_emit_seconds", "Latency from queue pop to result emission within one engine.", &r.popToEmit)
	writeQuantiles(w, "distjoin_inter_pair_delay_quantiles_seconds", "Quantile estimates of the inter-pair delay (log2-bucket midpoints).", &r.interPair)
	writeQuantiles(w, "distjoin_pop_to_emit_quantiles_seconds", "Quantile estimates of the pop-to-emit latency (log2-bucket midpoints).", &r.popToEmit)
}

// writeQueryMetrics emits the per-query resource accounting of the query
// tracer's flight recorder as labeled gauge families (gauges, not counters:
// each sample is one completed query's total, and samples disappear when
// their trace rotates out of the ring).
func writeQueryMetrics(w io.Writer, qt *qtrace.Tracer) {
	writeGauge(w, "distjoin_queries_active", "Queries begun but not yet finished.", float64(qt.Active()))
	traces := qt.Traces()
	if len(traces) == 0 {
		return
	}
	type col struct {
		name, help string
		v          func(t *qtrace.QueryTrace) float64
	}
	cols := []col{
		{"distjoin_query_wall_seconds", "Wall time of each flight-recorded query.", func(t *qtrace.QueryTrace) float64 { return t.WallSeconds }},
		{"distjoin_query_phase_coverage", "Fraction of query wall time explained by the span tree.", func(t *qtrace.QueryTrace) float64 { return t.Coverage }},
		{"distjoin_query_pairs_reported", "Result pairs the query delivered.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.Pairs) }},
		{"distjoin_query_dist_calcs", "Object distance computations the query performed.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.DistCalcs) }},
		{"distjoin_query_node_io", "Index node reads + writes the query performed.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.NodeIO) }},
		{"distjoin_query_io_faults", "Queue-store I/O faults the query observed.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.IOFaults) }},
		{"distjoin_query_io_retries", "Transient-fault retries the query performed.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.IORetries) }},
		{"distjoin_query_batch_pruned", "Candidate pairs the query's plane-sweep/block prune skipped.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.BatchPruned) }},
		{"distjoin_query_peak_queue_depth", "High-water priority-queue size during the query.", func(t *qtrace.QueryTrace) float64 { return float64(t.Resources.PeakQueueDepth) }},
	}
	for _, cl := range cols {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", cl.name, cl.help, cl.name)
		for _, t := range traces {
			fmt.Fprintf(w, "%s{query=%q,kind=%q} %g\n", cl.name, t.ID, t.Kind, cl.v(t))
		}
	}
}

// QueriesHandler serves the query tracer's flight recorder as JSON:
//
//	/debug/queries       all retained traces, newest first
//	/debug/queries/<id>  one trace by query ID (404 when unknown)
//
// The handler expects to be mounted at prefix (e.g. "/debug/queries").
func QueriesHandler(prefix string, qt *qtrace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if qt == nil {
			http.Error(w, "query tracing is not enabled", http.StatusNotFound)
			return
		}
		rest := strings.Trim(strings.TrimPrefix(req.URL.Path, prefix), "/")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if rest == "" {
			enc.Encode(qt.Traces())
			return
		}
		t := qt.Trace(rest)
		if t == nil {
			w.Header().Del("Content-Type")
			http.Error(w, "no such query trace: "+rest, http.StatusNotFound)
			return
		}
		enc.Encode(t)
	})
}

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// writeHistogram emits cumulative le-labelled buckets. Only populated
// buckets (plus +Inf) are written — with log2 buckets, 64 lines of zeros
// help nobody.
func writeHistogram(w io.Writer, name, help string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bucketUpper(i), 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// writeQuantiles emits summary-style p50/p95/p99 estimates from a log2
// histogram as a quantile-labelled gauge family. Prometheus forbids a
// histogram and a summary under one metric name, so the quantiles live in
// their own family next to the raw buckets.
func writeQuantiles(w io.Writer, name, help string, h *Histogram) {
	q := h.Quantiles()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, q.P50S)
	fmt.Fprintf(w, "%s{quantile=\"0.95\"} %g\n", name, q.P95S)
	fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, q.P99S)
}

// Handler returns an http.Handler serving WriteMetrics output.
func Handler(r *Recorder, c *stats.Counters) http.Handler {
	return HandlerTraced(r, c, nil)
}

// HandlerTraced is Handler plus the query tracer's per-query gauges. Extras
// are forwarded to WriteMetricsTraced on every scrape.
func HandlerTraced(r *Recorder, c *stats.Counters, qt *qtrace.Tracer, extras ...func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetricsTraced(w, r, c, qt, extras...)
	})
}

// expvar can only publish a name once per process, so the published vars
// read through an atomic pointer to whatever recorder ServeMetrics saw
// last.
var (
	expvarOnce   sync.Once
	expvarActive atomic.Pointer[Recorder]
)

func publishExpvar(r *Recorder) {
	expvarActive.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("distjoin.obs", expvar.Func(func() any {
			return expvarActive.Load().Snapshot()
		}))
	})
}

// MetricsServer is a running metrics/pprof HTTP server.
type MetricsServer struct {
	ln     net.Listener
	srv    *http.Server
	served chan struct{} // closed when the serve goroutine exits
	closed atomic.Bool
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and waits for its serve goroutine to exit.
// Idempotent: the second and later calls are no-ops returning nil.
func (s *MetricsServer) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.srv.Close()
	<-s.served
	return err
}

// ServeMetrics binds addr and serves, in a background goroutine:
//
//	/metrics      Prometheus text exposition (recorder + stats.Counters)
//	/debug/vars   expvar JSON, including a "distjoin.obs" snapshot
//	/debug/pprof  the standard pprof handlers
//
// The default http mux is untouched; callers own the returned server's
// lifetime.
func ServeMetrics(addr string, r *Recorder, c *stats.Counters) (*MetricsServer, error) {
	return ServeMetricsTraced(addr, r, c, nil)
}

// ServeMetricsTraced is ServeMetrics with per-query tracing attached: the
// /metrics exposition gains the per-query gauges, and the query tracer's
// flight recorder is served as JSON at
//
//	/debug/queries       all retained traces, newest first
//	/debug/queries/<id>  one trace by query ID
func ServeMetricsTraced(addr string, r *Recorder, c *stats.Counters, qt *qtrace.Tracer) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", HandlerTraced(r, c, qt))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/queries", QueriesHandler("/debug/queries", qt))
	mux.Handle("/debug/queries/", QueriesHandler("/debug/queries", qt))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s := &MetricsServer{ln: ln, srv: srv, served: make(chan struct{})}
	go func() {
		defer close(s.served)
		srv.Serve(ln)
	}()
	return s, nil
}
