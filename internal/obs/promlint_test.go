package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"distjoin/internal/qtrace"
	"distjoin/internal/stats"
)

// TestPrometheusExpositionLint runs the full /metrics output — recorder,
// engine counters, per-query gauges, build info, and the RED/SLO extras —
// through a text-format linter: every line parses, HELP/TYPE precede their
// samples, no family is declared twice, counters end in _total, and
// histograms are cumulative with consistent _count/_sum series. This is the
// contract a real Prometheus scraper enforces.
func TestPrometheusExpositionLint(t *testing.T) {
	rec := New(Config{})
	rec.Deliver(0.25)
	rec.Deliver(0.50)
	rec.Emit(0, 0.25, 3, rec.Now().Add(-50*time.Microsecond))
	c := &stats.Counters{}
	c.ReportPair()
	c.AddDistCalc(7)
	qt := qtrace.New(qtrace.Config{})
	q := qt.Begin("join", "lint-q")
	q.Finish(nil)
	red := NewRED(REDConfig{})
	red.Observe("next", 200, 12*time.Millisecond, "lint-q")
	red.Observe("query", 429, time.Millisecond, "")

	var b strings.Builder
	WriteMetricsTraced(&b, rec, c, qt, red.WritePrometheus)
	lintExposition(t, b.String())
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)?\})? (\S+)( \d+)?$`)
)

// lintExposition validates s as Prometheus text exposition format v0.0.4.
func lintExposition(t *testing.T, s string) {
	t.Helper()
	types := map[string]string{}    // family → declared type
	helped := map[string]bool{}     // family → HELP seen
	sampleSeen := map[string]bool{} // family → any sample emitted yet
	var current string              // family of the most recent TYPE line

	// histogram bookkeeping per labeled series
	bucketCum := map[string]float64{}
	bucketInf := map[string]float64{}
	counts := map[string]float64{}

	for i, line := range strings.Split(s, "\n") {
		if line == "" {
			continue
		}
		lineno := i + 1
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				t.Errorf("line %d: duplicate HELP for %s", lineno, m[1])
			}
			helped[m[1]] = true
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			name := m[1]
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", lineno, name)
			}
			if sampleSeen[name] {
				t.Errorf("line %d: TYPE for %s after its samples", lineno, name)
			}
			types[name] = m[2]
			current = name
			if m[2] == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter %s does not end in _total", lineno, name)
			}
			if m[2] == "histogram" && !strings.HasSuffix(name, "_seconds") {
				t.Errorf("line %d: histogram %s does not end in its unit (_seconds)", lineno, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unparseable comment %q", lineno, line)
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample %q", lineno, line)
			continue
		}
		name, labels, valStr := m[1], m[3], m[5]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Errorf("line %d: value %q: %v", lineno, valStr, err)
			continue
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && types[base] == "histogram" {
				family = base
			}
		}
		if _, ok := types[family]; !ok {
			t.Errorf("line %d: sample %s precedes its TYPE", lineno, name)
			continue
		}
		if family != current {
			// All of a family's samples must be contiguous, directly after
			// its header — interleaving confuses scrapers.
			t.Errorf("line %d: sample of %s interleaved inside family %s", lineno, family, current)
		}
		sampleSeen[family] = true
		if types[family] == "counter" && val < 0 {
			t.Errorf("line %d: counter %s is negative: %g", lineno, name, val)
		}
		if types[family] == "histogram" {
			series := family + "{" + stripLabel(labels, "le") + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le := labelValue(labels, "le"); le == "+Inf" {
					bucketInf[series] = val
				} else if val < bucketCum[series] {
					t.Errorf("line %d: histogram %s buckets not cumulative", lineno, series)
				} else {
					bucketCum[series] = val
				}
			case strings.HasSuffix(name, "_count"):
				counts[series] = val
			}
		}
	}
	for series, inf := range bucketInf {
		if cum := bucketCum[series]; cum > inf {
			t.Errorf("histogram %s: le=+Inf (%g) below a finite bucket (%g)", series, inf, cum)
		}
		if cnt, ok := counts[series]; ok && cnt != inf {
			t.Errorf("histogram %s: _count %g != le=+Inf bucket %g", series, cnt, inf)
		}
	}
	for name := range types {
		if !helped[name] {
			t.Errorf("family %s has TYPE but no HELP", name)
		}
	}
}

// labelValue extracts one label's value from a rendered label body.
func labelValue(labels, key string) string {
	for _, kv := range splitLabels(labels) {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// stripLabel removes one label pair, yielding the series identity shared by
// all buckets of one histogram.
func stripLabel(labels, key string) string {
	var keep []string
	for _, kv := range splitLabels(labels) {
		if k, _, ok := strings.Cut(kv, "="); !ok || k != key {
			keep = append(keep, kv)
		}
	}
	return strings.Join(keep, ",")
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}
