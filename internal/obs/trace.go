package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceLine mirrors the JSONL schema written by traceWriter.
type traceLine struct {
	TUS  int64   `json:"t_us"`
	Ev   string  `json:"ev"`
	Part int32   `json:"part"`
	Seq  int64   `json:"seq"`
	Dist float64 `json:"dist"`
	N    int64   `json:"n"`
}

// ReadTrace parses a JSONL trace produced via Config.Trace back into
// events. Blank lines are skipped; a malformed line aborts with an error
// naming its line number.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	byName := make(map[string]EventType, len(eventNames))
	for t, name := range eventNames {
		byName[name] = EventType(t)
	}
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tl traceLine
		if err := json.Unmarshal(line, &tl); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		t, ok := byName[tl.Ev]
		if !ok {
			return nil, fmt.Errorf("trace line %d: unknown event %q", lineNo, tl.Ev)
		}
		events = append(events, Event{
			T:    time.Duration(tl.TUS) * time.Microsecond,
			Type: t,
			Part: tl.Part,
			Seq:  tl.Seq,
			Dist: tl.Dist,
			N:    tl.N,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// TimeToKth scans a trace for the k-th delivered pair and returns its
// elapsed time and distance. ok is false when fewer than k pairs were
// delivered in the trace.
func TimeToKth(events []Event, k int64) (t time.Duration, dist float64, ok bool) {
	for _, ev := range events {
		if ev.Type == EvDeliver && ev.Seq == k {
			return ev.T, ev.Dist, true
		}
	}
	return 0, 0, false
}
