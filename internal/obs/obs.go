// Package obs is the live observability layer of the incremental distance
// join: structured event tracing, latency histograms, and sampled gauges,
// threaded through the engine, the parallel partition workers, the hybrid
// priority queue, and the buffer pool.
//
// The paper's central claim is incrementality — the first result pairs
// arrive long before the full join could complete — and this package makes
// that claim measurable on a live run: the event trace yields
// time-to-k-th-pair and frontier-distance-vs-time curves, the inter-pair
// delay histogram is the "enumeration delay" of the dynamic-enumeration
// literature, and the per-partition gauges expose the progress skew that
// governs partitioned parallel joins.
//
// Following the convention of internal/stats, a nil *Recorder is valid
// everywhere and records nothing: every hook method begins with a nil check,
// takes no interface values, and allocates nothing, so the engine's hot path
// is untouched when observability is off (bench_test.go guards this with a
// testing.AllocsPerRun check).
package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"distjoin/internal/pager"
)

// EventType identifies one kind of engine event.
type EventType uint8

const (
	// EvEngineStart marks an engine (sequential, or one partition worker)
	// seeding its queue. N is unused.
	EvEngineStart EventType = iota
	// EvEngineStop marks an engine releasing its resources. N is the number
	// of pairs the engine reported.
	EvEngineStop
	// EvExpand marks a node-pair expansion. Dist is the pair's queue key
	// (the traversal frontier of that engine); N is the running expansion
	// count. Sampled per Config.ExpandEvery.
	EvExpand
	// EvEmit marks a partition worker producing a result pair (parallel
	// path only; sequential emissions appear as EvDeliver). Dist is the pair
	// distance; N is the worker's queue length.
	EvEmit
	// EvDeliver marks a result pair delivered to the caller, in order. Seq
	// is the 1-based delivery sequence number, Dist the pair distance (the
	// result frontier), N the last sampled queue depth.
	EvDeliver
	// EvSpill marks pairs spilling to the disk tier of the hybrid queue.
	// Dist is the spilled pair's key; N is the disk-tier population.
	// Sampled per Config.SpillEvery.
	EvSpill
	// EvMergeStall marks the parallel merge blocking on a partition whose
	// stream has no buffered result. Part is the awaited partition.
	EvMergeStall
	// EvRestart marks the §2.2.4 restart (the maximum-distance estimation
	// over-tightened and the query re-runs without it).
	EvRestart
	// EvRetry marks a retry of a transient queue-store I/O failure
	// (Options.RetryIO). N is the 1-based number of the attempt that
	// failed.
	EvRetry
)

var eventNames = [...]string{
	EvEngineStart: "engine_start",
	EvEngineStop:  "engine_stop",
	EvExpand:      "expand",
	EvEmit:        "emit",
	EvDeliver:     "deliver",
	EvSpill:       "spill",
	EvMergeStall:  "stall",
	EvRestart:     "restart",
	EvRetry:       "retry",
}

func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// Event is one structured engine event. T is the time since the Recorder
// was created; Part is the partition id (-1 for the sequential engine and
// for merged-stream events).
type Event struct {
	T    time.Duration
	Type EventType
	Part int32
	Seq  int64   // delivery sequence number (EvDeliver)
	Dist float64 // frontier / pair distance, event-dependent
	N    int64   // auxiliary count, event-dependent
}

// Config configures a Recorder. The zero value records into a default-sized
// ring with no trace sink.
type Config struct {
	// Trace, when non-nil, receives the event stream as JSONL — one JSON
	// object per event (see Event and the trace schema in DESIGN.md).
	// Writes are buffered; call Recorder.Close to flush.
	Trace io.Writer
	// RingSize bounds the in-memory event ring (default 8192). The newest
	// events overwrite the oldest; the ring records even without a Trace
	// sink, so a live /metrics or post-mortem inspection always has recent
	// history.
	RingSize int
	// ExpandEvery samples expansion events: only every N-th expansion
	// produces an Event (the expansion counter always counts all).
	// Default 1 (every expansion).
	ExpandEvery int
	// SpillEvery samples hybrid-queue spill events the same way. Default 1.
	SpillEvery int
}

// Recorder collects events and metrics from one join execution (or several
// sequential ones — the experiment harness reuses a Recorder across legs).
// All hook methods are safe for concurrent use by the parallel partition
// workers, and all are no-ops on a nil receiver.
type Recorder struct {
	epoch       time.Time
	expandEvery int64
	spillEvery  int64

	delivered    atomic.Int64
	emits        atomic.Int64
	expands      atomic.Int64
	batchPruned  atomic.Int64
	spilledPairs atomic.Int64
	stalls       atomic.Int64
	restarts     atomic.Int64
	ioRetries    atomic.Int64
	startedEng   atomic.Int64
	stoppedEng   atomic.Int64
	queueDepth   atomic.Int64
	frontier     atomic.Uint64 // float64 bits of the last delivered distance
	lastDeliver  atomic.Int64  // ns since epoch of the previous delivery
	poolReads    atomic.Int64
	poolWrites   atomic.Int64
	poolHits     atomic.Int64

	interPair Histogram // delay between consecutive delivered pairs
	popToEmit Histogram // queue pop to result emission inside one engine

	partMu sync.RWMutex
	parts  []atomic.Int64 // pairs emitted per partition

	mu    sync.Mutex // guards ring and trace writer
	ring  []Event
	ringN int64 // total events appended
	tw    *traceWriter
}

// New creates a Recorder. The returned recorder's clock (Event.T) starts
// now.
func New(cfg Config) *Recorder {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 8192
	}
	if cfg.ExpandEvery <= 0 {
		cfg.ExpandEvery = 1
	}
	if cfg.SpillEvery <= 0 {
		cfg.SpillEvery = 1
	}
	r := &Recorder{
		epoch:       time.Now(),
		expandEvery: int64(cfg.ExpandEvery),
		spillEvery:  int64(cfg.SpillEvery),
		ring:        make([]Event, cfg.RingSize),
	}
	if cfg.Trace != nil {
		r.tw = newTraceWriter(cfg.Trace)
	}
	return r
}

// Now returns the current time, or the zero time on a nil recorder — the
// engine brackets its per-pair work with r.Now() so that a disabled
// recorder skips the clock reads entirely.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// record appends an event to the ring and the trace sink.
func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.ring[int(r.ringN%int64(len(r.ring)))] = ev
	r.ringN++
	if r.tw != nil {
		r.tw.write(ev)
	}
	r.mu.Unlock()
}

// EngineStart records an engine seeding its queue.
func (r *Recorder) EngineStart(part int32) {
	if r == nil {
		return
	}
	r.startedEng.Add(1)
	r.record(Event{T: time.Since(r.epoch), Type: EvEngineStart, Part: part})
}

// EngineStop records an engine releasing its resources after reporting n
// pairs.
func (r *Recorder) EngineStop(part int32, n int64) {
	if r == nil {
		return
	}
	r.stoppedEng.Add(1)
	r.record(Event{T: time.Since(r.epoch), Type: EvEngineStop, Part: part, N: n})
}

// Restart records the §2.2.4 restart.
func (r *Recorder) Restart(part int32) {
	if r == nil {
		return
	}
	r.restarts.Add(1)
	r.record(Event{T: time.Since(r.epoch), Type: EvRestart, Part: part})
}

// IORetry records one retry of a transient queue-store I/O failure;
// attempt is the 1-based number of the attempt that failed.
func (r *Recorder) IORetry(part int32, attempt int) {
	if r == nil {
		return
	}
	r.ioRetries.Add(1)
	r.record(Event{T: time.Since(r.epoch), Type: EvRetry, Part: part, N: int64(attempt)})
}

// Expand records one node-pair expansion at queue key dist.
func (r *Recorder) Expand(part int32, dist float64) {
	if r == nil {
		return
	}
	n := r.expands.Add(1)
	if n%r.expandEvery == 0 {
		r.record(Event{T: time.Since(r.epoch), Type: EvExpand, Part: part, Dist: dist, N: n})
	}
}

// BatchPrune records n candidate pairs skipped by the batched expansion's
// plane-sweep/block prune before any distance computation. Counter-only:
// prunes are far too frequent for per-event tracing.
func (r *Recorder) BatchPrune(n int64) {
	if r == nil {
		return
	}
	r.batchPruned.Add(n)
}

// Emit records one result pair produced by an engine: the pop-to-emit
// latency (popStart is the engine's r.Now() before draining the queue), the
// live queue depth, and — on the sequential path (part < 0), where
// production is delivery — the delivery accounting as well. Parallel
// partition workers pass their partition id and the merge calls Deliver for
// the ordered stream.
func (r *Recorder) Emit(part int32, dist float64, queueLen int, popStart time.Time) {
	if r == nil {
		return
	}
	now := time.Now()
	r.emits.Add(1)
	r.popToEmit.Observe(now.Sub(popStart))
	r.queueDepth.Store(int64(queueLen))
	if part < 0 {
		r.deliver(dist, now)
		return
	}
	r.partMu.RLock()
	if int(part) < len(r.parts) {
		r.parts[part].Add(1)
	}
	r.partMu.RUnlock()
	r.record(Event{T: now.Sub(r.epoch), Type: EvEmit, Part: part, Dist: dist, N: int64(queueLen)})
}

// Deliver records one result pair of the merged (ordered) stream on the
// parallel path. The sequential path delivers through Emit.
func (r *Recorder) Deliver(dist float64) {
	if r == nil {
		return
	}
	r.deliver(dist, time.Now())
}

func (r *Recorder) deliver(dist float64, now time.Time) {
	seq := r.delivered.Add(1)
	r.frontier.Store(math.Float64bits(dist))
	ns := now.Sub(r.epoch).Nanoseconds()
	prev := r.lastDeliver.Swap(ns)
	if seq > 1 {
		r.interPair.Observe(time.Duration(ns - prev))
	}
	r.record(Event{T: time.Duration(ns), Type: EvDeliver, Part: -1, Seq: seq, Dist: dist, N: r.queueDepth.Load()})
}

// Spill records one pair spilling to the hybrid queue's disk tier, which
// now holds diskLen pairs.
func (r *Recorder) Spill(part int32, dist float64, diskLen int) {
	if r == nil {
		return
	}
	n := r.spilledPairs.Add(1)
	if n%r.spillEvery == 0 {
		r.record(Event{T: time.Since(r.epoch), Type: EvSpill, Part: part, Dist: dist, N: int64(diskLen)})
	}
}

// MergeStall records the parallel merge blocking on partition part.
func (r *Recorder) MergeStall(part int32) {
	if r == nil {
		return
	}
	r.stalls.Add(1)
	r.record(Event{T: time.Since(r.epoch), Type: EvMergeStall, Part: part})
}

// SetPartitions sizes the per-partition emission gauges. Called by the
// parallel path before its workers start; idempotent for the same n.
func (r *Recorder) SetPartitions(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.partMu.Lock()
	if len(r.parts) < n {
		parts := make([]atomic.Int64, n)
		for i := range r.parts {
			parts[i].Store(r.parts[i].Load())
		}
		r.parts = parts
	}
	r.partMu.Unlock()
}

// PartitionPairs returns the pairs emitted per partition (nil when the
// sequential path ran).
func (r *Recorder) PartitionPairs() []int64 {
	if r == nil {
		return nil
	}
	r.partMu.RLock()
	defer r.partMu.RUnlock()
	if len(r.parts) == 0 {
		return nil
	}
	out := make([]int64, len(r.parts))
	for i := range r.parts {
		out[i] = r.parts[i].Load()
	}
	return out
}

// poolTap forwards buffer-pool accounting to an inner sink while feeding
// the recorder's hit-ratio gauge.
type poolTap struct {
	r     *Recorder
	inner pager.IOCounter
}

func (t *poolTap) AddRead(n int64) {
	t.r.poolReads.Add(n)
	if t.inner != nil {
		t.inner.AddRead(n)
	}
}

func (t *poolTap) AddWrite(n int64) {
	t.r.poolWrites.Add(n)
	if t.inner != nil {
		t.inner.AddWrite(n)
	}
}

func (t *poolTap) AddHit(n int64) {
	t.r.poolHits.Add(n)
	if t.inner != nil {
		t.inner.AddHit(n)
	}
}

// PoolTap wraps a pager.IOCounter so the recorder observes buffer-pool
// traffic (feeding the live hit-ratio gauge) while the inner sink keeps
// receiving the Table-1 accounting. A nil recorder returns inner unchanged.
func (r *Recorder) PoolTap(inner pager.IOCounter) pager.IOCounter {
	if r == nil {
		return inner
	}
	return &poolTap{r: r, inner: inner}
}

// Events returns the ring contents in chronological order (oldest first).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.ringN
	cap64 := int64(len(r.ring))
	if n > cap64 {
		out := make([]Event, cap64)
		start := n % cap64
		copy(out, r.ring[start:])
		copy(out[cap64-start:], r.ring[:start])
		return out
	}
	return append([]Event(nil), r.ring[:n]...)
}

// Snapshot is a point-in-time view of every counter, gauge and histogram,
// shaped for JSON (expvar) consumption.
type Snapshot struct {
	UptimeS        float64           `json:"uptime_seconds"`
	Delivered      int64             `json:"pairs_delivered"`
	Emitted        int64             `json:"pairs_emitted"`
	Expansions     int64             `json:"expansions"`
	BatchPruned    int64             `json:"batch_pruned"`
	SpilledPairs   int64             `json:"queue_spilled_pairs"`
	MergeStalls    int64             `json:"merge_stalls"`
	Restarts       int64             `json:"restarts"`
	IORetries      int64             `json:"io_retries"`
	EnginesStarted int64             `json:"engines_started"`
	EnginesStopped int64             `json:"engines_stopped"`
	QueueDepth     int64             `json:"queue_depth"`
	Frontier       float64           `json:"frontier_distance"`
	PoolReads      int64             `json:"pool_reads"`
	PoolWrites     int64             `json:"pool_writes"`
	PoolHits       int64             `json:"pool_hits"`
	PoolHitRatio   float64           `json:"pool_hit_ratio"`
	PartitionPairs []int64           `json:"partition_pairs,omitempty"`
	InterPairDelay HistogramSnapshot `json:"inter_pair_delay"`
	PopToEmit      HistogramSnapshot `json:"pop_to_emit"`
	EventsRecorded int64             `json:"events_recorded"`
}

// Snapshot captures the current metric values. Safe to call while engines
// run; fields may be mutually skewed by in-flight updates. A nil recorder
// returns the zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	reads, hits := r.poolReads.Load(), r.poolHits.Load()
	ratio := 0.0
	if reads+hits > 0 {
		ratio = float64(hits) / float64(reads+hits)
	}
	r.mu.Lock()
	events := r.ringN
	r.mu.Unlock()
	return Snapshot{
		UptimeS:        time.Since(r.epoch).Seconds(),
		Delivered:      r.delivered.Load(),
		Emitted:        r.emits.Load(),
		Expansions:     r.expands.Load(),
		BatchPruned:    r.batchPruned.Load(),
		SpilledPairs:   r.spilledPairs.Load(),
		MergeStalls:    r.stalls.Load(),
		Restarts:       r.restarts.Load(),
		IORetries:      r.ioRetries.Load(),
		EnginesStarted: r.startedEng.Load(),
		EnginesStopped: r.stoppedEng.Load(),
		QueueDepth:     r.queueDepth.Load(),
		Frontier:       math.Float64frombits(r.frontier.Load()),
		PoolReads:      reads,
		PoolWrites:     r.poolWrites.Load(),
		PoolHits:       hits,
		PoolHitRatio:   ratio,
		PartitionPairs: r.PartitionPairs(),
		InterPairDelay: r.interPair.snapshot(),
		PopToEmit:      r.popToEmit.snapshot(),
		EventsRecorded: events,
	}
}

// Close flushes the trace sink and returns the first write error
// encountered, if any. The recorder's counters remain readable after Close;
// further events are still recorded to the ring but not the trace.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tw == nil {
		return nil
	}
	err := r.tw.flush()
	r.tw = nil
	return err
}

// traceWriter streams events as JSONL with a reusable encode buffer.
type traceWriter struct {
	w   *bufio.Writer
	buf []byte
	err error
}

func newTraceWriter(w io.Writer) *traceWriter {
	return &traceWriter{w: bufio.NewWriterSize(w, 64*1024)}
}

func (t *traceWriter) write(ev Event) {
	if t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"t_us":`...)
	b = strconv.AppendInt(b, ev.T.Microseconds(), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, `","part":`...)
	b = strconv.AppendInt(b, int64(ev.Part), 10)
	if ev.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, ev.Seq, 10)
	}
	if ev.Dist != 0 {
		b = append(b, `,"dist":`...)
		b = strconv.AppendFloat(b, ev.Dist, 'g', -1, 64)
	}
	if ev.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, ev.N, 10)
	}
	b = append(b, '}', '\n')
	t.buf = b
	_, t.err = t.w.Write(b)
}

func (t *traceWriter) flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}
