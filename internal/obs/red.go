package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"
)

// RED aggregates the three golden signals — Rate, Errors, Duration — per
// HTTP endpoint of the query service, plus multi-window SLO burn rates for
// the latency objective on the pull path. One RED instance backs the whole
// server; Observe is called once per finished request by the server's
// middleware and WritePrometheus joins the /metrics exposition through the
// extras hook of WriteMetricsTraced.
//
// Exemplars: each latency observation carries the query (or cursor) id it
// served. The most recent id per (endpoint, latency bucket) is retained and
// exposed as a separate labeled gauge family — the classic text exposition
// format has no native exemplar syntax, so the link from a histogram bucket
// to a concrete flight-recorder trace travels in its own family instead.
//
// A nil *RED is valid and inert everywhere, matching the repo-wide nil-safe
// observability convention.
type RED struct {
	target      time.Duration
	objective   float64
	sloEndpoint string
	now         func() time.Time

	mu      sync.Mutex
	eps     map[string]*redEndpoint
	windows []*burnWindow
}

// redEndpoint is one endpoint's RED state. Guarded by RED.mu except the
// histogram, which is internally atomic.
type redEndpoint struct {
	codes     map[string]int64 // status class ("2xx".."5xx") → requests
	errors    map[string]int64 // error class ("client"/"server") → requests
	dur       Histogram
	exemplars map[int]redExemplar // log2 latency bucket → latest exemplar
}

// redExemplar links one latency bucket to the query trace that landed there
// most recently.
type redExemplar struct {
	query   string
	seconds float64
}

// REDConfig configures NewRED. The zero value yields the service defaults:
// a p95 ≤ 250ms objective (objective 0.95, target 250ms) on the "next"
// endpoint, burn windows of 5m and 1h.
type REDConfig struct {
	// SLOTarget is the latency threshold a request must beat to count as
	// good for the SLO. Default 250ms.
	SLOTarget time.Duration
	// SLOObjective is the fraction of SLO-endpoint requests that must be
	// good (fast and non-5xx). Default 0.95.
	SLOObjective float64
	// SLOEndpoint names the endpoint the SLO applies to. Default "next"
	// (the cursor pull path).
	SLOEndpoint string

	now func() time.Time // test hook; nil = time.Now
}

// Default SLO parameters: 95% of cursor pulls complete within 250ms.
const (
	DefaultSLOTarget    = 250 * time.Millisecond
	DefaultSLOObjective = 0.95
	DefaultSLOEndpoint  = "next"
)

// NewRED returns a collector with the configured (or default) SLO.
func NewRED(cfg REDConfig) *RED {
	if cfg.SLOTarget <= 0 {
		cfg.SLOTarget = DefaultSLOTarget
	}
	if cfg.SLOObjective <= 0 || cfg.SLOObjective >= 1 {
		cfg.SLOObjective = DefaultSLOObjective
	}
	if cfg.SLOEndpoint == "" {
		cfg.SLOEndpoint = DefaultSLOEndpoint
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &RED{
		target:      cfg.SLOTarget,
		objective:   cfg.SLOObjective,
		sloEndpoint: cfg.SLOEndpoint,
		now:         cfg.now,
		eps:         make(map[string]*redEndpoint),
		// Fast/slow burn windows, the standard multi-window pairing: the
		// fast window catches a sudden total outage, the slow one a steady
		// trickle of slow pulls.
		windows: []*burnWindow{
			newBurnWindow("5m", 5*time.Minute, 20),
			newBurnWindow("1h", time.Hour, 60),
		},
	}
}

// Observe records one finished request: its endpoint (a low-cardinality
// route name, not the raw path), final HTTP status, wall duration, and the
// query/cursor id it served (empty when none — e.g. index listings).
func (r *RED) Observe(endpoint string, status int, d time.Duration, query string) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	class := statusClass(status)
	r.mu.Lock()
	ep := r.eps[endpoint]
	if ep == nil {
		ep = &redEndpoint{
			codes:     make(map[string]int64),
			errors:    make(map[string]int64),
			exemplars: make(map[int]redExemplar),
		}
		r.eps[endpoint] = ep
	}
	ep.codes[class]++
	switch {
	case status >= 500:
		ep.errors["server"]++
	case status >= 400:
		ep.errors["client"]++
	}
	if query != "" {
		ep.exemplars[histBucketOf(d)] = redExemplar{query: query, seconds: d.Seconds()}
	}
	if endpoint == r.sloEndpoint {
		bad := status >= 500 || d > r.target
		now := r.now()
		for _, bw := range r.windows {
			bw.add(now, bad)
		}
	}
	r.mu.Unlock()
	ep.dur.Observe(d)
}

// statusClass buckets an HTTP status into its hundred ("2xx".."5xx").
// Out-of-range codes land in "other" rather than minting label values.
func statusClass(status int) string {
	if status >= 100 && status <= 599 {
		return strconv.Itoa(status/100) + "xx"
	}
	return "other"
}

// histBucketOf mirrors Histogram.Observe's bucket assignment so exemplars
// line up with the histogram's le bounds.
func histBucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	return bits.Len64(uint64(ns))
}

// WritePrometheus emits the RED and SLO families in text exposition format.
// Its signature matches the extras hook of WriteMetricsTraced.
func (r *RED) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.eps))
	for name := range r.eps {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP distjoin_http_requests_total Requests served, by endpoint and status class.\n# TYPE distjoin_http_requests_total counter\n")
	for _, name := range names {
		ep := r.eps[name]
		for _, class := range sortedKeys(ep.codes) {
			fmt.Fprintf(w, "distjoin_http_requests_total{endpoint=%q,code=%q} %d\n", name, class, ep.codes[class])
		}
	}
	fmt.Fprintf(w, "# HELP distjoin_http_errors_total Failed requests, by endpoint and error class (client = 4xx, server = 5xx).\n# TYPE distjoin_http_errors_total counter\n")
	for _, name := range names {
		ep := r.eps[name]
		for _, class := range sortedKeys(ep.errors) {
			fmt.Fprintf(w, "distjoin_http_errors_total{endpoint=%q,class=%q} %d\n", name, class, ep.errors[class])
		}
	}

	fmt.Fprintf(w, "# HELP distjoin_http_request_duration_seconds Wall duration of served requests, by endpoint.\n# TYPE distjoin_http_request_duration_seconds histogram\n")
	for _, name := range names {
		writeLabeledHistogram(w, "distjoin_http_request_duration_seconds", "endpoint", name, &r.eps[name].dur)
	}
	fmt.Fprintf(w, "# HELP distjoin_http_request_duration_quantiles_seconds Quantile estimates of request duration (log2-bucket midpoints), by endpoint.\n# TYPE distjoin_http_request_duration_quantiles_seconds gauge\n")
	for _, name := range names {
		q := r.eps[name].dur.Quantiles()
		fmt.Fprintf(w, "distjoin_http_request_duration_quantiles_seconds{endpoint=%q,quantile=\"0.5\"} %g\n", name, q.P50S)
		fmt.Fprintf(w, "distjoin_http_request_duration_quantiles_seconds{endpoint=%q,quantile=\"0.95\"} %g\n", name, q.P95S)
		fmt.Fprintf(w, "distjoin_http_request_duration_quantiles_seconds{endpoint=%q,quantile=\"0.99\"} %g\n", name, q.P99S)
	}

	// Exemplars: which query trace last landed in each latency bucket.
	// /debug/queries/<query> resolves the id to its full span tree.
	fmt.Fprintf(w, "# HELP distjoin_http_request_exemplar_seconds Latest request duration per latency bucket, labeled with the query trace that produced it.\n# TYPE distjoin_http_request_exemplar_seconds gauge\n")
	for _, name := range names {
		ep := r.eps[name]
		buckets := make([]int, 0, len(ep.exemplars))
		for b := range ep.exemplars {
			buckets = append(buckets, b)
		}
		sort.Ints(buckets)
		for _, b := range buckets {
			ex := ep.exemplars[b]
			fmt.Fprintf(w, "distjoin_http_request_exemplar_seconds{endpoint=%q,le=%q,query=%q} %g\n",
				name, strconv.FormatFloat(bucketUpper(b), 'g', -1, 64), ex.query, ex.seconds)
		}
	}

	// SLO families: the objective's parameters plus its burn rate over each
	// window. Burn rate 1.0 = consuming error budget exactly at the rate
	// that exhausts it at the window's end; >1 = faster.
	writeGauge(w, "distjoin_slo_target_seconds", "Latency target a request must beat to count as good for the SLO.", r.target.Seconds())
	writeGauge(w, "distjoin_slo_objective_ratio", "Fraction of SLO-endpoint requests that must be good.", r.objective)
	now := r.now()
	fmt.Fprintf(w, "# HELP distjoin_slo_requests Requests observed in each sliding SLO window.\n# TYPE distjoin_slo_requests gauge\n")
	for _, bw := range r.windows {
		good, bad := bw.totals(now)
		fmt.Fprintf(w, "distjoin_slo_requests{window=%q,outcome=\"good\"} %d\n", bw.name, good)
		fmt.Fprintf(w, "distjoin_slo_requests{window=%q,outcome=\"bad\"} %d\n", bw.name, bad)
	}
	fmt.Fprintf(w, "# HELP distjoin_slo_burn_rate Error-budget burn rate per sliding window: bad fraction over the allowed fraction (1 = budget exhausts exactly at the window's end).\n# TYPE distjoin_slo_burn_rate gauge\n")
	for _, bw := range r.windows {
		good, bad := bw.totals(now)
		burn := 0.0
		if total := good + bad; total > 0 {
			burn = (float64(bad) / float64(total)) / (1 - r.objective)
		}
		fmt.Fprintf(w, "distjoin_slo_burn_rate{window=%q} %g\n", bw.name, burn)
	}
	r.mu.Unlock()
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// writeLabeledHistogram is writeHistogram with one constant label pair on
// every sample, for per-endpoint duration families. The caller writes the
// shared HELP/TYPE header once.
func writeLabeledHistogram(w io.Writer, name, label, value string, h *Histogram) {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, value, strconv.FormatFloat(bucketUpper(i), 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, value, h.Count())
	fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, value, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, value, h.Count())
}

// burnWindow is a sliding window of good/bad counts implemented as a ring
// of time slots. Adding and totalling are O(slots); slots whose epoch has
// rotated out of the window read as empty without explicit expiry.
type burnWindow struct {
	name  string
	slotD time.Duration
	slots []burnSlot
}

type burnSlot struct {
	epoch     int64 // slot index since the unix epoch; 0 = never used
	good, bad int64
}

func newBurnWindow(name string, width time.Duration, slots int) *burnWindow {
	return &burnWindow{name: name, slotD: width / time.Duration(slots), slots: make([]burnSlot, slots)}
}

// add records one observation at time now. Caller holds RED.mu.
func (b *burnWindow) add(now time.Time, bad bool) {
	epoch := now.UnixNano() / int64(b.slotD)
	s := &b.slots[int(epoch)%len(b.slots)]
	if s.epoch != epoch {
		*s = burnSlot{epoch: epoch}
	}
	if bad {
		s.bad++
	} else {
		s.good++
	}
}

// totals sums the slots still inside the window ending at now. Caller holds
// RED.mu.
func (b *burnWindow) totals(now time.Time) (good, bad int64) {
	epoch := now.UnixNano() / int64(b.slotD)
	oldest := epoch - int64(len(b.slots)) + 1
	for i := range b.slots {
		if s := &b.slots[i]; s.epoch >= oldest && s.epoch <= epoch {
			good += s.good
			bad += s.bad
		}
	}
	return good, bad
}
