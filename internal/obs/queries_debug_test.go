package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"distjoin/internal/qtrace"
)

// TestDebugQueriesConsistencyUnderLoad hits /debug/queries while many
// concurrent short queries complete, asserting every response the handler
// ever serves is internally consistent: valid JSON, at most FlightSize
// traces, newest first by sequence, no duplicate ids within one snapshot.
// This is the observability contract the flight recorder promises the
// operator while a busy cursor service churns underneath.
func TestDebugQueriesConsistencyUnderLoad(t *testing.T) {
	const flightSize = 8
	tr := qtrace.New(qtrace.Config{FlightSize: flightSize})
	ts := httptest.NewServer(QueriesHandler("/debug/queries", tr))
	defer ts.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := tr.Begin("join", fmt.Sprintf("w%d-%04d", w, i))
				q.Finish(nil)
				// Throttle: churn should contend with the readers, not
				// starve them (the race detector makes spinning brutal).
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				resp, err := ts.Client().Get(ts.URL + "/debug/queries")
				if err != nil {
					t.Error(err)
					return
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 {
					t.Errorf("status %d err %v", resp.StatusCode, err)
					return
				}
				var traces []qtrace.QueryTrace
				if err := json.Unmarshal(raw, &traces); err != nil {
					t.Errorf("snapshot is not valid JSON: %v\n%s", err, raw)
					return
				}
				if len(traces) > flightSize {
					t.Errorf("snapshot has %d traces > FlightSize %d", len(traces), flightSize)
					return
				}
				seen := make(map[string]bool, len(traces))
				for _, qt := range traces {
					if qt.ID == "" || qt.Kind != "join" {
						t.Errorf("malformed trace in snapshot: %+v", qt)
						return
					}
					if seen[qt.ID] {
						t.Errorf("duplicate id %s in one snapshot", qt.ID)
						return
					}
					seen[qt.ID] = true
				}
				// Every trace in the snapshot must resolve individually too
				// (it may have been evicted between the two requests — only
				// 200 and 404 are acceptable, never a 500 or a torn body).
				if len(traces) > 0 {
					one, err := ts.Client().Get(ts.URL + "/debug/queries/" + traces[0].ID)
					if err != nil {
						t.Error(err)
						return
					}
					body, _ := io.ReadAll(one.Body)
					one.Body.Close()
					switch one.StatusCode {
					case 200:
						var single qtrace.QueryTrace
						if err := json.Unmarshal(body, &single); err != nil {
							t.Errorf("single trace torn: %v\n%s", err, body)
							return
						}
					case 404: // evicted between list and get — fine
					default:
						t.Errorf("single trace status %d: %s", one.StatusCode, body)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	if tr.Active() != 0 {
		t.Fatalf("active queries after load: %d", tr.Active())
	}
}
