package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"distjoin/internal/qtrace"
)

// TestQuantileEmptyHistogram is the regression test for the empty-histogram
// quantile edge case: every quantile of a histogram with zero samples must
// report 0 — never NaN, never a bogus bucket midpoint — including through
// the snapshot and the /metrics quantile gauges. Degenerate q values must
// be safe on populated histograms too.
func TestQuantileEmptyHistogram(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0.5, 0.95, 0.99, 0, -1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	snap := h.Quantiles()
	if snap.P95S != 0 || snap.P50S != 0 || snap.P99S != 0 || math.IsNaN(snap.MeanS) {
		t.Errorf("empty histogram snapshot = %+v, want all-zero", snap)
	}

	var buf strings.Builder
	writeQuantiles(&buf, "test_quantiles_seconds", "t", &h)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 0") {
			t.Errorf("empty-histogram quantile gauge %q, want value 0", line)
		}
	}

	// Degenerate q on a populated histogram: non-positive and NaN report 0,
	// q > 1 clamps to the maximum observation's bucket.
	h.Observe(100 * time.Millisecond)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", got)
	}
	if got := h.Quantile(-0.5); got != 0 {
		t.Errorf("Quantile(-0.5) = %v, want 0", got)
	}
	if got := h.Quantile(3); got != h.Quantile(1) {
		t.Errorf("Quantile(3) = %v, want Quantile(1) = %v", got, h.Quantile(1))
	}
}

// TestServeMetricsShutdown pins the server lifecycle: Close waits for the
// serve goroutine to exit (no goroutine leak), the port is released, and a
// second Close is a no-op returning nil.
func TestServeMetricsShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := ServeMetrics("127.0.0.1:0", New(Config{}), nil)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	addr := srv.Addr()
	// A private transport so the test owns every client goroutine: the
	// shared DefaultTransport keeps idle keep-alive connections (and
	// their read loops) alive past the request.
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatalf("server still serving after Close")
	}
	tr.CloseIdleConnections()
	// The serve goroutine must be gone. NumGoroutine is noisy (finished
	// request handlers unwind asynchronously), so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked across ServeMetrics lifecycle: %d before, %d after", before, after)
	}
}

// traceQuery lands one completed query in the tracer's flight recorder.
func traceQuery(qt *qtrace.Tracer, kind, id string) {
	q := qt.Begin(kind, id)
	c := q.AttachCounters(nil)
	c.ReportPair()
	c.AddNodeRead(2)
	w := q.StartWorker(-1)
	w.Done(1, false)
	q.Finish(nil)
}

func TestQueriesHandler(t *testing.T) {
	qt := qtrace.New(qtrace.Config{})
	traceQuery(qt, "join", "alpha")
	traceQuery(qt, "knn", "beta")

	h := QueriesHandler("/debug/queries", qt)
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}

	code, body := get("/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/queries: status %d", code)
	}
	var all []qtrace.QueryTrace
	if err := json.Unmarshal([]byte(body), &all); err != nil {
		t.Fatalf("flight-recorder dump is not JSON: %v", err)
	}
	if len(all) != 2 || all[0].ID != "beta" || all[1].ID != "alpha" {
		t.Fatalf("dump = %v, want [beta alpha]", all)
	}

	code, body = get("/debug/queries/alpha")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/queries/alpha: status %d", code)
	}
	var one qtrace.QueryTrace
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("single trace is not JSON: %v", err)
	}
	if one.ID != "alpha" || one.Kind != "join" || one.Resources.Pairs != 1 {
		t.Fatalf("trace = %+v", one)
	}

	if code, _ = get("/debug/queries/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown query id: status %d, want 404", code)
	}

	if code, _ = get("/debug/queries"); code != http.StatusOK {
		t.Fatalf("repeat dump: status %d", code)
	}
	nilCode := httptest.NewRecorder()
	QueriesHandler("/debug/queries", nil).ServeHTTP(nilCode, httptest.NewRequest(http.MethodGet, "/debug/queries", nil))
	if nilCode.Code != http.StatusNotFound {
		t.Fatalf("nil tracer handler: status %d, want 404", nilCode.Code)
	}
}

func TestPerQueryMetrics(t *testing.T) {
	qt := qtrace.New(qtrace.Config{})
	traceQuery(qt, "join", "gauged")
	live := qt.Begin("knn", "running") // stays active during the scrape

	rec := httptest.NewRecorder()
	HandlerTraced(New(Config{}), nil, qt).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"distjoin_queries_active 1",
		"# TYPE distjoin_query_wall_seconds gauge",
		`distjoin_query_pairs_reported{query="gauged",kind="join"} 1`,
		`distjoin_query_node_io{query="gauged",kind="join"} 2`,
		`distjoin_query_io_faults{query="gauged",kind="join"} 0`,
		`distjoin_query_peak_queue_depth{query="gauged",kind="join"} 0`,
		"# TYPE distjoin_query_phase_coverage gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("per-query metrics missing %q", want)
		}
	}
	live.Finish(nil)
}

// TestWriteMetricsNilRecorder pins that the exposition is nil-safe in the
// recorder and counters (the repo-wide "nil is valid everywhere"
// convention): a tracer-only server must still serve its query gauges.
func TestWriteMetricsNilRecorder(t *testing.T) {
	qt := qtrace.New(qtrace.Config{})
	traceQuery(qt, "join", "solo")
	rec := httptest.NewRecorder()
	HandlerTraced(nil, nil, qt).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `distjoin_query_pairs_reported{query="solo",kind="join"} 1`) {
		t.Errorf("nil-recorder /metrics missing query gauges:\n%s", body)
	}
	if strings.Contains(body, "distjoin_pairs_delivered_total") {
		t.Errorf("nil-recorder /metrics emitted recorder families:\n%s", body)
	}
	var none strings.Builder
	WriteMetricsTraced(&none, nil, nil, nil) // fully nil: build info only, no panic
	if out := none.String(); !strings.Contains(out, "distjoin_build_info{") || strings.Count(out, "# HELP") != 1 {
		t.Errorf("all-nil WriteMetricsTraced wrote %q, want exactly the build-info family", out)
	}
}

// TestServeMetricsTraced wires the whole surface over a real listener:
// /metrics carries the per-query gauges and /debug/queries serves the
// flight recorder.
func TestServeMetricsTraced(t *testing.T) {
	qt := qtrace.New(qtrace.Config{})
	traceQuery(qt, "join", "served")
	srv, err := ServeMetricsTraced("127.0.0.1:0", New(Config{}), nil, qt)
	if err != nil {
		t.Fatalf("ServeMetricsTraced: %v", err)
	}
	defer srv.Close()
	fetch := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := fetch("/metrics"); !strings.Contains(body, `distjoin_query_wall_seconds{query="served",kind="join"}`) {
		t.Errorf("/metrics missing per-query gauge:\n%s", body)
	}
	if body := fetch("/debug/queries/served"); !strings.Contains(body, `"id": "served"`) {
		t.Errorf("/debug/queries/served missing trace:\n%s", body)
	}
}
