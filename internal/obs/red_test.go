package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func redAt(t0 time.Time) (*RED, *time.Time) {
	now := t0
	r := NewRED(REDConfig{now: func() time.Time { return now }})
	return r, &now
}

func TestREDFamilies(t *testing.T) {
	r, _ := redAt(time.Unix(1_700_000_000, 0))
	r.Observe("next", 200, 10*time.Millisecond, "c0000001")
	r.Observe("next", 200, 20*time.Millisecond, "c0000002")
	r.Observe("next", 500, 5*time.Millisecond, "c0000003")
	r.Observe("query", 409, 1*time.Millisecond, "")

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`distjoin_http_requests_total{endpoint="next",code="2xx"} 2`,
		`distjoin_http_requests_total{endpoint="next",code="5xx"} 1`,
		`distjoin_http_requests_total{endpoint="query",code="4xx"} 1`,
		`distjoin_http_errors_total{endpoint="next",class="server"} 1`,
		`distjoin_http_errors_total{endpoint="query",class="client"} 1`,
		`distjoin_http_request_duration_seconds_count{endpoint="next"} 3`,
		`distjoin_http_request_duration_quantiles_seconds{endpoint="next",quantile="0.95"}`,
		`distjoin_slo_target_seconds 0.25`,
		`distjoin_slo_objective_ratio 0.95`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The exemplar family carries the query ids, keyed by latency bucket.
	if !regexp.MustCompile(`distjoin_http_request_exemplar_seconds\{endpoint="next",le="[0-9.e-]+",query="c0000001"\}`).MatchString(out) {
		t.Errorf("no exemplar for c0000001:\n%s", out)
	}
	// The 409 had no query id: no exemplar minted for "query".
	if strings.Contains(out, `exemplar_seconds{endpoint="query"`) {
		t.Errorf("exemplar minted without a query id:\n%s", out)
	}
}

func TestREDBurnRate(t *testing.T) {
	t0 := time.Unix(1_700_000_000, 0)
	r, now := redAt(t0)
	// 10 good pulls and 10 bad ones (slow): bad fraction 0.5, objective
	// 0.95 → burn rate 0.5/0.05 = 10 on both windows.
	for i := 0; i < 10; i++ {
		r.Observe("next", 200, time.Millisecond, "q")
		r.Observe("next", 200, time.Second, "q") // over the 250ms target
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, window := range []string{"5m", "1h"} {
		got := sampleValue(t, b.String(), `distjoin_slo_burn_rate{window="`+window+`"}`)
		if got < 9.99 || got > 10.01 {
			t.Errorf("burn rate[%s] = %g, want ~10:\n%s", window, got, grepLines(b.String(), "slo_"))
		}
	}

	// 5xx counts as bad regardless of latency.
	r2, _ := redAt(t0)
	r2.Observe("next", 503, time.Millisecond, "q")
	var b2 strings.Builder
	r2.WritePrometheus(&b2)
	if out := b2.String(); !strings.Contains(out, `distjoin_slo_requests{window="5m",outcome="bad"} 1`) {
		t.Errorf("5xx not counted bad:\n%s", grepLines(out, "slo_requests"))
	}

	// Only the SLO endpoint feeds the windows.
	r3, _ := redAt(t0)
	r3.Observe("query", 200, time.Second, "q")
	var b3 strings.Builder
	r3.WritePrometheus(&b3)
	if out := b3.String(); !strings.Contains(out, `distjoin_slo_requests{window="5m",outcome="good"} 0`) ||
		!strings.Contains(out, `distjoin_slo_requests{window="5m",outcome="bad"} 0`) {
		t.Errorf("non-SLO endpoint fed the window:\n%s", grepLines(out, "slo_requests"))
	}

	// Sliding expiry: events age out once the window passes them.
	*now = t0.Add(6 * time.Minute)
	var b4 strings.Builder
	r.WritePrometheus(&b4)
	if out := b4.String(); !strings.Contains(out, `distjoin_slo_requests{window="5m",outcome="bad"} 0`) {
		t.Errorf("5m window did not expire after 6m:\n%s", grepLines(out, "slo_requests"))
	}
	if out := b4.String(); !strings.Contains(out, `distjoin_slo_requests{window="1h",outcome="bad"} 10`) {
		t.Errorf("1h window lost events at 6m:\n%s", grepLines(out, "slo_requests"))
	}
}

func TestREDNilSafe(t *testing.T) {
	var r *RED
	r.Observe("next", 200, time.Millisecond, "q") // must not panic
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Errorf("nil RED wrote %q", b.String())
	}
}

// sampleValue finds the sample whose name+labels prefix matches and parses
// its value.
func sampleValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, l := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(l, prefix+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(l, prefix+" "), 64)
			if err != nil {
				t.Fatalf("bad sample %q: %v", l, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %q in exposition", prefix)
	return 0
}

func grepLines(s, substr string) string {
	var b strings.Builder
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestStatusClass(t *testing.T) {
	for in, want := range map[int]string{200: "2xx", 204: "2xx", 301: "3xx", 404: "4xx", 503: "5xx", 99: "other", 700: "other", 0: "other"} {
		if got := statusClass(in); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestHistBucketOfMatchesHistogram(t *testing.T) {
	for _, d := range []time.Duration{0, 1, 500, time.Microsecond, time.Millisecond, 250 * time.Millisecond, time.Hour} {
		var h Histogram
		h.Observe(d)
		b := histBucketOf(d)
		if h.buckets[b].Load() != 1 {
			t.Errorf("histBucketOf(%v) = %d, but Histogram.Observe used a different bucket", d, b)
		}
		if b > 0 {
			// The exemplar's le label must be a bound the histogram also emits.
			if _, err := strconv.ParseFloat(strconv.FormatFloat(bucketUpper(b), 'g', -1, 64), 64); err != nil {
				t.Errorf("bucketUpper(%d) not a float: %v", b, err)
			}
		}
	}
}
