package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorder exercises every hook on a nil receiver: nothing may
// panic, and queries return zero values.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if !r.Now().IsZero() {
		t.Error("nil.Now() should be the zero time")
	}
	r.EngineStart(0)
	r.EngineStop(0, 5)
	r.Restart(-1)
	r.Expand(0, 1.5)
	r.Emit(-1, 2.5, 10, time.Time{})
	r.Emit(3, 2.5, 10, time.Time{})
	r.Deliver(3.5)
	r.Spill(0, 4.5, 100)
	r.MergeStall(1)
	r.SetPartitions(4)
	if r.PartitionPairs() != nil {
		t.Error("nil.PartitionPairs() should be nil")
	}
	if got := r.PoolTap(nil); got != nil {
		t.Error("nil.PoolTap(nil) should be nil")
	}
	if r.Events() != nil {
		t.Error("nil.Events() should be nil")
	}
	if s := r.Snapshot(); s.Delivered != 0 {
		t.Error("nil.Snapshot() should be zero")
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil.Close() = %v", err)
	}
}

// TestNilRecorderAllocs asserts the disabled path allocates nothing — the
// engine calls these per emitted pair.
func TestNilRecorderAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		start := r.Now()
		r.Expand(-1, 1.0)
		r.Emit(-1, 2.0, 5, start)
		r.Spill(-1, 3.0, 1)
	})
	if allocs != 0 {
		t.Errorf("nil Recorder hooks allocated %v per run, want 0", allocs)
	}
}

func TestRecorderCountsAndSnapshot(t *testing.T) {
	r := New(Config{})
	r.EngineStart(-1)
	start := r.Now()
	r.Expand(-1, 0.5)
	r.Emit(-1, 1.0, 7, start)
	r.Emit(-1, 2.0, 6, start)
	r.Spill(-1, 3.0, 42)
	r.Restart(-1)
	r.EngineStop(-1, 2)
	s := r.Snapshot()
	if s.Delivered != 2 || s.Emitted != 2 {
		t.Errorf("delivered=%d emitted=%d, want 2/2", s.Delivered, s.Emitted)
	}
	if s.Expansions != 1 || s.SpilledPairs != 1 || s.Restarts != 1 {
		t.Errorf("expands=%d spills=%d restarts=%d, want 1/1/1", s.Expansions, s.SpilledPairs, s.Restarts)
	}
	if s.EnginesStarted != 1 || s.EnginesStopped != 1 {
		t.Errorf("engines %d/%d, want 1/1", s.EnginesStarted, s.EnginesStopped)
	}
	if s.Frontier != 2.0 {
		t.Errorf("frontier=%g, want 2", s.Frontier)
	}
	if s.QueueDepth != 6 {
		t.Errorf("queueDepth=%d, want 6", s.QueueDepth)
	}
	if s.PopToEmit.Count != 2 {
		t.Errorf("popToEmit count=%d, want 2", s.PopToEmit.Count)
	}
	if s.InterPairDelay.Count != 1 {
		t.Errorf("interPair count=%d, want 1 (first pair has no predecessor)", s.InterPairDelay.Count)
	}
}

func TestPartitionPairs(t *testing.T) {
	r := New(Config{})
	r.SetPartitions(3)
	start := r.Now()
	r.Emit(0, 1.0, 1, start)
	r.Emit(2, 1.5, 1, start)
	r.Emit(2, 2.0, 1, start)
	r.Deliver(1.0)
	got := r.PartitionPairs()
	want := []int64{1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("PartitionPairs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PartitionPairs() = %v, want %v", got, want)
		}
	}
	// Partition emits must not count as deliveries.
	if s := r.Snapshot(); s.Delivered != 1 || s.Emitted != 3 {
		t.Errorf("delivered=%d emitted=%d, want 1/3", s.Delivered, s.Emitted)
	}
}

func TestRingWrap(t *testing.T) {
	r := New(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		r.Expand(-1, float64(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := float64(6 + i); ev.Dist != want {
			t.Errorf("event %d dist=%g, want %g (oldest-first after wrap)", i, ev.Dist, want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := New(Config{Trace: &buf})
	r.EngineStart(-1)
	start := r.Now()
	r.Emit(-1, 1.25, 3, start)
	r.Spill(2, 7.5, 9)
	r.MergeStall(1)
	r.EngineStop(-1, 1)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	wantTypes := []EventType{EvEngineStart, EvDeliver, EvSpill, EvMergeStall, EvEngineStop}
	for i, w := range wantTypes {
		if evs[i].Type != w {
			t.Errorf("event %d type=%s, want %s", i, evs[i].Type, w)
		}
	}
	if evs[1].Seq != 1 || evs[1].Dist != 1.25 {
		t.Errorf("deliver event = %+v, want seq=1 dist=1.25", evs[1])
	}
	if evs[2].Part != 2 || evs[2].Dist != 7.5 || evs[2].N != 9 {
		t.Errorf("spill event = %+v, want part=2 dist=7.5 n=9", evs[2])
	}
	if evs[3].Part != 1 {
		t.Errorf("stall event = %+v, want part=1", evs[3])
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{\"t_us\":1,\"ev\":\"deliver\",\"part\":-1}\nnot json\n")); err == nil {
		t.Error("want error for malformed line")
	}
	if _, err := ReadTrace(strings.NewReader("{\"t_us\":1,\"ev\":\"warp\",\"part\":-1}\n")); err == nil {
		t.Error("want error for unknown event type")
	}
}

func TestTimeToKth(t *testing.T) {
	evs := []Event{
		{T: time.Millisecond, Type: EvDeliver, Seq: 1, Dist: 0.1},
		{T: 2 * time.Millisecond, Type: EvExpand},
		{T: 3 * time.Millisecond, Type: EvDeliver, Seq: 2, Dist: 0.2},
	}
	if d, dist, ok := TimeToKth(evs, 2); !ok || d != 3*time.Millisecond || dist != 0.2 {
		t.Errorf("TimeToKth(2) = %v,%g,%v", d, dist, ok)
	}
	if _, _, ok := TimeToKth(evs, 3); ok {
		t.Error("TimeToKth(3) should miss")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Nanosecond) // bucket of [8,16)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 8*time.Nanosecond || p50 >= 16*time.Nanosecond {
		t.Errorf("p50=%v, want within [8ns,16ns)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 8*time.Microsecond || p99 >= 17*time.Microsecond {
		t.Errorf("p99=%v, want around 10µs", p99)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

type fakeSink struct{ reads, writes, hits int64 }

func (f *fakeSink) AddRead(n int64)  { f.reads += n }
func (f *fakeSink) AddWrite(n int64) { f.writes += n }
func (f *fakeSink) AddHit(n int64)   { f.hits += n }

func TestPoolTap(t *testing.T) {
	r := New(Config{})
	inner := &fakeSink{}
	tap := r.PoolTap(inner)
	tap.AddRead(2)
	tap.AddHit(6)
	tap.AddWrite(1)
	if inner.reads != 2 || inner.hits != 6 || inner.writes != 1 {
		t.Errorf("inner sink = %+v, want 2/1/6", inner)
	}
	s := r.Snapshot()
	if s.PoolHitRatio != 0.75 {
		t.Errorf("hit ratio = %g, want 0.75", s.PoolHitRatio)
	}
	// Tap with no inner sink still records.
	tap2 := r.PoolTap(nil)
	tap2.AddRead(1)
	if r.Snapshot().PoolReads != 3 {
		t.Error("tap without inner sink should still record")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := New(Config{})
	r.SetPartitions(2)
	start := r.Now()
	r.Emit(0, 1.0, 4, start)
	r.Emit(1, 2.0, 3, start)
	r.Deliver(1.0)
	rec := httptest.NewRecorder()
	Handler(r, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE distjoin_pairs_delivered_total counter",
		"distjoin_pairs_delivered_total 1",
		"distjoin_queue_depth 3",
		`distjoin_partition_pairs_emitted{part="0"} 1`,
		`distjoin_partition_pairs_emitted{part="1"} 1`,
		"# TYPE distjoin_inter_pair_delay_seconds histogram",
		`distjoin_pop_to_emit_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	r := New(Config{})
	r.Deliver(5.0)
	srv, err := ServeMetrics("127.0.0.1:0", r, nil)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "distjoin_frontier_distance 5") {
			t.Errorf("GET %s missing frontier gauge:\n%s", path, body)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "distjoin.obs") {
			t.Errorf("GET %s missing expvar publication", path)
		}
	}
}

// TestConcurrentHooks drives all hooks from many goroutines so `go test
// -race ./internal/obs` exercises the locking.
func TestConcurrentHooks(t *testing.T) {
	var buf bytes.Buffer
	r := New(Config{Trace: &buf, RingSize: 64})
	r.SetPartitions(4)
	var wg sync.WaitGroup
	for p := int32(0); p < 4; p++ {
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			r.EngineStart(p)
			for i := 0; i < 200; i++ {
				start := r.Now()
				r.Expand(p, float64(i))
				r.Emit(p, float64(i), i, start)
				if i%50 == 0 {
					r.Spill(p, float64(i), i)
				}
			}
			r.EngineStop(p, 200)
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Deliver(float64(i))
			r.MergeStall(int32(i % 4))
			_ = r.Snapshot()
			_ = r.Events()
		}
	}()
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s := r.Snapshot()
	if s.Emitted != 800 || s.Delivered != 200 {
		t.Errorf("emitted=%d delivered=%d, want 800/200", s.Emitted, s.Delivered)
	}
	if _, err := ReadTrace(&buf); err != nil {
		t.Errorf("concurrent trace does not parse: %v", err)
	}
}

func TestQuantilesMethod(t *testing.T) {
	var h Histogram
	for i := 0; i < 95; i++ {
		h.Observe(10 * time.Nanosecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(10 * time.Microsecond)
	}
	q := h.Quantiles()
	if q.Count != 100 {
		t.Fatalf("count=%d", q.Count)
	}
	if q.P50S <= 0 || q.P50S >= 16e-9 {
		t.Errorf("p50=%g, want within (0,16ns)", q.P50S)
	}
	if q.P95S >= q.P99S+1e-12 && q.P95S > 16e-9 {
		t.Errorf("p95=%g exceeds p99=%g", q.P95S, q.P99S)
	}
	if q.P99S < 8e-6 {
		t.Errorf("p99=%g, want around 10µs", q.P99S)
	}
}

func TestMetricsQuantileGauges(t *testing.T) {
	r := New(Config{})
	start := r.Now()
	r.Emit(-1, 1.0, 4, start)
	r.Deliver(1.0)
	r.Deliver(2.0)
	rec := httptest.NewRecorder()
	Handler(r, nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE distjoin_inter_pair_delay_quantiles_seconds gauge",
		`distjoin_inter_pair_delay_quantiles_seconds{quantile="0.5"}`,
		`distjoin_inter_pair_delay_quantiles_seconds{quantile="0.95"}`,
		`distjoin_inter_pair_delay_quantiles_seconds{quantile="0.99"}`,
		`distjoin_pop_to_emit_quantiles_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
