package spatial

import (
	"math/rand"
	"testing"

	"distjoin/internal/geom"
	"distjoin/internal/quadtree"
	"distjoin/internal/rtree"
)

func randPts(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
	}
	return pts
}

// checkContract walks an Index from the root and verifies the structural
// contract every engine relies on: children sit at strictly smaller levels,
// child regions are covered by their parent entries' rectangles (for
// data-partitioning trees the entry rect IS the subtree MBR; for
// space-partitioning trees the region contains the subtree), and every
// object is reachable exactly once.
func checkContract(t *testing.T, ix Index, wantObjects int) {
	t.Helper()
	root, err := ix.Root()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	var walk func(ref NodeRef)
	walk = func(ref NodeRef) {
		n, err := ix.Node(ref.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if n.Leaf {
			for _, o := range n.Objects {
				if seen[o.ID] {
					t.Fatalf("object %d reachable twice", o.ID)
				}
				seen[o.ID] = true
				if !ref.Rect.Contains(o.Rect) {
					t.Fatalf("object %d escapes its leaf region", o.ID)
				}
			}
			return
		}
		for _, c := range n.Children {
			if c.Level >= ref.Level {
				t.Fatalf("child level %d not below parent %d", c.Level, ref.Level)
			}
			if !ref.Rect.Contains(c.Rect) {
				t.Fatalf("child region escapes parent")
			}
			walk(c)
		}
	}
	walk(root)
	if len(seen) != wantObjects {
		t.Fatalf("reached %d objects, want %d", len(seen), wantObjects)
	}
	if ix.NumObjects() != wantObjects {
		t.Fatalf("NumObjects = %d, want %d", ix.NumObjects(), wantObjects)
	}
}

func TestRTreeAdapterContract(t *testing.T) {
	pts := randPts(1, 600)
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 16}, items)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ix := WrapRTree(tr)
	if ix.Dims() != 2 {
		t.Fatal("Dims wrong")
	}
	if ix.MinObjectsUnder(0) < 2 {
		t.Fatal("R-tree must guarantee min fill")
	}
	checkContract(t, ix, len(pts))
}

func TestQuadtreeAdapterContract(t *testing.T) {
	qt, err := quadtree.New(quadtree.Config{
		Bounds: geom.R(geom.Pt(0, 0), geom.Pt(100, 100)), BucketSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := randPts(2, 500)
	for i, p := range pts {
		if err := qt.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix := WrapQuadtree(qt)
	if ix.MinObjectsUnder(3) != 1 {
		t.Fatal("quadtree has no fill guarantee; MinObjectsUnder must be 1")
	}
	checkContract(t, ix, len(pts))
}

func TestWrapNilReturnsNil(t *testing.T) {
	if WrapRTree(nil) != nil {
		t.Fatal("WrapRTree(nil) not nil")
	}
	if WrapQuadtree(nil) != nil {
		t.Fatal("WrapQuadtree(nil) not nil")
	}
}
