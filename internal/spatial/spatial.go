// Package spatial defines the hierarchical-decomposition abstraction the
// incremental algorithms traverse — the paper's "large class of
// hierarchical spatial data structures" (§2.2) — together with adapters for
// the two provided structures: the disk-paged R*-tree and the bucket PR
// quadtree.
package spatial

import (
	"distjoin/internal/geom"
	"distjoin/internal/pager"
	"distjoin/internal/quadtree"
	"distjoin/internal/rtree"
)

// Index is the abstraction the join and nearest-neighbour engines traverse. The paper's
// algorithms "work for any spatial data structure based on a hierarchical
// decomposition" (§2.2): any tree of nodes covering regions of space, with
// objects stored in leaves, each object in exactly one leaf. R-trees
// satisfy this directly; unbalanced structures such as quadtrees do too,
// with leaves at varying levels (§2.2.2).
//
// Levels number upward from the deepest possible leaf: a node's children
// are at smaller levels than the node, and leaves may sit at any level ≥ 0.
// Object items use level -1 internally, so deeper always sorts first under
// depth-first tie-breaking.
type Index interface {
	// Dims returns the dimensionality of indexed geometry.
	Dims() int
	// NumObjects returns the number of indexed objects.
	NumObjects() int
	// Root returns a reference to the root node. Only called when
	// NumObjects() > 0.
	Root() (NodeRef, error)
	// Node reads the node behind a reference produced by Root or a prior
	// Node call.
	Node(ref uint64) (*IndexNode, error)
	// MinObjectsUnder returns a guaranteed lower bound on the number of
	// objects in the subtree of a non-root node at the given level, used
	// by the maximum-distance estimation of §2.2.4. Structures without a
	// minimum-fill invariant should return 1.
	MinObjectsUnder(level int) int
}

// Fanout is an optional Index extension reporting the maximum node
// fan-out, used by the join engine to pre-size its per-expansion scratch
// buffers at construction so first expansions do not grow them mid-join.
// The value is a sizing hint, not an invariant: a structure whose nodes can
// occasionally exceed it (a quadtree leaf at the depth cap) still works,
// the scratch just grows once.
type Fanout interface {
	// MaxFanout returns the largest number of entries (children or
	// objects) a node is expected to hold, or 0 when unknown.
	MaxFanout() int
}

// NodeRef is a child pointer: an opaque reference plus the level and
// bounding region of the referenced node.
type NodeRef struct {
	Ref   uint64
	Level int
	Rect  geom.Rect
}

// ObjectRef is a leaf entry: an object id plus its geometry (or minimal
// bounding rectangle, in OBR mode).
type ObjectRef struct {
	ID   uint64
	Rect geom.Rect
}

// IndexNode is the decoded form of an index node.
type IndexNode struct {
	Leaf     bool
	Level    int
	Children []NodeRef   // populated for non-leaf nodes
	Objects  []ObjectRef // populated for leaf nodes
}

// rtreeIndex adapts *rtree.Tree to SpatialIndex. R-tree levels already
// number upward from the leaves (leaf = 0), matching the interface
// contract.
type rtreeIndex struct {
	t *rtree.Tree
}

// WrapRTree exposes an R*-tree as a SpatialIndex. The public join
// constructors apply it implicitly; it is exported for callers composing an
// R-tree with a different structure on the other side.
func WrapRTree(t *rtree.Tree) Index {
	if t == nil {
		return nil
	}
	return rtreeIndex{t: t}
}

func (ix rtreeIndex) Dims() int       { return ix.t.Dims() }
func (ix rtreeIndex) NumObjects() int { return ix.t.Len() }

func (ix rtreeIndex) Root() (NodeRef, error) {
	root, err := ix.t.ReadNode(ix.t.RootPage())
	if err != nil {
		return NodeRef{}, err
	}
	return NodeRef{
		Ref:   uint64(ix.t.RootPage()),
		Level: root.Level,
		Rect:  root.MBR(),
	}, nil
}

func (ix rtreeIndex) Node(ref uint64) (*IndexNode, error) {
	n, err := ix.t.ReadNode(pager.PageID(ref))
	if err != nil {
		return nil, err
	}
	out := &IndexNode{Leaf: n.Leaf(), Level: n.Level}
	if n.Leaf() {
		out.Objects = make([]ObjectRef, len(n.Entries))
		for i, e := range n.Entries {
			out.Objects[i] = ObjectRef{ID: uint64(e.Obj), Rect: e.Rect}
		}
		return out, nil
	}
	out.Children = make([]NodeRef, len(n.Entries))
	for i, e := range n.Entries {
		out.Children[i] = NodeRef{Ref: uint64(e.Child), Level: n.Level - 1, Rect: e.Rect}
	}
	return out, nil
}

func (ix rtreeIndex) MinObjectsUnder(level int) int { return ix.t.MinObjectsUnder(level) }

// MaxFanout implements the optional Fanout extension: R-tree nodes hold at
// most MaxEntries entries.
func (ix rtreeIndex) MaxFanout() int { return ix.t.MaxEntries() }

// quadIndex adapts a bucket PR quadtree to SpatialIndex. Quadtrees are
// unbalanced: leaves sit at varying depths, which the engine's levels
// accommodate by numbering from the deepest possible leaf upward
// (level = MaxDepth − depth).
type quadIndex struct {
	t *quadtree.Tree
}

// WrapQuadtree exposes a quadtree as a SpatialIndex, demonstrating the
// paper's claim (§2.2) that the incremental join runs over any hierarchical
// spatial decomposition — including joins that mix an R-tree on one side
// with a quadtree on the other.
func WrapQuadtree(t *quadtree.Tree) Index {
	if t == nil {
		return nil
	}
	return quadIndex{t: t}
}

func (ix quadIndex) Dims() int       { return ix.t.Dims() }
func (ix quadIndex) NumObjects() int { return ix.t.Len() }

func (ix quadIndex) Root() (NodeRef, error) {
	ref, err := ix.t.NodeRef(0)
	if err != nil {
		return NodeRef{}, err
	}
	return NodeRef{Ref: 0, Level: ref.Level, Rect: ref.Rect}, nil
}

func (ix quadIndex) Node(ref uint64) (*IndexNode, error) {
	n, err := ix.t.ReadNode(int32(ref))
	if err != nil {
		return nil, err
	}
	out := &IndexNode{Leaf: n.Leaf, Level: n.Level}
	if n.Leaf {
		out.Objects = make([]ObjectRef, len(n.Points))
		for i, p := range n.Points {
			out.Objects[i] = ObjectRef{ID: p.ID, Rect: p.P.Rect()}
		}
		return out, nil
	}
	out.Children = make([]NodeRef, len(n.Children))
	for i, c := range n.Children {
		out.Children[i] = NodeRef{Ref: uint64(c.ID), Level: c.Level, Rect: c.Rect}
	}
	return out, nil
}

// MinObjectsUnder returns 1: quadtrees have no minimum-fill invariant, so
// the §2.2.4 estimation can only count one guaranteed object per node (the
// restart path recovers from the residual optimism).
func (ix quadIndex) MinObjectsUnder(int) int { return 1 }

// MaxFanout implements the optional Fanout extension with the quadtree's
// sizing hint: internal nodes hold 2^dims children and leaves BucketSize
// points (leaves at the depth cap may exceed it; the hint remains valid
// as a pre-sizing estimate).
func (ix quadIndex) MaxFanout() int { return ix.t.MaxFanout() }
