package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilSpansSafe(t *testing.T) {
	var s *Spans
	s.Add(PhaseExpand, time.Millisecond)
	s.ObserveRead(time.Millisecond)
	s.ObserveWrite(time.Millisecond)
	s.Merge(&Spans{})
	s.Reset()
	if s.Enabled() {
		t.Fatal("nil Spans reports enabled")
	}
	if s.NS(PhaseExpand) != 0 || s.Count(PhaseExpand) != 0 || s.TotalNS() != 0 ||
		s.InnerNS() != 0 || s.QueueWriteNS() != 0 {
		t.Fatal("nil Spans reports nonzero accounting")
	}
	if s.PhaseSnapshot() != nil {
		t.Fatal("nil Spans returns a snapshot")
	}
	if (s.IOSnapshot() != IOStat{}) {
		t.Fatal("nil Spans returns nonzero IO")
	}
}

// TestNilSpansZeroAllocs pins the acceptance criterion: with profiling
// disabled (nil *Spans) the hook methods allocate nothing, so the engine's
// per-pair path is untouched.
func TestNilSpansZeroAllocs(t *testing.T) {
	var s *Spans
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(PhaseExpand, time.Microsecond)
		s.Add(PhasePush, time.Microsecond)
		s.Add(PhasePop, time.Microsecond)
		s.ObserveRead(time.Microsecond)
		s.ObserveWrite(time.Microsecond)
		_ = s.NS(PhaseSpill)
		_ = s.InnerNS()
		_ = s.QueueWriteNS()
	})
	if allocs != 0 {
		t.Fatalf("nil Spans hooks allocate %v per run, want 0", allocs)
	}
}

// TestEnabledSpansZeroAllocs pins the hot-path hooks of an ENABLED Spans
// too: the accounting is fixed-size atomics, so recording must not allocate
// either (snapshots may).
func TestEnabledSpansZeroAllocs(t *testing.T) {
	s := &Spans{}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(PhaseExpand, time.Microsecond)
		s.ObserveRead(time.Microsecond)
		_ = s.InnerNS()
	})
	if allocs != 0 {
		t.Fatalf("enabled Spans hooks allocate %v per run, want 0", allocs)
	}
}

func TestSpansAccounting(t *testing.T) {
	s := &Spans{}
	s.Add(PhaseExpand, 5*time.Millisecond)
	s.Add(PhaseExpand, 3*time.Millisecond)
	s.Add(PhasePush, 2*time.Millisecond)
	s.Add(PhaseSpill, time.Millisecond)
	s.Add(PhaseMerge, 4*time.Millisecond)
	s.Add(PhasePop, -time.Millisecond) // clock step: counts the op, no time
	if got := s.NS(PhaseExpand); got != int64(8*time.Millisecond) {
		t.Fatalf("expand ns = %d", got)
	}
	if got := s.Count(PhaseExpand); got != 2 {
		t.Fatalf("expand count = %d", got)
	}
	if got := s.Count(PhasePop); got != 1 {
		t.Fatalf("pop count = %d", got)
	}
	if got := s.NS(PhasePop); got != 0 {
		t.Fatalf("negative duration recorded time: %d", got)
	}
	if got := s.QueueWriteNS(); got != int64(3*time.Millisecond) {
		t.Fatalf("queue write ns = %d", got)
	}
	if got := s.InnerNS(); got != int64(11*time.Millisecond) {
		t.Fatalf("inner ns = %d", got)
	}
	if got := s.TotalNS(); got != int64(15*time.Millisecond) {
		t.Fatalf("total ns = %d", got)
	}

	other := &Spans{}
	other.Add(PhaseExpand, time.Millisecond)
	other.ObserveRead(time.Millisecond)
	s.Merge(other)
	if got := s.NS(PhaseExpand); got != int64(9*time.Millisecond) {
		t.Fatalf("merged expand ns = %d", got)
	}
	io := s.IOSnapshot()
	if io.Reads != 1 || io.ReadSeconds != 0.001 {
		t.Fatalf("merged io = %+v", io)
	}

	snap := s.PhaseSnapshot()
	byName := map[string]PhaseStat{}
	for _, ps := range snap {
		byName[ps.Phase] = ps
	}
	if byName["expand"].Count != 3 || byName["merge"].Seconds != 0.004 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, ok := byName["fetch"]; ok {
		t.Fatal("empty phase present in snapshot")
	}

	s.Reset()
	if s.TotalNS() != 0 || s.Count(PhaseExpand) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBuildPhasesCoverage(t *testing.T) {
	s := &Spans{}
	s.Add(PhaseExpand, 60*time.Millisecond)
	s.Add(PhaseEmit, 30*time.Millisecond)
	var p Profile
	p.BuildPhases(s, 0.1)
	if p.SchemaVersion != SchemaVersion {
		t.Fatalf("schema = %d", p.SchemaVersion)
	}
	if math.Abs(p.PhaseSeconds-0.09) > 1e-9 {
		t.Fatalf("phase seconds = %g", p.PhaseSeconds)
	}
	if math.Abs(p.Coverage-0.9) > 1e-9 {
		t.Fatalf("coverage = %g", p.Coverage)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr(110,100) = %g", got)
	}
	if got := RelErr(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Fatalf("RelErr(90,100) = %g", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Fatalf("RelErr(0,0) = %g", got)
	}
	if got := RelErr(5, 0); got != math.MaxFloat64 {
		t.Fatalf("RelErr(5,0) = %g", got)
	}
	if got := RelErr(math.Inf(1), 2); got != math.MaxFloat64 {
		t.Fatalf("RelErr(inf,2) = %g", got)
	}
}

// sampleTrajectory builds a valid two-workload trajectory for tests.
func sampleTrajectory() *Trajectory {
	mk := func(name string, det bool, nodeIO, dist, maxq int64) WorkloadProfile {
		s := &Spans{}
		s.Add(PhaseExpand, 50*time.Millisecond)
		s.Add(PhaseEmit, 40*time.Millisecond)
		var p Profile
		p.BuildPhases(s, 0.1)
		p.Label = name
		p.Counters = Counters{
			DistCalcs:     dist,
			NodeReads:     nodeIO,
			NodeIO:        nodeIO,
			MaxQueueSize:  maxq,
			PairsReported: 100,
		}
		return WorkloadProfile{Name: name, Deterministic: det, Profile: p}
	}
	return &Trajectory{
		SchemaVersion: SchemaVersion,
		CreatedAt:     "2026-08-05T00:00:00Z",
		Tool:          "benchrun-test",
		Scale:         "smoke",
		Env:           CaptureEnv(),
		Workloads: []WorkloadProfile{
			mk("even-hybrid", true, 1000, 5000, 300),
			mk("parallel-2", false, 900, 4500, 250),
		},
	}
}

func TestTrajectoryRoundTripAndValidate(t *testing.T) {
	tr := sampleTrajectory()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != 2 || back.Workloads[0].Name != "even-hybrid" {
		t.Fatalf("round trip lost workloads: %+v", back.Workloads)
	}
	if back.Workloads[0].Profile.Counters.NodeIO != 1000 {
		t.Fatalf("round trip lost counters: %+v", back.Workloads[0].Profile.Counters)
	}
}

func TestTrajectoryValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trajectory)
		want   string
	}{
		{"schema", func(tr *Trajectory) { tr.SchemaVersion = 99 }, "schema version"},
		{"created", func(tr *Trajectory) { tr.CreatedAt = "" }, "created_at"},
		{"env", func(tr *Trajectory) { tr.Env.GoVersion = "" }, "env"},
		{"empty", func(tr *Trajectory) { tr.Workloads = nil }, "no workloads"},
		{"dup", func(tr *Trajectory) { tr.Workloads[1].Name = tr.Workloads[0].Name }, "duplicate"},
		{"wall", func(tr *Trajectory) { tr.Workloads[0].Profile.WallSeconds = 0 }, "wall time"},
		{"phases", func(tr *Trajectory) { tr.Workloads[0].Profile.Phases = nil }, "phase attribution"},
		{"pairs", func(tr *Trajectory) { tr.Workloads[0].Profile.Counters.PairsReported = 0 }, "no pairs"},
	}
	for _, tc := range cases {
		tr := sampleTrajectory()
		tc.mutate(tr)
		err := tr.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCompareDetectsNodeIORegression(t *testing.T) {
	old := sampleTrajectory()
	cur := sampleTrajectory()
	// +10% node I/O on the deterministic workload must regress at the 5%
	// default threshold.
	cur.Workloads[0].Profile.Counters.NodeIO = 1100
	res := Compare(old, cur, CompareOptions{})
	if res.OK() {
		t.Fatalf("10%% node I/O growth not flagged: %+v", res)
	}
	found := false
	for _, r := range res.Regressions {
		if strings.Contains(r, "node_io") && strings.Contains(r, "even-hybrid") {
			found = true
		}
	}
	if !found {
		t.Fatalf("regressions missing node_io: %v", res.Regressions)
	}
}

func TestCompareIgnoresNondeterministicAndWall(t *testing.T) {
	old := sampleTrajectory()
	cur := sampleTrajectory()
	// Nondeterministic workload counters may swing freely.
	cur.Workloads[1].Profile.Counters.NodeIO = 9000
	cur.Workloads[1].Profile.Counters.DistCalcs = 90000
	// Wall-clock regression on the gated workload warns but does not fail.
	cur.Workloads[0].Profile.WallSeconds = old.Workloads[0].Profile.WallSeconds * 3
	res := Compare(old, cur, CompareOptions{})
	if !res.OK() {
		t.Fatalf("unexpected regressions: %v", res.Regressions)
	}
	wallWarn := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "wall time") {
			wallWarn = true
		}
	}
	if !wallWarn {
		t.Fatalf("wall-clock regression not warned: %v", res.Warnings)
	}
}

func TestCompareSmallCountersSlack(t *testing.T) {
	old := sampleTrajectory()
	cur := sampleTrajectory()
	// An integer wiggle of <= 2 ops on a tiny counter is noise, not a
	// regression, even when it exceeds the relative threshold.
	old.Workloads[0].Profile.Counters.MaxQueueSize = 10
	cur.Workloads[0].Profile.Counters.MaxQueueSize = 12
	res := Compare(old, cur, CompareOptions{})
	if !res.OK() {
		t.Fatalf("small-counter slack not applied: %v", res.Regressions)
	}
}

func TestCompareImprovementNoted(t *testing.T) {
	old := sampleTrajectory()
	cur := sampleTrajectory()
	cur.Workloads[0].Profile.Counters.DistCalcs = 4000
	res := Compare(old, cur, CompareOptions{})
	if !res.OK() {
		t.Fatalf("improvement flagged as regression: %v", res.Regressions)
	}
	noted := false
	for _, n := range res.Notes {
		if strings.Contains(n, "improved") {
			noted = true
		}
	}
	if !noted {
		t.Fatalf("improvement not noted: %v", res.Notes)
	}
}

func TestCompareDisjointWorkloadsRegress(t *testing.T) {
	old := sampleTrajectory()
	cur := sampleTrajectory()
	cur.Workloads[0].Name = "renamed-a"
	cur.Workloads[1].Name = "renamed-b"
	res := Compare(old, cur, CompareOptions{})
	if res.OK() {
		t.Fatal("disjoint workload sets compared OK")
	}
}

func TestCaptureEnv(t *testing.T) {
	e := CaptureEnv()
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.GOMAXPROCS <= 0 || e.NumCPU <= 0 {
		t.Fatalf("incomplete env: %+v", e)
	}
}
