package profile

import "math"

// SchemaVersion identifies the JSON schema of Profile and Trajectory
// documents. Bump on any incompatible change; Validate rejects files whose
// version does not match.
const SchemaVersion = 1

// Profile is the per-join query profile: the "EXPLAIN ANALYZE" document of
// one Join/SemiJoin run. Wall time is attributed to engine phases via span
// accounting (see Spans), the run's Table-1 counters and delay percentiles
// are embedded, and Explain places the cost model's predictions next to the
// observed actuals.
type Profile struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label,omitempty"`

	// WallSeconds is the caller-observed wall time from Profiler start to
	// finish (index attach to iterator close).
	WallSeconds float64 `json:"wall_seconds"`

	// Phases attributes time to engine phases. Within one engine the phases
	// are disjoint; across parallel workers they accumulate concurrently, so
	// PhaseSeconds may exceed WallSeconds on the parallel path.
	Phases []PhaseStat `json:"phases"`
	// PhaseSeconds is the sum over Phases.
	PhaseSeconds float64 `json:"phase_seconds"`
	// Coverage is PhaseSeconds / WallSeconds: the fraction of wall time the
	// span accounting explains. Sequential runs should be close to (and at
	// most marginally above) 1; the benchmark harness treats < 0.9 as an
	// instrumentation bug.
	Coverage float64 `json:"phase_coverage"`

	// IO is the physical disk-tier I/O nested inside the phases.
	IO IOStat `json:"io"`

	// Counters are the run's hardware-independent work counters (a copy of
	// stats.Counters at finish time).
	Counters Counters `json:"counters"`

	// Delay summarizes the incremental-delay histograms.
	Delay DelayStats `json:"delay"`

	// TimeToKth records when the k-th result pair was delivered, for the
	// marks the caller requested (the paper's incrementality claim).
	TimeToKth []TTKPoint `json:"time_to_kth,omitempty"`

	// Explain places cost-model predictions next to observed actuals.
	Explain []ExplainRow `json:"explain,omitempty"`
}

// Counters mirrors the Table-1 work counters of stats.Counters in JSON
// form. NodeIO = NodeReads + NodeWrites is precomputed because it is one of
// the trajectory compare gates.
type Counters struct {
	DistCalcs      int64 `json:"dist_calcs"`
	NodeDistCalcs  int64 `json:"node_dist_calcs"`
	NodeReads      int64 `json:"node_reads"`
	NodeWrites     int64 `json:"node_writes"`
	NodeIO         int64 `json:"node_io"`
	BufferHits     int64 `json:"buffer_hits"`
	QueueInserts   int64 `json:"queue_inserts"`
	QueuePops      int64 `json:"queue_pops"`
	MaxQueueSize   int64 `json:"max_queue_size"`
	QueueDiskPairs int64 `json:"queue_disk_pairs"`
	QueueReads     int64 `json:"queue_reads"`
	QueueWrites    int64 `json:"queue_writes"`
	PairsReported  int64 `json:"pairs_reported"`
	Filtered       int64 `json:"filtered"`
	// BatchPruned counts pairs skipped by the batched expansion's
	// plane-sweep/block prune before any distance computation. Additive to
	// schema 1: absent in older files, decoded as zero.
	BatchPruned int64 `json:"batch_pruned"`
}

// QuantileStat summarizes one latency histogram.
type QuantileStat struct {
	Count int64   `json:"count"`
	MeanS float64 `json:"mean_seconds"`
	P50S  float64 `json:"p50_seconds"`
	P95S  float64 `json:"p95_seconds"`
	P99S  float64 `json:"p99_seconds"`
}

// DelayStats holds the run's incremental-latency summaries: the delay
// between consecutive delivered pairs (the enumeration delay of the
// dynamic-enumeration literature) and the queue-pop-to-emission latency.
type DelayStats struct {
	InterPair QuantileStat `json:"inter_pair"`
	PopToEmit QuantileStat `json:"pop_to_emit"`
}

// TTKPoint records the delivery of the k-th result pair.
type TTKPoint struct {
	K       int64   `json:"k"`
	Seconds float64 `json:"seconds"`
	Dist    float64 `json:"dist"`
}

// ExplainRow is one predicted-vs-actual comparison of the EXPLAIN ANALYZE
// output. RelErr is (Predicted - Actual) / Actual — signed, so
// over-predictions are positive; it is 0 when Actual is 0 and Predicted is
// too, and +Inf/-Inf when only Actual is 0.
type ExplainRow struct {
	Metric    string  `json:"metric"`
	Predicted float64 `json:"predicted"`
	Actual    float64 `json:"actual"`
	RelErr    float64 `json:"rel_err"`
}

// RelErr computes the signed relative error of a prediction. Because the
// result is destined for JSON (which cannot represent infinities), a
// prediction compared against a zero actual saturates at ±MaxFloat64
// instead of ±Inf.
func RelErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		if predicted > 0 {
			return math.MaxFloat64
		}
		return -math.MaxFloat64
	}
	e := (predicted - actual) / actual
	if math.IsInf(e, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(e, -1) {
		return -math.MaxFloat64
	}
	return e
}

// BuildPhases fills the span-derived fields of a Profile from s and the
// observed wall seconds.
func (p *Profile) BuildPhases(s *Spans, wallSeconds float64) {
	p.SchemaVersion = SchemaVersion
	p.WallSeconds = wallSeconds
	p.Phases = s.PhaseSnapshot()
	p.IO = s.IOSnapshot()
	var sum float64
	for _, ph := range p.Phases {
		sum += ph.Seconds
	}
	p.PhaseSeconds = sum
	if wallSeconds > 0 {
		p.Coverage = sum / wallSeconds
	}
}
