package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
)

// Env fingerprints the machine and toolchain a trajectory point was
// recorded on. Wall-clock comparisons across different fingerprints are
// meaningless; the hardware-independent work counters (node I/O, distance
// calculations, max queue size) remain comparable.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is the model name from /proc/cpuinfo, empty when
	// unavailable (non-Linux, restricted /proc).
	CPUModel string `json:"cpu_model,omitempty"`
}

// CaptureEnv fingerprints the current process environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the first "model name" line of /proc/cpuinfo,
// best-effort.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "model name") {
			continue
		}
		if _, val, ok := strings.Cut(line, ":"); ok {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// WorkloadProfile is one workload's entry in a trajectory file.
type WorkloadProfile struct {
	// Name identifies the workload within the canonical matrix; Compare
	// matches workloads across files by name.
	Name string `json:"name"`
	// Deterministic marks workloads whose work counters are reproducible
	// run-to-run (sequential runs, and parallel runs without result-bound
	// cancellation). Only deterministic workloads gate the compare: a
	// cancelled parallel run does a nondeterministic amount of speculative
	// work, so its counters can only be reported, not compared.
	Deterministic bool `json:"deterministic"`
	// Profile is the workload's query profile.
	Profile Profile `json:"profile"`
}

// Trajectory is one benchmark-trajectory point: the canonical workload
// matrix measured on one machine at one commit, as written to
// BENCH_<date>.json by cmd/benchrun.
type Trajectory struct {
	SchemaVersion int               `json:"schema_version"`
	CreatedAt     string            `json:"created_at"` // RFC 3339
	Tool          string            `json:"tool"`
	Scale         string            `json:"scale"`
	Env           Env               `json:"env"`
	Workloads     []WorkloadProfile `json:"workloads"`
}

// Validate checks t against the schema: version match, non-empty workload
// list, unique workload names, and per-workload invariants (positive wall
// time, phases present, phase attribution covering at least MinCoverage of
// wall time for deterministic sequential workloads is checked by the bench
// harness, not here — coverage depends on workload size).
func (t *Trajectory) Validate() error {
	if t.SchemaVersion != SchemaVersion {
		return fmt.Errorf("profile: schema version %d, want %d", t.SchemaVersion, SchemaVersion)
	}
	if t.CreatedAt == "" {
		return fmt.Errorf("profile: missing created_at")
	}
	if t.Env.GoVersion == "" || t.Env.GOOS == "" || t.Env.GOARCH == "" || t.Env.GOMAXPROCS <= 0 {
		return fmt.Errorf("profile: incomplete env fingerprint %+v", t.Env)
	}
	if len(t.Workloads) == 0 {
		return fmt.Errorf("profile: trajectory has no workloads")
	}
	seen := make(map[string]bool, len(t.Workloads))
	for i, w := range t.Workloads {
		if w.Name == "" {
			return fmt.Errorf("profile: workload %d has no name", i)
		}
		if seen[w.Name] {
			return fmt.Errorf("profile: duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		p := &w.Profile
		if p.SchemaVersion != SchemaVersion {
			return fmt.Errorf("profile: workload %q: schema version %d, want %d", w.Name, p.SchemaVersion, SchemaVersion)
		}
		if p.WallSeconds <= 0 {
			return fmt.Errorf("profile: workload %q: non-positive wall time %g", w.Name, p.WallSeconds)
		}
		if len(p.Phases) == 0 {
			return fmt.Errorf("profile: workload %q: no phase attribution", w.Name)
		}
		if p.Counters.PairsReported <= 0 {
			return fmt.Errorf("profile: workload %q: no pairs reported", w.Name)
		}
	}
	return nil
}

// Write encodes t as indented JSON.
func (t *Trajectory) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteFile writes t to path.
func (t *Trajectory) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a trajectory file and validates it.
func Read(r io.Reader) (*Trajectory, error) {
	var t Trajectory
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("profile: decoding trajectory: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadFile reads and validates the trajectory at path.
func ReadFile(path string) (*Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// CompareOptions tunes Compare.
type CompareOptions struct {
	// Threshold is the allowed relative growth of a gated metric before it
	// counts as a regression (default 0.05 = 5%). Counter metrics are
	// integers, so tiny workloads get an absolute slack of 2 ops as well.
	Threshold float64
}

// gatedMetric is one hardware-independent metric the compare gates on.
type gatedMetric struct {
	name string
	get  func(*Counters) int64
}

// gatedMetrics are the compare gates: work counters that do not depend on
// the machine, so growth between two trajectory points is a real
// algorithmic regression, not noise. Wall-clock changes only warn.
var gatedMetrics = []gatedMetric{
	{"node_io", func(c *Counters) int64 { return c.NodeIO }},
	{"dist_calcs", func(c *Counters) int64 { return c.DistCalcs }},
	{"max_queue_size", func(c *Counters) int64 { return c.MaxQueueSize }},
}

// CompareResult is the outcome of comparing two trajectory points.
type CompareResult struct {
	// Regressions are gated-metric increases beyond the threshold; a
	// non-empty list should fail CI.
	Regressions []string
	// Warnings are wall-clock regressions and workload-coverage mismatches:
	// reported, never fatal.
	Warnings []string
	// Notes are informational (improvements, env differences).
	Notes []string
}

// OK reports whether the comparison found no gated regression.
func (r *CompareResult) OK() bool { return len(r.Regressions) == 0 }

// Compare diffs two trajectory points. Workloads are matched by name; only
// workloads deterministic in BOTH files gate (others are noted). The gated,
// hardware-independent metrics (node I/O, distance calculations, max queue
// size) regress when the new value exceeds the old by more than the
// threshold; wall-clock growth of any size is a warning only, because wall
// time is not comparable across machines or load conditions.
func Compare(old, curr *Trajectory, opts CompareOptions) *CompareResult {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.05
	}
	res := &CompareResult{}
	if old.Env != curr.Env {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"env differs (old: %s %s/%s P=%d; new: %s %s/%s P=%d): wall-clock comparisons are unreliable",
			old.Env.GoVersion, old.Env.GOOS, old.Env.GOARCH, old.Env.GOMAXPROCS,
			curr.Env.GoVersion, curr.Env.GOOS, curr.Env.GOARCH, curr.Env.GOMAXPROCS))
	}
	oldByName := make(map[string]*WorkloadProfile, len(old.Workloads))
	for i := range old.Workloads {
		oldByName[old.Workloads[i].Name] = &old.Workloads[i]
	}
	matched := 0
	for i := range curr.Workloads {
		nw := &curr.Workloads[i]
		ow, ok := oldByName[nw.Name]
		if !ok {
			res.Warnings = append(res.Warnings, fmt.Sprintf("workload %q: new, no baseline", nw.Name))
			continue
		}
		matched++
		delete(oldByName, nw.Name)
		if !ow.Deterministic || !nw.Deterministic {
			res.Notes = append(res.Notes, fmt.Sprintf("workload %q: nondeterministic counters, not gated", nw.Name))
		} else {
			for _, m := range gatedMetrics {
				ov, nv := m.get(&ow.Profile.Counters), m.get(&nw.Profile.Counters)
				switch {
				case exceeds(ov, nv, opts.Threshold):
					res.Regressions = append(res.Regressions, fmt.Sprintf(
						"workload %q: %s regressed %d -> %d (%+.1f%%, threshold %.1f%%)",
						nw.Name, m.name, ov, nv, pct(ov, nv), opts.Threshold*100))
				case exceeds(nv, ov, opts.Threshold):
					res.Notes = append(res.Notes, fmt.Sprintf(
						"workload %q: %s improved %d -> %d (%+.1f%%)", nw.Name, m.name, ov, nv, pct(ov, nv)))
				}
			}
		}
		ows, nws := ow.Profile.WallSeconds, nw.Profile.WallSeconds
		if ows > 0 && nws > ows*(1+opts.Threshold) {
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"workload %q: wall time %.3fs -> %.3fs (%+.1f%%) — warning only, wall clock is not gated",
				nw.Name, ows, nws, (nws-ows)/ows*100))
		}
	}
	for name := range oldByName {
		res.Warnings = append(res.Warnings, fmt.Sprintf("workload %q: present in baseline, missing from new run", name))
	}
	if matched == 0 {
		res.Regressions = append(res.Regressions, "no workload in common between the two trajectory files")
	}
	return res
}

// exceeds reports whether nv exceeds ov by more than the relative threshold
// plus an absolute slack of 2 (integer counters on tiny workloads).
func exceeds(ov, nv int64, threshold float64) bool {
	limit := float64(ov)*(1+threshold) + 2
	return float64(nv) > limit
}

func pct(ov, nv int64) float64 {
	if ov == 0 {
		return 0
	}
	return (float64(nv) - float64(ov)) / float64(ov) * 100
}
