// Package profile provides per-join query profiles: lightweight span
// accounting that attributes a join's wall time to engine phases (node
// expansion, queue push/pop, disk-tier spill/fetch, stream merge, result
// emission), the JSON profile document built from those spans together with
// the run's counters and delay percentiles, and the schema-versioned
// benchmark-trajectory files cmd/benchrun records and compares.
//
// The package deliberately depends on the standard library only: it sits
// below internal/pager, internal/pqueue and internal/distjoin in the import
// graph, so any of them can thread a *Spans through their hot paths. The
// instrumentation follows the repository's nil-safety convention: a nil
// *Spans is valid everywhere, records nothing, performs no clock reads, and
// allocates nothing (pinned by a testing.AllocsPerRun test, like the
// internal/stats counters and the internal/obs recorder).
package profile

import (
	"sync/atomic"
	"time"
)

// Phase identifies one engine phase of the incremental distance join. The
// phases partition the per-pair work of Figure 3's loop: Expand is node-pair
// processing (child enumeration, distance computation, pruning), Push and
// Pop are the priority-queue operations, Spill and Fetch are the hybrid
// queue's disk-tier traffic (§3.2), Merge is the parallel path's
// order-preserving stream merge (including its blocking waits on partition
// workers), and Emit is the residual per-result work: dequeue-side
// filtering, report bookkeeping, and iterator overhead.
type Phase uint8

const (
	// PhaseExpand is node-pair expansion, excluding nested queue inserts.
	PhaseExpand Phase = iota
	// PhasePush is priority-queue insertion, excluding nested disk spills.
	PhasePush
	// PhasePop is priority-queue removal, excluding nested disk fetches.
	PhasePop
	// PhaseSpill is the hybrid queue writing pairs to its disk tier.
	PhaseSpill
	// PhaseFetch is the hybrid queue loading disk buckets back into memory.
	PhaseFetch
	// PhaseMerge is the parallel order-preserving merge, including the time
	// it blocks waiting for partition workers to produce.
	PhaseMerge
	// PhaseEmit is the per-result residue of the engine loop: everything in
	// one next() call not attributed to a more specific phase (dequeue-side
	// filtering, report bookkeeping, restart handling).
	PhaseEmit

	// NumPhases is the number of phases; Phase values are < NumPhases.
	NumPhases = int(PhaseEmit) + 1
)

var phaseNames = [NumPhases]string{
	PhaseExpand: "expand",
	PhasePush:   "push",
	PhasePop:    "pop",
	PhaseSpill:  "spill",
	PhaseFetch:  "fetch",
	PhaseMerge:  "merge",
	PhaseEmit:   "emit",
}

// String returns the phase's JSON name.
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Spans accumulates per-phase wall time and operation counts with atomic
// operations. One Spans value may be shared (the parallel path merges
// per-worker shards into the caller's Spans, exactly like stats.Counters
// shards), but the delta-subtraction scheme the engine uses to keep phases
// disjoint — bracket an outer operation, then subtract the time its nested
// operations recorded — is only sound when a single goroutine writes the
// Spans between the two reads. The engine therefore gives every engine
// (sequential, or one per partition worker) its own Spans.
//
// Physical disk-tier I/O time is recorded separately via ObserveRead and
// ObserveWrite (the pager.IOTimer interface): it is nested inside whatever
// phase triggered the I/O, so it is reported as an "of which" figure, not
// summed with the phases.
type Spans struct {
	ns     [NumPhases]atomic.Int64
	counts [NumPhases]atomic.Int64

	ioReadNS  atomic.Int64
	ioWriteNS atomic.Int64
	ioReads   atomic.Int64
	ioWrites  atomic.Int64
}

// Enabled reports whether s records anything; it is false for nil.
func (s *Spans) Enabled() bool { return s != nil }

// Add records one span of duration d in phase p. Negative durations (clock
// steps, or a delta subtraction racing a merge) count as zero time but still
// count the operation.
func (s *Spans) Add(p Phase, d time.Duration) {
	if s == nil {
		return
	}
	if d > 0 {
		s.ns[p].Add(int64(d))
	}
	s.counts[p].Add(1)
}

// NS returns the accumulated nanoseconds of phase p.
func (s *Spans) NS(p Phase) int64 {
	if s == nil {
		return 0
	}
	return s.ns[p].Load()
}

// Count returns the number of spans recorded in phase p.
func (s *Spans) Count(p Phase) int64 {
	if s == nil {
		return 0
	}
	return s.counts[p].Load()
}

// InnerNS returns the nanoseconds of the phases nested inside one engine
// next() call (expand, push, pop, spill, fetch). The engine subtracts the
// delta of this sum across a next() bracket to attribute the residue to
// PhaseEmit without double counting.
func (s *Spans) InnerNS() int64 {
	if s == nil {
		return 0
	}
	return s.ns[PhaseExpand].Load() + s.ns[PhasePush].Load() + s.ns[PhasePop].Load() +
		s.ns[PhaseSpill].Load() + s.ns[PhaseFetch].Load()
}

// QueueWriteNS returns push + spill nanoseconds — the queue-insertion work
// nested inside a node expansion.
func (s *Spans) QueueWriteNS() int64 {
	if s == nil {
		return 0
	}
	return s.ns[PhasePush].Load() + s.ns[PhaseSpill].Load()
}

// TotalNS returns the nanoseconds summed over all phases. Phases are
// disjoint within one engine, so for a sequential join this is comparable
// to wall time; on the parallel path worker spans accumulate concurrently
// and the total may exceed the elapsed wall time.
func (s *Spans) TotalNS() int64 {
	if s == nil {
		return 0
	}
	var t int64
	for i := 0; i < NumPhases; i++ {
		t += s.ns[i].Load()
	}
	return t
}

// Merge folds other into s (all fields are additive). The parallel path
// merges per-worker shards into the caller's Spans as workers finish.
func (s *Spans) Merge(other *Spans) {
	if s == nil || other == nil {
		return
	}
	for i := 0; i < NumPhases; i++ {
		s.ns[i].Add(other.ns[i].Load())
		s.counts[i].Add(other.counts[i].Load())
	}
	s.ioReadNS.Add(other.ioReadNS.Load())
	s.ioWriteNS.Add(other.ioWriteNS.Load())
	s.ioReads.Add(other.ioReads.Load())
	s.ioWrites.Add(other.ioWrites.Load())
}

// Reset zeroes all accumulators. Not atomic as a whole; do not race with
// recorders.
func (s *Spans) Reset() {
	if s == nil {
		return
	}
	for i := 0; i < NumPhases; i++ {
		s.ns[i].Store(0)
		s.counts[i].Store(0)
	}
	s.ioReadNS.Store(0)
	s.ioWriteNS.Store(0)
	s.ioReads.Store(0)
	s.ioWrites.Store(0)
}

// ObserveRead records one physical page read of duration d. Together with
// ObserveWrite it satisfies the pager.IOTimer interface, so a *Spans can be
// attached directly to a buffer pool.
func (s *Spans) ObserveRead(d time.Duration) {
	if s == nil {
		return
	}
	if d > 0 {
		s.ioReadNS.Add(int64(d))
	}
	s.ioReads.Add(1)
}

// ObserveWrite records one physical page write of duration d.
func (s *Spans) ObserveWrite(d time.Duration) {
	if s == nil {
		return
	}
	if d > 0 {
		s.ioWriteNS.Add(int64(d))
	}
	s.ioWrites.Add(1)
}

// PhaseStat is the JSON summary of one phase.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Count   int64   `json:"count"`
}

// IOStat is the JSON summary of the physical disk-tier I/O nested inside
// the phases ("of which" time, not additive with them).
type IOStat struct {
	ReadSeconds  float64 `json:"read_seconds"`
	WriteSeconds float64 `json:"write_seconds"`
	Reads        int64   `json:"reads"`
	Writes       int64   `json:"writes"`
}

// PhaseSnapshot returns the per-phase stats in phase order, skipping phases
// with no recorded spans.
func (s *Spans) PhaseSnapshot() []PhaseStat {
	if s == nil {
		return nil
	}
	out := make([]PhaseStat, 0, NumPhases)
	for i := 0; i < NumPhases; i++ {
		n := s.counts[i].Load()
		ns := s.ns[i].Load()
		if n == 0 && ns == 0 {
			continue
		}
		out = append(out, PhaseStat{
			Phase:   Phase(i).String(),
			Seconds: time.Duration(ns).Seconds(),
			Count:   n,
		})
	}
	return out
}

// IOSnapshot returns the physical I/O summary.
func (s *Spans) IOSnapshot() IOStat {
	if s == nil {
		return IOStat{}
	}
	return IOStat{
		ReadSeconds:  time.Duration(s.ioReadNS.Load()).Seconds(),
		WriteSeconds: time.Duration(s.ioWriteNS.Load()).Seconds(),
		Reads:        s.ioReads.Load(),
		Writes:       s.ioWrites.Load(),
	}
}
