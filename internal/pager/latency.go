package pager

import "time"

// LatencyStore wraps a Store and sleeps for a fixed duration on every
// physical read and write. The reproduction's default substrate is an
// in-memory page store with counted but free I/O; wrapping it in a
// LatencyStore restores the 1990s cost model of the paper's testbed, where
// a node I/O dominated CPU work — useful when the *wall-clock* shape of an
// experiment (rather than its I/O counts) is the thing being compared.
//
// A uniform per-operation delay models the average access cost of the
// paper's disk; seek-distance modelling is deliberately out of scope.
type LatencyStore struct {
	inner       Store
	read, write time.Duration
}

// NewLatencyStore wraps inner with the given per-read and per-write delays.
func NewLatencyStore(inner Store, read, write time.Duration) *LatencyStore {
	return &LatencyStore{inner: inner, read: read, write: write}
}

// PageSize implements Store.
func (s *LatencyStore) PageSize() int { return s.inner.PageSize() }

// Allocate implements Store. Allocation itself is not charged; the
// subsequent write-back is.
func (s *LatencyStore) Allocate() (PageID, error) { return s.inner.Allocate() }

// Free implements Store.
func (s *LatencyStore) Free(id PageID) error { return s.inner.Free(id) }

// ReadPage implements Store, charging the read latency.
func (s *LatencyStore) ReadPage(id PageID, buf []byte) error {
	if s.read > 0 {
		time.Sleep(s.read)
	}
	return s.inner.ReadPage(id, buf)
}

// WritePage implements Store, charging the write latency.
func (s *LatencyStore) WritePage(id PageID, buf []byte) error {
	if s.write > 0 {
		time.Sleep(s.write)
	}
	return s.inner.WritePage(id, buf)
}

// NumAllocated implements Store.
func (s *LatencyStore) NumAllocated() int { return s.inner.NumAllocated() }

// Close implements Store.
func (s *LatencyStore) Close() error { return s.inner.Close() }
