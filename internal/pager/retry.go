package pager

import (
	"errors"
	"fmt"
	"time"
)

// ErrTransient classifies I/O failures that have a reasonable chance of
// succeeding when retried (interrupted syscalls, throttled devices, flaky
// network storage). Stores signal it by wrapping it into returned errors;
// RetryStore retries exactly the errors for which IsTransient reports true.
var ErrTransient = errors.New("pager: transient I/O error")

// IsTransient reports whether err is a retryable storage failure.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient)
}

// ErrRetryInterrupted wraps the last transient error when a RetryStore
// gives up retrying because its policy's Done channel closed (typically a
// canceled query context): the backoff sleep is cut short and the
// operation fails immediately instead of burning the remaining attempts.
var ErrRetryInterrupted = errors.New("pager: retry interrupted")

// RetryPolicy bounds how RetryStore re-attempts transient failures.
// The zero value disables retrying (a single attempt per operation).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, including
	// the first. Values below 2 disable retrying.
	MaxAttempts int
	// Backoff is the delay before the first retry. Zero retries
	// immediately.
	Backoff time.Duration
	// Multiplier grows the delay after every retry. Values below 1 are
	// treated as 2 (plain exponential backoff).
	Multiplier float64
	// MaxBackoff caps the grown delay. Zero means uncapped.
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep, letting tests retry without waiting.
	Sleep func(time.Duration)
	// Done, when non-nil, makes retrying interruptible: once the channel
	// is closed, backoff sleeps end immediately and no further attempts
	// are made — the operation fails with an ErrRetryInterrupted-wrapped
	// error. The join engine wires its query context's Done channel here
	// so a canceled query never sleeps through a retry ladder. (A channel
	// rather than a context keeps this package dependency-free and the
	// check allocation-free.)
	Done <-chan struct{}
	// OnFault is called for every failed attempt, including permanent
	// errors and the final exhausted attempt, before OnRetry.
	OnFault func(op string, err error)
	// OnRetry is called just before each re-attempt with the 1-based
	// number of the attempt that failed.
	OnRetry func(op string, attempt int, err error)
}

// Enabled reports whether the policy actually retries anything.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Do runs f under the policy: failures that IsTransient classifies as
// retryable are re-attempted with exponential backoff until the attempt
// budget is exhausted or Done closes, exactly as RetryStore does for
// storage operations. op names the operation for the OnFault/OnRetry
// observers. Do is the policy's generic retry loop — the OTLP span
// exporter reuses it for HTTP 429/5xx backoff by wrapping retryable
// response codes in ErrTransient.
func (p RetryPolicy) Do(op string, f func() error) error {
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	delay := p.Backoff
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil {
			return nil
		}
		if p.OnFault != nil {
			p.OnFault(op, err)
		}
		if !IsTransient(err) || attempt >= p.MaxAttempts {
			return err
		}
		// Interruption check before committing to a retry: a closed Done
		// abandons the ladder without invoking OnRetry (no re-attempt is
		// made) even when the backoff delay is zero.
		select {
		case <-p.Done:
			return fmt.Errorf("%w: %w", ErrRetryInterrupted, err)
		default:
		}
		if p.OnRetry != nil {
			p.OnRetry(op, attempt, err)
		}
		if delay > 0 {
			if !p.pause(delay) {
				return fmt.Errorf("%w: %w", ErrRetryInterrupted, err)
			}
			delay = time.Duration(float64(delay) * p.Multiplier)
			if p.MaxBackoff > 0 && delay > p.MaxBackoff {
				delay = p.MaxBackoff
			}
		}
	}
}

// RetryStore wraps a Store and re-attempts operations that fail with a
// transient error (per IsTransient), sleeping an exponentially growing
// backoff between attempts. Permanent errors pass through untouched on
// the first attempt. It adds no locking of its own: it is exactly as
// concurrency-safe as the wrapped store.
type RetryStore struct {
	inner  Store
	policy RetryPolicy
}

// NewRetryStore wraps inner with the given policy.
func NewRetryStore(inner Store, policy RetryPolicy) *RetryStore {
	if policy.Multiplier < 1 {
		policy.Multiplier = 2
	}
	return &RetryStore{inner: inner, policy: policy}
}

// Inner returns the wrapped store.
func (s *RetryStore) Inner() Store { return s.inner }

func (s *RetryStore) do(op string, f func() error) error {
	return s.policy.Do(op, f)
}

// pause waits out one backoff delay, reporting false when Done closed
// before (or while) waiting. A custom Sleep hook is honoured as-is — tests
// substitute a no-op — with a non-blocking Done check after it returns;
// the real sleep selects between a timer and Done so cancellation cuts it
// short immediately.
func (p *RetryPolicy) pause(d time.Duration) bool {
	if p.Sleep != nil {
		p.Sleep(d)
		select {
		case <-p.Done:
			return false
		default:
		}
		return true
	}
	if p.Done == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.Done:
		return false
	}
}

func (s *RetryStore) PageSize() int { return s.inner.PageSize() }

func (s *RetryStore) Allocate() (PageID, error) {
	var id PageID
	err := s.do("allocate", func() error {
		var err error
		id, err = s.inner.Allocate()
		return err
	})
	return id, err
}

func (s *RetryStore) Free(id PageID) error {
	return s.do("free", func() error { return s.inner.Free(id) })
}

func (s *RetryStore) ReadPage(id PageID, buf []byte) error {
	return s.do("read", func() error { return s.inner.ReadPage(id, buf) })
}

func (s *RetryStore) WritePage(id PageID, data []byte) error {
	return s.do("write", func() error { return s.inner.WritePage(id, data) })
}

func (s *RetryStore) NumAllocated() int { return s.inner.NumAllocated() }

func (s *RetryStore) Close() error { return s.inner.Close() }
