package pager

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// countingSink is a concurrency-safe IOCounter for the stress test.
type countingSink struct {
	reads, writes, hits int64
}

func (s *countingSink) AddRead(n int64)  { atomic.AddInt64(&s.reads, n) }
func (s *countingSink) AddWrite(n int64) { atomic.AddInt64(&s.writes, n) }
func (s *countingSink) AddHit(n int64)   { atomic.AddInt64(&s.hits, n) }

// TestPoolConcurrentReaders hammers one pool from many goroutines — the
// access pattern of the parallel join's partition workers sharing a tree's
// buffer pool — and checks under -race that every reader always sees the
// page bytes that were written. The pool is far smaller than the page set,
// so the workers continuously evict each other's victims.
func TestPoolConcurrentReaders(t *testing.T) {
	const (
		pageSize = 64
		nPages   = 200
		// Big enough that the up-to-16 simultaneously pinned frames can
		// never exhaust it (ErrAllPinned), small enough to force constant
		// eviction traffic.
		capacity = 24
		workers  = 8
		opsEach  = 3000
	)
	store, err := NewMemStore(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{}
	pool, err := NewPool(store, capacity, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the pages single-goroutine, each stamped with its own id.
	ids := make([]PageID, nPages)
	for i := range ids {
		f, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(f.Data(), uint64(f.ID()))
		f.MarkDirty()
		ids[i] = f.ID()
		pool.Unpin(f)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			pinned := make([]*Frame, 0, 2)
			for op := 0; op < opsEach; op++ {
				// Hold up to two pins at a time so frames overlap between
				// workers and pinned frames get exercised against eviction.
				if len(pinned) == 2 || (len(pinned) > 0 && rnd.Intn(2) == 0) {
					last := len(pinned) - 1
					pool.Unpin(pinned[last])
					pinned = pinned[:last]
					continue
				}
				id := ids[rnd.Intn(nPages)]
				f, err := pool.Get(id)
				if err != nil {
					errs <- err
					break
				}
				if got := PageID(binary.LittleEndian.Uint64(f.Data())); got != id {
					t.Errorf("page %d read back as %d", id, got)
					pool.Unpin(f)
					break
				}
				pinned = append(pinned, f)
				if op%64 == 0 {
					pool.Resident() // mix in the read-only diagnostics
				}
			}
			for _, f := range pinned {
				pool.Unpin(f)
			}
		}(int64(w) * 977)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&sink.reads) == 0 || atomic.LoadInt64(&sink.hits) == 0 {
		t.Errorf("expected both misses and hits, got reads=%d hits=%d", sink.reads, sink.hits)
	}
}
