package pager

import (
	"bytes"
	"testing"
	"time"
)

// storeFactories lets every test run against both backings.
var storeFactories = map[string]func(t *testing.T, pageSize int) Store{
	"mem": func(t *testing.T, pageSize int) Store {
		s, err := NewMemStore(pageSize)
		if err != nil {
			t.Fatal(err)
		}
		return s
	},
	"file": func(t *testing.T, pageSize int) Store {
		s, err := NewFileStore(t.TempDir(), pageSize)
		if err != nil {
			t.Fatal(err)
		}
		return s
	},
}

func TestStoreRoundTrip(t *testing.T) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(t, 64)
			defer s.Close()
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id == InvalidPage {
				t.Fatal("allocated invalid page id")
			}
			out := make([]byte, 64)
			for i := range out {
				out[i] = byte(i)
			}
			if err := s.WritePage(id, out); err != nil {
				t.Fatal(err)
			}
			in := make([]byte, 64)
			if err := s.ReadPage(id, in); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(in, out) {
				t.Fatal("read back different bytes")
			}
		})
	}
}

func TestStoreAllocateZeroes(t *testing.T) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(t, 32)
			defer s.Close()
			id, _ := s.Allocate()
			s.WritePage(id, bytes.Repeat([]byte{0xff}, 32))
			if err := s.Free(id); err != nil {
				t.Fatal(err)
			}
			id2, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id2 != id {
				t.Fatalf("expected reuse of page %d, got %d", id, id2)
			}
			buf := make([]byte, 32)
			s.ReadPage(id2, buf)
			if !bytes.Equal(buf, make([]byte, 32)) {
				t.Fatal("reused page not zeroed")
			}
		})
	}
}

func TestStoreErrors(t *testing.T) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(t, 16)
			defer s.Close()
			buf := make([]byte, 16)
			if err := s.ReadPage(InvalidPage, buf); err == nil {
				t.Error("read of invalid page succeeded")
			}
			if err := s.ReadPage(99, buf); err == nil {
				t.Error("read of out-of-range page succeeded")
			}
			id, _ := s.Allocate()
			if err := s.ReadPage(id, make([]byte, 8)); err == nil {
				t.Error("short buffer read succeeded")
			}
			if err := s.WritePage(id, make([]byte, 8)); err == nil {
				t.Error("short buffer write succeeded")
			}
			s.Free(id)
			if err := s.ReadPage(id, buf); err == nil {
				t.Error("read of freed page succeeded")
			}
			if err := s.WritePage(id, buf); err == nil {
				t.Error("write of freed page succeeded")
			}
		})
	}
}

func TestStoreNumAllocated(t *testing.T) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(t, 16)
			defer s.Close()
			var ids []PageID
			for i := 0; i < 5; i++ {
				id, _ := s.Allocate()
				ids = append(ids, id)
			}
			if s.NumAllocated() != 5 {
				t.Fatalf("NumAllocated = %d, want 5", s.NumAllocated())
			}
			s.Free(ids[2])
			s.Free(ids[4])
			if s.NumAllocated() != 3 {
				t.Fatalf("NumAllocated after frees = %d, want 3", s.NumAllocated())
			}
			if got := FreeIDs(s); len(got) != 2 {
				t.Fatalf("FreeIDs = %v", got)
			}
		})
	}
}

func TestStoreClosed(t *testing.T) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(t, 16)
			s.Close()
			if _, err := s.Allocate(); err == nil {
				t.Error("Allocate on closed store succeeded")
			}
		})
	}
}

func TestBadPageSize(t *testing.T) {
	if _, err := NewMemStore(0); err == nil {
		t.Error("NewMemStore(0) succeeded")
	}
	if _, err := NewFileStore(t.TempDir(), -1); err == nil {
		t.Error("NewFileStore(-1) succeeded")
	}
}

func TestStoreManyPages(t *testing.T) {
	for name, mk := range storeFactories {
		t.Run(name, func(t *testing.T) {
			s := mk(t, 128)
			defer s.Close()
			const n = 200
			for i := 0; i < n; i++ {
				id, err := s.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				buf := bytes.Repeat([]byte{byte(i)}, 128)
				if err := s.WritePage(id, buf); err != nil {
					t.Fatal(err)
				}
			}
			buf := make([]byte, 128)
			for i := 0; i < n; i++ {
				if err := s.ReadPage(PageID(i+1), buf); err != nil {
					t.Fatal(err)
				}
				if buf[0] != byte(i) || buf[127] != byte(i) {
					t.Fatalf("page %d content wrong", i+1)
				}
			}
		})
	}
}

func TestLatencyStoreDelegates(t *testing.T) {
	inner, _ := NewMemStore(32)
	s := NewLatencyStore(inner, 0, 0)
	defer s.Close()
	if s.PageSize() != 32 {
		t.Fatal("PageSize not delegated")
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	buf[0] = 9
	if err := s.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := s.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("round trip failed")
	}
	if s.NumAllocated() != 1 {
		t.Fatal("NumAllocated not delegated")
	}
	if err := s.Free(id); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyStoreCharges(t *testing.T) {
	inner, _ := NewMemStore(32)
	s := NewLatencyStore(inner, 2*time.Millisecond, 0)
	defer s.Close()
	id, _ := s.Allocate()
	buf := make([]byte, 32)
	start := time.Now()
	for i := 0; i < 5; i++ {
		s.ReadPage(id, buf)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("5 reads took only %v, want >= 10ms", elapsed)
	}
}

func TestOpenNamedFileStore(t *testing.T) {
	path := t.TempDir() + "/named.pages"
	s, err := OpenNamedFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	buf := bytes.Repeat([]byte{9}, 64)
	if err := s.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reopen: the page count and contents persist.
	s2, err := OpenNamedFileStore(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumAllocated() != 1 {
		t.Fatalf("reopened NumAllocated = %d", s2.NumAllocated())
	}
	got := make([]byte, 64)
	if err := s2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatal("contents lost across reopen")
	}
	if err := s2.Sync(); err != nil {
		t.Fatal(err)
	}
	// Misaligned file length is rejected.
	if _, err := OpenNamedFileStore(path, 48); err == nil {
		t.Fatal("misaligned page size accepted")
	}
	// Bad page size is rejected.
	if _, err := OpenNamedFileStore(path, 0); err == nil {
		t.Fatal("zero page size accepted")
	}
	// Sync after close errors.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); err == nil {
		t.Fatal("Sync on closed store succeeded")
	}
}
