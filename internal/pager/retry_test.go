package pager

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// flakyStore fails ReadPage/WritePage with scripted errors before
// succeeding; a pager-local stand-in for the faultstore package (which
// cannot be imported here without a cycle).
type flakyStore struct {
	Store
	readErrs  []error // consumed front-to-back; nil entries succeed
	writeErrs []error
}

func (s *flakyStore) nextErr(q *[]error) error {
	if len(*q) == 0 {
		return nil
	}
	err := (*q)[0]
	*q = (*q)[1:]
	return err
}

func (s *flakyStore) ReadPage(id PageID, buf []byte) error {
	if err := s.nextErr(&s.readErrs); err != nil {
		return err
	}
	return s.Store.ReadPage(id, buf)
}

func (s *flakyStore) WritePage(id PageID, data []byte) error {
	if err := s.nextErr(&s.writeErrs); err != nil {
		return err
	}
	return s.Store.WritePage(id, data)
}

func transientErr() error {
	return fmt.Errorf("flaky: %w", ErrTransient)
}

func newFlaky(t *testing.T) (*flakyStore, PageID) {
	t.Helper()
	mem, err := NewMemStore(128)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close() })
	id, err := mem.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WritePage(id, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	return &flakyStore{Store: mem}, id
}

func TestRetryStoreRecoversTransient(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr(), transientErr()}
	var retries, faults int
	rs := NewRetryStore(fs, RetryPolicy{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep:       func(time.Duration) {},
		OnRetry:     func(op string, attempt int, err error) { retries++ },
		OnFault:     func(op string, err error) { faults++ },
	})
	buf := make([]byte, 128)
	if err := rs.ReadPage(id, buf); err != nil {
		t.Fatalf("ReadPage after retries: %v", err)
	}
	if retries != 2 || faults != 2 {
		t.Fatalf("retries=%d faults=%d, want 2/2", retries, faults)
	}
}

func TestRetryStoreExhaustsAttempts(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr(), transientErr(), transientErr()}
	rs := NewRetryStore(fs, RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}})
	err := rs.ReadPage(id, make([]byte, 128))
	if !IsTransient(err) {
		t.Fatalf("want transient error after exhaustion, got %v", err)
	}
	if len(fs.readErrs) != 0 {
		t.Fatalf("expected exactly 3 attempts, %d scripted errors left", len(fs.readErrs))
	}
}

func TestRetryStorePermanentErrorNotRetried(t *testing.T) {
	perm := errors.New("disk on fire")
	fs, id := newFlaky(t)
	fs.writeErrs = []error{perm}
	var retries int
	rs := NewRetryStore(fs, RetryPolicy{
		MaxAttempts: 5,
		Sleep:       func(time.Duration) {},
		OnRetry:     func(string, int, error) { retries++ },
	})
	if err := rs.WritePage(id, make([]byte, 128)); !errors.Is(err, perm) {
		t.Fatalf("want the permanent error verbatim, got %v", err)
	}
	if retries != 0 {
		t.Fatalf("permanent error was retried %d times", retries)
	}
}

func TestRetryStoreInterruptedMidBackoff(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr(), transientErr(), transientErr()}
	done := make(chan struct{})
	close(done) // already canceled: the first backoff must not be slept out
	rs := NewRetryStore(fs, RetryPolicy{
		MaxAttempts: 1000,
		Backoff:     time.Hour, // would hang the test if actually slept
		Done:        done,
	})
	start := time.Now()
	err := rs.ReadPage(id, make([]byte, 128))
	if !errors.Is(err, ErrRetryInterrupted) {
		t.Fatalf("want ErrRetryInterrupted, got %v", err)
	}
	if !IsTransient(err) {
		t.Fatalf("interrupted error must still carry the transient cause: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("interruption took %v — the backoff was slept", d)
	}
	if len(fs.readErrs) != 2 {
		t.Fatalf("expected exactly 1 attempt before interruption, %d scripted errors left", len(fs.readErrs))
	}
}

func TestRetryStoreInterruptedDuringSleep(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr(), transientErr(), transientErr()}
	done := make(chan struct{})
	rs := NewRetryStore(fs, RetryPolicy{
		MaxAttempts: 1000,
		Backoff:     time.Hour,
		Done:        done,
	})
	time.AfterFunc(20*time.Millisecond, func() { close(done) })
	start := time.Now()
	err := rs.ReadPage(id, make([]byte, 128))
	if !errors.Is(err, ErrRetryInterrupted) {
		t.Fatalf("want ErrRetryInterrupted, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("interruption took %v — the timer was not cut short", d)
	}
}

func TestRetryStoreNilDoneSleepsNormally(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr()}
	rs := NewRetryStore(fs, RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	if err := rs.ReadPage(id, make([]byte, 128)); err != nil {
		t.Fatalf("ReadPage with nil Done: %v", err)
	}
}

func TestRetryStoreCustomSleepHonoursDone(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr(), transientErr(), transientErr()}
	done := make(chan struct{})
	var sleeps int
	rs := NewRetryStore(fs, RetryPolicy{
		MaxAttempts: 1000,
		Backoff:     time.Millisecond,
		Sleep: func(time.Duration) {
			sleeps++
			if sleeps == 2 {
				close(done) // cancel between the second sleep and its recheck
			}
		},
		Done: done,
	})
	err := rs.ReadPage(id, make([]byte, 128))
	if !errors.Is(err, ErrRetryInterrupted) {
		t.Fatalf("want ErrRetryInterrupted, got %v", err)
	}
	if sleeps != 2 {
		t.Fatalf("retry ladder ran %d sleeps after cancellation, want 2", sleeps)
	}
}

func TestRetryStoreBackoffGrowsAndCaps(t *testing.T) {
	fs, id := newFlaky(t)
	fs.readErrs = []error{transientErr(), transientErr(), transientErr(), transientErr()}
	var sleeps []time.Duration
	rs := NewRetryStore(fs, RetryPolicy{
		MaxAttempts: 5,
		Backoff:     10 * time.Millisecond,
		Multiplier:  2,
		MaxBackoff:  25 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	if err := rs.ReadPage(id, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps=%v want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleeps=%v want %v", sleeps, want)
		}
	}
}

// TestPolicyDo exercises the exported generic retry loop directly: transient
// errors are retried up to the attempt budget, permanent errors pass through
// on the first attempt, and a closed Done interrupts the ladder.
func TestPolicyDo(t *testing.T) {
	transient := fmt.Errorf("%w: flaky", ErrTransient)

	t.Run("succeeds after transient failures", func(t *testing.T) {
		var delays []time.Duration
		calls := 0
		p := RetryPolicy{
			MaxAttempts: 4,
			Backoff:     10 * time.Millisecond,
			MaxBackoff:  15 * time.Millisecond,
			Sleep:       func(d time.Duration) { delays = append(delays, d) },
		}
		err := p.Do("op", func() error {
			calls++
			if calls < 3 {
				return transient
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
		}
		want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
		if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
			t.Fatalf("backoff delays = %v, want %v", delays, want)
		}
	})

	t.Run("permanent error is not retried", func(t *testing.T) {
		perm := errors.New("permanent")
		calls := 0
		p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}}
		if err := p.Do("op", func() error { calls++; return perm }); !errors.Is(err, perm) || calls != 1 {
			t.Fatalf("Do = %v after %d calls, want permanent after 1", err, calls)
		}
	})

	t.Run("exhausted budget returns the transient error", func(t *testing.T) {
		calls := 0
		p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
		err := p.Do("op", func() error { calls++; return transient })
		if !IsTransient(err) || calls != 3 {
			t.Fatalf("Do = %v after %d calls, want transient after 3", err, calls)
		}
	})

	t.Run("closed Done interrupts", func(t *testing.T) {
		done := make(chan struct{})
		close(done)
		calls := 0
		p := RetryPolicy{MaxAttempts: 5, Done: done, Sleep: func(time.Duration) {}}
		err := p.Do("op", func() error { calls++; return transient })
		if !errors.Is(err, ErrRetryInterrupted) || !IsTransient(err) || calls != 1 {
			t.Fatalf("Do = %v after %d calls, want ErrRetryInterrupted after 1", err, calls)
		}
	})
}
