package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrAllPinned is returned when every frame in the pool is pinned and a new
// page must be brought in.
var ErrAllPinned = errors.New("pager: all buffer frames are pinned")

// IOCounter receives physical I/O accounting from a Pool. A nil IOCounter
// is valid and records nothing. The stats package provides adapters that
// route a pool's I/O into either the node-I/O or the queue-I/O columns of
// the experiment counters — the paper accounts R-tree node I/O (Table 1)
// separately from the hybrid priority queue's disk traffic.
type IOCounter interface {
	// AddRead records n physical page reads (buffer misses).
	AddRead(n int64)
	// AddWrite records n physical page writes.
	AddWrite(n int64)
	// AddHit records n accesses served from the buffer.
	AddHit(n int64)
}

// IOTimer receives the wall-time cost of physical I/O from a Pool, in
// addition to the counts an IOCounter sees. A nil IOTimer is valid and
// records nothing. The profile package's Spans satisfies this interface, so
// a query profile can attribute buffer-miss latency separately from the
// engine phase that triggered the miss.
type IOTimer interface {
	// ObserveRead records one physical page read taking d.
	ObserveRead(d time.Duration)
	// ObserveWrite records one physical page write taking d.
	ObserveWrite(d time.Duration)
}

// Frame is a buffer-pool slot holding one page. Callers access page bytes
// through Data and must call Pool.Unpin exactly once per Get/Allocate.
type Frame struct {
	id      PageID
	data    []byte
	dirty   bool
	pins    int
	lruElem *list.Element
}

// ID returns the page this frame holds.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page bytes. The slice is valid only while the frame is
// pinned.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page bytes were modified and must be written
// back on eviction or flush.
func (f *Frame) MarkDirty() { f.dirty = true }

// Pool is an LRU buffer pool over a Store. It counts physical reads and
// writes into a stats.Counters, which is how the reproduction measures the
// paper's "node I/O" column.
//
// The pool is safe for concurrent use: all frame-table and store accesses
// are serialized under an internal mutex, so multiple readers (e.g. the
// partition workers of a parallel distance join) may share one pool. A
// pinned frame cannot be evicted, so the bytes returned by Frame.Data stay
// valid (and, for read-only workloads, race-free) until Unpin. Concurrent
// WRITERS of the same page must coordinate among themselves — the join
// engines never modify index pages, and index construction remains
// single-goroutine.
type Pool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // unpinned frames, front = most recently used
	counters IOCounter
	timer    IOTimer
}

// NewPool creates a pool of capacity frames over store. The paper's 256 KiB
// buffer over 1 KiB pages corresponds to capacity 256. counters may be nil.
func NewPool(store Store, capacity int, counters IOCounter) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("pager: pool capacity must be positive, got %d", capacity)
	}
	return &Pool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
		counters: counters,
	}, nil
}

// Store returns the underlying page store. The store itself is not
// synchronized; callers must not access it while pool operations are in
// flight on other goroutines.
func (p *Pool) Store() Store { return p.store }

// Capacity returns the number of frames.
func (p *Pool) Capacity() int { return p.capacity }

// Resident returns the number of pages currently buffered.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// PinnedFrames returns the number of frames with at least one outstanding
// pin. Every Get/Allocate must be balanced by an Unpin on all paths —
// including error and cancellation exits — so a quiescent pool reports 0;
// the cancellation tests assert exactly that.
func (p *Pool) PinnedFrames() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, f := range p.frames {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// Get pins the page into a frame, reading it from the store on a miss. The
// page bytes are fully read before Get returns, and the frame stays pinned
// (hence unevictable) until Unpin, so concurrent Gets of the same page may
// share the frame.
func (p *Pool) Get(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		if p.counters != nil {
			p.counters.AddHit(1)
		}
		p.pin(f)
		return f, nil
	}
	f, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	if err := p.readPage(id, f.data); err != nil {
		p.discard(f)
		return nil, err
	}
	if p.counters != nil {
		p.counters.AddRead(1)
	}
	return f, nil
}

// Allocate creates a new page in the store and returns it pinned. The fresh
// page is zeroed and marked dirty so it reaches the store on eviction.
func (p *Pool) Allocate() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	f, err := p.admit(id)
	if err != nil {
		// Roll back the allocation so the store does not leak a page. If
		// Free itself fails the page leaks in the store, but the original
		// admit error is the one the caller must see.
		_ = p.store.Free(id)
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// admit finds a frame for id (evicting if needed) and pins it. The frame
// data is zeroed.
func (p *Pool) admit(id PageID) (*Frame, error) {
	if len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &Frame{id: id, data: make([]byte, p.store.PageSize()), pins: 1}
	p.frames[id] = f
	return f, nil
}

func (p *Pool) pin(f *Frame) {
	f.pins++
	if f.lruElem != nil {
		p.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
}

// Unpin releases one pin on f. When the pin count reaches zero the frame
// becomes eligible for eviction.
func (p *Pool) Unpin(f *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("pager: unpin of unpinned frame %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.lruElem = p.lru.PushFront(f)
	}
}

// evictOne writes back and drops the least recently used unpinned frame.
func (p *Pool) evictOne() error {
	e := p.lru.Back()
	if e == nil {
		return ErrAllPinned
	}
	f := e.Value.(*Frame)
	if f.dirty {
		if err := p.writePage(f.id, f.data); err != nil {
			return err
		}
		if p.counters != nil {
			p.counters.AddWrite(1)
		}
	}
	p.lru.Remove(e)
	delete(p.frames, f.id)
	return nil
}

// discard drops a frame without write-back after a failed read, releasing
// its pin, so the failed page is neither cached nor left pinned: a later
// Get retries the physical read from scratch. The frame is normally still
// pinned and off the LRU, but both are handled defensively.
func (p *Pool) discard(f *Frame) {
	f.pins = 0
	f.dirty = false
	if f.lruElem != nil {
		p.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
	delete(p.frames, f.id)
}

// Drop removes the page from the pool without write-back and frees it in the
// store. The page must not be pinned.
func (p *Pool) Drop(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			return fmt.Errorf("pager: dropping pinned page %d", id)
		}
		if f.lruElem != nil {
			p.lru.Remove(f.lruElem)
		}
		delete(p.frames, id)
	}
	return p.store.Free(id)
}

// FlushAll writes back every dirty frame (pinned or not) without evicting.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushAllLocked()
}

func (p *Pool) flushAllLocked() error {
	for _, f := range p.frames {
		if f.dirty {
			if err := p.writePage(f.id, f.data); err != nil {
				return err
			}
			if p.counters != nil {
				p.counters.AddWrite(1)
			}
			f.dirty = false
		}
	}
	return nil
}

// Reset flushes every dirty frame and empties the pool, so subsequent
// accesses start from a cold buffer — used by the experiment harness to make
// node I/O counts comparable across runs that share a tree. It fails if any
// frame is pinned.
func (p *Pool) Reset() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("pager: reset with pinned page %d", f.id)
		}
	}
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	p.frames = make(map[PageID]*Frame, p.capacity)
	p.lru.Init()
	return nil
}

// SetCounters swaps the counter sink, returning the previous one. This lets
// an experiment attach fresh counters to an already-built tree.
func (p *Pool) SetCounters(c IOCounter) IOCounter {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.counters
	p.counters = c
	return old
}

// SetIOTimer swaps the I/O timer, returning the previous one. With a nil
// timer (the default) physical I/O is counted but not clocked, so the
// steady-state path takes no extra time.Now calls.
func (p *Pool) SetIOTimer(t IOTimer) IOTimer {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.timer
	p.timer = t
	return old
}

// readPage performs one physical read, clocked when a timer is attached.
func (p *Pool) readPage(id PageID, buf []byte) error {
	if p.timer == nil {
		return p.store.ReadPage(id, buf)
	}
	start := time.Now()
	err := p.store.ReadPage(id, buf)
	p.timer.ObserveRead(time.Since(start))
	return err
}

// writePage performs one physical write, clocked when a timer is attached.
func (p *Pool) writePage(id PageID, buf []byte) error {
	if p.timer == nil {
		return p.store.WritePage(id, buf)
	}
	start := time.Now()
	err := p.store.WritePage(id, buf)
	p.timer.ObserveWrite(time.Since(start))
	return err
}
