package pager

import (
	"bytes"
	"errors"
	"testing"
)

// TestPoolGetReadFailureLeavesNoResidue is the regression test for the
// failed-read path of Pool.Get: the frame must be neither cached nor left
// pinned, so the page can be re-fetched once the store recovers and the
// pool can still be Reset (which refuses pinned frames).
func TestPoolGetReadFailureLeavesNoResidue(t *testing.T) {
	fs, id := newFlaky(t)
	want := bytes.Repeat([]byte{0xAB}, 128)
	if err := fs.Store.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(fs, 4, nil)
	if err != nil {
		t.Fatal(err)
	}

	fs.readErrs = []error{transientErr()}
	if _, err := pool.Get(id); err == nil {
		t.Fatal("Get should surface the read error")
	}
	if n := pool.Resident(); n != 0 {
		t.Fatalf("failed read left %d resident frame(s)", n)
	}

	// The store recovered: the same Get must now re-read physically and
	// return the real bytes, not a zeroed cached frame.
	f, err := pool.Get(id)
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatal("Get after recovery returned stale/zeroed data")
	}
	pool.Unpin(f)

	// No pin leaked: Reset succeeds.
	if err := pool.Reset(); err != nil {
		t.Fatalf("Reset after failed read: %v", err)
	}
}

// TestPoolAllocateRollsBackOnAdmitFailure pins the pool full so admit
// fails, and checks Allocate frees the just-allocated page again.
func TestPoolAllocateRollsBackOnAdmitFailure(t *testing.T) {
	mem, err := NewMemStore(64)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	pool, err := NewPool(mem, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// Pool full of pinned frames: the next Allocate cannot admit.
	if _, err := pool.Allocate(); !errors.Is(err, ErrAllPinned) {
		t.Fatalf("want ErrAllPinned, got %v", err)
	}
	if n := mem.NumAllocated(); n != 1 {
		t.Fatalf("failed Allocate leaked a store page: NumAllocated=%d, want 1", n)
	}
	pool.Unpin(f)
}

// TestPoolEvictionWriteFailureKeepsFrame: a failed write-back during
// eviction must keep the dirty frame (and its LRU entry) so the data is
// not lost and a later eviction can retry.
func TestPoolEvictionWriteFailureKeepsFrame(t *testing.T) {
	fs, _ := newFlaky(t)
	pool, err := NewPool(fs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data(), bytes.Repeat([]byte{0x5A}, 128))
	f.MarkDirty()
	dirtyID := f.ID()
	pool.Unpin(f)

	fs.writeErrs = []error{transientErr()}
	if _, err := pool.Allocate(); err == nil {
		t.Fatal("Allocate should surface the eviction write-back error")
	}
	// The dirty frame survived and flushes cleanly once the store recovers.
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll after recovery: %v", err)
	}
	buf := make([]byte, 128)
	if err := fs.Store.ReadPage(dirtyID, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x5A {
		t.Fatal("dirty page lost after failed eviction")
	}
}
