// Package pager implements the paged-storage substrate of the reproduction:
// a fixed-size page store (memory- or file-backed), a free list, and an LRU
// buffer pool with pin/unpin semantics and I/O counters.
//
// The paper's experimental configuration (§3.1) — 1 KiB R-tree nodes with
// 256 KiB of buffer memory — corresponds to a pager with PageSize = 1024 and
// a pool of 256 frames. Buffer-pool misses are the "node I/O" measure of
// Table 1.
package pager

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// PageID identifies a page within a store. Zero is never a valid page, so
// the zero value can serve as a null reference in on-page data structures.
type PageID uint32

// InvalidPage is the null page reference.
const InvalidPage PageID = 0

// DefaultPageSize is the paper's node size of 1 KiB.
const DefaultPageSize = 1024

// Common errors returned by stores.
var (
	ErrPageOutOfRange = errors.New("pager: page id out of range")
	ErrPageFreed      = errors.New("pager: access to freed page")
	ErrBadPageSize    = errors.New("pager: page size must be positive")
	ErrClosed         = errors.New("pager: store is closed")
)

// Store is a flat collection of fixed-size pages with allocate/free.
// Implementations are not required to be safe for concurrent use: every
// access from query execution goes through a Pool, which serializes store
// calls under its own lock.
type Store interface {
	// PageSize returns the fixed size of every page in bytes.
	PageSize() int
	// Allocate returns a new zeroed page, reusing freed pages when
	// available.
	Allocate() (PageID, error)
	// Free releases a page for reuse. Freeing an unallocated page is an
	// error.
	Free(PageID) error
	// ReadPage copies the page contents into buf, which must be PageSize
	// bytes long.
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf, which must be PageSize bytes long, into the
	// page.
	WritePage(id PageID, buf []byte) error
	// NumAllocated returns the number of live (allocated, not freed)
	// pages.
	NumAllocated() int
	// Close releases resources held by the store.
	Close() error
}

// MemStore is an in-memory Store. It is the default backing for experiments:
// it makes runs deterministic and lets the harness count I/O operations
// without actual disk latency (see DESIGN.md §3 on substitutions).
type MemStore struct {
	pageSize int
	pages    [][]byte
	freed    []PageID
	isFree   map[PageID]bool
	closed   bool
}

// NewMemStore creates an empty in-memory store with the given page size.
func NewMemStore(pageSize int) (*MemStore, error) {
	if pageSize <= 0 {
		return nil, ErrBadPageSize
	}
	return &MemStore{pageSize: pageSize, isFree: make(map[PageID]bool)}, nil
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *MemStore) Allocate() (PageID, error) {
	if s.closed {
		return InvalidPage, ErrClosed
	}
	if n := len(s.freed); n > 0 {
		id := s.freed[n-1]
		s.freed = s.freed[:n-1]
		delete(s.isFree, id)
		clear(s.pages[id-1])
		return id, nil
	}
	s.pages = append(s.pages, make([]byte, s.pageSize))
	return PageID(len(s.pages)), nil
}

// Free implements Store.
func (s *MemStore) Free(id PageID) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.check(id); err != nil {
		return err
	}
	s.freed = append(s.freed, id)
	s.isFree[id] = true
	return nil
}

func (s *MemStore) check(id PageID) error {
	if id == InvalidPage || int(id) > len(s.pages) {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if s.isFree[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// ReadPage implements Store.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.check(id); err != nil {
		return err
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("pager: buffer size %d != page size %d", len(buf), s.pageSize)
	}
	copy(buf, s.pages[id-1])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.check(id); err != nil {
		return err
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("pager: buffer size %d != page size %d", len(buf), s.pageSize)
	}
	copy(s.pages[id-1], buf)
	return nil
}

// NumAllocated implements Store.
func (s *MemStore) NumAllocated() int { return len(s.pages) - len(s.freed) }

// Close implements Store.
func (s *MemStore) Close() error {
	s.closed = true
	s.pages = nil
	return nil
}

// FileStore is a Store backed by an operating-system file. The free list is
// kept in memory only; FileStore targets scratch files (e.g. the disk tier
// of the hybrid priority queue), not durable storage.
type FileStore struct {
	f        *os.File
	pageSize int
	numPages int
	freed    []PageID
	isFree   map[PageID]bool
	closed   bool
}

// NewFileStore creates a store backed by a new temporary file in dir (or the
// default temp directory when dir is empty).
func NewFileStore(dir string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		return nil, ErrBadPageSize
	}
	f, err := os.CreateTemp(dir, "pager-*.pages")
	if err != nil {
		return nil, fmt.Errorf("pager: creating backing file: %w", err)
	}
	// Unlink immediately so the scratch file disappears with the process.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: unlinking backing file: %w", err)
	}
	return &FileStore{f: f, pageSize: pageSize, isFree: make(map[PageID]bool)}, nil
}

// OpenNamedFileStore opens (or creates) a store backed by the named file,
// the backing for persistent indexes. An existing file's length must be a
// multiple of pageSize. The free list is not persisted: pages freed in an
// earlier session are leaked on reopen — acceptable for the read-mostly
// index files this backs, and documented at the rtree layer.
func OpenNamedFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		return nil, ErrBadPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: opening %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: stat %s: %w", path, err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d is not a multiple of page size %d",
			path, info.Size(), pageSize)
	}
	return &FileStore{
		f:        f,
		pageSize: pageSize,
		numPages: int(info.Size() / int64(pageSize)),
		isFree:   make(map[PageID]bool),
	}, nil
}

// Sync flushes the backing file to stable storage.
func (s *FileStore) Sync() error {
	if s.closed {
		return ErrClosed
	}
	return s.f.Sync()
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	if s.closed {
		return InvalidPage, ErrClosed
	}
	if n := len(s.freed); n > 0 {
		id := s.freed[n-1]
		s.freed = s.freed[:n-1]
		delete(s.isFree, id)
		if err := s.WritePage(id, make([]byte, s.pageSize)); err != nil {
			return InvalidPage, err
		}
		return id, nil
	}
	s.numPages++
	id := PageID(s.numPages)
	if _, err := s.f.WriteAt(make([]byte, s.pageSize), s.offset(id)); err != nil {
		s.numPages--
		return InvalidPage, fmt.Errorf("pager: extending file: %w", err)
	}
	return id, nil
}

func (s *FileStore) offset(id PageID) int64 {
	return int64(id-1) * int64(s.pageSize)
}

func (s *FileStore) check(id PageID) error {
	if id == InvalidPage || int(id) > s.numPages {
		return fmt.Errorf("%w: %d", ErrPageOutOfRange, id)
	}
	if s.isFree[id] {
		return fmt.Errorf("%w: %d", ErrPageFreed, id)
	}
	return nil
}

// Free implements Store.
func (s *FileStore) Free(id PageID) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.check(id); err != nil {
		return err
	}
	s.freed = append(s.freed, id)
	s.isFree[id] = true
	return nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.check(id); err != nil {
		return err
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("pager: buffer size %d != page size %d", len(buf), s.pageSize)
	}
	if _, err := s.f.ReadAt(buf, s.offset(id)); err != nil && err != io.EOF {
		return fmt.Errorf("pager: reading page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.check(id); err != nil {
		return err
	}
	if len(buf) != s.pageSize {
		return fmt.Errorf("pager: buffer size %d != page size %d", len(buf), s.pageSize)
	}
	if _, err := s.f.WriteAt(buf, s.offset(id)); err != nil {
		return fmt.Errorf("pager: writing page %d: %w", id, err)
	}
	return nil
}

// NumAllocated implements Store.
func (s *FileStore) NumAllocated() int { return s.numPages - len(s.freed) }

// Close implements Store.
func (s *FileStore) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// FreeIDs returns the sorted list of currently freed page ids. Exposed for
// tests and diagnostics.
func FreeIDs(s Store) []PageID {
	var ids []PageID
	switch st := s.(type) {
	case *MemStore:
		ids = append(ids, st.freed...)
	case *FileStore:
		ids = append(ids, st.freed...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
