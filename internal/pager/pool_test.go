package pager

import "testing"

// testCounter is a minimal IOCounter for pool tests (the stats package
// cannot be imported here without a cycle).
type testCounter struct {
	NodeReads  int64
	NodeWrites int64
	BufferHits int64
}

func (c *testCounter) AddRead(n int64)  { c.NodeReads += n }
func (c *testCounter) AddWrite(n int64) { c.NodeWrites += n }
func (c *testCounter) AddHit(n int64)   { c.BufferHits += n }

func (c *testCounter) NodeIO() int64 { return c.NodeReads + c.NodeWrites }

func newTestPool(t *testing.T, capacity int) (*Pool, *testCounter) {
	t.Helper()
	s, err := NewMemStore(64)
	if err != nil {
		t.Fatal(err)
	}
	c := &testCounter{}
	p, err := NewPool(s, capacity, c)
	if err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestPoolGetCountsIO(t *testing.T) {
	p, c := newTestPool(t, 4)
	f, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Data()[0] = 42
	f.MarkDirty()
	p.Unpin(f)

	// A re-get while resident is a buffer hit, not a read.
	f2, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Data()[0] != 42 {
		t.Fatal("lost write")
	}
	p.Unpin(f2)
	if c.NodeReads != 0 || c.BufferHits != 1 {
		t.Fatalf("reads=%d hits=%d, want 0/1", c.NodeReads, c.BufferHits)
	}
}

func TestPoolEvictionWritesBackDirty(t *testing.T) {
	p, c := newTestPool(t, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		f.MarkDirty()
		ids = append(ids, f.ID())
		p.Unpin(f)
	}
	// Page 1 must have been evicted (LRU) and written back.
	if c.NodeWrites == 0 {
		t.Fatal("expected write-back on eviction")
	}
	f, err := p.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 1 {
		t.Fatalf("evicted page lost data: %d", f.Data()[0])
	}
	p.Unpin(f)
	if c.NodeReads == 0 {
		t.Fatal("expected physical read after eviction")
	}
}

func TestPoolLRUOrder(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f1, _ := p.Allocate()
	f2, _ := p.Allocate()
	id1, id2 := f1.ID(), f2.ID()
	p.Unpin(f1)
	p.Unpin(f2)
	// Touch page 1 so page 2 becomes LRU.
	f, _ := p.Get(id1)
	p.Unpin(f)
	// Bringing in a third page must evict page 2, keeping page 1 resident.
	f3, _ := p.Allocate()
	p.Unpin(f3)
	c := &testCounter{}
	p.SetCounters(c)
	f, err := p.Get(id1)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f)
	if c.BufferHits != 1 {
		t.Fatal("page 1 should still be resident")
	}
	f, _ = p.Get(id2)
	p.Unpin(f)
	if c.NodeReads != 1 {
		t.Fatal("page 2 should have been evicted")
	}
}

func TestPoolAllPinned(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f1, _ := p.Allocate()
	f2, _ := p.Allocate()
	if _, err := p.Allocate(); err != ErrAllPinned {
		t.Fatalf("expected ErrAllPinned, got %v", err)
	}
	p.Unpin(f1)
	p.Unpin(f2)
	if _, err := p.Allocate(); err != nil {
		t.Fatalf("allocate after unpin failed: %v", err)
	}
}

func TestPoolPinNesting(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f, _ := p.Allocate()
	id := f.ID()
	f2, err := p.Get(id) // second pin on same frame
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Fatal("expected same frame for same page")
	}
	p.Unpin(f)
	// Still pinned once; must not be evictable.
	g1, _ := p.Allocate()
	p.Unpin(g1)
	if _, err := p.Allocate(); err != nil {
		t.Fatalf("expected eviction of g1, got %v", err)
	}
	p.Unpin(f2)
}

func TestPoolUnpinPanicsWhenUnpinned(t *testing.T) {
	p, _ := newTestPool(t, 2)
	f, _ := p.Allocate()
	p.Unpin(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double unpin")
		}
	}()
	p.Unpin(f)
}

func TestPoolDrop(t *testing.T) {
	p, _ := newTestPool(t, 4)
	f, _ := p.Allocate()
	id := f.ID()
	p.Unpin(f)
	if err := p.Drop(id); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(id); err == nil {
		t.Fatal("get of dropped page succeeded")
	}
	// Dropping a pinned page must fail.
	f2, _ := p.Allocate()
	if err := p.Drop(f2.ID()); err == nil {
		t.Fatal("drop of pinned page succeeded")
	}
	p.Unpin(f2)
}

func TestPoolFlushAll(t *testing.T) {
	p, c := newTestPool(t, 4)
	f, _ := p.Allocate()
	f.Data()[0] = 7
	f.MarkDirty()
	id := f.ID()
	p.Unpin(f)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if c.NodeWrites == 0 {
		t.Fatal("flush wrote nothing")
	}
	// Verify bytes reached the store.
	buf := make([]byte, 64)
	if err := p.Store().ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 {
		t.Fatal("flush did not persist data")
	}
}

func TestNewPoolValidation(t *testing.T) {
	s, _ := NewMemStore(64)
	if _, err := NewPool(s, 0, nil); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestPoolNilCounters(t *testing.T) {
	s, _ := NewMemStore(64)
	p, err := NewPool(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f)
	// Force eviction path with nil counters.
	for i := 0; i < 3; i++ {
		g, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		g.MarkDirty()
		p.Unpin(g)
	}
}

func TestPoolCapacityResidentReset(t *testing.T) {
	p, c := newTestPool(t, 4)
	if p.Capacity() != 4 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
	f1, _ := p.Allocate()
	f1.Data()[0] = 5
	f1.MarkDirty()
	id := f1.ID()
	f2, _ := p.Allocate()
	p.Unpin(f2)
	if p.Resident() != 2 {
		t.Fatalf("Resident = %d", p.Resident())
	}
	// Reset with a pinned frame must fail.
	if err := p.Reset(); err == nil {
		t.Fatal("Reset with pinned frame succeeded")
	}
	p.Unpin(f1)
	if err := p.Reset(); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Fatalf("Resident after reset = %d", p.Resident())
	}
	if c.NodeWrites == 0 {
		t.Fatal("Reset did not flush the dirty frame")
	}
	// Data survived the reset via write-back; next access is a cold read.
	f, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 5 {
		t.Fatal("reset lost data")
	}
	p.Unpin(f)
}
