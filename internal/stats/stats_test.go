package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.AddDistCalc(1)
	c.AddNodeDistCalc(1)
	c.AddNodeRead(1)
	c.AddNodeWrite(1)
	c.AddBufferHit(1)
	c.QueueInsert(5)
	c.QueuePop()
	c.AddQueueDiskPair(1)
	c.ReportPair()
	c.Filter(1)
	c.Reset()
	if c.NodeIO() != 0 {
		t.Fatal("nil counters returned non-zero")
	}
	if c.Snapshot() != (Counters{}) {
		t.Fatal("nil snapshot not zero")
	}
	if !strings.Contains(c.String(), "disabled") {
		t.Fatal("nil String() wrong")
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.AddDistCalc(3)
	c.AddNodeDistCalc(2)
	c.AddNodeRead(5)
	c.AddNodeWrite(4)
	c.AddBufferHit(7)
	if c.NodeIO() != 9 {
		t.Fatalf("NodeIO = %d", c.NodeIO())
	}
	c.QueueInsert(10)
	c.QueueInsert(3)
	if c.MaxQueueSize != 10 || c.QueueInserts != 2 {
		t.Fatalf("queue accounting wrong: %+v", c)
	}
	c.QueuePop()
	c.ReportPair()
	c.Filter(2)
	snap := c.Snapshot()
	if snap.DistCalcs != 3 || snap.Filtered != 2 || snap.PairsReported != 1 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	c.Reset()
	if c.DistCalcs != 0 || c.MaxQueueSize != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCountersString(t *testing.T) {
	c := &Counters{DistCalcs: 42, MaxQueueSize: 7, NodeReads: 3, NodeWrites: 1}
	s := c.String()
	for _, want := range []string{"distCalcs=42", "queueMax=7", "nodeIO=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestSinks(t *testing.T) {
	c := &Counters{}
	ns := NodeSink(c)
	ns.AddRead(2)
	ns.AddWrite(3)
	ns.AddHit(4)
	if c.NodeReads != 2 || c.NodeWrites != 3 || c.BufferHits != 4 {
		t.Fatalf("node sink: %+v", c)
	}
	qs := QueueSink(c)
	qs.AddRead(5)
	qs.AddWrite(6)
	qs.AddHit(7) // dropped by design
	if c.QueueReads != 5 || c.QueueWrites != 6 {
		t.Fatalf("queue sink: %+v", c)
	}
	if c.NodeReads != 2 {
		t.Fatal("queue sink leaked into node counters")
	}
	if NodeSink(nil) != nil || QueueSink(nil) != nil {
		t.Fatal("nil counters must yield nil sinks")
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	time.Sleep(time.Millisecond)
	if tm.Elapsed() < time.Millisecond {
		t.Fatal("timer did not advance")
	}
}

// TestMergeMaxQueueConcurrent stress-tests the Merge contract under the
// race detector: when many worker shards merge into one target
// concurrently, MaxQueueSize must end up as the high-water MAXIMUM of the
// shard peaks — partition queues are independent, so their peaks must never
// be summed — while additive fields sum exactly.
func TestMergeMaxQueueConcurrent(t *testing.T) {
	const workers = 16
	const mergesPerWorker = 8
	shards := make([]*Counters, workers)
	for i := range shards {
		shards[i] = &Counters{}
		// Distinct peak per shard: worker i's queue grows to 100*(i+1).
		for size := int64(1); size <= int64(100*(i+1)); size++ {
			shards[i].QueueInsert(size)
		}
		shards[i].AddDistCalc(10)
	}
	wantMax := int64(100 * workers)

	total := &Counters{}
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(s *Counters) {
			defer wg.Done()
			for j := 0; j < mergesPerWorker; j++ {
				total.Merge(s)
			}
		}(shards[i])
	}
	wg.Wait()

	got := total.Snapshot()
	if got.MaxQueueSize != wantMax {
		t.Errorf("MaxQueueSize = %d, want high-water max %d (a sum would be %d)",
			got.MaxQueueSize, wantMax, int64(100*workers*(workers+1)/2*mergesPerWorker))
	}
	if want := int64(10 * workers * mergesPerWorker); got.DistCalcs != want {
		t.Errorf("DistCalcs = %d, want %d", got.DistCalcs, want)
	}
}

// TestMergeRetryCountersConcurrent is the property test for the I/O fault
// accounting added with the retry layer: shards record faults and retries
// concurrently with merges into a shared total, and the final totals must be
// the exact sums across shards — no lost updates, no double counting beyond
// the deliberate repeat merges.
func TestMergeRetryCountersConcurrent(t *testing.T) {
	const workers = 12
	const opsPerWorker = 500
	const mergesPerWorker = 4

	shards := make([]*Counters, workers)
	var fill sync.WaitGroup
	for i := range shards {
		shards[i] = &Counters{}
		fill.Add(1)
		// Writers hammer each shard concurrently: AddIOFault/AddIORetry must
		// be atomic within a shard too, not just across Merge.
		go func(s *Counters, id int) {
			defer fill.Done()
			for j := 0; j < opsPerWorker; j++ {
				s.AddIOFault(1)
				if j%3 == 0 {
					s.AddIORetry(2)
				}
			}
			s.QueueInsert(int64(10 * (id + 1)))
		}(shards[i], i)
	}
	fill.Wait()

	perShardRetries := int64(2 * ((opsPerWorker + 2) / 3))
	total := &Counters{}
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(s *Counters) {
			defer wg.Done()
			for j := 0; j < mergesPerWorker; j++ {
				total.Merge(s)
			}
		}(shards[i])
	}
	wg.Wait()

	got := total.Snapshot()
	if want := int64(workers * opsPerWorker * mergesPerWorker); got.IOFaults != want {
		t.Errorf("IOFaults = %d, want %d", got.IOFaults, want)
	}
	if want := int64(workers) * perShardRetries * mergesPerWorker; got.IORetries != want {
		t.Errorf("IORetries = %d, want %d", got.IORetries, want)
	}
	if want := int64(10 * workers); got.MaxQueueSize != want {
		t.Errorf("MaxQueueSize = %d, want max %d", got.MaxQueueSize, want)
	}
}
