// Package stats provides the performance counters used throughout the
// repository to reproduce the measures the paper reports in Table 1: the
// number of object distance calculations, the maximum priority-queue size,
// and the number of node I/O operations, plus wall-clock timing helpers.
//
// Counters are updated with sync/atomic operations, so a single Counters
// value may be shared by concurrent query executors — the parallel
// partitioned join runs one engine per partition over shared buffer pools,
// and all of them account into the same sink. Single-goroutine callers pay
// only the (uncontended) atomic cost. The exported fields remain plain
// int64s for compatibility: reading them directly is fine once all workers
// have finished (or via Snapshot at any time); concurrent direct writes are
// not. Per-worker counter shards can be combined with Merge.
//
// A nil *Counters is valid everywhere and records nothing, so
// instrumentation can be disabled without branching at call sites.
package stats

import (
	"fmt"
	"sync/atomic"
	"time"

	"distjoin/internal/pager"
)

// Counters accumulates the paper's performance measures.
type Counters struct {
	// DistCalcs counts object-to-object distance computations ("Dist.
	// Calc." in Table 1). Distances involving nodes are counted separately
	// in NodeDistCalcs.
	DistCalcs int64
	// NodeDistCalcs counts distance computations with at least one node or
	// bounding rectangle operand.
	NodeDistCalcs int64
	// NodeReads counts index node read I/O (buffer-pool misses).
	NodeReads int64
	// NodeWrites counts index node write I/O.
	NodeWrites int64
	// BufferHits counts node accesses satisfied from the buffer pool.
	BufferHits int64
	// QueueInserts counts priority-queue insertions.
	QueueInserts int64
	// QueuePops counts priority-queue removals.
	QueuePops int64
	// MaxQueueSize is the high-water mark of the priority-queue size
	// ("Queue Size" in Table 1). When several engines share one Counters,
	// it is the largest size any single queue reached.
	MaxQueueSize int64
	// QueueDiskPairs counts pairs spilled to the disk tier of the hybrid
	// queue.
	QueueDiskPairs int64
	// QueueReads and QueueWrites count the hybrid queue's own page I/O,
	// which the paper accounts separately from R-tree node I/O.
	QueueReads  int64
	QueueWrites int64
	// PairsReported counts result pairs delivered to the caller.
	PairsReported int64
	// Filtered counts pairs discarded by semi-join filtering or distance
	// range pruning before reaching the queue.
	Filtered int64
	// BatchPruned counts candidate pairs skipped by the plane-sweep /
	// block prune of the batched simultaneous expansion before any
	// distance computation — pairs that never cost a distance calculation
	// nor appear in Filtered.
	BatchPruned int64
	// IOFaults counts failed physical I/O attempts observed by the retry
	// layer, including transient failures later recovered by a retry.
	IOFaults int64
	// IORetries counts re-attempts after transient I/O failures
	// (Options.RetryIO). IOFaults - IORetries ≤ surfaced errors.
	IORetries int64
	// Cancellations counts queries that surfaced ErrCanceled: the run's
	// Options.Context was canceled (or its deadline expired) and the
	// iterator latched the cancellation as its terminal error.
	Cancellations int64
}

// NodeIO returns reads+writes, the "Node I/O" measure of Table 1.
func (c *Counters) NodeIO() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.NodeReads) + atomic.LoadInt64(&c.NodeWrites)
}

// AddDistCalc records n object distance computations.
func (c *Counters) AddDistCalc(n int64) {
	if c != nil {
		atomic.AddInt64(&c.DistCalcs, n)
	}
}

// AddNodeDistCalc records n node distance computations.
func (c *Counters) AddNodeDistCalc(n int64) {
	if c != nil {
		atomic.AddInt64(&c.NodeDistCalcs, n)
	}
}

// AddNodeRead records n node read I/Os.
func (c *Counters) AddNodeRead(n int64) {
	if c != nil {
		atomic.AddInt64(&c.NodeReads, n)
	}
}

// AddNodeWrite records n node write I/Os.
func (c *Counters) AddNodeWrite(n int64) {
	if c != nil {
		atomic.AddInt64(&c.NodeWrites, n)
	}
}

// AddBufferHit records n buffer-pool hits.
func (c *Counters) AddBufferHit(n int64) {
	if c != nil {
		atomic.AddInt64(&c.BufferHits, n)
	}
}

// maxInt64 raises *addr to at least v.
func maxInt64(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// QueueInsert records a queue insertion and updates the high-water mark
// given the queue's new size.
func (c *Counters) QueueInsert(newSize int64) {
	if c == nil {
		return
	}
	atomic.AddInt64(&c.QueueInserts, 1)
	maxInt64(&c.MaxQueueSize, newSize)
}

// QueuePop records a queue removal.
func (c *Counters) QueuePop() {
	if c != nil {
		atomic.AddInt64(&c.QueuePops, 1)
	}
}

// AddQueueDiskPair records n pairs spilled to disk.
func (c *Counters) AddQueueDiskPair(n int64) {
	if c != nil {
		atomic.AddInt64(&c.QueueDiskPairs, n)
	}
}

// ReportPair records a result pair delivered to the caller.
func (c *Counters) ReportPair() {
	if c != nil {
		atomic.AddInt64(&c.PairsReported, 1)
	}
}

// Filter records n pairs pruned before insertion.
func (c *Counters) Filter(n int64) {
	if c != nil {
		atomic.AddInt64(&c.Filtered, n)
	}
}

// AddBatchPruned records n pairs skipped by the sweep/block prune before
// any distance computation.
func (c *Counters) AddBatchPruned(n int64) {
	if c != nil {
		atomic.AddInt64(&c.BatchPruned, n)
	}
}

// AddIOFault records n failed physical I/O attempts.
func (c *Counters) AddIOFault(n int64) {
	if c != nil {
		atomic.AddInt64(&c.IOFaults, n)
	}
}

// AddIORetry records n retries of transient I/O failures.
func (c *Counters) AddIORetry(n int64) {
	if c != nil {
		atomic.AddInt64(&c.IORetries, n)
	}
}

// AddCancellation records n queries canceled via their context.
func (c *Counters) AddCancellation(n int64) {
	if c != nil {
		atomic.AddInt64(&c.Cancellations, n)
	}
}

// Reset zeroes all counters. Not atomic as a whole: do not race Reset with
// concurrent recorders.
func (c *Counters) Reset() {
	if c != nil {
		*c = Counters{}
	}
}

// Snapshot returns a consistent-enough copy of the current counter values
// (each field is loaded atomically; fields may be skewed relative to each
// other while recorders are running).
func (c *Counters) Snapshot() Counters {
	if c == nil {
		return Counters{}
	}
	return Counters{
		DistCalcs:      atomic.LoadInt64(&c.DistCalcs),
		NodeDistCalcs:  atomic.LoadInt64(&c.NodeDistCalcs),
		NodeReads:      atomic.LoadInt64(&c.NodeReads),
		NodeWrites:     atomic.LoadInt64(&c.NodeWrites),
		BufferHits:     atomic.LoadInt64(&c.BufferHits),
		QueueInserts:   atomic.LoadInt64(&c.QueueInserts),
		QueuePops:      atomic.LoadInt64(&c.QueuePops),
		MaxQueueSize:   atomic.LoadInt64(&c.MaxQueueSize),
		QueueDiskPairs: atomic.LoadInt64(&c.QueueDiskPairs),
		QueueReads:     atomic.LoadInt64(&c.QueueReads),
		QueueWrites:    atomic.LoadInt64(&c.QueueWrites),
		PairsReported:  atomic.LoadInt64(&c.PairsReported),
		Filtered:       atomic.LoadInt64(&c.Filtered),
		BatchPruned:    atomic.LoadInt64(&c.BatchPruned),
		IOFaults:       atomic.LoadInt64(&c.IOFaults),
		IORetries:      atomic.LoadInt64(&c.IORetries),
		Cancellations:  atomic.LoadInt64(&c.Cancellations),
	}
}

// Merge folds the counts of other into c: additive fields are summed and
// MaxQueueSize takes the maximum of the two high-water marks (queues are
// independent, so their peak sizes do not add). The parallel join gives each
// partition worker its own shard and merges the shards into the caller's
// Counters as workers finish. other is read atomically; merging a shard
// still being written to yields a momentary partial view, not corruption.
func (c *Counters) Merge(other *Counters) {
	if c == nil || other == nil {
		return
	}
	o := other.Snapshot()
	atomic.AddInt64(&c.DistCalcs, o.DistCalcs)
	atomic.AddInt64(&c.NodeDistCalcs, o.NodeDistCalcs)
	atomic.AddInt64(&c.NodeReads, o.NodeReads)
	atomic.AddInt64(&c.NodeWrites, o.NodeWrites)
	atomic.AddInt64(&c.BufferHits, o.BufferHits)
	atomic.AddInt64(&c.QueueInserts, o.QueueInserts)
	atomic.AddInt64(&c.QueuePops, o.QueuePops)
	maxInt64(&c.MaxQueueSize, o.MaxQueueSize)
	atomic.AddInt64(&c.QueueDiskPairs, o.QueueDiskPairs)
	atomic.AddInt64(&c.QueueReads, o.QueueReads)
	atomic.AddInt64(&c.QueueWrites, o.QueueWrites)
	atomic.AddInt64(&c.PairsReported, o.PairsReported)
	atomic.AddInt64(&c.Filtered, o.Filtered)
	atomic.AddInt64(&c.BatchPruned, o.BatchPruned)
	atomic.AddInt64(&c.IOFaults, o.IOFaults)
	atomic.AddInt64(&c.IORetries, o.IORetries)
	atomic.AddInt64(&c.Cancellations, o.Cancellations)
}

// String formats the Table 1 measures compactly.
func (c *Counters) String() string {
	if c == nil {
		return "stats: disabled"
	}
	s := c.Snapshot()
	return fmt.Sprintf("distCalcs=%d queueMax=%d nodeIO=%d (reads=%d writes=%d hits=%d)",
		s.DistCalcs, s.MaxQueueSize, s.NodeReads+s.NodeWrites, s.NodeReads, s.NodeWrites, s.BufferHits)
}

// NodeSink adapts c into a pager.IOCounter that records into the node-I/O
// columns (NodeReads, NodeWrites, BufferHits). It returns an untyped nil
// when c is nil, so the pool records nothing.
func NodeSink(c *Counters) pager.IOCounter {
	if c == nil {
		return nil
	}
	return &NodeIOSink{c: c}
}

// NodeIOSink routes pool I/O into the node-I/O counters.
type NodeIOSink struct{ c *Counters }

// AddRead implements pager.IOCounter.
func (s *NodeIOSink) AddRead(n int64) { s.c.AddNodeRead(n) }

// AddWrite implements pager.IOCounter.
func (s *NodeIOSink) AddWrite(n int64) { s.c.AddNodeWrite(n) }

// AddHit implements pager.IOCounter.
func (s *NodeIOSink) AddHit(n int64) { s.c.AddBufferHit(n) }

// QueueSink adapts c into a pager.IOCounter that records into the queue-I/O
// columns (QueueReads, QueueWrites). Buffer hits inside the queue's small
// pool are not separately tracked. It returns an untyped nil when c is nil.
func QueueSink(c *Counters) pager.IOCounter {
	if c == nil {
		return nil
	}
	return &QueueIOSink{c: c}
}

// QueueIOSink routes pool I/O into the queue-I/O counters.
type QueueIOSink struct{ c *Counters }

// AddRead implements pager.IOCounter.
func (s *QueueIOSink) AddRead(n int64) { atomic.AddInt64(&s.c.QueueReads, n) }

// AddWrite implements pager.IOCounter.
func (s *QueueIOSink) AddWrite(n int64) { atomic.AddInt64(&s.c.QueueWrites, n) }

// AddHit implements pager.IOCounter.
func (s *QueueIOSink) AddHit(int64) {}

// Timer measures wall-clock elapsed time for an experiment leg.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since StartTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
