// Package stats provides the performance counters used throughout the
// repository to reproduce the measures the paper reports in Table 1: the
// number of object distance calculations, the maximum priority-queue size,
// and the number of node I/O operations, plus wall-clock timing helpers.
//
// Counters are plain integers: the algorithms in this repository are
// single-goroutine by design (they model a single query executor), so no
// synchronization is needed. A nil *Counters is valid everywhere and records
// nothing, so instrumentation can be disabled without branching at call
// sites.
package stats

import (
	"fmt"
	"time"

	"distjoin/internal/pager"
)

// Counters accumulates the paper's performance measures.
type Counters struct {
	// DistCalcs counts object-to-object distance computations ("Dist.
	// Calc." in Table 1). Distances involving nodes are counted separately
	// in NodeDistCalcs.
	DistCalcs int64
	// NodeDistCalcs counts distance computations with at least one node or
	// bounding rectangle operand.
	NodeDistCalcs int64
	// NodeReads counts index node read I/O (buffer-pool misses).
	NodeReads int64
	// NodeWrites counts index node write I/O.
	NodeWrites int64
	// BufferHits counts node accesses satisfied from the buffer pool.
	BufferHits int64
	// QueueInserts counts priority-queue insertions.
	QueueInserts int64
	// QueuePops counts priority-queue removals.
	QueuePops int64
	// MaxQueueSize is the high-water mark of the priority-queue size
	// ("Queue Size" in Table 1).
	MaxQueueSize int64
	// QueueDiskPairs counts pairs spilled to the disk tier of the hybrid
	// queue.
	QueueDiskPairs int64
	// QueueReads and QueueWrites count the hybrid queue's own page I/O,
	// which the paper accounts separately from R-tree node I/O.
	QueueReads  int64
	QueueWrites int64
	// PairsReported counts result pairs delivered to the caller.
	PairsReported int64
	// Filtered counts pairs discarded by semi-join filtering or distance
	// range pruning before reaching the queue.
	Filtered int64
}

// NodeIO returns reads+writes, the "Node I/O" measure of Table 1.
func (c *Counters) NodeIO() int64 {
	if c == nil {
		return 0
	}
	return c.NodeReads + c.NodeWrites
}

// AddDistCalc records n object distance computations.
func (c *Counters) AddDistCalc(n int64) {
	if c != nil {
		c.DistCalcs += n
	}
}

// AddNodeDistCalc records n node distance computations.
func (c *Counters) AddNodeDistCalc(n int64) {
	if c != nil {
		c.NodeDistCalcs += n
	}
}

// AddNodeRead records n node read I/Os.
func (c *Counters) AddNodeRead(n int64) {
	if c != nil {
		c.NodeReads += n
	}
}

// AddNodeWrite records n node write I/Os.
func (c *Counters) AddNodeWrite(n int64) {
	if c != nil {
		c.NodeWrites += n
	}
}

// AddBufferHit records n buffer-pool hits.
func (c *Counters) AddBufferHit(n int64) {
	if c != nil {
		c.BufferHits += n
	}
}

// QueueInsert records a queue insertion and updates the high-water mark
// given the queue's new size.
func (c *Counters) QueueInsert(newSize int64) {
	if c == nil {
		return
	}
	c.QueueInserts++
	if newSize > c.MaxQueueSize {
		c.MaxQueueSize = newSize
	}
}

// QueuePop records a queue removal.
func (c *Counters) QueuePop() {
	if c != nil {
		c.QueuePops++
	}
}

// AddQueueDiskPair records n pairs spilled to disk.
func (c *Counters) AddQueueDiskPair(n int64) {
	if c != nil {
		c.QueueDiskPairs += n
	}
}

// ReportPair records a result pair delivered to the caller.
func (c *Counters) ReportPair() {
	if c != nil {
		c.PairsReported++
	}
}

// Filter records n pairs pruned before insertion.
func (c *Counters) Filter(n int64) {
	if c != nil {
		c.Filtered += n
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c != nil {
		*c = Counters{}
	}
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() Counters {
	if c == nil {
		return Counters{}
	}
	return *c
}

// String formats the Table 1 measures compactly.
func (c *Counters) String() string {
	if c == nil {
		return "stats: disabled"
	}
	return fmt.Sprintf("distCalcs=%d queueMax=%d nodeIO=%d (reads=%d writes=%d hits=%d)",
		c.DistCalcs, c.MaxQueueSize, c.NodeIO(), c.NodeReads, c.NodeWrites, c.BufferHits)
}

// NodeSink adapts c into a pager.IOCounter that records into the node-I/O
// columns (NodeReads, NodeWrites, BufferHits). It returns an untyped nil
// when c is nil, so the pool records nothing.
func NodeSink(c *Counters) pager.IOCounter {
	if c == nil {
		return nil
	}
	return &NodeIOSink{c: c}
}

// NodeIOSink routes pool I/O into the node-I/O counters.
type NodeIOSink struct{ c *Counters }

// AddRead implements pager.IOCounter.
func (s *NodeIOSink) AddRead(n int64) { s.c.NodeReads += n }

// AddWrite implements pager.IOCounter.
func (s *NodeIOSink) AddWrite(n int64) { s.c.NodeWrites += n }

// AddHit implements pager.IOCounter.
func (s *NodeIOSink) AddHit(n int64) { s.c.BufferHits += n }

// QueueSink adapts c into a pager.IOCounter that records into the queue-I/O
// columns (QueueReads, QueueWrites). Buffer hits inside the queue's small
// pool are not separately tracked. It returns an untyped nil when c is nil.
func QueueSink(c *Counters) pager.IOCounter {
	if c == nil {
		return nil
	}
	return &QueueIOSink{c: c}
}

// QueueIOSink routes pool I/O into the queue-I/O counters.
type QueueIOSink struct{ c *Counters }

// AddRead implements pager.IOCounter.
func (s *QueueIOSink) AddRead(n int64) { s.c.QueueReads += n }

// AddWrite implements pager.IOCounter.
func (s *QueueIOSink) AddWrite(n int64) { s.c.QueueWrites += n }

// AddHit implements pager.IOCounter.
func (s *QueueIOSink) AddHit(int64) {}

// Timer measures wall-clock elapsed time for an experiment leg.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since StartTimer.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }
