package server

import (
	"fmt"
	"sort"
	"sync"

	"distjoin"
)

// Registry is the named-index registry of the query service: every
// persisted R*-tree (or in-memory index) is opened exactly once and then
// shared by every cursor that names it. Concurrent read-only joins over one
// index are sound — the R*-tree's buffer pool serializes page access — but
// a registered index must not be mutated while the server is live, the same
// rule the library applies to a single in-process join.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// regEntry is one registered index plus its ownership: close is non-nil
// when the registry opened the index itself (OpenFile) and must release it.
type regEntry struct {
	name  string
	kind  string
	si    distjoin.SpatialIndex
	close func() error
}

// IndexInfo describes one registered index, as served by /v1/indexes.
type IndexInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Objects int    `json:"objects"`
	Dims    int    `json:"dims"`
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// Register adds an index the caller owns (the registry never closes it).
// kind is a human-readable structure name ("rtree", "quadtree", ...).
func (r *Registry) Register(name, kind string, si distjoin.SpatialIndex) error {
	return r.add(&regEntry{name: name, kind: kind, si: si})
}

// RegisterIndex adds a caller-owned R*-tree index under the given name.
func (r *Registry) RegisterIndex(name string, idx *distjoin.Index) error {
	return r.Register(name, "rtree", idx.AsSpatialIndex())
}

// RegisterQuadIndex adds a caller-owned quadtree index under the given name.
func (r *Registry) RegisterQuadIndex(name string, idx *distjoin.QuadIndex) error {
	return r.Register(name, "quadtree", idx.AsSpatialIndex())
}

// OpenFile opens a persisted R*-tree (CreateIndexFile + Flush) and registers
// it. The registry owns the index and closes it on Close.
func (r *Registry) OpenFile(name, path string) error {
	idx, err := distjoin.OpenIndexFile(path, nil)
	if err != nil {
		return fmt.Errorf("server: opening index %q from %s: %w", name, path, err)
	}
	e := &regEntry{name: name, kind: "rtree", si: idx.AsSpatialIndex(), close: idx.Close}
	if err := r.add(e); err != nil {
		idx.Close()
		return err
	}
	return nil
}

func (r *Registry) add(e *regEntry) error {
	if e.name == "" {
		return fmt.Errorf("server: index name must be non-empty")
	}
	if e.si == nil {
		return fmt.Errorf("server: index %q is nil", e.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("server: index %q already registered", e.name)
	}
	r.entries[e.name] = e
	return nil
}

// Get returns the named index for query construction.
func (r *Registry) Get(name string) (distjoin.SpatialIndex, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown index %q", name)
	}
	return e.si, nil
}

// List returns every registered index, sorted by name.
func (r *Registry) List() []IndexInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]IndexInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, IndexInfo{
			Name:    e.name,
			Kind:    e.kind,
			Objects: e.si.NumObjects(),
			Dims:    e.si.Dims(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close releases every registry-owned index (those added with OpenFile) and
// empties the registry. It returns the first close error.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for name, e := range r.entries {
		if e.close != nil {
			if err := e.close(); err != nil && first == nil {
				first = err
			}
		}
		delete(r.entries, name)
	}
	return first
}
