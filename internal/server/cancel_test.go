package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
)

// waitCursorIdle polls until no pull holds the cursor's op lock.
func waitCursorIdle(t *testing.T, c *cursor) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.op.TryLock() {
			c.op.Unlock()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cursor still mid-pull after 10s")
}

// TestClientDisconnectStopsEngineWork slams the socket partway through a
// huge NDJSON stream and asserts the server stops doing engine work on the
// abandoned response — the per-pull context died, so the pull loop exits
// between Next calls — while the cursor itself stays open and resumable.
func TestClientDisconnectStopsEngineWork(t *testing.T) {
	f := newFixture(t, 1200, 1200, func(c *Config) {
		c.MaxBatch = 10_000_000 // let one stream ask for far more than exists
	})
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})

	resp, err := f.ts.Client().Get(f.ts.URL + "/v1/cursor/" + cr.Cursor + "/stream?k=5000000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(resp.Body, make([]byte, 512)); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	resp.Body.Close() // disconnect with millions of pairs still unstreamed

	c, herr := f.srv.table.lookup(cr.Cursor)
	if herr != nil {
		t.Fatalf("cursor vanished after disconnect: %v", herr.Msg)
	}
	waitCursorIdle(t, c)

	// The engine must be quiescent now: its counters stop advancing.
	s1 := c.stats.Snapshot()
	time.Sleep(100 * time.Millisecond)
	s2 := c.stats.Snapshot()
	if s2.PairsReported != s1.PairsReported || s2.DistCalcs != s1.DistCalcs || s2.QueuePops != s1.QueuePops {
		t.Fatalf("engine still working after client disconnect: %+v then %+v", s1, s2)
	}

	// Soft stop: the cursor survived and resumes exactly where it left off.
	code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=5", nil)
	if code != http.StatusOK {
		t.Fatalf("resume after disconnect: %d: %s", code, raw)
	}
	var nr NextResponse
	if err := json.Unmarshal(raw, &nr); err != nil {
		t.Fatal(err)
	}
	if len(nr.Pairs) != 5 || nr.Done || nr.Truncated != "" {
		t.Fatalf("resume pull = %d pairs done=%v truncated=%q", len(nr.Pairs), nr.Done, nr.Truncated)
	}
}

// TestPullTimeoutTruncates covers the soft per-pull deadline, both as a
// request parameter and as the server-wide default: the pull returns the
// prefix it drew in time, names the reason, and the cursor stays resumable.
func TestPullTimeoutTruncates(t *testing.T) {
	f := newFixture(t, 1200, 1200, func(c *Config) {
		c.MaxBatch = 10_000_000
		c.PullTimeout = 25 * time.Millisecond
	})
	for _, tc := range []struct {
		name, query string
	}{
		{"request-timeout_ms", "?k=5000000&timeout_ms=25"},
		{"config-default", "?k=5000000"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})
			code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next"+tc.query, nil)
			if code != http.StatusOK {
				t.Fatalf("timed-out pull: %d: %s", code, raw)
			}
			var nr NextResponse
			if err := json.Unmarshal(raw, &nr); err != nil {
				t.Fatal(err)
			}
			if nr.Truncated != "pull timeout" || nr.Done {
				t.Fatalf("pull = done=%v truncated=%q, want soft timeout truncation", nr.Done, nr.Truncated)
			}
			if len(nr.Pairs) == 0 {
				t.Fatal("25ms pull delivered nothing at all")
			}
			// Resumable: the next pull continues normally.
			code, raw = f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=3&timeout_ms=10000", nil)
			if code != http.StatusOK {
				t.Fatalf("resume: %d: %s", code, raw)
			}
		})
	}
}

// TestWallBudgetCancelsCursor checks the per-cursor total wall budget: a
// cursor older than MaxCursorWall is hard-canceled regardless of how
// diligently the client pulls, the pull answers 410, and the query trace
// lands error-annotated.
func TestWallBudgetCancelsCursor(t *testing.T) {
	f := newFixture(t, 300, 300, func(c *Config) {
		c.MaxCursorWall = 200 * time.Millisecond
	})
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})
	if code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=5", nil); code != http.StatusOK {
		t.Fatalf("pull inside the budget: %d: %s", code, raw)
	}
	time.Sleep(400 * time.Millisecond)
	code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=5", nil)
	if code != http.StatusGone {
		t.Fatalf("pull past the wall budget: %d: %s, want 410", code, raw)
	}
	if !strings.Contains(string(raw), "wall budget") {
		t.Fatalf("410 body does not name the wall budget: %s", raw)
	}
	if tr := f.tracer.Trace(cr.Cursor); tr == nil || !strings.Contains(tr.Error, "canceled") {
		t.Fatalf("trace after wall-budget cancel = %+v", tr)
	}
}

// TestDeleteInterruptsLiveStream checks that DELETE on a cursor serving a
// long stream does not wait the stream out: the hard cancel reaches the
// live engine, the stream ends with the cancellation in its trailer, and
// the DELETE completes promptly.
func TestDeleteInterruptsLiveStream(t *testing.T) {
	f := newFixture(t, 1200, 1200, func(c *Config) {
		c.MaxBatch = 10_000_000
	})
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})

	bodyCh := make(chan string, 1)
	go func() {
		resp, err := f.ts.Client().Get(f.ts.URL + "/v1/cursor/" + cr.Cursor + "/stream?k=5000000")
		if err != nil {
			bodyCh <- "stream error: " + err.Error()
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		bodyCh <- string(raw)
	}()

	// Wait until the stream actually holds the cursor.
	c, herr := f.srv.table.lookup(cr.Cursor)
	if herr != nil {
		t.Fatal(herr.Msg)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !c.op.TryLock() {
			break // a pull holds it: the stream is live
		}
		c.op.Unlock()
		time.Sleep(2 * time.Millisecond)
	}

	t0 := time.Now()
	code, raw := f.do(t, http.MethodDelete, "/v1/cursor/"+cr.Cursor, nil)
	if code != http.StatusNoContent {
		t.Fatalf("DELETE on streaming cursor: %d: %s", code, raw)
	}
	if d := time.Since(t0); d > 10*time.Second {
		t.Fatalf("DELETE waited %v for the stream — cancel did not interrupt it", d)
	}
	body := <-bodyCh
	lines := strings.Split(strings.TrimSpace(body), "\n")
	trailer := lines[len(lines)-1]
	if !strings.Contains(trailer, "canceled") {
		t.Fatalf("stream trailer does not carry the cancellation: %s", trailer)
	}
}

// TestDrainReadiness checks the drain switch: /readyz flips to 503 and new
// queries are refused, while a live cursor's terminal state stays visible.
func TestDrainReadiness(t *testing.T) {
	f := newFixture(t, 100, 100, nil)
	if code, raw := f.do(t, http.MethodGet, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d: %s", code, raw)
	}
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})

	f.srv.beginDrain()
	if code, _ := f.do(t, http.MethodGet, "/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", code)
	}
	if code, _ := f.do(t, http.MethodPost, "/v1/query",
		QueryRequest{Kind: "join", Index1: "water", Index2: "roads"}); code != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: %d, want 503", code)
	}
	// The drained cursor was hard-canceled: its next pull reports the
	// terminal state instead of hanging or streaming on.
	code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=5", nil)
	if code != http.StatusGone {
		t.Fatalf("pull on drained cursor: %d: %s, want 410", code, raw)
	}
	if !strings.Contains(string(raw), "shutting down") {
		t.Fatalf("410 body does not name the drain: %s", raw)
	}
}

// TestHandlerPanicRecovers drives a panic out of the engine mid-pull (via a
// BaseOptions hook) and asserts the panic-recovery path: the response is a
// JSON 500, the cursor is latched failed with its engine closed (the trace
// lands error-annotated), and later pulls answer 410.
func TestHandlerPanicRecovers(t *testing.T) {
	f := newFixture(t, 100, 100, func(c *Config) {
		c.BaseOptions.ExactDist = func(o1, o2 distjoin.ObjID) (float64, error) {
			panic("boom")
		}
	})
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})
	code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=1", nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking pull: %d: %s, want 500", code, raw)
	}
	if !strings.Contains(string(raw), "boom") {
		t.Fatalf("500 body does not carry the panic value: %s", raw)
	}
	code, raw = f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=1", nil)
	if code != http.StatusGone || !strings.Contains(string(raw), "panic") {
		t.Fatalf("pull after panic: %d: %s, want 410 naming the panic", code, raw)
	}
	if tr := f.tracer.Trace(cr.Cursor); tr == nil || !strings.Contains(tr.Error, "panic") {
		t.Fatalf("trace after panic = %+v", tr)
	}
	if code, _ := f.do(t, http.MethodGet, "/healthz", nil); code != http.StatusOK {
		t.Fatal("server unhealthy after a recovered panic")
	}
}

// TestRunningShutdownDrains is the in-process version of the SIGTERM smoke:
// a live stream is interrupted by Shutdown, its trailer names the drain,
// and Shutdown returns cleanly within the window.
func TestRunningShutdownDrains(t *testing.T) {
	reg := NewRegistry()
	water := distjoin.NewIndexFromPoints(datagen.Water(7, 1200))
	roads := distjoin.NewIndexFromPoints(datagen.Roads(8, 1200))
	t.Cleanup(func() { water.Close(); roads.Close() })
	if err := reg.RegisterIndex("water", water); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterIndex("roads", roads); err != nil {
		t.Fatal(err)
	}
	running, err := Start("127.0.0.1:0", Config{Registry: reg, MaxBatch: 10_000_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer running.Close()
	base := "http://" + running.Addr()

	resp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"kind":"join","index1":"water","index2":"roads"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var cr CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("create: %s: %v", raw, err)
	}

	bodyCh := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/v1/cursor/" + cr.Cursor + "/stream?k=5000000")
		if err != nil {
			bodyCh <- "stream error: " + err.Error()
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		bodyCh <- string(raw)
	}()
	// Let the stream get going before pulling the plug.
	time.Sleep(100 * time.Millisecond)

	if err := running.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	body := <-bodyCh
	lines := strings.Split(strings.TrimSpace(body), "\n")
	trailer := lines[len(lines)-1]
	if !strings.Contains(trailer, "shutting down") {
		t.Fatalf("stream trailer does not carry the drain cancellation: %s", trailer)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still serving after Shutdown")
	}
}
