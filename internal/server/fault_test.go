package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"distjoin"
	"distjoin/internal/faultstore"
	"distjoin/internal/pager"
)

// TestFaultedCursorSurfacesError backs a hybrid-queue cursor with a
// fault-injecting page store and checks the whole failure path: the pull
// that hits the fault answers 500 with the injected error in the body, the
// cursor latches failed (every later pull answers 410 with the same
// error), the info endpoint reports the failed state, and the query trace
// lands in the flight recorder annotated with the error.
func TestFaultedCursorSurfacesError(t *testing.T) {
	f := newFixture(t, 120, 200, func(c *Config) {
		c.BaseOptions = distjoin.Options{
			QueueStore: func(pageSize int) (pager.Store, error) {
				mem, err := pager.NewMemStore(pageSize)
				if err != nil {
					return nil, err
				}
				// The third page write dies permanently — deep enough that
				// the queue has spilled, early enough to hit within one pull.
				return faultstore.New(mem, faultstore.Config{Seed: 1, FailWriteAt: 3}), nil
			},
		}
	})

	cr := f.create(t, QueryRequest{
		Kind: "join", Index1: "water", Index2: "roads",
		Queue: "hybrid", HybridDT: 1, // everything beyond distance 1 spills to disk
	})

	// Drain until the injected fault surfaces.
	var failBody errorBody
	for pulls := 0; ; pulls++ {
		if pulls > 10_000 {
			t.Fatal("fault never surfaced")
		}
		code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=50", nil)
		if code == http.StatusOK {
			continue
		}
		if code != http.StatusInternalServerError {
			t.Fatalf("faulted pull: status %d: %s", code, raw)
		}
		if err := json.Unmarshal(raw, &failBody); err != nil {
			t.Fatalf("error body: %v: %s", err, raw)
		}
		break
	}
	if !strings.Contains(failBody.Error, faultstore.ErrInjected.Error()) {
		t.Fatalf("injected error not in response body: %q", failBody.Error)
	}

	// The cursor is terminal: subsequent pulls answer 410 Gone, carrying
	// the latched error.
	code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=1", nil)
	if code != http.StatusGone {
		t.Fatalf("pull after failure: %d: %s", code, raw)
	}
	var gone errorBody
	if err := json.Unmarshal(raw, &gone); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gone.Error, faultstore.ErrInjected.Error()) {
		t.Fatalf("410 body lost the error: %q", gone.Error)
	}

	// Info still works and reports the failed state with the error.
	code, raw = f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor, nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d: %s", code, raw)
	}
	var info InfoResponse
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != "failed" || !strings.Contains(info.Error, faultstore.ErrInjected.Error()) {
		t.Fatalf("info = %+v", info)
	}

	// The engine was closed on failure, so the trace has landed in the
	// flight recorder, error-annotated under the cursor id.
	tr := f.tracer.Trace(cr.Cursor)
	if tr == nil {
		t.Fatal("no flight-recorder trace for failed cursor")
	}
	if tr.Error == "" || !strings.Contains(tr.Error, faultstore.ErrInjected.Error()) {
		t.Fatalf("trace error = %q, want injected fault", tr.Error)
	}

	// Deleting a failed cursor is allowed and frees its table slot.
	if code, _ := f.do(t, http.MethodDelete, "/v1/cursor/"+cr.Cursor, nil); code != http.StatusNoContent {
		t.Fatalf("delete failed cursor: %d", code)
	}
	if n := f.srv.OpenCursors(); n != 0 {
		t.Fatalf("cursor table not empty: %d", n)
	}
	if used := f.srv.BudgetUsed(); used != 0 {
		t.Fatalf("budget leaked after failure: %d", used)
	}
}

// TestFaultAtCreateTime checks a store that cannot even open: cursor
// creation fails cleanly with no table slot or budget held.
func TestFaultAtCreateTime(t *testing.T) {
	boom := errors.New("scratch volume offline")
	f := newFixture(t, 60, 60, func(c *Config) {
		c.BaseOptions = distjoin.Options{
			QueueStore: func(pageSize int) (pager.Store, error) { return nil, boom },
		}
	})
	code, raw := f.do(t, http.MethodPost, "/v1/query", QueryRequest{
		Kind: "join", Index1: "water", Index2: "roads", Queue: "hybrid", HybridDT: 1,
	})
	if code != http.StatusInternalServerError {
		t.Fatalf("create over dead store: %d: %s", code, raw)
	}
	if !strings.Contains(string(raw), boom.Error()) {
		t.Fatalf("error lost: %s", raw)
	}
	if f.srv.OpenCursors() != 0 || f.srv.BudgetUsed() != 0 {
		t.Fatalf("leak after failed create: cursors=%d budget=%d",
			f.srv.OpenCursors(), f.srv.BudgetUsed())
	}
}
