package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"distjoin"
	"distjoin/internal/qtrace"
)

// cursorState is the lifecycle of a server-side cursor.
//
//	open ──next──▶ open            pairs remain
//	open ──next──▶ done            iterator exhausted (engine closed)
//	open ──next──▶ failed          engine error (engine closed, error latched)
//	any  ──TTL───▶ evicted         removed from table, tombstoned
//	any  ──DELETE▶ (gone)          removed from table, tombstoned
//
// done and failed cursors keep their table slot (so clients can observe the
// terminal state: done → {"done":true}, failed → 410 with the original
// error) until the TTL or an explicit DELETE reclaims it; the underlying
// engine iterator is closed the moment the terminal state is entered, which
// is also when its query trace lands in the flight recorder.
type cursorState int

const (
	cursorOpen cursorState = iota
	cursorDone
	cursorFailed
)

// errCursorBusy marks a concurrent next on a cursor already serving one.
var errCursorBusy = errors.New("server: cursor is busy serving another request")

// Cancellation causes: each hard cancel of a cursor's engine context names
// why, and the cause rides the surfaced ErrCanceled (context.Cause) into
// the cursor's terminal error, its 410 body and its query trace.
var (
	errCursorDeleted  = errors.New("cursor deleted by client")
	errCursorExpired  = errors.New("cursor expired (TTL)")
	errCursorDrained  = errors.New("server shutting down")
	errCursorWallOver = errors.New("cursor wall budget exceeded")
)

// cursor is one resumable incremental-join cursor: a live engine iterator
// plus the bookkeeping that lets it survive client pauses.
//
// Two locks with distinct roles: op is held for the whole duration of a
// next/stream pull (acquired with TryLock, so a competing pull gets 409
// instead of queueing behind an unbounded drain), st guards the state
// fields and is only ever held briefly. Lock order is op then st; the
// janitor, which inspects st first, only ever TryLocks op and so cannot
// deadlock against that order.
type cursor struct {
	id      string
	kind    string
	index1  string
	index2  string
	queryID string
	budget  int64 // reserved queue-memory bytes, released on close
	created time.Time

	next  func() (distjoin.Pair, bool, error)
	close func() error
	abort func(error) error // close latching a terminal error the engine never saw
	stats *distjoin.Stats   // per-cursor counters, merged into the server total on close

	// sc is the query span's W3C context (minted by PreBegin at creation);
	// client is the inbound traceparent that parented it, zero when the
	// create request carried none. Both are immutable after creation. pulls
	// numbers the pull spans of this cursor; it is only touched under op.
	sc     qtrace.SpanContext
	client qtrace.SpanContext
	pulls  int64

	// ctx is the engine's Options.Context: canceling it (cancel, with a
	// cause) interrupts a live pull mid-engine-work — the iterator
	// surfaces a sticky ErrCanceled and the cursor goes terminal. The
	// hard-cancel triggers are DELETE, TTL doom, the per-cursor wall
	// budget, and server drain; a mere client disconnect only stops the
	// pull loop (soft), keeping the cursor resumable. cancel is safe to
	// call multiple times and must be called on every terminal path so
	// the context tree (and any wall-budget timer) is released.
	ctx    context.Context
	cancel func(cause error)

	op sync.Mutex // held across one pull

	st       sync.Mutex // guards the fields below
	state    cursorState
	err      error // terminal engine error (state == cursorFailed)
	deadline time.Time
	doomed   bool // TTL fired mid-pull: evict when the pull releases op
	closed   bool // engine iterator has been closed
	reported int64
}

// closeEngine closes the underlying iterator exactly once. Callers hold st.
func (c *cursor) closeEngine() error {
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	if c.abort != nil {
		// Latch the cursor's terminal error (nil on clean paths; the
		// engine's own latched error wins) so the query trace is
		// annotated even for failures the engine never saw, such as a
		// recovered panic.
		err = c.abort(c.err)
	} else {
		err = c.close()
	}
	// The engine is gone; release the context tree (no-op if the engine
	// was canceled through it, mandatory if it completed normally — the
	// wall-budget timer must not outlive the cursor).
	c.hardCancel(nil)
	return err
}

// hardCancel cancels the cursor's engine context with the given cause.
func (c *cursor) hardCancel(cause error) {
	if c.cancel != nil {
		c.cancel(cause)
	}
}

// tombstone records why an evicted cursor left the table, so a late client
// gets 410 Gone with the reason instead of an indistinguishable 404.
type tombstone struct {
	id     string
	reason string
}

// maxTombstones bounds the eviction memory; old tombstones age out FIFO and
// their cursors then report 404 like any unknown id.
const maxTombstones = 1024

// cursorTable is the bounded cursor table: at most max live cursors, TTL
// eviction by a janitor sweep, and a tombstone ring for Gone responses.
type cursorTable struct {
	mu      sync.Mutex
	cursors map[string]*cursor
	tombs   map[string]string
	tombQ   []string
	max     int
}

func newCursorTable(max int) *cursorTable {
	return &cursorTable{
		cursors: make(map[string]*cursor),
		tombs:   make(map[string]string),
		max:     max,
	}
}

// insert adds a cursor, enforcing the table bound. The httpError carries
// 429 when the table is full.
func (t *cursorTable) insert(c *cursor) *httpError {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.cursors) >= t.max {
		return &httpError{
			Status: http.StatusTooManyRequests,
			Msg:    "cursor table is full (" + itoa(t.max) + " cursors); retry after a cursor closes or expires",
			Retry:  true,
		}
	}
	t.cursors[c.id] = c
	return nil
}

// lookup finds a live cursor, distinguishing evicted (410 + reason) from
// never-existed (404).
func (t *cursorTable) lookup(id string) (*cursor, *httpError) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.cursors[id]; ok {
		return c, nil
	}
	if reason, ok := t.tombs[id]; ok {
		return nil, &httpError{Status: http.StatusGone, Msg: "cursor " + id + " is gone: " + reason}
	}
	return nil, &httpError{Status: http.StatusNotFound, Msg: "no such cursor: " + id}
}

// remove drops a cursor from the table and tombstones it.
func (t *cursorTable) remove(id, reason string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.cursors[id]; !ok {
		return
	}
	delete(t.cursors, id)
	if len(t.tombQ) >= maxTombstones {
		delete(t.tombs, t.tombQ[0])
		t.tombQ = t.tombQ[1:]
	}
	t.tombs[id] = reason
	t.tombQ = append(t.tombQ, id)
}

// snapshot returns the live cursors (for sweep and shutdown).
func (t *cursorTable) snapshot() []*cursor {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*cursor, 0, len(t.cursors))
	for _, c := range t.cursors {
		out = append(out, c)
	}
	return out
}

// len returns the number of live cursors.
func (t *cursorTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cursors)
}

// itoa avoids strconv for the one message that needs it.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
