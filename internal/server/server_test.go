package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
)

// testFixture is an HTTP test server over small water/roads indexes.
type testFixture struct {
	srv    *Server
	ts     *httptest.Server
	tracer *distjoin.QueryTracer
	stats  *distjoin.Stats
}

// newFixture builds a server over water(nA) × roads(nB) with a tracer and
// whatever Config mutations the test needs.
func newFixture(t testing.TB, nA, nB int, mutate func(*Config)) *testFixture {
	t.Helper()
	water := distjoin.NewIndexFromPoints(datagen.Water(7, nA))
	roads := distjoin.NewIndexFromPoints(datagen.Roads(8, nB))
	t.Cleanup(func() { water.Close(); roads.Close() })
	reg := NewRegistry()
	if err := reg.RegisterIndex("water", water); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterIndex("roads", roads); err != nil {
		t.Fatal(err)
	}
	f := &testFixture{
		tracer: distjoin.NewQueryTracer(distjoin.QueryTraceConfig{FlightSize: 64}),
		stats:  &distjoin.Stats{},
	}
	cfg := Config{
		Registry: reg,
		Tracer:   f.tracer,
		Stats:    f.stats,
		TTL:      time.Minute,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f.srv = NewServer(cfg)
	f.ts = httptest.NewServer(f.srv.Handler())
	t.Cleanup(func() { f.ts.Close(); f.srv.Close() })
	return f
}

// do performs one request and returns status + body.
func (f *testFixture) do(t testing.TB, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// create opens a cursor and fails the test on a non-201.
func (f *testFixture) create(t testing.TB, req QueryRequest) CreateResponse {
	t.Helper()
	code, raw := f.do(t, http.MethodPost, "/v1/query", req)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	var cr CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("create: %v: %s", err, raw)
	}
	return cr
}

// next pulls k pairs and fails the test on a non-200.
func (f *testFixture) next(t testing.TB, id string, k int) NextResponse {
	t.Helper()
	code, raw := f.do(t, http.MethodGet, fmt.Sprintf("/v1/cursor/%s/next?k=%d", id, k), nil)
	if code != http.StatusOK {
		t.Fatalf("next: status %d: %s", code, raw)
	}
	var nr NextResponse
	if err := json.Unmarshal(raw, &nr); err != nil {
		t.Fatalf("next: %v: %s", err, raw)
	}
	return nr
}

func TestBasicCursorSession(t *testing.T) {
	f := newFixture(t, 150, 250, nil)

	code, raw := f.do(t, http.MethodGet, "/v1/indexes", nil)
	if code != http.StatusOK {
		t.Fatalf("indexes: %d: %s", code, raw)
	}
	var infos []IndexInfo
	if err := json.Unmarshal(raw, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "roads" || infos[1].Name != "water" {
		t.Fatalf("indexes = %+v", infos)
	}
	if infos[1].Objects != 150 || infos[1].Dims != 2 {
		t.Fatalf("water info = %+v", infos[1])
	}

	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 25})
	if cr.Kind != "join" || cr.QueryID != cr.Cursor {
		t.Fatalf("create = %+v", cr)
	}

	// Pull in two batches; distances must be globally non-decreasing across
	// the batch boundary — the resumable-cursor contract.
	n1 := f.next(t, cr.Cursor, 10)
	if len(n1.Pairs) != 10 || n1.Done || n1.Reported != 10 {
		t.Fatalf("first pull = %+v", n1)
	}
	n2 := f.next(t, cr.Cursor, 100)
	if len(n2.Pairs) != 15 || !n2.Done || n2.Reported != 25 {
		t.Fatalf("second pull: %d pairs done=%v reported=%d", len(n2.Pairs), n2.Done, n2.Reported)
	}
	last := n1.Pairs[0].Dist
	for _, p := range append(n1.Pairs[1:], n2.Pairs...) {
		if p.Dist < last {
			t.Fatalf("distance order violated: %g after %g", p.Dist, last)
		}
		last = p.Dist
	}

	// Exhausted cursor: further pulls report done with no pairs.
	n3 := f.next(t, cr.Cursor, 5)
	if len(n3.Pairs) != 0 || !n3.Done || n3.Reported != 25 {
		t.Fatalf("post-exhaustion pull = %+v", n3)
	}

	// Info reflects the done state; the engine is already closed, so the
	// query trace has landed under the cursor id.
	code, raw = f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor, nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d: %s", code, raw)
	}
	var info InfoResponse
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != "done" || info.Reported != 25 {
		t.Fatalf("info = %+v", info)
	}
	tr := f.tracer.Trace(cr.Cursor)
	if tr == nil {
		t.Fatalf("no flight-recorder trace for %s", cr.Cursor)
	}
	if tr.Kind != "join" || tr.Error != "" || tr.Resources.Pairs != 25 {
		t.Fatalf("trace = kind %q err %q pairs %d", tr.Kind, tr.Error, tr.Resources.Pairs)
	}

	// Delete, then the id answers 410 (tombstoned), not 404.
	code, _ = f.do(t, http.MethodDelete, "/v1/cursor/"+cr.Cursor, nil)
	if code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	code, raw = f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=1", nil)
	if code != http.StatusGone {
		t.Fatalf("next after delete: %d: %s", code, raw)
	}
	code, _ = f.do(t, http.MethodGet, "/v1/cursor/never-existed/next?k=1", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown cursor: %d", code)
	}

	// The per-cursor counters were merged into the server aggregate.
	if got := f.stats.Snapshot().PairsReported; got != 25 {
		t.Fatalf("aggregated PairsReported = %d, want 25", got)
	}
}

func TestCursorKindsAndOptions(t *testing.T) {
	f := newFixture(t, 120, 200, nil)
	for _, tc := range []struct {
		name string
		req  QueryRequest
	}{
		{"semijoin", QueryRequest{Kind: "semijoin", Index1: "water", Index2: "roads", Filter: "globalall"}},
		{"knn", QueryRequest{Kind: "knn", K: 3, Index1: "water", Index2: "roads", Filter: "inside2"}},
		{"clustering", QueryRequest{Kind: "clustering", Index1: "water", Index2: "roads"}},
		{"hybrid-queue", QueryRequest{Kind: "join", Index1: "water", Index2: "roads", Queue: "hybrid", HybridDT: 500, MaxPairs: 50}},
		{"manhattan-basic", QueryRequest{Kind: "join", Index1: "water", Index2: "roads", Metric: "manhattan", Traversal: "basic", MaxPairs: 50}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cr := f.create(t, tc.req)
			nr := f.next(t, cr.Cursor, 40)
			if len(nr.Pairs) == 0 {
				t.Fatalf("no pairs for %+v", tc.req)
			}
			code, _ := f.do(t, http.MethodDelete, "/v1/cursor/"+cr.Cursor, nil)
			if code != http.StatusNoContent {
				t.Fatalf("delete: %d", code)
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	f := newFixture(t, 60, 60, nil)
	for name, tc := range map[string]struct {
		req  QueryRequest
		code int
	}{
		"unknown-index":  {QueryRequest{Kind: "join", Index1: "nope", Index2: "roads"}, http.StatusNotFound},
		"unknown-kind":   {QueryRequest{Kind: "cartesian", Index1: "water", Index2: "roads"}, http.StatusBadRequest},
		"unknown-metric": {QueryRequest{Kind: "join", Index1: "water", Index2: "roads", Metric: "cosine"}, http.StatusBadRequest},
		"unknown-queue":  {QueryRequest{Kind: "join", Index1: "water", Index2: "roads", Queue: "disk"}, http.StatusBadRequest},
		"unknown-filter": {QueryRequest{Kind: "semijoin", Index1: "water", Index2: "roads", Filter: "psychic"}, http.StatusBadRequest},
		"neg-max-pairs":  {QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: -1}, http.StatusBadRequest},
		"neg-budget":     {QueryRequest{Kind: "join", Index1: "water", Index2: "roads", QueueBudget: -5}, http.StatusBadRequest},
		"bad-range":      {QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MinDist: 10, MaxDist: 5}, http.StatusBadRequest},
	} {
		t.Run(name, func(t *testing.T) {
			code, raw := f.do(t, http.MethodPost, "/v1/query", tc.req)
			if code != tc.code {
				t.Fatalf("status %d, want %d: %s", code, tc.code, raw)
			}
			var eb errorBody
			if err := json.Unmarshal(raw, &eb); err != nil || eb.Error == "" || eb.Status != tc.code {
				t.Fatalf("error body = %s", raw)
			}
		})
	}
	// No budget leak from refused creations.
	if used := f.srv.BudgetUsed(); used != 0 {
		t.Fatalf("budget leaked: %d", used)
	}
	if n := f.srv.OpenCursors(); n != 0 {
		t.Fatalf("cursors leaked: %d", n)
	}
}

func TestAdmissionControl(t *testing.T) {
	f := newFixture(t, 60, 60, func(c *Config) {
		c.MaxCursors = 2
		c.MemBudget = 10 << 20
		c.DefaultCursorBudget = 4 << 20
	})
	req := QueryRequest{Kind: "join", Index1: "water", Index2: "roads"}
	c1 := f.create(t, req)
	_ = f.create(t, req)

	// Third cursor: table is full → 429 with Retry-After.
	code, raw := f.do(t, http.MethodPost, "/v1/query", req)
	if code != http.StatusTooManyRequests {
		t.Fatalf("table-full create: %d: %s", code, raw)
	}

	// Free a slot; a cursor asking for more budget than remains is refused
	// even though the table has room.
	if code, _ := f.do(t, http.MethodDelete, "/v1/cursor/"+c1.Cursor, nil); code != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	big := req
	big.QueueBudget = 7 << 20 // 4 MiB still reserved by cursor 2, budget 10 MiB
	code, raw = f.do(t, http.MethodPost, "/v1/query", big)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget create: %d: %s", code, raw)
	}
	small := req
	small.QueueBudget = 2 << 20
	cr := f.create(t, small)
	if cr.BudgetBytes != 2<<20 {
		t.Fatalf("budget = %d", cr.BudgetBytes)
	}
	if used := f.srv.BudgetUsed(); used != (4<<20)+(2<<20) {
		t.Fatalf("budget used = %d", used)
	}
}

func TestStreamNDJSON(t *testing.T) {
	f := newFixture(t, 150, 250, nil)
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 30})

	resp, err := f.ts.Client().Get(f.ts.URL + "/v1/cursor/" + cr.Cursor + "/stream?k=20")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var pairs []PairJSON
	var trailer *streamTrailer
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if trailer != nil {
			t.Fatalf("line after trailer: %s", line)
		}
		if strings.Contains(line, `"done"`) {
			trailer = &streamTrailer{}
			if err := json.Unmarshal([]byte(line), trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var p PairJSON
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad pair line %q: %v", line, err)
		}
		pairs = append(pairs, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 || trailer == nil || trailer.Done || trailer.Reported != 20 {
		t.Fatalf("stream: %d pairs, trailer %+v", len(pairs), trailer)
	}

	// The remaining 10 pairs resume over the plain next endpoint — the two
	// transports share one cursor position.
	nr := f.next(t, cr.Cursor, 100)
	if len(nr.Pairs) != 10 || !nr.Done {
		t.Fatalf("resume after stream: %d pairs done=%v", len(nr.Pairs), nr.Done)
	}
	if nr.Pairs[0].Dist < pairs[len(pairs)-1].Dist {
		t.Fatal("stream→next boundary violated distance order")
	}
}

// TestResponsesMatchSchema validates every response shape against the
// checked-in API schema — the same file the CI distjoind smoke step uses.
func TestResponsesMatchSchema(t *testing.T) {
	schema := loadAPISchema(t)
	f := newFixture(t, 100, 150, nil)

	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 8})
	checkAPIDoc(t, schema, "create_response", mustMarshal(t, cr))

	code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=5", nil)
	if code != http.StatusOK {
		t.Fatalf("next: %d", code)
	}
	checkAPIDoc(t, schema, "next_response", raw)

	code, raw = f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor, nil)
	if code != http.StatusOK {
		t.Fatalf("info: %d", code)
	}
	checkAPIDoc(t, schema, "info_response", raw)

	code, raw = f.do(t, http.MethodGet, "/v1/indexes", nil)
	if code != http.StatusOK {
		t.Fatalf("indexes: %d", code)
	}
	checkAPIDoc(t, schema, "index_list", raw)

	code, raw = f.do(t, http.MethodGet, "/v1/cursor/ghost/next", nil)
	if code != http.StatusNotFound {
		t.Fatalf("ghost: %d", code)
	}
	checkAPIDoc(t, schema, "error", raw)
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func loadAPISchema(t testing.TB) map[string]any {
	t.Helper()
	raw, err := os.ReadFile("testdata/cursorapi.schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("schema is not valid JSON: %v", err)
	}
	return schema
}

// checkAPIDoc validates raw against one named definition with the same
// dependency-free draft-07 subset the qtrace schema test uses.
func checkAPIDoc(t *testing.T, schema map[string]any, def string, raw []byte) {
	t.Helper()
	defs, ok := schema["definitions"].(map[string]any)
	if !ok {
		t.Fatal("schema has no definitions")
	}
	sub, ok := defs[def].(map[string]any)
	if !ok {
		t.Fatalf("schema has no definition %q", def)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s: invalid JSON: %v", def, err)
	}
	if err := validateAPI(schema, sub, doc, "$"); err != nil {
		t.Errorf("%s violates schema: %v\n%s", def, err, raw)
	}
}

func validateAPI(root, schema map[string]any, doc any, path string) error {
	if ref, ok := schema["$ref"].(string); ok {
		name := ref[strings.LastIndex(ref, "/")+1:]
		target, ok := root["definitions"].(map[string]any)[name].(map[string]any)
		if !ok {
			return fmt.Errorf("%s: unresolvable $ref %q", path, ref)
		}
		return validateAPI(root, target, doc, path)
	}
	if typ, ok := schema["type"].(string); ok {
		okType := false
		switch typ {
		case "object":
			_, okType = doc.(map[string]any)
		case "array":
			_, okType = doc.([]any)
		case "string":
			_, okType = doc.(string)
		case "boolean":
			_, okType = doc.(bool)
		case "number":
			_, okType = doc.(float64)
		case "integer":
			fv, isNum := doc.(float64)
			okType = isNum && fv == float64(int64(fv))
		}
		if !okType {
			return fmt.Errorf("%s: want %s, got %T (%v)", path, typ, doc, doc)
		}
	}
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, v := range enum {
			if v == doc {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("%s: %v not in enum %v", path, doc, enum)
		}
	}
	if obj, ok := doc.(map[string]any); ok {
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				if _, present := obj[r.(string)]; !present {
					return fmt.Errorf("%s: missing required %q", path, r)
				}
			}
		}
		if props, ok := schema["properties"].(map[string]any); ok {
			for name, sub := range props {
				if v, present := obj[name]; present {
					if err := validateAPI(root, sub.(map[string]any), v, path+"."+name); err != nil {
						return err
					}
				}
			}
		}
	}
	if arr, ok := doc.([]any); ok {
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range arr {
				if err := validateAPI(root, items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
