package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distjoin"
	"distjoin/internal/obs"
	"distjoin/internal/otlpexport"
	"distjoin/internal/pager"
	"distjoin/internal/qtrace"
)

// syncBuffer is a goroutine-safe bytes.Buffer for the slog sink (handlers
// run on server goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// traceFixture is the full observability rig: fixture server wired to an
// in-process OTLP collector, a RED collector, and a JSON request log.
type traceFixture struct {
	*testFixture
	col *otlpexport.Collector
	exp *otlpexport.Exporter
	red *obs.RED
	log *syncBuffer
}

func newTraceFixture(t *testing.T) *traceFixture {
	t.Helper()
	col := &otlpexport.Collector{}
	cts := httptest.NewServer(col)
	t.Cleanup(cts.Close)
	exp := otlpexport.New(otlpexport.Config{
		Endpoint: cts.URL + "/v1/traces",
		Service:  "distjoind-test",
		Retry:    pager.RetryPolicy{MaxAttempts: 2, Backoff: time.Nanosecond, Sleep: func(time.Duration) {}},
	})
	t.Cleanup(func() { exp.Close() })
	tf := &traceFixture{col: col, exp: exp, red: obs.NewRED(obs.REDConfig{}), log: &syncBuffer{}}
	tf.testFixture = newFixture(t, 120, 160, func(cfg *Config) {
		// The tracer's completion hook ships every finished query's engine
		// span tree; the server ships one span per pull.
		cfg.Tracer = distjoin.NewQueryTracer(distjoin.QueryTraceConfig{
			FlightSize: 8,
			OnComplete: exp.OnComplete,
		})
		cfg.Exporter = exp
		cfg.RED = tf.red
		cfg.Logger = slog.New(slog.NewJSONHandler(tf.log, nil))
	})
	return tf
}

// doTraced performs one request carrying the client's trace context and
// returns status, body, and the echoed response span context.
func (tf *traceFixture) doTraced(t *testing.T, method, path, traceparent string, body any) (int, []byte, qtrace.SpanContext) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, tf.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
		req.Header.Set("tracestate", "vendor=distjoin-test")
	}
	resp, err := tf.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	echo, _ := qtrace.ParseTraceParent(resp.Header.Get("Traceparent"))
	return resp.StatusCode, buf.Bytes(), echo
}

// TestStitchedTraceAcrossPulls is the acceptance path of the tracing work:
// a client that sends one traceparent across a create + multi-pull session
// gets exactly one distributed trace at the collector — the cursor's query
// span (and the engine tree under it) a child of the client's span, every
// pull a sibling server span linked to the query span, nothing dropped.
func TestStitchedTraceAcrossPulls(t *testing.T) {
	tf := newTraceFixture(t)
	const clientTP = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	const clientTrace = "0af7651916cd43dd8448eb211c80319c"
	const clientSpan = "b7ad6b7169203331"

	code, raw, createEcho := tf.doTraced(t, http.MethodPost, "/v1/query", clientTP,
		QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 30})
	if code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", code, raw)
	}
	var cr CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if createEcho.TraceID.String() != clientTrace {
		t.Fatalf("create echoed trace %s, want the client's %s", createEcho.TraceID, clientTrace)
	}
	if createEcho.SpanID.String() == clientSpan {
		t.Fatal("create echoed the client's own span id instead of the query span's")
	}
	if cr.TraceParent != createEcho.TraceParent() {
		t.Fatalf("body traceparent %q != header %q", cr.TraceParent, createEcho.TraceParent())
	}

	// Pull to exhaustion, every request carrying the client context.
	var pulls int
	for done := false; !done; pulls++ {
		if pulls > 20 {
			t.Fatal("cursor never exhausted")
		}
		code, raw, echo := tf.doTraced(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=10", clientTP, nil)
		if code != http.StatusOK {
			t.Fatalf("pull %d: status %d: %s", pulls, code, raw)
		}
		if echo.TraceID.String() != clientTrace {
			t.Fatalf("pull %d echoed trace %s", pulls, echo.TraceID)
		}
		var nr NextResponse
		if err := json.Unmarshal(raw, &nr); err != nil {
			t.Fatal(err)
		}
		done = nr.Done
	}

	if err := tf.exp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if st := tf.exp.StatsSnapshot(); st.DroppedQueue != 0 || st.DroppedExport != 0 {
		t.Fatalf("exporter dropped spans: %+v", st)
	}
	if cs := tf.col.Stats(); cs.Rejected != 0 {
		t.Fatalf("collector rejected posts: %+v", cs)
	}

	// ONE stitched trace: everything the session produced shares the
	// client's trace id.
	byTrace := tf.col.Traces()
	spans, ok := byTrace[clientTrace]
	if !ok {
		t.Fatalf("collector has traces %v, want %s", tf.col.TraceIDs(), clientTrace)
	}
	if len(byTrace) != 1 {
		t.Fatalf("session scattered across %d traces: %v", len(byTrace), tf.col.TraceIDs())
	}

	var query *otlpexport.WireSpan
	var pullSpans []otlpexport.WireSpan
	for i := range spans {
		switch {
		case strings.HasPrefix(spans[i].Name, "query "):
			query = &spans[i]
		case spans[i].Name == "cursor next":
			pullSpans = append(pullSpans, spans[i])
		}
	}
	if query == nil {
		t.Fatalf("no query span among %d spans", len(spans))
	}
	if query.ParentSpanID != clientSpan {
		t.Fatalf("query span parent %s, want the client span %s", query.ParentSpanID, clientSpan)
	}
	if query.SpanID != createEcho.SpanID.String() {
		t.Fatalf("query span id %s, but create echoed %s", query.SpanID, createEcho.SpanID)
	}
	if len(pullSpans) != pulls {
		t.Fatalf("%d pull spans for %d pulls", len(pullSpans), pulls)
	}
	for _, ps := range pullSpans {
		if ps.ParentSpanID != clientSpan {
			t.Errorf("pull span %s parent %s, want client span", ps.SpanID, ps.ParentSpanID)
		}
		if ps.Kind != otlpexport.KindServer {
			t.Errorf("pull span kind %d, want server", ps.Kind)
		}
		if len(ps.Links) != 1 || ps.Links[0].SpanID != query.SpanID || ps.Links[0].TraceID != clientTrace {
			t.Errorf("pull span %s does not link the query span: %+v", ps.SpanID, ps.Links)
		}
	}
	// Engine phase spans nested beneath the query span.
	engineChildren := 0
	for _, sp := range spans {
		if sp.ParentSpanID == query.SpanID {
			engineChildren++
		}
	}
	if engineChildren == 0 {
		t.Error("no engine spans nested under the query span")
	}

	// RED saw the pulls; the request log carries the trace id.
	var metrics strings.Builder
	tf.red.WritePrometheus(&metrics)
	if !strings.Contains(metrics.String(), `distjoin_http_requests_total{endpoint="next",code="2xx"}`) {
		t.Errorf("RED exposition missing pull counts:\n%s", metrics.String())
	}
	logged := tf.log.String()
	if !strings.Contains(logged, clientTrace) {
		t.Errorf("request log never mentions the trace id:\n%s", logged)
	}
	if !strings.Contains(logged, cr.Cursor) {
		t.Errorf("request log never mentions the cursor id:\n%s", logged)
	}
}

// TestUntracedSessionStillExportsOneTrace: no client traceparent — the
// server mints a root, echoes it, and pulls hang off the query span with no
// redundant self-link.
func TestUntracedSessionStillExportsOneTrace(t *testing.T) {
	tf := newTraceFixture(t)
	code, raw, createEcho := tf.doTraced(t, http.MethodPost, "/v1/query", "",
		QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 5})
	if code != http.StatusCreated {
		t.Fatalf("create: %d: %s", code, raw)
	}
	if !createEcho.Valid() {
		t.Fatal("untraced create did not echo a fresh traceparent")
	}
	var cr CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	for done := false; !done; {
		code, raw, echo := tf.doTraced(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=10", "", nil)
		if code != http.StatusOK {
			t.Fatalf("pull: %d: %s", code, raw)
		}
		if echo.TraceID != createEcho.TraceID {
			t.Fatalf("pull echoed trace %s, create minted %s", echo.TraceID, createEcho.TraceID)
		}
		var nr NextResponse
		if err := json.Unmarshal(raw, &nr); err != nil {
			t.Fatal(err)
		}
		done = nr.Done
	}
	if err := tf.exp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	byTrace := tf.col.Traces()
	if len(byTrace) != 1 {
		t.Fatalf("untraced session produced %d traces: %v", len(byTrace), tf.col.TraceIDs())
	}
	spans := byTrace[createEcho.TraceID.String()]
	for _, sp := range spans {
		if sp.Name == "cursor next" {
			if sp.ParentSpanID != createEcho.SpanID.String() {
				t.Errorf("pull span parent %s, want the query span %s", sp.ParentSpanID, createEcho.SpanID)
			}
			if len(sp.Links) != 0 {
				t.Errorf("pull span self-links its own parent: %+v", sp.Links)
			}
		}
	}
}

// TestStreamPullExportsSpan: the NDJSON path emits the same server span,
// annotated with the streamed pair count.
func TestStreamPullExportsSpan(t *testing.T) {
	tf := newTraceFixture(t)
	const clientTP = "00-11111111111111111111111111111111-2222222222222222-01"
	code, raw, _ := tf.doTraced(t, http.MethodPost, "/v1/query", clientTP,
		QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 8})
	if code != http.StatusCreated {
		t.Fatalf("create: %d: %s", code, raw)
	}
	var cr CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	code, _, echo := tf.doTraced(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/stream?k=100", clientTP, nil)
	if code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	if echo.TraceID.String() != "11111111111111111111111111111111" {
		t.Fatalf("stream echoed trace %s", echo.TraceID)
	}
	if err := tf.exp.Flush(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range tf.col.Spans() {
		if sp.Name == "cursor stream" {
			found = true
			if sp.ParentSpanID != "2222222222222222" {
				t.Errorf("stream span parent %s", sp.ParentSpanID)
			}
			if !hasAttr(sp, "distjoin.pull.pairs", "8") {
				t.Errorf("stream span pair count wrong: %+v", sp.Attributes)
			}
		}
	}
	if !found {
		t.Fatal("no stream span exported")
	}
}

func hasAttr(sp otlpexport.WireSpan, key, intVal string) bool {
	for _, kv := range sp.Attributes {
		if kv.Key == key && kv.Value.IntValue != nil && *kv.Value.IntValue == intVal {
			return true
		}
	}
	return false
}

// TestEndpointNames pins the RED label set.
func TestEndpointNames(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"POST", "/v1/query", "query"},
		{"GET", "/v1/cursor/c1/next", "next"},
		{"GET", "/v1/cursor/c1/stream", "stream"},
		{"GET", "/v1/cursor/c1", "info"},
		{"DELETE", "/v1/cursor/c1", "delete"},
		{"GET", "/v1/cursor/c1/bogus", "cursor_other"},
		{"GET", "/v1/indexes", "indexes"},
		{"GET", "/healthz", "healthz"},
		{"GET", "/readyz", "readyz"},
		{"GET", "/nope", "other"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(tc.method, tc.path, nil)
		if got := endpointName(r); got != tc.want {
			t.Errorf("%s %s → %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
}

// TestMiddlewareObservesErrors: a 404 pull lands in the RED error counters
// and the log at the right status even though no cursor handler ran.
func TestMiddlewareObservesErrors(t *testing.T) {
	tf := newTraceFixture(t)
	code, _, _ := tf.doTraced(t, http.MethodGet, "/v1/cursor/c9999999/next", "", nil)
	if code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	var b strings.Builder
	tf.red.WritePrometheus(&b)
	if !strings.Contains(b.String(), `distjoin_http_errors_total{endpoint="next",class="client"}`) {
		t.Errorf("404 not classified as a client error:\n%s", b.String())
	}
	if !strings.Contains(tf.log.String(), fmt.Sprintf(`"status":%d`, http.StatusNotFound)) {
		t.Errorf("404 missing from the request log:\n%s", tf.log.String())
	}
}
