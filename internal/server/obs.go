package server

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"distjoin/internal/otlpexport"
	"distjoin/internal/qtrace"
)

// HTTP-layer observability: the RED/logging middleware every request passes
// through, and the per-pull OTLP server spans that stitch a cursor's HTTP
// session into the client's distributed trace. All of it is optional —
// Config.Logger, Config.RED and Config.Exporter may each be nil — and the
// handlers never block on any of it.

// statusWriter captures the response status for the middleware. It always
// implements http.Flusher (a no-op when the underlying writer cannot
// flush), so the NDJSON stream path keeps flushing through it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// endpointName maps a request to its RED endpoint label: a small closed set
// so metric cardinality stays bounded no matter what paths clients probe.
func endpointName(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/query":
		return "query"
	case strings.HasPrefix(p, "/v1/cursor/"):
		_, verb, _ := strings.Cut(strings.TrimPrefix(p, "/v1/cursor/"), "/")
		switch verb {
		case "next":
			return "next"
		case "stream":
			return "stream"
		case "":
			if r.Method == http.MethodDelete {
				return "delete"
			}
			return "info"
		}
		return "cursor_other"
	case p == "/v1/indexes":
		return "indexes"
	case p == "/healthz":
		return "healthz"
	case p == "/readyz":
		return "readyz"
	}
	return "other"
}

// observeMiddleware feeds every finished request to the RED collector and
// the structured request log. It runs outside recoverMiddleware so a
// recovered panic's 500 is observed like any other server error. The
// trace/query identity is read back from the response headers the handlers
// stamp via echoTrace, which keeps this layer ignorant of routing.
func (s *Server) observeMiddleware(h http.Handler) http.Handler {
	if s.cfg.RED == nil && s.cfg.Logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		ep := endpointName(r)
		query := sw.Header().Get("X-Distjoin-Query")
		s.cfg.RED.Observe(ep, status, dur, query)
		if s.cfg.Logger == nil {
			return
		}
		traceID := ""
		if sc, ok := qtrace.ParseTraceParent(sw.Header().Get("Traceparent")); ok {
			traceID = sc.TraceID.String()
		} else if sc := inboundContext(r); sc.Valid() {
			traceID = sc.TraceID.String()
		}
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case ep == "healthz" || ep == "readyz":
			level = slog.LevelDebug // probes are noise at info
		}
		s.cfg.Logger.LogAttrs(r.Context(), level, "request",
			slog.String("endpoint", ep),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Duration("duration", dur),
			slog.String("trace_id", traceID),
			slog.String("query", query),
		)
	})
}

// pullSpanStart mints the identity of one pull's server span. The span
// joins, in order of preference: the trace context this pull request itself
// carried, the client context that created the cursor, or the cursor's own
// query span — so a client that propagates context per request gets exact
// per-pull parentage, and one that only traced the create still gets every
// pull under its root. Returns the pull span's context (for the response
// echo) and its parent span id.
func (s *Server) pullSpanStart(r *http.Request, c *cursor) (psc qtrace.SpanContext, parent qtrace.SpanID) {
	anchor := inboundContext(r)
	if !anchor.Valid() {
		anchor = c.client
	}
	if !anchor.Valid() {
		anchor = c.sc
	}
	if !anchor.Valid() {
		return qtrace.SpanContext{}, qtrace.SpanID{}
	}
	return qtrace.SpanContext{
		TraceID: anchor.TraceID,
		SpanID:  qtrace.NewSpanID(),
		Flags:   anchor.Flags,
		State:   anchor.State,
	}, anchor.SpanID
}

// finishPullSpan exports the pull's server span: result-annotated, linked to
// the cursor's query span (whose engine span tree the tracer's OnComplete
// exports when the cursor finishes). Caller holds c.op.
func (s *Server) finishPullSpan(c *cursor, psc qtrace.SpanContext, parent qtrace.SpanID, start time.Time, name string, k int, pairs int64, done bool, truncated string, err error) {
	if s.cfg.Exporter == nil || !psc.Valid() {
		return
	}
	c.pulls++
	sp := otlpexport.Span{
		TraceID:    psc.TraceID,
		SpanID:     psc.SpanID,
		Parent:     parent,
		TraceState: psc.State,
		Name:       name,
		Kind:       otlpexport.KindServer,
		Start:      start,
		End:        time.Now(),
		Attrs: []otlpexport.Attr{
			otlpexport.Str("distjoin.cursor", c.id),
			otlpexport.Str("distjoin.query.id", c.queryID),
			otlpexport.Int("distjoin.pull.seq", c.pulls),
			otlpexport.Int("distjoin.pull.k", int64(k)),
			otlpexport.Int("distjoin.pull.pairs", pairs),
			otlpexport.Bool("distjoin.pull.done", done),
		},
		StatusCode: otlpexport.StatusOK,
	}
	if truncated != "" {
		sp.Attrs = append(sp.Attrs, otlpexport.Str("distjoin.pull.truncated", truncated))
	}
	if err != nil {
		sp.StatusCode = otlpexport.StatusError
		sp.StatusMsg = err.Error()
	}
	// Cross-reference the query span unless it is already this span's direct
	// parent (no traceparent anywhere: the pull hangs off the query span).
	if c.sc.Valid() && c.sc.SpanID != parent {
		sp.Links = append(sp.Links, otlpexport.Link{TraceID: c.sc.TraceID, SpanID: c.sc.SpanID})
	}
	s.cfg.Exporter.EnqueueSpans([]otlpexport.Span{sp})
}
