package server

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
)

// TestCursorResumeMatchesOneShot is the resumable-cursor correctness
// property: for every split point 0 < j < n, a server session that pulls j
// pairs, pauses, and resumes for the rest delivers the exact pair sequence
// (Obj1, Obj2, Dist — bitwise) of a one-shot in-process iterator, across
// operation kinds × index structures × queue configurations. It is the
// server-side analogue of the parallel-merge property test of PR 1: the
// HTTP cursor layer must be invisible in the result stream.
func TestCursorResumeMatchesOneShot(t *testing.T) {
	const nA, nB, maxPairs = 48, 64, 36

	ptsA := datagen.Water(41, nA)
	ptsB := datagen.Roads(42, nB)

	// The same point sets behind both index structures.
	rtreeA := distjoin.NewIndexFromPoints(toPub(ptsA))
	rtreeB := distjoin.NewIndexFromPoints(toPub(ptsB))
	defer rtreeA.Close()
	defer rtreeB.Close()
	quadA := buildQuad(t, toPub(ptsA))
	quadB := buildQuad(t, toPub(ptsB))

	indexPairs := []struct {
		name   string
		i1, i2 string
		s1, s2 distjoin.SpatialIndex
	}{
		{"rtree-rtree", "a-rtree", "b-rtree", rtreeA.AsSpatialIndex(), rtreeB.AsSpatialIndex()},
		{"quad-quad", "a-quad", "b-quad", quadA.AsSpatialIndex(), quadB.AsSpatialIndex()},
		{"rtree-quad", "a-rtree", "b-quad", rtreeA.AsSpatialIndex(), quadB.AsSpatialIndex()},
	}
	queues := []struct {
		name string
		req  QueryRequest
	}{
		{"memory", QueryRequest{Queue: "memory"}},
		{"hybrid", QueryRequest{Queue: "hybrid", HybridDT: 2_000}},
	}
	kinds := []struct {
		name string
		req  QueryRequest
	}{
		{"join", QueryRequest{Kind: "join", MaxPairs: maxPairs}},
		{"semijoin", QueryRequest{Kind: "semijoin", Filter: "globalall"}},
		{"knn", QueryRequest{Kind: "knn", K: 2, Filter: "inside2", MaxPairs: maxPairs}},
	}

	reg := NewRegistry()
	for _, e := range []struct {
		name string
		si   distjoin.SpatialIndex
	}{
		{"a-rtree", rtreeA.AsSpatialIndex()}, {"b-rtree", rtreeB.AsSpatialIndex()},
		{"a-quad", quadA.AsSpatialIndex()}, {"b-quad", quadB.AsSpatialIndex()},
	} {
		if err := reg.Register(e.name, "test", e.si); err != nil {
			t.Fatal(err)
		}
	}
	f := &testFixture{}
	f.srv = NewServer(Config{Registry: reg, TTL: time.Minute, MaxCursors: 8})
	f.ts = httptest.NewServer(f.srv.Handler())
	t.Cleanup(func() { f.ts.Close(); f.srv.Close() })

	for _, ip := range indexPairs {
		for _, q := range queues {
			for _, kd := range kinds {
				name := fmt.Sprintf("%s/%s/%s", kd.name, ip.name, q.name)
				t.Run(name, func(t *testing.T) {
					req := kd.req
					req.Index1, req.Index2 = ip.i1, ip.i2
					req.Queue, req.HybridDT = q.req.Queue, q.req.HybridDT

					want := oneShot(t, ip.s1, ip.s2, req)
					if len(want) == 0 {
						t.Fatal("one-shot reference produced no pairs")
					}
					for j := 1; j < len(want); j++ {
						got := splitSession(t, f, req, j, len(want))
						if len(got) != len(want) {
							t.Fatalf("split %d: %d pairs, want %d", j, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("split %d: pair %d = %+v, want %+v", j, i, got[i], want[i])
							}
						}
					}
				})
			}
		}
	}
}

// oneShot drains the in-process iterator for the request's configuration.
func oneShot(t *testing.T, s1, s2 distjoin.SpatialIndex, req QueryRequest) []PairJSON {
	t.Helper()
	opts := distjoin.Options{MaxPairs: req.MaxPairs}
	if req.Queue == "hybrid" {
		opts.Queue = distjoin.QueueHybrid
		opts.HybridDT = req.HybridDT
		opts.HybridInMemory = true
	}
	var next func() (distjoin.Pair, bool, error)
	var closeFn func() error
	switch req.Kind {
	case "join":
		j, err := distjoin.DistanceJoinIndexes(s1, s2, opts)
		if err != nil {
			t.Fatal(err)
		}
		next, closeFn = j.Next, j.Close
	case "semijoin":
		sj, err := distjoin.DistanceSemiJoinIndexes(s1, s2, distjoin.FilterGlobalAll, opts)
		if err != nil {
			t.Fatal(err)
		}
		next, closeFn = sj.Next, sj.Close
	case "knn":
		sj, err := distjoin.KNearestJoinIndexes(s1, s2, req.K, distjoin.FilterInside2, opts)
		if err != nil {
			t.Fatal(err)
		}
		next, closeFn = sj.Next, sj.Close
	default:
		t.Fatalf("unknown kind %q", req.Kind)
	}
	defer closeFn()
	var out []PairJSON
	for {
		p, ok, err := next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, PairJSON{Obj1: uint64(p.Obj1), Obj2: uint64(p.Obj2), Dist: p.Dist})
	}
}

// splitSession runs one server cursor session: pull j pairs, pause, resume
// and drain. Pulling past exhaustion is tolerated (total is the reference
// length, so the final batch may come back short or empty).
func splitSession(t *testing.T, f *testFixture, req QueryRequest, j, total int) []PairJSON {
	t.Helper()
	cr := f.create(t, req)
	got := f.next(t, cr.Cursor, j).Pairs
	// The pause: the cursor sits idle in the table between the two pulls.
	rest := f.next(t, cr.Cursor, total-j+8)
	got = append(got, rest.Pairs...)
	if !rest.Done {
		// Drain any residue (knn sessions can be cut by MaxPairs exactly at
		// the boundary).
		more := f.next(t, cr.Cursor, 16)
		got = append(got, more.Pairs...)
	}
	if code, _ := f.do(t, "DELETE", "/v1/cursor/"+cr.Cursor, nil); code != 204 {
		t.Fatalf("delete: %d", code)
	}
	return got
}

// toPub converts internal geom points to the public alias (they are the
// same type; this keeps the dependency explicit).
func toPub(pts []distjoin.Point) []distjoin.Point { return pts }

// buildQuad loads points into a quadtree over the datagen world.
func buildQuad(t *testing.T, pts []distjoin.Point) *distjoin.QuadIndex {
	t.Helper()
	q, err := distjoin.NewQuadIndex(distjoin.QuadConfig{Bounds: datagen.World, BucketSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := q.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return q
}
