package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distjoin"
)

// TestConcurrentClients hammers one server with many concurrent sessions —
// full drains, mid-stream disconnects, abandons, and deletes — and checks
// nothing leaks. Run under -race this is the service's main concurrency
// test: the cursor table, budget ledger, admission semaphore, janitor, and
// tracer all contend here.
func TestConcurrentClients(t *testing.T) {
	f := newFixture(t, 120, 200, func(c *Config) {
		c.MaxCursors = 64
		c.MaxInflight = 64
		c.TTL = 50 * time.Millisecond // abandoned cursors must expire mid-test
	})

	const clients = 24
	var wg sync.WaitGroup
	var drained, disconnected, abandoned atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 40}
			if i%3 == 1 {
				req = QueryRequest{Kind: "semijoin", Index1: "water", Index2: "roads", Filter: "inside2"}
			}
			code, raw := f.do(t, http.MethodPost, "/v1/query", req)
			if code == http.StatusTooManyRequests {
				return // admission control said no; that is a valid outcome
			}
			if code != http.StatusCreated {
				t.Errorf("client %d: create %d: %s", i, code, raw)
				return
			}
			id := jsonField(t, raw, "cursor")
			switch i % 4 {
			case 0, 1: // drain in small batches, then delete
				for pulls := 0; pulls < 50; pulls++ {
					code, raw := f.do(t, http.MethodGet, "/v1/cursor/"+id+"/next?k=7", nil)
					if code == http.StatusConflict || code == http.StatusTooManyRequests {
						continue // contention responses are fine; retry
					}
					if code == http.StatusGone {
						return // janitor beat us to an abandoned-looking cursor
					}
					if code != http.StatusOK {
						t.Errorf("client %d: next %d: %s", i, code, raw)
						return
					}
					if strings.Contains(string(raw), `"done":true`) {
						drained.Add(1)
						break
					}
				}
				f.do(t, http.MethodDelete, "/v1/cursor/"+id, nil)
			case 2: // mid-stream disconnect: read a few bytes and slam the socket
				resp, err := f.ts.Client().Get(f.ts.URL + "/v1/cursor/" + id + "/stream?k=1000000")
				if err == nil {
					buf := make([]byte, 256)
					io.ReadFull(resp.Body, buf)
					resp.Body.Close() // disconnect with the stream unfinished
				}
				disconnected.Add(1)
				f.do(t, http.MethodDelete, "/v1/cursor/"+id, nil)
			case 3: // abandon: rely on the TTL janitor to reclaim
				f.do(t, http.MethodGet, "/v1/cursor/"+id+"/next?k=3", nil)
				abandoned.Add(1)
			}
		}(i)
	}
	wg.Wait()

	// Abandoned cursors die by TTL; wait for the janitor to reap them all.
	deadline := time.Now().Add(5 * time.Second)
	for f.srv.OpenCursors() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := f.srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors still open after TTL", n)
	}
	if used := f.srv.BudgetUsed(); used != 0 {
		t.Fatalf("budget leaked: %d bytes", used)
	}
	if active := f.tracer.Active(); active != 0 {
		t.Fatalf("%d queries still active in tracer", active)
	}
	t.Logf("drained=%d disconnected=%d abandoned=%d",
		drained.Load(), disconnected.Load(), abandoned.Load())
}

// TestTTLExpiryDuringPull drives the doomed path deterministically: the
// janitor sweeps while a pull holds the op lock, so eviction must defer to
// the end of the pull instead of closing the engine under the reader.
func TestTTLExpiryDuringPull(t *testing.T) {
	f := newFixture(t, 100, 150, func(c *Config) {
		c.TTL = time.Hour           // janitor never fires on its own
		c.SweepInterval = time.Hour // we call sweep by hand
	})
	cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads", MaxPairs: 30})

	// Take the op lock exactly as an in-flight pull would.
	c, herr := f.srv.beginPull(cr.Cursor)
	if herr != nil {
		t.Fatalf("beginPull: %v", herr)
	}

	// Sweep far in the future: the cursor is expired but busy, so the
	// janitor may only doom it.
	f.srv.sweep(time.Now().Add(2 * time.Hour))
	c.st.Lock()
	doomed, closed := c.doomed, c.closed
	c.st.Unlock()
	if !doomed || closed {
		t.Fatalf("after sweep: doomed=%v closed=%v, want doomed, not closed", doomed, closed)
	}

	// Dooming also hard-canceled the engine, so the in-flight pull is
	// interrupted: it surfaces a sticky ErrCanceled naming the TTL cause
	// rather than streaming on against a dead deadline.
	pairs, done, _, err := f.srv.pull(c, 5, nil)
	if !errors.Is(err, distjoin.ErrCanceled) || done {
		t.Fatalf("pull on doomed cursor: %d pairs done=%v err=%v, want ErrCanceled", len(pairs), done, err)
	}

	// Releasing the pull completes the eviction (endPull also frees the
	// in-flight slot beginPull took).
	f.srv.endPull(c)
	if n := f.srv.OpenCursors(); n != 0 {
		t.Fatalf("doomed cursor not evicted at end of pull: %d open", n)
	}
	c.st.Lock()
	closed = c.closed
	c.st.Unlock()
	if !closed {
		t.Fatal("engine not closed after doomed eviction")
	}

	// The id now answers 410, and the trace landed error-annotated with the
	// cancellation.
	code, _ := f.do(t, http.MethodGet, "/v1/cursor/"+cr.Cursor+"/next?k=1", nil)
	if code != http.StatusGone {
		t.Fatalf("evicted cursor: %d, want 410", code)
	}
	if tr := f.tracer.Trace(cr.Cursor); tr == nil || !strings.Contains(tr.Error, "canceled") {
		t.Fatalf("trace after doomed eviction = %+v", tr)
	}
}

// TestShutdownClosesEverything opens cursors in several states (untouched,
// mid-drain, parallel engines), shuts the server down, and verifies every
// engine iterator was closed: goroutine count returns to baseline, the
// tracer has no active queries, and the budget ledger is empty.
func TestShutdownClosesEverything(t *testing.T) {
	baseline := runtime.NumGoroutine()

	f := newFixture(t, 150, 250, func(c *Config) { c.MaxCursors = 16 })
	ids := make([]string, 0, 6)
	for i := 0; i < 3; i++ {
		cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads"})
		ids = append(ids, cr.Cursor)
	}
	// Parallel engines spin up worker goroutines that Close must reap.
	for i := 0; i < 2; i++ {
		cr := f.create(t, QueryRequest{Kind: "join", Index1: "water", Index2: "roads", Parallelism: 3})
		f.next(t, cr.Cursor, 10)
		ids = append(ids, cr.Cursor)
	}
	cr := f.create(t, QueryRequest{Kind: "semijoin", Index1: "water", Index2: "roads"})
	f.next(t, cr.Cursor, 5)
	ids = append(ids, cr.Cursor)

	if err := f.srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if n := f.srv.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors open after shutdown", n)
	}
	if used := f.srv.BudgetUsed(); used != 0 {
		t.Fatalf("budget held after shutdown: %d", used)
	}
	if active := f.tracer.Active(); active != 0 {
		t.Fatalf("%d tracer-active queries after shutdown", active)
	}
	// Every trace landed (engine Close fires the tracer completion).
	for _, id := range ids {
		if f.tracer.Trace(id) == nil {
			t.Errorf("no trace for %s after shutdown", id)
		}
	}
	f.ts.Close()

	// Engine worker goroutines must be gone. Poll: goroutine exit is
	// asynchronous after Close returns.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 { // httptest leaves a couple idle
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:n])
}

// jsonField extracts a top-level string field without a full decode — handy
// inside racing goroutines.
func jsonField(t testing.TB, raw []byte, key string) string {
	t.Helper()
	marker := fmt.Sprintf("%q:", key)
	i := strings.Index(string(raw), marker)
	if i < 0 {
		t.Fatalf("no %q in %s", key, raw)
	}
	rest := string(raw)[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	k := strings.IndexByte(rest[j+1:], '"')
	return rest[j+1 : j+1+k]
}
